// Execution engine for lifted programs: the recompiled binary's runtime.
//
// Runs the lifted IR under the same deterministic min-clock scheduler as the
// x86 VM, against the same external library and the same guest address space
// (the original image stays mapped at its load address — paper §3.1 — so
// jump tables and global data resolve). Each thread owns:
//   - a slot array for thread_local IR globals (virtual CPU state),
//   - an emulated stack carved from the guest stack region (vr_rsp points
//     into it),
//   - a native call stack of lifted-function frames.
//
// Execution is tiered (DESIGN.md §4f, src/exec/backend.h): the engine owns
// the threads, scheduling loops and dispatcher, and delegates instruction
// execution to a Backend per frame — tier 0 interprets the IR, tier 1 runs
// direct-threaded superinstruction bytecode for hot functions and deopts
// back to tier 0 at guard points. Both tiers share the per-frame value
// array, so results, schedules, and state digests are bit-identical.
//
// The dispatcher implements the trampoline/callback-wrapper mechanism
// (§3.3.3): any guest PC that reaches the top level is mapped to its lifted
// function; entering through the dispatcher charges the marshaling cost the
// paper attributes to callback handling. Control-flow misses (the `cfmiss`
// intrinsic) terminate the run and are reported for the additive-lifting
// loop.
//
// Performance is measured in simulated cycles via IrCostModel; normalized
// runtime = engine wall_time / VM wall_time for the same workload.
#ifndef POLYNIMA_EXEC_ENGINE_H_
#define POLYNIMA_EXEC_ENGINE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/binary/image.h"
#include "src/exec/backend.h"
#include "src/ir/ir.h"
#include "src/lift/lifter.h"
#include "src/obs/report.h"
#include "src/sched/scheduler.h"
#include "src/support/rng.h"
#include "src/vm/external.h"
#include "src/vm/guest_context.h"
#include "src/vm/memory.h"

namespace polynima::exec {

class InterpreterBackend;
class Tier1Backend;
class Tier2Backend;

struct ExecOptions {
  uint64_t seed = 1;
  bool cost_jitter = true;
  uint64_t max_steps = 4'000'000'000ull;
  // Scheduler perturbation window (simulated cycles) for the TSO
  // differential check: 0 keeps the deterministic min-clock order; a
  // positive value makes the scheduler pick (seeded-)randomly among all
  // runnable threads within `schedule_skew` cycles of the minimum clock,
  // admitting alternative interleavings while staying reproducible.
  uint64_t schedule_skew = 0;
  // Controlled scheduling (src/sched): when set, the min-clock scheduler is
  // replaced by an explicit decision loop — the current thread runs through
  // thread-private operations, and every guest-visible preemption point
  // (shared load/store, atomic, fence, external call, dispatcher boundary)
  // consults the Scheduler. Runs become a pure function of (seed, decision
  // log), which is what record/replay, PCT search and schedule shrinking
  // build on. Mutually exclusive with schedule_skew. Not owned.
  sched::Scheduler* scheduler = nullptr;
  // Highest execution tier: 0 = interpret everything, 1 = translate hot
  // functions to superinstruction bytecode (DESIGN.md §4f), 2 = additionally
  // re-emit hot tier-1 streams as native x86 (DESIGN.md §4g; silently capped
  // at 1 on hosts without executable mappings). Results are bit-identical
  // across tiers; higher tiers only change host-side speed.
  int tier = 0;
  // Block-entry count at which a function becomes hot enough to translate.
  // 0 with tier >= 1 means translate eagerly on first entry. Tier-2
  // promotion uses twice this threshold (staged 0 -> 1 -> 2 tier-up).
  uint64_t tier_threshold = 0;
  // Compute ExecResult::state_digest (implied by `scheduler`).
  bool record_state_digest = false;
  // Record per-instruction memory access classification (stack-local vs
  // shared) for the fence-optimization dynamic analysis (§3.4.2). Forces
  // tier 0: the record is keyed by IR instruction identity.
  bool record_accesses = false;
  // Record which lifted functions are entered from external code (thread
  // entries, callbacks) for the callback-wrapper removal analysis (§3.3.3).
  bool record_callbacks = false;
  // Guest entries of functions a sealed CfgCert declared fully covered
  // (every indirect site proven, no other uncovered blocks). An
  // uncovered-edge deopt inside one of these is a broken certificate claim:
  // it additionally bumps exec.deopt_uncovered_certified, which the
  // `report --validate` cross-check requires to be zero.
  std::set<uint64_t> cfg_certified_entries;
  // Observability sinks (all nullable; see src/obs). With `obs.profile` set,
  // every basic-block entry and every fence/atomic site is attributed to a
  // per-block profile site (the `polynima report` hot-block and
  // fence-density tables); the exec.* counters summarize the run. The hot
  // path stays a null check + array increment — and when neither metrics
  // nor profile sink is attached, dispatch selects an instruction loop
  // compiled without any of those checks.
  obs::Session obs;
};

// Simulated-cycle costs for executing recompiled code.
struct IrCostModel {
  uint64_t alu = 1;
  uint64_t global_access = 1;  // virtual-state (thread-local) slots
  uint64_t mem_access = 2;     // guest memory
  uint64_t fence = 3;
  uint64_t atomic = 14;    // lock-prefixed RMW: bus lock + 2 accesses, as native
  uint64_t branch = 1;
  uint64_t call = 2;
  uint64_t ret = 1;
  uint64_t helper = 10;        // QEMU-style helper invocation overhead
  uint64_t ext_marshal = 8;    // virtual-state <-> external-call marshal
  uint64_t dispatch_entry = 150;  // callback-wrapper entry: full register
                                  // marshal + emulated-stack argument copy
  uint64_t phi = 0;
};

struct MissInfo {
  uint64_t transfer_address = 0;  // 0 when the miss surfaced at the dispatcher
  uint64_t target = 0;
};

struct AccessRecord {
  bool stack_local = false;
  bool shared = false;
  // Distinct guest addresses observed at this site (bounded; overflow makes
  // alias queries conservative).
  std::set<uint64_t> addresses;
  bool overflow = false;

  bool MayAliasAddresses(const AccessRecord& other) const {
    if (overflow || other.overflow) {
      return true;
    }
    for (uint64_t a : addresses) {
      if (other.addresses.count(a) != 0) {
        return true;
      }
    }
    return false;
  }
};

struct ExecResult {
  bool ok = false;
  int64_t exit_code = 0;
  std::string fault_message;
  std::optional<MissInfo> miss;
  uint64_t wall_time = 0;
  uint64_t steps = 0;
  // FNV digest of the final guest state (memory pages, shared globals,
  // per-thread TLS and return values, output, exit code); only computed
  // under ExecOptions::record_state_digest or a controlled scheduler.
  // Comparable between runs of the same binary only.
  uint64_t state_digest = 0;
  std::string output;
  std::map<const ir::Instruction*, AccessRecord> accesses;
  std::set<std::string> observed_callbacks;
  // Tiered-execution telemetry (zero in pure tier-0 runs).
  uint64_t tier1_translations = 0;
  uint64_t tier1_instrs = 0;  // guest instructions retired by tier-1 code
  uint64_t tier2_translations = 0;
  uint64_t tier2_instrs = 0;  // guest instructions retired by native code
  uint64_t deopts = 0;
  uint64_t deopts_by_reason[static_cast<int>(DeoptReason::kNumReasons)] = {};
};

class Engine : public vm::GuestContext {
 public:
  Engine(const lift::LiftedProgram& program, const binary::Image& image,
         vm::ExternalLibrary* library, ExecOptions options);
  ~Engine() override;

  void SetInputs(std::vector<std::vector<uint8_t>> inputs) {
    inputs_ = std::move(inputs);
  }
  void set_costs(const IrCostModel& costs) { costs_ = costs; }

  ExecResult Run();

  // Native-tier backend, or null when tier 2 is off / unsupported on this
  // host. Exposed so tests can check perf-map ranges against the installed
  // code-buffer mappings.
  const Tier2Backend* tier2_backend() const { return tier2_.get(); }

  // --- GuestContext ---
  uint64_t GetArg(int index) override;
  void SetResult(uint64_t value) override;
  vm::Memory& memory() override { return memory_; }
  int SpawnThread(uint64_t entry, uint64_t arg0, uint64_t arg1) override;
  bool ThreadFinished(int tid, uint64_t* retval) override;
  int current_thread() override { return current_; }
  uint64_t CallGuest(uint64_t entry, std::span<const uint64_t> args) override;
  void AddCost(uint64_t cycles) override;
  uint64_t now() override;
  Rng& rng() override { return rng_; }
  std::string& output() override { return output_; }
  const std::vector<std::vector<uint8_t>>& inputs() override { return inputs_; }
  void RequestExit(int64_t code) override;

 private:
  friend class InterpreterBackend;
  friend class Tier1Backend;
  friend class Tier2Backend;

  Thread& CreateThread(uint64_t entry_pc, uint64_t arg0, uint64_t arg1,
                       uint64_t exit_magic);
  // One scheduling step: dispatch a pending PC or delegate the top frame to
  // its tier's backend under `mode`.
  bool Step(Thread& t, StepMode mode);
  bool StepInstruction(Thread& t);  // execute one IR instruction (tier 0)
  template <bool kObs>
  bool StepInstructionImpl(Thread& t);
  bool DispatchPending(Thread& t);
  void PushFrame(Thread& t, FuncInfo* info, bool dispatch_root);
  // Tier-up check: translate `info` when hot and OSR-enter the frame's
  // current block if a translation covers it; promote tier-1 frames to
  // native code once heat doubles the threshold.
  void MaybeTierUp(Frame& f);

  NextOp ClassifyNextOp(const Thread& t) const;
  // Block the thread's top frame currently executes, tier-agnostic
  // (Frame::block is stale while a frame runs tier-1 bytecode).
  ir::BasicBlock* CurrentBlock(const Thread& t) const;
  void RunMinClockLoop();
  void RunControlledLoop();
  uint64_t StateDigest();

  uint64_t Eval(const Frame& f, const ir::Value* v) const;
  uint64_t& GlobalSlot(Thread& t, const ir::Global* g);
  void EnterBlock(Frame& f, ir::BasicBlock* target);
  bool HandleIntrinsic(Thread& t, size_t frame_index,
                       const ir::Instruction& inst);

  void Fault(std::string message);
  void RecordAccess(const ir::Instruction* inst, Thread& t, uint64_t addr);
  uint32_t ProfileSite(const ir::Function* fn, const ir::BasicBlock* block);
  // Lazily interns `info` into the attached TierProf sink (tierprof_ only).
  uint32_t TierProfId(FuncInfo* info);

  // Resolves fn to its eagerly-built FuncInfo (never fails for module
  // functions).
  FuncInfo* InfoFor(const ir::Function* fn) const;

  const lift::LiftedProgram& program_;
  const binary::Image& image_;
  vm::ExternalLibrary* library_;
  ExecOptions options_;
  IrCostModel costs_;
  vm::Memory memory_;
  Rng rng_;

  std::vector<std::unique_ptr<Thread>> threads_;
  int current_ = 0;

  std::vector<uint64_t> shared_globals_;
  // Cached slots for argument/result registers.
  int vr_slot_[16] = {0};
  bool vr_tls_ = true;

  std::vector<std::vector<uint8_t>> inputs_;
  std::string output_;

  int global_lock_owner_ = -1;  // naive-atomics global spinlock
  // Set by blocking intrinsics: the current instruction is retried on the
  // thread's next turn instead of advancing.
  bool retry_pending_ = false;
  // Sticky per-step echo of retry_pending_ for the controlled loop (which
  // runs after StepInstruction has already consumed the flag).
  bool last_step_retried_ = false;

  // Per-function facts, built once at construction: value-slot counts,
  // addressing-fold sets, entry-PC and Function* lookup tables. The per-call
  // hot paths (dispatch, kCall, CallGuest) index these instead of
  // re-resolving maps keyed by lazily-discovered functions.
  std::vector<std::unique_ptr<FuncInfo>> func_infos_;
  std::unordered_map<uint64_t, FuncInfo*> entry_table_;
  std::unordered_map<const ir::Function*, FuncInfo*> by_fn_;

  // Execution tiers. tier1_ exists only when enabled by options.
  std::unique_ptr<InterpreterBackend> interp_;
  std::unique_ptr<Tier1Backend> tier1_;
  std::unique_ptr<Tier2Backend> tier2_;
  bool tier1_enabled_ = false;
  bool tier2_enabled_ = false;
  uint64_t tier_threshold_ = 0;
  uint64_t tier2_threshold_ = 0;
  // True when no metrics/profile/tierprof sink is attached: instruction
  // loops run the template specialization with every obs check compiled out.
  bool obs_attached_ = false;
  // Cached options_.obs.tierprof: the tier-telemetry hooks (lifecycle
  // events, residency scratch, helper counts) key off this one pointer.
  obs::TierProf* tierprof_ = nullptr;
  // Tier telemetry.
  uint64_t tier1_translations_ = 0;
  uint64_t tier1_instrs_ = 0;
  uint64_t tier2_translations_ = 0;
  uint64_t tier2_instrs_ = 0;
  uint64_t deopt_counts_[static_cast<int>(DeoptReason::kNumReasons)] = {};

  bool exited_ = false;
  int64_t exit_code_ = 0;
  bool faulted_ = false;
  std::string fault_message_;
  std::optional<MissInfo> miss_;
  uint64_t steps_ = 0;

  std::map<const ir::Instruction*, AccessRecord> accesses_;
  std::set<std::string> observed_callbacks_;

  // Lazily registered guest-profile sites (profiling runs only).
  std::map<const ir::BasicBlock*, uint32_t> profile_sites_;
};

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_ENGINE_H_
