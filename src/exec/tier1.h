// Tier-1 execution backend: direct-threaded bytecode with superinstructions.
//
// The interpreter (tier 0) walks `std::list<unique_ptr<Instruction>>` with a
// virtual-dispatch-sized switch per IR instruction. Hot functions deserve
// better: the translator flattens every covered block into a dense TInst
// array, pre-resolving operand slots, constants (interned into a pool
// appended to the frame's value array), branch targets (bytecode pcs, not
// block pointers), callees (FuncInfo*, no map lookup) and the cost model.
// Execution is a computed-goto loop over that array — no list traversal, no
// operand-kind dispatch, no per-instruction map lookups.
//
// Superinstructions fuse the patterns the cost model says dominate:
//   kCmpBr              icmp + conditional branch on it
//   kLoadOp             load + single-use ALU consumer
//   kLoadBI/kLoadBIS    add(base, index[<<scale]) folded into a load
//   kStoreBI/kStoreBIS  same folding for stores
//   kFenceStore         fence immediately followed by a store (TSO pattern)
// Fusion must not change what the scheduler can observe, so under a
// controlled scheduler only kCmpBr (both components provably thread-private)
// stays enabled; every other fusion is built only for free-running modes.
//
// Guards (DESIGN.md §4f): translated code deoptimizes to tier 0 when
//   - a store targets an executable image range (kSmcWrite),
//   - a branch takes an edge into an uncovered block (kUncoveredEdge) —
//     blocks holding cfmiss/trap/unreachable are never translated,
//   - a controlled scheduler needs to own a visible operation (kPreempt).
// Every TInst carries its source block and instruction-list anchor, so
// deopt is: flip Frame::translated, set (block, it) from the TInst, done —
// the value array is already the interpreter's.
#ifndef POLYNIMA_EXEC_TIER1_H_
#define POLYNIMA_EXEC_TIER1_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/exec/backend.h"
#include "src/ir/ir.h"

namespace polynima::exec {

class Engine;

// Tier-1 opcodes. Order is load-bearing only for the dispatch tables in
// tier1.cc (kept in sync by static_assert there).
enum class TOp : uint8_t {
  // ALU, one per IR op so the executor body is branch-free per case.
  kAdd = 0,
  kSub,
  kMul,
  kSDiv,
  kSRem,
  kUDiv,
  kURem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  kICmp,     // extra = Pred
  kSelect,   // a ? b : c
  kSExt,     // extra = source width
  kLoad,     // v[dst] = mem[v[a]]
  kStore,    // mem[v[a]] = v[b]  (SMC-guarded)
  kGlobalLoadTls,
  kGlobalLoadShared,
  kGlobalStoreTls,
  kGlobalStoreShared,
  kFence,
  kAtomicRmw,  // extra = RmwOp
  kCmpXchg,
  kJmp,     // aux = BrTarget index
  kBrCond,  // a = cond slot, aux = BrInfo index
  kSwitch,  // a = value slot, aux = SwitchInfo index
  kRet,     // a = value slot or kNoDst for void
  kCall,    // aux = call-pool index (pre-resolved FuncInfo*)
  kIntrinsic,  // anchored: executed by the engine's interpreter helper
  kCopy,       // v[dst] = v[a] (edge-stub phi moves)
  kDeopt,      // extra = DeoptReason; transfer to tier 0 at the anchor
  // Superinstructions.
  kCmpBr,      // icmp (extra = Pred) + branch, aux = BrInfo index
  kLoadOp,     // v[dst] = v[c] op= mem[v[a]]; extra = fused ALU TOp
  kLoadBI,     // v[dst] = mem[v[a] + v[b]]
  kLoadBIS,    // v[dst] = mem[v[a] + (v[b] << extra)]
  kStoreBI,    // mem[v[a] + v[b]] = v[c]
  kStoreBIS,   // mem[v[a] + (v[b] << extra)] = v[c]
  kFenceStore, // fence; mem[v[a]] = v[b]
  kNumTOps,
};

constexpr uint32_t kNoDst = 0xffffffffu;

// One translated operation. 64 bytes; the executor reads it once per step.
struct TInst {
  TOp op = TOp::kDeopt;
  uint8_t size = 8;      // memory operand width
  uint8_t extra = 0;     // pred / rmw op / scale / fused TOp / deopt reason
  uint8_t n_instrs = 1;  // IR instructions this TInst retires (profile)
  uint8_t jitter = 0;    // cost-jitter draws (one per non-folded component)
  uint32_t cost = 0;     // pre-summed base cycles of all fused components
  uint32_t a = 0, b = 0, c = 0;  // value-array operand slots
  uint32_t dst = kNoDst;
  uint32_t aux = 0;  // pool index (branch/switch/call) per op
  uint32_t site = 0; // profile site of the source block
  // Deopt anchor: the interpreter resumes at exactly this position.
  ir::BasicBlock* block = nullptr;
  ir::BasicBlock::InstList::const_iterator anchor;
};

struct BrTarget {
  uint32_t tpc = 0;           // bytecode target (edge stub or block head)
  ir::BasicBlock* block = nullptr;
  uint32_t site = 0;          // profile site of the destination block
};

struct BrInfo {
  BrTarget then_t, else_t;
};

struct SwitchInfo {
  std::vector<std::pair<uint64_t, BrTarget>> cases;
  BrTarget default_t;
};

// One function's translation. Immutable once built; shared_ptr because a
// deopt can race destruction in no scenario today, but frames outliving a
// hypothetical retranslation is cheap insurance.
struct Translation {
  std::vector<TInst> code;
  std::vector<BrInfo> brs;
  std::vector<SwitchInfo> switches;
  std::vector<FuncInfo*> calls;
  std::vector<uint64_t> const_pool;
  // Bytecode pc of each covered block's post-phi head (tier-up entry).
  std::map<const ir::BasicBlock*, uint32_t> block_heads;
  // values array layout: [0, num_slots) IR results, then const pool, then
  // phi scratch.
  int num_slots = 0;
  uint32_t const_base = 0;
  uint32_t scratch_base = 0;
  uint32_t num_values = 0;
};

class Tier1Backend : public Backend {
 public:
  explicit Tier1Backend(Engine& e) : e_(e) {}

  const char* name() const override { return "tier1"; }
  bool Step(Thread& t, StepMode mode) override;

  // Builds info->translation. Returns false (and sets translation_failed)
  // when the function is untranslatable (uncovered entry block).
  bool Translate(FuncInfo* info);

  // Classification of a tier-1 frame's next operation (mirrors the
  // interpreter's ClassifyNextOp kinds exactly; `t` supplies the emulated-
  // stack bounds for the private-access test).
  NextOp Classify(const Thread& t, const Frame& f) const;

  // Block the frame currently executes (Frame::block is stale in tier 1).
  ir::BasicBlock* CurrentBlock(const Frame& f) const;

  // Grows f.values to cover the const pool + scratch slots.
  static void EnsureTier1Values(Frame& f);

 private:
  template <bool kObs>
  bool StepImpl(Thread& t, StepMode mode);

  // Transfers the top frame to tier 0 at ti's anchor and records why.
  void Deopt(Thread& t, Frame& f, const TInst& ti, DeoptReason reason);

  Engine& e_;
};

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_TIER1_H_
