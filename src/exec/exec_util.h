// Scalar-semantics helpers shared by the tier-0 interpreter and the tier-1
// bytecode executor. Both tiers must agree bit-for-bit on these, so they
// live in one place.
#ifndef POLYNIMA_EXEC_EXEC_UTIL_H_
#define POLYNIMA_EXEC_EXEC_UTIL_H_

#include <cstdint>

#include "src/ir/ir.h"

namespace polynima::exec {

inline uint64_t MaskBytes(uint64_t v, int size) {
  if (size >= 8) {
    return v;
  }
  return v & ((uint64_t{1} << (size * 8)) - 1);
}

inline uint64_t EvalPred(ir::Pred pred, uint64_t a, uint64_t b) {
  int64_t sa = static_cast<int64_t>(a);
  int64_t sb = static_cast<int64_t>(b);
  switch (pred) {
    case ir::Pred::kEq:
      return a == b;
    case ir::Pred::kNe:
      return a != b;
    case ir::Pred::kSlt:
      return sa < sb;
    case ir::Pred::kSle:
      return sa <= sb;
    case ir::Pred::kSgt:
      return sa > sb;
    case ir::Pred::kSge:
      return sa >= sb;
    case ir::Pred::kUlt:
      return a < b;
    case ir::Pred::kUle:
      return a <= b;
    case ir::Pred::kUgt:
      return a > b;
    case ir::Pred::kUge:
      return a >= b;
  }
  return 0;
}

inline uint64_t PackedLanes32(uint64_t a, uint64_t b, char op) {
  uint32_t a0 = static_cast<uint32_t>(a), a1 = static_cast<uint32_t>(a >> 32);
  uint32_t b0 = static_cast<uint32_t>(b), b1 = static_cast<uint32_t>(b >> 32);
  uint32_t r0, r1;
  switch (op) {
    case '+':
      r0 = a0 + b0;
      r1 = a1 + b1;
      break;
    case '-':
      r0 = a0 - b0;
      r1 = a1 - b1;
      break;
    default:
      r0 = a0 * b0;
      r1 = a1 * b1;
      break;
  }
  return static_cast<uint64_t>(r0) | (static_cast<uint64_t>(r1) << 32);
}

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_EXEC_UTIL_H_
