// Tier-1 translator and executor (see tier1.h for the architecture).
//
// Parity rules the translator and executor enforce together — every one of
// these is what makes tier-1 runs bit-identical to tier 0:
//   - Costs are pre-summed per TInst from the same IrCostModel; jitter draws
//     come from the thread's jitter stream, one per non-folded component, in
//     source order.
//   - Addressing-fold members execute for free in both tiers (cost 0, no
//     draw), so fusing them changes nothing observable.
//   - Memory fusions require the components to be ADJACENT in the block: a
//     deopt between a folded address computation and its memory op would
//     otherwise resume tier 0 past the (skipped) computation with its value
//     slot unwritten.
//   - Branches into uncovered blocks are intercepted BEFORE any charging or
//     profile counting, so the interpreter re-executes the branch exactly
//     once.
//   - Under a controlled scheduler every visible TInst is one IR
//     instruction (fusion restricted to kCmpBr, whose components are always
//     thread-private), and Step deopts + interprets it inline, so decision
//     indices, kinds and rng consumption match tier 0 exactly.
#include "src/exec/tier1.h"

#include <algorithm>
#include <utility>

#include "src/exec/engine.h"
#include "src/exec/exec_util.h"
#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::exec {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Op;
using ir::Pred;
using ir::RmwOp;
using ir::Value;

const char* DeoptReasonName(DeoptReason reason) {
  switch (reason) {
    case DeoptReason::kPreempt:
      return "preempt";
    case DeoptReason::kSmcWrite:
      return "smc_write";
    case DeoptReason::kUncoveredEdge:
      return "uncovered_edge";
    default:
      return "?";
  }
}

namespace {

// Blocks the static frontier could not prove reachable-and-decoded: lifted
// cfmiss/trap stubs and unreachable terminators. Translated code never
// enters them — branches there deoptimize.
bool IsUncovered(const BasicBlock* b) {
  for (const auto& inst : b->insts()) {
    if (inst->op() == Op::kUnreachable) {
      return true;
    }
    if (inst->op() == Op::kCall && inst->callee == nullptr &&
        (inst->intrinsic == "cfmiss" || inst->intrinsic == "trap")) {
      return true;
    }
  }
  return false;
}

TOp AluTOpFor(Op op) {
  switch (op) {
    case Op::kAdd:
      return TOp::kAdd;
    case Op::kSub:
      return TOp::kSub;
    case Op::kMul:
      return TOp::kMul;
    case Op::kSDiv:
      return TOp::kSDiv;
    case Op::kSRem:
      return TOp::kSRem;
    case Op::kUDiv:
      return TOp::kUDiv;
    case Op::kURem:
      return TOp::kURem;
    case Op::kAnd:
      return TOp::kAnd;
    case Op::kOr:
      return TOp::kOr;
    case Op::kXor:
      return TOp::kXor;
    case Op::kShl:
      return TOp::kShl;
    case Op::kLShr:
      return TOp::kLShr;
    case Op::kAShr:
      return TOp::kAShr;
    default:
      POLY_UNREACHABLE("not an ALU op");
  }
}

uint64_t AluBaseCost(Op op, const IrCostModel& c) {
  switch (op) {
    case Op::kMul:
      return c.alu + 2;
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kUDiv:
    case Op::kURem:
      return c.alu + 20;
    default:
      return c.alu;
  }
}

uint64_t SwitchCost(size_t num_cases) {
  uint64_t n = num_cases;
  uint64_t cost = 2;
  while (n > 1) {
    n >>= 1;
    ++cost;
  }
  return cost;
}

// Exactly one operand of `user` is `v`.
bool UsesExactlyOnce(const Instruction* user, const Value* v) {
  int uses = 0;
  for (int i = 0; i < user->num_operands(); ++i) {
    if (user->operand(i) == v) {
      ++uses;
    }
  }
  return uses == 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Translator
// ---------------------------------------------------------------------------

bool Tier1Backend::Translate(FuncInfo* info) {
  Function* fn = info->fn;
  // Under a controlled scheduler only private-by-construction fusion is
  // allowed (see file header); free-running modes fuse everything.
  const bool fusion_full = e_.options_.scheduler == nullptr;
  const IrCostModel& c = e_.costs_;
  auto tr = std::make_shared<Translation>();
  tr->num_slots = info->num_slots;

  std::set<const BasicBlock*> covered;
  size_t max_phis = 0;
  for (const auto& bp : fn->blocks()) {
    if (IsUncovered(bp.get())) {
      continue;
    }
    covered.insert(bp.get());
    size_t phis = 0;
    for (const auto& inst : bp->insts()) {
      if (inst->op() != Op::kPhi) {
        break;
      }
      ++phis;
    }
    max_phis = std::max(max_phis, phis);
  }
  if (covered.count(fn->entry()) == 0) {
    info->translation_failed = true;
    return false;
  }

  // Constant interning prescan. Every constant operand of a covered
  // instruction — and every constant phi-incoming (edge stubs copy them) —
  // lands in the pool BEFORE emission, so the value-array layout is fixed.
  std::map<int64_t, uint32_t> interned;
  auto intern = [&](const Value* v) {
    int64_t value = static_cast<const ir::Constant*>(v)->value();
    if (interned.emplace(value, static_cast<uint32_t>(tr->const_pool.size()))
            .second) {
      tr->const_pool.push_back(static_cast<uint64_t>(value));
    }
  };
  for (const BasicBlock* b : covered) {
    for (const auto& inst : b->insts()) {
      for (int i = 0; i < inst->num_operands(); ++i) {
        if (inst->operand(i)->is_const()) {
          intern(inst->operand(i));
        }
      }
    }
  }
  tr->const_base = static_cast<uint32_t>(tr->num_slots);
  tr->scratch_base =
      tr->const_base + static_cast<uint32_t>(tr->const_pool.size());
  tr->num_values = tr->scratch_base + static_cast<uint32_t>(max_phis);

  auto slot_of = [&](const Value* v) -> uint32_t {
    if (v->is_const()) {
      return tr->const_base +
             interned.at(static_cast<const ir::Constant*>(v)->value());
    }
    const auto* inst = static_cast<const Instruction*>(v);
    POLY_CHECK_GE(inst->id, 0);
    return static_cast<uint32_t>(inst->id);
  };
  auto site_of = [&](const BasicBlock* b) -> uint32_t {
    return e_.options_.obs.profile != nullptr ? e_.ProfileSite(fn, b) : 0;
  };
  auto folded = [&](const Instruction* inst) {
    return inst->id >= 0 &&
           info->fold_by_id[static_cast<size_t>(inst->id)] != 0;
  };

  // ---- Pass A: emit covered block bodies. ----
  std::vector<TInst>& code = tr->code;
  for (const auto& bp : fn->blocks()) {
    BasicBlock* b = bp.get();
    if (covered.count(b) == 0) {
      continue;
    }
    const uint32_t bsite = site_of(b);
    const auto& insts = std::as_const(*b).insts();
    auto it = insts.begin();
    while (it != insts.end() && (*it)->op() == Op::kPhi) {
      ++it;  // phis materialize in edge stubs / tier-0 EnterBlock
    }
    tr->block_heads[b] = static_cast<uint32_t>(code.size());

    for (; it != insts.end(); ++it) {
      const Instruction& inst = **it;
      auto next_it = std::next(it);
      const Instruction* nx =
          next_it != insts.end() ? next_it->get() : nullptr;
      TInst ti;
      ti.block = b;
      ti.anchor = it;
      ti.site = bsite;

      // --- Fused patterns, first component leading. ---

      // icmp + cond-br (always allowed: both components thread-private).
      if (inst.op() == Op::kICmp && nx != nullptr && nx->op() == Op::kBr &&
          nx->num_operands() == 1 && nx->operand(0) == &inst &&
          inst.users().size() == 1) {
        ti.op = TOp::kCmpBr;
        ti.extra = static_cast<uint8_t>(inst.pred);
        ti.a = slot_of(inst.operand(0));
        ti.b = slot_of(inst.operand(1));
        ti.dst = static_cast<uint32_t>(inst.id);
        ti.aux = static_cast<uint32_t>(tr->brs.size());
        tr->brs.push_back(
            {BrTarget{0, nx->targets[0], 0}, BrTarget{0, nx->targets[1], 0}});
        ti.cost = static_cast<uint32_t>(c.alu + c.branch);
        ti.jitter = 2;
        ti.n_instrs = 2;
        code.push_back(ti);
        it = next_it;  // consume the br (block terminator: loop ends)
        continue;
      }

      // shl + add + load/store: scaled-index addressing, 3 adjacent folded
      // components.
      if (fusion_full && inst.op() == Op::kShl && folded(&inst) &&
          inst.users().size() == 1 && nx != nullptr &&
          inst.users()[0] == nx && nx->op() == Op::kAdd && folded(nx) &&
          nx->users().size() == 1 && UsesExactlyOnce(nx, &inst)) {
        auto nn_it = std::next(next_it);
        const Instruction* nn =
            nn_it != insts.end() ? nn_it->get() : nullptr;
        if (nn != nullptr && nx->users()[0] == nn &&
            (nn->op() == Op::kLoad || nn->op() == Op::kStore) &&
            nn->operand(0) == nx &&
            (nn->op() == Op::kLoad || nn->operand(1) != nx)) {
          const Value* other =
              nx->operand(0) == &inst ? nx->operand(1) : nx->operand(0);
          ti.op = nn->op() == Op::kLoad ? TOp::kLoadBIS : TOp::kStoreBIS;
          ti.a = slot_of(other);
          ti.b = slot_of(inst.operand(0));
          ti.extra = static_cast<uint8_t>(
              static_cast<const ir::Constant*>(inst.operand(1))->value());
          ti.size = static_cast<uint8_t>(nn->size);
          if (nn->op() == Op::kLoad) {
            ti.dst = static_cast<uint32_t>(nn->id);
          } else {
            ti.c = slot_of(nn->operand(1));
          }
          ti.cost = static_cast<uint32_t>(c.mem_access);
          ti.jitter = 1;  // shl and add are folded: only the memop draws
          ti.n_instrs = 3;
          code.push_back(ti);
          it = nn_it;
          continue;
        }
      }

      // add + load/store: base+index addressing, 2 adjacent components.
      if (fusion_full && inst.op() == Op::kAdd && folded(&inst) &&
          inst.users().size() == 1 && nx != nullptr &&
          inst.users()[0] == nx &&
          (nx->op() == Op::kLoad || nx->op() == Op::kStore) &&
          nx->operand(0) == &inst &&
          (nx->op() == Op::kLoad || nx->operand(1) != &inst)) {
        ti.op = nx->op() == Op::kLoad ? TOp::kLoadBI : TOp::kStoreBI;
        ti.a = slot_of(inst.operand(0));
        ti.b = slot_of(inst.operand(1));
        ti.size = static_cast<uint8_t>(nx->size);
        if (nx->op() == Op::kLoad) {
          ti.dst = static_cast<uint32_t>(nx->id);
        } else {
          ti.c = slot_of(nx->operand(1));
        }
        ti.cost = static_cast<uint32_t>(c.mem_access);
        ti.jitter = 1;
        ti.n_instrs = 2;
        code.push_back(ti);
        it = next_it;
        continue;
      }

      // load + single-use ALU consumer.
      if (fusion_full && inst.op() == Op::kLoad &&
          inst.users().size() == 1 && nx != nullptr &&
          inst.users()[0] == nx && !folded(nx) &&
          (nx->op() == Op::kAdd || nx->op() == Op::kSub ||
           nx->op() == Op::kAnd || nx->op() == Op::kOr ||
           nx->op() == Op::kXor) &&
          UsesExactlyOnce(nx, &inst)) {
        bool mem_lhs = nx->operand(0) == &inst;
        ti.op = TOp::kLoadOp;
        ti.a = slot_of(inst.operand(0));
        ti.c = slot_of(mem_lhs ? nx->operand(1) : nx->operand(0));
        ti.dst = static_cast<uint32_t>(nx->id);
        ti.size = static_cast<uint8_t>(inst.size);
        ti.extra = static_cast<uint8_t>(AluTOpFor(nx->op())) |
                   (mem_lhs ? 0x80 : 0);
        ti.cost = static_cast<uint32_t>(c.mem_access + c.alu);
        ti.jitter = 2;
        ti.n_instrs = 2;
        code.push_back(ti);
        it = next_it;
        continue;
      }

      // fence + store (the dominant TSO store-release pattern).
      if (fusion_full && inst.op() == Op::kFence && nx != nullptr &&
          nx->op() == Op::kStore) {
        ti.op = TOp::kFenceStore;
        ti.a = slot_of(nx->operand(0));
        ti.b = slot_of(nx->operand(1));
        ti.size = static_cast<uint8_t>(nx->size);
        ti.cost = static_cast<uint32_t>(c.fence + c.mem_access);
        ti.jitter = 2;
        ti.n_instrs = 2;
        code.push_back(ti);
        it = next_it;
        continue;
      }

      // --- Single-instruction translation. ---
      switch (inst.op()) {
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kSDiv:
        case Op::kSRem:
        case Op::kUDiv:
        case Op::kURem:
        case Op::kAnd:
        case Op::kOr:
        case Op::kXor:
        case Op::kShl:
        case Op::kLShr:
        case Op::kAShr:
          ti.op = AluTOpFor(inst.op());
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(AluBaseCost(inst.op(), c));
          ti.jitter = 1;
          break;
        case Op::kICmp:
          ti.op = TOp::kICmp;
          ti.extra = static_cast<uint8_t>(inst.pred);
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.alu);
          ti.jitter = 1;
          break;
        case Op::kSelect:
          ti.op = TOp::kSelect;
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.c = slot_of(inst.operand(2));
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.alu);
          ti.jitter = 1;
          break;
        case Op::kSExt:
          ti.op = TOp::kSExt;
          ti.a = slot_of(inst.operand(0));
          ti.extra = static_cast<uint8_t>(inst.width);
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.alu);
          ti.jitter = 1;
          break;
        case Op::kLoad:
          ti.op = TOp::kLoad;
          ti.a = slot_of(inst.operand(0));
          ti.size = static_cast<uint8_t>(inst.size);
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.mem_access);
          ti.jitter = 1;
          break;
        case Op::kStore:
          ti.op = TOp::kStore;
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.size = static_cast<uint8_t>(inst.size);
          ti.cost = static_cast<uint32_t>(c.mem_access);
          ti.jitter = 1;
          break;
        case Op::kGlobalLoad:
          ti.op = inst.global->is_thread_local() ? TOp::kGlobalLoadTls
                                                 : TOp::kGlobalLoadShared;
          ti.aux = static_cast<uint32_t>(inst.global->slot());
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.global_access);
          ti.jitter = 1;
          break;
        case Op::kGlobalStore:
          ti.op = inst.global->is_thread_local() ? TOp::kGlobalStoreTls
                                                 : TOp::kGlobalStoreShared;
          ti.aux = static_cast<uint32_t>(inst.global->slot());
          ti.a = slot_of(inst.operand(0));
          ti.cost = static_cast<uint32_t>(c.global_access);
          ti.jitter = 1;
          break;
        case Op::kFence:
          ti.op = TOp::kFence;
          ti.cost = static_cast<uint32_t>(c.fence);
          ti.jitter = 1;
          break;
        case Op::kAtomicRmw:
          ti.op = TOp::kAtomicRmw;
          ti.extra = static_cast<uint8_t>(inst.rmw_op);
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.size = static_cast<uint8_t>(inst.size);
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.atomic);
          ti.jitter = 1;
          break;
        case Op::kCmpXchg:
          ti.op = TOp::kCmpXchg;
          ti.a = slot_of(inst.operand(0));
          ti.b = slot_of(inst.operand(1));
          ti.c = slot_of(inst.operand(2));
          ti.size = static_cast<uint8_t>(inst.size);
          ti.dst = static_cast<uint32_t>(inst.id);
          ti.cost = static_cast<uint32_t>(c.atomic);
          ti.jitter = 1;
          break;
        case Op::kBr:
          if (inst.num_operands() == 0) {
            ti.op = TOp::kJmp;
            ti.aux = static_cast<uint32_t>(tr->brs.size());
            tr->brs.push_back({BrTarget{0, inst.targets[0], 0}, BrTarget{}});
          } else {
            ti.op = TOp::kBrCond;
            ti.a = slot_of(inst.operand(0));
            ti.aux = static_cast<uint32_t>(tr->brs.size());
            tr->brs.push_back({BrTarget{0, inst.targets[0], 0},
                               BrTarget{0, inst.targets[1], 0}});
          }
          ti.cost = static_cast<uint32_t>(c.branch);
          ti.jitter = 1;
          break;
        case Op::kSwitch: {
          ti.op = TOp::kSwitch;
          ti.a = slot_of(inst.operand(0));
          ti.aux = static_cast<uint32_t>(tr->switches.size());
          SwitchInfo si;
          si.default_t = BrTarget{0, inst.targets[0], 0};
          for (size_t k = 0; k < inst.case_values.size(); ++k) {
            si.cases.push_back(
                {static_cast<uint64_t>(inst.case_values[k]),
                 BrTarget{0, inst.targets[k + 1], 0}});
          }
          tr->switches.push_back(std::move(si));
          ti.cost =
              static_cast<uint32_t>(SwitchCost(inst.case_values.size()));
          ti.jitter = 1;
          break;
        }
        case Op::kRet:
          ti.op = TOp::kRet;
          ti.a = inst.num_operands() > 0 ? slot_of(inst.operand(0)) : kNoDst;
          ti.cost = static_cast<uint32_t>(c.ret);
          ti.jitter = 1;
          break;
        case Op::kCall:
          if (inst.callee != nullptr) {
            ti.op = TOp::kCall;
            ti.aux = static_cast<uint32_t>(tr->calls.size());
            tr->calls.push_back(e_.InfoFor(inst.callee));
            ti.dst = inst.HasResult() ? static_cast<uint32_t>(inst.id)
                                      : kNoDst;
            ti.cost = static_cast<uint32_t>(c.call);
            ti.jitter = 1;
          } else {
            ti.op = TOp::kIntrinsic;
            // extra: controlled-scheduler visibility class, mirroring the
            // interpreter's ClassifyNextOp.
            if (inst.intrinsic == "ext_call" ||
                inst.intrinsic == "global_lock" ||
                inst.intrinsic == "global_unlock") {
              ti.extra = 1;
            } else if (inst.intrinsic == "pause") {
              ti.extra = 2;
            } else {
              ti.extra = 0;
            }
            ti.cost = 0;  // intrinsics charge their own cost
            ti.jitter = 1;
          }
          break;
        default:
          // kPhi handled above, kUnreachable excluded by coverage.
          POLY_UNREACHABLE("unexpected op in covered block");
      }
      // Addressing-fold members are free in tier 0; mirror exactly.
      if (folded(&inst)) {
        ti.cost = 0;
        ti.jitter = 0;
      }
      code.push_back(ti);
    }
  }

  // ---- Pass B: resolve branch targets; build edge + deopt stubs. ----
  auto head_of = [&](const BasicBlock* b) { return tr->block_heads.at(b); };
  std::map<std::pair<const BasicBlock*, const BasicBlock*>, uint32_t>
      edge_stubs;
  const size_t body_end = code.size();
  // By value: resolving may append edge stubs to tr->brs, so references into
  // that vector (or into code) must not be held across a resolve call.
  auto resolve = [&](BrTarget bt, const TInst br) -> BrTarget {
    BasicBlock* succ = bt.block;
    if (covered.count(succ) == 0) {
      // Uncovered edge: the branch is intercepted before executing and the
      // interpreter re-runs it from the anchor (cfmiss/trap follows there).
      TInst d;
      d.op = TOp::kDeopt;
      d.extra = static_cast<uint8_t>(DeoptReason::kUncoveredEdge);
      d.n_instrs = 0;
      d.block = br.block;
      d.anchor = br.anchor;
      d.site = br.site;
      bt.tpc = static_cast<uint32_t>(code.size());
      code.push_back(d);
      return bt;
    }
    bt.site = site_of(succ);
    size_t nphis = 0;
    for (const auto& inst : succ->insts()) {
      if (inst->op() != Op::kPhi) {
        break;
      }
      ++nphis;
    }
    if (nphis == 0) {
      bt.tpc = head_of(succ);
      return bt;
    }
    auto key = std::make_pair(static_cast<const BasicBlock*>(br.block),
                              static_cast<const BasicBlock*>(succ));
    auto cached = edge_stubs.find(key);
    if (cached != edge_stubs.end()) {
      bt.tpc = cached->second;
      return bt;
    }
    // Parallel-copy stub: one direct copy for a single phi, scratch-slot
    // staging for two or more (EnterBlock's two-phase semantics).
    uint32_t stub = static_cast<uint32_t>(code.size());
    auto emit_copy = [&](uint32_t src, uint32_t dst) {
      if (src == dst) {
        return;
      }
      TInst cp;
      cp.op = TOp::kCopy;
      cp.a = src;
      cp.dst = dst;
      cp.cost = 0;
      cp.jitter = 0;
      cp.n_instrs = 0;
      cp.block = succ;
      cp.site = bt.site;
      code.push_back(cp);
    };
    auto incoming_slot = [&](const Instruction* phi) -> uint32_t {
      int idx = -1;
      for (size_t i = 0; i < phi->phi_blocks.size(); ++i) {
        if (phi->phi_blocks[i] == br.block) {
          idx = static_cast<int>(i);
          break;
        }
      }
      POLY_CHECK_GE(idx, 0) << "phi missing incoming block";
      return slot_of(phi->operand(idx));
    };
    size_t k = 0;
    if (nphis == 1) {
      const Instruction* phi = succ->insts().begin()->get();
      emit_copy(incoming_slot(phi), static_cast<uint32_t>(phi->id));
    } else {
      for (const auto& inst : succ->insts()) {
        if (inst->op() != Op::kPhi) {
          break;
        }
        emit_copy(incoming_slot(inst.get()),
                  tr->scratch_base + static_cast<uint32_t>(k++));
      }
      k = 0;
      for (const auto& inst : succ->insts()) {
        if (inst->op() != Op::kPhi) {
          break;
        }
        emit_copy(tr->scratch_base + static_cast<uint32_t>(k++),
                  static_cast<uint32_t>(inst->id));
      }
    }
    // Stub-internal jump (extra=1): free, no profile entry — the branch
    // that entered the stub already counted the edge.
    TInst j;
    j.op = TOp::kJmp;
    j.extra = 1;
    j.cost = 0;
    j.jitter = 0;
    j.n_instrs = 0;
    j.block = succ;
    j.site = bt.site;
    j.aux = static_cast<uint32_t>(tr->brs.size());
    tr->brs.push_back({BrTarget{head_of(succ), succ, bt.site}, BrTarget{}});
    code.push_back(j);
    edge_stubs[key] = stub;
    bt.tpc = stub;
    return bt;
  };
  for (size_t i = 0; i < body_end; ++i) {
    const TInst ti = code[i];  // copy: resolve appends to code
    switch (ti.op) {
      case TOp::kJmp: {
        BrTarget then_t = resolve(tr->brs[ti.aux].then_t, ti);
        tr->brs[ti.aux].then_t = then_t;
        break;
      }
      case TOp::kBrCond:
      case TOp::kCmpBr: {
        BrTarget then_t = resolve(tr->brs[ti.aux].then_t, ti);
        tr->brs[ti.aux].then_t = then_t;
        BrTarget else_t = resolve(tr->brs[ti.aux].else_t, ti);
        tr->brs[ti.aux].else_t = else_t;
        break;
      }
      case TOp::kSwitch: {
        for (size_t c = 0; c < tr->switches[ti.aux].cases.size(); ++c) {
          BrTarget bt = resolve(tr->switches[ti.aux].cases[c].second, ti);
          tr->switches[ti.aux].cases[c].second = bt;
        }
        BrTarget bt = resolve(tr->switches[ti.aux].default_t, ti);
        tr->switches[ti.aux].default_t = bt;
        break;
      }
      default:
        break;
    }
  }

  info->translation = std::move(tr);
  return true;
}

// ---------------------------------------------------------------------------
// Runtime support
// ---------------------------------------------------------------------------

void Tier1Backend::EnsureTier1Values(Frame& f) {
  const Translation& tr = *f.info->translation;
  if (f.values.size() < static_cast<size_t>(tr.num_values)) {
    f.values.resize(tr.num_values, 0);
    std::copy(tr.const_pool.begin(), tr.const_pool.end(),
              f.values.begin() + tr.const_base);
  }
}

ir::BasicBlock* Tier1Backend::CurrentBlock(const Frame& f) const {
  return f.info->translation->code[f.tpc].block;
}

void Tier1Backend::Deopt(Thread& t, Frame& f, const TInst& ti,
                         DeoptReason reason) {
  // Resident tier before the flags flip (forensics: where the guard fired).
  const int resident_tier = f.native ? 2 : 1;
  f.translated = false;
  f.native = false;  // a preempt deopt may hit a tier-2 frame (kSingle path)
  f.block = ti.block;
  f.it = ti.anchor;
  f.profile_site = ti.site;
  ++e_.deopt_counts_[static_cast<int>(reason)];
  if (e_.tierprof_ != nullptr) {
    e_.tierprof_->RecordDeopt(
        t.id, e_.TierProfId(f.info), resident_tier,
        static_cast<uint8_t>(reason),
        ti.block != nullptr ? ti.block->guest_address : 0, e_.steps_);
  }
  e_.options_.obs.Add(obs::Counter::kExecDeopts);
  switch (reason) {
    case DeoptReason::kPreempt:
      e_.options_.obs.Add(obs::Counter::kExecDeoptPreempt);
      break;
    case DeoptReason::kSmcWrite:
      e_.options_.obs.Add(obs::Counter::kExecDeoptSmcWrite);
      break;
    default:
      e_.options_.obs.Add(obs::Counter::kExecDeoptUncovered);
      if (f.info->fn != nullptr &&
          e_.options_.cfg_certified_entries.count(f.info->fn->guest_entry) !=
              0) {
        // A certificate promised this function had no uncovered edges.
        e_.options_.obs.Add(obs::Counter::kExecDeoptUncoveredCert);
      }
      break;
  }
}

NextOp Tier1Backend::Classify(const Thread& t, const Frame& f) const {
  const Translation& tr = *f.info->translation;
  const TInst& ti = tr.code[f.tpc];
  const uint64_t* v = f.values.data();
  NextOp op;
  auto mem = [&](uint64_t addr, bool is_store) {
    if (addr >= t.estack_low && addr < t.estack_high) {
      return;  // emulated-stack access: thread-private
    }
    op.visible = true;
    op.mutates = is_store;
    op.kind = is_store ? sched::PointKind::kStore : sched::PointKind::kLoad;
  };
  switch (ti.op) {
    case TOp::kLoad:
    case TOp::kLoadOp:
      mem(v[ti.a], false);
      return op;
    case TOp::kLoadBI:
      mem(v[ti.a] + v[ti.b], false);
      return op;
    case TOp::kLoadBIS:
      mem(v[ti.a] + (v[ti.b] << ti.extra), false);
      return op;
    case TOp::kStore:
    case TOp::kFenceStore:
      mem(v[ti.a], true);
      if (ti.op == TOp::kFenceStore) {
        op.visible = true;  // the fence component is always visible
      }
      return op;
    case TOp::kStoreBI:
      mem(v[ti.a] + v[ti.b], true);
      return op;
    case TOp::kStoreBIS:
      mem(v[ti.a] + (v[ti.b] << ti.extra), true);
      return op;
    case TOp::kAtomicRmw:
    case TOp::kCmpXchg:
      op.visible = true;
      op.mutates = true;
      op.kind = sched::PointKind::kAtomic;
      return op;
    case TOp::kFence:
      op.visible = true;
      op.kind = sched::PointKind::kFence;
      return op;
    case TOp::kGlobalLoadShared:
      op.visible = true;
      op.kind = sched::PointKind::kLoad;
      return op;
    case TOp::kGlobalStoreShared:
      op.visible = true;
      op.mutates = true;
      op.kind = sched::PointKind::kStore;
      return op;
    case TOp::kIntrinsic:
      if (ti.extra == 1) {
        op.visible = true;
        op.mutates = true;
        op.kind = sched::PointKind::kExternal;
      } else if (ti.extra == 2) {
        op.visible = true;
        op.yield_hint = true;
        op.kind = sched::PointKind::kExternal;
      }
      return op;
    default:
      return op;  // ALU, copies, branches, call/ret: thread-private
  }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

bool Tier1Backend::Step(Thread& t, StepMode mode) {
  return e_.obs_attached_ ? StepImpl<true>(t, mode) : StepImpl<false>(t, mode);
}

template <bool kObs>
bool Tier1Backend::StepImpl(Thread& t, StepMode mode) {
  Frame* f = &t.stack.back();
  const Translation* tr = f->info->translation.get();
  const std::vector<TInst>& code = tr->code;
  uint64_t* v = f->values.data();
  vm::Memory& mem = e_.memory_;
  const bool jitter = e_.options_.cost_jitter;
  auto* profile = kObs ? e_.options_.obs.profile : nullptr;
  // Residency attribution target: the whole batch retires in this frame's
  // function (call/ret end the batch), and FuncInfo outlives the frame, so
  // the flush sites below stay valid even after kRet pops `f`.
  FuncInfo* fi = kObs ? f->info : nullptr;
  auto* tierprof = kObs ? e_.tierprof_ : nullptr;

  // `executed` counts retired IR instructions; the outer scheduling loop
  // adds 1 per Step, so normal returns flush executed-1 (fault returns flush
  // all of it — tier 0's faulting step is never counted either).
  uint64_t executed = 0;
  uint64_t budget = 1;
  if (mode != StepMode::kSingle) {
    // The outer loop faults once steps_ exceeds max_steps, with the
    // over-limit instruction retired and charged exactly like tier 0's: a
    // batch may run at most (max_steps - steps_ + 1) instructions.
    uint64_t left = e_.options_.max_steps >= e_.steps_
                        ? e_.options_.max_steps - e_.steps_ + 1
                        : 1;
    budget = std::min<uint64_t>(65536, left);
  }

  auto finish_true = [&]() {
    e_.steps_ += executed > 0 ? executed - 1 : 0;
    e_.tier1_instrs_ += executed;
    if constexpr (kObs) {
      if (tierprof != nullptr) {
        fi->tp_steps[1] += executed;
      }
    }
    return true;
  };
  auto finish_false = [&]() {
    e_.steps_ += executed;
    e_.tier1_instrs_ += executed;
    if constexpr (kObs) {
      if (tierprof != nullptr) {
        fi->tp_steps[1] += executed;
      }
    }
    return false;
  };
  auto do_deopt = [&](const TInst& anchor_ti, DeoptReason reason) {
    Deopt(t, *f, anchor_ti, reason);
    if (executed == 0) {
      // Keep the ≥1-instruction-per-Step contract: interpret the deopted
      // operation inline (the scheduler's decision already covered it).
      return e_.StepInstruction(t);
    }
    e_.steps_ += executed - 1;
    e_.tier1_instrs_ += executed;
    if constexpr (kObs) {
      if (tierprof != nullptr) {
        fi->tp_steps[1] += executed;
      }
    }
    return true;
  };
  auto charge = [&](const TInst& ti) {
    uint64_t cost = ti.cost;
    if (jitter) {
      for (int j = 0; j < ti.jitter; ++j) {
        cost += t.jitter_rng.Next() & 1;
      }
    }
    t.clock += cost;
    executed += ti.n_instrs;
    if constexpr (kObs) {
      if (profile != nullptr && ti.n_instrs > 0) {
        profile->AddInstrs(ti.site, ti.n_instrs);
      }
    }
  };
  auto is_visible = [&](const TInst& ti) {
    switch (ti.op) {
      case TOp::kLoad:
      case TOp::kLoadOp:
      case TOp::kStore: {
        uint64_t addr = v[ti.a];
        return !(addr >= t.estack_low && addr < t.estack_high);
      }
      case TOp::kLoadBI:
      case TOp::kStoreBI: {
        uint64_t addr = v[ti.a] + v[ti.b];
        return !(addr >= t.estack_low && addr < t.estack_high);
      }
      case TOp::kLoadBIS:
      case TOp::kStoreBIS: {
        uint64_t addr = v[ti.a] + (v[ti.b] << ti.extra);
        return !(addr >= t.estack_low && addr < t.estack_high);
      }
      case TOp::kFence:
      case TOp::kFenceStore:
      case TOp::kAtomicRmw:
      case TOp::kCmpXchg:
      case TOp::kGlobalLoadShared:
      case TOp::kGlobalStoreShared:
        return true;
      case TOp::kIntrinsic:
        return ti.extra != 0;
      default:
        return false;
    }
  };
  auto take_branch = [&](const TInst& ti, const BrTarget& bt) {
    f->tpc = bt.tpc;
    f->profile_site = bt.site;
    if constexpr (kObs) {
      if (profile != nullptr) {
        profile->AddEntry(bt.site);
      }
    }
    charge(ti);
  };

  for (;;) {
    const TInst& ti = code[f->tpc];
    const bool zero_width =
        ti.op == TOp::kCopy || (ti.op == TOp::kJmp && ti.extra == 1);
    if (!zero_width) {
      // Edge stubs drain with the branch that entered them; real operations
      // honor the stop rules.
      if (executed >= budget) {
        return finish_true();
      }
      if (mode == StepMode::kBatch && executed > 0 && is_visible(ti)) {
        return finish_true();  // stop before visible ops: min-clock parity
      }
      if (mode == StepMode::kSingle && is_visible(ti)) {
        // The controlled scheduler owns every visible operation: hand it to
        // the interpreter so decision points match tier 0 exactly.
        return do_deopt(ti, DeoptReason::kPreempt);
      }
    }

    switch (ti.op) {
      case TOp::kAdd:
        v[ti.dst] = v[ti.a] + v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kSub:
        v[ti.dst] = v[ti.a] - v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kMul:
        v[ti.dst] = v[ti.a] * v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kSDiv:
      case TOp::kSRem: {
        uint64_t a = v[ti.a], b = v[ti.b];
        if (b == 0) {
          e_.Fault("division by zero in lifted code");
          return finish_false();
        }
        int64_t sa = static_cast<int64_t>(a);
        int64_t sb = static_cast<int64_t>(b);
        if (sa == INT64_MIN && sb == -1) {
          e_.Fault("division overflow in lifted code");
          return finish_false();
        }
        v[ti.dst] = static_cast<uint64_t>(ti.op == TOp::kSDiv ? sa / sb
                                                              : sa % sb);
        charge(ti);
        ++f->tpc;
        break;
      }
      case TOp::kUDiv:
      case TOp::kURem: {
        uint64_t a = v[ti.a], b = v[ti.b];
        if (b == 0) {
          e_.Fault("division by zero in lifted code");
          return finish_false();
        }
        v[ti.dst] = ti.op == TOp::kUDiv ? a / b : a % b;
        charge(ti);
        ++f->tpc;
        break;
      }
      case TOp::kAnd:
        v[ti.dst] = v[ti.a] & v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kOr:
        v[ti.dst] = v[ti.a] | v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kXor:
        v[ti.dst] = v[ti.a] ^ v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kShl:
        v[ti.dst] = v[ti.b] >= 64 ? 0 : v[ti.a] << v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kLShr:
        v[ti.dst] = v[ti.b] >= 64 ? 0 : v[ti.a] >> v[ti.b];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kAShr:
        v[ti.dst] = static_cast<uint64_t>(static_cast<int64_t>(v[ti.a]) >>
                                          (v[ti.b] >= 64 ? 63 : v[ti.b]));
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kICmp:
        v[ti.dst] =
            EvalPred(static_cast<Pred>(ti.extra), v[ti.a], v[ti.b]);
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kSelect:
        v[ti.dst] = v[ti.a] != 0 ? v[ti.b] : v[ti.c];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kSExt: {
        int shift = 64 - ti.extra;
        v[ti.dst] = static_cast<uint64_t>(
            static_cast<int64_t>(v[ti.a] << shift) >> shift);
        charge(ti);
        ++f->tpc;
        break;
      }

      case TOp::kLoad:
        v[ti.dst] = mem.Read(v[ti.a], ti.size);
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();  // surface at tier-0 granularity
        }
        break;
      case TOp::kLoadBI:
        v[ti.dst] = mem.Read(v[ti.a] + v[ti.b], ti.size);
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      case TOp::kLoadBIS:
        v[ti.dst] = mem.Read(v[ti.a] + (v[ti.b] << ti.extra), ti.size);
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      case TOp::kLoadOp: {
        uint64_t m = mem.Read(v[ti.a], ti.size);
        uint64_t other = v[ti.c];
        bool mem_lhs = (ti.extra & 0x80) != 0;
        uint64_t x = mem_lhs ? m : other;
        uint64_t y = mem_lhs ? other : m;
        uint64_t r;
        switch (static_cast<TOp>(ti.extra & 0x7f)) {
          case TOp::kAdd:
            r = x + y;
            break;
          case TOp::kSub:
            r = x - y;
            break;
          case TOp::kAnd:
            r = x & y;
            break;
          case TOp::kOr:
            r = x | y;
            break;
          default:
            r = x ^ y;
            break;
        }
        v[ti.dst] = r;
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }

      case TOp::kStore: {
        uint64_t addr = v[ti.a];
        if (mem.InExecutableRange(addr, ti.size)) {
          return do_deopt(ti, DeoptReason::kSmcWrite);
        }
        mem.Write(addr, ti.size, MaskBytes(v[ti.b], ti.size));
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }
      case TOp::kStoreBI: {
        uint64_t addr = v[ti.a] + v[ti.b];
        if (mem.InExecutableRange(addr, ti.size)) {
          return do_deopt(ti, DeoptReason::kSmcWrite);
        }
        mem.Write(addr, ti.size, MaskBytes(v[ti.c], ti.size));
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }
      case TOp::kStoreBIS: {
        uint64_t addr = v[ti.a] + (v[ti.b] << ti.extra);
        if (mem.InExecutableRange(addr, ti.size)) {
          return do_deopt(ti, DeoptReason::kSmcWrite);
        }
        mem.Write(addr, ti.size, MaskBytes(v[ti.c], ti.size));
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }
      case TOp::kFenceStore: {
        uint64_t addr = v[ti.a];
        if (mem.InExecutableRange(addr, ti.size)) {
          return do_deopt(ti, DeoptReason::kSmcWrite);
        }
        if constexpr (kObs) {
          if (profile != nullptr) {
            profile->AddFence(ti.site);
          }
          e_.options_.obs.Add(obs::Counter::kExecFences);
        }
        mem.Write(addr, ti.size, MaskBytes(v[ti.b], ti.size));
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }

      case TOp::kGlobalLoadTls:
        v[ti.dst] = t.tls[ti.aux];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kGlobalLoadShared:
        v[ti.dst] = e_.shared_globals_[ti.aux];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kGlobalStoreTls:
        t.tls[ti.aux] = v[ti.a];
        charge(ti);
        ++f->tpc;
        break;
      case TOp::kGlobalStoreShared:
        e_.shared_globals_[ti.aux] = v[ti.a];
        charge(ti);
        ++f->tpc;
        break;

      case TOp::kFence:
        if constexpr (kObs) {
          if (profile != nullptr) {
            profile->AddFence(ti.site);
          }
          e_.options_.obs.Add(obs::Counter::kExecFences);
        }
        charge(ti);
        ++f->tpc;
        break;

      case TOp::kAtomicRmw: {
        uint64_t addr = v[ti.a];
        uint64_t operand = v[ti.b];
        uint64_t old = mem.Read(addr, ti.size);
        uint64_t r = old;
        switch (static_cast<RmwOp>(ti.extra)) {
          case RmwOp::kAdd:
            r = old + operand;
            break;
          case RmwOp::kSub:
            r = old - operand;
            break;
          case RmwOp::kAnd:
            r = old & operand;
            break;
          case RmwOp::kOr:
            r = old | operand;
            break;
          case RmwOp::kXor:
            r = old ^ operand;
            break;
          case RmwOp::kXchg:
            r = operand;
            break;
        }
        mem.Write(addr, ti.size, MaskBytes(r, ti.size));
        v[ti.dst] = old;
        if constexpr (kObs) {
          if (profile != nullptr) {
            profile->AddAtomic(ti.site);
          }
          e_.options_.obs.Add(obs::Counter::kExecAtomics);
        }
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }
      case TOp::kCmpXchg: {
        uint64_t addr = v[ti.a];
        uint64_t expected = MaskBytes(v[ti.b], ti.size);
        uint64_t old = mem.Read(addr, ti.size);
        if (old == expected) {
          mem.Write(addr, ti.size, MaskBytes(v[ti.c], ti.size));
        }
        v[ti.dst] = old;
        if constexpr (kObs) {
          if (profile != nullptr) {
            profile->AddAtomic(ti.site);
          }
          e_.options_.obs.Add(obs::Counter::kExecAtomics);
        }
        charge(ti);
        ++f->tpc;
        if (mem.faulted()) {
          return finish_true();
        }
        break;
      }

      case TOp::kJmp: {
        const BrTarget& bt = tr->brs[ti.aux].then_t;
        if (ti.extra == 1) {
          f->tpc = bt.tpc;  // stub-internal: free, already counted
          break;
        }
        const TInst& tt = code[bt.tpc];
        if (tt.op == TOp::kDeopt) {
          return do_deopt(tt, static_cast<DeoptReason>(tt.extra));
        }
        take_branch(ti, bt);
        break;
      }
      case TOp::kBrCond: {
        const BrInfo& bi = tr->brs[ti.aux];
        const BrTarget& bt = v[ti.a] != 0 ? bi.then_t : bi.else_t;
        const TInst& tt = code[bt.tpc];
        if (tt.op == TOp::kDeopt) {
          return do_deopt(tt, static_cast<DeoptReason>(tt.extra));
        }
        take_branch(ti, bt);
        break;
      }
      case TOp::kCmpBr: {
        uint64_t cond =
            EvalPred(static_cast<Pred>(ti.extra), v[ti.a], v[ti.b]);
        const BrInfo& bi = tr->brs[ti.aux];
        const BrTarget& bt = cond != 0 ? bi.then_t : bi.else_t;
        const TInst& tt = code[bt.tpc];
        if (tt.op == TOp::kDeopt) {
          // Anchor is the icmp: tier 0 re-executes both components.
          return do_deopt(tt, static_cast<DeoptReason>(tt.extra));
        }
        v[ti.dst] = cond;
        take_branch(ti, bt);
        break;
      }
      case TOp::kSwitch: {
        const SwitchInfo& si = tr->switches[ti.aux];
        uint64_t value = v[ti.a];
        const BrTarget* bt = &si.default_t;
        for (const auto& [case_value, target] : si.cases) {
          if (case_value == value) {
            bt = &target;
            break;
          }
        }
        const TInst& tt = code[bt->tpc];
        if (tt.op == TOp::kDeopt) {
          return do_deopt(tt, static_cast<DeoptReason>(tt.extra));
        }
        take_branch(ti, *bt);
        break;
      }

      case TOp::kRet: {
        uint64_t value = ti.a == kNoDst ? 0 : v[ti.a];
        bool was_root = f->dispatch_root;
        charge(ti);
        t.stack.pop_back();  // f and v dangle from here
        if (t.stack.empty() || was_root) {
          t.pending_pc = value;
          t.last_toplevel_pc = value;
        } else {
          Frame& caller = t.stack.back();
          if (caller.translated) {
            const TInst& call = caller.info->translation->code[caller.tpc];
            POLY_CHECK(call.op == TOp::kCall);
            if (call.dst != kNoDst) {
              caller.values[call.dst] = value;
            }
            ++caller.tpc;
          } else {
            const Instruction& call_inst = **caller.it;
            POLY_CHECK(call_inst.op() == Op::kCall);
            if (call_inst.HasResult()) {
              caller.values[static_cast<size_t>(call_inst.id)] = value;
            }
            ++caller.it;
          }
        }
        return finish_true();
      }

      case TOp::kCall: {
        charge(ti);
        // tpc stays at the call; the matching return advances it.
        e_.PushFrame(t, tr->calls[ti.aux], /*dispatch_root=*/false);
        return finish_true();
      }

      case TOp::kIntrinsic: {
        const size_t frame_index = t.stack.size() - 1;
        // Flush retired work: the intrinsic may nest dispatches (qsort
        // callbacks) whose own stepping must see an up-to-date count. The
        // intrinsic itself is covered by the outer loop's +1.
        e_.steps_ += executed;
        e_.tier1_instrs_ += executed;
        if constexpr (kObs) {
          if (tierprof != nullptr) {
            fi->tp_steps[1] += executed;
          }
        }
        executed = 0;
        const Instruction& inst = **ti.anchor;
        if (!e_.HandleIntrinsic(t, frame_index, inst)) {
          return !e_.faulted_ && e_.miss_ == std::nullopt;
        }
        Frame& ff = t.stack[frame_index];  // nested dispatch may reallocate
        if (e_.retry_pending_) {
          e_.retry_pending_ = false;
          e_.last_step_retried_ = true;
        } else {
          ++ff.tpc;
        }
        if (jitter) {
          t.clock += t.jitter_rng.Next() & 1;
        }
        if constexpr (kObs) {
          if (profile != nullptr) {
            profile->AddInstrs(ti.site, 1);
          }
          if (tierprof != nullptr) {
            fi->tp_steps[1] += 1;
          }
        }
        e_.tier1_instrs_ += 1;
        return true;
      }

      case TOp::kCopy:
        v[ti.dst] = v[ti.a];
        ++f->tpc;
        break;

      case TOp::kDeopt:
      default:
        // Unreachable by construction (branch targets are intercepted), but
        // transfer control soundly if ever landed on.
        return do_deopt(ti, static_cast<DeoptReason>(ti.extra));
    }

    if (e_.exited_) {
      return finish_true();
    }
  }
}

template bool Tier1Backend::StepImpl<true>(Thread& t, StepMode mode);
template bool Tier1Backend::StepImpl<false>(Thread& t, StepMode mode);

}  // namespace polynima::exec
