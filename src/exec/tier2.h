// Tier 2: native x86-64 re-emission of tier-1 superinstruction streams
// (DESIGN.md §4g).
//
// Tier 2 is deliberately *not* a new compiler. It takes the tier-1
// Translation — the fused, cost-annotated TInst stream that already encodes
// every determinism rule (fusion boundaries, per-TInst cost and jitter-draw
// counts, deopt stubs on uncovered edges) — and re-emits each TInst as a
// short host-code snippet through the project's own x86 assembler. Because
// both tiers execute the same stream position-for-position, everything that
// makes tier 1 bit-identical to the interpreter is inherited wholesale:
//
//   - the virtual clock advances by the same per-TInst costs, and jitter
//     draws come from the same per-thread SplitMix64 stream (inlined into
//     the native code, state carried in a callee-saved register);
//   - stores check Memory::InExecutableRange before retiring and exit with a
//     self-modifying-code deopt, exactly where tier 1 would;
//   - branches into uncovered blocks exit through the same kDeopt stub
//     TInsts, before any charging;
//   - batch execution stops before guest-visible operations under the same
//     executed>0 rule, so min-clock interleavings are unchanged;
//   - controlled-scheduler (kSingle) stepping is delegated to the tier-1
//     executor over the same stream, so preemption deopts and decision
//     points are trivially identical.
//
// Mechanically, a translated function becomes one flat code region with a
// native entry offset per TInst index (tpc). Entry happens through a single
// shared thunk that loads the hot state (values base, clock, executed
// counter, rng state) from a Tier2Ctx into callee-saved registers and jumps
// to the resume offset; every exit writes the state back and reports an exit
// status + tpc. All frame manipulation — returns, calls, intrinsics, deopt
// bookkeeping, fault propagation — stays in C++, in Tier2Backend::Step,
// which mirrors tier 1's accounting exactly. Guest memory accesses go
// through C++ helpers so Memory's paging/digest/fault machinery is shared;
// a helper observing a guest fault latches it in the context and the native
// code exits at the same TInst boundary tier 1 would have stopped at.
//
// Code is installed into a W^X vm::CodeBuffer; on hosts where executable
// mappings are unavailable the tier silently stays off (engine gates on
// CodeBuffer::Supported() and Tier2Backend::ready()).
#ifndef POLYNIMA_EXEC_TIER2_H_
#define POLYNIMA_EXEC_TIER2_H_

#include <cstdint>
#include <vector>

#include "src/exec/backend.h"
#include "src/vm/code_buffer.h"

namespace polynima::exec {

class Engine;
class Tier1Backend;
struct TInst;

// Installed native code for one translated function. Offsets are per-TInst
// so execution can resume at any tpc (OSR entry, return to a call site,
// re-entry after an intrinsic).
struct NativeCode {
  const uint8_t* code = nullptr;
  size_t code_size = 0;  // installed bytes (telemetry / perf-map extent)
  std::vector<uint32_t> entry_off;  // entry_off[tpc] = offset of that TInst
};

// Shared state block between Tier2Backend::Step and generated code. Layout
// is part of the emitted-code ABI: fixed offsets, asserted in tier2.cc.
// Generated code keeps values/clock/executed/rng in registers and only
// touches the rest through [ctx + offset] addressing.
struct Tier2Ctx {
  uint64_t* values = nullptr;      // 0: frame value array base
  uint64_t clock = 0;              // 8: thread virtual clock (in/out)
  uint64_t executed = 0;           // 16: IR instructions retired this batch
  uint64_t rng_state = 0;          // 24: jitter SplitMix64 state (in/out)
  uint64_t budget = 0;             // 32: batch instruction budget
  uint64_t estack_low = 0;         // 40: private-stack visibility bounds
  uint64_t estack_high = 0;        // 48
  const uint8_t* resume = nullptr; // 56: host address to resume at
  uint64_t exit_status = 0;        // 64: Tier2Exit (out)
  uint64_t exit_tpc = 0;           // 72: TInst index of the exit site (out)
  uint64_t batch_stop = 0;         // 80: 1 = stop before visible ops (kBatch)
  uint64_t mem_fault = 0;          // 88: latched by helpers on guest fault
  uint64_t* tls = nullptr;         // 96: thread-local global slots
  uint64_t* shared = nullptr;      // 104: shared global slots
  Engine* engine = nullptr;        // 112: for helper calls
  Thread* thread = nullptr;        // 120
};

// Why generated code returned to Tier2Backend::Step.
enum class Tier2Exit : uint64_t {
  // Batch boundary: budget exhausted, visible-op stop, or a latched guest
  // memory fault. exit_tpc is the resume position (for a fault, the TInst
  // after the faulting access, mirroring tier 1's post-charge stop).
  kStop = 1,
  kRet,           // at a kRet TInst, already charged; C++ pops the frame
  kCall,          // at a kCall TInst, already charged; C++ pushes the callee
  kIntrinsic,     // at a kIntrinsic TInst, NOT charged; C++ runs the protocol
  kDeoptSmc,      // store into executable range; exit_tpc = the store TInst
  kDeoptAnchor,   // at a kDeopt stub TInst; reason is in its `extra`
  kDivZero,       // guest division by zero (engine faults)
  kDivOverflow,   // guest INT64_MIN / -1 (engine faults)
};

class Tier2Backend : public Backend {
 public:
  explicit Tier2Backend(Engine& e);
  ~Tier2Backend() override;

  const char* name() const override { return "tier2"; }

  // True once the entry thunk is installed; false means the host cannot run
  // generated code and the engine must not promote frames to tier 2.
  bool ready() const { return entry_ != nullptr; }

  // Assembles info->translation into native code and attaches it as
  // info->native. Returns false (and sets info->native_failed) when the
  // function cannot be installed; the frame then simply stays at tier 1.
  bool Translate(FuncInfo* info);

  // Executes the top frame natively (kBatch/kBatchFree). kSingle is
  // delegated to the tier-1 executor over the same stream so controlled
  // scheduling is decision-for-decision identical.
  bool Step(Thread& t, StepMode mode) override;

  // Installed executable mappings (entry thunk + translated functions).
  // Tests and CI use this to check perf-map ranges land inside real code.
  const vm::CodeBuffer& buffer() const { return buffer_; }

  // Guest-memory and observability helpers called from generated code (SysV
  // C calling convention; static so their address is an ordinary function
  // pointer). Public only because the emitter materializes their addresses —
  // not part of the C++ API.
  static uint64_t MemRead(Tier2Ctx* ctx, uint64_t addr, uint64_t size);
  static uint64_t MemWrite(Tier2Ctx* ctx, uint64_t addr, uint64_t size,
                           uint64_t value);
  static uint64_t AtomicRmw(Tier2Ctx* ctx, uint64_t addr, uint64_t operand,
                            uint64_t size_op, uint64_t site);
  static uint64_t CmpXchg(Tier2Ctx* ctx, uint64_t addr, uint64_t expected,
                          uint64_t desired, uint64_t size, uint64_t site);
  static void ObsFence(Tier2Ctx* ctx, uint64_t site);
  static void ObsInstrs(Tier2Ctx* ctx, uint64_t site, uint64_t n);
  static void ObsEntry(Tier2Ctx* ctx, uint64_t site);

 private:
  void InstallThunk();
  void Deopt(Frame& f, const TInst& ti, DeoptReason reason);
  // Bumps the running function's tier-telemetry helper counter (no-op
  // without a tierprof sink); called at the top of each helper above.
  static void CountHelper(Tier2Ctx* ctx, uint8_t helper);

  Engine& e_;
  vm::CodeBuffer buffer_;
  // Entry thunk: saves callee-saved registers, loads hot state from the ctx
  // and jumps to ctx->resume. Generated function code exits through its own
  // epilogue (store state back, restore registers, return).
  uint64_t (*entry_)(Tier2Ctx*) = nullptr;
};

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_TIER2_H_
