#include "src/exec/engine.h"

#include <algorithm>

#include "src/support/strings.h"
#include "src/x86/registers.h"

namespace polynima::exec {

namespace x86 = ::polynima::x86;

using binary::kCallbackReturnMagic;
using binary::kProgramExitMagic;
using binary::kThreadExitMagic;
using ir::BasicBlock;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;
using ir::Pred;
using ir::RmwOp;
using ir::Value;

namespace {

constexpr uint64_t kThreadStackSize = 1 << 20;

uint64_t MaskBytes(uint64_t v, int size) {
  if (size >= 8) {
    return v;
  }
  return v & ((uint64_t{1} << (size * 8)) - 1);
}

uint64_t EvalPred(Pred pred, uint64_t a, uint64_t b) {
  int64_t sa = static_cast<int64_t>(a);
  int64_t sb = static_cast<int64_t>(b);
  switch (pred) {
    case Pred::kEq:
      return a == b;
    case Pred::kNe:
      return a != b;
    case Pred::kSlt:
      return sa < sb;
    case Pred::kSle:
      return sa <= sb;
    case Pred::kSgt:
      return sa > sb;
    case Pred::kSge:
      return sa >= sb;
    case Pred::kUlt:
      return a < b;
    case Pred::kUle:
      return a <= b;
    case Pred::kUgt:
      return a > b;
    case Pred::kUge:
      return a >= b;
  }
  return 0;
}

uint64_t PackedLanes32(uint64_t a, uint64_t b, char op) {
  uint32_t a0 = static_cast<uint32_t>(a), a1 = static_cast<uint32_t>(a >> 32);
  uint32_t b0 = static_cast<uint32_t>(b), b1 = static_cast<uint32_t>(b >> 32);
  uint32_t r0, r1;
  switch (op) {
    case '+':
      r0 = a0 + b0;
      r1 = a1 + b1;
      break;
    case '-':
      r0 = a0 - b0;
      r1 = a1 - b1;
      break;
    default:
      r0 = a0 * b0;
      r1 = a1 * b1;
      break;
  }
  return static_cast<uint64_t>(r0) | (static_cast<uint64_t>(r1) << 32);
}

}  // namespace

Engine::Engine(const lift::LiftedProgram& program, const binary::Image& image,
               vm::ExternalLibrary* library, ExecOptions options)
    : program_(program),
      image_(image),
      library_(library),
      options_(options),
      rng_(options.seed) {
  for (const binary::Segment& seg : image_.segments) {
    memory_.MapSegment(seg.address, seg.bytes, /*writable=*/!seg.executable);
  }
  memory_.AllowRegion(binary::kHeapBase, binary::kHeapLimit, true);
  memory_.AllowRegion(binary::kStackRegionBase, binary::kStackRegionLimit,
                      true);

  shared_globals_.assign(
      static_cast<size_t>(program_.module->num_global_slots()), 0);
  // Cache virtual-register slots for marshaling.
  for (int i = 0; i < x86::kNumGprs; ++i) {
    Global* g = program_.module->GetGlobal(
        "vr_" + x86::RegName(static_cast<x86::Reg>(i), 8));
    POLY_CHECK(g != nullptr);
    vr_slot_[i] = g->slot();
    vr_tls_ = g->is_thread_local();
  }
}

uint64_t& Engine::GlobalSlot(Thread& t, const Global* g) {
  if (g->is_thread_local()) {
    return t.tls[static_cast<size_t>(g->slot())];
  }
  return shared_globals_[static_cast<size_t>(g->slot())];
}

Engine::Thread& Engine::CreateThread(uint64_t entry_pc, uint64_t arg0,
                                     uint64_t arg1, uint64_t exit_magic) {
  auto thread = std::make_unique<Thread>();
  thread->id = static_cast<int>(threads_.size());
  thread->tls.assign(
      static_cast<size_t>(program_.module->num_global_slots()), 0);
  uint64_t low = binary::kStackRegionBase +
                 static_cast<uint64_t>(thread->id) * kThreadStackSize;
  POLY_CHECK_LT(low + kThreadStackSize, binary::kStackRegionLimit);
  thread->estack_low = low;
  thread->estack_high = low + kThreadStackSize;
  uint64_t sp = thread->estack_high - 8;
  memory_.Write(sp, 8, exit_magic);

  auto vr = [&](int reg) -> uint64_t& {
    if (vr_tls_) {
      return thread->tls[static_cast<size_t>(vr_slot_[reg])];
    }
    return shared_globals_[static_cast<size_t>(vr_slot_[reg])];
  };
  vr(static_cast<int>(x86::Reg::kRsp)) = sp;
  vr(static_cast<int>(x86::Reg::kRdi)) = arg0;
  vr(static_cast<int>(x86::Reg::kRsi)) = arg1;

  thread->pending_pc = entry_pc;
  thread->exit_magic = exit_magic;
  threads_.push_back(std::move(thread));
  if (options_.scheduler != nullptr) {
    options_.scheduler->OnSpawn(threads_.back()->id);
  }
  return *threads_.back();
}

void Engine::Fault(std::string message) {
  if (!faulted_) {
    faulted_ = true;
    fault_message_ = std::move(message);
    options_.obs.Add(obs::Counter::kExecFaults);
  }
}

void Engine::RecordAccess(const Instruction* inst, Thread& t, uint64_t addr) {
  if (!options_.record_accesses) {
    return;
  }
  AccessRecord& rec = accesses_[inst];
  if (addr >= t.estack_low && addr < t.estack_high) {
    rec.stack_local = true;
  } else {
    rec.shared = true;
  }
  if (rec.addresses.size() < 4096) {
    rec.addresses.insert(addr);
  } else {
    rec.overflow = true;
  }
}

uint32_t Engine::ProfileSite(const Frame& f, const BasicBlock* block) {
  auto it = profile_sites_.find(block);
  if (it == profile_sites_.end()) {
    uint32_t site = options_.obs.profile->RegisterSite(
        f.fn->name(), block->name(), block->guest_address);
    it = profile_sites_.emplace(block, site).first;
  }
  return it->second;
}

uint64_t Engine::Eval(const Frame& f, const Value* v) const {
  switch (v->kind()) {
    case Value::Kind::kConstant:
      return static_cast<uint64_t>(static_cast<const ir::Constant*>(v)->value());
    case Value::Kind::kInstruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      POLY_CHECK_GE(inst->id, 0);
      return f.values[static_cast<size_t>(inst->id)];
    }
    default:
      POLY_UNREACHABLE("bad operand kind");
  }
}

void Engine::ComputeAddressingOnly(const Function* fn) {
  // Candidates: add/sub/shl-by-small-constant. Iteratively remove any whose
  // user is not a memory-address position or another surviving candidate.
  std::set<const Instruction*>& fold = addressing_only_[fn];
  for (const auto& block : fn->blocks()) {
    for (const auto& inst : block->insts()) {
      if (inst->users().empty()) {
        continue;
      }
      switch (inst->op()) {
        case Op::kAdd:
        case Op::kSub:
          fold.insert(inst.get());
          break;
        case Op::kShl:
          if (inst->operand(1)->is_const() &&
              static_cast<const ir::Constant*>(inst->operand(1))->value() <=
                  3) {
            fold.insert(inst.get());
          }
          break;
        default:
          break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = fold.begin(); it != fold.end();) {
      bool ok = true;
      for (const Instruction* user : (*it)->users()) {
        bool address_use =
            (user->op() == Op::kLoad && user->operand(0) == *it) ||
            (user->op() == Op::kStore && user->operand(0) == *it) ||
            fold.count(user) != 0;
        if (!address_use) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        it = fold.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
}

void Engine::PushFrame(Thread& t, Function* fn, bool dispatch_root) {
  auto it = slot_counts_.find(fn);
  if (it == slot_counts_.end()) {
    it = slot_counts_.emplace(fn, fn->Renumber()).first;
    ComputeAddressingOnly(fn);
  }
  Frame frame;
  frame.fn = fn;
  frame.values.assign(static_cast<size_t>(it->second), 0);
  frame.block = fn->entry();
  frame.it = frame.block->insts().begin();
  frame.dispatch_root = dispatch_root;
  frame.fold = &addressing_only_[fn];
  if (options_.obs.profile != nullptr) {
    frame.profile_site = ProfileSite(frame, frame.block);
    options_.obs.profile->AddEntry(frame.profile_site);
  }
  t.stack.push_back(std::move(frame));
}

void Engine::EnterBlock(Frame& f, BasicBlock* target) {
  // Two-phase phi evaluation (parallel copy semantics).
  BasicBlock* from = f.block;
  std::vector<std::pair<const Instruction*, uint64_t>> phi_values;
  for (const auto& inst : target->insts()) {
    if (inst->op() != Op::kPhi) {
      break;
    }
    int idx = -1;
    for (size_t i = 0; i < inst->phi_blocks.size(); ++i) {
      if (inst->phi_blocks[i] == from) {
        idx = static_cast<int>(i);
        break;
      }
    }
    POLY_CHECK_GE(idx, 0) << "phi missing incoming block";
    phi_values.push_back({inst.get(), Eval(f, inst->operand(idx))});
  }
  for (const auto& [phi, value] : phi_values) {
    f.values[static_cast<size_t>(phi->id)] = value;
  }
  f.prev_block = from;
  f.block = target;
  f.it = target->insts().begin();
  // Skip the phi prefix (already materialized).
  while (f.it != target->insts().end() && (*f.it)->op() == Op::kPhi) {
    ++f.it;
  }
  if (options_.obs.profile != nullptr) {
    f.profile_site = ProfileSite(f, target);
    options_.obs.profile->AddEntry(f.profile_site);
  }
}

bool Engine::DispatchPending(Thread& t) {
  uint64_t pc = t.pending_pc;
  if (pc == kThreadExitMagic || pc == kProgramExitMagic ||
      pc == t.exit_magic) {
    auto vr = [&](int reg) -> uint64_t {
      if (vr_tls_) {
        return t.tls[static_cast<size_t>(vr_slot_[reg])];
      }
      return shared_globals_[static_cast<size_t>(vr_slot_[reg])];
    };
    uint64_t rax = vr(static_cast<int>(x86::Reg::kRax));
    if (pc == kProgramExitMagic) {
      RequestExit(static_cast<int32_t>(rax));
      t.finished = true;
    } else {
      t.finished = true;
      t.retval = rax;
    }
    return true;
  }
  auto it = program_.functions_by_entry.find(pc);
  if (it == program_.functions_by_entry.end()) {
    miss_ = MissInfo{0, pc};
    Fault(StrCat("control flow miss at dispatcher: ", HexString(pc)));
    return false;
  }
  if (options_.record_callbacks) {
    observed_callbacks_.insert(it->second->name());
  }
  PushFrame(t, it->second, /*dispatch_root=*/true);
  t.clock += costs_.dispatch_entry;
  options_.obs.Add(obs::Counter::kExecDispatches);
  return true;
}

bool Engine::Step(Thread& t) {
  if (t.stack.empty()) {
    return DispatchPending(t);
  }
  return StepInstruction(t);
}

bool Engine::StepInstruction(Thread& t) {
  // Index, not reference: intrinsics (qsort callbacks) may push frames and
  // reallocate the stack vector.
  const size_t frame_index = t.stack.size() - 1;
  Frame& f = t.stack.back();
  POLY_CHECK(f.it != f.block->insts().end())
      << "fell off block " << f.block->name();
  const Instruction& inst = **f.it;
  if (options_.obs.profile != nullptr) {
    options_.obs.profile->AddInstrs(f.profile_site, 1);
  }
  // Copy: `f` may dangle after a call pushes a frame (vector reallocation).
  const std::set<const Instruction*>* fold = f.fold;
  uint64_t cost = costs_.alu;
  bool advance = true;

  switch (inst.op()) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kLShr:
    case Op::kAShr: {
      uint64_t a = Eval(f, inst.operand(0));
      uint64_t b = Eval(f, inst.operand(1));
      uint64_t r = 0;
      switch (inst.op()) {
        case Op::kAdd:
          r = a + b;
          break;
        case Op::kSub:
          r = a - b;
          break;
        case Op::kMul:
          r = a * b;
          cost += 2;
          break;
        case Op::kSDiv:
        case Op::kSRem: {
          if (b == 0) {
            Fault("division by zero in lifted code");
            return false;
          }
          int64_t sa = static_cast<int64_t>(a);
          int64_t sb = static_cast<int64_t>(b);
          if (sa == INT64_MIN && sb == -1) {
            Fault("division overflow in lifted code");
            return false;
          }
          r = static_cast<uint64_t>(inst.op() == Op::kSDiv ? sa / sb
                                                           : sa % sb);
          cost += 20;
          break;
        }
        case Op::kUDiv:
        case Op::kURem:
          if (b == 0) {
            Fault("division by zero in lifted code");
            return false;
          }
          r = inst.op() == Op::kUDiv ? a / b : a % b;
          cost += 20;
          break;
        case Op::kAnd:
          r = a & b;
          break;
        case Op::kOr:
          r = a | b;
          break;
        case Op::kXor:
          r = a ^ b;
          break;
        case Op::kShl:
          r = b >= 64 ? 0 : a << b;
          break;
        case Op::kLShr:
          r = b >= 64 ? 0 : a >> b;
          break;
        case Op::kAShr:
          r = static_cast<uint64_t>(
              static_cast<int64_t>(a) >> (b >= 64 ? 63 : b));
          break;
        default:
          POLY_UNREACHABLE("covered above");
      }
      f.values[static_cast<size_t>(inst.id)] = r;
      break;
    }

    case Op::kICmp: {
      uint64_t a = Eval(f, inst.operand(0));
      uint64_t b = Eval(f, inst.operand(1));
      f.values[static_cast<size_t>(inst.id)] = EvalPred(inst.pred, a, b);
      break;
    }

    case Op::kSelect: {
      uint64_t c = Eval(f, inst.operand(0));
      f.values[static_cast<size_t>(inst.id)] =
          c != 0 ? Eval(f, inst.operand(1)) : Eval(f, inst.operand(2));
      break;
    }

    case Op::kSExt: {
      uint64_t v = Eval(f, inst.operand(0));
      int shift = 64 - inst.width;
      f.values[static_cast<size_t>(inst.id)] = static_cast<uint64_t>(
          (static_cast<int64_t>(v << shift)) >> shift);
      break;
    }

    case Op::kLoad: {
      uint64_t addr = Eval(f, inst.operand(0));
      RecordAccess(&inst, t, addr);
      f.values[static_cast<size_t>(inst.id)] = memory_.Read(addr, inst.size);
      cost = costs_.mem_access;
      break;
    }
    case Op::kStore: {
      uint64_t addr = Eval(f, inst.operand(0));
      RecordAccess(&inst, t, addr);
      memory_.Write(addr, inst.size,
                    MaskBytes(Eval(f, inst.operand(1)), inst.size));
      cost = costs_.mem_access;
      break;
    }

    case Op::kGlobalLoad:
      f.values[static_cast<size_t>(inst.id)] = GlobalSlot(t, inst.global);
      cost = costs_.global_access;
      break;
    case Op::kGlobalStore:
      GlobalSlot(t, inst.global) = Eval(f, inst.operand(0));
      cost = costs_.global_access;
      break;

    case Op::kBr: {
      BasicBlock* target;
      if (inst.num_operands() == 0) {
        target = inst.targets[0];
      } else {
        target = Eval(f, inst.operand(0)) != 0 ? inst.targets[0]
                                               : inst.targets[1];
      }
      EnterBlock(f, target);
      advance = false;
      cost = costs_.branch;
      break;
    }

    case Op::kSwitch: {
      uint64_t v = Eval(f, inst.operand(0));
      BasicBlock* target = inst.targets[0];
      for (size_t i = 0; i < inst.case_values.size(); ++i) {
        if (static_cast<uint64_t>(inst.case_values[i]) == v) {
          target = inst.targets[i + 1];
          break;
        }
      }
      EnterBlock(f, target);
      advance = false;
      // Dispatch cost grows with the target set (switch-on-PC, §3.2).
      uint64_t n = inst.case_values.size();
      cost = 2;
      while (n > 1) {
        n >>= 1;
        ++cost;
      }
      break;
    }

    case Op::kRet: {
      uint64_t value =
          inst.num_operands() > 0 ? Eval(f, inst.operand(0)) : 0;
      bool was_root = f.dispatch_root;
      t.stack.pop_back();
      cost = costs_.ret;
      if (t.stack.empty() || was_root) {
        t.pending_pc = value;
        t.last_toplevel_pc = value;
      } else {
        Frame& caller = t.stack.back();
        const Instruction& call_inst = **caller.it;
        POLY_CHECK(call_inst.op() == Op::kCall);
        if (call_inst.HasResult()) {
          caller.values[static_cast<size_t>(call_inst.id)] = value;
        }
        ++caller.it;
      }
      advance = false;
      break;
    }

    case Op::kUnreachable:
      Fault(StrCat("unreachable executed in @", f.fn->name()));
      return false;

    case Op::kCall: {
      if (inst.callee != nullptr) {
        PushFrame(t, inst.callee, /*dispatch_root=*/false);
        cost = costs_.call;
        advance = false;  // the matching ret advances the caller
        break;
      }
      if (!HandleIntrinsic(t, frame_index, inst)) {
        return !faulted_ && miss_ == std::nullopt;
      }
      // HandleIntrinsic may request a retry (blocking external).
      if (retry_pending_) {
        retry_pending_ = false;
        last_step_retried_ = true;
        advance = false;
      }
      cost = 0;  // intrinsics charge their own cost
      break;
    }

    case Op::kPhi:
      // Materialized at block entry.
      cost = costs_.phi;
      break;

    case Op::kFence:
      if (options_.obs.profile != nullptr) {
        options_.obs.profile->AddFence(f.profile_site);
      }
      options_.obs.Add(obs::Counter::kExecFences);
      cost = costs_.fence;
      break;

    case Op::kAtomicRmw: {
      uint64_t addr = Eval(f, inst.operand(0));
      uint64_t operand = Eval(f, inst.operand(1));
      RecordAccess(&inst, t, addr);
      uint64_t old = memory_.Read(addr, inst.size);
      uint64_t r = old;
      switch (inst.rmw_op) {
        case RmwOp::kAdd:
          r = old + operand;
          break;
        case RmwOp::kSub:
          r = old - operand;
          break;
        case RmwOp::kAnd:
          r = old & operand;
          break;
        case RmwOp::kOr:
          r = old | operand;
          break;
        case RmwOp::kXor:
          r = old ^ operand;
          break;
        case RmwOp::kXchg:
          r = operand;
          break;
      }
      memory_.Write(addr, inst.size, MaskBytes(r, inst.size));
      f.values[static_cast<size_t>(inst.id)] = old;
      if (options_.obs.profile != nullptr) {
        options_.obs.profile->AddAtomic(f.profile_site);
      }
      options_.obs.Add(obs::Counter::kExecAtomics);
      cost = costs_.atomic;
      break;
    }

    case Op::kCmpXchg: {
      uint64_t addr = Eval(f, inst.operand(0));
      uint64_t expected = MaskBytes(Eval(f, inst.operand(1)), inst.size);
      uint64_t desired = Eval(f, inst.operand(2));
      RecordAccess(&inst, t, addr);
      uint64_t old = memory_.Read(addr, inst.size);
      if (old == expected) {
        memory_.Write(addr, inst.size, MaskBytes(desired, inst.size));
      }
      f.values[static_cast<size_t>(inst.id)] = old;
      if (options_.obs.profile != nullptr) {
        options_.obs.profile->AddAtomic(f.profile_site);
      }
      options_.obs.Add(obs::Counter::kExecAtomics);
      cost = costs_.atomic;
      break;
    }
  }

  // Address arithmetic feeding only memory operands is free: the native
  // backend folds it into x86 addressing modes.
  if (fold != nullptr && fold->count(&inst) != 0) {
    cost = 0;
  } else if (options_.cost_jitter) {
    cost += rng_.Next() & 1;
  }
  t.clock += cost;
  if (advance) {
    ++t.stack[frame_index].it;
  }
  return true;
}

bool Engine::HandleIntrinsic(Thread& t, size_t frame_index,
                             const Instruction& inst) {
  const std::string& name = inst.intrinsic;
  // Re-fetch the frame on every use: nested dispatch may reallocate.
  auto frame = [&]() -> Frame& { return t.stack[frame_index]; };
  auto set_result = [&](uint64_t v) {
    if (inst.HasResult()) {
      frame().values[static_cast<size_t>(inst.id)] = v;
    }
  };
  Frame& f = frame();  // valid until a nested dispatch occurs

  if (name == "ext_call") {
    uint64_t slot = Eval(f, inst.operand(0));
    if (slot >= program_.externals.size()) {
      Fault(StrCat("ext_call to unmapped slot ", slot));
      return false;
    }
    t.clock += costs_.ext_marshal;
    options_.obs.Add(obs::Counter::kExecExtCalls);
    vm::ExtResult result = library_->Call(program_.externals[slot], *this);
    switch (result.status) {
      case vm::ExtStatus::kDone:
        set_result(0);
        return true;
      case vm::ExtStatus::kBlock:
        retry_pending_ = true;
        return true;
      case vm::ExtStatus::kFault:
        Fault(StrCat("external ", program_.externals[slot], ": ",
                     result.fault_message));
        return false;
    }
    return false;
  }
  if (name == "cfmiss") {
    uint64_t target = Eval(f, inst.operand(0));
    uint64_t transfer = Eval(f, inst.operand(1));
    miss_ = MissInfo{transfer, target};
    Fault(StrCat("control flow miss: ", HexString(transfer), " -> ",
                 HexString(target)));
    return false;
  }
  if (name == "trap") {
    Fault(StrCat("lifted trap at ",
                 HexString(Eval(f, inst.operand(0)))));
    return false;
  }
  if (name == "parity") {
    uint64_t v = Eval(f, inst.operand(0));
    set_result((__builtin_popcountll(v & 0xff) % 2) == 0 ? 1 : 0);
    t.clock += 1;
    return true;
  }
  if (name == "pause") {
    t.clock += 4;
    set_result(0);
    return true;
  }
  if (name == "helper_paddd" || name == "helper_psubd" ||
      name == "helper_pmulld") {
    uint64_t a = Eval(f, inst.operand(0));
    uint64_t b = Eval(f, inst.operand(1));
    char op = name == "helper_paddd" ? '+' : name == "helper_psubd" ? '-' : '*';
    set_result(PackedLanes32(a, b, op));
    t.clock += costs_.helper;
    return true;
  }
  if (name == "simd_paddd" || name == "simd_psubd" || name == "simd_pmulld") {
    // First-class SIMD translation (§5.3): lowers back to one packed
    // instruction, so it costs like one.
    uint64_t a = Eval(f, inst.operand(0));
    uint64_t b = Eval(f, inst.operand(1));
    char op = name == "simd_paddd" ? '+' : name == "simd_psubd" ? '-' : '*';
    set_result(PackedLanes32(a, b, op));
    t.clock += costs_.alu;
    return true;
  }
  if (name == "helper_mulh") {
    __int128 full = static_cast<__int128>(
                        static_cast<int64_t>(Eval(f, inst.operand(0)))) *
                    static_cast<__int128>(
                        static_cast<int64_t>(Eval(f, inst.operand(1))));
    set_result(static_cast<uint64_t>(full >> 64));
    t.clock += costs_.helper;
    return true;
  }
  if (name == "helper_sdiv128" || name == "helper_srem128") {
    __int128 dividend =
        (static_cast<__int128>(static_cast<int64_t>(Eval(f, inst.operand(0))))
         << 64) |
        static_cast<__int128>(Eval(f, inst.operand(1)));
    int64_t divisor = static_cast<int64_t>(Eval(f, inst.operand(2)));
    if (divisor == 0) {
      Fault("division by zero in lifted code");
      return false;
    }
    set_result(static_cast<uint64_t>(name == "helper_sdiv128"
                                         ? dividend / divisor
                                         : dividend % divisor));
    t.clock += costs_.helper + 20;
    return true;
  }
  if (name == "global_lock") {
    if (global_lock_owner_ != -1 && global_lock_owner_ != t.id) {
      retry_pending_ = true;
      t.clock += 10;
      return true;
    }
    global_lock_owner_ = t.id;
    set_result(0);
    t.clock += 8;
    return true;
  }
  if (name == "global_unlock") {
    global_lock_owner_ = -1;
    set_result(0);
    t.clock += 8;
    return true;
  }
  Fault("unknown intrinsic: " + name);
  return false;
}

void Engine::RunMinClockLoop() {
  while (!exited_ && !faulted_) {
    Thread* best = nullptr;
    for (auto& t : threads_) {
      if (!t->finished && (best == nullptr || t->clock < best->clock)) {
        best = t.get();
      }
    }
    if (best == nullptr) {
      break;
    }
    if (options_.schedule_skew > 0) {
      // Differential-check perturbation: pick among all runnable threads
      // within the skew window of the minimum clock (seeded, reproducible).
      std::vector<Thread*> near;
      for (auto& t : threads_) {
        if (!t->finished && t->clock <= best->clock + options_.schedule_skew) {
          near.push_back(t.get());
        }
      }
      if (near.size() > 1) {
        best = near[rng_.NextBelow(near.size())];
      }
    }
    current_ = best->id;
    if (!Step(*best)) {
      break;
    }
    if (memory_.faulted()) {
      Fault(StrCat("memory access violation at ",
                   HexString(memory_.fault_address())));
      break;
    }
    if (++steps_ > options_.max_steps) {
      Fault("step limit exceeded in lifted code");
      break;
    }
  }
}

Engine::NextOp Engine::ClassifyNextOp(const Thread& t) const {
  NextOp op;
  if (t.stack.empty()) {
    // Dispatcher boundary: thread entry, exit (join-state change), or a
    // top-level tail transfer.
    op.visible = true;
    op.mutates = true;
    op.kind = sched::PointKind::kDispatch;
    return op;
  }
  const Frame& f = t.stack.back();
  const Instruction& inst = **f.it;
  switch (inst.op()) {
    case Op::kLoad:
    case Op::kStore: {
      // Operands of the next instruction are already materialized, so the
      // address can be evaluated without side effects.
      uint64_t addr = Eval(f, inst.operand(0));
      if (addr >= t.estack_low && addr < t.estack_high) {
        return op;  // emulated-stack access: thread-private
      }
      op.visible = true;
      op.mutates = inst.op() == Op::kStore;
      op.kind = inst.op() == Op::kStore ? sched::PointKind::kStore
                                        : sched::PointKind::kLoad;
      return op;
    }
    case Op::kAtomicRmw:
    case Op::kCmpXchg:
      op.visible = true;
      op.mutates = true;
      op.kind = sched::PointKind::kAtomic;
      return op;
    case Op::kFence:
      op.visible = true;
      op.kind = sched::PointKind::kFence;
      return op;
    case Op::kGlobalLoad:
    case Op::kGlobalStore:
      if (inst.global->is_thread_local()) {
        return op;  // virtual CPU state: thread-private
      }
      op.visible = true;
      op.mutates = inst.op() == Op::kGlobalStore;
      op.kind = inst.op() == Op::kGlobalStore ? sched::PointKind::kStore
                                              : sched::PointKind::kLoad;
      return op;
    case Op::kCall:
      if (inst.callee != nullptr) {
        return op;  // lifted-to-lifted call: no external visibility
      }
      if (inst.intrinsic == "ext_call" || inst.intrinsic == "global_lock" ||
          inst.intrinsic == "global_unlock") {
        op.visible = true;
        op.mutates = true;  // may touch memory, locks or thread state
        op.kind = sched::PointKind::kExternal;
        return op;
      }
      if (inst.intrinsic == "pause") {
        // Spin-wait hint: a preemption point that also tells the strategy
        // to deprioritize the spinner.
        op.visible = true;
        op.yield_hint = true;
        op.kind = sched::PointKind::kExternal;
        return op;
      }
      return op;
    default:
      return op;
  }
}

void Engine::RunControlledLoop() {
  // A thread that spends this many consecutive visible steps without a
  // state-changing operation is treated as spinning and reported to the
  // strategy via OnYield (PCT demotes it, avoiding guest-spinloop livelock).
  constexpr int kSpinYieldStreak = 64;
  sched::Scheduler& scheduler = *options_.scheduler;
  uint64_t decision_index = 0;
  int last = 0;
  while (!exited_ && !faulted_) {
    std::vector<int> runnable, unfinished;
    for (auto& t : threads_) {
      if (t->finished) {
        continue;
      }
      unfinished.push_back(t->id);
      if (!t->blocked) {
        runnable.push_back(t->id);
      }
    }
    if (unfinished.empty()) {
      break;
    }
    if (runnable.empty()) {
      // Every live thread is blocked: either a guest deadlock (the step
      // limit will surface it) or an external whose wake condition our
      // conservative tracking missed. Let all of them retry.
      for (auto& t : threads_) {
        t->blocked = false;
      }
      runnable = unfinished;
    }

    int pick;
    bool last_runnable = std::find(runnable.begin(), runnable.end(), last) !=
                         runnable.end();
    if (last_runnable &&
        !ClassifyNextOp(*threads_[static_cast<size_t>(last)]).visible) {
      // Thread-private operation: the current thread keeps running without
      // a decision point (other threads cannot observe the difference).
      pick = last;
    } else if (runnable.size() == 1) {
      pick = runnable.front();
    } else {
      sched::PointKind kind =
          last_runnable
              ? ClassifyNextOp(*threads_[static_cast<size_t>(last)]).kind
              : sched::PointKind::kDispatch;
      // Guest address of the block the current thread is stopped in — lets
      // hint-driven strategies (sched::HintedScheduler) recognize statically
      // reported racing accesses.
      uint64_t guest_address = 0;
      if (last_runnable) {
        const Thread& lt = *threads_[static_cast<size_t>(last)];
        if (!lt.stack.empty() && lt.stack.back().block != nullptr) {
          guest_address = lt.stack.back().block->guest_address;
        }
      }
      pick = scheduler.Pick({decision_index++, last, kind, guest_address},
                            runnable);
      POLY_CHECK(std::find(runnable.begin(), runnable.end(), pick) !=
                 runnable.end())
          << "scheduler picked non-runnable thread " << pick;
    }

    Thread& t = *threads_[static_cast<size_t>(pick)];
    NextOp next = ClassifyNextOp(t);
    current_ = pick;
    last_step_retried_ = false;
    if (!Step(t)) {
      break;
    }
    last = pick;
    if (memory_.faulted()) {
      Fault(StrCat("memory access violation at ",
                   HexString(memory_.fault_address())));
      break;
    }
    if (++steps_ > options_.max_steps) {
      Fault("step limit exceeded in lifted code");
      break;
    }
    if (last_step_retried_) {
      // Blocking retry: park the thread until global state changes.
      t.blocked = true;
      t.spin_streak = 0;
      continue;
    }
    if (!next.visible) {
      continue;
    }
    if (next.mutates) {
      t.spin_streak = 0;
      for (auto& other : threads_) {
        other->blocked = false;
      }
    } else if (next.yield_hint || ++t.spin_streak >= kSpinYieldStreak) {
      t.spin_streak = 0;
      scheduler.OnYield(t.id);
    }
  }
}

uint64_t Engine::StateDigest() {
  uint64_t h = memory_.Digest();
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (i * 8)) & 0xff)) * 1099511628211ull;
    }
  };
  for (uint64_t v : shared_globals_) {
    mix(v);
  }
  for (const auto& t : threads_) {
    mix(static_cast<uint64_t>(t->finished));
    mix(t->retval);
    for (uint64_t v : t->tls) {
      mix(v);
    }
  }
  for (char c : output_) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  mix(static_cast<uint64_t>(exit_code_));
  mix(static_cast<uint64_t>(faulted_));
  return h;
}

ExecResult Engine::Run() {
  POLY_CHECK(threads_.empty()) << "Run() may only be called once";
  POLY_CHECK(options_.scheduler == nullptr || options_.schedule_skew == 0)
      << "controlled scheduling and schedule_skew are mutually exclusive";
  CreateThread(program_.entry, 0, 0, kProgramExitMagic);

  obs::Span span(options_.obs.trace, "exec", "run");
  if (options_.scheduler != nullptr) {
    RunControlledLoop();
  } else {
    RunMinClockLoop();
  }
  options_.obs.Add(obs::Counter::kExecGuestInstrs, steps_);
  span.Arg("steps", static_cast<int64_t>(steps_));
  span.End();

  ExecResult result;
  result.ok = !faulted_;
  result.exit_code = exit_code_;
  result.fault_message = fault_message_;
  result.miss = miss_;
  result.steps = steps_;
  result.output = output_;
  result.accesses = accesses_;
  result.observed_callbacks = observed_callbacks_;
  for (const auto& t : threads_) {
    result.wall_time = std::max(result.wall_time, t->clock);
  }
  if (options_.scheduler != nullptr || options_.record_state_digest) {
    result.state_digest = StateDigest();
  }
  return result;
}

// ---------------------------------------------------------------------------
// GuestContext
// ---------------------------------------------------------------------------

uint64_t Engine::GetArg(int index) {
  static const x86::Reg kArgRegs[6] = {x86::Reg::kRdi, x86::Reg::kRsi,
                                       x86::Reg::kRdx, x86::Reg::kRcx,
                                       x86::Reg::kR8,  x86::Reg::kR9};
  POLY_CHECK_LT(index, 6);
  Thread& t = *threads_[static_cast<size_t>(current_)];
  int slot = vr_slot_[static_cast<int>(kArgRegs[index])];
  return vr_tls_ ? t.tls[static_cast<size_t>(slot)]
                 : shared_globals_[static_cast<size_t>(slot)];
}

void Engine::SetResult(uint64_t value) {
  Thread& t = *threads_[static_cast<size_t>(current_)];
  int slot = vr_slot_[static_cast<int>(x86::Reg::kRax)];
  (vr_tls_ ? t.tls[static_cast<size_t>(slot)]
           : shared_globals_[static_cast<size_t>(slot)]) = value;
}

int Engine::SpawnThread(uint64_t entry, uint64_t arg0, uint64_t arg1) {
  uint64_t parent_clock = threads_[static_cast<size_t>(current_)]->clock;
  Thread& t = CreateThread(entry, arg0, arg1, kThreadExitMagic);
  t.clock = parent_clock + 100;
  return t.id;
}

bool Engine::ThreadFinished(int tid, uint64_t* retval) {
  if (tid < 0 || static_cast<size_t>(tid) >= threads_.size()) {
    return false;
  }
  Thread& t = *threads_[static_cast<size_t>(tid)];
  if (!t.finished) {
    return false;
  }
  if (retval != nullptr) {
    *retval = t.retval;
  }
  Thread& cur = *threads_[static_cast<size_t>(current_)];
  cur.clock = std::max(cur.clock, t.clock);
  return true;
}

uint64_t Engine::CallGuest(uint64_t entry, std::span<const uint64_t> args) {
  Thread& t = *threads_[static_cast<size_t>(current_)];
  static const x86::Reg kArgRegs[6] = {x86::Reg::kRdi, x86::Reg::kRsi,
                                       x86::Reg::kRdx, x86::Reg::kRcx,
                                       x86::Reg::kR8,  x86::Reg::kR9};
  POLY_CHECK_LE(args.size(), 6u);
  auto vr = [&](int reg) -> uint64_t& {
    int slot = vr_slot_[reg];
    return vr_tls_ ? t.tls[static_cast<size_t>(slot)]
                   : shared_globals_[static_cast<size_t>(slot)];
  };
  for (size_t i = 0; i < args.size(); ++i) {
    vr(static_cast<int>(kArgRegs[i])) = args[i];
  }
  // Push the callback-return sentinel on the emulated stack.
  uint64_t& sp = vr(static_cast<int>(x86::Reg::kRsp));
  sp -= 8;
  memory_.Write(sp, 8, kCallbackReturnMagic);

  size_t base_depth = t.stack.size();
  uint64_t pc = entry;
  while (!faulted_ && !exited_) {
    auto it = program_.functions_by_entry.find(pc);
    if (it == program_.functions_by_entry.end()) {
      miss_ = MissInfo{0, pc};
      Fault(StrCat("control flow miss in callback: ", HexString(pc)));
      break;
    }
    if (options_.record_callbacks) {
      observed_callbacks_.insert(it->second->name());
    }
    PushFrame(t, it->second, /*dispatch_root=*/true);
    t.clock += costs_.dispatch_entry;
    // Run until this dispatch-root frame returns.
    while (t.stack.size() > base_depth && !faulted_ && !exited_) {
      if (!StepInstruction(t)) {
        break;
      }
      if (++steps_ > options_.max_steps) {
        Fault("step limit exceeded in callback");
        break;
      }
    }
    if (faulted_ || exited_) {
      break;
    }
    pc = t.last_toplevel_pc;
    if (pc == kCallbackReturnMagic) {
      break;  // callback completed
    }
    // Tail transfer: re-dispatch.
  }
  return vr(static_cast<int>(x86::Reg::kRax));
}

void Engine::AddCost(uint64_t cycles) {
  threads_[static_cast<size_t>(current_)]->clock += cycles;
}

uint64_t Engine::now() {
  return threads_[static_cast<size_t>(current_)]->clock;
}

void Engine::RequestExit(int64_t code) {
  exited_ = true;
  exit_code_ = code;
}

}  // namespace polynima::exec
