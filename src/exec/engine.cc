#include "src/exec/engine.h"

#include <algorithm>
#include <chrono>

#include "src/exec/exec_util.h"
#include "src/exec/interp.h"
#include "src/exec/tier1.h"
#include "src/exec/tier2.h"
#include "src/support/strings.h"
#include "src/vm/code_buffer.h"
#include "src/x86/registers.h"

namespace polynima::exec {

namespace x86 = ::polynima::x86;

using binary::kCallbackReturnMagic;
using binary::kProgramExitMagic;
using binary::kThreadExitMagic;
using ir::BasicBlock;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;
using ir::Value;

namespace {

constexpr uint64_t kThreadStackSize = 1 << 20;

// Candidates: add/sub/shl-by-small-constant. Iteratively remove any whose
// user is not a memory-address position or another surviving candidate.
void ComputeFold(FuncInfo* info) {
  std::set<const Instruction*>& fold = info->fold;
  for (const auto& block : info->fn->blocks()) {
    for (const auto& inst : block->insts()) {
      if (inst->users().empty()) {
        continue;
      }
      switch (inst->op()) {
        case Op::kAdd:
        case Op::kSub:
          fold.insert(inst.get());
          break;
        case Op::kShl:
          if (inst->operand(1)->is_const() &&
              static_cast<const ir::Constant*>(inst->operand(1))->value() <=
                  3) {
            fold.insert(inst.get());
          }
          break;
        default:
          break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = fold.begin(); it != fold.end();) {
      bool ok = true;
      for (const Instruction* user : (*it)->users()) {
        bool address_use =
            (user->op() == Op::kLoad && user->operand(0) == *it) ||
            (user->op() == Op::kStore && user->operand(0) == *it) ||
            fold.count(user) != 0;
        if (!address_use) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        it = fold.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  // Dense by-id mirror for the per-instruction hot path. Fold members are
  // all value-producing, so their ids are in [0, num_slots).
  info->fold_by_id.assign(static_cast<size_t>(info->num_slots), 0);
  for (const Instruction* inst : fold) {
    info->fold_by_id[static_cast<size_t>(inst->id)] = 1;
  }
}

}  // namespace

Engine::Engine(const lift::LiftedProgram& program, const binary::Image& image,
               vm::ExternalLibrary* library, ExecOptions options)
    : program_(program),
      image_(image),
      library_(library),
      options_(options),
      rng_(options.seed) {
  for (const binary::Segment& seg : image_.segments) {
    memory_.MapSegment(seg.address, seg.bytes, seg.Writable());
    if (seg.executable) {
      // Feeds the tier-1 self-modifying-code store guard.
      memory_.MarkExecutable(seg.address, seg.address + seg.bytes.size());
    }
  }
  memory_.AllowRegion(binary::kHeapBase, binary::kHeapLimit, true);
  memory_.AllowRegion(binary::kStackRegionBase, binary::kStackRegionLimit,
                      true);

  shared_globals_.assign(
      static_cast<size_t>(program_.module->num_global_slots()), 0);
  // Cache virtual-register slots for marshaling.
  for (int i = 0; i < x86::kNumGprs; ++i) {
    Global* g = program_.module->GetGlobal(
        "vr_" + x86::RegName(static_cast<x86::Reg>(i), 8));
    POLY_CHECK(g != nullptr);
    vr_slot_[i] = g->slot();
    vr_tls_ = g->is_thread_local();
  }

  // Per-function facts, resolved once: the dispatch/call hot paths index
  // these tables instead of renumbering and re-resolving maps per call.
  for (const auto& fn : program_.module->functions()) {
    auto info = std::make_unique<FuncInfo>();
    info->fn = fn.get();
    info->num_slots = fn->Renumber();
    ComputeFold(info.get());
    by_fn_[fn.get()] = info.get();
    func_infos_.push_back(std::move(info));
  }
  for (const auto& [pc, fn] : program_.functions_by_entry) {
    entry_table_[pc] = by_fn_.at(fn);
  }

  // Attach the obs sinks before the backends: Tier2Backend's constructor
  // installs the entry thunk and records it into the tierprof code map.
  tierprof_ = options_.obs.tierprof;
  obs_attached_ = options_.obs.metrics != nullptr ||
                  options_.obs.profile != nullptr || tierprof_ != nullptr;

  interp_ = std::make_unique<InterpreterBackend>(*this);
  tier1_ = std::make_unique<Tier1Backend>(*this);
  // record_accesses keys its output by IR instruction identity, and
  // schedule_skew draws scheduler perturbation from the shared rng stream
  // mid-run — both force pure tier-0 execution.
  tier1_enabled_ = options_.tier >= 1 && !options_.record_accesses &&
                   options_.schedule_skew == 0;
  tier_threshold_ = options_.tier_threshold;
  // Tier 2 re-emits tier-1 streams as native code, so it inherits tier 1's
  // gating and additionally requires executable mappings on this host.
  tier2_enabled_ = tier1_enabled_ && options_.tier >= 2 &&
                   vm::CodeBuffer::Supported();
  if (tier2_enabled_) {
    tier2_ = std::make_unique<Tier2Backend>(*this);
    tier2_enabled_ = tier2_->ready();
  }
  // Staged promotion: a function crosses into tier 1 at the threshold and
  // into native code at twice that heat (eager at threshold 0).
  tier2_threshold_ = tier_threshold_ * 2;
}

Engine::~Engine() = default;

FuncInfo* Engine::InfoFor(const Function* fn) const {
  auto it = by_fn_.find(fn);
  POLY_CHECK(it != by_fn_.end()) << "unregistered function @" << fn->name();
  return it->second;
}

uint64_t& Engine::GlobalSlot(Thread& t, const Global* g) {
  if (g->is_thread_local()) {
    return t.tls[static_cast<size_t>(g->slot())];
  }
  return shared_globals_[static_cast<size_t>(g->slot())];
}

Thread& Engine::CreateThread(uint64_t entry_pc, uint64_t arg0, uint64_t arg1,
                             uint64_t exit_magic) {
  auto thread = std::make_unique<Thread>();
  thread->id = static_cast<int>(threads_.size());
  thread->tls.assign(
      static_cast<size_t>(program_.module->num_global_slots()), 0);
  // Per-thread jitter stream (see backend.h): a deterministic function of
  // (run seed, thread id), identical across execution tiers.
  thread->jitter_rng = Rng(
      options_.seed ^
      (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(thread->id) + 1)));
  uint64_t low = binary::kStackRegionBase +
                 static_cast<uint64_t>(thread->id) * kThreadStackSize;
  POLY_CHECK_LT(low + kThreadStackSize, binary::kStackRegionLimit);
  thread->estack_low = low;
  thread->estack_high = low + kThreadStackSize;
  uint64_t sp = thread->estack_high - 8;
  memory_.Write(sp, 8, exit_magic);

  auto vr = [&](int reg) -> uint64_t& {
    if (vr_tls_) {
      return thread->tls[static_cast<size_t>(vr_slot_[reg])];
    }
    return shared_globals_[static_cast<size_t>(vr_slot_[reg])];
  };
  vr(static_cast<int>(x86::Reg::kRsp)) = sp;
  vr(static_cast<int>(x86::Reg::kRdi)) = arg0;
  vr(static_cast<int>(x86::Reg::kRsi)) = arg1;

  thread->pending_pc = entry_pc;
  thread->exit_magic = exit_magic;
  threads_.push_back(std::move(thread));
  if (options_.scheduler != nullptr) {
    options_.scheduler->OnSpawn(threads_.back()->id);
  }
  return *threads_.back();
}

void Engine::Fault(std::string message) {
  if (!faulted_) {
    faulted_ = true;
    fault_message_ = std::move(message);
    options_.obs.Add(obs::Counter::kExecFaults);
  }
}

void Engine::RecordAccess(const Instruction* inst, Thread& t, uint64_t addr) {
  if (!options_.record_accesses) {
    return;
  }
  AccessRecord& rec = accesses_[inst];
  if (addr >= t.estack_low && addr < t.estack_high) {
    rec.stack_local = true;
  } else {
    rec.shared = true;
  }
  if (rec.addresses.size() < 4096) {
    rec.addresses.insert(addr);
  } else {
    rec.overflow = true;
  }
}

uint32_t Engine::ProfileSite(const Function* fn, const BasicBlock* block) {
  auto it = profile_sites_.find(block);
  if (it == profile_sites_.end()) {
    uint32_t site = options_.obs.profile->RegisterSite(
        fn->name(), block->name(), block->guest_address);
    it = profile_sites_.emplace(block, site).first;
  }
  return it->second;
}

// The obs sink mirrors the exec deopt-reason enum (obs is a leaf library);
// keep the raw values in lock-step so the engine can pass them through.
static_assert(static_cast<int>(DeoptReason::kPreempt) ==
              obs::TierProf::kDeoptPreempt);
static_assert(static_cast<int>(DeoptReason::kSmcWrite) ==
              obs::TierProf::kDeoptSmcWrite);
static_assert(static_cast<int>(DeoptReason::kUncoveredEdge) ==
              obs::TierProf::kDeoptUncoveredEdge);
static_assert(static_cast<int>(DeoptReason::kNumReasons) ==
              obs::TierProf::kNumDeoptReasons);
// FuncInfo's inline telemetry scratch is sized to the sink's taxonomy.
static_assert(sizeof(FuncInfo::tp_steps) / sizeof(uint64_t) ==
              obs::TierProf::kNumTiers);
static_assert(sizeof(FuncInfo::tp_helpers) / sizeof(uint64_t) ==
              obs::TierProf::kNumHelpers);

uint32_t Engine::TierProfId(FuncInfo* info) {
  if (info->tp_id == FuncInfo::kNoTierProfId) {
    const BasicBlock* entry = info->fn->entry();
    info->tp_id = tierprof_->InternFunction(
        info->fn->name(), entry != nullptr ? entry->guest_address : 0);
  }
  return info->tp_id;
}

uint64_t Engine::Eval(const Frame& f, const Value* v) const {
  switch (v->kind()) {
    case Value::Kind::kConstant:
      return static_cast<uint64_t>(static_cast<const ir::Constant*>(v)->value());
    case Value::Kind::kInstruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      POLY_CHECK_GE(inst->id, 0);
      return f.values[static_cast<size_t>(inst->id)];
    }
    default:
      POLY_UNREACHABLE("bad operand kind");
  }
}

void Engine::PushFrame(Thread& t, FuncInfo* info, bool dispatch_root) {
  Frame frame;
  frame.info = info;
  frame.values.assign(static_cast<size_t>(info->num_slots), 0);
  frame.block = info->fn->entry();
  frame.it = frame.block->insts().begin();
  frame.dispatch_root = dispatch_root;
  if (options_.obs.profile != nullptr) {
    frame.profile_site = ProfileSite(info->fn, frame.block);
    options_.obs.profile->AddEntry(frame.profile_site);
  }
  t.stack.push_back(std::move(frame));
  MaybeTierUp(t.stack.back());
}

void Engine::MaybeTierUp(Frame& f) {
  if (!tier1_enabled_ || f.native) {
    return;
  }
  FuncInfo* info = f.info;
  if (!f.translated) {
    if (info->translation == nullptr) {
      if (info->translation_failed) {
        return;
      }
      if (++info->heat < tier_threshold_) {
        return;  // not hot yet (threshold 0 translates on first entry)
      }
      // Translation wall time is host-side observation only: the clock is
      // read when the sink is attached and feeds nothing the guest sees.
      uint64_t wall_ns = 0;
      bool translated;
      if (tierprof_ != nullptr) {
        auto t0 = std::chrono::steady_clock::now();
        translated = tier1_->Translate(info);
        wall_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        translated = tier1_->Translate(info);
      }
      if (!translated) {
        return;
      }
      ++tier1_translations_;
      options_.obs.Add(obs::Counter::kExecTier1Translations);
      if (tierprof_ != nullptr) {
        uint32_t id = TierProfId(info);
        tierprof_->RecordTranslation(current_, id, 1,
                                     info->translation->code.size(), wall_ns,
                                     steps_);
        tierprof_->RecordTierUp(current_, id, 1, info->heat, steps_);
      }
    }
    // On-stack replacement at the current block's bytecode head. The head is
    // post-phi, and this runs only at block/function entry with phis already
    // materialized. Uncovered current block: stay in tier 0 for now.
    auto it = info->translation->block_heads.find(f.block);
    if (it == info->translation->block_heads.end()) {
      return;
    }
    // A mid-function promotion (any non-entry block, including re-entry
    // after a deopt) is an OSR; plain activations enter at the entry block
    // and are residency, not events.
    if (tierprof_ != nullptr && f.block != info->fn->entry()) {
      tierprof_->RecordOsrEntry(current_, TierProfId(info), 1,
                                f.block->guest_address, steps_);
    }
    f.translated = true;
    f.tpc = it->second;
    Tier1Backend::EnsureTier1Values(f);
  }
  // Native promotion. Heat keeps counting past the tier-1 threshold — once
  // per activation/OSR boundary and once per exhausted tier-1 batch quantum
  // (Engine::Step re-dispatch), so both call-heavy functions and one long
  // activation eventually cross tier2_threshold_. Tier-1-only configs never
  // reach this point with tier2_enabled_, so their heat stops at
  // translation exactly as before.
  if (!tier2_enabled_ || info->native_failed) {
    return;
  }
  if (info->native == nullptr) {
    if (++info->heat < tier2_threshold_) {
      return;
    }
    uint64_t wall_ns = 0;
    bool emitted;
    if (tierprof_ != nullptr) {
      auto t0 = std::chrono::steady_clock::now();
      emitted = tier2_->Translate(info);
      wall_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    } else {
      emitted = tier2_->Translate(info);
    }
    if (!emitted) {
      return;
    }
    ++tier2_translations_;
    options_.obs.Add(obs::Counter::kExecTier2Translations);
    if (tierprof_ != nullptr) {
      uint32_t id = TierProfId(info);
      tierprof_->RecordTranslation(current_, id, 2, info->native->code_size,
                                   wall_ns, steps_);
      tierprof_->RecordTierUp(current_, id, 2, info->heat, steps_);
      // The frame that crossed the threshold continues mid-function in
      // native code: an OSR into tier 2 unless it resumes at the entry
      // block's bytecode head (a fresh activation). Frame::block is stale
      // for translated frames, so test the resume pc.
      auto entry_head =
          info->translation->block_heads.find(info->fn->entry());
      if (entry_head == info->translation->block_heads.end() ||
          f.tpc != entry_head->second) {
        const auto& code = info->translation->code;
        uint64_t resume_pc = f.tpc < code.size() && code[f.tpc].block != nullptr
                                 ? code[f.tpc].block->guest_address
                                 : 0;
        tierprof_->RecordOsrEntry(current_, id, 2, resume_pc, steps_);
      }
    }
  }
  f.native = true;
}

void Engine::EnterBlock(Frame& f, BasicBlock* target) {
  // Two-phase phi evaluation (parallel copy semantics).
  BasicBlock* from = f.block;
  std::vector<std::pair<const Instruction*, uint64_t>> phi_values;
  for (const auto& inst : target->insts()) {
    if (inst->op() != Op::kPhi) {
      break;
    }
    int idx = -1;
    for (size_t i = 0; i < inst->phi_blocks.size(); ++i) {
      if (inst->phi_blocks[i] == from) {
        idx = static_cast<int>(i);
        break;
      }
    }
    POLY_CHECK_GE(idx, 0) << "phi missing incoming block";
    phi_values.push_back({inst.get(), Eval(f, inst->operand(idx))});
  }
  for (const auto& [phi, value] : phi_values) {
    f.values[static_cast<size_t>(phi->id)] = value;
  }
  f.prev_block = from;
  f.block = target;
  f.it = target->insts().begin();
  // Skip the phi prefix (already materialized).
  while (f.it != target->insts().end() && (*f.it)->op() == Op::kPhi) {
    ++f.it;
  }
  if (options_.obs.profile != nullptr) {
    f.profile_site = ProfileSite(f.info->fn, target);
    options_.obs.profile->AddEntry(f.profile_site);
  }
  MaybeTierUp(f);
}

bool Engine::DispatchPending(Thread& t) {
  uint64_t pc = t.pending_pc;
  if (pc == kThreadExitMagic || pc == kProgramExitMagic ||
      pc == t.exit_magic) {
    auto vr = [&](int reg) -> uint64_t {
      if (vr_tls_) {
        return t.tls[static_cast<size_t>(vr_slot_[reg])];
      }
      return shared_globals_[static_cast<size_t>(vr_slot_[reg])];
    };
    uint64_t rax = vr(static_cast<int>(x86::Reg::kRax));
    if (pc == kProgramExitMagic) {
      RequestExit(static_cast<int32_t>(rax));
      t.finished = true;
    } else {
      t.finished = true;
      t.retval = rax;
    }
    return true;
  }
  auto it = entry_table_.find(pc);
  if (it == entry_table_.end()) {
    miss_ = MissInfo{0, pc};
    Fault(StrCat("control flow miss at dispatcher: ", HexString(pc)));
    return false;
  }
  if (options_.record_callbacks) {
    observed_callbacks_.insert(it->second->fn->name());
  }
  PushFrame(t, it->second, /*dispatch_root=*/true);
  t.clock += costs_.dispatch_entry;
  options_.obs.Add(obs::Counter::kExecDispatches);
  return true;
}

bool Engine::Step(Thread& t, StepMode mode) {
  if (t.stack.empty()) {
    return DispatchPending(t);
  }
  Frame& f = t.stack.back();
  // A hot tier-1 frame inside one long activation never re-crosses an
  // activation boundary, so batch re-dispatch is the second place heat can
  // accrue and the frame can enter native code: every tpc has a tier-2
  // entry point, making any batch boundary a valid OSR site.
  if (tier2_enabled_ && f.translated && !f.native &&
      mode != StepMode::kSingle) {
    MaybeTierUp(f);
  }
  // Native frames batch through tier 2; controlled (kSingle) steps drive
  // the same TInst stream through the tier-1 executor so decision points
  // stay bit-identical.
  if (f.native && mode != StepMode::kSingle) {
    return tier2_->Step(t, mode);
  }
  if (f.translated) {
    return tier1_->Step(t, mode);
  }
  return interp_->Step(t, mode);
}

void Engine::RunMinClockLoop() {
  while (!exited_ && !faulted_) {
    Thread* best = nullptr;
    int live = 0;
    for (auto& t : threads_) {
      if (t->finished) {
        continue;
      }
      ++live;
      if (best == nullptr || t->clock < best->clock) {
        best = t.get();
      }
    }
    if (best == nullptr) {
      break;
    }
    if (options_.schedule_skew > 0) {
      // Differential-check perturbation: pick among all runnable threads
      // within the skew window of the minimum clock (seeded, reproducible).
      std::vector<Thread*> near;
      for (auto& t : threads_) {
        if (!t->finished && t->clock <= best->clock + options_.schedule_skew) {
          near.push_back(t.get());
        }
      }
      if (near.size() > 1) {
        best = near[rng_.NextBelow(near.size())];
      }
    }
    current_ = best->id;
    // With several live threads tier-1 batches must stop before visible
    // operations so those interleave at the same clocks as tier 0; a sole
    // survivor has nobody to observe it and runs free.
    StepMode mode = live > 1 ? StepMode::kBatch : StepMode::kBatchFree;
    if (!Step(*best, mode)) {
      break;
    }
    if (memory_.faulted()) {
      Fault(StrCat("memory access violation at ",
                   HexString(memory_.fault_address())));
      break;
    }
    if (++steps_ > options_.max_steps) {
      Fault("step limit exceeded in lifted code");
      break;
    }
  }
}

NextOp Engine::ClassifyNextOp(const Thread& t) const {
  NextOp op;
  if (t.stack.empty()) {
    // Dispatcher boundary: thread entry, exit (join-state change), or a
    // top-level tail transfer.
    op.visible = true;
    op.mutates = true;
    op.kind = sched::PointKind::kDispatch;
    return op;
  }
  const Frame& f = t.stack.back();
  if (f.translated) {
    return tier1_->Classify(t, f);
  }
  const Instruction& inst = **f.it;
  switch (inst.op()) {
    case Op::kLoad:
    case Op::kStore: {
      // Operands of the next instruction are already materialized, so the
      // address can be evaluated without side effects.
      uint64_t addr = Eval(f, inst.operand(0));
      if (addr >= t.estack_low && addr < t.estack_high) {
        return op;  // emulated-stack access: thread-private
      }
      op.visible = true;
      op.mutates = inst.op() == Op::kStore;
      op.kind = inst.op() == Op::kStore ? sched::PointKind::kStore
                                        : sched::PointKind::kLoad;
      return op;
    }
    case Op::kAtomicRmw:
    case Op::kCmpXchg:
      op.visible = true;
      op.mutates = true;
      op.kind = sched::PointKind::kAtomic;
      return op;
    case Op::kFence:
      op.visible = true;
      op.kind = sched::PointKind::kFence;
      return op;
    case Op::kGlobalLoad:
    case Op::kGlobalStore:
      if (inst.global->is_thread_local()) {
        return op;  // virtual CPU state: thread-private
      }
      op.visible = true;
      op.mutates = inst.op() == Op::kGlobalStore;
      op.kind = inst.op() == Op::kGlobalStore ? sched::PointKind::kStore
                                              : sched::PointKind::kLoad;
      return op;
    case Op::kCall:
      if (inst.callee != nullptr) {
        return op;  // lifted-to-lifted call: no external visibility
      }
      if (inst.intrinsic == "ext_call" || inst.intrinsic == "global_lock" ||
          inst.intrinsic == "global_unlock") {
        op.visible = true;
        op.mutates = true;  // may touch memory, locks or thread state
        op.kind = sched::PointKind::kExternal;
        return op;
      }
      if (inst.intrinsic == "pause") {
        // Spin-wait hint: a preemption point that also tells the strategy
        // to deprioritize the spinner.
        op.visible = true;
        op.yield_hint = true;
        op.kind = sched::PointKind::kExternal;
        return op;
      }
      return op;
    default:
      return op;
  }
}

BasicBlock* Engine::CurrentBlock(const Thread& t) const {
  if (t.stack.empty()) {
    return nullptr;
  }
  const Frame& f = t.stack.back();
  return f.translated ? tier1_->CurrentBlock(f) : f.block;
}

void Engine::RunControlledLoop() {
  // A thread that spends this many consecutive visible steps without a
  // state-changing operation is treated as spinning and reported to the
  // strategy via OnYield (PCT demotes it, avoiding guest-spinloop livelock).
  constexpr int kSpinYieldStreak = 64;
  sched::Scheduler& scheduler = *options_.scheduler;
  uint64_t decision_index = 0;
  int last = 0;
  while (!exited_ && !faulted_) {
    std::vector<int> runnable, unfinished;
    for (auto& t : threads_) {
      if (t->finished) {
        continue;
      }
      unfinished.push_back(t->id);
      if (!t->blocked) {
        runnable.push_back(t->id);
      }
    }
    if (unfinished.empty()) {
      break;
    }
    if (runnable.empty()) {
      // Every live thread is blocked: either a guest deadlock (the step
      // limit will surface it) or an external whose wake condition our
      // conservative tracking missed. Let all of them retry.
      for (auto& t : threads_) {
        t->blocked = false;
      }
      runnable = unfinished;
    }

    int pick;
    bool last_runnable = std::find(runnable.begin(), runnable.end(), last) !=
                         runnable.end();
    if (last_runnable &&
        !ClassifyNextOp(*threads_[static_cast<size_t>(last)]).visible) {
      // Thread-private operation: the current thread keeps running without
      // a decision point (other threads cannot observe the difference).
      pick = last;
    } else if (runnable.size() == 1) {
      pick = runnable.front();
    } else {
      sched::PointKind kind =
          last_runnable
              ? ClassifyNextOp(*threads_[static_cast<size_t>(last)]).kind
              : sched::PointKind::kDispatch;
      // Guest address of the block the current thread is stopped in — lets
      // hint-driven strategies (sched::HintedScheduler) recognize statically
      // reported racing accesses.
      uint64_t guest_address = 0;
      if (last_runnable) {
        const BasicBlock* b =
            CurrentBlock(*threads_[static_cast<size_t>(last)]);
        if (b != nullptr) {
          guest_address = b->guest_address;
        }
      }
      pick = scheduler.Pick({decision_index++, last, kind, guest_address},
                            runnable);
      POLY_CHECK(std::find(runnable.begin(), runnable.end(), pick) !=
                 runnable.end())
          << "scheduler picked non-runnable thread " << pick;
    }

    Thread& t = *threads_[static_cast<size_t>(pick)];
    NextOp next = ClassifyNextOp(t);
    current_ = pick;
    last_step_retried_ = false;
    if (!Step(t, StepMode::kSingle)) {
      break;
    }
    last = pick;
    if (memory_.faulted()) {
      Fault(StrCat("memory access violation at ",
                   HexString(memory_.fault_address())));
      break;
    }
    if (++steps_ > options_.max_steps) {
      Fault("step limit exceeded in lifted code");
      break;
    }
    if (last_step_retried_) {
      // Blocking retry: park the thread until global state changes.
      t.blocked = true;
      t.spin_streak = 0;
      continue;
    }
    if (!next.visible) {
      continue;
    }
    if (next.mutates) {
      t.spin_streak = 0;
      for (auto& other : threads_) {
        other->blocked = false;
      }
    } else if (next.yield_hint || ++t.spin_streak >= kSpinYieldStreak) {
      t.spin_streak = 0;
      scheduler.OnYield(t.id);
    }
  }
}

uint64_t Engine::StateDigest() {
  uint64_t h = memory_.Digest();
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (i * 8)) & 0xff)) * 1099511628211ull;
    }
  };
  for (uint64_t v : shared_globals_) {
    mix(v);
  }
  for (const auto& t : threads_) {
    mix(static_cast<uint64_t>(t->finished));
    mix(t->retval);
    for (uint64_t v : t->tls) {
      mix(v);
    }
  }
  for (char c : output_) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  mix(static_cast<uint64_t>(exit_code_));
  mix(static_cast<uint64_t>(faulted_));
  return h;
}

ExecResult Engine::Run() {
  POLY_CHECK(threads_.empty()) << "Run() may only be called once";
  POLY_CHECK(options_.scheduler == nullptr || options_.schedule_skew == 0)
      << "controlled scheduling and schedule_skew are mutually exclusive";
  CreateThread(program_.entry, 0, 0, kProgramExitMagic);

  obs::Span span(options_.obs.trace, "exec", "run");
  if (options_.scheduler != nullptr) {
    RunControlledLoop();
  } else {
    RunMinClockLoop();
  }
  options_.obs.Add(obs::Counter::kExecGuestInstrs, steps_);
  if (tier1_instrs_ > 0) {
    options_.obs.Add(obs::Counter::kExecTier1Instrs, tier1_instrs_);
  }
  if (tier2_instrs_ > 0) {
    options_.obs.Add(obs::Counter::kExecTier2Instrs, tier2_instrs_);
  }
  if (tierprof_ != nullptr) {
    // Fold the inline per-function scratch (residency steps, tier-2 helper
    // calls) into the sink — deferred to session end so the hot paths never
    // call into obs.
    for (const auto& owned : func_infos_) {
      FuncInfo* info = owned.get();
      bool any = info->tp_id != FuncInfo::kNoTierProfId;
      for (uint64_t s : info->tp_steps) {
        any |= s != 0;
      }
      for (uint64_t h : info->tp_helpers) {
        any |= h != 0;
      }
      if (!any) {
        continue;
      }
      uint32_t id = TierProfId(info);
      for (int tier = 0; tier < obs::TierProf::kNumTiers; ++tier) {
        if (info->tp_steps[tier] != 0) {
          tierprof_->AddResidency(id, tier, info->tp_steps[tier]);
        }
      }
      for (uint8_t h = 0; h < obs::TierProf::kNumHelpers; ++h) {
        if (info->tp_helpers[h] != 0) {
          tierprof_->AddHelperCalls(id, h, info->tp_helpers[h]);
        }
      }
    }
  }
  span.Arg("steps", static_cast<int64_t>(steps_));
  span.End();

  ExecResult result;
  result.ok = !faulted_;
  result.exit_code = exit_code_;
  result.fault_message = fault_message_;
  result.miss = miss_;
  result.steps = steps_;
  result.output = output_;
  result.accesses = accesses_;
  result.observed_callbacks = observed_callbacks_;
  result.tier1_translations = tier1_translations_;
  result.tier1_instrs = tier1_instrs_;
  result.tier2_translations = tier2_translations_;
  result.tier2_instrs = tier2_instrs_;
  for (int i = 0; i < static_cast<int>(DeoptReason::kNumReasons); ++i) {
    result.deopts_by_reason[i] = deopt_counts_[i];
    result.deopts += deopt_counts_[i];
  }
  for (const auto& t : threads_) {
    result.wall_time = std::max(result.wall_time, t->clock);
  }
  if (options_.scheduler != nullptr || options_.record_state_digest) {
    result.state_digest = StateDigest();
  }
  return result;
}

// ---------------------------------------------------------------------------
// GuestContext
// ---------------------------------------------------------------------------

uint64_t Engine::GetArg(int index) {
  static const x86::Reg kArgRegs[6] = {x86::Reg::kRdi, x86::Reg::kRsi,
                                       x86::Reg::kRdx, x86::Reg::kRcx,
                                       x86::Reg::kR8,  x86::Reg::kR9};
  POLY_CHECK_LT(index, 6);
  Thread& t = *threads_[static_cast<size_t>(current_)];
  int slot = vr_slot_[static_cast<int>(kArgRegs[index])];
  return vr_tls_ ? t.tls[static_cast<size_t>(slot)]
                 : shared_globals_[static_cast<size_t>(slot)];
}

void Engine::SetResult(uint64_t value) {
  Thread& t = *threads_[static_cast<size_t>(current_)];
  int slot = vr_slot_[static_cast<int>(x86::Reg::kRax)];
  (vr_tls_ ? t.tls[static_cast<size_t>(slot)]
           : shared_globals_[static_cast<size_t>(slot)]) = value;
}

int Engine::SpawnThread(uint64_t entry, uint64_t arg0, uint64_t arg1) {
  uint64_t parent_clock = threads_[static_cast<size_t>(current_)]->clock;
  Thread& t = CreateThread(entry, arg0, arg1, kThreadExitMagic);
  t.clock = parent_clock + 100;
  return t.id;
}

bool Engine::ThreadFinished(int tid, uint64_t* retval) {
  if (tid < 0 || static_cast<size_t>(tid) >= threads_.size()) {
    return false;
  }
  Thread& t = *threads_[static_cast<size_t>(tid)];
  if (!t.finished) {
    return false;
  }
  if (retval != nullptr) {
    *retval = t.retval;
  }
  Thread& cur = *threads_[static_cast<size_t>(current_)];
  cur.clock = std::max(cur.clock, t.clock);
  return true;
}

uint64_t Engine::CallGuest(uint64_t entry, std::span<const uint64_t> args) {
  Thread& t = *threads_[static_cast<size_t>(current_)];
  static const x86::Reg kArgRegs[6] = {x86::Reg::kRdi, x86::Reg::kRsi,
                                       x86::Reg::kRdx, x86::Reg::kRcx,
                                       x86::Reg::kR8,  x86::Reg::kR9};
  POLY_CHECK_LE(args.size(), 6u);
  auto vr = [&](int reg) -> uint64_t& {
    int slot = vr_slot_[reg];
    return vr_tls_ ? t.tls[static_cast<size_t>(slot)]
                   : shared_globals_[static_cast<size_t>(slot)];
  };
  for (size_t i = 0; i < args.size(); ++i) {
    vr(static_cast<int>(kArgRegs[i])) = args[i];
  }
  // Push the callback-return sentinel on the emulated stack.
  uint64_t& sp = vr(static_cast<int>(x86::Reg::kRsp));
  sp -= 8;
  memory_.Write(sp, 8, kCallbackReturnMagic);

  size_t base_depth = t.stack.size();
  uint64_t pc = entry;
  while (!faulted_ && !exited_) {
    auto it = entry_table_.find(pc);
    if (it == entry_table_.end()) {
      miss_ = MissInfo{0, pc};
      Fault(StrCat("control flow miss in callback: ", HexString(pc)));
      break;
    }
    if (options_.record_callbacks) {
      observed_callbacks_.insert(it->second->fn->name());
    }
    PushFrame(t, it->second, /*dispatch_root=*/true);
    t.clock += costs_.dispatch_entry;
    // Run until this dispatch-root frame returns. The scheduler is already
    // committed to this external call, so nested execution runs free.
    while (t.stack.size() > base_depth && !faulted_ && !exited_) {
      if (!Step(t, StepMode::kBatchFree)) {
        break;
      }
      if (++steps_ > options_.max_steps) {
        Fault("step limit exceeded in callback");
        break;
      }
    }
    if (faulted_ || exited_) {
      break;
    }
    pc = t.last_toplevel_pc;
    if (pc == kCallbackReturnMagic) {
      break;  // callback completed
    }
    // Tail transfer: re-dispatch.
  }
  return vr(static_cast<int>(x86::Reg::kRax));
}

void Engine::AddCost(uint64_t cycles) {
  threads_[static_cast<size_t>(current_)]->clock += cycles;
}

uint64_t Engine::now() {
  return threads_[static_cast<size_t>(current_)]->clock;
}

void Engine::RequestExit(int64_t code) {
  exited_ = true;
  exit_code_ = code;
}

}  // namespace polynima::exec
