// Tier-2 translator and executor (see tier2.h for the architecture).
//
// Parity rules, on top of everything tier 1 already guarantees (the input
// here is the tier-1 TInst stream, so fusion/cost/jitter decisions are
// shared by construction):
//   - Every non-zero-width TInst begins with the same budget check and
//     batch visible-stop check tier 1 performs at its loop head, in the
//     same order, against the same `executed` counter.
//   - Jitter draws inline the exact SplitMix64 step (same constants, same
//     state evolution) and write the state back on exit, so a mid-run
//     tier-1/tier-2 boundary never skips or repeats a draw.
//   - Stores call a helper that applies the InExecutableRange guard BEFORE
//     the write and before any charging; an SMC hit exits to C++ which runs
//     the same deopt bookkeeping as tier 1 (including the interpret-inline
//     rule when nothing was retired yet).
//   - Branches test their static target for a kDeopt stub at translation
//     time: an uncovered edge becomes an exit emitted BEFORE the profile
//     count and charge, so the interpreter re-executes the branch once.
//   - Division faults exit before charging (tier 1 faults before charge);
//     guest memory faults exit after charge and tpc advance (tier 1 stops
//     after), both routed through Engine::Fault by the C++ wrapper.
//   - Returns, calls, intrinsics and every piece of frame surgery happen in
//     C++ with tier-1's exact accounting; native code only reports where it
//     stopped and why.
#include "src/exec/tier2.h"

#include <algorithm>
#include <cstddef>

#include "src/exec/engine.h"
#include "src/exec/exec_util.h"
#include "src/exec/tier1.h"
#include "src/support/check.h"
#include "src/x86/assembler.h"

namespace polynima::exec {

using ir::Pred;
using ir::RmwOp;
using x86::Cond;
using x86::I1;
using x86::I2;
using x86::Inst;
using x86::Label;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

namespace {

// Tier2Ctx field offsets baked into emitted code. The static_asserts keep
// the struct and the emitter honest together.
constexpr int32_t kOffValues = 0;
constexpr int32_t kOffClock = 8;
constexpr int32_t kOffExecuted = 16;
constexpr int32_t kOffRng = 24;
constexpr int32_t kOffBudget = 32;
constexpr int32_t kOffEstackLow = 40;
constexpr int32_t kOffEstackHigh = 48;
constexpr int32_t kOffResume = 56;
constexpr int32_t kOffExitStatus = 64;
constexpr int32_t kOffExitTpc = 72;
constexpr int32_t kOffBatchStop = 80;
constexpr int32_t kOffMemFault = 88;
constexpr int32_t kOffTls = 96;
constexpr int32_t kOffShared = 104;

static_assert(offsetof(Tier2Ctx, values) == kOffValues);
static_assert(offsetof(Tier2Ctx, clock) == kOffClock);
static_assert(offsetof(Tier2Ctx, executed) == kOffExecuted);
static_assert(offsetof(Tier2Ctx, rng_state) == kOffRng);
static_assert(offsetof(Tier2Ctx, budget) == kOffBudget);
static_assert(offsetof(Tier2Ctx, estack_low) == kOffEstackLow);
static_assert(offsetof(Tier2Ctx, estack_high) == kOffEstackHigh);
static_assert(offsetof(Tier2Ctx, resume) == kOffResume);
static_assert(offsetof(Tier2Ctx, exit_status) == kOffExitStatus);
static_assert(offsetof(Tier2Ctx, exit_tpc) == kOffExitTpc);
static_assert(offsetof(Tier2Ctx, batch_stop) == kOffBatchStop);
static_assert(offsetof(Tier2Ctx, mem_fault) == kOffMemFault);
static_assert(offsetof(Tier2Ctx, tls) == kOffTls);
static_assert(offsetof(Tier2Ctx, shared) == kOffShared);

// Register plan. rbx = Tier2Ctx*, r12 = value-array base; clock, executed
// and rng state live in callee-saved registers so helper calls (SysV: may
// clobber rax/rcx/rdx/rsi/rdi/r8-r11) never disturb them.
constexpr Reg kCtx = Reg::kRbx;
constexpr Reg kVals = Reg::kR12;
constexpr Reg kClock = Reg::kR13;
constexpr Reg kExec = Reg::kR14;
constexpr Reg kRngState = Reg::kR15;

MemRef CtxField(int32_t off) {
  MemRef m;
  m.base = kCtx;
  m.disp = off;
  return m;
}

MemRef SlotRef(uint32_t slot) {
  MemRef m;
  m.base = kVals;
  m.disp = static_cast<int32_t>(slot * 8);
  return m;
}

bool FitsInt32(int64_t v) { return v >= INT32_MIN && v <= INT32_MAX; }

Cond CondForPred(Pred pred) {
  switch (pred) {
    case Pred::kEq:
      return Cond::kE;
    case Pred::kNe:
      return Cond::kNe;
    case Pred::kSlt:
      return Cond::kL;
    case Pred::kSle:
      return Cond::kLe;
    case Pred::kSgt:
      return Cond::kG;
    case Pred::kSge:
      return Cond::kGe;
    case Pred::kUlt:
      return Cond::kB;
    case Pred::kUle:
      return Cond::kBe;
    case Pred::kUgt:
      return Cond::kA;
    default:
      return Cond::kAe;  // kUge
  }
}

Mnemonic AluMnemonicFor(TOp op) {
  switch (op) {
    case TOp::kAdd:
      return Mnemonic::kAdd;
    case TOp::kSub:
      return Mnemonic::kSub;
    case TOp::kAnd:
      return Mnemonic::kAnd;
    case TOp::kOr:
      return Mnemonic::kOr;
    default:
      return Mnemonic::kXor;  // matches tier-1's fused-op default
  }
}

// Emits one translated function. Assembles at base 0: every control
// transfer is a rel32 to a label or an indirect through the context, so the
// bytes are position-independent and install anywhere.
class FnEmitter {
 public:
  FnEmitter(Engine& e, const Translation& tr, bool jitter, bool obs_attached,
            bool profile_attached)
      : e_(e),
        tr_(tr),
        jitter_(jitter),
        obs_(obs_attached),
        profile_(profile_attached),
        a_(0) {}

  bool Emit(std::vector<uint8_t>* bytes, std::vector<uint32_t>* entry_off) {
    const std::vector<TInst>& code = tr_.code;
    // Guard the disp32 addressing and exit-tpc imm32 assumptions; functions
    // anywhere near these sizes do not exist in practice.
    if (code.size() > (1u << 24) || tr_.num_values > (1u << 24)) {
      return false;
    }
    tpc_labels_.resize(code.size());
    for (auto& l : tpc_labels_) {
      l = a_.NewLabel();
    }
    epilogue_ = a_.NewLabel();

    for (uint32_t tpc = 0; tpc < code.size(); ++tpc) {
      a_.Bind(tpc_labels_[tpc]);
      EmitTInst(tpc, code[tpc]);
    }
    EmitEpilogue();

    entry_off->resize(code.size());
    for (uint32_t tpc = 0; tpc < code.size(); ++tpc) {
      (*entry_off)[tpc] = static_cast<uint32_t>(a_.AddressOf(tpc_labels_[tpc]));
    }
    *bytes = a_.Finalize();
    return true;
  }

 private:
  void Op2(Mnemonic m, Operand o0, Operand o1) { a_.Emit(I2(m, 8, o0, o1)); }
  void MovImm(Reg r, uint64_t v) {
    Op2(Mnemonic::kMov, Operand::R(r), Operand::I(static_cast<int64_t>(v)));
  }
  void LoadSlot(Reg r, uint32_t slot) {
    Op2(Mnemonic::kMov, Operand::R(r), Operand::M(SlotRef(slot)));
  }
  void StoreSlot(uint32_t slot, Reg r) {
    Op2(Mnemonic::kMov, Operand::M(SlotRef(slot)), Operand::R(r));
  }

  void EmitExit(Tier2Exit status, uint32_t tpc) {
    Op2(Mnemonic::kMov, Operand::M(CtxField(kOffExitStatus)),
        Operand::I(static_cast<int64_t>(status)));
    Op2(Mnemonic::kMov, Operand::M(CtxField(kOffExitTpc)),
        Operand::I(static_cast<int64_t>(tpc)));
    a_.Jmp(epilogue_);
  }

  void EmitEpilogue() {
    a_.Bind(epilogue_);
    Op2(Mnemonic::kMov, Operand::M(CtxField(kOffClock)), Operand::R(kClock));
    Op2(Mnemonic::kMov, Operand::M(CtxField(kOffExecuted)), Operand::R(kExec));
    Op2(Mnemonic::kMov, Operand::M(CtxField(kOffRng)), Operand::R(kRngState));
    Op2(Mnemonic::kAdd, Operand::R(Reg::kRsp), Operand::I(8));
    for (Reg r : {Reg::kR15, Reg::kR14, Reg::kR13, Reg::kR12, Reg::kRbp,
                  Reg::kRbx}) {
      a_.Emit(I1(Mnemonic::kPop, 8, Operand::R(r)));
    }
    a_.Emit(x86::I0(Mnemonic::kRet));
  }

  // `cmp executed, budget; jae stop` — the tier-1 loop-head budget rule.
  void EmitBudgetCheck(uint32_t tpc) {
    Label ok = a_.NewLabel();
    Op2(Mnemonic::kCmp, Operand::R(kExec), Operand::M(CtxField(kOffBudget)));
    a_.Jcc(Cond::kB, ok);
    EmitExit(Tier2Exit::kStop, tpc);
    a_.Bind(ok);
  }

  // Stop before an always-visible operation when batching with executed>0.
  void EmitVisibleStopAlways(uint32_t tpc) {
    Label cont = a_.NewLabel();
    Op2(Mnemonic::kCmp, Operand::M(CtxField(kOffBatchStop)), Operand::I(0));
    a_.Jcc(Cond::kE, cont);
    Op2(Mnemonic::kTest, Operand::R(kExec), Operand::R(kExec));
    a_.Jcc(Cond::kE, cont);
    EmitExit(Tier2Exit::kStop, tpc);
    a_.Bind(cont);
  }

  // Same, for loads/stores whose visibility depends on the address in rsi:
  // private iff estack_low <= addr < estack_high.
  void EmitVisibleStopAddr(uint32_t tpc) {
    Label cont = a_.NewLabel();
    Label stop = a_.NewLabel();
    Op2(Mnemonic::kCmp, Operand::M(CtxField(kOffBatchStop)), Operand::I(0));
    a_.Jcc(Cond::kE, cont);
    Op2(Mnemonic::kTest, Operand::R(kExec), Operand::R(kExec));
    a_.Jcc(Cond::kE, cont);
    Op2(Mnemonic::kCmp, Operand::R(Reg::kRsi),
        Operand::M(CtxField(kOffEstackLow)));
    a_.Jcc(Cond::kB, stop);
    Op2(Mnemonic::kCmp, Operand::R(Reg::kRsi),
        Operand::M(CtxField(kOffEstackHigh)));
    a_.Jcc(Cond::kB, cont);
    a_.Bind(stop);
    EmitExit(Tier2Exit::kStop, tpc);
    a_.Bind(cont);
  }

  // One SplitMix64 draw (identical constants to Rng::Next), clock += bit 0.
  void EmitJitterDraw() {
    MovImm(Reg::kRax, 0x9e3779b97f4a7c15ull);
    Op2(Mnemonic::kAdd, Operand::R(kRngState), Operand::R(Reg::kRax));
    Op2(Mnemonic::kMov, Operand::R(Reg::kRax), Operand::R(kRngState));
    Op2(Mnemonic::kMov, Operand::R(Reg::kRcx), Operand::R(Reg::kRax));
    Op2(Mnemonic::kShr, Operand::R(Reg::kRcx), Operand::I(30));
    Op2(Mnemonic::kXor, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
    MovImm(Reg::kRcx, 0xbf58476d1ce4e5b9ull);
    Op2(Mnemonic::kImul, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
    Op2(Mnemonic::kMov, Operand::R(Reg::kRcx), Operand::R(Reg::kRax));
    Op2(Mnemonic::kShr, Operand::R(Reg::kRcx), Operand::I(27));
    Op2(Mnemonic::kXor, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
    MovImm(Reg::kRcx, 0x94d049bb133111ebull);
    Op2(Mnemonic::kImul, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
    Op2(Mnemonic::kMov, Operand::R(Reg::kRcx), Operand::R(Reg::kRax));
    Op2(Mnemonic::kShr, Operand::R(Reg::kRcx), Operand::I(31));
    Op2(Mnemonic::kXor, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
    Op2(Mnemonic::kAnd, Operand::R(Reg::kRax), Operand::I(1));
    Op2(Mnemonic::kAdd, Operand::R(kClock), Operand::R(Reg::kRax));
  }

  void EmitHelperCall(const void* fn) {
    MovImm(Reg::kRax, reinterpret_cast<uint64_t>(fn));
    a_.Emit(I1(Mnemonic::kCall, 4, Operand::R(Reg::kRax)));
  }

  // Tier-1's charge(): clock += cost (+jitter bits), executed += n_instrs,
  // profile instruction attribution.
  void EmitCharge(const TInst& ti) {
    if (ti.cost != 0) {
      if (FitsInt32(static_cast<int64_t>(ti.cost))) {
        Op2(Mnemonic::kAdd, Operand::R(kClock),
            Operand::I(static_cast<int64_t>(ti.cost)));
      } else {
        MovImm(Reg::kRax, ti.cost);
        Op2(Mnemonic::kAdd, Operand::R(kClock), Operand::R(Reg::kRax));
      }
    }
    if (jitter_) {
      for (int j = 0; j < ti.jitter; ++j) {
        EmitJitterDraw();
      }
    }
    if (ti.n_instrs != 0) {
      Op2(Mnemonic::kAdd, Operand::R(kExec), Operand::I(ti.n_instrs));
    }
    if (profile_ && ti.n_instrs > 0) {
      Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
      MovImm(Reg::kRsi, ti.site);
      MovImm(Reg::kRdx, ti.n_instrs);
      EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::ObsInstrs));
    }
  }

  // Guest memory faults surface at the tier-0 boundary: charged, tpc
  // advanced, then stop — exactly tier 1's post-access check.
  void EmitMemFaultCheck(uint32_t next_tpc) {
    Label ok = a_.NewLabel();
    Op2(Mnemonic::kCmp, Operand::M(CtxField(kOffMemFault)), Operand::I(0));
    a_.Jcc(Cond::kE, ok);
    EmitExit(Tier2Exit::kStop, next_tpc);
    a_.Bind(ok);
  }

  // Loads the effective address of an addressable TInst into rsi.
  void EmitAddress(const TInst& ti) {
    switch (ti.op) {
      case TOp::kLoad:
      case TOp::kLoadOp:
      case TOp::kStore:
      case TOp::kFenceStore:
        LoadSlot(Reg::kRsi, ti.a);
        break;
      case TOp::kLoadBI:
      case TOp::kStoreBI:
        LoadSlot(Reg::kRsi, ti.a);
        Op2(Mnemonic::kAdd, Operand::R(Reg::kRsi), Operand::M(SlotRef(ti.b)));
        break;
      default:  // kLoadBIS / kStoreBIS
        LoadSlot(Reg::kRsi, ti.b);
        if (ti.extra != 0) {
          Op2(Mnemonic::kShl, Operand::R(Reg::kRsi), Operand::I(ti.extra));
        }
        Op2(Mnemonic::kAdd, Operand::R(Reg::kRsi), Operand::M(SlotRef(ti.a)));
        break;
    }
  }

  // Branch edge: a statically-known deopt target exits before any profile
  // count or charge; a covered target counts, charges and jumps.
  void EmitBranchTo(const TInst& ti, const BrTarget& bt) {
    if (tr_.code[bt.tpc].op == TOp::kDeopt) {
      EmitExit(Tier2Exit::kDeoptAnchor, bt.tpc);
      return;
    }
    if (profile_) {
      Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
      MovImm(Reg::kRsi, bt.site);
      EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::ObsEntry));
    }
    EmitCharge(ti);
    a_.Jmp(tpc_labels_[bt.tpc]);
  }

  // kCmpBr edge with the condition value live in rax: the dst slot is only
  // written on covered edges (tier 1 deopts before v[dst] = cond).
  void EmitCmpBrTo(const TInst& ti, const BrTarget& bt) {
    if (tr_.code[bt.tpc].op == TOp::kDeopt) {
      EmitExit(Tier2Exit::kDeoptAnchor, bt.tpc);
      return;
    }
    StoreSlot(ti.dst, Reg::kRax);
    if (profile_) {
      Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
      MovImm(Reg::kRsi, bt.site);
      EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::ObsEntry));
    }
    EmitCharge(ti);
    a_.Jmp(tpc_labels_[bt.tpc]);
  }

  void EmitObsFence(uint32_t site) {
    Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
    MovImm(Reg::kRsi, site);
    EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::ObsFence));
  }

  // icmp into rax as 0/1.
  void EmitPred(Pred pred, uint32_t a, uint32_t b) {
    LoadSlot(Reg::kRax, a);
    Op2(Mnemonic::kCmp, Operand::R(Reg::kRax), Operand::M(SlotRef(b)));
    Inst setcc = I1(Mnemonic::kSetcc, 1, Operand::R(Reg::kRax));
    setcc.cond = CondForPred(pred);
    a_.Emit(setcc);
    Inst zx = I2(Mnemonic::kMovzx, 8, Operand::R(Reg::kRax),
                 Operand::R(Reg::kRax));
    zx.src_size = 1;
    a_.Emit(zx);
  }

  void EmitTInst(uint32_t tpc, const TInst& ti) {
    const bool zero_width =
        ti.op == TOp::kCopy || (ti.op == TOp::kJmp && ti.extra == 1);
    if (!zero_width) {
      EmitBudgetCheck(tpc);
    }

    switch (ti.op) {
      case TOp::kAdd:
      case TOp::kSub:
      case TOp::kMul:
      case TOp::kAnd:
      case TOp::kOr:
      case TOp::kXor: {
        LoadSlot(Reg::kRax, ti.a);
        Mnemonic m = ti.op == TOp::kMul ? Mnemonic::kImul : AluMnemonicFor(ti.op);
        Op2(m, Operand::R(Reg::kRax), Operand::M(SlotRef(ti.b)));
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        break;
      }

      case TOp::kSDiv:
      case TOp::kSRem: {
        LoadSlot(Reg::kRcx, ti.b);
        Label nonzero = a_.NewLabel();
        Op2(Mnemonic::kTest, Operand::R(Reg::kRcx), Operand::R(Reg::kRcx));
        a_.Jcc(Cond::kNe, nonzero);
        EmitExit(Tier2Exit::kDivZero, tpc);
        a_.Bind(nonzero);
        LoadSlot(Reg::kRax, ti.a);
        Label divide = a_.NewLabel();
        MovImm(Reg::kRdx, 0x8000000000000000ull);
        Op2(Mnemonic::kCmp, Operand::R(Reg::kRax), Operand::R(Reg::kRdx));
        a_.Jcc(Cond::kNe, divide);
        Op2(Mnemonic::kCmp, Operand::R(Reg::kRcx), Operand::I(-1));
        a_.Jcc(Cond::kNe, divide);
        EmitExit(Tier2Exit::kDivOverflow, tpc);
        a_.Bind(divide);
        a_.Emit(x86::I0(Mnemonic::kCqo, 8));
        a_.Emit(I1(Mnemonic::kIdiv, 8, Operand::R(Reg::kRcx)));
        StoreSlot(ti.dst, ti.op == TOp::kSDiv ? Reg::kRax : Reg::kRdx);
        EmitCharge(ti);
        break;
      }

      case TOp::kUDiv:
      case TOp::kURem: {
        LoadSlot(Reg::kRcx, ti.b);
        Label nonzero = a_.NewLabel();
        Op2(Mnemonic::kTest, Operand::R(Reg::kRcx), Operand::R(Reg::kRcx));
        a_.Jcc(Cond::kNe, nonzero);
        EmitExit(Tier2Exit::kDivZero, tpc);
        a_.Bind(nonzero);
        LoadSlot(Reg::kRax, ti.a);
        a_.Emit(I2(Mnemonic::kXor, 4, Operand::R(Reg::kRdx),
                   Operand::R(Reg::kRdx)));
        a_.Emit(I1(Mnemonic::kDiv, 8, Operand::R(Reg::kRcx)));
        StoreSlot(ti.dst, ti.op == TOp::kUDiv ? Reg::kRax : Reg::kRdx);
        EmitCharge(ti);
        break;
      }

      case TOp::kShl:
      case TOp::kLShr:
      case TOp::kAShr: {
        LoadSlot(Reg::kRax, ti.a);
        LoadSlot(Reg::kRcx, ti.b);
        Label big = a_.NewLabel();
        Label done = a_.NewLabel();
        Op2(Mnemonic::kCmp, Operand::R(Reg::kRcx), Operand::I(64));
        a_.Jcc(Cond::kAe, big);
        Mnemonic m = ti.op == TOp::kShl    ? Mnemonic::kShl
                     : ti.op == TOp::kLShr ? Mnemonic::kShr
                                           : Mnemonic::kSar;
        Op2(m, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
        a_.Jmp(done);
        a_.Bind(big);
        if (ti.op == TOp::kAShr) {
          // Tier-1 clamps arithmetic shifts to 63 (sign fill).
          Op2(Mnemonic::kSar, Operand::R(Reg::kRax), Operand::I(63));
        } else {
          a_.Emit(I2(Mnemonic::kXor, 4, Operand::R(Reg::kRax),
                     Operand::R(Reg::kRax)));
        }
        a_.Bind(done);
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        break;
      }

      case TOp::kICmp:
        EmitPred(static_cast<Pred>(ti.extra), ti.a, ti.b);
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        break;

      case TOp::kSelect: {
        LoadSlot(Reg::kRax, ti.b);
        LoadSlot(Reg::kRcx, ti.c);
        Op2(Mnemonic::kCmp, Operand::M(SlotRef(ti.a)), Operand::I(0));
        Inst cmov = I2(Mnemonic::kCmovcc, 8, Operand::R(Reg::kRax),
                       Operand::R(Reg::kRcx));
        cmov.cond = Cond::kE;
        a_.Emit(cmov);
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        break;
      }

      case TOp::kSExt: {
        LoadSlot(Reg::kRax, ti.a);
        int shift = 64 - ti.extra;
        if (shift > 0) {
          Op2(Mnemonic::kShl, Operand::R(Reg::kRax), Operand::I(shift));
          Op2(Mnemonic::kSar, Operand::R(Reg::kRax), Operand::I(shift));
        }
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        break;
      }

      case TOp::kLoad:
      case TOp::kLoadBI:
      case TOp::kLoadBIS:
        EmitAddress(ti);
        EmitVisibleStopAddr(tpc);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        MovImm(Reg::kRdx, ti.size);
        EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::MemRead));
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;

      case TOp::kLoadOp: {
        EmitAddress(ti);
        EmitVisibleStopAddr(tpc);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        MovImm(Reg::kRdx, ti.size);
        EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::MemRead));
        LoadSlot(Reg::kRcx, ti.c);
        const bool mem_lhs = (ti.extra & 0x80) != 0;
        Mnemonic m = AluMnemonicFor(static_cast<TOp>(ti.extra & 0x7f));
        if (mem_lhs) {
          Op2(m, Operand::R(Reg::kRax), Operand::R(Reg::kRcx));
          StoreSlot(ti.dst, Reg::kRax);
        } else {
          Op2(m, Operand::R(Reg::kRcx), Operand::R(Reg::kRax));
          StoreSlot(ti.dst, Reg::kRcx);
        }
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;
      }

      case TOp::kStore:
      case TOp::kStoreBI:
      case TOp::kStoreBIS: {
        EmitAddress(ti);
        EmitVisibleStopAddr(tpc);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        MovImm(Reg::kRdx, ti.size);
        LoadSlot(Reg::kRcx, ti.op == TOp::kStore ? ti.b : ti.c);
        EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::MemWrite));
        Label no_smc = a_.NewLabel();
        Op2(Mnemonic::kTest, Operand::R(Reg::kRax), Operand::R(Reg::kRax));
        a_.Jcc(Cond::kE, no_smc);
        EmitExit(Tier2Exit::kDeoptSmc, tpc);
        a_.Bind(no_smc);
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;
      }

      case TOp::kFenceStore: {
        EmitVisibleStopAlways(tpc);
        EmitAddress(ti);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        MovImm(Reg::kRdx, ti.size);
        LoadSlot(Reg::kRcx, ti.b);
        EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::MemWrite));
        Label no_smc = a_.NewLabel();
        Op2(Mnemonic::kTest, Operand::R(Reg::kRax), Operand::R(Reg::kRax));
        a_.Jcc(Cond::kE, no_smc);
        EmitExit(Tier2Exit::kDeoptSmc, tpc);
        a_.Bind(no_smc);
        if (obs_) {
          EmitObsFence(ti.site);
        }
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;
      }

      case TOp::kFence:
        EmitVisibleStopAlways(tpc);
        if (obs_) {
          EmitObsFence(ti.site);
        }
        EmitCharge(ti);
        break;

      case TOp::kGlobalLoadTls:
      case TOp::kGlobalLoadShared: {
        if (ti.op == TOp::kGlobalLoadShared) {
          EmitVisibleStopAlways(tpc);
        }
        Op2(Mnemonic::kMov, Operand::R(Reg::kRax),
            Operand::M(CtxField(ti.op == TOp::kGlobalLoadTls ? kOffTls
                                                             : kOffShared)));
        MemRef slot;
        slot.base = Reg::kRax;
        slot.disp = static_cast<int32_t>(ti.aux * 8);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRcx), Operand::M(slot));
        StoreSlot(ti.dst, Reg::kRcx);
        EmitCharge(ti);
        break;
      }

      case TOp::kGlobalStoreTls:
      case TOp::kGlobalStoreShared: {
        if (ti.op == TOp::kGlobalStoreShared) {
          EmitVisibleStopAlways(tpc);
        }
        Op2(Mnemonic::kMov, Operand::R(Reg::kRax),
            Operand::M(CtxField(ti.op == TOp::kGlobalStoreTls ? kOffTls
                                                              : kOffShared)));
        LoadSlot(Reg::kRcx, ti.a);
        MemRef slot;
        slot.base = Reg::kRax;
        slot.disp = static_cast<int32_t>(ti.aux * 8);
        Op2(Mnemonic::kMov, Operand::M(slot), Operand::R(Reg::kRcx));
        EmitCharge(ti);
        break;
      }

      case TOp::kAtomicRmw:
        EmitVisibleStopAlways(tpc);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        LoadSlot(Reg::kRsi, ti.a);
        LoadSlot(Reg::kRdx, ti.b);
        MovImm(Reg::kRcx, static_cast<uint64_t>(ti.size) |
                              (static_cast<uint64_t>(ti.extra) << 8));
        MovImm(Reg::kR8, ti.site);
        EmitHelperCall(
            reinterpret_cast<const void*>(&Tier2Backend::AtomicRmw));
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;

      case TOp::kCmpXchg:
        EmitVisibleStopAlways(tpc);
        Op2(Mnemonic::kMov, Operand::R(Reg::kRdi), Operand::R(kCtx));
        LoadSlot(Reg::kRsi, ti.a);
        LoadSlot(Reg::kRdx, ti.b);
        LoadSlot(Reg::kRcx, ti.c);
        MovImm(Reg::kR8, ti.size);
        MovImm(Reg::kR9, ti.site);
        EmitHelperCall(reinterpret_cast<const void*>(&Tier2Backend::CmpXchg));
        StoreSlot(ti.dst, Reg::kRax);
        EmitCharge(ti);
        EmitMemFaultCheck(tpc + 1);
        break;

      case TOp::kJmp: {
        const BrTarget& bt = tr_.brs[ti.aux].then_t;
        if (ti.extra == 1) {
          a_.Jmp(tpc_labels_[bt.tpc]);  // stub-internal: free, no checks
          break;
        }
        EmitBranchTo(ti, bt);
        break;
      }

      case TOp::kBrCond: {
        const BrInfo& bi = tr_.brs[ti.aux];
        Label else_path = a_.NewLabel();
        Op2(Mnemonic::kCmp, Operand::M(SlotRef(ti.a)), Operand::I(0));
        a_.Jcc(Cond::kE, else_path);
        EmitBranchTo(ti, bi.then_t);
        a_.Bind(else_path);
        EmitBranchTo(ti, bi.else_t);
        break;
      }

      case TOp::kCmpBr: {
        EmitPred(static_cast<Pred>(ti.extra), ti.a, ti.b);
        const BrInfo& bi = tr_.brs[ti.aux];
        Label then_path = a_.NewLabel();
        Op2(Mnemonic::kTest, Operand::R(Reg::kRax), Operand::R(Reg::kRax));
        a_.Jcc(Cond::kNe, then_path);
        EmitCmpBrTo(ti, bi.else_t);
        a_.Bind(then_path);
        EmitCmpBrTo(ti, bi.then_t);
        break;
      }

      case TOp::kSwitch: {
        const SwitchInfo& si = tr_.switches[ti.aux];
        LoadSlot(Reg::kRax, ti.a);
        std::vector<Label> case_paths(si.cases.size());
        for (size_t i = 0; i < si.cases.size(); ++i) {
          int64_t cv = static_cast<int64_t>(si.cases[i].first);
          if (FitsInt32(cv)) {
            Op2(Mnemonic::kCmp, Operand::R(Reg::kRax), Operand::I(cv));
          } else {
            MovImm(Reg::kRcx, si.cases[i].first);
            Op2(Mnemonic::kCmp, Operand::R(Reg::kRax),
                Operand::R(Reg::kRcx));
          }
          case_paths[i] = a_.NewLabel();
          a_.Jcc(Cond::kE, case_paths[i]);
        }
        EmitBranchTo(ti, si.default_t);
        for (size_t i = 0; i < si.cases.size(); ++i) {
          a_.Bind(case_paths[i]);
          EmitBranchTo(ti, si.cases[i].second);
        }
        break;
      }

      case TOp::kRet:
        EmitCharge(ti);
        EmitExit(Tier2Exit::kRet, tpc);
        break;

      case TOp::kCall:
        EmitCharge(ti);
        EmitExit(Tier2Exit::kCall, tpc);
        break;

      case TOp::kIntrinsic:
        // Visible when extra != 0 (external call / pause); the full
        // protocol (charge included) runs in C++.
        if (ti.extra != 0) {
          EmitVisibleStopAlways(tpc);
        }
        EmitExit(Tier2Exit::kIntrinsic, tpc);
        break;

      case TOp::kCopy:
        LoadSlot(Reg::kRax, ti.a);
        StoreSlot(ti.dst, Reg::kRax);
        break;

      case TOp::kDeopt:
      default:
        EmitExit(Tier2Exit::kDeoptAnchor, tpc);
        break;
    }
  }

  Engine& e_;
  const Translation& tr_;
  const bool jitter_;
  const bool obs_;
  const bool profile_;
  x86::Assembler a_;
  std::vector<Label> tpc_labels_;
  Label epilogue_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------------

Tier2Backend::Tier2Backend(Engine& e) : e_(e) {
  if (vm::CodeBuffer::Supported()) {
    InstallThunk();
  }
}

Tier2Backend::~Tier2Backend() = default;

void Tier2Backend::InstallThunk() {
  x86::Assembler a(0);
  for (Reg r : {Reg::kRbx, Reg::kRbp, Reg::kR12, Reg::kR13, Reg::kR14,
                Reg::kR15}) {
    a.Emit(I1(Mnemonic::kPush, 8, Operand::R(r)));
  }
  // 6 pushes leave rsp ≡ 8 (mod 16); one more slot restores the SysV
  // rsp ≡ 0 alignment helper calls in generated code rely on.
  a.Emit(I2(Mnemonic::kSub, 8, Operand::R(Reg::kRsp), Operand::I(8)));
  a.Emit(I2(Mnemonic::kMov, 8, Operand::R(kCtx), Operand::R(Reg::kRdi)));
  a.Emit(I2(Mnemonic::kMov, 8, Operand::R(kVals),
            Operand::M(CtxField(kOffValues))));
  a.Emit(I2(Mnemonic::kMov, 8, Operand::R(kClock),
            Operand::M(CtxField(kOffClock))));
  a.Emit(I2(Mnemonic::kMov, 8, Operand::R(kExec),
            Operand::M(CtxField(kOffExecuted))));
  a.Emit(I2(Mnemonic::kMov, 8, Operand::R(kRngState),
            Operand::M(CtxField(kOffRng))));
  a.Emit(I1(Mnemonic::kJmp, 4, Operand::M(CtxField(kOffResume))));
  std::vector<uint8_t> bytes = a.Finalize();
  const uint8_t* code = buffer_.Install(bytes);
  if (code == nullptr) {
    return;
  }
  if (e_.tierprof_ != nullptr) {
    e_.tierprof_->RecordInstall("tier2:<entry-thunk>", code, bytes.size());
  }
  entry_ = reinterpret_cast<uint64_t (*)(Tier2Ctx*)>(
      reinterpret_cast<uintptr_t>(code));
}

bool Tier2Backend::Translate(FuncInfo* info) {
  POLY_CHECK(info->translation != nullptr)
      << "tier-2 translates from the tier-1 stream";
  if (info->native_failed) {
    return false;
  }
  if (!ready()) {
    info->native_failed = true;
    return false;
  }
  FnEmitter em(e_, *info->translation, e_.options_.cost_jitter,
               e_.obs_attached_, e_.options_.obs.profile != nullptr);
  auto nc = std::make_shared<NativeCode>();
  std::vector<uint8_t> bytes;
  if (!em.Emit(&bytes, &nc->entry_off)) {
    info->native_failed = true;
    return false;
  }
  nc->code = buffer_.Install(bytes);
  if (nc->code == nullptr) {
    info->native_failed = true;
    return false;
  }
  nc->code_size = bytes.size();
  if (e_.tierprof_ != nullptr) {
    // Symbolize the installed range for external profilers (perf map).
    e_.tierprof_->RecordInstall("tier2:" + info->fn->name(), nc->code,
                                nc->code_size);
  }
  info->native = std::move(nc);
  return true;
}

// ---------------------------------------------------------------------------
// Helpers called from generated code
// ---------------------------------------------------------------------------

// Helper-call attribution: with a tierprof sink attached, each out-of-line
// helper bumps the running function's scratch counter — the evidence base
// for inlining the guest-memory fast path (DESIGN.md §4h).
void Tier2Backend::CountHelper(Tier2Ctx* ctx, uint8_t helper) {
  if (ctx->engine->tierprof_ != nullptr) {
    ++ctx->thread->stack.back().info->tp_helpers[helper];
  }
}

uint64_t Tier2Backend::MemRead(Tier2Ctx* ctx, uint64_t addr, uint64_t size) {
  CountHelper(ctx, obs::TierProf::kHelperMemRead);
  vm::Memory& mem = ctx->engine->memory_;
  uint64_t value = mem.Read(addr, static_cast<int>(size));
  if (mem.faulted()) {
    ctx->mem_fault = 1;
  }
  return value;
}

uint64_t Tier2Backend::MemWrite(Tier2Ctx* ctx, uint64_t addr, uint64_t size,
                                uint64_t value) {
  CountHelper(ctx, obs::TierProf::kHelperMemWrite);
  vm::Memory& mem = ctx->engine->memory_;
  int sz = static_cast<int>(size);
  if (mem.InExecutableRange(addr, sz)) {
    return 1;  // SMC: no write; generated code exits to the deopt path
  }
  mem.Write(addr, sz, MaskBytes(value, sz));
  if (mem.faulted()) {
    ctx->mem_fault = 1;
  }
  return 0;
}

uint64_t Tier2Backend::AtomicRmw(Tier2Ctx* ctx, uint64_t addr,
                                 uint64_t operand, uint64_t size_op,
                                 uint64_t site) {
  CountHelper(ctx, obs::TierProf::kHelperAtomicRmw);
  Engine& e = *ctx->engine;
  vm::Memory& mem = e.memory_;
  int size = static_cast<int>(size_op & 0xff);
  uint64_t old = mem.Read(addr, size);
  uint64_t r = old;
  switch (static_cast<RmwOp>(size_op >> 8)) {
    case RmwOp::kAdd:
      r = old + operand;
      break;
    case RmwOp::kSub:
      r = old - operand;
      break;
    case RmwOp::kAnd:
      r = old & operand;
      break;
    case RmwOp::kOr:
      r = old | operand;
      break;
    case RmwOp::kXor:
      r = old ^ operand;
      break;
    case RmwOp::kXchg:
      r = operand;
      break;
  }
  mem.Write(addr, size, MaskBytes(r, size));
  if (e.obs_attached_) {
    if (e.options_.obs.profile != nullptr) {
      e.options_.obs.profile->AddAtomic(static_cast<uint32_t>(site));
    }
    e.options_.obs.Add(obs::Counter::kExecAtomics);
  }
  if (mem.faulted()) {
    ctx->mem_fault = 1;
  }
  return old;
}

uint64_t Tier2Backend::CmpXchg(Tier2Ctx* ctx, uint64_t addr, uint64_t expected,
                               uint64_t desired, uint64_t size,
                               uint64_t site) {
  CountHelper(ctx, obs::TierProf::kHelperCmpXchg);
  Engine& e = *ctx->engine;
  vm::Memory& mem = e.memory_;
  int sz = static_cast<int>(size);
  uint64_t want = MaskBytes(expected, sz);
  uint64_t old = mem.Read(addr, sz);
  if (old == want) {
    mem.Write(addr, sz, MaskBytes(desired, sz));
  }
  if (e.obs_attached_) {
    if (e.options_.obs.profile != nullptr) {
      e.options_.obs.profile->AddAtomic(static_cast<uint32_t>(site));
    }
    e.options_.obs.Add(obs::Counter::kExecAtomics);
  }
  if (mem.faulted()) {
    ctx->mem_fault = 1;
  }
  return old;
}

void Tier2Backend::ObsFence(Tier2Ctx* ctx, uint64_t site) {
  CountHelper(ctx, obs::TierProf::kHelperFence);
  Engine& e = *ctx->engine;
  if (e.options_.obs.profile != nullptr) {
    e.options_.obs.profile->AddFence(static_cast<uint32_t>(site));
  }
  e.options_.obs.Add(obs::Counter::kExecFences);
}

void Tier2Backend::ObsInstrs(Tier2Ctx* ctx, uint64_t site, uint64_t n) {
  ctx->engine->options_.obs.profile->AddInstrs(static_cast<uint32_t>(site),
                                               n);
}

void Tier2Backend::ObsEntry(Tier2Ctx* ctx, uint64_t site) {
  ctx->engine->options_.obs.profile->AddEntry(static_cast<uint32_t>(site));
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

void Tier2Backend::Deopt(Frame& f, const TInst& ti, DeoptReason reason) {
  f.native = false;
  f.translated = false;
  f.block = ti.block;
  f.it = ti.anchor;
  f.profile_site = ti.site;
  ++e_.deopt_counts_[static_cast<int>(reason)];
  if (e_.tierprof_ != nullptr) {
    e_.tierprof_->RecordDeopt(
        e_.current_, e_.TierProfId(f.info), /*resident_tier=*/2,
        static_cast<uint8_t>(reason),
        ti.block != nullptr ? ti.block->guest_address : 0, e_.steps_);
  }
  e_.options_.obs.Add(obs::Counter::kExecDeopts);
  switch (reason) {
    case DeoptReason::kPreempt:
      e_.options_.obs.Add(obs::Counter::kExecDeoptPreempt);
      break;
    case DeoptReason::kSmcWrite:
      e_.options_.obs.Add(obs::Counter::kExecDeoptSmcWrite);
      break;
    default:
      e_.options_.obs.Add(obs::Counter::kExecDeoptUncovered);
      if (f.info->fn != nullptr &&
          e_.options_.cfg_certified_entries.count(f.info->fn->guest_entry) !=
              0) {
        // A certificate promised this function had no uncovered edges.
        e_.options_.obs.Add(obs::Counter::kExecDeoptUncoveredCert);
      }
      break;
  }
}

bool Tier2Backend::Step(Thread& t, StepMode mode) {
  // kSingle never reaches this backend: the engine routes controlled-
  // scheduler steps of native frames through the tier-1 executor over the
  // same TInst stream (Frame::translated stays true), so decision points
  // and preemption deopts are tier-1-identical by construction.
  POLY_CHECK(mode != StepMode::kSingle);
  Frame* f = &t.stack.back();
  const Translation* tr = f->info->translation.get();
  NativeCode* nc = f->info->native.get();
  POLY_CHECK(nc != nullptr && f->tpc < nc->entry_off.size());

  // Identical budget rule to tier 1's batch loop.
  uint64_t left = e_.options_.max_steps >= e_.steps_
                      ? e_.options_.max_steps - e_.steps_ + 1
                      : 1;
  uint64_t budget = std::min<uint64_t>(65536, left);

  Tier2Ctx ctx;
  ctx.values = f->values.data();
  ctx.clock = t.clock;
  ctx.executed = 0;
  ctx.rng_state = t.jitter_rng.state();
  ctx.budget = budget;
  ctx.estack_low = t.estack_low;
  ctx.estack_high = t.estack_high;
  ctx.resume = nc->code + nc->entry_off[f->tpc];
  ctx.exit_status = 0;
  ctx.exit_tpc = f->tpc;
  ctx.batch_stop = mode == StepMode::kBatch ? 1 : 0;
  ctx.mem_fault = 0;
  ctx.tls = t.tls.data();
  ctx.shared = e_.shared_globals_.data();
  ctx.engine = &e_;
  ctx.thread = &t;

  entry_(&ctx);

  t.clock = ctx.clock;
  t.jitter_rng.set_state(ctx.rng_state);
  uint64_t executed = ctx.executed;
  const uint32_t tpc = static_cast<uint32_t>(ctx.exit_tpc);
  // Residency attribution target: the batch retires in this frame's
  // function, and FuncInfo outlives the frame (kRet pops `f`).
  FuncInfo* fi = f->info;
  auto* tierprof = e_.tierprof_;

  // Step accounting mirrors tier 1: the outer loop adds +1 per Step, so
  // normal returns flush executed-1 and fault returns flush all of it.
  auto finish_true = [&]() {
    e_.steps_ += executed > 0 ? executed - 1 : 0;
    e_.tier2_instrs_ += executed;
    if (tierprof != nullptr) {
      fi->tp_steps[2] += executed;
    }
    return true;
  };
  auto finish_false = [&]() {
    e_.steps_ += executed;
    e_.tier2_instrs_ += executed;
    if (tierprof != nullptr) {
      fi->tp_steps[2] += executed;
    }
    return false;
  };
  auto do_deopt = [&](const TInst& anchor_ti, DeoptReason reason) {
    Deopt(*f, anchor_ti, reason);
    if (executed == 0) {
      // ≥1-instruction-per-Step contract: interpret the deopted operation
      // inline, exactly as tier 1 does.
      return e_.StepInstruction(t);
    }
    e_.steps_ += executed - 1;
    e_.tier2_instrs_ += executed;
    if (tierprof != nullptr) {
      fi->tp_steps[2] += executed;
    }
    return true;
  };

  switch (static_cast<Tier2Exit>(ctx.exit_status)) {
    case Tier2Exit::kStop:
      f->tpc = tpc;
      return finish_true();

    case Tier2Exit::kRet: {
      const TInst& ti = tr->code[tpc];
      uint64_t value = ti.a == kNoDst ? 0 : f->values[ti.a];
      bool was_root = f->dispatch_root;
      t.stack.pop_back();  // f dangles from here
      if (t.stack.empty() || was_root) {
        t.pending_pc = value;
        t.last_toplevel_pc = value;
      } else {
        Frame& caller = t.stack.back();
        if (caller.translated) {
          const TInst& call = caller.info->translation->code[caller.tpc];
          POLY_CHECK(call.op == TOp::kCall);
          if (call.dst != kNoDst) {
            caller.values[call.dst] = value;
          }
          ++caller.tpc;
        } else {
          const ir::Instruction& call_inst = **caller.it;
          POLY_CHECK(call_inst.op() == ir::Op::kCall);
          if (call_inst.HasResult()) {
            caller.values[static_cast<size_t>(call_inst.id)] = value;
          }
          ++caller.it;
        }
      }
      return finish_true();
    }

    case Tier2Exit::kCall:
      f->tpc = tpc;  // stays at the call; the matching return advances it
      e_.PushFrame(t, tr->calls[tr->code[tpc].aux], /*dispatch_root=*/false);
      return finish_true();

    case Tier2Exit::kIntrinsic: {
      const size_t frame_index = t.stack.size() - 1;
      f->tpc = tpc;
      // Flush retired work before the intrinsic (it may nest dispatches);
      // the intrinsic itself is covered by the outer loop's +1.
      e_.steps_ += executed;
      e_.tier2_instrs_ += executed;
      if (tierprof != nullptr) {
        fi->tp_steps[2] += executed;
      }
      const TInst& ti = tr->code[tpc];
      const ir::Instruction& inst = **ti.anchor;
      if (!e_.HandleIntrinsic(t, frame_index, inst)) {
        return !e_.faulted_ && e_.miss_ == std::nullopt;
      }
      Frame& ff = t.stack[frame_index];  // nested dispatch may reallocate
      if (e_.retry_pending_) {
        e_.retry_pending_ = false;
        e_.last_step_retried_ = true;
      } else {
        ++ff.tpc;
      }
      if (e_.options_.cost_jitter) {
        t.clock += t.jitter_rng.Next() & 1;
      }
      if (e_.obs_attached_ && e_.options_.obs.profile != nullptr) {
        e_.options_.obs.profile->AddInstrs(ti.site, 1);
      }
      e_.tier2_instrs_ += 1;
      if (tierprof != nullptr) {
        fi->tp_steps[2] += 1;
      }
      return true;
    }

    case Tier2Exit::kDeoptSmc:
      return do_deopt(tr->code[tpc], DeoptReason::kSmcWrite);

    case Tier2Exit::kDeoptAnchor: {
      const TInst& anchor = tr->code[tpc];
      return do_deopt(anchor, static_cast<DeoptReason>(anchor.extra));
    }

    case Tier2Exit::kDivZero:
      e_.Fault("division by zero in lifted code");
      return finish_false();

    case Tier2Exit::kDivOverflow:
      e_.Fault("division overflow in lifted code");
      return finish_false();
  }
  POLY_UNREACHABLE("bad tier-2 exit status");
}

}  // namespace polynima::exec
