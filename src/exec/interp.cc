// Tier-0 execution: the reference IR interpreter (DESIGN.md §4f).
//
// Hosts Engine::StepInstruction — one IR instruction per call — and the
// intrinsic handler. The body is instantiated twice: the <true> variant
// carries the per-instruction observability hooks (guest profile, exec.*
// counters), the <false> variant compiles them out entirely, so unobserved
// runs pay no per-instruction null checks in the dispatch loop.
#include "src/exec/interp.h"

#include "src/exec/engine.h"
#include "src/exec/exec_util.h"
#include "src/exec/tier1.h"
#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::exec {

using ir::BasicBlock;
using ir::Instruction;
using ir::Op;
using ir::RmwOp;

bool InterpreterBackend::Step(Thread& t, StepMode /*mode*/) {
  return e_.StepInstruction(t);
}

bool Engine::StepInstruction(Thread& t) {
  return obs_attached_ ? StepInstructionImpl<true>(t)
                       : StepInstructionImpl<false>(t);
}

template <bool kObs>
bool Engine::StepInstructionImpl(Thread& t) {
  // Index, not reference: intrinsics (qsort callbacks) may push frames and
  // reallocate the stack vector.
  const size_t frame_index = t.stack.size() - 1;
  Frame& f = t.stack.back();
  POLY_CHECK(f.it != f.block->insts().end())
      << "fell off block " << f.block->name();
  const Instruction& inst = **f.it;
  if constexpr (kObs) {
    if (options_.obs.profile != nullptr) {
      options_.obs.profile->AddInstrs(f.profile_site, 1);
    }
    if (tierprof_ != nullptr) {
      ++f.info->tp_steps[0];  // tier-0 residency attribution
    }
  }
  // Copy: `f` may dangle after a call pushes a frame (vector reallocation).
  const FuncInfo* info = f.info;
  uint64_t cost = costs_.alu;
  bool advance = true;

  switch (inst.op()) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kLShr:
    case Op::kAShr: {
      uint64_t a = Eval(f, inst.operand(0));
      uint64_t b = Eval(f, inst.operand(1));
      uint64_t r = 0;
      switch (inst.op()) {
        case Op::kAdd:
          r = a + b;
          break;
        case Op::kSub:
          r = a - b;
          break;
        case Op::kMul:
          r = a * b;
          cost += 2;
          break;
        case Op::kSDiv:
        case Op::kSRem: {
          if (b == 0) {
            Fault("division by zero in lifted code");
            return false;
          }
          int64_t sa = static_cast<int64_t>(a);
          int64_t sb = static_cast<int64_t>(b);
          if (sa == INT64_MIN && sb == -1) {
            Fault("division overflow in lifted code");
            return false;
          }
          r = static_cast<uint64_t>(inst.op() == Op::kSDiv ? sa / sb
                                                           : sa % sb);
          cost += 20;
          break;
        }
        case Op::kUDiv:
        case Op::kURem:
          if (b == 0) {
            Fault("division by zero in lifted code");
            return false;
          }
          r = inst.op() == Op::kUDiv ? a / b : a % b;
          cost += 20;
          break;
        case Op::kAnd:
          r = a & b;
          break;
        case Op::kOr:
          r = a | b;
          break;
        case Op::kXor:
          r = a ^ b;
          break;
        case Op::kShl:
          r = b >= 64 ? 0 : a << b;
          break;
        case Op::kLShr:
          r = b >= 64 ? 0 : a >> b;
          break;
        case Op::kAShr:
          r = static_cast<uint64_t>(
              static_cast<int64_t>(a) >> (b >= 64 ? 63 : b));
          break;
        default:
          POLY_UNREACHABLE("covered above");
      }
      f.values[static_cast<size_t>(inst.id)] = r;
      break;
    }

    case Op::kICmp: {
      uint64_t a = Eval(f, inst.operand(0));
      uint64_t b = Eval(f, inst.operand(1));
      f.values[static_cast<size_t>(inst.id)] = EvalPred(inst.pred, a, b);
      break;
    }

    case Op::kSelect: {
      uint64_t c = Eval(f, inst.operand(0));
      f.values[static_cast<size_t>(inst.id)] =
          c != 0 ? Eval(f, inst.operand(1)) : Eval(f, inst.operand(2));
      break;
    }

    case Op::kSExt: {
      uint64_t v = Eval(f, inst.operand(0));
      int shift = 64 - inst.width;
      f.values[static_cast<size_t>(inst.id)] = static_cast<uint64_t>(
          (static_cast<int64_t>(v << shift)) >> shift);
      break;
    }

    case Op::kLoad: {
      uint64_t addr = Eval(f, inst.operand(0));
      RecordAccess(&inst, t, addr);
      f.values[static_cast<size_t>(inst.id)] = memory_.Read(addr, inst.size);
      cost = costs_.mem_access;
      break;
    }
    case Op::kStore: {
      uint64_t addr = Eval(f, inst.operand(0));
      RecordAccess(&inst, t, addr);
      memory_.Write(addr, inst.size,
                    MaskBytes(Eval(f, inst.operand(1)), inst.size));
      cost = costs_.mem_access;
      break;
    }

    case Op::kGlobalLoad:
      f.values[static_cast<size_t>(inst.id)] = GlobalSlot(t, inst.global);
      cost = costs_.global_access;
      break;
    case Op::kGlobalStore:
      GlobalSlot(t, inst.global) = Eval(f, inst.operand(0));
      cost = costs_.global_access;
      break;

    case Op::kBr: {
      BasicBlock* target;
      if (inst.num_operands() == 0) {
        target = inst.targets[0];
      } else {
        target = Eval(f, inst.operand(0)) != 0 ? inst.targets[0]
                                               : inst.targets[1];
      }
      EnterBlock(f, target);
      advance = false;
      cost = costs_.branch;
      break;
    }

    case Op::kSwitch: {
      uint64_t v = Eval(f, inst.operand(0));
      BasicBlock* target = inst.targets[0];
      for (size_t i = 0; i < inst.case_values.size(); ++i) {
        if (static_cast<uint64_t>(inst.case_values[i]) == v) {
          target = inst.targets[i + 1];
          break;
        }
      }
      EnterBlock(f, target);
      advance = false;
      // Dispatch cost grows with the target set (switch-on-PC, §3.2).
      uint64_t n = inst.case_values.size();
      cost = 2;
      while (n > 1) {
        n >>= 1;
        ++cost;
      }
      break;
    }

    case Op::kRet: {
      uint64_t value =
          inst.num_operands() > 0 ? Eval(f, inst.operand(0)) : 0;
      bool was_root = f.dispatch_root;
      t.stack.pop_back();
      cost = costs_.ret;
      if (t.stack.empty() || was_root) {
        t.pending_pc = value;
        t.last_toplevel_pc = value;
      } else {
        Frame& caller = t.stack.back();
        if (caller.translated) {
          // Cross-tier return: the caller is parked on a tier-1 kCall.
          const Translation& tr = *caller.info->translation;
          const TInst& call = tr.code[caller.tpc];
          POLY_CHECK(call.op == TOp::kCall);
          if (call.dst != kNoDst) {
            caller.values[call.dst] = value;
          }
          ++caller.tpc;
        } else {
          const Instruction& call_inst = **caller.it;
          POLY_CHECK(call_inst.op() == Op::kCall);
          if (call_inst.HasResult()) {
            caller.values[static_cast<size_t>(call_inst.id)] = value;
          }
          ++caller.it;
        }
      }
      advance = false;
      break;
    }

    case Op::kUnreachable:
      Fault(StrCat("unreachable executed in @", f.info->fn->name()));
      return false;

    case Op::kCall: {
      if (inst.callee != nullptr) {
        PushFrame(t, InfoFor(inst.callee), /*dispatch_root=*/false);
        cost = costs_.call;
        advance = false;  // the matching ret advances the caller
        break;
      }
      if (!HandleIntrinsic(t, frame_index, inst)) {
        return !faulted_ && miss_ == std::nullopt;
      }
      // HandleIntrinsic may request a retry (blocking external).
      if (retry_pending_) {
        retry_pending_ = false;
        last_step_retried_ = true;
        advance = false;
      }
      cost = 0;  // intrinsics charge their own cost
      break;
    }

    case Op::kPhi:
      // Materialized at block entry.
      cost = costs_.phi;
      break;

    case Op::kFence:
      if constexpr (kObs) {
        if (options_.obs.profile != nullptr) {
          options_.obs.profile->AddFence(f.profile_site);
        }
        options_.obs.Add(obs::Counter::kExecFences);
      }
      cost = costs_.fence;
      break;

    case Op::kAtomicRmw: {
      uint64_t addr = Eval(f, inst.operand(0));
      uint64_t operand = Eval(f, inst.operand(1));
      RecordAccess(&inst, t, addr);
      uint64_t old = memory_.Read(addr, inst.size);
      uint64_t r = old;
      switch (inst.rmw_op) {
        case RmwOp::kAdd:
          r = old + operand;
          break;
        case RmwOp::kSub:
          r = old - operand;
          break;
        case RmwOp::kAnd:
          r = old & operand;
          break;
        case RmwOp::kOr:
          r = old | operand;
          break;
        case RmwOp::kXor:
          r = old ^ operand;
          break;
        case RmwOp::kXchg:
          r = operand;
          break;
      }
      memory_.Write(addr, inst.size, MaskBytes(r, inst.size));
      f.values[static_cast<size_t>(inst.id)] = old;
      if constexpr (kObs) {
        if (options_.obs.profile != nullptr) {
          options_.obs.profile->AddAtomic(f.profile_site);
        }
        options_.obs.Add(obs::Counter::kExecAtomics);
      }
      cost = costs_.atomic;
      break;
    }

    case Op::kCmpXchg: {
      uint64_t addr = Eval(f, inst.operand(0));
      uint64_t expected = MaskBytes(Eval(f, inst.operand(1)), inst.size);
      uint64_t desired = Eval(f, inst.operand(2));
      RecordAccess(&inst, t, addr);
      uint64_t old = memory_.Read(addr, inst.size);
      if (old == expected) {
        memory_.Write(addr, inst.size, MaskBytes(desired, inst.size));
      }
      f.values[static_cast<size_t>(inst.id)] = old;
      if constexpr (kObs) {
        if (options_.obs.profile != nullptr) {
          options_.obs.profile->AddAtomic(f.profile_site);
        }
        options_.obs.Add(obs::Counter::kExecAtomics);
      }
      cost = costs_.atomic;
      break;
    }
  }

  // Address arithmetic feeding only memory operands is free: the native
  // backend folds it into x86 addressing modes.
  if (inst.id >= 0 && info->fold_by_id[static_cast<size_t>(inst.id)] != 0) {
    cost = 0;
  } else if (options_.cost_jitter) {
    cost += t.jitter_rng.Next() & 1;
  }
  t.clock += cost;
  if (advance) {
    ++t.stack[frame_index].it;
  }
  return true;
}

template bool Engine::StepInstructionImpl<true>(Thread& t);
template bool Engine::StepInstructionImpl<false>(Thread& t);

bool Engine::HandleIntrinsic(Thread& t, size_t frame_index,
                             const Instruction& inst) {
  const std::string& name = inst.intrinsic;
  // Re-fetch the frame on every use: nested dispatch may reallocate.
  auto frame = [&]() -> Frame& { return t.stack[frame_index]; };
  auto set_result = [&](uint64_t v) {
    if (inst.HasResult()) {
      frame().values[static_cast<size_t>(inst.id)] = v;
    }
  };
  Frame& f = frame();  // valid until a nested dispatch occurs

  if (name == "ext_call") {
    uint64_t slot = Eval(f, inst.operand(0));
    if (slot >= program_.externals.size()) {
      Fault(StrCat("ext_call to unmapped slot ", slot));
      return false;
    }
    t.clock += costs_.ext_marshal;
    options_.obs.Add(obs::Counter::kExecExtCalls);
    vm::ExtResult result = library_->Call(program_.externals[slot], *this);
    switch (result.status) {
      case vm::ExtStatus::kDone:
        set_result(0);
        return true;
      case vm::ExtStatus::kBlock:
        retry_pending_ = true;
        return true;
      case vm::ExtStatus::kFault:
        Fault(StrCat("external ", program_.externals[slot], ": ",
                     result.fault_message));
        return false;
    }
    return false;
  }
  if (name == "cfmiss") {
    uint64_t target = Eval(f, inst.operand(0));
    uint64_t transfer = Eval(f, inst.operand(1));
    miss_ = MissInfo{transfer, target};
    Fault(StrCat("control flow miss: ", HexString(transfer), " -> ",
                 HexString(target)));
    return false;
  }
  if (name == "trap") {
    Fault(StrCat("lifted trap at ",
                 HexString(Eval(f, inst.operand(0)))));
    return false;
  }
  if (name == "parity") {
    uint64_t v = Eval(f, inst.operand(0));
    set_result((__builtin_popcountll(v & 0xff) % 2) == 0 ? 1 : 0);
    t.clock += 1;
    return true;
  }
  if (name == "pause") {
    t.clock += 4;
    set_result(0);
    return true;
  }
  if (name == "helper_paddd" || name == "helper_psubd" ||
      name == "helper_pmulld") {
    uint64_t a = Eval(f, inst.operand(0));
    uint64_t b = Eval(f, inst.operand(1));
    char op = name == "helper_paddd" ? '+' : name == "helper_psubd" ? '-' : '*';
    set_result(PackedLanes32(a, b, op));
    t.clock += costs_.helper;
    return true;
  }
  if (name == "simd_paddd" || name == "simd_psubd" || name == "simd_pmulld") {
    // First-class SIMD translation (§5.3): lowers back to one packed
    // instruction, so it costs like one.
    uint64_t a = Eval(f, inst.operand(0));
    uint64_t b = Eval(f, inst.operand(1));
    char op = name == "simd_paddd" ? '+' : name == "simd_psubd" ? '-' : '*';
    set_result(PackedLanes32(a, b, op));
    t.clock += costs_.alu;
    return true;
  }
  if (name == "helper_mulh") {
    __int128 full = static_cast<__int128>(
                        static_cast<int64_t>(Eval(f, inst.operand(0)))) *
                    static_cast<__int128>(
                        static_cast<int64_t>(Eval(f, inst.operand(1))));
    set_result(static_cast<uint64_t>(full >> 64));
    t.clock += costs_.helper;
    return true;
  }
  if (name == "helper_sdiv128" || name == "helper_srem128") {
    __int128 dividend =
        (static_cast<__int128>(static_cast<int64_t>(Eval(f, inst.operand(0))))
         << 64) |
        static_cast<__int128>(Eval(f, inst.operand(1)));
    int64_t divisor = static_cast<int64_t>(Eval(f, inst.operand(2)));
    if (divisor == 0) {
      Fault("division by zero in lifted code");
      return false;
    }
    set_result(static_cast<uint64_t>(name == "helper_sdiv128"
                                         ? dividend / divisor
                                         : dividend % divisor));
    t.clock += costs_.helper + 20;
    return true;
  }
  if (name == "global_lock") {
    if (global_lock_owner_ != -1 && global_lock_owner_ != t.id) {
      retry_pending_ = true;
      t.clock += 10;
      return true;
    }
    global_lock_owner_ = t.id;
    set_result(0);
    t.clock += 8;
    return true;
  }
  if (name == "global_unlock") {
    global_lock_owner_ = -1;
    set_result(0);
    t.clock += 8;
    return true;
  }
  Fault("unknown intrinsic: " + name);
  return false;
}

}  // namespace polynima::exec
