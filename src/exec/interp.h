// Tier-0 backend: the reference IR interpreter (see backend.h).
#ifndef POLYNIMA_EXEC_INTERP_H_
#define POLYNIMA_EXEC_INTERP_H_

#include "src/exec/backend.h"

namespace polynima::exec {

class Engine;

// Executes one IR instruction per Step regardless of mode: the interpreter
// is the semantic baseline, and everything visible to schedulers, digests
// and the cost model is defined by what it does.
class InterpreterBackend : public Backend {
 public:
  explicit InterpreterBackend(Engine& e) : e_(e) {}

  const char* name() const override { return "interp"; }
  bool Step(Thread& t, StepMode mode) override;

 private:
  Engine& e_;
};

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_INTERP_H_
