// Execution-backend interface for the tiered engine (DESIGN.md §4f).
//
// The engine core (src/exec/engine.h) owns threads, scheduling loops, guest
// memory and the dispatcher; *how* the current frame's instructions execute
// is a Backend:
//
//   tier 0  InterpreterBackend (src/exec/interp.cc) — walks the lifted IR
//           instruction by instruction. Always available; the semantic
//           reference every other tier must be bit-identical to.
//   tier 1  Tier1Backend (src/exec/tier1.{h,cc}) — translates hot functions
//           into direct-threaded bytecode with fused superinstructions and
//           executes that. Guarded: self-modifying-code stores, uncovered
//           CFG edges and controlled-scheduler preemption boundaries
//           deoptimize back to tier 0 mid-function.
//
// Frames carry their own tier (Frame::translated), so a thread's call stack
// may mix tiers freely — a cold callee interprets under a hot translated
// caller and vice versa. Deoptimization is cheap by construction: tier 1
// keeps the interpreter's per-frame value array as its register file, so a
// transfer is a (block, iterator) reposition, never a state rebuild.
//
// A future native re-encoding tier (src/x86 emitting host code) slots in as
// one more Backend implementation behind the same Frame/deopt contract.
#ifndef POLYNIMA_EXEC_BACKEND_H_
#define POLYNIMA_EXEC_BACKEND_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/ir/ir.h"
#include "src/sched/scheduler.h"
#include "src/support/rng.h"

namespace polynima::exec {

class Engine;
struct Translation;  // tier-1 bytecode unit (src/exec/tier1.h)
struct NativeCode;   // tier-2 native re-emission (src/exec/tier2.h)

// Why a tier-1 frame transferred back to the interpreter.
enum class DeoptReason : int {
  // A controlled scheduler is attached and the next operation is a
  // guest-visible preemption point: the interpreter executes every visible
  // operation so the decision-point sequence is bit-identical to tier 0.
  kPreempt = 0,
  // A translated store targets an executable image range (self-modifying
  // code): the write must not retire under a translation it could
  // invalidate.
  kSmcWrite,
  // A branch took an edge into a block the translator did not cover
  // (control-flow miss stubs, traps — the additive-lifting frontier).
  kUncoveredEdge,
  kNumReasons,
};
const char* DeoptReasonName(DeoptReason reason);

// How much work one Backend::Step call may perform.
enum class StepMode : uint8_t {
  // Exactly one guest operation: the controlled scheduler classifies and
  // consults before every step, so the backend must not run ahead.
  kSingle,
  // Batch thread-private work, stopping before guest-visible operations so
  // the min-clock loop interleaves visible ops at the same clock values as
  // tier 0 (multi-threaded min-clock runs).
  kBatch,
  // Batch without visibility stops (single live thread, or nested execution
  // inside an external call where the scheduler is already committed).
  kBatchFree,
};

// Per-function facts the engine resolves once at construction (and the
// tier-1 translation, attached when the function crosses the hot
// threshold). Frames keep a pointer so the per-call and per-instruction hot
// paths never re-resolve maps.
struct FuncInfo {
  ir::Function* fn = nullptr;
  int num_slots = 0;
  // Instructions whose results feed only memory-operand addresses: a native
  // backend folds base+index*scale+disp into the addressing mode, so they
  // cost nothing.
  std::set<const ir::Instruction*> fold;
  // Dense by-id view of `fold` for the per-instruction cost check.
  std::vector<uint8_t> fold_by_id;
  // Block entries + calls observed while interpreting — the hot-function
  // selector (mirrors the obs::GuestProfile entry counts when a profile
  // sink is attached, but works unattached).
  uint64_t heat = 0;
  bool translation_failed = false;
  std::shared_ptr<Translation> translation;
  // Tier-2 native re-emission of `translation` (promoted by continued heat
  // once the bytecode tier is in place; see src/exec/tier2.h).
  std::shared_ptr<NativeCode> native;
  bool native_failed = false;
  // Tier-telemetry scratch (obs::TierProf attached only; dead otherwise).
  // The hot paths bump these plain counters inline and the engine folds
  // them into the sink once at session end, so residency attribution costs
  // one array increment per retired batch. Array sizes mirror
  // obs::TierProf::{kNumTiers,kNumHelpers} (static_assert in engine.cc).
  static constexpr uint32_t kNoTierProfId = 0xffffffffu;
  uint32_t tp_id = kNoTierProfId;  // interned TierProf function id
  uint64_t tp_steps[3] = {};       // guest steps retired per tier
  uint64_t tp_helpers[5] = {};     // tier-2 out-of-line helper calls
};

// One lifted-function activation. `values` is the register file both tiers
// share: slot i holds IR instruction id i's result; tier-1 frames extend it
// with the translation's constant pool and phi scratch slots.
struct Frame {
  FuncInfo* info = nullptr;
  std::vector<uint64_t> values;
  ir::BasicBlock* block = nullptr;
  ir::BasicBlock::InstList::const_iterator it;
  ir::BasicBlock* prev_block = nullptr;
  // Frames pushed by the dispatcher/CallGuest do not propagate their
  // return value into the frame below.
  bool dispatch_root = false;
  // True while this frame executes tier-1 bytecode at `tpc`; false while
  // the interpreter drives (block, it). Deopt flips this mid-function.
  bool translated = false;
  // True while this frame executes tier-2 native code (implies `translated`:
  // both tiers share the TInst stream, and `tpc` is always the resume
  // position at batch boundaries). Deopt clears both flags.
  bool native = false;
  uint32_t tpc = 0;
  // Guest-profile site of the current block (valid only while profiling;
  // cached so the per-instruction hook is an array increment).
  uint32_t profile_site = 0;
};

struct Thread {
  int id = 0;
  uint64_t clock = 0;
  bool finished = false;
  uint64_t retval = 0;
  std::vector<Frame> stack;
  // Valid when stack is empty: guest PC awaiting dispatch.
  uint64_t pending_pc = 0;
  uint64_t exit_magic = 0;
  std::vector<uint64_t> tls;
  uint64_t estack_low = 0, estack_high = 0;
  // Return PC observed by the most recent top-level return.
  uint64_t last_toplevel_pc = 0;
  // Controlled scheduling only: the thread's last step was a blocking
  // retry (kBlock external, busy global lock); it leaves the candidate
  // set until some thread performs a state-changing visible operation.
  bool blocked = false;
  // Consecutive non-mutating visible steps (spinloop detector).
  int spin_streak = 0;
  // Cost-jitter stream. Per-thread (seeded from run seed + id) so a tier-1
  // batch that runs a private stretch without yielding consumes exactly the
  // draws tier 0 would have, in the same order — with a shared stream, any
  // change in cross-thread interleaving of private work would desynchronize
  // every thread's clock.
  Rng jitter_rng{1};
};

// Classification of a thread's next operation for the controlled scheduler.
struct NextOp {
  bool visible = false;     // preemption point: consult the scheduler
  bool mutates = false;     // state-changing: wakes blocked threads
  bool yield_hint = false;  // pause intrinsic: deprioritize immediately
  sched::PointKind kind = sched::PointKind::kDispatch;
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const = 0;
  // Executes guest work on t's top frame per `mode`. Returns false when the
  // run must stop (fault, miss, exit). Every call executes at least one
  // guest instruction, so the scheduling loops always make progress.
  virtual bool Step(Thread& t, StepMode mode) = 0;
};

}  // namespace polynima::exec

#endif  // POLYNIMA_EXEC_BACKEND_H_
