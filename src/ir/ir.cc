#include "src/ir/ir.h"

#include <algorithm>

namespace polynima::ir {

void Value::RemoveUser(Instruction* user) {
  if (!tracks_users()) {
    return;
  }
  // One entry per (user, operand) pair; remove a single matching entry.
  auto it = std::find(users_.begin(), users_.end(), user);
  if (it != users_.end()) {
    users_.erase(it);
  }
}

void Value::ReplaceAllUsesWith(Value* replacement) {
  POLY_CHECK(replacement != this);
  POLY_CHECK(tracks_users()) << "RAUW on a value without a use list";
  // Copy: SetOperand mutates users_.
  std::vector<Instruction*> users = users_;
  for (Instruction* user : users) {
    for (int i = 0; i < user->num_operands(); ++i) {
      if (user->operand(i) == this) {
        user->SetOperand(i, replacement);
      }
    }
  }
}

Instruction::~Instruction() { DropOperands(); }

void Instruction::SetOperand(int i, Value* v) {
  Value* old = operands_[static_cast<size_t>(i)];
  if (old != nullptr) {
    old->RemoveUser(this);
  }
  operands_[static_cast<size_t>(i)] = v;
  if (v != nullptr) {
    v->AddUser(this);
  }
}

void Instruction::AddOperand(Value* v) {
  operands_.push_back(v);
  if (v != nullptr) {
    v->AddUser(this);
  }
}

void Instruction::DropOperands() {
  for (Value* v : operands_) {
    if (v != nullptr) {
      v->RemoveUser(this);
    }
  }
  operands_.clear();
}

bool Instruction::HasResult() const {
  switch (op_) {
    case Op::kStore:
    case Op::kGlobalStore:
    case Op::kBr:
    case Op::kSwitch:
    case Op::kRet:
    case Op::kUnreachable:
    case Op::kFence:
      return false;
    case Op::kCall:
      // Intrinsics and direct calls both produce a value unless the callee is
      // a void function.
      if (callee != nullptr) {
        return callee->has_result();
      }
      return true;
    default:
      return true;
  }
}

Instruction* BasicBlock::Append(std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  insts_.push_back(std::move(inst));
  return insts_.back().get();
}

Instruction* BasicBlock::InsertBefore(InstList::iterator pos,
                                      std::unique_ptr<Instruction> inst) {
  inst->set_parent(this);
  return insts_.insert(pos, std::move(inst))->get();
}

BasicBlock::InstList::iterator BasicBlock::Erase(InstList::iterator pos) {
  return insts_.erase(pos);
}

std::vector<BasicBlock*> BasicBlock::Successors() const {
  Instruction* term = terminator();
  if (term == nullptr) {
    return {};
  }
  if (term->op() == Op::kBr || term->op() == Op::kSwitch) {
    return term->targets;
  }
  return {};
}

Function::~Function() {
  for (auto& block : blocks_) {
    for (auto& inst : block->insts()) {
      inst->DropOperands();
    }
  }
}

BasicBlock* Function::AddBlock(std::string block_name) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(block_name)));
  blocks_.back()->set_function(this);
  return blocks_.back().get();
}

void Function::RemoveBlock(BasicBlock* block) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->get() == block) {
      // Other dying blocks (an unreachable cycle being removed one block at
      // a time) may still hold operand pointers to this block's results;
      // null those uses out before the storage goes away, then drop this
      // block's own operand uses so use lists stay consistent.
      for (auto& inst : block->insts()) {
        inst->ReplaceAllUsesWith(nullptr);
        inst->DropOperands();
      }
      blocks_.erase(it);
      return;
    }
  }
  POLY_UNREACHABLE("block not in function");
}

int Function::Renumber() {
  int next = 0;
  for (auto& block : blocks_) {
    for (auto& inst : block->insts()) {
      inst->id = inst->HasResult() ? next++ : -1;
    }
  }
  return next;
}

Function* Module::AddFunction(std::string name, int num_args,
                              bool has_result) {
  functions_.push_back(
      std::make_unique<Function>(std::move(name), num_args, has_result));
  return functions_.back().get();
}

Function* Module::GetFunction(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) {
      return f.get();
    }
  }
  return nullptr;
}

void Module::RemoveFunction(Function* f) {
  for (auto it = functions_.begin(); it != functions_.end(); ++it) {
    if (it->get() == f) {
      for (auto& block : (*it)->blocks()) {
        for (auto& inst : block->insts()) {
          inst->DropOperands();
        }
      }
      functions_.erase(it);
      return;
    }
  }
  POLY_UNREACHABLE("function not in module");
}

Global* Module::AddGlobal(const std::string& name, bool is_thread_local,
                          int64_t initial) {
  POLY_CHECK(globals_by_name_.count(name) == 0) << "duplicate global " << name;
  globals_.push_back(
      std::make_unique<Global>(name, is_thread_local, initial, next_slot_++));
  globals_by_name_[name] = globals_.back().get();
  return globals_.back().get();
}

Global* Module::GetGlobal(const std::string& name) const {
  auto it = globals_by_name_.find(name);
  return it == globals_by_name_.end() ? nullptr : it->second;
}

Constant* Module::GetConstant(int64_t value) {
  std::lock_guard<std::mutex> lock(constants_mu_);
  auto it = constants_.find(value);
  if (it != constants_.end()) {
    return it->second.get();
  }
  auto c = std::make_unique<Constant>(value);
  Constant* ptr = c.get();
  constants_.emplace(value, std::move(c));
  return ptr;
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kSDiv:
      return "sdiv";
    case Op::kSRem:
      return "srem";
    case Op::kUDiv:
      return "udiv";
    case Op::kURem:
      return "urem";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kShl:
      return "shl";
    case Op::kLShr:
      return "lshr";
    case Op::kAShr:
      return "ashr";
    case Op::kICmp:
      return "icmp";
    case Op::kSelect:
      return "select";
    case Op::kSExt:
      return "sext";
    case Op::kLoad:
      return "load";
    case Op::kStore:
      return "store";
    case Op::kGlobalLoad:
      return "gload";
    case Op::kGlobalStore:
      return "gstore";
    case Op::kBr:
      return "br";
    case Op::kSwitch:
      return "switch";
    case Op::kRet:
      return "ret";
    case Op::kUnreachable:
      return "unreachable";
    case Op::kCall:
      return "call";
    case Op::kPhi:
      return "phi";
    case Op::kFence:
      return "fence";
    case Op::kAtomicRmw:
      return "atomicrmw";
    case Op::kCmpXchg:
      return "cmpxchg";
  }
  return "?";
}

const char* PredName(Pred pred) {
  switch (pred) {
    case Pred::kEq:
      return "eq";
    case Pred::kNe:
      return "ne";
    case Pred::kSlt:
      return "slt";
    case Pred::kSle:
      return "sle";
    case Pred::kSgt:
      return "sgt";
    case Pred::kSge:
      return "sge";
    case Pred::kUlt:
      return "ult";
    case Pred::kUle:
      return "ule";
    case Pred::kUgt:
      return "ugt";
    case Pred::kUge:
      return "uge";
  }
  return "?";
}

}  // namespace polynima::ir
