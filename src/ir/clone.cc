#include "src/ir/clone.h"

#include <map>

#include "src/support/check.h"

namespace polynima::ir {

void CloneFunctionBody(
    const Function& src, Function* dst, Module& dst_module,
    const std::function<Function*(const Function*)>& resolve_callee) {
  POLY_CHECK(dst->blocks().empty()) << "clone target @" << dst->name()
                                    << " already has a body";
  // Cached bodies skip lifting, so lifter-derived function facts must travel
  // with the body (the TSO checker trusts frame_pointer for witness roots).
  dst->frame_pointer = src.frame_pointer;

  std::map<const BasicBlock*, BasicBlock*> block_map;
  std::map<const Value*, Value*> value_map;
  for (const auto& sb : src.blocks()) {
    BasicBlock* nb = dst->AddBlock(sb->name());
    nb->guest_address = sb->guest_address;
    block_map[sb.get()] = nb;
  }
  for (int i = 0; i < src.num_args(); ++i) {
    POLY_CHECK(i < dst->num_args());
    value_map[const_cast<Function&>(src).arg(i)] = dst->arg(i);
  }

  auto map_value = [&](Value* v) -> Value* {
    auto it = value_map.find(v);
    if (it != value_map.end()) {
      return it->second;
    }
    switch (v->kind()) {
      case Value::Kind::kConstant:
        return dst_module.GetConstant(static_cast<Constant*>(v)->value());
      case Value::Kind::kGlobal: {
        const Global* g = static_cast<Global*>(v);
        Global* ng = dst_module.GetGlobal(g->name());
        if (ng == nullptr) {
          ng = dst_module.AddGlobal(g->name(), g->is_thread_local(),
                                    g->initial());
        }
        return ng;
      }
      case Value::Kind::kFunction: {
        Function* nf = resolve_callee(static_cast<Function*>(v));
        POLY_CHECK(nf != nullptr);
        return nf;
      }
      default:
        // A function-local value defined later (phi forward reference);
        // patched by the second pass below.
        return v;
    }
  };

  for (const auto& sb : src.blocks()) {
    BasicBlock* nb = block_map[sb.get()];
    for (const auto& si : sb->insts()) {
      auto clone = std::make_unique<Instruction>(si->op());
      clone->pred = si->pred;
      clone->width = si->width;
      clone->size = si->size;
      if (si->global != nullptr) {
        clone->global = static_cast<Global*>(map_value(si->global));
      }
      clone->fence_order = si->fence_order;
      clone->rmw_op = si->rmw_op;
      clone->fence_witness = si->fence_witness;
      if (si->callee != nullptr) {
        clone->callee = static_cast<Function*>(map_value(si->callee));
      }
      clone->intrinsic = si->intrinsic;
      clone->case_values = si->case_values;
      for (int i = 0; i < si->num_operands(); ++i) {
        clone->AddOperand(map_value(si->operand(i)));
      }
      for (BasicBlock* target : si->targets) {
        clone->targets.push_back(block_map.at(target));
      }
      for (BasicBlock* from : si->phi_blocks) {
        clone->phi_blocks.push_back(block_map.at(from));
      }
      value_map[si.get()] = nb->Append(std::move(clone));
    }
  }
  // Second pass: phi operands may reference instructions defined later
  // (loop back-edges); rewrite any operand still pointing into `src`.
  for (const auto& sb : src.blocks()) {
    BasicBlock* nb = block_map[sb.get()];
    for (auto& ni : nb->insts()) {
      for (int i = 0; i < ni->num_operands(); ++i) {
        auto it = value_map.find(ni->operand(i));
        if (it != value_map.end() && ni->operand(i) != it->second) {
          ni->SetOperand(i, it->second);
        }
      }
    }
  }
}

}  // namespace polynima::ir
