// Convenience builder for emitting IR instructions at the end of a block.
#ifndef POLYNIMA_IR_BUILDER_H_
#define POLYNIMA_IR_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace polynima::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  void SetInsertBlock(BasicBlock* block) { block_ = block; }
  BasicBlock* block() const { return block_; }
  Module* module() const { return module_; }

  Constant* Const(int64_t v) { return module_->GetConstant(v); }

  Instruction* Binary(Op op, Value* a, Value* b) {
    auto inst = std::make_unique<Instruction>(op);
    inst->AddOperand(a);
    inst->AddOperand(b);
    return block_->Append(std::move(inst));
  }
  Instruction* Add(Value* a, Value* b) { return Binary(Op::kAdd, a, b); }
  Instruction* Sub(Value* a, Value* b) { return Binary(Op::kSub, a, b); }
  Instruction* Mul(Value* a, Value* b) { return Binary(Op::kMul, a, b); }
  Instruction* And(Value* a, Value* b) { return Binary(Op::kAnd, a, b); }
  Instruction* Or(Value* a, Value* b) { return Binary(Op::kOr, a, b); }
  Instruction* Xor(Value* a, Value* b) { return Binary(Op::kXor, a, b); }
  Instruction* Shl(Value* a, Value* b) { return Binary(Op::kShl, a, b); }
  Instruction* LShr(Value* a, Value* b) { return Binary(Op::kLShr, a, b); }
  Instruction* AShr(Value* a, Value* b) { return Binary(Op::kAShr, a, b); }

  Instruction* ICmp(Pred pred, Value* a, Value* b) {
    Instruction* i = Binary(Op::kICmp, a, b);
    i->pred = pred;
    return i;
  }
  Instruction* Select(Value* cond, Value* a, Value* b) {
    auto inst = std::make_unique<Instruction>(Op::kSelect);
    inst->AddOperand(cond);
    inst->AddOperand(a);
    inst->AddOperand(b);
    return block_->Append(std::move(inst));
  }
  Instruction* SExt(Value* v, int from_bits) {
    auto inst = std::make_unique<Instruction>(Op::kSExt);
    inst->AddOperand(v);
    inst->width = from_bits;
    return block_->Append(std::move(inst));
  }

  Instruction* Load(int size, Value* addr) {
    auto inst = std::make_unique<Instruction>(Op::kLoad);
    inst->AddOperand(addr);
    inst->size = size;
    return block_->Append(std::move(inst));
  }
  Instruction* Store(int size, Value* addr, Value* v) {
    auto inst = std::make_unique<Instruction>(Op::kStore);
    inst->AddOperand(addr);
    inst->AddOperand(v);
    inst->size = size;
    return block_->Append(std::move(inst));
  }
  Instruction* GLoad(Global* g) {
    auto inst = std::make_unique<Instruction>(Op::kGlobalLoad);
    inst->global = g;
    return block_->Append(std::move(inst));
  }
  Instruction* GStore(Global* g, Value* v) {
    auto inst = std::make_unique<Instruction>(Op::kGlobalStore);
    inst->AddOperand(v);
    inst->global = g;
    return block_->Append(std::move(inst));
  }

  Instruction* Br(BasicBlock* target) {
    auto inst = std::make_unique<Instruction>(Op::kBr);
    inst->targets = {target};
    return block_->Append(std::move(inst));
  }
  Instruction* CondBr(Value* cond, BasicBlock* if_true, BasicBlock* if_false) {
    auto inst = std::make_unique<Instruction>(Op::kBr);
    inst->AddOperand(cond);
    inst->targets = {if_true, if_false};
    return block_->Append(std::move(inst));
  }
  // Switch: cases added via AddCase on the returned instruction's vectors.
  Instruction* Switch(Value* v, BasicBlock* default_block) {
    auto inst = std::make_unique<Instruction>(Op::kSwitch);
    inst->AddOperand(v);
    inst->targets = {default_block};
    return block_->Append(std::move(inst));
  }
  static void AddCase(Instruction* sw, int64_t value, BasicBlock* target) {
    POLY_CHECK(sw->op() == Op::kSwitch);
    sw->case_values.push_back(value);
    sw->targets.push_back(target);
  }

  Instruction* Ret(Value* v = nullptr) {
    auto inst = std::make_unique<Instruction>(Op::kRet);
    if (v != nullptr) {
      inst->AddOperand(v);
    }
    return block_->Append(std::move(inst));
  }
  Instruction* Unreachable() {
    return block_->Append(std::make_unique<Instruction>(Op::kUnreachable));
  }

  Instruction* Call(Function* callee, const std::vector<Value*>& args) {
    auto inst = std::make_unique<Instruction>(Op::kCall);
    inst->callee = callee;
    for (Value* a : args) {
      inst->AddOperand(a);
    }
    return block_->Append(std::move(inst));
  }
  Instruction* CallIntrinsic(const std::string& name,
                             const std::vector<Value*>& args) {
    auto inst = std::make_unique<Instruction>(Op::kCall);
    inst->intrinsic = name;
    for (Value* a : args) {
      inst->AddOperand(a);
    }
    return block_->Append(std::move(inst));
  }

  Instruction* Phi() {
    auto inst = std::make_unique<Instruction>(Op::kPhi);
    // Phis belong at the head of the block.
    return block_->InsertBefore(block_->insts().begin(), std::move(inst));
  }
  static void AddIncoming(Instruction* phi, Value* v, BasicBlock* from) {
    POLY_CHECK(phi->op() == Op::kPhi);
    phi->AddOperand(v);
    phi->phi_blocks.push_back(from);
  }

  Instruction* Fence(FenceOrder order) {
    auto inst = std::make_unique<Instruction>(Op::kFence);
    inst->fence_order = order;
    return block_->Append(std::move(inst));
  }
  Instruction* AtomicRmw(RmwOp op, int size, Value* addr, Value* v) {
    auto inst = std::make_unique<Instruction>(Op::kAtomicRmw);
    inst->rmw_op = op;
    inst->size = size;
    inst->AddOperand(addr);
    inst->AddOperand(v);
    return block_->Append(std::move(inst));
  }
  Instruction* CmpXchg(int size, Value* addr, Value* expected,
                       Value* desired) {
    auto inst = std::make_unique<Instruction>(Op::kCmpXchg);
    inst->size = size;
    inst->AddOperand(addr);
    inst->AddOperand(expected);
    inst->AddOperand(desired);
    return block_->Append(std::move(inst));
  }

 private:
  Module* module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace polynima::ir

#endif  // POLYNIMA_IR_BUILDER_H_
