#include "src/ir/verifier.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/support/strings.h"

namespace polynima::ir {

Status Verify(const Function& f) {
  auto fail = [&](const std::string& m) {
    return Status::Internal(StrCat("verify @", f.name(), ": ", m));
  };
  if (f.blocks().empty()) {
    return fail("no blocks");
  }

  std::set<const BasicBlock*> block_set;
  for (const auto& b : f.blocks()) {
    block_set.insert(b.get());
  }

  // Predecessor map for phi checking.
  std::map<const BasicBlock*, std::set<const BasicBlock*>> preds;
  for (const auto& b : f.blocks()) {
    for (BasicBlock* succ : b->Successors()) {
      if (block_set.count(succ) == 0) {
        return fail(StrCat("block ", b->name(), " targets foreign block"));
      }
      preds[succ].insert(b.get());
    }
  }

  std::set<const Value*> defined;
  for (int i = 0; i < f.num_args(); ++i) {
    defined.insert(const_cast<Function&>(f).arg(i));
  }

  for (const auto& b : f.blocks()) {
    if (b->insts().empty()) {
      return fail(StrCat("empty block ", b->name()));
    }
    bool seen_terminator = false;
    bool in_phi_prefix = true;
    for (const auto& inst : b->insts()) {
      if (seen_terminator) {
        return fail(StrCat("instruction after terminator in ", b->name()));
      }
      if (inst->op() == Op::kPhi) {
        if (!in_phi_prefix) {
          return fail(StrCat("phi not at head of ", b->name()));
        }
        if (inst->phi_blocks.size() !=
            static_cast<size_t>(inst->num_operands())) {
          return fail("phi incoming count mismatch");
        }
        const auto& expected = preds[b.get()];
        if (inst->phi_blocks.size() != expected.size()) {
          return fail(StrCat("phi in ", b->name(), " has ",
                             inst->phi_blocks.size(), " incoming, block has ",
                             expected.size(), " preds"));
        }
        for (BasicBlock* in : inst->phi_blocks) {
          if (expected.count(in) == 0) {
            return fail(StrCat("phi in ", b->name(),
                               " has non-predecessor incoming ", in->name()));
          }
        }
      } else {
        in_phi_prefix = false;
      }
      if (inst->IsTerminator()) {
        seen_terminator = true;
      }
      // Operand sanity: every operand must be a value-producing node and the
      // use lists must contain this instruction.
      for (int i = 0; i < inst->num_operands(); ++i) {
        const Value* v = inst->operand(i);
        if (v == nullptr) {
          return fail("null operand");
        }
        if (v->is_inst() &&
            !static_cast<const Instruction*>(v)->HasResult()) {
          return fail("operand has no result");
        }
        // Shared values (constants, globals, functions) do not track users;
        // only function-local values carry use lists to check.
        if (v->tracks_users()) {
          const auto& users = v->users();
          if (std::find(users.begin(), users.end(), inst.get()) ==
              users.end()) {
            return fail("use-list missing user");
          }
        }
      }
      if (inst->op() == Op::kBr) {
        size_t want = inst->num_operands() == 0 ? 1 : 2;
        if (inst->targets.size() != want) {
          return fail("br target count mismatch");
        }
      }
      if (inst->op() == Op::kSwitch &&
          inst->targets.size() != inst->case_values.size() + 1) {
        return fail("switch case/target mismatch");
      }
      if (inst->op() == Op::kRet) {
        if (f.has_result() && inst->num_operands() != 1) {
          return fail("ret without value in value-returning function");
        }
      }
    }
    if (!seen_terminator) {
      return fail(StrCat("block ", b->name(), " lacks terminator"));
    }
  }
  return Status::Ok();
}

Status Verify(const Module& m) {
  for (const auto& f : m.functions()) {
    POLY_RETURN_IF_ERROR(Verify(*f));
  }
  return Status::Ok();
}

}  // namespace polynima::ir
