#include "src/ir/verifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/support/strings.h"

namespace polynima::ir {

namespace {

// Expected operand count for fixed-arity ops; -1 for ops whose arity depends
// on other fields (br, ret, call, phi) and is checked separately.
int FixedOperandCount(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kSDiv:
    case Op::kSRem:
    case Op::kUDiv:
    case Op::kURem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kLShr:
    case Op::kAShr:
    case Op::kICmp:
    case Op::kStore:      // addr, value
    case Op::kAtomicRmw:  // addr, operand
      return 2;
    case Op::kSelect:   // cond, a, b
    case Op::kCmpXchg:  // addr, expected, desired
      return 3;
    case Op::kSExt:
    case Op::kLoad:         // addr
    case Op::kGlobalStore:  // value
    case Op::kSwitch:       // selector
      return 1;
    case Op::kGlobalLoad:
    case Op::kFence:
    case Op::kUnreachable:
      return 0;
    case Op::kBr:
    case Op::kRet:
    case Op::kCall:
    case Op::kPhi:
      return -1;
  }
  return -1;
}

// Dominator tree over the blocks reachable from entry (Cooper-Harvey-Kennedy
// iterative scheme, same shape as fenceopt's loop analysis). Unreachable
// blocks get no idom and are exempt from dominance queries: passes may leave
// dead blocks behind and DCE cleans them up later.
class Dominance {
 public:
  explicit Dominance(const Function& f) {
    // Reverse post-order via iterative DFS.
    std::set<const BasicBlock*> visited;
    std::vector<std::pair<const BasicBlock*, size_t>> stack;
    const BasicBlock* entry = f.entry();
    stack.push_back({entry, 0});
    visited.insert(entry);
    std::vector<const BasicBlock*> post;
    while (!stack.empty()) {
      auto& [b, i] = stack.back();
      std::vector<BasicBlock*> succs = b->Successors();
      if (i < succs.size()) {
        const BasicBlock* s = succs[i++];
        if (visited.insert(s).second) {
          stack.push_back({s, 0});
        }
      } else {
        post.push_back(b);
        stack.pop_back();
      }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); ++i) {
      rpo_index_[rpo_[i]] = i;
    }
    std::map<const BasicBlock*, std::vector<const BasicBlock*>> preds;
    for (const BasicBlock* b : rpo_) {
      for (BasicBlock* s : b->Successors()) {
        preds[s].push_back(b);
      }
    }
    idom_[entry] = entry;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 1; i < rpo_.size(); ++i) {
        const BasicBlock* b = rpo_[i];
        const BasicBlock* new_idom = nullptr;
        for (const BasicBlock* p : preds[b]) {
          if (idom_.count(p) == 0) {
            continue;  // predecessor not yet processed
          }
          new_idom = new_idom == nullptr ? p : Intersect(p, new_idom);
        }
        if (new_idom != nullptr && idom_[b] != new_idom) {
          idom_[b] = new_idom;
          changed = true;
        }
      }
    }
  }

  bool Reachable(const BasicBlock* b) const { return rpo_index_.count(b) != 0; }

  // True when `a` dominates `b`. Both must be reachable.
  bool Dominates(const BasicBlock* a, const BasicBlock* b) const {
    while (true) {
      if (b == a) {
        return true;
      }
      const BasicBlock* up = idom_.at(b);
      if (up == b) {
        return false;  // reached entry without meeting `a`
      }
      b = up;
    }
  }

 private:
  const BasicBlock* Intersect(const BasicBlock* a, const BasicBlock* b) const {
    while (a != b) {
      while (rpo_index_.at(a) > rpo_index_.at(b)) {
        a = idom_.at(a);
      }
      while (rpo_index_.at(b) > rpo_index_.at(a)) {
        b = idom_.at(b);
      }
    }
    return a;
  }

  std::vector<const BasicBlock*> rpo_;
  std::map<const BasicBlock*, size_t> rpo_index_;
  std::map<const BasicBlock*, const BasicBlock*> idom_;
};

}  // namespace

Status Verify(const Function& f) {
  auto fail = [&](const std::string& m) {
    return Status::Internal(StrCat("verify @", f.name(), ": ", m));
  };
  if (f.blocks().empty()) {
    return fail("no blocks");
  }

  std::set<const BasicBlock*> block_set;
  for (const auto& b : f.blocks()) {
    block_set.insert(b.get());
  }

  // Predecessor map for phi checking (one entry per predecessor block).
  std::map<const BasicBlock*, std::set<const BasicBlock*>> preds;
  for (const auto& b : f.blocks()) {
    for (BasicBlock* succ : b->Successors()) {
      if (block_set.count(succ) == 0) {
        return fail(StrCat("block ", b->name(), " targets foreign block"));
      }
      preds[succ].insert(b.get());
    }
  }

  // Every value-producing instruction in this function, plus its arguments:
  // the only values an operand may legally name (besides shared constants,
  // globals and callees).
  std::set<const Value*> defined;
  for (int i = 0; i < f.num_args(); ++i) {
    defined.insert(const_cast<Function&>(f).arg(i));
  }
  // Position of each instruction within its block, for same-block ordering.
  // Calls double as the justification points for kHeapLocal witnesses below.
  std::map<const Instruction*, int> position;
  std::vector<const Instruction*> calls;
  for (const auto& b : f.blocks()) {
    int index = 0;
    for (const auto& inst : b->insts()) {
      position[inst.get()] = index++;
      if (inst->HasResult()) {
        defined.insert(inst.get());
      }
      if (inst->op() == Op::kCall) {
        calls.push_back(inst.get());
      }
    }
  }

  Dominance dom(f);

  // Def-before-use: the definition must dominate the use. Phi operands are
  // validated against their incoming edge (the def must be live at the end
  // of the incoming block), not the phi's own position. Unreachable blocks
  // are exempt: passes may orphan blocks that DCE later removes.
  auto check_use = [&](const Instruction* user, const Value* v,
                       const BasicBlock* use_block,
                       const char* what) -> Status {
    if (!v->is_inst()) {
      return Status::Ok();
    }
    const auto* def = static_cast<const Instruction*>(v);
    const BasicBlock* def_block = def->parent();
    if (!dom.Reachable(use_block) || !dom.Reachable(def_block)) {
      return Status::Ok();
    }
    if (def_block == use_block) {
      if (user != nullptr && position[def] >= position[user]) {
        return fail(StrCat("use before def in ", use_block->name(), ": %",
                           def->id, " used at position ", position[user],
                           " but defined at position ", position[def]));
      }
      return Status::Ok();
    }
    if (!dom.Dominates(def_block, use_block)) {
      return fail(StrCat(what, " in ", use_block->name(),
                         " not dominated by its definition in ",
                         def_block->name()));
    }
    return Status::Ok();
  };

  for (const auto& b : f.blocks()) {
    if (b->insts().empty()) {
      return fail(StrCat("empty block ", b->name()));
    }
    bool seen_terminator = false;
    bool in_phi_prefix = true;
    for (const auto& inst : b->insts()) {
      if (seen_terminator) {
        return fail(StrCat("instruction after terminator in ", b->name()));
      }
      if (inst->op() == Op::kPhi) {
        if (!in_phi_prefix) {
          return fail(StrCat("phi not at head of ", b->name()));
        }
        if (inst->phi_blocks.size() !=
            static_cast<size_t>(inst->num_operands())) {
          return fail("phi incoming count mismatch");
        }
        // Exact multiset equality with the predecessor set: every
        // predecessor exactly once, nothing else. A size comparison alone
        // would accept a phi listing one predecessor twice while omitting
        // another.
        const auto& expected = preds[b.get()];
        std::vector<BasicBlock*> incoming = inst->phi_blocks;
        std::sort(incoming.begin(), incoming.end());
        for (size_t i = 0; i + 1 < incoming.size(); ++i) {
          if (incoming[i] == incoming[i + 1]) {
            return fail(StrCat("phi in ", b->name(),
                               " lists predecessor ", incoming[i]->name(),
                               " twice"));
          }
        }
        for (BasicBlock* in : incoming) {
          if (expected.count(in) == 0) {
            return fail(StrCat("phi in ", b->name(),
                               " has non-predecessor incoming ", in->name()));
          }
        }
        if (incoming.size() != expected.size()) {
          return fail(StrCat("phi in ", b->name(), " has ", incoming.size(),
                             " incoming, block has ", expected.size(),
                             " preds"));
        }
      } else {
        in_phi_prefix = false;
      }
      if (inst->IsTerminator()) {
        seen_terminator = true;
      }
      // Operand sanity: every operand must be a value-producing node defined
      // in this function (for instruction operands) and the use lists must
      // contain this instruction.
      for (int i = 0; i < inst->num_operands(); ++i) {
        const Value* v = inst->operand(i);
        if (v == nullptr) {
          return fail("null operand");
        }
        if (v->is_inst() &&
            !static_cast<const Instruction*>(v)->HasResult()) {
          return fail("operand has no result");
        }
        if ((v->is_inst() || v->kind() == Value::Kind::kArgument) &&
            defined.count(v) == 0) {
          return fail(StrCat("operand of ", OpName(inst->op()), " in ",
                             b->name(), " is not defined in this function"));
        }
        // Shared values (constants, globals, functions) do not track users;
        // only function-local values carry use lists to check.
        if (v->tracks_users()) {
          const auto& users = v->users();
          if (std::find(users.begin(), users.end(), inst.get()) ==
              users.end()) {
            return fail("use-list missing user");
          }
        }
        if (inst->op() == Op::kPhi) {
          const BasicBlock* incoming =
              inst->phi_blocks[static_cast<size_t>(i)];
          POLY_RETURN_IF_ERROR(
              check_use(nullptr, v, incoming, "phi incoming value"));
        } else {
          POLY_RETURN_IF_ERROR(check_use(inst.get(), v, b.get(), "operand"));
        }
      }
      int want = FixedOperandCount(inst->op());
      if (want >= 0 && inst->num_operands() != want) {
        return fail(StrCat(OpName(inst->op()), " in ", b->name(), " has ",
                           inst->num_operands(), " operands, expected ",
                           want));
      }
      if (inst->op() == Op::kBr) {
        size_t want_targets = inst->num_operands() == 0 ? 1 : 2;
        if (inst->num_operands() > 1) {
          return fail("br with more than one operand");
        }
        if (inst->targets.size() != want_targets) {
          return fail("br target count mismatch");
        }
      }
      if (inst->op() == Op::kSwitch &&
          inst->targets.size() != inst->case_values.size() + 1) {
        return fail("switch case/target mismatch");
      }
      if (inst->op() == Op::kCall && inst->callee != nullptr &&
          inst->num_operands() != inst->callee->num_args()) {
        return fail(StrCat("call to @", inst->callee->name(), " passes ",
                           inst->num_operands(), " args, callee takes ",
                           inst->callee->num_args()));
      }
      if (inst->op() == Op::kRet) {
        if (f.has_result() && inst->num_operands() != 1) {
          return fail("ret without value in value-returning function");
        }
        if (!f.has_result() && inst->num_operands() != 0) {
          return fail("ret with value in void function");
        }
      }
      // Memory-ordering metadata consistency. A fence-elision witness is a
      // claim about a guest memory access, so it may only annotate the two
      // plain access ops (atomics order themselves; everything else has no
      // fence to elide). The two witness kinds additionally have structural
      // preconditions that any honest producer satisfies by construction:
      //   - kStackLocal claims the address derives from the emulated stack
      //     pointer; a literal-constant address (a global) trivially cannot,
      //     so such a stamp is rejected before the TSO checker ever runs.
      //   - kHeapLocal claims the address derives from an allocation made by
      //     this function, which requires *some* call on every path to the
      //     access: a call that reaches the access same-block-earlier or
      //     from a dominating block. (The TSO checker re-derives the full
      //     provenance; this catches stamps that cannot possibly be valid.)
      if (inst->fence_witness != FenceWitness::kNone) {
        if (inst->op() != Op::kLoad && inst->op() != Op::kStore) {
          return fail(StrCat("fence witness on non-access op ",
                             OpName(inst->op()), " in ", b->name()));
        }
        if (inst->fence_witness == FenceWitness::kStackLocal &&
            inst->operand(0)->is_const()) {
          return fail(StrCat("stack-local witness on constant address in ",
                             b->name()));
        }
        if (inst->fence_witness == FenceWitness::kHeapLocal &&
            dom.Reachable(b.get())) {
          bool justified = false;
          for (const Instruction* c : calls) {
            const BasicBlock* cb = c->parent();
            if (cb == b.get()) {
              justified |= position[c] < position[inst.get()];
            } else if (dom.Reachable(cb)) {
              justified |= dom.Dominates(cb, b.get());
            }
          }
          if (!justified) {
            return fail(StrCat("heap-local witness in ", b->name(),
                               " with no dominating call (no allocation "
                               "site can reach it)"));
          }
        }
      }
    }
    if (!seen_terminator) {
      return fail(StrCat("block ", b->name(), " lacks terminator"));
    }
  }
  return Status::Ok();
}

Status Verify(const Module& m) {
  for (const auto& f : m.functions()) {
    POLY_RETURN_IF_ERROR(Verify(*f));
  }
  return Status::Ok();
}

}  // namespace polynima::ir
