#include "src/ir/printer.h"

#include <map>

#include "src/support/strings.h"

namespace polynima::ir {
namespace {

std::string ValueRef(const Value* v) {
  switch (v->kind()) {
    case Value::Kind::kConstant:
      return std::to_string(static_cast<const Constant*>(v)->value());
    case Value::Kind::kInstruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      return "%" + std::to_string(inst->id);
    }
    case Value::Kind::kArgument:
      return "%" + static_cast<const Argument*>(v)->name();
    case Value::Kind::kGlobal:
      return "@" + static_cast<const Global*>(v)->name();
    case Value::Kind::kFunction:
      return "@" + static_cast<const Function*>(v)->name();
    case Value::Kind::kBlock:
      return "label " + static_cast<const BasicBlock*>(v)->name();
  }
  return "?";
}

void PrintInst(std::string& out, const Instruction& inst) {
  out += "  ";
  if (inst.HasResult()) {
    out += StrCat("%", inst.id, " = ");
  }
  out += OpName(inst.op());
  if (inst.op() == Op::kICmp) {
    out += StrCat(" ", PredName(inst.pred));
  }
  if (inst.op() == Op::kSExt) {
    out += StrCat(" i", inst.width);
  }
  if (inst.op() == Op::kLoad || inst.op() == Op::kStore ||
      inst.op() == Op::kAtomicRmw || inst.op() == Op::kCmpXchg) {
    out += StrCat(" i", inst.size * 8);
  }
  if (inst.op() == Op::kFence) {
    out += inst.fence_order == FenceOrder::kAcquire   ? " acquire"
           : inst.fence_order == FenceOrder::kRelease ? " release"
                                                      : " seq_cst";
  }
  if (inst.op() == Op::kAtomicRmw) {
    static const char* const kNames[] = {"add", "sub", "and",
                                         "or",  "xor", "xchg"};
    out += StrCat(" ", kNames[static_cast<int>(inst.rmw_op)]);
  }
  if (inst.op() == Op::kGlobalLoad || inst.op() == Op::kGlobalStore) {
    out += StrCat(" @", inst.global->name());
  }
  if (inst.op() == Op::kCall) {
    out += inst.callee != nullptr ? StrCat(" @", inst.callee->name())
                                  : StrCat(" !", inst.intrinsic);
  }
  for (int i = 0; i < inst.num_operands(); ++i) {
    out += i == 0 ? " " : ", ";
    out += ValueRef(inst.operand(i));
  }
  if (inst.op() == Op::kPhi) {
    for (size_t i = 0; i < inst.phi_blocks.size(); ++i) {
      out += StrCat(" [", ValueRef(inst.operand(static_cast<int>(i))), ", ",
                    inst.phi_blocks[i]->name(), "]");
    }
  }
  if (inst.op() == Op::kBr) {
    for (const BasicBlock* t : inst.targets) {
      out += StrCat(" ", t->name());
    }
  }
  if (inst.op() == Op::kSwitch) {
    out += StrCat(" default ", inst.targets[0]->name());
    for (size_t i = 0; i < inst.case_values.size(); ++i) {
      out += StrCat(" [", inst.case_values[i], " -> ",
                    inst.targets[i + 1]->name(), "]");
    }
  }
  if (inst.fence_witness == FenceWitness::kStackLocal) {
    out += " !stack";
  }
  if (inst.fence_witness == FenceWitness::kHeapLocal) {
    out += " !heap";
  }
  out += "\n";
}

}  // namespace

std::string Print(const Function& f) {
  const_cast<Function&>(f).Renumber();
  std::string out = StrCat("func @", f.name(), "(");
  for (int i = 0; i < f.num_args(); ++i) {
    out += i == 0 ? "" : ", ";
    out += "%" + const_cast<Function&>(f).arg(i)->name();
  }
  out += StrCat(") ", f.has_result() ? "-> i64" : "-> void");
  if (f.is_external_entry) {
    out += " external_entry";
  }
  out += " {\n";
  for (const auto& block : f.blocks()) {
    out += block->name();
    if (block->guest_address != 0) {
      out += StrCat("  ; guest ", HexString(block->guest_address));
    }
    out += ":\n";
    for (const auto& inst : block->insts()) {
      PrintInst(out, *inst);
    }
  }
  out += "}\n";
  return out;
}

std::string Print(const Module& m) {
  std::string out;
  for (const auto& g : m.globals()) {
    out += StrCat("global @", g->name(), g->is_thread_local() ? " thread_local" : "",
                  " = ", g->initial(), "\n");
  }
  for (const auto& f : m.functions()) {
    out += "\n" + Print(*f);
  }
  return out;
}

}  // namespace polynima::ir
