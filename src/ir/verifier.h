// Structural IR verifier: every block ends in exactly one terminator, phis
// match predecessor sets, operands dominate uses (approximated), and use
// lists are consistent. Run after lifting and after every optimization pass
// in debug pipelines.
#ifndef POLYNIMA_IR_VERIFIER_H_
#define POLYNIMA_IR_VERIFIER_H_

#include "src/ir/ir.h"
#include "src/support/status.h"

namespace polynima::ir {

Status Verify(const Function& f);
Status Verify(const Module& m);

}  // namespace polynima::ir

#endif  // POLYNIMA_IR_VERIFIER_H_
