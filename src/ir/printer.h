// Textual IR dump (for tests, debugging and golden comparisons).
#ifndef POLYNIMA_IR_PRINTER_H_
#define POLYNIMA_IR_PRINTER_H_

#include <string>

#include "src/ir/ir.h"

namespace polynima::ir {

std::string Print(const Function& f);
std::string Print(const Module& m);

}  // namespace polynima::ir

#endif  // POLYNIMA_IR_PRINTER_H_
