// Cross-module function cloning.
//
// The additive-lifting cache (src/recomp) keeps the lifted+optimized IR of
// every function from the previous recompilation round; on the next round,
// functions whose CFG is unchanged are copied into the fresh module instead
// of being re-lifted and re-optimized. The copy preserves block order,
// instruction order and all per-instruction state, so printing the clone
// yields byte-identical output to printing the source.
#ifndef POLYNIMA_IR_CLONE_H_
#define POLYNIMA_IR_CLONE_H_

#include <functional>

#include "src/ir/ir.h"

namespace polynima::ir {

// Deep-copies `src`'s body into `dst`, which must be a declaration (no
// blocks) living in `dst_module`. Globals are resolved by name in
// `dst_module` (created with matching properties if absent), constants by
// value, and direct callees through `resolve_callee`, which maps a function
// referenced by `src` to its counterpart in `dst_module`.
void CloneFunctionBody(
    const Function& src, Function* dst, Module& dst_module,
    const std::function<Function*(const Function*)>& resolve_callee);

}  // namespace polynima::ir

#endif  // POLYNIMA_IR_CLONE_H_
