// Polynima's compiler IR (the LLVM-14 stand-in).
//
// Design notes (see DESIGN.md §1):
//  - One value type: i64. Narrower operations are expressed with explicit
//    masks / sign-extensions emitted by the lifter; loads zero-extend and
//    stores truncate. Comparison results are 0/1.
//  - Virtual CPU state (general-purpose registers, flags, emulated stack
//    pointer, XMM halves) lives in *globals*, accessed with dedicated
//    GlobalLoad/GlobalStore ops. Globals marked thread_local get one slot per
//    guest thread (paper §3.3.2). Guest memory is accessed with Load/Store
//    taking an i64 address.
//  - Fences are acquire/release markers with C++11 semantics; they constrain
//    the optimizer exactly as LLVM's would (see src/opt/barriers.h).
//  - SIMD instructions lift to `helper_*` intrinsic calls over the XMM-half
//    globals, mirroring QEMU-helper-based translation (and its cost).
#ifndef POLYNIMA_IR_IR_H_
#define POLYNIMA_IR_IR_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace polynima::ir {

class Instruction;
class BasicBlock;
class Function;
class Module;

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class Value {
 public:
  enum class Kind : uint8_t {
    kInstruction,
    kConstant,
    kArgument,
    kGlobal,
    kFunction,
    kBlock,
  };

  explicit Value(Kind kind) : kind_(kind) {}
  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  Kind kind() const { return kind_; }
  bool is_inst() const { return kind_ == Kind::kInstruction; }
  bool is_const() const { return kind_ == Kind::kConstant; }

  // Use lists are maintained only for function-local values (instructions
  // and arguments). Constants, globals and functions are shared by every
  // function in the module: tracking their users would make unrelated
  // functions contend on (and race over) one vector during parallel lifting
  // and optimization, and nothing consumes those lists — the passes and the
  // execution engine only ever walk the users of instruction results.
  bool tracks_users() const {
    return kind_ == Kind::kInstruction || kind_ == Kind::kArgument;
  }

  const std::vector<Instruction*>& users() const { return users_; }
  void AddUser(Instruction* user) {
    if (tracks_users()) {
      users_.push_back(user);
    }
  }
  void RemoveUser(Instruction* user);
  // Rewrites every use of this value to `replacement`. Only valid on values
  // that track users.
  void ReplaceAllUsesWith(Value* replacement);

 private:
  Kind kind_;
  std::vector<Instruction*> users_;
};

class Constant : public Value {
 public:
  explicit Constant(int64_t value)
      : Value(Kind::kConstant), value_(value) {}
  int64_t value() const { return value_; }

 private:
  int64_t value_;
};

class Argument : public Value {
 public:
  Argument(std::string name, int index)
      : Value(Kind::kArgument), name_(std::move(name)), index_(index) {}
  const std::string& name() const { return name_; }
  int index() const { return index_; }

 private:
  std::string name_;
  int index_;
};

// A host-side storage cell (virtual register, flag, emulated rsp, ...).
// thread_local globals have one slot per guest thread.
class Global : public Value {
 public:
  Global(std::string name, bool is_thread_local, int64_t initial, int slot)
      : Value(Kind::kGlobal),
        name_(std::move(name)),
        thread_local_(is_thread_local),
        initial_(initial),
        slot_(slot) {}

  const std::string& name() const { return name_; }
  bool is_thread_local() const { return thread_local_; }
  int64_t initial() const { return initial_; }
  int slot() const { return slot_; }

 private:
  std::string name_;
  bool thread_local_;
  int64_t initial_;
  int slot_;  // index into the execution engine's global arrays
};

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class Op : uint8_t {
  // Arithmetic / bitwise (2 operands).
  kAdd,
  kSub,
  kMul,
  kSDiv,
  kSRem,
  kUDiv,
  kURem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparison (pred field) -> 0/1.
  kICmp,
  // Select(cond, a, b).
  kSelect,
  // Sign-extend from `width` bits.
  kSExt,
  // Guest memory access (size field; loads zero-extend).
  kLoad,
  kStore,
  // Virtual-state access (global field).
  kGlobalLoad,
  kGlobalStore,
  // Control flow.
  kBr,      // operands: [cond]; targets: 1 or 2 blocks
  kSwitch,  // operand: value; targets: default + (case_values[i] -> blocks)
  kRet,     // operands: [] or [value]
  kUnreachable,
  // Calls: direct (callee function) or intrinsic (by name).
  kCall,
  kPhi,
  // Concurrency.
  kFence,      // fence_order field
  kAtomicRmw,  // rmw_op + size; operands: addr, operand -> old value
  kCmpXchg,    // size; operands: addr, expected, desired -> witnessed value
};

enum class Pred : uint8_t {
  kEq,
  kNe,
  kSlt,
  kSle,
  kSgt,
  kSge,
  kUlt,
  kUle,
  kUgt,
  kUge,
};

enum class FenceOrder : uint8_t { kAcquire, kRelease, kSeqCst };

enum class RmwOp : uint8_t { kAdd, kSub, kAnd, kOr, kXor, kXchg };

// Machine-checkable justification for a memory access lifted WITHOUT its
// x86-TSO ordering fence (§3.3.4). The TSO checker (src/check) re-derives
// each claim; an access whose witness fails re-verification is a soundness
// violation, not a warning.
enum class FenceWitness : uint8_t {
  kNone,        // no elision claimed: the access needs a fence on every path
  kStackLocal,  // lifter's escape analysis proved the address is thread-stack
  kHeapLocal,   // static concurrency analysis (src/analyze) proved the
                // address derives from a non-escaping same-thread allocation;
                // only valid under a sealed check::StaticCert
};

const char* OpName(Op op);
const char* PredName(Pred pred);

class Instruction : public Value {
 public:
  explicit Instruction(Op op) : Value(Kind::kInstruction), op_(op) {}
  ~Instruction() override;

  Op op() const { return op_; }
  BasicBlock* parent() const { return parent_; }
  void set_parent(BasicBlock* parent) { parent_ = parent; }

  int num_operands() const { return static_cast<int>(operands_.size()); }
  Value* operand(int i) const { return operands_[static_cast<size_t>(i)]; }
  void SetOperand(int i, Value* v);
  void AddOperand(Value* v);
  // Drops all operand uses (called before deletion).
  void DropOperands();

  // Whether the instruction produces a value.
  bool HasResult() const;
  bool IsTerminator() const {
    return op_ == Op::kBr || op_ == Op::kSwitch || op_ == Op::kRet ||
           op_ == Op::kUnreachable;
  }

  // --- per-op extra state ---
  Pred pred = Pred::kEq;             // kICmp
  int width = 64;                    // kSExt: source width in bits
  int size = 8;                      // kLoad/kStore/kAtomicRmw/kCmpXchg bytes
  Global* global = nullptr;          // kGlobalLoad/kGlobalStore
  FenceOrder fence_order = FenceOrder::kSeqCst;
  RmwOp rmw_op = RmwOp::kAdd;
  Function* callee = nullptr;        // kCall (direct)
  std::string intrinsic;             // kCall (engine intrinsic, when no callee)
  std::vector<BasicBlock*> targets;  // kBr/kSwitch successors
  std::vector<int64_t> case_values;  // kSwitch (parallel to targets[1..])
  std::vector<BasicBlock*> phi_blocks;  // kPhi incoming blocks
  // kLoad/kStore: why the lifter elided this access's TSO fence.
  FenceWitness fence_witness = FenceWitness::kNone;

  // Printing / interpretation id (assigned by Function::Renumber).
  int id = -1;

 private:
  Op op_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
};

class BasicBlock : public Value {
 public:
  explicit BasicBlock(std::string name)
      : Value(Kind::kBlock), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  Function* function() const { return function_; }
  void set_function(Function* f) { function_ = f; }

  using InstList = std::list<std::unique_ptr<Instruction>>;
  InstList& insts() { return insts_; }
  const InstList& insts() const { return insts_; }

  Instruction* Append(std::unique_ptr<Instruction> inst);
  // Inserts before `pos`; returns the raw pointer.
  Instruction* InsertBefore(InstList::iterator pos,
                            std::unique_ptr<Instruction> inst);
  // Unlinks and destroys the instruction at `pos`; returns next iterator.
  InstList::iterator Erase(InstList::iterator pos);

  Instruction* terminator() const {
    return insts_.empty() ? nullptr : insts_.back().get();
  }
  std::vector<BasicBlock*> Successors() const;

  // Original-binary address this block was lifted from (0 if synthetic).
  uint64_t guest_address = 0;

 private:
  std::string name_;
  Function* function_ = nullptr;
  InstList insts_;
};

class Function : public Value {
 public:
  Function(std::string name, int num_args, bool has_result)
      : Value(Kind::kFunction),
        name_(std::move(name)),
        has_result_(has_result) {
    for (int i = 0; i < num_args; ++i) {
      args_.push_back(std::make_unique<Argument>("arg" + std::to_string(i), i));
    }
  }
  // Break all def-use links before members are destroyed: instructions may
  // reference values in earlier-destroyed blocks (or earlier list entries),
  // and ~Instruction must not touch freed use lists.
  ~Function() override;

  const std::string& name() const { return name_; }
  bool has_result() const { return has_result_; }

  BasicBlock* AddBlock(std::string block_name);
  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  std::vector<std::unique_ptr<BasicBlock>>& blocks() { return blocks_; }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  Argument* arg(int i) { return args_[static_cast<size_t>(i)].get(); }
  int num_args() const { return static_cast<int>(args_.size()); }

  // Removes a block (must be unreferenced).
  void RemoveBlock(BasicBlock* block);

  // Assigns dense instruction ids (printing + interpretation). Returns the
  // total number of value-producing slots.
  int Renumber();

  // Guest address of the original function (0 if synthetic).
  uint64_t guest_entry = 0;
  // Marked external: may be entered from outside (callback / thread entry);
  // such functions must be preserved and are not inlined away (§3.3.3).
  bool is_external_entry = false;
  // The lifter detected an rbp-based frame: rbp holds a stack address for
  // the whole body, so the TSO checker may treat vr_rbp as a stack root.
  bool frame_pointer = false;

 private:
  std::string name_;
  bool has_result_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

class Module {
 public:
  Module() = default;
  // ~Function drops instruction operands, which unregisters uses on the
  // shared constants and globals; members destruct in reverse declaration
  // order, so destroy the functions explicitly while the pools are alive.
  ~Module() { functions_.clear(); }

  Function* AddFunction(std::string name, int num_args, bool has_result);
  Function* GetFunction(const std::string& name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }
  std::vector<std::unique_ptr<Function>>& functions() { return functions_; }
  void RemoveFunction(Function* f);

  Global* AddGlobal(const std::string& name, bool is_thread_local,
                    int64_t initial = 0);
  Global* GetGlobal(const std::string& name) const;
  const std::vector<std::unique_ptr<Global>>& globals() const {
    return globals_;
  }
  int num_global_slots() const { return next_slot_; }

  // Thread-safe: the constant pool is the only module state shared by
  // concurrent per-function lift/optimize workers.
  Constant* GetConstant(int64_t value);

 private:
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<Global>> globals_;
  std::map<std::string, Global*> globals_by_name_;
  std::mutex constants_mu_;
  std::map<int64_t, std::unique_ptr<Constant>> constants_;
  int next_slot_ = 0;
};

}  // namespace polynima::ir

#endif  // POLYNIMA_IR_IR_H_
