// The Polynima recompiler driver: orchestrates disassembly, optional ICFT
// tracing, lifting, optimization, and the additive-lifting loop (§3.2).
//
// The recompiled artifact keeps its CFG; when execution reports a
// control-flow miss, RunAdditive integrates the newly discovered target into
// the CFG (static recursive descent from the target), re-runs the
// lift+optimize pipeline, and re-executes — the "recompilation loop". With a
// project directory set, the CFG is persisted as JSON after every round (the
// paper's on-disk representation).
#ifndef POLYNIMA_RECOMP_RECOMPILER_H_
#define POLYNIMA_RECOMP_RECOMPILER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/cfg/cfg.h"
#include "src/check/differential.h"
#include "src/check/witness.h"
#include "src/exec/engine.h"
#include "src/lift/lifter.h"
#include "src/obs/report.h"
#include "src/opt/passes.h"
#include "src/support/status.h"
#include "src/trace/icft_tracer.h"

namespace polynima::recomp {

struct RecompileOptions {
  cfg::RecoverOptions recover;
  lift::LiftOptions lift;
  opt::PipelineOptions pipeline;
  bool optimize = true;
  // Run the ICFT tracer over these input sets before lifting (§3.2 Dynamic).
  bool use_icft_tracer = false;
  std::vector<std::vector<std::vector<uint8_t>>> trace_input_sets;
  // Remove all fences before optimizing (only after the §3.4 analysis has
  // proven the absence of implicit synchronization).
  bool remove_fences = false;
  int max_additive_rounds = 64;
  // Directory for on-disk artifacts (cfg.json); optional.
  std::optional<std::string> project_dir;
  // Worker threads for the lift and per-function optimization phases
  // (0 = one per hardware thread). Fanned out into lift.jobs/pipeline.jobs
  // by the driver; the printed IR is byte-identical for every value.
  int jobs = 1;
  // Across additive rounds, reuse the lifted+optimized IR of functions whose
  // CFG (including cross-function target resolution) is unchanged, re-lifting
  // only affected functions. Automatically disabled when inlining is enabled
  // (inlining is cross-function) or when optimization is off.
  bool incremental = true;
  // Run the static TSO-soundness checker (src/check) over the IR after every
  // rebuild: each guest access must be covered by a fence/atomic on every
  // path or carry a re-verifiable elision witness. With remove_fences set, a
  // sealed ElisionCert is required (minted automatically from the spinloop
  // analysis when absent); a failed check aborts the recompilation.
  bool check_tso = false;
  // Run the static concurrency analyzer (src/analyze) after every rebuild:
  // classify each guest access (stack-local / thread-local heap / shared),
  // detect potential races, stamp kHeapLocal witnesses on proven-private
  // heap accesses and elide their fences (fenceopt::ApplyStaticElision),
  // and mint the StaticCert the TSO checker needs to accept those
  // witnesses. Part of the additive-cache fingerprint (it mutates the IR).
  bool analyze = false;
  // Certificate justifying per-access kHeapLocal elision. Populated by
  // Rebuild() when `analyze` is set and none was supplied; handed to the
  // TSO checker alongside the program's external-name table.
  std::optional<check::StaticCert> static_cert;
  // Certificate justifying whole-module fence removal. Populated by
  // Recompile() when check_tso && remove_fences and none was supplied.
  std::optional<check::ElisionCert> elision_cert;
  // Sound indirect control-flow recovery (--cfg-sound): recover the CFG with
  // landing-pad entries, run the icf pass (src/analyze/icf.h) over a first
  // build, mint a sealed CfgCert, and rebuild with the cfmiss stubs of
  // proven sites replaced by covered dispatcher fallbacks (no tier-1/2
  // uncovered-edge guards). Replay digests and step counts are unchanged:
  // the fallback arm is statically infeasible at a proven site.
  bool cfg_sound = false;
  // Certificate consumed when cfg_sound is set. Populated by Recompile()
  // when absent; a supplied certificate is verified against the image first
  // and a forged/stale one is rejected (counted in stats.icf_certs_rejected)
  // and re-derived — the build falls back to dynamic recovery at every site
  // the fresh analysis cannot prove.
  std::optional<check::CfgCert> cfg_cert;
  // Observability sinks (all nullable; see src/obs). The driver fans the
  // session out to every phase: "cfg"/"trace"/"recomp"/"emit" spans here,
  // per-function "lift"/"opt" spans on worker lanes, "check"/"fenceopt"
  // spans in the soundness machinery, and the corresponding counters.
  // Deliberately absent from the additive-cache fingerprint — observability
  // must never change what a function lifts/optimizes to.
  obs::Session obs;
};

struct RecompileStats {
  // Wall-clock time per phase.
  uint64_t disassemble_ns = 0;
  uint64_t trace_ns = 0;
  uint64_t lift_ns = 0;
  uint64_t opt_ns = 0;
  // Process CPU time per parallel phase (sums all worker threads, so
  // cpu/wall approximates effective parallelism).
  uint64_t lift_cpu_ns = 0;
  uint64_t opt_cpu_ns = 0;
  size_t icft_count = 0;       // traced indirect-transfer targets (Table 4)
  int additive_rounds = 0;     // recompilation loops triggered (Figure 4)
  // Additive-cache effectiveness.
  size_t cache_hits = 0;    // function bodies cloned from the previous round
  size_t cache_misses = 0;  // function bodies lifted (first build included)
  std::vector<size_t> relifted_per_round;  // bodies lifted, one entry/rebuild
  // TSO checker counters (accumulated over every rebuild when check_tso).
  size_t tso_accesses_checked = 0;
  size_t tso_witnesses_consumed = 0;
  size_t tso_heap_witnesses_consumed = 0;
  size_t tso_violations = 0;
  // Static concurrency analyzer counters (accumulated when analyze).
  uint64_t analyze_ns = 0;
  size_t analyze_races = 0;        // race pairs in the LAST rebuild's report
  size_t analyze_fences_elided = 0;  // fences removed via kHeapLocal, total
  // Sound indirect-control-flow recovery (cfg_sound).
  int icf_landing_pads = 0;
  int icf_sites_proven = 0;
  int icf_sites_open = 0;
  size_t icf_certs_rejected = 0;  // supplied CfgCerts refused (forged/stale)
  uint64_t total_ns() const {
    return disassemble_ns + trace_ns + lift_ns + opt_ns;
  }
};

// The recompiled artifact: original image (stays mapped) + lifted program +
// the CFG it was built from.
struct RecompiledBinary {
  binary::Image image;
  cfg::ControlFlowGraph graph;
  lift::LiftedProgram program;

  // Executes the recompiled program.
  exec::ExecResult Run(const std::vector<std::vector<uint8_t>>& inputs,
                       exec::ExecOptions options = {}) const;
};

class Recompiler {
 public:
  Recompiler(binary::Image image, RecompileOptions options)
      : image_(std::move(image)), options_(std::move(options)) {}

  // One full pipeline pass: disassemble (+trace), lift, optimize.
  Expected<RecompiledBinary> Recompile();

  // Runs the recompiled binary; on a control-flow miss, integrates the
  // discovered target and recompiles (additive lifting), until the run
  // completes or the round limit is hit.
  Expected<exec::ExecResult> RunAdditive(
      RecompiledBinary& binary,
      const std::vector<std::vector<uint8_t>>& inputs,
      exec::ExecOptions exec_options = {});

  // Dynamic callback analysis (§3.3.3): runs the recompiled binary over the
  // input sets recording external entries, then produces a slimmed artifact
  // with only observed callbacks marked external (enabling inlining).
  Expected<RecompiledBinary> RecompileWithCallbackAnalysis(
      const std::vector<std::vector<std::vector<uint8_t>>>& input_sets);

  // Dynamic half of the TSO check: rebuilds a fully-fenced reference module
  // from `binary`'s CFG and runs it against the optimized module under
  // perturbed schedules (check::RunScheduleDifferential), diffing observable
  // results.
  Expected<check::DifferentialResult> RunTsoDifferential(
      const RecompiledBinary& binary,
      const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
      const check::DifferentialOptions& options = {});

  const RecompileStats& stats() const { return stats_; }
  const binary::Image& image() const { return image_; }
  RecompileOptions& options() { return options_; }
  // polynima-analyze/v1 document from the last analyzed Rebuild (null until
  // `analyze` has run); plugs straight into obs::RunInfo::analysis.
  const json::Value& analysis_json() const { return analysis_json_; }
  // polynima-icf/v1 document from the cfg_sound analysis (null until
  // Recompile has minted a certificate); attached to the analysis report as
  // its "icf" section.
  const json::Value& icf_json() const { return icf_json_; }

 private:
  // One cached function from the previous recompilation round. `holder`
  // keeps the module that owns `fn` alive after the round's RecompiledBinary
  // is superseded; after every Rebuild the cache re-points at the new module
  // so earlier modules can be freed.
  struct CacheEntry {
    uint64_t key = 0;  // CFG + options hash; mismatch forces a re-lift
    ir::Function* fn = nullptr;
    std::shared_ptr<ir::Module> holder;
  };

  Expected<RecompiledBinary> Rebuild(const cfg::ControlFlowGraph& graph);
  void PersistCfg(const cfg::ControlFlowGraph& graph);

  binary::Image image_;
  RecompileOptions options_;
  RecompileStats stats_;
  json::Value analysis_json_;
  json::Value icf_json_;
  std::map<uint64_t, CacheEntry> cache_;  // guest entry -> cached function
};

}  // namespace polynima::recomp

#endif  // POLYNIMA_RECOMP_RECOMPILER_H_
