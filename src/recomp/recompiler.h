// The Polynima recompiler driver: orchestrates disassembly, optional ICFT
// tracing, lifting, optimization, and the additive-lifting loop (§3.2).
//
// The recompiled artifact keeps its CFG; when execution reports a
// control-flow miss, RunAdditive integrates the newly discovered target into
// the CFG (static recursive descent from the target), re-runs the
// lift+optimize pipeline, and re-executes — the "recompilation loop". With a
// project directory set, the CFG is persisted as JSON after every round (the
// paper's on-disk representation).
#ifndef POLYNIMA_RECOMP_RECOMPILER_H_
#define POLYNIMA_RECOMP_RECOMPILER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/cfg/cfg.h"
#include "src/exec/engine.h"
#include "src/lift/lifter.h"
#include "src/opt/passes.h"
#include "src/support/status.h"
#include "src/trace/icft_tracer.h"

namespace polynima::recomp {

struct RecompileOptions {
  cfg::RecoverOptions recover;
  lift::LiftOptions lift;
  opt::PipelineOptions pipeline;
  bool optimize = true;
  // Run the ICFT tracer over these input sets before lifting (§3.2 Dynamic).
  bool use_icft_tracer = false;
  std::vector<std::vector<std::vector<uint8_t>>> trace_input_sets;
  // Remove all fences before optimizing (only after the §3.4 analysis has
  // proven the absence of implicit synchronization).
  bool remove_fences = false;
  int max_additive_rounds = 64;
  // Directory for on-disk artifacts (cfg.json); optional.
  std::optional<std::string> project_dir;
};

struct RecompileStats {
  uint64_t disassemble_ns = 0;
  uint64_t trace_ns = 0;
  uint64_t lift_ns = 0;
  uint64_t opt_ns = 0;
  size_t icft_count = 0;       // traced indirect-transfer targets (Table 4)
  int additive_rounds = 0;     // recompilation loops triggered (Figure 4)
  uint64_t total_ns() const {
    return disassemble_ns + trace_ns + lift_ns + opt_ns;
  }
};

// The recompiled artifact: original image (stays mapped) + lifted program +
// the CFG it was built from.
struct RecompiledBinary {
  binary::Image image;
  cfg::ControlFlowGraph graph;
  lift::LiftedProgram program;

  // Executes the recompiled program.
  exec::ExecResult Run(const std::vector<std::vector<uint8_t>>& inputs,
                       exec::ExecOptions options = {}) const;
};

class Recompiler {
 public:
  Recompiler(binary::Image image, RecompileOptions options)
      : image_(std::move(image)), options_(std::move(options)) {}

  // One full pipeline pass: disassemble (+trace), lift, optimize.
  Expected<RecompiledBinary> Recompile();

  // Runs the recompiled binary; on a control-flow miss, integrates the
  // discovered target and recompiles (additive lifting), until the run
  // completes or the round limit is hit.
  Expected<exec::ExecResult> RunAdditive(
      RecompiledBinary& binary,
      const std::vector<std::vector<uint8_t>>& inputs,
      exec::ExecOptions exec_options = {});

  // Dynamic callback analysis (§3.3.3): runs the recompiled binary over the
  // input sets recording external entries, then produces a slimmed artifact
  // with only observed callbacks marked external (enabling inlining).
  Expected<RecompiledBinary> RecompileWithCallbackAnalysis(
      const std::vector<std::vector<std::vector<uint8_t>>>& input_sets);

  const RecompileStats& stats() const { return stats_; }
  const binary::Image& image() const { return image_; }
  RecompileOptions& options() { return options_; }

 private:
  Expected<RecompiledBinary> Rebuild(const cfg::ControlFlowGraph& graph);
  void PersistCfg(const cfg::ControlFlowGraph& graph);

  binary::Image image_;
  RecompileOptions options_;
  RecompileStats stats_;
};

}  // namespace polynima::recomp

#endif  // POLYNIMA_RECOMP_RECOMPILER_H_
