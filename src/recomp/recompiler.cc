#include "src/recomp/recompiler.h"

#include <chrono>
#include <ctime>
#include <filesystem>
#include <set>

#include "src/analyze/analyze.h"
#include "src/analyze/icf.h"
#include "src/check/tso.h"
#include "src/fenceopt/spinloop.h"
#include "src/fenceopt/static_elide.h"
#include "src/ir/clone.h"
#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::recomp {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-wide CPU time: sums across all threads, so (cpu delta) /
// (wall delta) over a parallel phase approximates its effective parallelism.
uint64_t CpuNowNs() {
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// FNV-1a over the 8 bytes of `v`.
void HashMix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
}

// Everything outside the CFG that changes what a function lifts/optimizes
// to. `jobs` is deliberately absent: parallelism must not affect output.
uint64_t OptionsFingerprint(const RecompileOptions& options) {
  uint64_t h = 14695981039346656037ull;
  const lift::LiftOptions& lo = options.lift;
  HashMix(h, lo.insert_fences);
  HashMix(h, lo.elide_stack_local_fences);
  HashMix(h, static_cast<uint64_t>(lo.atomics));
  HashMix(h, lo.thread_local_state);
  HashMix(h, lo.first_class_simd);
  HashMix(h, lo.mark_all_external);
  for (const std::string& name : lo.observed_callbacks) {
    for (char c : name) {
      HashMix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    HashMix(h, 0x1dull);
  }
  HashMix(h, static_cast<uint64_t>(options.pipeline.iterations));
  HashMix(h, options.pipeline.inline_functions);
  HashMix(h, options.optimize);
  HashMix(h, options.remove_fences);
  HashMix(h, options.analyze);  // stamps witnesses + elides fences in the IR
  // A consumed CfgCert changes how proven indirect sites lift (the cfmiss
  // stub becomes a covered fallback), so cached bodies from a cert-less
  // round must not survive into a certified one or vice versa.
  HashMix(h, options.cfg_cert.has_value());
  if (options.cfg_cert.has_value()) {
    HashMix(h, options.cfg_cert->checksum);
  }
  // check_tso is deliberately absent: the checker observes the IR, it never
  // changes what a function lifts/optimizes to.
  return h;
}

// Hash of everything a single function's lifted+optimized IR depends on:
// its blocks (instruction byte ranges are immutable image content, so
// [start,end) identifies them), each block's terminator shape, and — the
// cross-function part — whether every direct/indirect control-flow target
// resolves to a known function, which decides guest-call vs. cfmiss
// lowering. A new function discovered at a previously-unknown target
// therefore changes the hash of exactly its callers.
uint64_t HashFunctionCfg(const cfg::ControlFlowGraph& graph,
                         const cfg::FunctionInfo& fn_info,
                         uint64_t options_fingerprint) {
  uint64_t h = options_fingerprint;
  HashMix(h, fn_info.entry);
  for (uint64_t start : fn_info.block_starts) {
    HashMix(h, start);
    auto it = graph.blocks.find(start);
    if (it == graph.blocks.end()) {
      continue;
    }
    const cfg::BlockInfo& b = it->second;
    HashMix(h, b.start);
    HashMix(h, b.end);
    HashMix(h, static_cast<uint64_t>(b.term));
    HashMix(h, b.term_address);
    HashMix(h, b.direct_target);
    HashMix(h, graph.functions.count(b.direct_target));
    HashMix(h, b.fallthrough);
    HashMix(h, b.external_slot);
    for (uint64_t target : b.indirect_targets) {
      HashMix(h, target);
      HashMix(h, graph.functions.count(target));
    }
    HashMix(h, 0x9e3779b97f4a7c15ull);  // block separator
  }
  return h;
}

}  // namespace

exec::ExecResult RecompiledBinary::Run(
    const std::vector<std::vector<uint8_t>>& inputs,
    exec::ExecOptions options) const {
  vm::ExternalLibrary library;
  exec::Engine engine(program, image, &library, options);
  engine.SetInputs(inputs);
  return engine.Run();
}

void Recompiler::PersistCfg(const cfg::ControlFlowGraph& graph) {
  if (!options_.project_dir.has_value()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(*options_.project_dir, ec);
  (void)graph.WriteTo(*options_.project_dir + "/cfg.json");
}

Expected<RecompiledBinary> Recompiler::Rebuild(
    const cfg::ControlFlowGraph& graph) {
  obs::Span rebuild_span(options_.obs.trace, "recomp", "rebuild");
  // The cache stores post-pipeline IR, so it is only valid when the
  // pipeline runs and contains no cross-function pass.
  const bool use_cache = options_.incremental && options_.optimize &&
                         !options_.pipeline.inline_functions;

  std::set<uint64_t> reuse;                 // entries cloned from the cache
  std::map<uint64_t, uint64_t> fn_keys;     // entry -> this round's hash
  if (use_cache) {
    uint64_t fingerprint = OptionsFingerprint(options_);
    for (const auto& [entry, fn_info] : graph.functions) {
      uint64_t key = HashFunctionCfg(graph, fn_info, fingerprint);
      fn_keys[entry] = key;
      auto it = cache_.find(entry);
      if (it != cache_.end() && it->second.key == key) {
        reuse.insert(entry);
      }
    }
  } else {
    cache_.clear();
  }

  uint64_t t0 = NowNs();
  uint64_t c0 = CpuNowNs();
  lift::LiftOptions lift_options = options_.lift;
  lift_options.jobs = options_.jobs;
  lift_options.obs = options_.obs;
  lift_options.skip_bodies = reuse.empty() ? nullptr : &reuse;
  // Consume the indirect-control-flow certificate only after re-verifying it
  // against this image: a forged or stale certificate must never silence the
  // cfmiss hooks (the sites simply stay on dynamic recovery).
  if (options_.cfg_cert.has_value() &&
      check::VerifyCfgCert(*options_.cfg_cert, image_)) {
    lift_options.cfg_cert = &*options_.cfg_cert;
  }
  options_.obs.Add(obs::Counter::kLiftFunctionsCached, reuse.size());
  POLY_ASSIGN_OR_RETURN(lift::LiftedProgram program,
                        lift::Lift(image_, graph, lift_options));
  if (options_.remove_fences) {
    opt::RemoveFences(*program.module);
  }

  // Splice cached bodies into the skipped declarations. Clones reproduce the
  // source byte-for-byte under the printer, so a cache hit cannot perturb
  // output. Callees are resolved by guest entry into the fresh module.
  for (uint64_t entry : reuse) {
    const CacheEntry& cached = cache_.at(entry);
    ir::CloneFunctionBody(
        *cached.fn, program.functions_by_entry.at(entry), *program.module,
        [&](const ir::Function* callee) -> ir::Function* {
          auto it = program.functions_by_entry.find(callee->guest_entry);
          return it == program.functions_by_entry.end() ? nullptr
                                                        : it->second;
        });
  }

  size_t lifted = graph.functions.size() - reuse.size();
  stats_.cache_hits += reuse.size();
  stats_.cache_misses += lifted;
  stats_.relifted_per_round.push_back(lifted);

  uint64_t t1 = NowNs();
  uint64_t c1 = CpuNowNs();
  stats_.lift_ns += t1 - t0;
  stats_.lift_cpu_ns += c1 - c0;

  if (options_.optimize) {
    if (use_cache) {
      // Only newly lifted functions need the pipeline; cached clones were
      // optimized in the round that produced them.
      std::vector<ir::Function*> fresh;
      fresh.reserve(lifted);
      for (const auto& [entry, fn] : program.functions_by_entry) {
        if (reuse.count(entry) == 0) {
          fresh.push_back(fn);
        }
      }
      opt::PipelineOptions pipeline_options = options_.pipeline;
      pipeline_options.jobs = options_.jobs;
      pipeline_options.obs = options_.obs;
      POLY_RETURN_IF_ERROR(opt::RunPipelineOnFunctions(
          *program.module, fresh, pipeline_options));
    } else {
      opt::PipelineOptions pipeline_options = options_.pipeline;
      pipeline_options.jobs = options_.jobs;
      pipeline_options.obs = options_.obs;
      POLY_RETURN_IF_ERROR(
          opt::RunPipeline(*program.module, pipeline_options));
    }
  }
  stats_.opt_ns += NowNs() - t1;
  stats_.opt_cpu_ns += CpuNowNs() - c1;

  if (use_cache) {
    // Re-key the whole cache onto this round's module so superseded modules
    // are released as soon as no RecompiledBinary references them.
    std::map<uint64_t, CacheEntry> next;
    for (const auto& [entry, fn] : program.functions_by_entry) {
      next[entry] = CacheEntry{fn_keys.at(entry), fn, program.module};
    }
    cache_ = std::move(next);
  }

  // Static concurrency analysis (src/analyze): classify every guest access,
  // report potential races, stamp kHeapLocal witnesses on proven
  // thread-private heap accesses, and elide their paired fences. Runs after
  // the pipeline (register promotion decides which accesses remain) and
  // before the TSO check, which re-derives every stamped witness. Cached
  // bodies arrive already stamped+elided from the round that produced them;
  // both the stamping and the elision are idempotent, and heap privacy is a
  // purely intra-function fact, so re-analysis reaches the same verdicts.
  if (options_.analyze) {
    uint64_t a0 = NowNs();
    analyze::AnalyzeOptions analyze_options;
    analyze_options.jobs = options_.jobs;
    analyze_options.obs = options_.obs;
    analyze::AnalysisResult analysis =
        analyze::AnalyzeProgram(program, analyze_options);
    if (options_.lift.insert_fences && !options_.remove_fences) {
      fenceopt::ApplyStaticElision(*program.module, analysis);
    }
    options_.static_cert = analyze::MakeStaticCert(analysis, image_);
    stats_.analyze_ns += NowNs() - a0;
    stats_.analyze_races = analysis.races.pairs.size();
    stats_.analyze_fences_elided += static_cast<size_t>(analysis.fences_elided);
    analysis_json_ = analysis.ToJson();
  }

  // Static TSO-soundness check (src/check): every guest access must carry a
  // fence/atomic on all paths or a re-verifiable elision witness. Runs after
  // the pipeline so it judges the IR that will actually execute. Only the
  // builtin-atomics lowering is checkable (the naive-lock and plain modes
  // are documented as unordered translations).
  if (options_.check_tso && options_.lift.insert_fences &&
      options_.lift.atomics == lift::LiftOptions::AtomicsMode::kBuiltin) {
    check::TsoCheckOptions check_options;
    check_options.binary_key = check::BinaryKey(image_);
    check_options.obs = options_.obs;
    if (options_.remove_fences) {
      if (!options_.elision_cert.has_value()) {
        return Status::FailedPrecondition(
            "check-tso: remove_fences without an elision certificate — run "
            "the spinloop analysis first (Recompile mints one automatically)");
      }
      check_options.cert = &*options_.elision_cert;
    }
    if (options_.static_cert.has_value()) {
      check_options.static_cert = &*options_.static_cert;
      check_options.externals = &program.externals;
    }
    check::TsoCheckReport report =
        check::CheckModule(*program.module, check_options);
    stats_.tso_accesses_checked += report.accesses_checked;
    stats_.tso_witnesses_consumed += report.witnesses_consumed;
    stats_.tso_heap_witnesses_consumed += report.heap_witnesses_consumed;
    stats_.tso_violations += report.violations.size();
    if (!report.ok()) {
      return Status::Internal(
          StrCat("TSO soundness check failed (", report.violations.size(),
                 " violation", report.violations.size() == 1 ? "" : "s",
                 "): ", report.violations.front().message));
    }
  }

  obs::Span emit_span(options_.obs.trace, "emit", "assemble-artifact");
  RecompiledBinary out;
  out.image = image_;
  out.graph = graph;
  out.program = std::move(program);
  PersistCfg(graph);
  emit_span.Arg("functions",
                static_cast<int64_t>(out.program.functions_by_entry.size()));
  return out;
}

Expected<RecompiledBinary> Recompiler::Recompile() {
  uint64_t t0 = NowNs();
  if (options_.cfg_sound) {
    // Sound mode explores from every endbr64 landing pad, so the recovered
    // candidate sets are exhaustive rather than heuristic.
    options_.recover.landing_pad_entries = true;
  }
  obs::Span cfg_span(options_.obs.trace, "cfg", "recover-static");
  POLY_ASSIGN_OR_RETURN(cfg::ControlFlowGraph graph,
                        cfg::RecoverStatic(image_, options_.recover));
  cfg_span.Arg("functions", static_cast<int64_t>(graph.functions.size()));
  cfg_span.Arg("blocks", static_cast<int64_t>(graph.blocks.size()));
  cfg_span.End();
  stats_.disassemble_ns += NowNs() - t0;

  if (options_.use_icft_tracer) {
    obs::Span trace_span(options_.obs.trace, "trace", "icft-trace");
    trace::TraceResult traced =
        trace::TraceAll(image_, options_.trace_input_sets);
    stats_.trace_ns += traced.host_ns;
    stats_.icft_count = traced.TotalTargets();
    POLY_ASSIGN_OR_RETURN(
        int added,
        trace::AugmentCfg(image_, graph, traced, options_.recover));
    trace_span.Arg("targets", static_cast<int64_t>(traced.TotalTargets()));
    trace_span.Arg("added", added);
  }

  // Fence removal under the TSO checker requires a certificate; mint one
  // from the spinloop analysis when the caller did not supply it. A program
  // with a potentially-spinning loop refuses removal outright — silently
  // recompiling without the optimization would misreport what was checked.
  if (options_.check_tso && options_.remove_fences &&
      !options_.elision_cert.has_value()) {
    POLY_ASSIGN_OR_RETURN(fenceopt::SpinloopAnalysis analysis,
                          fenceopt::DetectImplicitSynchronization(
                              image_, graph, options_.trace_input_sets,
                              options_.obs));
    if (!analysis.FenceRemovalSafe()) {
      return Status::FailedPrecondition(StrCat(
          "check-tso: fence removal is not justified — spinloop analysis "
          "found ",
          analysis.SpinningCount(), " potentially-spinning loop(s)"));
    }
    options_.elision_cert = fenceopt::MakeElisionCert(analysis, image_);
  }

  // Sound indirect control-flow recovery: verify (or derive) the CfgCert,
  // then rebuild with it. A supplied forged/stale certificate is rejected
  // here — the pass re-derives a fresh one, so every site the analysis
  // cannot prove falls back to dynamic recovery.
  if (options_.cfg_sound) {
    if (options_.cfg_cert.has_value() &&
        !check::VerifyCfgCert(*options_.cfg_cert, image_)) {
      options_.cfg_cert.reset();
      ++stats_.icf_certs_rejected;
    }
    if (!options_.cfg_cert.has_value()) {
      // First build keeps every cfmiss stub; the icf pass needs them to
      // locate the indirect sites and their target values.
      POLY_ASSIGN_OR_RETURN(RecompiledBinary probe, Rebuild(graph));
      obs::Span icf_span(options_.obs.trace, "analyze", "icf-certify");
      analyze::IcfOptions icf_options;
      icf_options.obs = options_.obs;
      analyze::IcfResult icf = analyze::AnalyzeIndirectControlFlow(
          probe.program, image_, graph, icf_options);
      stats_.icf_landing_pads = icf.landing_pads;
      stats_.icf_sites_proven = icf.sites_proven;
      stats_.icf_sites_open = icf.sites_open;
      icf_json_ = icf.ToJson();
      icf_span.Arg("proven", static_cast<int64_t>(icf.sites_proven));
      icf_span.Arg("open", static_cast<int64_t>(icf.sites_open));
      options_.cfg_cert = analyze::MakeCfgCert(icf, image_);
    } else {
      stats_.icf_landing_pads = options_.cfg_cert->landing_pads;
      stats_.icf_sites_proven = options_.cfg_cert->sites_proven;
      stats_.icf_sites_open = options_.cfg_cert->sites_open;
    }
  }
  return Rebuild(graph);
}

Expected<exec::ExecResult> Recompiler::RunAdditive(
    RecompiledBinary& binary,
    const std::vector<std::vector<uint8_t>>& inputs,
    exec::ExecOptions exec_options) {
  for (int round = 0; round <= options_.max_additive_rounds; ++round) {
    exec::ExecResult result = binary.Run(inputs, exec_options);
    if (result.ok || !result.miss.has_value()) {
      return result;
    }
    // Control-flow miss: update the on-disk CFG with the discovered target
    // and rerun the recompilation pipeline (§3.2 Additive). With
    // options_.incremental, Rebuild re-lifts only the functions whose CFG
    // hash changed — typically the miss site's function plus the newly
    // discovered one.
    ++stats_.additive_rounds;
    const exec::MissInfo& miss = *result.miss;
    cfg::ControlFlowGraph graph = binary.graph;
    POLY_RETURN_IF_ERROR(cfg::IntegrateDiscoveredTarget(
        image_, graph, miss.transfer_address, miss.target, options_.recover));
    POLY_ASSIGN_OR_RETURN(binary, Rebuild(graph));
  }
  return Status::Aborted(
      StrCat("additive lifting did not converge after ",
             options_.max_additive_rounds, " rounds"));
}

Expected<RecompiledBinary> Recompiler::RecompileWithCallbackAnalysis(
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets) {
  POLY_ASSIGN_OR_RETURN(RecompiledBinary conservative, Recompile());
  // Record external entries over all input sets (merged across runs).
  std::set<std::string> observed;
  for (const auto& inputs : input_sets) {
    exec::ExecOptions exec_options;
    exec_options.record_callbacks = true;
    POLY_ASSIGN_OR_RETURN(exec::ExecResult result,
                          RunAdditive(conservative, inputs, exec_options));
    observed.insert(result.observed_callbacks.begin(),
                    result.observed_callbacks.end());
  }
  // Re-lift with the observed set only; unobserved functions lose their
  // wrappers and become eligible for inlining. Inlining is cross-function,
  // so this Rebuild bypasses (and drops) the additive cache.
  RecompileOptions slim = options_;
  options_.lift.mark_all_external = false;
  options_.lift.observed_callbacks = observed;
  options_.pipeline.inline_functions = true;
  auto rebuilt = Rebuild(conservative.graph);
  options_ = slim;  // restore
  return rebuilt;
}

Expected<check::DifferentialResult> Recompiler::RunTsoDifferential(
    const RecompiledBinary& binary,
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
    const check::DifferentialOptions& options) {
  // Build the fully-fenced reference from the same CFG: no stack-local
  // elision, no fence removal. The additive cache is keyed on these options,
  // so stash it away rather than letting the reference build repopulate it.
  RecompileOptions saved_options = options_;
  std::map<uint64_t, CacheEntry> saved_cache = std::move(cache_);
  cache_.clear();
  options_.lift.elide_stack_local_fences = false;
  options_.remove_fences = false;
  options_.elision_cert.reset();
  options_.analyze = false;  // no static elision in the reference either
  options_.static_cert.reset();
  options_.check_tso = false;  // the reference is fenced by construction
  auto reference = Rebuild(binary.graph);
  options_ = std::move(saved_options);
  cache_ = std::move(saved_cache);
  POLY_RETURN_IF_ERROR(reference.status());
  return check::RunScheduleDifferential(reference->program, binary.program,
                                        image_, input_sets, options);
}

}  // namespace polynima::recomp
