#include "src/recomp/recompiler.h"

#include <chrono>
#include <filesystem>

#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::recomp {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

exec::ExecResult RecompiledBinary::Run(
    const std::vector<std::vector<uint8_t>>& inputs,
    exec::ExecOptions options) const {
  vm::ExternalLibrary library;
  exec::Engine engine(program, image, &library, options);
  engine.SetInputs(inputs);
  return engine.Run();
}

void Recompiler::PersistCfg(const cfg::ControlFlowGraph& graph) {
  if (!options_.project_dir.has_value()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(*options_.project_dir, ec);
  (void)graph.WriteTo(*options_.project_dir + "/cfg.json");
}

Expected<RecompiledBinary> Recompiler::Rebuild(
    const cfg::ControlFlowGraph& graph) {
  uint64_t t0 = NowNs();
  POLY_ASSIGN_OR_RETURN(lift::LiftedProgram program,
                        lift::Lift(image_, graph, options_.lift));
  if (options_.remove_fences) {
    opt::RemoveFences(*program.module);
  }
  uint64_t t1 = NowNs();
  stats_.lift_ns += t1 - t0;
  if (options_.optimize) {
    POLY_RETURN_IF_ERROR(
        opt::RunPipeline(*program.module, options_.pipeline));
  }
  stats_.opt_ns += NowNs() - t1;

  RecompiledBinary out;
  out.image = image_;
  out.graph = graph;
  out.program = std::move(program);
  PersistCfg(graph);
  return out;
}

Expected<RecompiledBinary> Recompiler::Recompile() {
  uint64_t t0 = NowNs();
  POLY_ASSIGN_OR_RETURN(cfg::ControlFlowGraph graph,
                        cfg::RecoverStatic(image_, options_.recover));
  stats_.disassemble_ns += NowNs() - t0;

  if (options_.use_icft_tracer) {
    trace::TraceResult traced =
        trace::TraceAll(image_, options_.trace_input_sets);
    stats_.trace_ns += traced.host_ns;
    stats_.icft_count = traced.TotalTargets();
    POLY_ASSIGN_OR_RETURN(
        int added,
        trace::AugmentCfg(image_, graph, traced, options_.recover));
    (void)added;
  }
  return Rebuild(graph);
}

Expected<exec::ExecResult> Recompiler::RunAdditive(
    RecompiledBinary& binary,
    const std::vector<std::vector<uint8_t>>& inputs,
    exec::ExecOptions exec_options) {
  for (int round = 0; round <= options_.max_additive_rounds; ++round) {
    exec::ExecResult result = binary.Run(inputs, exec_options);
    if (result.ok || !result.miss.has_value()) {
      return result;
    }
    // Control-flow miss: update the on-disk CFG with the discovered target
    // and rerun the recompilation pipeline (§3.2 Additive).
    ++stats_.additive_rounds;
    const exec::MissInfo& miss = *result.miss;
    cfg::ControlFlowGraph graph = binary.graph;
    POLY_RETURN_IF_ERROR(cfg::IntegrateDiscoveredTarget(
        image_, graph, miss.transfer_address, miss.target, options_.recover));
    POLY_ASSIGN_OR_RETURN(binary, Rebuild(graph));
  }
  return Status::Aborted(
      StrCat("additive lifting did not converge after ",
             options_.max_additive_rounds, " rounds"));
}

Expected<RecompiledBinary> Recompiler::RecompileWithCallbackAnalysis(
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets) {
  POLY_ASSIGN_OR_RETURN(RecompiledBinary conservative, Recompile());
  // Record external entries over all input sets (merged across runs).
  std::set<std::string> observed;
  for (const auto& inputs : input_sets) {
    exec::ExecOptions exec_options;
    exec_options.record_callbacks = true;
    POLY_ASSIGN_OR_RETURN(exec::ExecResult result,
                          RunAdditive(conservative, inputs, exec_options));
    observed.insert(result.observed_callbacks.begin(),
                    result.observed_callbacks.end());
  }
  // Re-lift with the observed set only; unobserved functions lose their
  // wrappers and become inlinable.
  RecompileOptions slim = options_;
  options_.lift.mark_all_external = false;
  options_.lift.observed_callbacks = observed;
  options_.pipeline.inline_functions = true;
  auto rebuilt = Rebuild(conservative.graph);
  options_ = slim;  // restore
  return rebuilt;
}

}  // namespace polynima::recomp
