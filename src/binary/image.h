// Binary image format: the recompiler's view of an input program.
//
// An Image is the moral equivalent of a stripped, non-relocatable ELF
// executable: byte segments mapped at fixed addresses plus an entry point.
// Optional symbols carry ground-truth function addresses; they exist for
// tests and debugging only — the recompiler itself never reads them (the
// paper operates on stripped legacy binaries).
#ifndef POLYNIMA_BINARY_IMAGE_H_
#define POLYNIMA_BINARY_IMAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace polynima::binary {

// Canonical address-space layout used by the toolchain. Everything lives
// below 2^31 so absolute disp32 addressing reaches all of it.
inline constexpr uint64_t kCodeBase = 0x400000;
inline constexpr uint64_t kRodataBase = 0x500000;
inline constexpr uint64_t kDataBase = 0x600000;
inline constexpr uint64_t kHeapBase = 0x10000000;
inline constexpr uint64_t kHeapLimit = 0x40000000;
inline constexpr uint64_t kStackRegionBase = 0x50000000;
inline constexpr uint64_t kStackRegionLimit = 0x60000000;
// External library functions occupy one-slot-per-function addresses here.
inline constexpr uint64_t kExternalBase = 0x70000000;
inline constexpr uint64_t kExternalLimit = 0x70010000;
// Returning to this sentinel terminates the thread (pushed by thread spawn)
// or the program (pushed below the entry point's frame).
inline constexpr uint64_t kThreadExitMagic = 0x7fee0000;
inline constexpr uint64_t kProgramExitMagic = 0x7fee1000;
// Returning here ends a synchronous guest callback (qsort comparators etc.).
inline constexpr uint64_t kCallbackReturnMagic = 0x7fee2000;

inline bool IsExternalAddress(uint64_t addr) {
  return addr >= kExternalBase && addr < kExternalLimit;
}

struct Segment {
  std::string name;  // ".text", ".data", ...
  uint64_t address = 0;
  bool executable = false;
  // Mapped non-writable without being code (.rodata). Executable segments
  // are always non-writable regardless of this flag.
  bool read_only = false;
  std::vector<uint8_t> bytes;

  bool Writable() const { return !executable && !read_only; }

  uint64_t end() const { return address + bytes.size(); }
  bool Contains(uint64_t addr) const { return addr >= address && addr < end(); }
};

struct Symbol {
  std::string name;
  uint64_t address = 0;
  // Size in bytes when known (0 otherwise).
  uint64_t size = 0;
};

class Image {
 public:
  std::string name;
  uint64_t entry_point = 0;
  std::vector<Segment> segments;
  std::vector<Symbol> symbols;  // ground truth; not consumed by the lifter
  // Names of external functions this image imports, in slot order: the
  // function `externals[i]` lives at address kExternalBase + 16 * i.
  std::vector<std::string> externals;

  const Segment* SegmentContaining(uint64_t addr) const;
  // Reads up to `n` bytes starting at `addr` from whichever segment contains
  // it; returns the span actually available (shorter at segment end).
  std::vector<uint8_t> ReadBytes(uint64_t addr, size_t n) const;
  bool IsCodeAddress(uint64_t addr) const;

  const Symbol* FindSymbol(const std::string& symbol_name) const;

  uint64_t ExternalAddress(const std::string& external_name) const;

  // On-disk serialization (a simple tagged binary format, magic "PLYB").
  Status WriteTo(const std::string& path) const;
  static Expected<Image> ReadFrom(const std::string& path);

  std::vector<uint8_t> Serialize() const;
  static Expected<Image> Deserialize(const std::vector<uint8_t>& data);
};

}  // namespace polynima::binary

#endif  // POLYNIMA_BINARY_IMAGE_H_
