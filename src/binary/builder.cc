#include "src/binary/builder.h"

#include "src/support/check.h"

namespace polynima::binary {

uint64_t ImageBuilder::Extern(const std::string& external_name) {
  for (size_t i = 0; i < externals_.size(); ++i) {
    if (externals_[i] == external_name) {
      return kExternalBase + 16 * i;
    }
  }
  externals_.push_back(external_name);
  return kExternalBase + 16 * (externals_.size() - 1);
}

void ImageBuilder::AddSymbol(const std::string& symbol_name, uint64_t address,
                             uint64_t size) {
  symbols_.push_back({symbol_name, address, size});
}

Image ImageBuilder::Build() {
  Image img;
  img.name = name_;
  img.entry_point = entry_;
  POLY_CHECK(entry_ != 0) << "entry point not set";

  Segment text;
  text.name = ".text";
  text.address = kCodeBase;
  text.executable = true;
  text.bytes = code_.Finalize();
  POLY_CHECK_LE(text.end(), kRodataBase) << "code overflows into rodata region";
  img.segments.push_back(std::move(text));

  Segment rodata;
  rodata.name = ".rodata";
  rodata.address = kRodataBase;
  rodata.executable = false;
  rodata.read_only = true;
  rodata.bytes = rodata_.Finalize();
  POLY_CHECK_LE(rodata.end(), kDataBase) << "rodata overflows into data region";
  if (!rodata.bytes.empty()) {
    img.segments.push_back(std::move(rodata));
  }

  Segment data;
  data.name = ".data";
  data.address = kDataBase;
  data.executable = false;
  data.bytes = data_.Finalize();
  if (!data.bytes.empty()) {
    img.segments.push_back(std::move(data));
  }

  img.symbols = std::move(symbols_);
  img.externals = std::move(externals_);
  return img;
}

}  // namespace polynima::binary
