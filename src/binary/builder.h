// Convenience builder assembling code + data into an Image with the canonical
// layout (code at kCodeBase, data at kDataBase, externals in declared order).
#ifndef POLYNIMA_BINARY_BUILDER_H_
#define POLYNIMA_BINARY_BUILDER_H_

#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/x86/assembler.h"

namespace polynima::binary {

class ImageBuilder {
 public:
  explicit ImageBuilder(std::string name)
      : name_(std::move(name)),
        code_(kCodeBase),
        rodata_(kRodataBase),
        data_(kDataBase) {}

  // Code assembler (instructions, jump tables).
  x86::Assembler& code() { return code_; }
  // Data assembler (globals, strings). Data is non-executable.
  x86::Assembler& data() { return data_; }
  // Read-only data assembler (const globals, function-pointer tables).
  // Mapped non-writable at runtime.
  x86::Assembler& rodata() { return rodata_; }

  // Declares an imported external; returns its fixed address.
  uint64_t Extern(const std::string& external_name);

  // Records a ground-truth symbol (tests/debugging only).
  void AddSymbol(const std::string& symbol_name, uint64_t address,
                 uint64_t size = 0);

  void SetEntry(uint64_t address) { entry_ = address; }

  Image Build();

 private:
  std::string name_;
  x86::Assembler code_;
  x86::Assembler rodata_;
  x86::Assembler data_;
  std::vector<std::string> externals_;
  std::vector<Symbol> symbols_;
  uint64_t entry_ = 0;
};

}  // namespace polynima::binary

#endif  // POLYNIMA_BINARY_BUILDER_H_
