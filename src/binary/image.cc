#include "src/binary/image.h"

#include <cstring>
#include <fstream>

#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::binary {

const Segment* Image::SegmentContaining(uint64_t addr) const {
  for (const Segment& seg : segments) {
    if (seg.Contains(addr)) {
      return &seg;
    }
  }
  return nullptr;
}

std::vector<uint8_t> Image::ReadBytes(uint64_t addr, size_t n) const {
  const Segment* seg = SegmentContaining(addr);
  if (seg == nullptr) {
    return {};
  }
  size_t offset = addr - seg->address;
  size_t avail = seg->bytes.size() - offset;
  size_t count = std::min(n, avail);
  return std::vector<uint8_t>(seg->bytes.begin() + static_cast<long>(offset),
                              seg->bytes.begin() + static_cast<long>(offset + count));
}

bool Image::IsCodeAddress(uint64_t addr) const {
  const Segment* seg = SegmentContaining(addr);
  return seg != nullptr && seg->executable;
}

const Symbol* Image::FindSymbol(const std::string& symbol_name) const {
  for (const Symbol& sym : symbols) {
    if (sym.name == symbol_name) {
      return &sym;
    }
  }
  return nullptr;
}

uint64_t Image::ExternalAddress(const std::string& external_name) const {
  for (size_t i = 0; i < externals.size(); ++i) {
    if (externals[i] == external_name) {
      return kExternalBase + 16 * i;
    }
  }
  POLY_UNREACHABLE(StrCat("unknown external: ", external_name));
}

namespace {

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}

  Expected<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) {
      return Status::OutOfRange("truncated image file");
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Expected<std::string> Str() {
    POLY_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("truncated image file");
    }
    std::string s(data_.begin() + static_cast<long>(pos_),
                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return s;
  }

  Expected<std::vector<uint8_t>> Bytes() {
    POLY_ASSIGN_OR_RETURN(uint64_t n, U64());
    if (pos_ + n > data_.size()) {
      return Status::OutOfRange("truncated image file");
    }
    std::vector<uint8_t> b(data_.begin() + static_cast<long>(pos_),
                           data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

constexpr uint64_t kMagic = 0x42594c50;  // "PLYB"

}  // namespace

std::vector<uint8_t> Image::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(out, kMagic);
  PutString(out, name);
  PutU64(out, entry_point);
  PutU64(out, segments.size());
  for (const Segment& seg : segments) {
    PutString(out, seg.name);
    PutU64(out, seg.address);
    // Flag word: 0 = writable data, 1 = executable, 2 = read-only data.
    // Older readers treat 2 as "not executable", which maps the segment
    // writable — degraded but loadable.
    PutU64(out, seg.executable ? 1 : (seg.read_only ? 2 : 0));
    PutU64(out, seg.bytes.size());
    out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
  }
  PutU64(out, symbols.size());
  for (const Symbol& sym : symbols) {
    PutString(out, sym.name);
    PutU64(out, sym.address);
    PutU64(out, sym.size);
  }
  PutU64(out, externals.size());
  for (const std::string& e : externals) {
    PutString(out, e);
  }
  return out;
}

Expected<Image> Image::Deserialize(const std::vector<uint8_t>& data) {
  Reader r(data);
  POLY_ASSIGN_OR_RETURN(uint64_t magic, r.U64());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a PLYB image");
  }
  Image img;
  POLY_ASSIGN_OR_RETURN(img.name, r.Str());
  POLY_ASSIGN_OR_RETURN(img.entry_point, r.U64());
  POLY_ASSIGN_OR_RETURN(uint64_t nseg, r.U64());
  for (uint64_t i = 0; i < nseg; ++i) {
    Segment seg;
    POLY_ASSIGN_OR_RETURN(seg.name, r.Str());
    POLY_ASSIGN_OR_RETURN(seg.address, r.U64());
    POLY_ASSIGN_OR_RETURN(uint64_t flags, r.U64());
    seg.executable = flags == 1;
    seg.read_only = flags == 2;
    POLY_ASSIGN_OR_RETURN(seg.bytes, r.Bytes());
    img.segments.push_back(std::move(seg));
  }
  POLY_ASSIGN_OR_RETURN(uint64_t nsym, r.U64());
  for (uint64_t i = 0; i < nsym; ++i) {
    Symbol sym;
    POLY_ASSIGN_OR_RETURN(sym.name, r.Str());
    POLY_ASSIGN_OR_RETURN(sym.address, r.U64());
    POLY_ASSIGN_OR_RETURN(sym.size, r.U64());
    img.symbols.push_back(std::move(sym));
  }
  POLY_ASSIGN_OR_RETURN(uint64_t next, r.U64());
  for (uint64_t i = 0; i < next; ++i) {
    POLY_ASSIGN_OR_RETURN(std::string e, r.Str());
    img.externals.push_back(std::move(e));
  }
  return img;
}

Status Image::WriteTo(const std::string& path) const {
  std::vector<uint8_t> data = Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<long>(data.size()));
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

Expected<Image> Image::ReadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  return Deserialize(data);
}

}  // namespace polynima::binary
