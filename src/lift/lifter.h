// The Polynima lifter: translates recovered machine code to IR.
//
// Conventions (consumed by src/exec):
//  - One IR function per recovered guest function, named fn_<hex>. Functions
//    take no arguments and return the next guest PC after their `ret`
//    ("return-PC convention"): direct calls compare the returned PC against
//    the expected return address and bubble unexpected values up to the
//    dispatcher, which re-dispatches or reports a control-flow miss.
//  - Virtual CPU state lives in globals: vr_<reg> (16 GPRs), fl_<flag>
//    (cf/pf/zf/sf/of), xmm<i>_lo / xmm<i>_hi. With
//    LiftOptions::thread_local_state (the Polynima behaviour, §3.3.2) these
//    are thread_local; without it they are shared — reproducing the
//    documented McSema/Rev.Ng failure on multithreaded binaries.
//  - vr_rsp points into a per-thread *emulated stack* allocated by the
//    execution engine inside the guest stack region.
//  - Indirect transfers become switches over known targets; the default arm
//    calls the `cfmiss` intrinsic (additive lifting hook, §3.2).
//  - External calls become `ext_call(slot)` intrinsics; the engine marshals
//    virtual registers to/from the shared external library.
//  - Fences: acquire after every non-stack-local guest load, release before
//    every non-stack-local guest store (Lasagne's strategy, §3.3.4).
//    Stack-locality = address derived from vr_rsp (or the frame pointer when
//    the function establishes one with `mov rbp, rsp`).
//
// Engine intrinsics emitted: ext_call, cfmiss, trap, parity, pause,
// helper_paddd, helper_psubd, helper_pmulld, helper_mulh, helper_sdiv128,
// helper_srem128, global_lock, global_unlock.
#ifndef POLYNIMA_LIFT_LIFTER_H_
#define POLYNIMA_LIFT_LIFTER_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/binary/image.h"
#include "src/cfg/cfg.h"
#include "src/check/witness.h"
#include "src/ir/ir.h"
#include "src/obs/report.h"
#include "src/support/status.h"

namespace polynima::lift {

struct LiftOptions {
  // Insert Lasagne-style acquire/release fences for guest memory accesses.
  bool insert_fences = true;
  // Elide fences for accesses derived from the emulated stack pointer.
  bool elide_stack_local_fences = true;

  enum class AtomicsMode {
    kBuiltin,          // map to IR atomics (Listing 2 — Polynima)
    kNaiveGlobalLock,  // decompose under one global spinlock (Listing 1)
    kPlain,            // non-atomic load/op/store (documented baseline bug)
  };
  AtomicsMode atomics = AtomicsMode::kBuiltin;

  // thread_local virtual state + per-thread emulated stacks (§3.3.2).
  // Disabled models the single-global-array emulated stack of prior work.
  bool thread_local_state = true;

  // First-class SIMD translation (the paper's §5.3 future work): lift packed
  // integer instructions to native SIMD IR intrinsics instead of
  // QEMU-helper-style scalar emulation calls, recovering near-native packed
  // throughput.
  bool first_class_simd = false;

  // Conservative callback handling (§3.3.3): every lifted function is a
  // potential external entry point and must be preserved. When false, only
  // `observed_callbacks` (from the dynamic callback analysis) and the image
  // entry stay external; the rest become eligible for inlining.
  bool mark_all_external = true;
  std::set<std::string> observed_callbacks;

  // Worker threads for the per-function lift phase (0 = one per hardware
  // thread). Function bodies are lifted concurrently; the emitted module is
  // byte-identical for every value because each function's IR depends only
  // on its own CFG, never on worker scheduling.
  int jobs = 1;

  // Sound indirect-control-flow certificate (--cfg-sound), already verified
  // against the image by the caller (check::VerifyCfgCert). At each proven
  // site whose certified targets are all emitted switch arms, the cfmiss
  // stub in the default block is replaced by a covered dispatcher-fallback
  // block (Ret target) — statically infeasible when the proof holds, so the
  // executed schedule is bit-identical, but the block is no longer
  // "uncovered" and tiers 1/2 drop their uncovered-edge deopt guard. The
  // switch arms themselves are untouched (translation costs stay equal).
  // Must outlive the Lift call.
  const check::CfgCert* cfg_cert = nullptr;

  // Function entries that are declared but whose bodies the caller provides
  // after Lift returns (the additive-lifting cache clones previously lifted
  // IR into them). Must outlive the Lift call.
  const std::set<uint64_t>* skip_bodies = nullptr;

  // Observability sinks (all nullable; see src/obs). With a trace sink, each
  // lifted function body becomes one "lift"-category span on its worker's
  // lane; with metrics, the lifter reports the lift.* counters and every
  // fence insert/elide decision under fenceopt.*.
  obs::Session obs;
};

struct LiftedProgram {
  // Shared so the additive-lifting cache (src/recomp) can keep functions from
  // a superseded round alive until nothing references them.
  std::shared_ptr<ir::Module> module;
  // Trampoline table: guest entry address -> lifted function.
  std::map<uint64_t, ir::Function*> functions_by_entry;
  // Guest entry point of the program.
  uint64_t entry = 0;
  // External slot -> name (copied from the image).
  std::vector<std::string> externals;
};

Expected<LiftedProgram> Lift(const binary::Image& image,
                             const cfg::ControlFlowGraph& graph,
                             const LiftOptions& options = {});

}  // namespace polynima::lift

#endif  // POLYNIMA_LIFT_LIFTER_H_
