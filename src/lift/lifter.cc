#include "src/lift/lifter.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/ir/builder.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/x86/decoder.h"
#include "src/x86/printer.h"

namespace polynima::lift {

using binary::Image;
using cfg::BlockInfo;
using cfg::ControlFlowGraph;
using cfg::FunctionInfo;
using cfg::TermKind;
using ir::BasicBlock;
using ir::FenceOrder;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::IRBuilder;
using ir::Pred;
using ir::RmwOp;
using ir::Value;
using x86::Cond;
using x86::Inst;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

namespace {

enum FlagIndex { kCf = 0, kPf = 1, kZf = 2, kSf = 3, kOf = 4 };

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Module-level state built serially before function bodies are lifted.
// During the parallel body phase this is read-only, with one exception: the
// module's constant pool, which synchronizes internally.
struct SharedState {
  const Image& image;
  const ControlFlowGraph& graph;
  const LiftOptions& options;
  ir::Module* module;

  Global* vr[x86::kNumGprs];
  Global* fl[x86::kNumFlags];
  Global* xmm_lo[x86::kNumXmms];
  Global* xmm_hi[x86::kNumXmms];

  std::map<uint64_t, Function*> functions_by_entry;
};

void CreateGlobals(SharedState& s) {
  bool tls = s.options.thread_local_state;
  for (int i = 0; i < x86::kNumGprs; ++i) {
    s.vr[i] = s.module->AddGlobal(
        "vr_" + x86::RegName(static_cast<Reg>(i), 8), tls);
  }
  static const char* const kFlagNames[] = {"cf", "pf", "zf", "sf", "of"};
  for (int i = 0; i < x86::kNumFlags; ++i) {
    s.fl[i] = s.module->AddGlobal(StrCat("fl_", kFlagNames[i]), tls);
  }
  for (int i = 0; i < x86::kNumXmms; ++i) {
    s.xmm_lo[i] = s.module->AddGlobal(StrCat("xmm", i, "_lo"), tls);
    s.xmm_hi[i] = s.module->AddGlobal(StrCat("xmm", i, "_hi"), tls);
  }
}

// Lifts one guest function's body. One instance per function; instances run
// concurrently on the thread pool, so everything mutable is per-function
// (synthetic-block counters included — block names must not depend on which
// functions were lifted before this one, or on worker scheduling).
class FunctionLifter {
 public:
  explicit FunctionLifter(SharedState& s) : s_(s), b_(s.module) {}

  Status Lift(const FunctionInfo& fn_info) {
    Status st = LiftFunction(fn_info);
    if (st.ok() && s_.options.obs.metrics != nullptr) {
      const obs::Session& obs = s_.options.obs;
      obs.Add(obs::Counter::kFenceoptFencesInserted, fences_considered_);
      obs.Add(obs::Counter::kFenceoptFencesElided, fences_elided_);
      obs.Add(obs::Counter::kFenceoptFencesRetained, fences_retained_);
      obs.Add(obs::Counter::kFenceoptWitnessStack, fences_elided_);
    }
    return st;
  }

 private:
  // ---- small value helpers ----

  Value* C(int64_t v) { return b_.Const(v); }

  Value* Mask(Value* v, int size) {
    if (size >= 8) {
      return v;
    }
    return b_.And(v, C(static_cast<int64_t>((uint64_t{1} << (size * 8)) - 1)));
  }

  Value* ReadReg(Reg r, int size) {
    return Mask(b_.GLoad(s_.vr[static_cast<int>(r)]), size);
  }

  void WriteReg(Reg r, int size, Value* v) {
    Global* g = s_.vr[static_cast<int>(r)];
    switch (size) {
      case 8:
        b_.GStore(g, v);
        return;
      case 4:
        b_.GStore(g, Mask(v, 4));  // 32-bit writes zero the upper half
        return;
      default: {
        // 1/2-byte writes merge into the existing value.
        int64_t keep = ~static_cast<int64_t>((uint64_t{1} << (size * 8)) - 1);
        Value* old = b_.GLoad(g);
        Value* merged = b_.Or(b_.And(old, C(keep)), Mask(v, size));
        b_.GStore(g, merged);
        return;
      }
    }
  }

  Value* EffAddr(const MemRef& mem, const Inst& inst) {
    if (mem.rip_relative) {
      return C(static_cast<int64_t>(inst.Next()) + mem.disp);
    }
    Value* addr = C(mem.disp);
    if (mem.base != Reg::kNone) {
      addr = b_.Add(addr, b_.GLoad(s_.vr[static_cast<int>(mem.base)]));
    }
    if (mem.index != Reg::kNone) {
      Value* idx = b_.GLoad(s_.vr[static_cast<int>(mem.index)]);
      if (mem.scale != 1) {
        int shift = mem.scale == 2 ? 1 : mem.scale == 4 ? 2 : 3;
        idx = b_.Shl(idx, C(shift));
      }
      addr = b_.Add(addr, idx);
    }
    return addr;
  }

  // Stack-locality (§3.3.4): an access is stack-local when its base register
  // currently holds a value derived from the emulated stack pointer.
  // Provenance is tracked per block: rsp (and the frame pointer) seed the
  // set; mov/lea/add-const/sub-const propagate it; balanced push/pop pairs
  // carry it through the emulated stack (which is thread-private, so this is
  // sound); any other write clears it.
  bool IsStackLocal(const MemRef& mem) const {
    return mem.base != Reg::kNone && stack_regs_.count(mem.base) != 0;
  }

  void ResetStackTracking() {
    stack_regs_.clear();
    stack_regs_.insert(Reg::kRsp);
    if (rbp_is_frame_) {
      stack_regs_.insert(Reg::kRbp);
    }
    push_taint_.clear();
  }

  void UpdateStackTracking(const Inst& inst) {
    auto tainted = [&](Reg r) { return stack_regs_.count(r) != 0; };
    auto set = [&](Reg r, bool v) {
      // The stack pointer (and an established frame pointer) stay derived.
      if (r == Reg::kRsp || (rbp_is_frame_ && r == Reg::kRbp)) {
        return;
      }
      if (v) {
        stack_regs_.insert(r);
      } else {
        stack_regs_.erase(r);
      }
    };
    const Operand& dst = inst.ops[0];
    switch (inst.mnemonic) {
      case Mnemonic::kMov:
        if (dst.is_reg() && inst.size == 8) {
          set(dst.reg, inst.ops[1].is_reg() && tainted(inst.ops[1].reg));
        } else if (dst.is_reg()) {
          set(dst.reg, false);
        }
        return;
      case Mnemonic::kLea:
        if (dst.is_reg()) {
          set(dst.reg, inst.ops[1].mem.base != Reg::kNone &&
                           tainted(inst.ops[1].mem.base) &&
                           inst.size == 8);
        }
        return;
      case Mnemonic::kAdd:
      case Mnemonic::kSub:
        if (dst.is_reg() && !inst.ops[1].is_imm()) {
          set(dst.reg, false);
        }
        return;  // add/sub reg, imm preserves derivation
      case Mnemonic::kPush:
        push_taint_.push_back(dst.is_reg() && tainted(dst.reg));
        return;
      case Mnemonic::kPop: {
        bool t = false;
        if (!push_taint_.empty()) {
          t = push_taint_.back();
          push_taint_.pop_back();
        }
        if (dst.is_reg()) {
          set(dst.reg, t);
        }
        return;
      }
      case Mnemonic::kCmp:
      case Mnemonic::kTest:
      case Mnemonic::kNop:
      case Mnemonic::kPause:
      case Mnemonic::kEndbr64:
        return;  // no register writes
      default:
        if (inst.num_ops > 0 && dst.is_reg()) {
          set(dst.reg, false);
        }
        // xadd/cmpxchg also write their second (register) operand.
        if ((inst.mnemonic == Mnemonic::kXadd ||
             inst.mnemonic == Mnemonic::kCmpxchg ||
             inst.mnemonic == Mnemonic::kXchg) &&
            inst.num_ops > 1 && inst.ops[1].is_reg()) {
          set(inst.ops[1].reg, false);
        }
        if (inst.mnemonic == Mnemonic::kIdiv ||
            inst.mnemonic == Mnemonic::kCqo) {
          set(Reg::kRax, false);
          set(Reg::kRdx, false);
        }
        return;
    }
  }

  // Fence-decision accounting (fenceopt.* metrics): every candidate site is
  // decided exactly one way, so considered == elided + retained by
  // construction. All elisions today carry a stack-local witness.
  void CountFenceRetained() {
    ++fences_considered_;
    ++fences_retained_;
  }
  void CountFenceElided() {
    ++fences_considered_;
    ++fences_elided_;
  }

  Value* LoadMem(Value* addr, int size, bool stack_local) {
    ir::Instruction* load = b_.Load(size, addr);
    if (s_.options.insert_fences &&
        !(stack_local && s_.options.elide_stack_local_fences)) {
      b_.Fence(FenceOrder::kAcquire);
      CountFenceRetained();
    } else if (s_.options.insert_fences && stack_local) {
      // Record WHY the acquire fence was elided so the TSO checker can
      // re-derive the claim from the IR alone.
      load->fence_witness = ir::FenceWitness::kStackLocal;
      CountFenceElided();
    }
    return load;
  }

  void StoreMem(Value* addr, int size, Value* v, bool stack_local) {
    if (s_.options.insert_fences &&
        !(stack_local && s_.options.elide_stack_local_fences)) {
      b_.Fence(FenceOrder::kRelease);
      CountFenceRetained();
    }
    ir::Instruction* store = b_.Store(size, addr, Mask(v, size));
    if (s_.options.insert_fences && stack_local &&
        s_.options.elide_stack_local_fences) {
      store->fence_witness = ir::FenceWitness::kStackLocal;
      CountFenceElided();
    }
  }

  Value* ReadOperand(const Inst& inst, int idx, int size) {
    const Operand& op = inst.ops[idx];
    switch (op.kind) {
      case Operand::Kind::kReg:
        return ReadReg(op.reg, size);
      case Operand::Kind::kImm:
        return Mask(C(op.imm), size);
      case Operand::Kind::kMem:
        return LoadMem(EffAddr(op.mem, inst), size, IsStackLocal(op.mem));
      default:
        POLY_UNREACHABLE("bad read operand");
    }
  }

  void WriteOperand(const Inst& inst, int idx, int size, Value* v) {
    const Operand& op = inst.ops[idx];
    if (op.is_reg()) {
      WriteReg(op.reg, size, v);
      return;
    }
    POLY_CHECK(op.is_mem());
    StoreMem(EffAddr(op.mem, inst), size, v, IsStackLocal(op.mem));
  }

  // ---- flags ----

  Value* SignBitOf(Value* v, int size) {
    return b_.And(b_.LShr(v, C(size * 8 - 1)), C(1));
  }

  void SetFlag(FlagIndex f, Value* v) { b_.GStore(s_.fl[f], v); }
  Value* GetFlag(FlagIndex f) { return b_.GLoad(s_.fl[f]); }

  void SetZSP(Value* res_masked, int size) {
    SetFlag(kZf, b_.ICmp(Pred::kEq, res_masked, C(0)));
    SetFlag(kSf, SignBitOf(res_masked, size));
    SetFlag(kPf, b_.CallIntrinsic("parity", {res_masked}));
  }

  // a, b, res must already be masked to `size`.
  void SetAddFlags(Value* a, Value* bb, Value* res, int size) {
    SetFlag(kCf, b_.ICmp(Pred::kUlt, res, a));
    Value* t = b_.And(b_.Xor(a, res), b_.Xor(bb, res));
    SetFlag(kOf, SignBitOf(t, size));
    SetZSP(res, size);
  }

  void SetSubFlags(Value* a, Value* bb, Value* res, int size) {
    SetFlag(kCf, b_.ICmp(Pred::kUlt, a, bb));
    Value* t = b_.And(b_.Xor(a, bb), b_.Xor(a, res));
    SetFlag(kOf, SignBitOf(t, size));
    SetZSP(res, size);
  }

  void SetLogicFlags(Value* res, int size) {
    SetFlag(kCf, C(0));
    SetFlag(kOf, C(0));
    SetZSP(res, size);
  }

  Value* Not1(Value* v) { return b_.Xor(v, C(1)); }

  Value* CondValue(Cond cond) {
    switch (cond) {
      case Cond::kO:
        return GetFlag(kOf);
      case Cond::kNo:
        return Not1(GetFlag(kOf));
      case Cond::kB:
        return GetFlag(kCf);
      case Cond::kAe:
        return Not1(GetFlag(kCf));
      case Cond::kE:
        return GetFlag(kZf);
      case Cond::kNe:
        return Not1(GetFlag(kZf));
      case Cond::kBe:
        return b_.Or(GetFlag(kCf), GetFlag(kZf));
      case Cond::kA:
        return Not1(b_.Or(GetFlag(kCf), GetFlag(kZf)));
      case Cond::kS:
        return GetFlag(kSf);
      case Cond::kNs:
        return Not1(GetFlag(kSf));
      case Cond::kP:
        return GetFlag(kPf);
      case Cond::kNp:
        return Not1(GetFlag(kPf));
      case Cond::kL:
        return b_.Xor(GetFlag(kSf), GetFlag(kOf));
      case Cond::kGe:
        return Not1(b_.Xor(GetFlag(kSf), GetFlag(kOf)));
      case Cond::kLe:
        return b_.Or(GetFlag(kZf), b_.Xor(GetFlag(kSf), GetFlag(kOf)));
      case Cond::kG:
        return Not1(b_.Or(GetFlag(kZf), b_.Xor(GetFlag(kSf), GetFlag(kOf))));
      case Cond::kNone:
        break;
    }
    POLY_UNREACHABLE("bad cond");
  }

  Value* SExtVal(Value* v, int size) {
    return size >= 8 ? v : b_.SExt(v, size * 8);
  }

  // ---- function lifting ----

  Status LiftFunction(const FunctionInfo& fn_info) {
    cur_fn_ = s_.functions_by_entry.at(fn_info.entry);
    blocks_.clear();

    // Detect a frame pointer: `mov rbp, rsp` within the first few
    // instructions of the entry block, before any other rbp write.
    rbp_is_frame_ = DetectFramePointer(fn_info.entry);
    cur_fn_->frame_pointer = rbp_is_frame_;

    // Create IR blocks (entry first).
    std::vector<uint64_t> starts(fn_info.block_starts.begin(),
                                 fn_info.block_starts.end());
    auto entry_it = std::find(starts.begin(), starts.end(), fn_info.entry);
    if (entry_it != starts.end()) {
      std::iter_swap(starts.begin(), entry_it);
    } else {
      starts.insert(starts.begin(), fn_info.entry);
    }
    for (uint64_t start : starts) {
      BasicBlock* block =
          cur_fn_->AddBlock(StrCat("bb_", HexString(start).substr(2)));
      block->guest_address = start;
      blocks_[start] = block;
    }

    for (uint64_t start : starts) {
      auto it = s_.graph.blocks.find(start);
      b_.SetInsertBlock(blocks_[start]);
      if (it == s_.graph.blocks.end()) {
        // Unknown block (CFG hole): runtime miss.
        EmitCfMiss(C(static_cast<int64_t>(start)), start);
        continue;
      }
      POLY_RETURN_IF_ERROR(LiftBlock(it->second));
    }
    return Status::Ok();
  }

  bool DetectFramePointer(uint64_t entry) {
    uint64_t addr = entry;
    for (int i = 0; i < 8; ++i) {
      std::vector<uint8_t> bytes = s_.image.ReadBytes(addr, 16);
      auto inst = x86::Decode(bytes, addr);
      if (!inst.ok()) {
        return false;
      }
      if (inst->mnemonic == Mnemonic::kMov && inst->ops[0].is_reg() &&
          inst->ops[0].reg == Reg::kRbp && inst->ops[1].is_reg() &&
          inst->ops[1].reg == Reg::kRsp) {
        return true;
      }
      // Any other write to rbp disqualifies it (push rbp is fine).
      if (inst->num_ops > 0 && inst->ops[0].is_reg() &&
          inst->ops[0].reg == Reg::kRbp &&
          inst->mnemonic != Mnemonic::kPush) {
        return false;
      }
      if (inst->IsTerminator() || inst->IsCall()) {
        return false;
      }
      addr = inst->Next();
    }
    return false;
  }

  void EmitCfMiss(Value* target, uint64_t transfer_address) {
    b_.CallIntrinsic("cfmiss",
                     {target, C(static_cast<int64_t>(transfer_address))});
    b_.Unreachable();
  }

  // True when a verified CfgCert proves the indirect site at
  // `binfo.term_address` complete AND every certified target is an emitted
  // switch arm here — lifted function for a call, indirect_targets member
  // for a jump. Only then may the default arm drop its cfmiss stub: any
  // certified target missing an arm would otherwise fall through to the
  // (now miss-free) default and lose its additive-lifting hook.
  bool CertProvesSite(const BlockInfo& binfo, bool is_call) const {
    const check::CfgCert* cert = s_.options.cfg_cert;
    if (cert == nullptr) {
      return false;
    }
    for (const check::CfgCert::Site& site : cert->sites) {
      if (site.transfer_address != binfo.term_address ||
          site.is_call != is_call) {
        continue;
      }
      for (uint64_t t : site.targets) {
        if (binfo.indirect_targets.count(t) == 0) {
          return false;
        }
        if (is_call &&
            s_.functions_by_entry.find(t) == s_.functions_by_entry.end()) {
          return false;
        }
      }
      return !site.targets.empty();
    }
    return false;
  }

  // Default arm of an indirect-transfer switch: a cfmiss stub (dynamic
  // additive-lifting hook), or — at a certificate-proven site — a covered
  // dispatcher fallback that re-dispatches `target` through the engine.
  // The fallback is statically infeasible when the proof holds, so replay
  // digests and step counts are unchanged; but the block contains no
  // cfmiss/unreachable, so the tier compilers translate it without an
  // uncovered-edge guard.
  void EmitIndirectDefault(const BlockInfo& binfo, bool is_call,
                           Value* target) {
    if (CertProvesSite(binfo, is_call)) {
      b_.Ret(target);
      return;
    }
    EmitCfMiss(target, binfo.term_address);
  }

  Status LiftBlock(const BlockInfo& binfo) {
    // Lift straight-line instructions; the terminator (if any) is handled
    // separately because its successor structure comes from the CFG.
    ResetStackTracking();
    uint64_t addr = binfo.start;
    const Inst* term_inst = nullptr;
    x86::Inst term_storage;
    while (addr < binfo.end) {
      std::vector<uint8_t> bytes = s_.image.ReadBytes(addr, 16);
      auto inst_or = x86::Decode(bytes, addr);
      if (!inst_or.ok()) {
        b_.CallIntrinsic("trap", {C(static_cast<int64_t>(addr))});
        b_.Unreachable();
        return Status::Ok();
      }
      const Inst& inst = *inst_or;
      bool is_term = addr == binfo.term_address &&
                     binfo.term != TermKind::kFallthrough;
      if (is_term) {
        term_storage = inst;
        term_inst = &term_storage;
        break;
      }
      POLY_RETURN_IF_ERROR(LiftInst(inst));
      UpdateStackTracking(inst);
      addr = inst.Next();
    }
    LiftTerminator(binfo, term_inst);
    return Status::Ok();
  }

  // Branch target inside the current function, or nullptr.
  BasicBlock* LocalBlock(uint64_t addr) {
    auto it = blocks_.find(addr);
    return it == blocks_.end() ? nullptr : it->second;
  }

  void BranchTo(uint64_t target) {
    if (BasicBlock* block = LocalBlock(target)) {
      b_.Br(block);
    } else {
      // Target outside this function: return to the dispatcher.
      b_.Ret(C(static_cast<int64_t>(target)));
    }
  }

  // Emits the push-return-address + call + return-PC check sequence for a
  // call to lifted function `callee` returning to `fallthrough`.
  void EmitGuestCall(Function* callee, uint64_t fallthrough) {
    // push return address onto the emulated stack
    Value* sp = b_.GLoad(s_.vr[static_cast<int>(Reg::kRsp)]);
    Value* new_sp = b_.Sub(sp, C(8));
    b_.GStore(s_.vr[static_cast<int>(Reg::kRsp)], new_sp);
    // Return-address slot: emulated-stack traffic, thread-private, never
    // fenced — witnessed so the TSO checker can re-verify the claim.
    b_.Store(8, new_sp, C(static_cast<int64_t>(fallthrough)))->fence_witness =
        ir::FenceWitness::kStackLocal;
    if (s_.options.insert_fences) {
      CountFenceElided();
    }

    Value* next = b_.Call(callee, {});
    Value* ok = b_.ICmp(Pred::kEq, next, C(static_cast<int64_t>(fallthrough)));
    BasicBlock* bubble = cur_fn_->AddBlock(
        StrCat("bubble_", HexString(fallthrough).substr(2), "_",
               bubble_counter_++));
    BasicBlock* cont = LocalBlock(fallthrough);
    if (cont == nullptr) {
      // Fallthrough block missing: bubble unconditionally.
      b_.Br(bubble);
    } else {
      b_.CondBr(ok, cont, bubble);
    }
    BasicBlock* saved = b_.block();
    b_.SetInsertBlock(bubble);
    b_.Ret(next);
    b_.SetInsertBlock(saved);
  }

  void LiftTerminator(const BlockInfo& binfo, const Inst* term) {
    switch (binfo.term) {
      case TermKind::kFallthrough:
        BranchTo(binfo.fallthrough);
        return;

      case TermKind::kJump:
        BranchTo(binfo.direct_target);
        return;

      case TermKind::kCondJump: {
        POLY_CHECK(term != nullptr);
        Value* cond = CondValue(term->cond);
        BasicBlock* t = LocalBlock(binfo.direct_target);
        BasicBlock* f = LocalBlock(binfo.fallthrough);
        if (t != nullptr && f != nullptr) {
          b_.CondBr(cond, t, f);
          return;
        }
        // One side is nonlocal: branch through stubs.
        BasicBlock* tstub = t;
        if (tstub == nullptr) {
          tstub = cur_fn_->AddBlock(StrCat("stub_", bubble_counter_++));
        }
        BasicBlock* fstub = f;
        if (fstub == nullptr) {
          fstub = cur_fn_->AddBlock(StrCat("stub_", bubble_counter_++));
        }
        b_.CondBr(cond, tstub, fstub);
        BasicBlock* saved = b_.block();
        if (t == nullptr) {
          b_.SetInsertBlock(tstub);
          b_.Ret(C(static_cast<int64_t>(binfo.direct_target)));
        }
        if (f == nullptr) {
          b_.SetInsertBlock(fstub);
          b_.Ret(C(static_cast<int64_t>(binfo.fallthrough)));
        }
        b_.SetInsertBlock(saved);
        return;
      }

      case TermKind::kCall: {
        auto it = s_.functions_by_entry.find(binfo.direct_target);
        if (it == s_.functions_by_entry.end()) {
          EmitCfMiss(C(static_cast<int64_t>(binfo.direct_target)),
                     binfo.term_address);
          return;
        }
        EmitGuestCall(it->second, binfo.fallthrough);
        return;
      }

      case TermKind::kExternalCall: {
        b_.CallIntrinsic("ext_call",
                         {C(static_cast<int64_t>(binfo.external_slot))});
        BranchTo(binfo.fallthrough);
        return;
      }

      case TermKind::kIndirectCall: {
        POLY_CHECK(term != nullptr);
        Value* target = ReadOperand(*term, 0, 8);
        // Push the return address (the hardware pushes after computing the
        // target operand).
        Value* sp = b_.GLoad(s_.vr[static_cast<int>(Reg::kRsp)]);
        Value* new_sp = b_.Sub(sp, C(8));
        b_.GStore(s_.vr[static_cast<int>(Reg::kRsp)], new_sp);
        b_.Store(8, new_sp, C(static_cast<int64_t>(binfo.fallthrough)))
            ->fence_witness = ir::FenceWitness::kStackLocal;
        if (s_.options.insert_fences) {
          CountFenceElided();
        }

        BasicBlock* miss_block =
            cur_fn_->AddBlock(StrCat("miss_", bubble_counter_++));
        Instruction* sw = b_.Switch(target, miss_block);
        BasicBlock* switch_block = b_.block();
        for (uint64_t t : binfo.indirect_targets) {
          auto fit = s_.functions_by_entry.find(t);
          if (fit == s_.functions_by_entry.end()) {
            continue;
          }
          BasicBlock* case_block = cur_fn_->AddBlock(
              StrCat("icall_", HexString(t).substr(2), "_", bubble_counter_++));
          IRBuilder::AddCase(sw, static_cast<int64_t>(t), case_block);
          b_.SetInsertBlock(case_block);
          // The push already happened; emit call + check only.
          Value* next = b_.Call(fit->second, {});
          Value* ok = b_.ICmp(Pred::kEq, next,
                              C(static_cast<int64_t>(binfo.fallthrough)));
          BasicBlock* bubble =
              cur_fn_->AddBlock(StrCat("bubble_", bubble_counter_++));
          BasicBlock* cont = LocalBlock(binfo.fallthrough);
          if (cont != nullptr) {
            b_.CondBr(ok, cont, bubble);
          } else {
            b_.Br(bubble);
          }
          b_.SetInsertBlock(bubble);
          b_.Ret(next);
        }
        b_.SetInsertBlock(miss_block);
        EmitIndirectDefault(binfo, /*is_call=*/true, target);
        b_.SetInsertBlock(switch_block);
        return;
      }

      case TermKind::kIndirectJump: {
        POLY_CHECK(term != nullptr);
        Value* target = ReadOperand(*term, 0, 8);
        BasicBlock* miss_block =
            cur_fn_->AddBlock(StrCat("miss_", bubble_counter_++));
        Instruction* sw = b_.Switch(target, miss_block);
        for (uint64_t t : binfo.indirect_targets) {
          BasicBlock* dest = LocalBlock(t);
          if (dest == nullptr) {
            // Tail transfer out of this function: return to dispatcher.
            dest = cur_fn_->AddBlock(
                StrCat("tail_", HexString(t).substr(2), "_", bubble_counter_++));
            BasicBlock* saved = b_.block();
            b_.SetInsertBlock(dest);
            b_.Ret(C(static_cast<int64_t>(t)));
            b_.SetInsertBlock(saved);
          }
          IRBuilder::AddCase(sw, static_cast<int64_t>(t), dest);
        }
        BasicBlock* saved = b_.block();
        b_.SetInsertBlock(miss_block);
        EmitIndirectDefault(binfo, /*is_call=*/false, target);
        b_.SetInsertBlock(saved);
        return;
      }

      case TermKind::kRet: {
        Value* sp = b_.GLoad(s_.vr[static_cast<int>(Reg::kRsp)]);
        ir::Instruction* ra = b_.Load(8, sp);
        ra->fence_witness = ir::FenceWitness::kStackLocal;
        if (s_.options.insert_fences) {
          CountFenceElided();
        }
        b_.GStore(s_.vr[static_cast<int>(Reg::kRsp)], b_.Add(sp, C(8)));
        b_.Ret(ra);
        return;
      }

      case TermKind::kTrap:
        b_.CallIntrinsic("trap", {C(static_cast<int64_t>(binfo.term_address))});
        b_.Unreachable();
        return;
    }
  }

  // ---- straight-line instruction translation ----

  Status LiftInst(const Inst& inst) {
    const int size = inst.size;
    switch (inst.mnemonic) {
      case Mnemonic::kNop:
      case Mnemonic::kEndbr64:  // landing-pad marker: architecturally a nop
        return Status::Ok();
      case Mnemonic::kPause:
        b_.CallIntrinsic("pause", {});
        return Status::Ok();

      case Mnemonic::kMov: {
        Value* v = ReadOperand(inst, 1, size);
        WriteOperand(inst, 0, size, v);
        return Status::Ok();
      }
      case Mnemonic::kMovzx: {
        Value* v = ReadOperand(inst, 1, inst.src_size);
        WriteOperand(inst, 0, size, v);
        return Status::Ok();
      }
      case Mnemonic::kMovsx: {
        Value* v = ReadOperand(inst, 1, inst.src_size);
        WriteOperand(inst, 0, size, SExtVal(v, inst.src_size));
        return Status::Ok();
      }
      case Mnemonic::kLea: {
        WriteOperand(inst, 0, size, EffAddr(inst.ops[1].mem, inst));
        return Status::Ok();
      }

      case Mnemonic::kAdd:
      case Mnemonic::kSub:
      case Mnemonic::kAnd:
      case Mnemonic::kOr:
      case Mnemonic::kXor: {
        if (inst.lock && inst.ops[0].is_mem()) {
          return LiftLockedRmw(inst);
        }
        Value* a = ReadOperand(inst, 0, size);
        Value* bb = ReadOperand(inst, 1, size);
        Value* res = nullptr;
        switch (inst.mnemonic) {
          case Mnemonic::kAdd:
            res = Mask(b_.Add(a, bb), size);
            SetAddFlags(a, bb, res, size);
            break;
          case Mnemonic::kSub:
            res = Mask(b_.Sub(a, bb), size);
            SetSubFlags(a, bb, res, size);
            break;
          case Mnemonic::kAnd:
            res = b_.And(a, bb);
            SetLogicFlags(res, size);
            break;
          case Mnemonic::kOr:
            res = b_.Or(a, bb);
            SetLogicFlags(res, size);
            break;
          default:
            res = b_.Xor(a, bb);
            SetLogicFlags(res, size);
            break;
        }
        WriteOperand(inst, 0, size, res);
        return Status::Ok();
      }

      case Mnemonic::kCmp: {
        Value* a = ReadOperand(inst, 0, size);
        Value* bb = ReadOperand(inst, 1, size);
        SetSubFlags(a, bb, Mask(b_.Sub(a, bb), size), size);
        return Status::Ok();
      }
      case Mnemonic::kTest: {
        Value* a = ReadOperand(inst, 0, size);
        Value* bb = ReadOperand(inst, 1, size);
        SetLogicFlags(b_.And(a, bb), size);
        return Status::Ok();
      }

      case Mnemonic::kInc:
      case Mnemonic::kDec: {
        if (inst.lock && inst.ops[0].is_mem()) {
          return LiftLockedRmw(inst);
        }
        Value* a = ReadOperand(inst, 0, size);
        Value* one = C(1);
        Value* saved_cf = GetFlag(kCf);
        Value* res;
        if (inst.mnemonic == Mnemonic::kInc) {
          res = Mask(b_.Add(a, one), size);
          SetAddFlags(a, one, res, size);
        } else {
          res = Mask(b_.Sub(a, one), size);
          SetSubFlags(a, one, res, size);
        }
        SetFlag(kCf, saved_cf);  // inc/dec preserve CF
        WriteOperand(inst, 0, size, res);
        return Status::Ok();
      }

      case Mnemonic::kNeg: {
        Value* a = ReadOperand(inst, 0, size);
        Value* res = Mask(b_.Sub(C(0), a), size);
        SetSubFlags(C(0), a, res, size);
        SetFlag(kCf, b_.ICmp(Pred::kNe, a, C(0)));
        WriteOperand(inst, 0, size, res);
        return Status::Ok();
      }
      case Mnemonic::kNot: {
        Value* a = ReadOperand(inst, 0, size);
        WriteOperand(inst, 0, size, Mask(b_.Xor(a, C(-1)), size));
        return Status::Ok();
      }

      case Mnemonic::kImul: {
        Value* a;
        Value* bb;
        if (inst.num_ops == 3) {
          a = ReadOperand(inst, 1, size);
          bb = ReadOperand(inst, 2, size);
        } else {
          a = ReadOperand(inst, 0, size);
          bb = ReadOperand(inst, 1, size);
        }
        Value* res;
        Value* ovf;
        if (size < 8) {
          Value* full = b_.Mul(SExtVal(a, size), SExtVal(bb, size));
          res = Mask(full, size);
          ovf = b_.ICmp(Pred::kNe, full, SExtVal(res, size));
        } else {
          res = b_.Mul(a, bb);
          Value* hi = b_.CallIntrinsic("helper_mulh", {a, bb});
          ovf = b_.ICmp(Pred::kNe, hi, b_.AShr(res, C(63)));
        }
        SetFlag(kCf, ovf);
        SetFlag(kOf, ovf);
        SetZSP(res, size);
        WriteOperand(inst, 0, size, res);
        return Status::Ok();
      }

      case Mnemonic::kIdiv: {
        Value* divisor = SExtVal(ReadOperand(inst, 0, size), size);
        if (size == 8) {
          Value* hi = ReadReg(Reg::kRdx, 8);
          Value* lo = ReadReg(Reg::kRax, 8);
          Value* q = b_.CallIntrinsic("helper_sdiv128", {hi, lo, divisor});
          Value* r = b_.CallIntrinsic("helper_srem128", {hi, lo, divisor});
          WriteReg(Reg::kRax, 8, q);
          WriteReg(Reg::kRdx, 8, r);
        } else {
          Value* hi = ReadReg(Reg::kRdx, 4);
          Value* lo = ReadReg(Reg::kRax, 4);
          Value* dividend = b_.Or(b_.Shl(hi, C(32)), lo);
          Value* q = b_.Binary(ir::Op::kSDiv, dividend, divisor);
          Value* r = b_.Binary(ir::Op::kSRem, dividend, divisor);
          WriteReg(Reg::kRax, 4, q);
          WriteReg(Reg::kRdx, 4, r);
        }
        return Status::Ok();
      }

      case Mnemonic::kCqo: {
        if (size == 8) {
          WriteReg(Reg::kRdx, 8, b_.AShr(ReadReg(Reg::kRax, 8), C(63)));
        } else {
          Value* sext = b_.AShr(SExtVal(ReadReg(Reg::kRax, 4), 4), C(31));
          WriteReg(Reg::kRdx, 4, sext);
        }
        return Status::Ok();
      }

      case Mnemonic::kShl:
      case Mnemonic::kShr:
      case Mnemonic::kSar: {
        Value* a = ReadOperand(inst, 0, size);
        Value* raw = ReadOperand(inst, 1, 1);
        Value* cnt = b_.And(raw, C(size == 8 ? 63 : 31));
        Value* is_zero = b_.ICmp(Pred::kEq, cnt, C(0));
        const int bits = size * 8;
        Value* res;
        Value* cf;
        if (inst.mnemonic == Mnemonic::kShl) {
          res = Mask(b_.Shl(a, cnt), size);
          cf = b_.And(b_.LShr(a, b_.Sub(C(bits), cnt)), C(1));
        } else if (inst.mnemonic == Mnemonic::kShr) {
          res = b_.LShr(a, cnt);
          cf = b_.And(b_.LShr(a, b_.Sub(cnt, C(1))), C(1));
        } else {
          Value* sa = SExtVal(a, size);
          res = Mask(b_.AShr(sa, cnt), size);
          cf = b_.And(b_.LShr(sa, b_.Sub(cnt, C(1))), C(1));
        }
        // count==0 leaves the destination and every flag unchanged.
        Value* final_res = b_.Select(is_zero, a, res);
        SetFlag(kCf, b_.Select(is_zero, GetFlag(kCf), cf));
        SetFlag(kZf, b_.Select(is_zero, GetFlag(kZf),
                               b_.ICmp(Pred::kEq, res, C(0))));
        SetFlag(kSf, b_.Select(is_zero, GetFlag(kSf), SignBitOf(res, size)));
        SetFlag(kPf, b_.Select(is_zero, GetFlag(kPf),
                               b_.CallIntrinsic("parity", {res})));
        SetFlag(kOf, b_.Select(is_zero, GetFlag(kOf), C(0)));
        WriteOperand(inst, 0, size, final_res);
        return Status::Ok();
      }

      case Mnemonic::kPush: {
        Value* v = ReadOperand(inst, 0, 8);
        Value* sp = b_.GLoad(s_.vr[static_cast<int>(Reg::kRsp)]);
        Value* new_sp = b_.Sub(sp, C(8));
        b_.GStore(s_.vr[static_cast<int>(Reg::kRsp)], new_sp);
        // Emulated-stack traffic: stack-local by construction.
        if (s_.options.insert_fences && !s_.options.elide_stack_local_fences) {
          b_.Fence(FenceOrder::kRelease);
          CountFenceRetained();
        }
        ir::Instruction* push_store = b_.Store(8, new_sp, v);
        if (s_.options.insert_fences && s_.options.elide_stack_local_fences) {
          push_store->fence_witness = ir::FenceWitness::kStackLocal;
          CountFenceElided();
        }
        return Status::Ok();
      }
      case Mnemonic::kPop: {
        Value* sp = b_.GLoad(s_.vr[static_cast<int>(Reg::kRsp)]);
        ir::Instruction* pop_load = b_.Load(8, sp);
        Value* v = pop_load;
        if (s_.options.insert_fences && !s_.options.elide_stack_local_fences) {
          b_.Fence(FenceOrder::kAcquire);
          CountFenceRetained();
        } else if (s_.options.insert_fences) {
          pop_load->fence_witness = ir::FenceWitness::kStackLocal;
          CountFenceElided();
        }
        b_.GStore(s_.vr[static_cast<int>(Reg::kRsp)], b_.Add(sp, C(8)));
        WriteOperand(inst, 0, 8, v);
        return Status::Ok();
      }

      case Mnemonic::kXchg: {
        if (inst.ops[0].is_mem()) {
          // Implicitly locked.
          return LiftXchgMem(inst);
        }
        Value* a = ReadOperand(inst, 0, size);
        Value* bb = ReadOperand(inst, 1, size);
        WriteOperand(inst, 0, size, bb);
        WriteOperand(inst, 1, size, a);
        return Status::Ok();
      }

      case Mnemonic::kXadd:
        return LiftXadd(inst);

      case Mnemonic::kCmpxchg:
        return LiftCmpxchg(inst);

      case Mnemonic::kSetcc: {
        WriteOperand(inst, 0, 1, CondValue(inst.cond));
        return Status::Ok();
      }

      case Mnemonic::kCmovcc: {
        Value* src = ReadOperand(inst, 1, size);
        Value* dst = ReadOperand(inst, 0, size);
        WriteOperand(inst, 0, size,
                     b_.Select(CondValue(inst.cond), src, dst));
        return Status::Ok();
      }

      case Mnemonic::kMovd: {
        if (inst.ops[0].is_xmm()) {
          Value* v = ReadOperand(inst, 1, size);
          b_.GStore(s_.xmm_lo[inst.ops[0].xmm], Mask(v, size));
          b_.GStore(s_.xmm_hi[inst.ops[0].xmm], C(0));
        } else {
          Value* v = b_.GLoad(s_.xmm_lo[inst.ops[1].xmm]);
          WriteOperand(inst, 0, size, Mask(v, size));
        }
        return Status::Ok();
      }

      case Mnemonic::kMovdqu: {
        if (inst.ops[0].is_xmm()) {
          const MemRef& mem = inst.ops[1].mem;
          Value* addr = EffAddr(mem, inst);
          bool sl = IsStackLocal(mem);
          b_.GStore(s_.xmm_lo[inst.ops[0].xmm], LoadMem(addr, 8, sl));
          b_.GStore(s_.xmm_hi[inst.ops[0].xmm],
                    LoadMem(b_.Add(addr, C(8)), 8, sl));
        } else {
          const MemRef& mem = inst.ops[0].mem;
          Value* addr = EffAddr(mem, inst);
          bool sl = IsStackLocal(mem);
          StoreMem(addr, 8, b_.GLoad(s_.xmm_lo[inst.ops[1].xmm]), sl);
          StoreMem(b_.Add(addr, C(8)), 8, b_.GLoad(s_.xmm_hi[inst.ops[1].xmm]),
                   sl);
        }
        return Status::Ok();
      }

      case Mnemonic::kPaddd:
      case Mnemonic::kPsubd:
      case Mnemonic::kPmulld:
      case Mnemonic::kPxor:
      case Mnemonic::kPaddq: {
        Value* src_lo;
        Value* src_hi;
        if (inst.ops[1].is_xmm()) {
          src_lo = b_.GLoad(s_.xmm_lo[inst.ops[1].xmm]);
          src_hi = b_.GLoad(s_.xmm_hi[inst.ops[1].xmm]);
        } else {
          const MemRef& mem = inst.ops[1].mem;
          Value* addr = EffAddr(mem, inst);
          bool sl = IsStackLocal(mem);
          src_lo = LoadMem(addr, 8, sl);
          src_hi = LoadMem(b_.Add(addr, C(8)), 8, sl);
        }
        Global* dlo = s_.xmm_lo[inst.ops[0].xmm];
        Global* dhi = s_.xmm_hi[inst.ops[0].xmm];
        Value* a_lo = b_.GLoad(dlo);
        Value* a_hi = b_.GLoad(dhi);
        switch (inst.mnemonic) {
          case Mnemonic::kPxor:
            b_.GStore(dlo, b_.Xor(a_lo, src_lo));
            b_.GStore(dhi, b_.Xor(a_hi, src_hi));
            break;
          case Mnemonic::kPaddq:
            b_.GStore(dlo, b_.Add(a_lo, src_lo));
            b_.GStore(dhi, b_.Add(a_hi, src_hi));
            break;
          default: {
            // Packed 32-bit lanes: QEMU-helper-style emulation calls by
            // default; native SIMD intrinsics with first-class translation
            // (§5.3).
            const char* base = inst.mnemonic == Mnemonic::kPaddd ? "paddd"
                               : inst.mnemonic == Mnemonic::kPsubd ? "psubd"
                                                                   : "pmulld";
            std::string name =
                (s_.options.first_class_simd ? "simd_" : "helper_") +
                std::string(base);
            b_.GStore(dlo, b_.CallIntrinsic(name, {a_lo, src_lo}));
            b_.GStore(dhi, b_.CallIntrinsic(name, {a_hi, src_hi}));
            break;
          }
        }
        return Status::Ok();
      }

      default:
        return Status::Unimplemented(
            StrCat("lift: unsupported instruction ", x86::FormatInst(inst),
                   " at ", HexString(inst.address)));
    }
  }

  // lock add/sub/and/or/xor/inc/dec with memory destination.
  Status LiftLockedRmw(const Inst& inst) {
    const int size = inst.size;
    Value* addr = EffAddr(inst.ops[0].mem, inst);
    Value* operand;
    RmwOp op;
    switch (inst.mnemonic) {
      case Mnemonic::kAdd:
        op = RmwOp::kAdd;
        operand = ReadOperand(inst, 1, size);
        break;
      case Mnemonic::kSub:
        op = RmwOp::kSub;
        operand = ReadOperand(inst, 1, size);
        break;
      case Mnemonic::kAnd:
        op = RmwOp::kAnd;
        operand = ReadOperand(inst, 1, size);
        break;
      case Mnemonic::kOr:
        op = RmwOp::kOr;
        operand = ReadOperand(inst, 1, size);
        break;
      case Mnemonic::kXor:
        op = RmwOp::kXor;
        operand = ReadOperand(inst, 1, size);
        break;
      case Mnemonic::kInc:
        op = RmwOp::kAdd;
        operand = C(1);
        break;
      case Mnemonic::kDec:
        op = RmwOp::kSub;
        operand = C(1);
        break;
      default:
        POLY_UNREACHABLE("bad locked rmw");
    }

    if (s_.options.atomics == LiftOptions::AtomicsMode::kBuiltin) {
      Value* old = b_.AtomicRmw(op, size, addr, operand);
      SetRmwFlags(inst.mnemonic, old, operand, size);
      return Status::Ok();
    }
    if (s_.options.atomics == LiftOptions::AtomicsMode::kNaiveGlobalLock) {
      b_.CallIntrinsic("global_lock", {});
      Value* old = b_.Load(size, addr);
      Value* res = ApplyRmw(inst.mnemonic, old, operand, size);
      b_.Store(size, addr, res);
      b_.CallIntrinsic("global_unlock", {});
      SetRmwFlags(inst.mnemonic, old, operand, size);
      return Status::Ok();
    }
    // kPlain: the documented unsound translation — a torn read-modify-write.
    Value* old = b_.Load(size, addr);
    Value* res = ApplyRmw(inst.mnemonic, old, operand, size);
    b_.Store(size, addr, res);
    SetRmwFlags(inst.mnemonic, old, operand, size);
    return Status::Ok();
  }

  Value* ApplyRmw(Mnemonic m, Value* old, Value* operand, int size) {
    switch (m) {
      case Mnemonic::kAdd:
      case Mnemonic::kInc:
        return Mask(b_.Add(old, operand), size);
      case Mnemonic::kSub:
      case Mnemonic::kDec:
        return Mask(b_.Sub(old, operand), size);
      case Mnemonic::kAnd:
        return b_.And(old, operand);
      case Mnemonic::kOr:
        return b_.Or(old, operand);
      case Mnemonic::kXor:
        return b_.Xor(old, operand);
      default:
        POLY_UNREACHABLE("bad rmw");
    }
  }

  void SetRmwFlags(Mnemonic m, Value* old, Value* operand, int size) {
    Value* res = ApplyRmw(m, old, operand, size);
    switch (m) {
      case Mnemonic::kAdd:
        SetAddFlags(old, operand, res, size);
        break;
      case Mnemonic::kSub:
        SetSubFlags(old, operand, res, size);
        break;
      case Mnemonic::kInc:
      case Mnemonic::kDec: {
        Value* saved_cf = GetFlag(kCf);
        if (m == Mnemonic::kInc) {
          SetAddFlags(old, operand, res, size);
        } else {
          SetSubFlags(old, operand, res, size);
        }
        SetFlag(kCf, saved_cf);
        break;
      }
      default:
        SetLogicFlags(res, size);
        break;
    }
  }

  Status LiftXchgMem(const Inst& inst) {
    const int size = inst.size;
    Value* addr = EffAddr(inst.ops[0].mem, inst);
    Value* v = ReadOperand(inst, 1, size);
    if (s_.options.atomics == LiftOptions::AtomicsMode::kPlain) {
      Value* old = b_.Load(size, addr);
      b_.Store(size, addr, v);
      WriteOperand(inst, 1, size, old);
      return Status::Ok();
    }
    if (s_.options.atomics == LiftOptions::AtomicsMode::kNaiveGlobalLock) {
      b_.CallIntrinsic("global_lock", {});
      Value* old = b_.Load(size, addr);
      b_.Store(size, addr, v);
      b_.CallIntrinsic("global_unlock", {});
      WriteOperand(inst, 1, size, old);
      return Status::Ok();
    }
    Value* old = b_.AtomicRmw(RmwOp::kXchg, size, addr, v);
    WriteOperand(inst, 1, size, old);
    return Status::Ok();
  }

  Status LiftXadd(const Inst& inst) {
    const int size = inst.size;
    Value* operand = ReadOperand(inst, 1, size);
    if (inst.ops[0].is_mem() &&
        s_.options.atomics != LiftOptions::AtomicsMode::kPlain) {
      Value* addr = EffAddr(inst.ops[0].mem, inst);
      Value* old;
      if (s_.options.atomics == LiftOptions::AtomicsMode::kNaiveGlobalLock) {
        b_.CallIntrinsic("global_lock", {});
        old = b_.Load(size, addr);
        b_.Store(size, addr, Mask(b_.Add(old, operand), size));
        b_.CallIntrinsic("global_unlock", {});
      } else {
        old = b_.AtomicRmw(RmwOp::kAdd, size, addr, operand);
      }
      Value* res = Mask(b_.Add(old, operand), size);
      SetAddFlags(old, operand, res, size);
      WriteOperand(inst, 1, size, old);
      return Status::Ok();
    }
    // Register form or the unsound plain mode.
    Value* a = ReadOperand(inst, 0, size);
    Value* res = Mask(b_.Add(a, operand), size);
    SetAddFlags(a, operand, res, size);
    WriteOperand(inst, 1, size, a);
    WriteOperand(inst, 0, size, res);
    return Status::Ok();
  }

  // Listing 1 (naive) vs Listing 2 (builtin) translations of cmpxchg.
  Status LiftCmpxchg(const Inst& inst) {
    const int size = inst.size;
    Value* acc = ReadReg(Reg::kRax, size);
    Value* desired = ReadOperand(inst, 1, size);

    if (inst.ops[0].is_mem() &&
        s_.options.atomics == LiftOptions::AtomicsMode::kBuiltin) {
      Value* addr = EffAddr(inst.ops[0].mem, inst);
      Value* witnessed = b_.CmpXchg(size, addr, acc, desired);
      Value* equal = b_.ICmp(Pred::kEq, witnessed, acc);
      SetSubFlags(acc, witnessed, Mask(b_.Sub(acc, witnessed), size), size);
      // rax is only written on failure.
      WriteReg(Reg::kRax, size, b_.Select(equal, acc, witnessed));
      return Status::Ok();
    }

    bool use_lock = inst.ops[0].is_mem() &&
                    s_.options.atomics == LiftOptions::AtomicsMode::kNaiveGlobalLock;
    if (use_lock) {
      b_.CallIntrinsic("global_lock", {});
    }
    Value* current = ReadOperand(inst, 0, size);
    Value* equal = b_.ICmp(Pred::kEq, current, acc);
    WriteOperand(inst, 0, size, b_.Select(equal, desired, current));
    if (use_lock) {
      b_.CallIntrinsic("global_unlock", {});
    }
    SetSubFlags(acc, current, Mask(b_.Sub(acc, current), size), size);
    WriteReg(Reg::kRax, size, b_.Select(equal, acc, current));
    return Status::Ok();
  }

  SharedState& s_;
  IRBuilder b_;

  Function* cur_fn_ = nullptr;
  std::map<uint64_t, BasicBlock*> blocks_;
  bool rbp_is_frame_ = false;
  int bubble_counter_ = 0;
  std::set<Reg> stack_regs_;
  std::vector<bool> push_taint_;
  // Fence-decision counts for this function, flushed to obs after the body
  // is lifted (see Lift()).
  uint64_t fences_considered_ = 0;
  uint64_t fences_elided_ = 0;
  uint64_t fences_retained_ = 0;
};

}  // namespace

Expected<LiftedProgram> Lift(const Image& image, const ControlFlowGraph& graph,
                             const LiftOptions& options) {
  auto module = std::make_shared<ir::Module>();
  SharedState s{image, graph, options, module.get()};
  CreateGlobals(s);
  // Declare every function up front (serially, in entry order) so calls
  // resolve and so declaration order — which fixes printed output — never
  // depends on scheduling.
  for (const auto& [entry, fn_info] : graph.functions) {
    Function* f = s.module->AddFunction(fn_info.name, 0, /*has_result=*/true);
    f->guest_entry = entry;
    s.functions_by_entry[entry] = f;
  }

  // Lift bodies concurrently, one function per work item. Functions whose
  // bodies the caller will supply (additive cache hits) stay declarations.
  std::vector<const FunctionInfo*> work;
  work.reserve(graph.functions.size());
  for (const auto& [entry, fn_info] : graph.functions) {
    if (options.skip_bodies != nullptr && options.skip_bodies->count(entry)) {
      continue;
    }
    work.push_back(&fn_info);
  }
  ThreadPool pool(options.jobs);
  const obs::Session& obs = options.obs;
  POLY_RETURN_IF_ERROR(pool.ParallelFor(work.size(), [&](size_t i) {
    const FunctionInfo& fn_info = *work[i];
    obs::Span span(obs.trace, "lift", fn_info.name);
    uint64_t t0 = obs.metrics != nullptr ? NowNs() : 0;
    FunctionLifter lifter(s);
    Status st = lifter.Lift(fn_info);
    if (st.ok() && obs.metrics != nullptr) {
      obs.Observe(obs::Histogram::kLiftFunctionNs, NowNs() - t0);
      obs.Add(obs::Counter::kLiftFunctionsLifted);
      uint64_t bytes = 0;
      for (uint64_t start : fn_info.block_starts) {
        auto it = graph.blocks.find(start);
        if (it != graph.blocks.end()) {
          bytes += it->second.end - it->second.start;
        }
      }
      obs.Add(obs::Counter::kLiftBytesDecoded, bytes);
      uint64_t instrs = 0;
      for (const auto& bb : s.functions_by_entry.at(fn_info.entry)->blocks()) {
        instrs += bb->insts().size();
      }
      obs.Add(obs::Counter::kLiftIrInstrs, instrs);
      span.Arg("ir_instrs", static_cast<int64_t>(instrs));
    }
    return st;
  }));

  // External-entry marking (§3.3.3).
  for (const auto& [entry, f] : s.functions_by_entry) {
    if (options.mark_all_external) {
      f->is_external_entry = true;
    } else {
      f->is_external_entry = entry == image.entry_point ||
                             options.observed_callbacks.count(f->name()) != 0;
    }
  }

  LiftedProgram program;
  program.module = std::move(module);
  program.functions_by_entry = std::move(s.functions_by_entry);
  program.entry = image.entry_point;
  program.externals = image.externals;
  return program;
}

}  // namespace polynima::lift
