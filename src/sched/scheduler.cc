#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/support/check.h"

namespace polynima::sched {

int DefaultPick(int current, const std::vector<int>& candidates) {
  POLY_CHECK(!candidates.empty());
  if (std::find(candidates.begin(), candidates.end(), current) !=
      candidates.end()) {
    return current;
  }
  return candidates.front();
}

// --- RecordingScheduler ---

RecordingScheduler::RecordingScheduler(Scheduler* inner, uint64_t seed)
    : inner_(inner) {
  schedule_.seed = seed;
}

int RecordingScheduler::Pick(const SchedPoint& point,
                             const std::vector<int>& candidates) {
  ++points_seen_;
  int def = DefaultPick(point.current, candidates);
  int pick = inner_ != nullptr ? inner_->Pick(point, candidates) : def;
  if (pick != def) {
    schedule_.decisions.push_back({point.index, pick});
  }
  if (pick != point.current &&
      std::find(candidates.begin(), candidates.end(), point.current) !=
          candidates.end()) {
    ++preemptions_;
  }
  return pick;
}

void RecordingScheduler::OnSpawn(int tid) {
  if (inner_ != nullptr) {
    inner_->OnSpawn(tid);
  }
}

void RecordingScheduler::OnYield(int tid) {
  if (inner_ != nullptr) {
    inner_->OnYield(tid);
  }
}

// --- ReplayScheduler ---

ReplayScheduler::ReplayScheduler(Schedule schedule)
    : schedule_(std::move(schedule)) {}

int ReplayScheduler::Pick(const SchedPoint& point,
                          const std::vector<int>& candidates) {
  while (pos_ < schedule_.decisions.size() &&
         schedule_.decisions[pos_].index < point.index) {
    // The engine never consulted at this index (e.g. a shrunk schedule made
    // an intermediate point disappear); the decision is moot.
    ++skipped_;
    ++pos_;
  }
  if (pos_ < schedule_.decisions.size() &&
      schedule_.decisions[pos_].index == point.index) {
    int wanted = schedule_.decisions[pos_].thread;
    ++pos_;
    if (std::find(candidates.begin(), candidates.end(), wanted) !=
        candidates.end()) {
      return wanted;
    }
    ++skipped_;
  }
  return DefaultPick(point.current, candidates);
}

// --- PctScheduler ---

PctScheduler::PctScheduler(uint64_t seed, PctOptions options)
    : rng_(seed), options_(options) {
  for (int i = 0; i + 1 < options_.depth; ++i) {
    change_points_.push_back(rng_.NextBelow(
        options_.expected_length == 0 ? 1 : options_.expected_length));
  }
  std::sort(change_points_.begin(), change_points_.end());
}

void PctScheduler::OnSpawn(int tid) {
  // Initial priorities live strictly above the demotion band.
  priority_[tid] = (uint64_t{1} << 32) + (rng_.Next() >> 1);
}

void PctScheduler::OnYield(int tid) { Demote(tid); }

void PctScheduler::Demote(int tid) {
  POLY_CHECK_GT(demote_next_, 0u);
  priority_[tid] = demote_next_--;
}

int PctScheduler::Pick(const SchedPoint& point,
                       const std::vector<int>& candidates) {
  auto prio = [&](int tid) {
    auto it = priority_.find(tid);
    if (it == priority_.end()) {
      OnSpawn(tid);
      it = priority_.find(tid);
    }
    return it->second;
  };
  auto winner = [&]() {
    int best = candidates.front();
    for (int c : candidates) {
      if (prio(c) > prio(best)) {
        best = c;
      }
    }
    return best;
  };
  int pick = winner();
  if (std::binary_search(change_points_.begin(), change_points_.end(),
                         point.index)) {
    // Change point: the thread that would run falls below everything else.
    Demote(pick);
    pick = winner();
  }
  return pick;
}

// --- HintedScheduler ---

HintedScheduler::HintedScheduler(Scheduler* inner, std::set<uint64_t> hints,
                                 uint64_t seed)
    : inner_(inner), hints_(std::move(hints)), rng_(seed) {}

int HintedScheduler::Pick(const SchedPoint& point,
                          const std::vector<int>& candidates) {
  if (point.guest_address != 0 && candidates.size() > 1 &&
      hints_.count(point.guest_address) != 0) {
    // Hinted block: yank the scheduler away from the thread sitting at the
    // suspected racing access so another thread can reach its half of the
    // race. Seeded rotation over the remaining candidates.
    std::vector<int> others;
    for (int c : candidates) {
      if (c != point.current) {
        others.push_back(c);
      }
    }
    if (!others.empty()) {
      ++hinted_preemptions_;
      return others[rng_.NextBelow(others.size())];
    }
  }
  return inner_ != nullptr ? inner_->Pick(point, candidates)
                           : DefaultPick(point.current, candidates);
}

void HintedScheduler::OnSpawn(int tid) {
  if (inner_ != nullptr) {
    inner_->OnSpawn(tid);
  }
}

void HintedScheduler::OnYield(int tid) {
  if (inner_ != nullptr) {
    inner_->OnYield(tid);
  }
}

// --- DfsScheduler ---

DfsScheduler::DfsScheduler(std::vector<Decision> prefix, int max_branch_points)
    : prefix_(std::move(prefix)), branch_points_left_(max_branch_points) {
  frontier_index_ = prefix_.empty() ? 0 : prefix_.back().index + 1;
}

int DfsScheduler::Pick(const SchedPoint& point,
                       const std::vector<int>& candidates) {
  int def = DefaultPick(point.current, candidates);
  if (pos_ < prefix_.size() && prefix_[pos_].index == point.index) {
    int wanted = prefix_[pos_].thread;
    ++pos_;
    if (std::find(candidates.begin(), candidates.end(), wanted) !=
        candidates.end()) {
      return wanted;
    }
    return def;  // prefix came from a real run; this is defensive only
  }
  if (point.index >= frontier_index_ && branch_points_left_ > 0 &&
      candidates.size() > 1) {
    bool current_runnable =
        std::find(candidates.begin(), candidates.end(), point.current) !=
        candidates.end();
    for (int c : candidates) {
      if (c == def) {
        continue;
      }
      branches_.push_back({{point.index, c}, current_runnable});
    }
    if (point.index != last_branch_index_) {
      last_branch_index_ = point.index;
      --branch_points_left_;
    }
  }
  return def;
}

}  // namespace polynima::sched
