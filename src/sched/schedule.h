// Serializable thread schedules for the deterministic execution engine.
//
// The controlled scheduler (scheduler.h) consults a Scheduler at every
// guest-visible preemption point; the engine is otherwise deterministic, so a
// run is fully described by (engine seed, decision log). The log is sparse:
// it stores only the picks that differ from the deterministic default
// (keep the current thread if runnable, else lowest thread id), so a fully
// default run serializes to an empty log and a shrunk counterexample stays
// human-readable. A Schedule round-trips through a one-line repro string
// (`polysched/v1 seed=.. d=..`) printed whenever exploration finds a failing
// interleaving, and through the `tests/schedules/*.sched` regression corpus.
#ifndef POLYNIMA_SCHED_SCHEDULE_H_
#define POLYNIMA_SCHED_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace polynima::sched {

// One non-default pick: at decision point `index` run thread `thread`.
struct Decision {
  uint64_t index = 0;
  int thread = 0;

  bool operator==(const Decision& other) const {
    return index == other.index && thread == other.thread;
  }
};

struct Schedule {
  // Engine seed the schedule was recorded under (cost jitter and external
  // library randomness consume it; replay must reuse it bit-identically).
  uint64_t seed = 1;
  // Sparse non-default picks, strictly increasing by index.
  std::vector<Decision> decisions;

  bool operator==(const Schedule& other) const {
    return seed == other.seed && decisions == other.decisions;
  }

  // One-line repro string: `polysched/v1 seed=<n> d=<idx>:<tid>,...` with
  // `d=-` for an empty (all-default) log.
  std::string Serialize() const;
  static Expected<Schedule> Parse(std::string_view text);
};

// A corpus entry (tests/schedules/*.sched): a schedule pinned to a named
// guest program/variant with the outcome it must reproduce.
//
//   # comment
//   polysched-corpus/v1
//   program: <corpus program name>
//   variant: fenced | nofence
//   expect: <outcome key, e.g. "exit=11">
//   schedule: polysched/v1 seed=7 d=4:1,9:0
struct CorpusEntry {
  std::string program;
  std::string variant;
  std::string expect;
  Schedule schedule;

  std::string Serialize() const;
  static Expected<CorpusEntry> Parse(std::string_view text);
};

}  // namespace polynima::sched

#endif  // POLYNIMA_SCHED_SCHEDULE_H_
