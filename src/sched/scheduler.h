// Controlled thread scheduling: every guest-visible preemption point in the
// execution engine (shared load/store, atomic, fence, external call,
// dispatcher boundary) becomes an explicit decision delegated to a Scheduler.
//
// The contract with the engine:
//   - The engine runs the current thread through invisible (thread-private)
//     operations without consulting the scheduler; consultations happen only
//     when the next operation is guest-visible and more than one thread is
//     runnable, or the current thread cannot continue.
//   - `point.index` is a dense per-run ordinal of consultations; given the
//     same seed and the same picks, the engine reproduces the same sequence
//     of (index, candidates) points bit-identically — which is what makes
//     the sparse Schedule log a complete replay artifact.
//   - `candidates` is sorted by thread id and non-empty; the pick must be
//     one of them.
//   - OnSpawn fires when a thread is created; OnYield fires when the engine
//     detects the current thread spinning without global progress (pause
//     intrinsic, busy lock retry, or a long streak of non-mutating visible
//     ops) — strategy schedulers should deprioritize the yielding thread or
//     livelock on guest spinloops.
#ifndef POLYNIMA_SCHED_SCHEDULER_H_
#define POLYNIMA_SCHED_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/sched/schedule.h"
#include "src/support/rng.h"

namespace polynima::sched {

// Why the engine is consulting the scheduler (diagnostics only; replay does
// not depend on it).
enum class PointKind : uint8_t {
  kDispatch,   // thread at a dispatcher boundary (entry/exit/callback)
  kLoad,       // shared guest load
  kStore,      // shared guest store
  kAtomic,     // atomic RMW / cmpxchg
  kFence,      // fence
  kExternal,   // external call / global lock intrinsics
};

struct SchedPoint {
  uint64_t index = 0;  // dense consultation ordinal within the run
  int current = 0;     // thread that ran the previous step
  PointKind kind = PointKind::kDispatch;
  // Guest address of the block the current thread is about to execute in
  // (0 when unknown/synthetic). Diagnostics and hint matching only — replay
  // never depends on it.
  uint64_t guest_address = 0;
};

// Deterministic baseline pick: keep the previously running thread when it is
// still a candidate, otherwise the lowest thread id. Recording stores only
// deviations from this; replay re-applies it at every unrecorded point.
int DefaultPick(int current, const std::vector<int>& candidates);

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual int Pick(const SchedPoint& point,
                   const std::vector<int>& candidates) = 0;
  virtual void OnSpawn(int tid) {}
  virtual void OnYield(int tid) {}
};

// Delegates to an inner strategy and records every non-default pick,
// producing a Schedule that replays the run bit-identically.
class RecordingScheduler : public Scheduler {
 public:
  // `seed` is the engine seed to stamp into the recorded schedule. `inner`
  // may be null, in which case every pick is the default (and the recorded
  // log stays empty).
  RecordingScheduler(Scheduler* inner, uint64_t seed);

  int Pick(const SchedPoint& point, const std::vector<int>& candidates) override;
  void OnSpawn(int tid) override;
  void OnYield(int tid) override;

  const Schedule& schedule() const { return schedule_; }

  // Total consultations observed — the run's length in decision points.
  // Drivers feed it back as PctOptions::expected_length so change points
  // land inside the run instead of far past its end.
  uint64_t points_seen() const { return points_seen_; }

  // Picks that switched away from a still-runnable current thread (the
  // sched.preemptions metric).
  uint64_t preemptions() const { return preemptions_; }

 private:
  Scheduler* inner_;
  Schedule schedule_;
  uint64_t points_seen_ = 0;
  uint64_t preemptions_ = 0;
};

// Replays a recorded Schedule: at a point whose index carries a decision for
// a still-runnable thread, takes it; everywhere else takes the default. A
// decision whose thread is not runnable is skipped (counted, not fatal), so
// shrunk sub-schedules remain executable.
class ReplayScheduler : public Scheduler {
 public:
  explicit ReplayScheduler(Schedule schedule);

  int Pick(const SchedPoint& point, const std::vector<int>& candidates) override;

  // Decisions whose thread was not runnable at their point (0 when replaying
  // an unmodified recording).
  int skipped_decisions() const { return skipped_; }

 private:
  Schedule schedule_;
  size_t pos_ = 0;
  int skipped_ = 0;
};

// Probabilistic concurrency testing (Burckhardt et al.): every thread gets a
// random priority on spawn; the highest-priority candidate always runs; at
// `depth - 1` random change points the running thread is demoted below every
// other priority ever assigned. Yielding threads are demoted the same way,
// which steers the search away from guest spinloops.
struct PctOptions {
  int depth = 3;               // number of priority bands (d in the paper)
  uint64_t expected_length = 4096;  // change points are sampled in [0, this)
};

class PctScheduler : public Scheduler {
 public:
  PctScheduler(uint64_t seed, PctOptions options);

  int Pick(const SchedPoint& point, const std::vector<int>& candidates) override;
  void OnSpawn(int tid) override;
  void OnYield(int tid) override;

 private:
  void Demote(int tid);

  Rng rng_;
  PctOptions options_;
  std::vector<uint64_t> change_points_;  // sorted, depth-1 entries
  std::map<int, uint64_t> priority_;
  // Demotions take decreasing values below every initial priority (initial
  // priorities are forced above 2^32).
  uint64_t demote_next_ = (uint64_t{1} << 32) - 1;
};

// Wraps an inner strategy with static race hints (analyze::RaceHintAddresses):
// when the engine consults at a block whose guest address is in the hint set
// and another thread is runnable, force a preemption away from the current
// thread instead of delegating. The rotation through the other candidates is
// seeded, so different seeds interleave the racing accesses differently.
// Points off the hint set go to the inner strategy (or the default pick when
// inner is null) — the hints sharpen the search, they do not replace it.
class HintedScheduler : public Scheduler {
 public:
  HintedScheduler(Scheduler* inner, std::set<uint64_t> hints, uint64_t seed);

  int Pick(const SchedPoint& point, const std::vector<int>& candidates) override;
  void OnSpawn(int tid) override;
  void OnYield(int tid) override;

  // Preemptions forced because the point's guest address was hinted.
  uint64_t hinted_preemptions() const { return hinted_preemptions_; }

 private:
  Scheduler* inner_;
  std::set<uint64_t> hints_;
  Rng rng_;
  uint64_t hinted_preemptions_ = 0;
};

// Depth-first exploration support: follows a forced prefix of decisions and
// default picks afterwards, while recording which alternative picks were
// runnable at each post-prefix point. The explore driver extends prefixes
// with those branches, bounding the number of preemptive deviations.
class DfsScheduler : public Scheduler {
 public:
  struct Branch {
    Decision decision;
    // True when the deviation preempts a still-runnable current thread (the
    // quantity the preemption bound counts); false when the current thread
    // was blocked/finished anyway and the pick is a free choice.
    bool preemption = false;
  };

  // Records alternatives at no more than `max_branch_points` post-prefix
  // points to keep the frontier bounded.
  explicit DfsScheduler(std::vector<Decision> prefix,
                        int max_branch_points = 64);

  int Pick(const SchedPoint& point, const std::vector<int>& candidates) override;

  const std::vector<Branch>& branches() const { return branches_; }

 private:
  std::vector<Decision> prefix_;
  size_t pos_ = 0;
  uint64_t frontier_index_ = 0;  // branches recorded strictly after this
  int branch_points_left_;
  uint64_t last_branch_index_ = ~uint64_t{0};
  std::vector<Branch> branches_;
};

}  // namespace polynima::sched

#endif  // POLYNIMA_SCHED_SCHEDULER_H_
