#include "src/sched/schedule.h"

#include <charconv>
#include <limits>

#include "src/support/strings.h"

namespace polynima::sched {

namespace {

constexpr std::string_view kScheduleTag = "polysched/v1";
constexpr std::string_view kCorpusTag = "polysched-corpus/v1";

Expected<uint64_t> ParseU64(std::string_view text) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(StrCat("bad number: '", text, "'"));
  }
  return value;
}

}  // namespace

std::string Schedule::Serialize() const {
  std::string out = StrCat(kScheduleTag, " seed=", seed, " d=");
  if (decisions.empty()) {
    out += "-";
    return out;
  }
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += StrCat(decisions[i].index, ":", decisions[i].thread);
  }
  return out;
}

Expected<Schedule> Schedule::Parse(std::string_view text) {
  text = StripWhitespace(text);
  if (!StartsWith(text, kScheduleTag)) {
    return Status::InvalidArgument(
        StrCat("schedule must start with '", kScheduleTag, "'"));
  }
  Schedule schedule;
  bool saw_seed = false, saw_decisions = false;
  for (const std::string& field :
       Split(text.substr(kScheduleTag.size()), ' ')) {
    std::string_view f = StripWhitespace(field);
    if (f.empty()) {
      continue;
    }
    if (StartsWith(f, "seed=")) {
      if (saw_seed) {
        return Status::InvalidArgument("duplicate seed= field");
      }
      POLY_ASSIGN_OR_RETURN(schedule.seed, ParseU64(f.substr(5)));
      saw_seed = true;
    } else if (StartsWith(f, "d=")) {
      if (saw_decisions) {
        return Status::InvalidArgument("duplicate d= field");
      }
      saw_decisions = true;
      std::string_view body = f.substr(2);
      if (body == "-") {
        continue;
      }
      for (const std::string& pair : Split(body, ',')) {
        std::vector<std::string> parts = Split(pair, ':');
        if (parts.size() != 2) {
          return Status::InvalidArgument(
              StrCat("bad decision '", pair, "' (want index:thread)"));
        }
        Decision d;
        POLY_ASSIGN_OR_RETURN(d.index, ParseU64(parts[0]));
        POLY_ASSIGN_OR_RETURN(uint64_t tid, ParseU64(parts[1]));
        if (tid > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
          return Status::InvalidArgument(
              StrCat("thread id out of range: ", tid));
        }
        d.thread = static_cast<int>(tid);
        if (!schedule.decisions.empty() &&
            schedule.decisions.back().index >= d.index) {
          return Status::InvalidArgument(
              "decision indices must be strictly increasing");
        }
        schedule.decisions.push_back(d);
      }
    } else {
      return Status::InvalidArgument(StrCat("unknown field '", f, "'"));
    }
  }
  if (!saw_seed || !saw_decisions) {
    return Status::InvalidArgument("schedule needs both seed= and d= fields");
  }
  return schedule;
}

std::string CorpusEntry::Serialize() const {
  return StrCat(kCorpusTag, "\n", "program: ", program, "\n",
                "variant: ", variant, "\n", "expect: ", expect, "\n",
                "schedule: ", schedule.Serialize(), "\n");
}

Expected<CorpusEntry> CorpusEntry::Parse(std::string_view text) {
  CorpusEntry entry;
  bool saw_tag = false, saw_schedule = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (!saw_tag) {
      if (line != kCorpusTag) {
        return Status::InvalidArgument(
            StrCat("corpus entry must start with '", kCorpusTag, "'"));
      }
      saw_tag = true;
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(StrCat("bad corpus line '", line, "'"));
    }
    std::string_view key = StripWhitespace(line.substr(0, colon));
    std::string_view value = StripWhitespace(line.substr(colon + 1));
    if (key == "program") {
      entry.program = std::string(value);
    } else if (key == "variant") {
      entry.variant = std::string(value);
    } else if (key == "expect") {
      entry.expect = std::string(value);
    } else if (key == "schedule") {
      POLY_ASSIGN_OR_RETURN(entry.schedule, Schedule::Parse(value));
      saw_schedule = true;
    } else {
      return Status::InvalidArgument(StrCat("unknown corpus key '", key, "'"));
    }
  }
  if (!saw_tag) {
    return Status::InvalidArgument("empty corpus entry");
  }
  if (entry.program.empty() || entry.variant.empty() || !saw_schedule) {
    return Status::InvalidArgument(
        "corpus entry needs program, variant and schedule");
  }
  return entry;
}

}  // namespace polynima::sched
