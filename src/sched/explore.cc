#include "src/sched/explore.h"

#include <algorithm>
#include <deque>

#include "src/support/strings.h"

namespace polynima::sched {

std::string Outcome::Key() const {
  // Observable state only: the digest is layout-sensitive and must not feed
  // cross-binary comparisons.
  std::string key = ok ? StrCat("exit=", exit_code) : "fault";
  if (!fault_message.empty()) {
    key += StrCat(" msg=", fault_message);
  }
  if (!output.empty()) {
    key += StrCat(" out=", output);
  }
  return key;
}

namespace {

void RecordOutcome(OutcomeSet& set, const Outcome& outcome,
                   const Schedule& witness) {
  std::string key = outcome.Key();
  if (set.outcomes.emplace(key, outcome).second) {
    set.witnesses.emplace(std::move(key), witness);
  }
}

void RunPct(const RunFn& run, uint64_t engine_seed,
            const ExploreOptions& options, OutcomeSet& set) {
  Rng seeds(options.seed ^ 0x9c7eull);
  // Run 0 is the all-default schedule; its consultation count calibrates the
  // PCT change-point range (options.pct.expected_length is only a cap) so
  // priority inversions land inside short runs instead of far past the end.
  PctOptions pct = options.pct;
  for (int i = 0; i < options.budget; ++i) {
    PctScheduler strategy(seeds.Next(), pct);
    // Static race hints steer half the strategy runs: a HintedScheduler
    // forces a preemption at every consultation inside a suspected racing
    // block, delegating everywhere else. Run 0 stays all-default and the
    // alternation keeps pure-PCT coverage for races the static pass missed.
    HintedScheduler hinted(i == 0 ? nullptr : &strategy,
                           options.preemption_hints, seeds.Next());
    Scheduler* inner = nullptr;
    if (i != 0) {
      inner = options.preemption_hints.empty() || i % 2 == 0
                  ? static_cast<Scheduler*>(&strategy)
                  : &hinted;
    }
    RecordingScheduler recorder(inner, engine_seed);
    Outcome outcome = run(&recorder);
    ++set.runs;
    RecordOutcome(set, outcome, recorder.schedule());
    if (options.obs.metrics != nullptr) {
      options.obs.Add(obs::Counter::kSchedSchedulesRun);
      options.obs.Add(obs::Counter::kSchedDecisions, recorder.points_seen());
      options.obs.Add(obs::Counter::kSchedPreemptions,
                      recorder.preemptions());
      if (i != 0 && pct.depth > 1) {
        options.obs.Add(obs::Counter::kSchedChangePoints,
                        static_cast<uint64_t>(pct.depth - 1));
      }
    }
    if (i == 0) {
      pct.expected_length = std::min(
          options.pct.expected_length,
          std::max<uint64_t>(2, recorder.points_seen()));
    }
  }
}

void RunDfs(const RunFn& run, uint64_t engine_seed,
            const ExploreOptions& options, OutcomeSet& set) {
  struct WorkItem {
    std::vector<Decision> prefix;
    int preemptions = 0;
  };
  // Breadth-first so the shortest counterexamples surface before the run cap
  // truncates the frontier.
  std::deque<WorkItem> worklist;
  worklist.push_back({});
  int runs = 0;
  while (!worklist.empty() && runs < options.dfs_max_runs) {
    WorkItem item = std::move(worklist.front());
    worklist.pop_front();
    DfsScheduler dfs(item.prefix);
    // The recorder wrapper is observability-only here: it delegates every
    // pick to the DFS scheduler and counts consultations/preemptions.
    RecordingScheduler recorder(&dfs, engine_seed);
    Outcome outcome = run(&recorder);
    ++runs;
    ++set.runs;
    RecordOutcome(set, outcome, Schedule{engine_seed, item.prefix});
    if (options.obs.metrics != nullptr) {
      options.obs.Add(obs::Counter::kSchedSchedulesRun);
      options.obs.Add(obs::Counter::kSchedDecisions, recorder.points_seen());
      options.obs.Add(obs::Counter::kSchedPreemptions,
                      recorder.preemptions());
    }
    for (const DfsScheduler::Branch& branch : dfs.branches()) {
      int preemptions = item.preemptions + (branch.preemption ? 1 : 0);
      if (preemptions > options.dfs_preemption_bound) {
        continue;
      }
      WorkItem next;
      next.prefix = item.prefix;
      next.prefix.push_back(branch.decision);
      next.preemptions = preemptions;
      worklist.push_back(std::move(next));
    }
  }
}

}  // namespace

OutcomeSet EnumerateOutcomes(const RunFn& run, uint64_t engine_seed,
                             const ExploreOptions& options) {
  obs::Span span(options.obs.trace, "sched", "enumerate-outcomes");
  OutcomeSet set;
  if (options.strategy != ExploreOptions::Strategy::kDfs) {
    RunPct(run, engine_seed, options, set);
  }
  if (options.strategy != ExploreOptions::Strategy::kPct) {
    RunDfs(run, engine_seed, options, set);
  }
  span.Arg("runs", set.runs);
  span.Arg("outcomes", static_cast<int64_t>(set.outcomes.size()));
  return set;
}

Schedule Shrink(const Schedule& schedule,
                const std::function<bool(const Schedule&)>& still_fails) {
  if (still_fails(Schedule{schedule.seed, {}})) {
    return Schedule{schedule.seed, {}};
  }
  std::vector<Decision> current = schedule.decisions;
  size_t granularity = 2;
  while (current.size() >= 2) {
    size_t chunk = (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (size_t start = 0; start < current.size(); start += chunk) {
      // Try the complement of [start, start+chunk).
      Schedule candidate{schedule.seed, {}};
      candidate.decisions.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) {
          candidate.decisions.push_back(current[i]);
        }
      }
      if (still_fails(candidate)) {
        current = std::move(candidate.decisions);
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) {
        break;  // 1-minimal: no single decision can be removed
      }
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return Schedule{schedule.seed, std::move(current)};
}

DiffReport DiffExplore(const RunFn& reference, const RunFn& optimized,
                       uint64_t engine_seed, const ExploreOptions& options) {
  DiffReport report;
  OutcomeSet ref = EnumerateOutcomes(reference, engine_seed, options);
  OutcomeSet opt = EnumerateOutcomes(optimized, engine_seed, options);
  report.runs_reference = ref.runs;
  report.runs_optimized = opt.runs;

  // Optimized-only outcomes (new behavior) are the classic miscompilation
  // signal; reference-only outcomes (lost behavior) are what RLE/DSE after
  // an unsound fence removal produce. Check both directions.
  const OutcomeSet* side = nullptr;
  for (const auto& [key, outcome] : opt.outcomes) {
    if (ref.outcomes.count(key) == 0) {
      report.diverged = true;
      report.divergence_key = key;
      report.missing_in_optimized = false;
      report.witness_outcome = outcome;
      side = &opt;
      break;
    }
  }
  if (!report.diverged) {
    for (const auto& [key, outcome] : ref.outcomes) {
      if (opt.outcomes.count(key) == 0) {
        report.diverged = true;
        report.divergence_key = key;
        report.missing_in_optimized = true;
        report.witness_outcome = outcome;
        side = &ref;
        break;
      }
    }
  }
  if (!report.diverged) {
    report.message = StrCat("no divergence: ", ref.outcomes.size(),
                            " outcome(s) identical across ", ref.runs, "+",
                            opt.runs, " runs");
    return report;
  }

  const RunFn& exhibiting =
      report.missing_in_optimized ? reference : optimized;
  report.original_witness = side->witnesses.at(report.divergence_key);
  auto outcome_key = [&](const Schedule& s) {
    ReplayScheduler replay(s);
    return exhibiting(&replay).Key();
  };
  report.witness =
      Shrink(report.original_witness, [&](const Schedule& s) {
        return outcome_key(s) == report.divergence_key;
      });

  // Replay-determinism check: the shrunk witness must reproduce the outcome
  // with a bit-identical final state, twice.
  ReplayScheduler replay_a(report.witness);
  Outcome a = exhibiting(&replay_a);
  ReplayScheduler replay_b(report.witness);
  Outcome b = exhibiting(&replay_b);
  report.replay_deterministic = a.Key() == report.divergence_key &&
                                b.Key() == report.divergence_key &&
                                a.state_digest == b.state_digest;
  report.witness_outcome = a;

  report.message = StrCat(
      report.missing_in_optimized
          ? "optimized build LOST outcome "
          : "optimized build introduced NEW outcome ",
      "[", report.divergence_key, "] (reference ", ref.outcomes.size(),
      " outcomes / ", ref.runs, " runs, optimized ", opt.outcomes.size(),
      " outcomes / ", opt.runs, " runs)\n  repro (",
      report.missing_in_optimized ? "reference" : "optimized",
      " side): ", report.witness.Serialize(), "\n  shrunk ",
      report.original_witness.decisions.size(), " -> ",
      report.witness.decisions.size(), " decision(s), replay ",
      report.replay_deterministic ? "deterministic" : "UNSTABLE");
  return report;
}

}  // namespace polynima::sched
