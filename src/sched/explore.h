// Schedule-space exploration and counterexample shrinking.
//
// Exploration is expressed against an abstract RunFn so the driver works for
// any deterministic executor (the exec engine today, the x86 VM tomorrow):
// given a Scheduler, a RunFn performs one complete run and reports the
// observable Outcome. Two strategies enumerate distinct outcomes:
//   - PCT sampling: `budget` runs under seeded PctSchedulers, each recorded
//     so any outcome has a replayable witness Schedule.
//   - Bounded-preemption DFS: breadth-first over sparse decision prefixes,
//     extending a prefix with every runnable alternative observed at
//     post-prefix points while the preemptive-deviation count stays within
//     the bound. Exhaustive for small programs; capped by `dfs_max_runs`.
//
// DiffExplore runs both a reference and an optimized executor over the same
// schedule space and compares the *sets* of observable outcomes in both
// directions: an optimized-only outcome is a new behavior (classic
// miscompilation), and a reference-only outcome is a lost behavior — the
// signature of an over-eager fence removal enabling RLE/DSE that pins a
// value another thread was allowed to change. Either direction yields a
// witness Schedule, which is shrunk by delta-debugging (ddmin over the
// sparse decision list) before being reported as a repro string.
#ifndef POLYNIMA_SCHED_EXPLORE_H_
#define POLYNIMA_SCHED_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "src/obs/report.h"
#include "src/sched/schedule.h"
#include "src/sched/scheduler.h"

namespace polynima::sched {

// Observable result of one controlled run. `state_digest` hashes the final
// guest memory and per-thread state; it is comparable only between runs of
// the same binary (code layout feeds the hash), so Key() excludes it and
// cross-binary comparisons use Key() while replay-determinism checks use
// the digest.
struct Outcome {
  bool ok = false;
  int64_t exit_code = 0;
  std::string output;
  std::string fault_message;
  uint64_t state_digest = 0;

  std::string Key() const;
};

using RunFn = std::function<Outcome(Scheduler* scheduler)>;

struct ExploreOptions {
  uint64_t seed = 1;
  enum class Strategy { kPct, kDfs, kBoth } strategy = Strategy::kBoth;
  // PCT: number of sampled schedules and the scheduler's shape.
  int budget = 128;
  PctOptions pct;
  // DFS: maximum preemptive deviations per prefix and total run cap.
  int dfs_preemption_bound = 2;
  int dfs_max_runs = 256;
  // Guest addresses of suspected racing accesses (analyze::RaceHintAddresses
  // from the static race detector). PCT runs wrap their strategy in a
  // HintedScheduler that forces a preemption whenever the engine consults at
  // one of these blocks, steering the sampled schedules toward interleavings
  // that actually exercise the reported pairs. Empty = no hinting. DFS is
  // unaffected (its enumeration is already exhaustive within the bound).
  std::set<uint64_t> preemption_hints;
  // Observability sinks (all nullable; see src/obs): one "sched"-category
  // span per enumeration and the sched.* counters (runs, consultations,
  // preemptions, PCT change points).
  obs::Session obs;
};

struct OutcomeSet {
  // Outcome key -> first outcome observed with that key.
  std::map<std::string, Outcome> outcomes;
  // Outcome key -> schedule that produced it (replayable witness).
  std::map<std::string, Schedule> witnesses;
  int runs = 0;
};

// Enumerates distinct outcomes of `run` under the configured strategies.
// `engine_seed` is stamped into witness schedules (it must be the seed the
// RunFn builds its executor with).
OutcomeSet EnumerateOutcomes(const RunFn& run, uint64_t engine_seed,
                             const ExploreOptions& options);

// ddmin over the sparse decision list: returns the smallest sub-schedule
// (same seed) for which `still_fails` holds. `still_fails(schedule)` must be
// deterministic; the input schedule is assumed failing.
Schedule Shrink(const Schedule& schedule,
                const std::function<bool(const Schedule&)>& still_fails);

struct DiffReport {
  bool diverged = false;
  // Outcome key present on exactly one side.
  std::string divergence_key;
  // True when the reference exhibits the outcome and the optimized build
  // cannot (lost behavior); false for an optimized-only outcome.
  bool missing_in_optimized = false;
  Outcome witness_outcome;
  Schedule witness;           // shrunk
  Schedule original_witness;  // as recorded
  // Replaying `witness` twice on the exhibiting side produced identical
  // state digests (the replay-determinism acceptance check).
  bool replay_deterministic = false;
  int runs_reference = 0;
  int runs_optimized = 0;
  std::string message;  // human-readable summary
};

DiffReport DiffExplore(const RunFn& reference, const RunFn& optimized,
                       uint64_t engine_seed, const ExploreOptions& options);

}  // namespace polynima::sched

#endif  // POLYNIMA_SCHED_EXPLORE_H_
