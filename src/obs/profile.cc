#include "src/obs/profile.h"

#include <algorithm>

namespace polynima::obs {

uint32_t GuestProfile::RegisterSite(std::string function, std::string block,
                                    uint64_t guest_address) {
  Site site;
  site.function = std::move(function);
  site.block = std::move(block);
  site.guest_address = guest_address;
  sites_.push_back(std::move(site));
  return static_cast<uint32_t>(sites_.size() - 1);
}

json::Value GuestProfile::ToJson() const {
  std::vector<const Site*> sorted;
  sorted.reserve(sites_.size());
  uint64_t total_entries = 0, total_fences = 0, total_atomics = 0,
           total_instrs = 0;
  for (const Site& s : sites_) {
    sorted.push_back(&s);
    total_entries += s.entries;
    total_fences += s.fences;
    total_atomics += s.atomics;
    total_instrs += s.instrs;
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Site* a, const Site* b) {
                     return a->entries > b->entries;
                   });

  json::Array site_array;
  site_array.reserve(sorted.size());
  for (const Site* s : sorted) {
    json::Object o;
    o["function"] = s->function;
    o["block"] = s->block;
    o["guest_address"] = s->guest_address;
    o["entries"] = s->entries;
    o["fences"] = s->fences;
    o["atomics"] = s->atomics;
    o["instrs"] = s->instrs;
    site_array.push_back(std::move(o));
  }
  json::Object totals;
  totals["sites"] = static_cast<uint64_t>(sites_.size());
  totals["entries"] = total_entries;
  totals["fences"] = total_fences;
  totals["atomics"] = total_atomics;
  totals["instrs"] = total_instrs;
  json::Object doc;
  doc["schema"] = "polynima-profile/v1";
  doc["totals"] = std::move(totals);
  doc["sites"] = std::move(site_array);
  return doc;
}

Status GuestProfile::WriteTo(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

}  // namespace polynima::obs
