#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/support/strings.h"

namespace polynima::obs {

namespace {

constexpr char kReportSchema[] = "polynima-report/v1";
constexpr char kMetricsSchema[] = "polynima-metrics/v1";
constexpr char kProfileSchema[] = "polynima-profile/v1";
constexpr char kAnalyzeSchema[] = "polynima-analyze/v1";

// Summarizes a trace document: span count and per-category span counts.
json::Value SummarizeTrace(const json::Value& trace_doc) {
  std::map<std::string, int64_t> by_category;
  int64_t spans = 0;
  if (const json::Value* events = trace_doc.Find("traceEvents")) {
    if (events->is_array()) {
      for (const json::Value& e : events->as_array()) {
        const json::Value* ph = e.Find("ph");
        if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
          continue;
        }
        ++spans;
        const json::Value* cat = e.Find("cat");
        if (cat != nullptr && cat->is_string()) {
          ++by_category[cat->as_string()];
        }
      }
    }
  }
  json::Object categories;
  for (const auto& [name, count] : by_category) {
    categories[name] = count;
  }
  json::Object summary;
  summary["spans"] = spans;
  summary["categories"] = std::move(categories);
  return summary;
}

json::Value SummarizeProfile(const GuestProfile& profile) {
  json::Value doc = profile.ToJson();
  json::Object summary;
  if (const json::Value* totals = doc.Find("totals")) {
    summary["totals"] = *totals;
  }
  if (const json::Value* sites = doc.Find("sites")) {
    if (sites->is_array() && !sites->as_array().empty()) {
      summary["hottest"] = sites->as_array().front();  // sorted hot-first
    }
  }
  return summary;
}

Status Malformed(const char* kind, const std::string& what) {
  return Status::InvalidArgument(StrCat(kind, ": ", what));
}

const json::Value* RequireMember(const json::Value& doc, const char* key) {
  return doc.Find(key);
}

bool IsNumber(const json::Value& v) { return v.is_int() || v.is_double(); }

std::string FormatCount(uint64_t n) {
  // Groups digits for readability: 1234567 -> "1,234,567".
  std::string raw = std::to_string(n);
  std::string out;
  int lead = static_cast<int>(raw.size()) % 3;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && static_cast<int>(i) % 3 == lead % 3) {
      out.push_back(',');
    }
    out.push_back(raw[i]);
  }
  return out;
}

void AppendRule(std::string& out, size_t width) {
  out.append(width, '-');
  out.push_back('\n');
}

}  // namespace

json::Value BuildRunReport(const RunInfo& info, const Session& session) {
  json::Object doc;
  doc["schema"] = kReportSchema;
  doc["tool"] = "polynima";
  doc["command"] = info.command;
  doc["input"] = info.input;
  doc["ok"] = info.ok;

  json::Array artifacts;
  for (const auto& [kind, path] : info.artifacts) {
    json::Object a;
    a["kind"] = kind;
    a["path"] = path;
    artifacts.push_back(std::move(a));
  }
  doc["artifacts"] = std::move(artifacts);

  doc["analysis"] = info.analysis;
  doc["metrics"] = session.metrics != nullptr ? session.metrics->ToJson()
                                              : json::Value(nullptr);
  doc["trace_summary"] = session.trace != nullptr
                             ? SummarizeTrace(session.trace->ToJson())
                             : json::Value(nullptr);
  doc["profile_summary"] = session.profile != nullptr
                               ? SummarizeProfile(*session.profile)
                               : json::Value(nullptr);
  return doc;
}

Status ValidateTraceJson(const json::Value& doc) {
  if (!doc.is_object()) {
    return Malformed("trace", "document is not an object");
  }
  const json::Value* events = RequireMember(doc, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Malformed("trace", "missing traceEvents array");
  }
  int spans = 0;
  for (const json::Value& e : events->as_array()) {
    if (!e.is_object()) {
      return Malformed("trace", "traceEvents element is not an object");
    }
    const json::Value* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return Malformed("trace", "event without ph");
    }
    if (ph->as_string() != "X") {
      continue;  // metadata etc.
    }
    ++spans;
    for (const char* key : {"name", "cat"}) {
      const json::Value* v = e.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Malformed("trace", StrCat("span without string ", key));
      }
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const json::Value* v = e.Find(key);
      if (v == nullptr || !IsNumber(*v)) {
        return Malformed("trace", StrCat("span without numeric ", key));
      }
    }
  }
  if (spans == 0) {
    return Malformed("trace", "no complete (ph=X) span events");
  }
  return Status::Ok();
}

Status ValidateMetricsJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kMetricsSchema) {
    return Malformed("metrics", StrCat("schema is not ", kMetricsSchema));
  }
  const json::Value* counters = doc.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Malformed("metrics", "missing counters object");
  }
  // The full fixed taxonomy must be present with integer values.
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    const json::Value* v = counters->Find(name);
    if (v == nullptr || !v->is_int()) {
      return Malformed("metrics", StrCat("missing counter ", name));
    }
  }
  for (const char* key : {"gauges", "histograms"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_object()) {
      return Malformed("metrics", StrCat("missing ", key, " object"));
    }
  }
  for (const auto& [name, hist] : doc.Find("histograms")->as_object()) {
    for (const char* key : {"count", "sum", "min", "max"}) {
      const json::Value* v = hist.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("metrics",
                         StrCat("histogram ", name, " missing ", key));
      }
    }
    const json::Value* buckets = hist.Find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return Malformed("metrics", StrCat("histogram ", name, " missing buckets"));
    }
  }
  return Status::Ok();
}

Status ValidateProfileJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kProfileSchema) {
    return Malformed("profile", StrCat("schema is not ", kProfileSchema));
  }
  const json::Value* totals = doc.Find("totals");
  if (totals == nullptr || !totals->is_object()) {
    return Malformed("profile", "missing totals object");
  }
  for (const char* key : {"sites", "entries", "fences", "atomics", "instrs"}) {
    const json::Value* v = totals->Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("profile", StrCat("totals missing ", key));
    }
  }
  const json::Value* sites = doc.Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Malformed("profile", "missing sites array");
  }
  uint64_t prev_entries = ~0ull;
  for (const json::Value& site : sites->as_array()) {
    const json::Value* function = site.Find("function");
    if (function == nullptr || !function->is_string()) {
      return Malformed("profile", "site without function name");
    }
    for (const char* key :
         {"guest_address", "entries", "fences", "atomics", "instrs"}) {
      const json::Value* v = site.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("profile", StrCat("site missing ", key));
      }
    }
    uint64_t entries = site.Find("entries")->as_uint();
    if (entries > prev_entries) {
      return Malformed("profile", "sites not sorted hottest-first");
    }
    prev_entries = entries;
  }
  return Status::Ok();
}

Status ValidateReportJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kReportSchema) {
    return Malformed("report", StrCat("schema is not ", kReportSchema));
  }
  const json::Value* command = doc.Find("command");
  if (command == nullptr || !command->is_string()) {
    return Malformed("report", "missing command");
  }
  const json::Value* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Malformed("report", "missing ok flag");
  }
  const json::Value* artifacts = doc.Find("artifacts");
  if (artifacts == nullptr || !artifacts->is_array()) {
    return Malformed("report", "missing artifacts array");
  }
  for (const json::Value& a : artifacts->as_array()) {
    for (const char* key : {"kind", "path"}) {
      const json::Value* v = a.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Malformed("report", StrCat("artifact missing ", key));
      }
    }
  }
  const json::Value* metrics = doc.Find("metrics");
  if (metrics == nullptr) {
    return Malformed("report", "missing metrics member");
  }
  if (!metrics->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateMetricsJson(*metrics));
  }
  const json::Value* analysis = doc.Find("analysis");
  if (analysis != nullptr && !analysis->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateAnalysisJson(*analysis));
  }
  return Status::Ok();
}

Status ValidateAnalysisJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kAnalyzeSchema) {
    return Malformed("analysis", StrCat("schema is not ", kAnalyzeSchema));
  }
  for (const char* key :
       {"functions", "accesses", "stack_local", "heap_local", "shared",
        "alloc_sites", "escaped_sites", "heap_witnesses",
        "fences_elided_static", "analyze_ns", "thread_roots",
        "candidate_accesses"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("analysis", StrCat("missing integer ", key));
    }
  }
  for (const char* key : {"conservative_roots", "truncated"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_bool()) {
      return Malformed("analysis", StrCat("missing bool ", key));
    }
  }
  const json::Value* pairs = doc.Find("race_pairs");
  if (pairs == nullptr || !pairs->is_array()) {
    return Malformed("analysis", "missing race_pairs array");
  }
  for (const json::Value& p : pairs->as_array()) {
    for (const char* side : {"a", "b"}) {
      const json::Value* s = p.Find(side);
      if (s == nullptr || !s->is_object()) {
        return Malformed("analysis", StrCat("race pair missing side ", side));
      }
      const json::Value* fn = s->Find("function");
      const json::Value* ga = s->Find("guest_address");
      const json::Value* w = s->Find("write");
      if (fn == nullptr || !fn->is_string() || ga == nullptr ||
          !ga->is_int() || w == nullptr || !w->is_bool()) {
        return Malformed("analysis", "race pair side malformed");
      }
    }
  }
  return Status::Ok();
}

Expected<std::string> ValidateObsJson(const json::Value& doc) {
  if (doc.Find("traceEvents") != nullptr) {
    POLY_RETURN_IF_ERROR(ValidateTraceJson(doc));
    return std::string("trace");
  }
  const json::Value* schema = doc.Find("schema");
  if (schema != nullptr && schema->is_string()) {
    const std::string& s = schema->as_string();
    if (s == kMetricsSchema) {
      POLY_RETURN_IF_ERROR(ValidateMetricsJson(doc));
      return std::string("metrics");
    }
    if (s == kProfileSchema) {
      POLY_RETURN_IF_ERROR(ValidateProfileJson(doc));
      return std::string("profile");
    }
    if (s == kReportSchema) {
      POLY_RETURN_IF_ERROR(ValidateReportJson(doc));
      return std::string("report");
    }
  }
  return Status::InvalidArgument(
      "not a polynima observability document (no traceEvents and no known "
      "schema tag)");
}

std::string RenderMetrics(const json::Value& metrics_doc) {
  std::string out;
  out += "counters (non-zero)\n";
  AppendRule(out, 46);
  const json::Value* counters = metrics_doc.Find("counters");
  bool any = false;
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      if (!value.is_int() || value.as_int() == 0) {
        continue;
      }
      any = true;
      char line[96];
      std::snprintf(line, sizeof(line), "  %-32s %12s\n", name.c_str(),
                    FormatCount(value.as_uint()).c_str());
      out += line;
    }
  }
  if (!any) {
    out += "  (all zero)\n";
  }
  const json::Value* gauges = metrics_doc.Find("gauges");
  if (gauges != nullptr && gauges->is_object() &&
      !gauges->as_object().empty()) {
    out += "gauges\n";
    AppendRule(out, 46);
    for (const auto& [name, value] : gauges->as_object()) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %-32s %12lld\n", name.c_str(),
                    static_cast<long long>(value.is_int() ? value.as_int() : 0));
      out += line;
    }
  }
  const json::Value* hists = metrics_doc.Find("histograms");
  if (hists != nullptr && hists->is_object() && !hists->as_object().empty()) {
    out += "histograms\n";
    AppendRule(out, 46);
    for (const auto& [name, hist] : hists->as_object()) {
      const json::Value* count = hist.Find("count");
      const json::Value* sum = hist.Find("sum");
      const json::Value* min = hist.Find("min");
      const json::Value* max = hist.Find("max");
      uint64_t c = count != nullptr && count->is_int() ? count->as_uint() : 0;
      uint64_t s = sum != nullptr && sum->is_int() ? sum->as_uint() : 0;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-24s n=%llu mean=%llu min=%llu max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(c != 0 ? s / c : 0),
                    static_cast<unsigned long long>(
                        min != nullptr && min->is_int() ? min->as_uint() : 0),
                    static_cast<unsigned long long>(
                        max != nullptr && max->is_int() ? max->as_uint() : 0));
      out += line;
    }
  }
  return out;
}

std::string RenderProfile(const json::Value& profile_doc, int top_n) {
  std::string out;
  const json::Value* totals = profile_doc.Find("totals");
  if (totals != nullptr && totals->is_object()) {
    auto get = [&](const char* key) -> uint64_t {
      const json::Value* v = totals->Find(key);
      return v != nullptr && v->is_int() ? v->as_uint() : 0;
    };
    out += StrCat("guest profile: ", get("sites"), " sites, ",
                  FormatCount(get("entries")), " block entries, ",
                  FormatCount(get("instrs")), " instrs, ",
                  FormatCount(get("fences")), " fences, ",
                  FormatCount(get("atomics")), " atomics\n");
  }
  const json::Value* sites = profile_doc.Find("sites");
  if (sites == nullptr || !sites->is_array() || sites->as_array().empty()) {
    out += "  (no sites recorded)\n";
    return out;
  }
  out += StrCat("top ", top_n, " hot blocks\n");
  AppendRule(out, 72);
  out += "  entries      instrs  block\n";
  int shown = 0;
  for (const json::Value& site : sites->as_array()) {
    if (shown++ >= top_n) {
      break;
    }
    auto get = [&](const char* key) -> uint64_t {
      const json::Value* v = site.Find(key);
      return v != nullptr && v->is_int() ? v->as_uint() : 0;
    };
    auto name = [&](const char* key) -> std::string {
      const json::Value* v = site.Find(key);
      return v != nullptr && v->is_string() ? v->as_string() : std::string();
    };
    char line[256];
    std::snprintf(line, sizeof(line), "  %9s %11s  %s:%s @%#llx\n",
                  FormatCount(get("entries")).c_str(),
                  FormatCount(get("instrs")).c_str(), name("function").c_str(),
                  name("block").c_str(),
                  static_cast<unsigned long long>(get("guest_address")));
    out += line;
  }
  // Fence density: fence executions per block entry, highest first, for
  // sites that executed fences at all.
  struct Dense {
    double density;
    uint64_t fences;
    uint64_t entries;
    std::string where;
  };
  std::vector<Dense> dense;
  for (const json::Value& site : sites->as_array()) {
    const json::Value* fences = site.Find("fences");
    const json::Value* entries = site.Find("entries");
    if (fences == nullptr || entries == nullptr || !fences->is_int() ||
        !entries->is_int() || fences->as_uint() == 0) {
      continue;
    }
    uint64_t e = entries->as_uint();
    const json::Value* fn = site.Find("function");
    const json::Value* blk = site.Find("block");
    dense.push_back(
        {e != 0 ? static_cast<double>(fences->as_uint()) / e : 0.0,
         fences->as_uint(), e,
         StrCat(fn != nullptr && fn->is_string() ? fn->as_string() : "", ":",
                blk != nullptr && blk->is_string() ? blk->as_string() : "")});
  }
  std::stable_sort(dense.begin(), dense.end(),
                   [](const Dense& a, const Dense& b) {
                     return a.fences > b.fences;
                   });
  if (!dense.empty()) {
    out += "fence density (fences executed per block entry)\n";
    AppendRule(out, 72);
    out += "   fences     entries  per-entry  block\n";
    int rows = 0;
    for (const Dense& d : dense) {
      if (rows++ >= top_n) {
        break;
      }
      char line[256];
      std::snprintf(line, sizeof(line), "  %8s %11s  %9.2f  %s\n",
                    FormatCount(d.fences).c_str(),
                    FormatCount(d.entries).c_str(), d.density,
                    d.where.c_str());
      out += line;
    }
  }
  return out;
}

std::string RenderTraceSummary(const json::Value& trace_doc) {
  json::Value summary = SummarizeTrace(trace_doc);
  std::string out;
  const json::Value* spans = summary.Find("spans");
  out += StrCat("trace: ",
                spans != nullptr && spans->is_int() ? spans->as_int() : 0,
                " spans\n");
  const json::Value* categories = summary.Find("categories");
  if (categories != nullptr && categories->is_object()) {
    for (const auto& [name, count] : categories->as_object()) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %-16s %8lld\n", name.c_str(),
                    static_cast<long long>(count.is_int() ? count.as_int()
                                                          : 0));
      out += line;
    }
  }
  return out;
}

std::string RenderReport(const json::Value& report_doc, int top_n) {
  std::string out;
  auto str = [&](const char* key) -> std::string {
    const json::Value* v = report_doc.Find(key);
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  const json::Value* ok = report_doc.Find("ok");
  out += StrCat("polynima run report: command=", str("command"),
                " input=", str("input"), " ok=",
                ok != nullptr && ok->is_bool() && ok->as_bool() ? "true"
                                                                : "false",
                "\n");
  const json::Value* artifacts = report_doc.Find("artifacts");
  if (artifacts != nullptr && artifacts->is_array() &&
      !artifacts->as_array().empty()) {
    out += "artifacts\n";
    for (const json::Value& a : artifacts->as_array()) {
      const json::Value* kind = a.Find("kind");
      const json::Value* path = a.Find("path");
      out += StrCat(
          "  ", kind != nullptr && kind->is_string() ? kind->as_string() : "",
          ": ", path != nullptr && path->is_string() ? path->as_string() : "",
          "\n");
    }
  }
  const json::Value* analysis = report_doc.Find("analysis");
  if (analysis != nullptr && analysis->is_object()) {
    auto num = [&](const char* key) -> int64_t {
      const json::Value* v = analysis->Find(key);
      return v != nullptr && v->is_int() ? v->as_int() : 0;
    };
    out += StrCat("analysis: ", num("accesses"), " accesses (",
                  num("stack_local"), " stack-local, ", num("heap_local"),
                  " heap-local, ", num("shared"), " shared), ",
                  num("escaped_sites"), "/", num("alloc_sites"),
                  " sites escaped, ", num("fences_elided_static"),
                  " fences elided statically\n");
    const json::Value* pairs = analysis->Find("race_pairs");
    if (pairs != nullptr && pairs->is_array() && !pairs->as_array().empty()) {
      out += StrCat("race pairs (", pairs->as_array().size(), ")\n");
      for (const json::Value& p : pairs->as_array()) {
        auto side = [&](const char* key) -> std::string {
          const json::Value* s = p.Find(key);
          if (s == nullptr || !s->is_object()) {
            return "?";
          }
          const json::Value* fn = s->Find("function");
          const json::Value* ga = s->Find("guest_address");
          const json::Value* w = s->Find("write");
          return StrCat(
              fn != nullptr && fn->is_string() ? fn->as_string() : "?", "@",
              HexString(ga != nullptr && ga->is_int() ? ga->as_uint() : 0),
              w != nullptr && w->is_bool() && w->as_bool() ? " W" : " R");
        };
        const json::Value* reason = p.Find("reason");
        out += StrCat("  ", side("a"), " <-> ", side("b"),
                      reason != nullptr && reason->is_string()
                          ? StrCat(" (", reason->as_string(), ")")
                          : "",
                      "\n");
      }
    }
  }
  const json::Value* trace_summary = report_doc.Find("trace_summary");
  if (trace_summary != nullptr && trace_summary->is_object()) {
    // Re-render from the summary shape (same keys SummarizeTrace emits).
    const json::Value* spans = trace_summary->Find("spans");
    out += StrCat("trace: ",
                  spans != nullptr && spans->is_int() ? spans->as_int() : 0,
                  " spans\n");
    const json::Value* categories = trace_summary->Find("categories");
    if (categories != nullptr && categories->is_object()) {
      for (const auto& [name, count] : categories->as_object()) {
        char line[96];
        std::snprintf(line, sizeof(line), "  %-16s %8lld\n", name.c_str(),
                      static_cast<long long>(count.is_int() ? count.as_int()
                                                            : 0));
        out += line;
      }
    }
  }
  const json::Value* metrics = report_doc.Find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    out += RenderMetrics(*metrics);
  }
  const json::Value* profile_summary = report_doc.Find("profile_summary");
  if (profile_summary != nullptr && profile_summary->is_object()) {
    const json::Value* totals = profile_summary->Find("totals");
    if (totals != nullptr && totals->is_object()) {
      json::Object wrapper;
      wrapper["schema"] = kProfileSchema;
      wrapper["totals"] = *totals;
      json::Array sites;
      if (const json::Value* hottest = profile_summary->Find("hottest")) {
        if (hottest->is_object()) {
          sites.push_back(*hottest);
        }
      }
      wrapper["sites"] = std::move(sites);
      out += RenderProfile(wrapper, top_n);
    }
  }
  return out;
}

}  // namespace polynima::obs
