#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "src/support/strings.h"

namespace polynima::obs {

namespace {

constexpr char kReportSchema[] = "polynima-report/v1";
constexpr char kMetricsSchema[] = "polynima-metrics/v1";
constexpr char kProfileSchema[] = "polynima-profile/v1";
constexpr char kAnalyzeSchema[] = "polynima-analyze/v1";
constexpr char kTierProfSchema[] = "polynima-tierprof/v1";
constexpr char kIcfSchema[] = "polynima-icf/v1";

// Summarizes a trace document: span count and per-category span counts.
json::Value SummarizeTrace(const json::Value& trace_doc) {
  std::map<std::string, int64_t> by_category;
  int64_t spans = 0;
  if (const json::Value* events = trace_doc.Find("traceEvents")) {
    if (events->is_array()) {
      for (const json::Value& e : events->as_array()) {
        const json::Value* ph = e.Find("ph");
        if (ph == nullptr || !ph->is_string() || ph->as_string() != "X") {
          continue;
        }
        ++spans;
        const json::Value* cat = e.Find("cat");
        if (cat != nullptr && cat->is_string()) {
          ++by_category[cat->as_string()];
        }
      }
    }
  }
  json::Object categories;
  for (const auto& [name, count] : by_category) {
    categories[name] = count;
  }
  json::Object summary;
  summary["spans"] = spans;
  summary["categories"] = std::move(categories);
  return summary;
}

json::Value SummarizeProfile(const GuestProfile& profile) {
  json::Value doc = profile.ToJson();
  json::Object summary;
  if (const json::Value* totals = doc.Find("totals")) {
    summary["totals"] = *totals;
  }
  if (const json::Value* sites = doc.Find("sites")) {
    if (sites->is_array() && !sites->as_array().empty()) {
      summary["hottest"] = sites->as_array().front();  // sorted hot-first
    }
  }
  return summary;
}

Status Malformed(const char* kind, const std::string& what) {
  return Status::InvalidArgument(StrCat(kind, ": ", what));
}

const json::Value* RequireMember(const json::Value& doc, const char* key) {
  return doc.Find(key);
}

bool IsNumber(const json::Value& v) { return v.is_int() || v.is_double(); }

std::string FormatCount(uint64_t n) {
  // Groups digits for readability: 1234567 -> "1,234,567".
  std::string raw = std::to_string(n);
  std::string out;
  int lead = static_cast<int>(raw.size()) % 3;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && static_cast<int>(i) % 3 == lead % 3) {
      out.push_back(',');
    }
    out.push_back(raw[i]);
  }
  return out;
}

void AppendRule(std::string& out, size_t width) {
  out.append(width, '-');
  out.push_back('\n');
}

// Integer counter lookup in a metrics document; -1 when absent.
int64_t CounterValue(const json::Value& metrics_doc, const char* name) {
  const json::Value* counters = metrics_doc.Find("counters");
  if (counters == nullptr) {
    return -1;
  }
  const json::Value* v = counters->Find(name);
  return v != nullptr && v->is_int() ? v->as_int() : -1;
}

// Accounting invariant internal to the metrics dump: the deopt total must
// equal the sum of its per-reason counters.
Status CheckDeoptCounterAccounting(const json::Value& metrics_doc) {
  int64_t total = CounterValue(metrics_doc, "exec.deopts");
  int64_t preempt = CounterValue(metrics_doc, "exec.deopt_preempt");
  int64_t smc = CounterValue(metrics_doc, "exec.deopt_smc_write");
  int64_t uncovered = CounterValue(metrics_doc, "exec.deopt_uncovered");
  if (total < 0 || preempt < 0 || smc < 0 || uncovered < 0) {
    return Malformed("report", "metrics missing exec deopt counters");
  }
  if (total != preempt + smc + uncovered) {
    return Malformed(
        "report",
        StrCat("exec.deopts (", total, ") != sum of per-reason counters (",
               preempt + smc + uncovered, ")"));
  }
  return Status::Ok();
}

// Cross-check between the icf and tierprof sections: a function a sealed
// CfgCert declared fully covered (every indirect site proven, no other
// uncovered blocks) must never take an uncovered-edge deopt — the whole
// point of eliding the cfmiss stub is that the guard can't fire. A nonzero
// count here means the certificate's claim was violated at runtime.
Status CheckCfgCoverageAccounting(const json::Value& icf_doc,
                                  const json::Value& tierprof_doc) {
  std::set<int64_t> covered;
  const json::Value* covered_fns = icf_doc.Find("covered_functions");
  if (covered_fns != nullptr && covered_fns->is_array()) {
    for (const json::Value& f : covered_fns->as_array()) {
      const json::Value* entry = f.Find("entry");
      if (entry != nullptr && entry->is_int()) {
        covered.insert(entry->as_int());
      }
    }
  }
  if (covered.empty()) {
    return Status::Ok();
  }
  const json::Value* functions = tierprof_doc.Find("functions");
  if (functions == nullptr || !functions->is_array()) {
    return Status::Ok();
  }
  for (const json::Value& fn : functions->as_array()) {
    const json::Value* entry = fn.Find("entry");
    if (entry == nullptr || !entry->is_int() ||
        covered.count(entry->as_int()) == 0) {
      continue;
    }
    const json::Value* deopts = fn.Find("deopts");
    if (deopts == nullptr || !deopts->is_object()) {
      continue;
    }
    const json::Value* uncovered = deopts->Find("uncovered_edge");
    if (uncovered != nullptr && uncovered->is_int() &&
        uncovered->as_int() != 0) {
      const json::Value* name = fn.Find("name");
      return Malformed(
          "report",
          StrCat("CfgCert-covered function ",
                 name != nullptr && name->is_string() ? name->as_string()
                                                      : "?",
                 " took ", uncovered->as_int(),
                 " uncovered-edge deopts (certificate claim violated)"));
    }
  }
  return Status::Ok();
}

// Cross-document accounting: the tier telemetry and the exec.* counters
// describe the same run and must not silently disagree.
Status CheckTierAccounting(const json::Value& metrics_doc,
                           const json::Value& tierprof_doc) {
  const json::Value* totals = tierprof_doc.Find("totals");
  if (totals == nullptr || !totals->is_object()) {
    return Malformed("report", "tierprof section missing totals");
  }
  auto total = [&](const char* key) -> int64_t {
    const json::Value* v = totals->Find(key);
    return v != nullptr && v->is_int() ? v->as_int() : -1;
  };
  // Translation counters must match exactly: both sides count the same
  // Translate() successes.
  for (const auto& [counter, key] :
       {std::pair<const char*, const char*>{"exec.tier1_translations",
                                            "tier1_translations"},
        std::pair<const char*, const char*>{"exec.tier2_translations",
                                            "tier2_translations"}}) {
    int64_t m = CounterValue(metrics_doc, counter);
    int64_t t = total(key);
    if (m >= 0 && t >= 0 && m != t) {
      return Malformed("report", StrCat(counter, " (", m, ") != tierprof ",
                                        key, " (", t, ")"));
    }
  }
  // Every tiered-up function was translated at least once.
  int64_t functions_tiered_up = 0;
  if (const json::Value* functions = tierprof_doc.Find("functions")) {
    if (functions->is_array()) {
      for (const json::Value& f : functions->as_array()) {
        const json::Value* ups = f.Find("tier_ups");
        if (ups != nullptr && ups->is_int() && ups->as_int() > 0) {
          ++functions_tiered_up;
        }
      }
    }
  }
  int64_t translations = CounterValue(metrics_doc, "exec.tier1_translations") +
                         CounterValue(metrics_doc, "exec.tier2_translations");
  if (translations < functions_tiered_up) {
    return Malformed(
        "report",
        StrCat("tier translations (", translations,
               ") < functions tiered up (", functions_tiered_up, ")"));
  }
  // The deopt counter must equal the sum of per-reason tierprof events.
  const json::Value* by_reason = totals->Find("deopts_by_reason");
  if (by_reason == nullptr || !by_reason->is_object()) {
    return Malformed("report", "tierprof totals missing deopts_by_reason");
  }
  int64_t tierprof_deopts = 0;
  for (const auto& [reason, count] : by_reason->as_object()) {
    tierprof_deopts += count.is_int() ? count.as_int() : 0;
  }
  int64_t metric_deopts = CounterValue(metrics_doc, "exec.deopts");
  if (metric_deopts >= 0 && metric_deopts != tierprof_deopts) {
    return Malformed(
        "report", StrCat("exec.deopts (", metric_deopts,
                         ") != sum of per-reason tierprof events (",
                         tierprof_deopts, ")"));
  }
  return Status::Ok();
}

}  // namespace

json::Value BuildRunReport(const RunInfo& info, const Session& session) {
  json::Object doc;
  doc["schema"] = kReportSchema;
  doc["tool"] = "polynima";
  doc["command"] = info.command;
  doc["input"] = info.input;
  doc["ok"] = info.ok;

  json::Array artifacts;
  for (const auto& [kind, path] : info.artifacts) {
    json::Object a;
    a["kind"] = kind;
    a["path"] = path;
    artifacts.push_back(std::move(a));
  }
  doc["artifacts"] = std::move(artifacts);

  doc["analysis"] = info.analysis;
  doc["icf"] = info.icf;
  doc["metrics"] = session.metrics != nullptr ? session.metrics->ToJson()
                                              : json::Value(nullptr);
  doc["trace_summary"] = session.trace != nullptr
                             ? SummarizeTrace(session.trace->ToJson())
                             : json::Value(nullptr);
  doc["profile_summary"] = session.profile != nullptr
                               ? SummarizeProfile(*session.profile)
                               : json::Value(nullptr);
  // The tierprof document is small enough to inline whole: the report's
  // deopt-forensics and residency tables render straight from it.
  doc["tierprof"] = session.tierprof != nullptr ? session.tierprof->ToJson()
                                                : json::Value(nullptr);
  return doc;
}

Status ValidateTraceJson(const json::Value& doc) {
  if (!doc.is_object()) {
    return Malformed("trace", "document is not an object");
  }
  const json::Value* events = RequireMember(doc, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Malformed("trace", "missing traceEvents array");
  }
  int spans = 0;
  for (const json::Value& e : events->as_array()) {
    if (!e.is_object()) {
      return Malformed("trace", "traceEvents element is not an object");
    }
    const json::Value* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return Malformed("trace", "event without ph");
    }
    if (ph->as_string() != "X") {
      continue;  // metadata etc.
    }
    ++spans;
    for (const char* key : {"name", "cat"}) {
      const json::Value* v = e.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Malformed("trace", StrCat("span without string ", key));
      }
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const json::Value* v = e.Find(key);
      if (v == nullptr || !IsNumber(*v)) {
        return Malformed("trace", StrCat("span without numeric ", key));
      }
    }
  }
  if (spans == 0) {
    return Malformed("trace", "no complete (ph=X) span events");
  }
  return Status::Ok();
}

Status ValidateMetricsJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kMetricsSchema) {
    return Malformed("metrics", StrCat("schema is not ", kMetricsSchema));
  }
  const json::Value* counters = doc.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Malformed("metrics", "missing counters object");
  }
  // The full fixed taxonomy must be present with integer values.
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    const json::Value* v = counters->Find(name);
    if (v == nullptr || !v->is_int()) {
      return Malformed("metrics", StrCat("missing counter ", name));
    }
  }
  for (const char* key : {"gauges", "histograms"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_object()) {
      return Malformed("metrics", StrCat("missing ", key, " object"));
    }
  }
  for (const auto& [name, hist] : doc.Find("histograms")->as_object()) {
    for (const char* key : {"count", "sum", "min", "max"}) {
      const json::Value* v = hist.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("metrics",
                         StrCat("histogram ", name, " missing ", key));
      }
    }
    const json::Value* buckets = hist.Find("buckets");
    if (buckets == nullptr || !buckets->is_array()) {
      return Malformed("metrics", StrCat("histogram ", name, " missing buckets"));
    }
  }
  return Status::Ok();
}

Status ValidateProfileJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kProfileSchema) {
    return Malformed("profile", StrCat("schema is not ", kProfileSchema));
  }
  const json::Value* totals = doc.Find("totals");
  if (totals == nullptr || !totals->is_object()) {
    return Malformed("profile", "missing totals object");
  }
  for (const char* key : {"sites", "entries", "fences", "atomics", "instrs"}) {
    const json::Value* v = totals->Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("profile", StrCat("totals missing ", key));
    }
  }
  const json::Value* sites = doc.Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Malformed("profile", "missing sites array");
  }
  uint64_t prev_entries = ~0ull;
  for (const json::Value& site : sites->as_array()) {
    const json::Value* function = site.Find("function");
    if (function == nullptr || !function->is_string()) {
      return Malformed("profile", "site without function name");
    }
    for (const char* key :
         {"guest_address", "entries", "fences", "atomics", "instrs"}) {
      const json::Value* v = site.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("profile", StrCat("site missing ", key));
      }
    }
    uint64_t entries = site.Find("entries")->as_uint();
    if (entries > prev_entries) {
      return Malformed("profile", "sites not sorted hottest-first");
    }
    prev_entries = entries;
  }
  return Status::Ok();
}

Status ValidateReportJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kReportSchema) {
    return Malformed("report", StrCat("schema is not ", kReportSchema));
  }
  const json::Value* command = doc.Find("command");
  if (command == nullptr || !command->is_string()) {
    return Malformed("report", "missing command");
  }
  const json::Value* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Malformed("report", "missing ok flag");
  }
  const json::Value* artifacts = doc.Find("artifacts");
  if (artifacts == nullptr || !artifacts->is_array()) {
    return Malformed("report", "missing artifacts array");
  }
  for (const json::Value& a : artifacts->as_array()) {
    for (const char* key : {"kind", "path"}) {
      const json::Value* v = a.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Malformed("report", StrCat("artifact missing ", key));
      }
    }
  }
  const json::Value* metrics = doc.Find("metrics");
  if (metrics == nullptr) {
    return Malformed("report", "missing metrics member");
  }
  if (!metrics->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateMetricsJson(*metrics));
  }
  const json::Value* analysis = doc.Find("analysis");
  if (analysis != nullptr && !analysis->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateAnalysisJson(*analysis));
  }
  const json::Value* tierprof = doc.Find("tierprof");
  if (tierprof != nullptr && !tierprof->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateTierProfJson(*tierprof));
    if (!metrics->is_null()) {
      POLY_RETURN_IF_ERROR(CheckTierAccounting(*metrics, *tierprof));
    }
  }
  const json::Value* icf = doc.Find("icf");
  if (icf != nullptr && !icf->is_null()) {
    POLY_RETURN_IF_ERROR(ValidateIcfJson(*icf));
    if (tierprof != nullptr && !tierprof->is_null()) {
      POLY_RETURN_IF_ERROR(CheckCfgCoverageAccounting(*icf, *tierprof));
    }
    if (!metrics->is_null()) {
      // The runtime counterpart of the tierprof cross-check: the engine
      // bumps this counter whenever an uncovered-edge deopt fires inside a
      // certified function, whether or not a tierprof sink was attached.
      int64_t cert_deopts =
          CounterValue(*metrics, "exec.deopt_uncovered_certified");
      if (cert_deopts > 0) {
        return Malformed(
            "report",
            StrCat("exec.deopt_uncovered_certified is ", cert_deopts,
                   " (must be zero: a CfgCert claim was violated)"));
      }
    }
  }
  if (!metrics->is_null()) {
    POLY_RETURN_IF_ERROR(CheckDeoptCounterAccounting(*metrics));
  }
  return Status::Ok();
}

Status ValidateAnalysisJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kAnalyzeSchema) {
    return Malformed("analysis", StrCat("schema is not ", kAnalyzeSchema));
  }
  for (const char* key :
       {"functions", "accesses", "stack_local", "heap_local", "shared",
        "alloc_sites", "escaped_sites", "heap_witnesses",
        "fences_elided_static", "analyze_ns", "thread_roots",
        "candidate_accesses"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("analysis", StrCat("missing integer ", key));
    }
  }
  for (const char* key : {"conservative_roots", "truncated"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_bool()) {
      return Malformed("analysis", StrCat("missing bool ", key));
    }
  }
  const json::Value* pairs = doc.Find("race_pairs");
  if (pairs == nullptr || !pairs->is_array()) {
    return Malformed("analysis", "missing race_pairs array");
  }
  for (const json::Value& p : pairs->as_array()) {
    for (const char* side : {"a", "b"}) {
      const json::Value* s = p.Find(side);
      if (s == nullptr || !s->is_object()) {
        return Malformed("analysis", StrCat("race pair missing side ", side));
      }
      const json::Value* fn = s->Find("function");
      const json::Value* ga = s->Find("guest_address");
      const json::Value* w = s->Find("write");
      if (fn == nullptr || !fn->is_string() || ga == nullptr ||
          !ga->is_int() || w == nullptr || !w->is_bool()) {
        return Malformed("analysis", "race pair side malformed");
      }
    }
  }
  return Status::Ok();
}

Status ValidateIcfJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kIcfSchema) {
    return Malformed("icf", StrCat("schema is not ", kIcfSchema));
  }
  for (const char* key : {"landing_pads", "sites_total", "sites_proven",
                          "sites_open", "analyze_ns"}) {
    const json::Value* v = doc.Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("icf", StrCat("missing integer ", key));
    }
  }
  int64_t total = doc.Find("sites_total")->as_int();
  int64_t proven = doc.Find("sites_proven")->as_int();
  int64_t open = doc.Find("sites_open")->as_int();
  if (proven + open != total) {
    return Malformed("icf",
                     StrCat("sites_proven (", proven, ") + sites_open (", open,
                            ") != sites_total (", total, ")"));
  }
  const json::Value* covered = doc.Find("covered_functions");
  if (covered == nullptr || !covered->is_array()) {
    return Malformed("icf", "missing covered_functions array");
  }
  for (const json::Value& f : covered->as_array()) {
    const json::Value* entry = f.Find("entry");
    const json::Value* name = f.Find("name");
    if (entry == nullptr || !entry->is_int() || name == nullptr ||
        !name->is_string()) {
      return Malformed("icf", "covered function malformed");
    }
  }
  const json::Value* sites = doc.Find("sites");
  if (sites == nullptr || !sites->is_array()) {
    return Malformed("icf", "missing sites array");
  }
  int64_t proven_seen = 0;
  for (const json::Value& s : sites->as_array()) {
    for (const char* key : {"transfer_address", "function_entry"}) {
      const json::Value* v = s.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("icf", StrCat("site missing integer ", key));
      }
    }
    const json::Value* function = s.Find("function");
    if (function == nullptr || !function->is_string()) {
      return Malformed("icf", "site missing function name");
    }
    for (const char* key : {"call", "proven"}) {
      const json::Value* v = s.Find(key);
      if (v == nullptr || !v->is_bool()) {
        return Malformed("icf", StrCat("site missing bool ", key));
      }
    }
    const json::Value* targets = s.Find("targets");
    if (targets == nullptr || !targets->is_array()) {
      return Malformed("icf", "site missing targets array");
    }
    if (s.Find("proven")->as_bool()) {
      ++proven_seen;
      if (targets->as_array().empty()) {
        return Malformed("icf", "proven site with empty target set");
      }
    }
  }
  if (static_cast<int64_t>(sites->as_array().size()) != total) {
    return Malformed("icf", "sites array length != sites_total");
  }
  if (proven_seen != proven) {
    return Malformed("icf", "proven site rows != sites_proven");
  }
  return Status::Ok();
}

Status ValidateTierProfJson(const json::Value& doc) {
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kTierProfSchema) {
    return Malformed("tierprof", StrCat("schema is not ", kTierProfSchema));
  }
  const json::Value* totals = doc.Find("totals");
  if (totals == nullptr || !totals->is_object()) {
    return Malformed("tierprof", "missing totals object");
  }
  for (const char* key :
       {"functions", "events", "events_dropped", "tier1_translations",
        "tier2_translations", "tier_ups", "osr_entries", "deopts", "flaps"}) {
    const json::Value* v = totals->Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("tierprof", StrCat("totals missing ", key));
    }
  }
  const json::Value* by_reason = totals->Find("deopts_by_reason");
  if (by_reason == nullptr || !by_reason->is_object()) {
    return Malformed("tierprof", "totals missing deopts_by_reason");
  }
  int64_t reason_sum = 0;
  for (const auto& [reason, count] : by_reason->as_object()) {
    if (!count.is_int()) {
      return Malformed("tierprof",
                       StrCat("deopt reason ", reason, " not an integer"));
    }
    reason_sum += count.as_int();
  }
  if (reason_sum != totals->Find("deopts")->as_int()) {
    return Malformed("tierprof",
                     "deopt total != sum of deopts_by_reason histogram");
  }
  const json::Value* residency = totals->Find("residency");
  if (residency == nullptr || !residency->is_object()) {
    return Malformed("tierprof", "totals missing residency");
  }
  for (const char* key : {"tier0", "tier1", "tier2"}) {
    const json::Value* v = residency->Find(key);
    if (v == nullptr || !v->is_int()) {
      return Malformed("tierprof", StrCat("residency missing ", key));
    }
  }
  const json::Value* helpers = totals->Find("helper_calls");
  if (helpers == nullptr || !helpers->is_object()) {
    return Malformed("tierprof", "totals missing helper_calls");
  }
  const json::Value* functions = doc.Find("functions");
  if (functions == nullptr || !functions->is_array()) {
    return Malformed("tierprof", "missing functions array");
  }
  if (static_cast<int64_t>(functions->as_array().size()) !=
      totals->Find("functions")->as_int()) {
    return Malformed("tierprof", "functions array size != totals.functions");
  }
  for (const json::Value& f : functions->as_array()) {
    const json::Value* name = f.Find("name");
    if (name == nullptr || !name->is_string()) {
      return Malformed("tierprof", "function without name");
    }
    for (const char* key : {"entry", "tier_ups", "osr_entries", "flaps"}) {
      const json::Value* v = f.Find(key);
      if (v == nullptr || !v->is_int()) {
        return Malformed("tierprof",
                         StrCat("function ", name->as_string(), " missing ",
                                key));
      }
    }
    for (const char* key : {"residency", "deopts", "helper_calls"}) {
      const json::Value* v = f.Find(key);
      if (v == nullptr || !v->is_object()) {
        return Malformed("tierprof",
                         StrCat("function ", name->as_string(), " missing ",
                                key, " object"));
      }
    }
    const json::Value* deopts = f.Find("deopts");
    int64_t fn_reason_sum = 0;
    for (const auto& [key, count] : deopts->as_object()) {
      if (std::string(key) != "total") {
        fn_reason_sum += count.is_int() ? count.as_int() : 0;
      }
    }
    const json::Value* fn_total = deopts->Find("total");
    if (fn_total == nullptr || !fn_total->is_int() ||
        fn_total->as_int() != fn_reason_sum) {
      return Malformed("tierprof",
                       StrCat("function ", name->as_string(),
                              " deopt total != per-reason sum"));
    }
  }
  const json::Value* threads = doc.Find("threads");
  if (threads == nullptr || !threads->is_array()) {
    return Malformed("tierprof", "missing threads array");
  }
  int64_t retained = 0;
  int64_t dropped = 0;
  for (const json::Value& t : threads->as_array()) {
    const json::Value* tid = t.Find("tid");
    const json::Value* td = t.Find("events_dropped");
    const json::Value* events = t.Find("events");
    if (tid == nullptr || !tid->is_int() || td == nullptr || !td->is_int() ||
        events == nullptr || !events->is_array()) {
      return Malformed("tierprof", "thread entry malformed");
    }
    dropped += td->as_int();
    retained += static_cast<int64_t>(events->as_array().size());
    for (const json::Value& e : events->as_array()) {
      const json::Value* kind = e.Find("kind");
      if (kind == nullptr || !kind->is_string()) {
        return Malformed("tierprof", "event without kind");
      }
      for (const char* key : {"tier", "step", "guest_pc"}) {
        const json::Value* v = e.Find(key);
        if (v == nullptr || !v->is_int()) {
          return Malformed("tierprof", StrCat("event missing ", key));
        }
      }
      if (kind->as_string() == "deopt") {
        const json::Value* reason = e.Find("reason");
        if (reason == nullptr || !reason->is_string()) {
          return Malformed("tierprof", "deopt event without reason");
        }
      }
    }
  }
  // Drop accounting: retained + dropped events must equal the recorded
  // total — overflow is never silent.
  if (retained + dropped != totals->Find("events")->as_int()) {
    return Malformed("tierprof",
                     "retained + dropped events != totals.events");
  }
  if (dropped != totals->Find("events_dropped")->as_int()) {
    return Malformed("tierprof",
                     "per-thread events_dropped != totals.events_dropped");
  }
  const json::Value* code_map = doc.Find("code_map");
  if (code_map == nullptr || !code_map->is_array()) {
    return Malformed("tierprof", "missing code_map array");
  }
  for (const json::Value& r : code_map->as_array()) {
    const json::Value* symbol = r.Find("symbol");
    const json::Value* addr = r.Find("addr");
    const json::Value* size = r.Find("size");
    if (symbol == nullptr || !symbol->is_string() || addr == nullptr ||
        !addr->is_int() || size == nullptr || !size->is_int()) {
      return Malformed("tierprof", "code_map entry malformed");
    }
  }
  return Status::Ok();
}

Expected<std::string> ValidateObsJson(const json::Value& doc) {
  if (doc.Find("traceEvents") != nullptr) {
    POLY_RETURN_IF_ERROR(ValidateTraceJson(doc));
    return std::string("trace");
  }
  const json::Value* schema = doc.Find("schema");
  if (schema != nullptr && schema->is_string()) {
    const std::string& s = schema->as_string();
    if (s == kMetricsSchema) {
      POLY_RETURN_IF_ERROR(ValidateMetricsJson(doc));
      return std::string("metrics");
    }
    if (s == kProfileSchema) {
      POLY_RETURN_IF_ERROR(ValidateProfileJson(doc));
      return std::string("profile");
    }
    if (s == kTierProfSchema) {
      POLY_RETURN_IF_ERROR(ValidateTierProfJson(doc));
      return std::string("tierprof");
    }
    if (s == kIcfSchema) {
      POLY_RETURN_IF_ERROR(ValidateIcfJson(doc));
      return std::string("icf");
    }
    if (s == kReportSchema) {
      POLY_RETURN_IF_ERROR(ValidateReportJson(doc));
      return std::string("report");
    }
  }
  return Status::InvalidArgument(
      "not a polynima observability document (no traceEvents and no known "
      "schema tag)");
}

std::string RenderMetrics(const json::Value& metrics_doc) {
  std::string out;
  out += "counters (non-zero)\n";
  AppendRule(out, 46);
  const json::Value* counters = metrics_doc.Find("counters");
  bool any = false;
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      if (!value.is_int() || value.as_int() == 0) {
        continue;
      }
      any = true;
      char line[96];
      std::snprintf(line, sizeof(line), "  %-32s %12s\n", name.c_str(),
                    FormatCount(value.as_uint()).c_str());
      out += line;
    }
  }
  if (!any) {
    out += "  (all zero)\n";
  }
  const json::Value* gauges = metrics_doc.Find("gauges");
  if (gauges != nullptr && gauges->is_object() &&
      !gauges->as_object().empty()) {
    out += "gauges\n";
    AppendRule(out, 46);
    for (const auto& [name, value] : gauges->as_object()) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %-32s %12lld\n", name.c_str(),
                    static_cast<long long>(value.is_int() ? value.as_int() : 0));
      out += line;
    }
  }
  const json::Value* hists = metrics_doc.Find("histograms");
  if (hists != nullptr && hists->is_object() && !hists->as_object().empty()) {
    out += "histograms\n";
    AppendRule(out, 46);
    for (const auto& [name, hist] : hists->as_object()) {
      const json::Value* count = hist.Find("count");
      const json::Value* sum = hist.Find("sum");
      const json::Value* min = hist.Find("min");
      const json::Value* max = hist.Find("max");
      uint64_t c = count != nullptr && count->is_int() ? count->as_uint() : 0;
      uint64_t s = sum != nullptr && sum->is_int() ? sum->as_uint() : 0;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-24s n=%llu mean=%llu min=%llu max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(c != 0 ? s / c : 0),
                    static_cast<unsigned long long>(
                        min != nullptr && min->is_int() ? min->as_uint() : 0),
                    static_cast<unsigned long long>(
                        max != nullptr && max->is_int() ? max->as_uint() : 0));
      out += line;
    }
  }
  return out;
}

std::string RenderProfile(const json::Value& profile_doc, int top_n) {
  std::string out;
  const json::Value* totals = profile_doc.Find("totals");
  if (totals != nullptr && totals->is_object()) {
    auto get = [&](const char* key) -> uint64_t {
      const json::Value* v = totals->Find(key);
      return v != nullptr && v->is_int() ? v->as_uint() : 0;
    };
    out += StrCat("guest profile: ", get("sites"), " sites, ",
                  FormatCount(get("entries")), " block entries, ",
                  FormatCount(get("instrs")), " instrs, ",
                  FormatCount(get("fences")), " fences, ",
                  FormatCount(get("atomics")), " atomics\n");
  }
  const json::Value* sites = profile_doc.Find("sites");
  if (sites == nullptr || !sites->is_array() || sites->as_array().empty()) {
    out += "  (no sites recorded)\n";
    return out;
  }
  out += StrCat("top ", top_n, " hot blocks\n");
  AppendRule(out, 72);
  out += "  entries      instrs  block\n";
  int shown = 0;
  for (const json::Value& site : sites->as_array()) {
    if (shown++ >= top_n) {
      break;
    }
    auto get = [&](const char* key) -> uint64_t {
      const json::Value* v = site.Find(key);
      return v != nullptr && v->is_int() ? v->as_uint() : 0;
    };
    auto name = [&](const char* key) -> std::string {
      const json::Value* v = site.Find(key);
      return v != nullptr && v->is_string() ? v->as_string() : std::string();
    };
    char line[256];
    std::snprintf(line, sizeof(line), "  %9s %11s  %s:%s @%#llx\n",
                  FormatCount(get("entries")).c_str(),
                  FormatCount(get("instrs")).c_str(), name("function").c_str(),
                  name("block").c_str(),
                  static_cast<unsigned long long>(get("guest_address")));
    out += line;
  }
  // Fence density: fence executions per block entry, highest first, for
  // sites that executed fences at all.
  struct Dense {
    double density;
    uint64_t fences;
    uint64_t entries;
    std::string where;
  };
  std::vector<Dense> dense;
  for (const json::Value& site : sites->as_array()) {
    const json::Value* fences = site.Find("fences");
    const json::Value* entries = site.Find("entries");
    if (fences == nullptr || entries == nullptr || !fences->is_int() ||
        !entries->is_int() || fences->as_uint() == 0) {
      continue;
    }
    uint64_t e = entries->as_uint();
    const json::Value* fn = site.Find("function");
    const json::Value* blk = site.Find("block");
    dense.push_back(
        {e != 0 ? static_cast<double>(fences->as_uint()) / e : 0.0,
         fences->as_uint(), e,
         StrCat(fn != nullptr && fn->is_string() ? fn->as_string() : "", ":",
                blk != nullptr && blk->is_string() ? blk->as_string() : "")});
  }
  std::stable_sort(dense.begin(), dense.end(),
                   [](const Dense& a, const Dense& b) {
                     return a.fences > b.fences;
                   });
  if (!dense.empty()) {
    out += "fence density (fences executed per block entry)\n";
    AppendRule(out, 72);
    out += "   fences     entries  per-entry  block\n";
    int rows = 0;
    for (const Dense& d : dense) {
      if (rows++ >= top_n) {
        break;
      }
      char line[256];
      std::snprintf(line, sizeof(line), "  %8s %11s  %9.2f  %s\n",
                    FormatCount(d.fences).c_str(),
                    FormatCount(d.entries).c_str(), d.density,
                    d.where.c_str());
      out += line;
    }
  }
  return out;
}

std::string RenderTraceSummary(const json::Value& trace_doc) {
  json::Value summary = SummarizeTrace(trace_doc);
  std::string out;
  const json::Value* spans = summary.Find("spans");
  out += StrCat("trace: ",
                spans != nullptr && spans->is_int() ? spans->as_int() : 0,
                " spans\n");
  const json::Value* categories = summary.Find("categories");
  if (categories != nullptr && categories->is_object()) {
    for (const auto& [name, count] : categories->as_object()) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %-16s %8lld\n", name.c_str(),
                    static_cast<long long>(count.is_int() ? count.as_int()
                                                          : 0));
      out += line;
    }
  }
  return out;
}

std::string RenderTierProf(const json::Value& tierprof_doc, int top_n) {
  std::string out;
  const json::Value* totals = tierprof_doc.Find("totals");
  auto total = [&](const char* key) -> uint64_t {
    if (totals == nullptr) {
      return 0;
    }
    const json::Value* v = totals->Find(key);
    return v != nullptr && v->is_int() ? v->as_uint() : 0;
  };
  out += StrCat("tier telemetry: ", total("functions"), " functions, ",
                FormatCount(total("events")), " events (",
                FormatCount(total("events_dropped")), " dropped), ",
                total("tier1_translations"), " t1 + ",
                total("tier2_translations"), " t2 translations, ",
                total("tier_ups"), " tier-ups, ", total("osr_entries"),
                " OSR entries, ", FormatCount(total("deopts")), " deopts, ",
                total("flaps"), " flaps\n");
  if (totals != nullptr) {
    if (const json::Value* residency = totals->Find("residency")) {
      auto tier = [&](const char* key) -> uint64_t {
        const json::Value* v = residency->Find(key);
        return v != nullptr && v->is_int() ? v->as_uint() : 0;
      };
      out += StrCat("residency (steps retired): tier0=", tier("tier0"),
                    " tier1=", tier("tier1"), " tier2=", tier("tier2"), "\n");
    }
  }
  // Per-function residency timeline, hottest first (input is pre-sorted).
  const json::Value* functions = tierprof_doc.Find("functions");
  if (functions != nullptr && functions->is_array() &&
      !functions->as_array().empty()) {
    out += StrCat("tier residency by function (top ", top_n, ")\n");
    AppendRule(out, 78);
    out += "      tier0       tier1       tier2  deopts  flaps  function\n";
    int shown = 0;
    for (const json::Value& f : functions->as_array()) {
      if (shown++ >= top_n) {
        break;
      }
      auto num = [&](const char* obj, const char* key) -> uint64_t {
        const json::Value* o = f.Find(obj);
        const json::Value* v = o != nullptr ? o->Find(key) : nullptr;
        return v != nullptr && v->is_int() ? v->as_uint() : 0;
      };
      const json::Value* name = f.Find("name");
      const json::Value* flaps = f.Find("flaps");
      char line[256];
      std::snprintf(
          line, sizeof(line), "  %9s %11s %11s %7s %6llu  %s\n",
          FormatCount(num("residency", "tier0")).c_str(),
          FormatCount(num("residency", "tier1")).c_str(),
          FormatCount(num("residency", "tier2")).c_str(),
          FormatCount(num("deopts", "total")).c_str(),
          static_cast<unsigned long long>(
              flaps != nullptr && flaps->is_int() ? flaps->as_uint() : 0),
          name != nullptr && name->is_string() ? name->as_string().c_str()
                                               : "?");
      out += line;
    }
  }
  // Deopt forensics: the reason histogram, then the retained per-thread
  // deopt events (most recent window; drops are accounted above).
  if (totals != nullptr && total("deopts") != 0) {
    if (const json::Value* by_reason = totals->Find("deopts_by_reason")) {
      if (by_reason->is_object()) {
        out += "deopt reasons\n";
        AppendRule(out, 46);
        for (const auto& [reason, count] : by_reason->as_object()) {
          char line[96];
          std::snprintf(line, sizeof(line), "  %-24s %12s\n", reason.c_str(),
                        FormatCount(count.is_int() ? count.as_uint() : 0)
                            .c_str());
          out += line;
        }
      }
    }
    const json::Value* threads = tierprof_doc.Find("threads");
    if (threads != nullptr && threads->is_array()) {
      int rows = 0;
      std::string table;
      for (const json::Value& t : threads->as_array()) {
        const json::Value* tid = t.Find("tid");
        const json::Value* events = t.Find("events");
        if (events == nullptr || !events->is_array()) {
          continue;
        }
        for (const json::Value& e : events->as_array()) {
          const json::Value* kind = e.Find("kind");
          if (kind == nullptr || !kind->is_string() ||
              kind->as_string() != "deopt") {
            continue;
          }
          if (rows++ >= top_n) {
            continue;  // keep counting for the truncation note
          }
          auto num = [&](const char* key) -> uint64_t {
            const json::Value* v = e.Find(key);
            return v != nullptr && v->is_int() ? v->as_uint() : 0;
          };
          auto str = [&](const char* key) -> std::string {
            const json::Value* v = e.Find(key);
            return v != nullptr && v->is_string() ? v->as_string()
                                                  : std::string("?");
          };
          char line[256];
          std::snprintf(line, sizeof(line),
                        "  %10s  t%llu  tid=%lld  %-14s %s @%#llx\n",
                        FormatCount(num("step")).c_str(),
                        static_cast<unsigned long long>(num("tier")),
                        static_cast<long long>(
                            tid != nullptr && tid->is_int() ? tid->as_int()
                                                            : -1),
                        str("reason").c_str(), str("func").c_str(),
                        static_cast<unsigned long long>(num("guest_pc")));
          table += line;
        }
      }
      if (!table.empty()) {
        out += "deopt events (step, resident tier, thread, reason, site)\n";
        AppendRule(out, 78);
        out += table;
        if (rows > top_n) {
          out += StrCat("  ... ", rows - top_n, " more in the artifact\n");
        }
      }
    }
  }
  // Tier-2 helper-call overhead: out-of-line helpers invoked per function.
  if (const json::Value* helpers =
          totals != nullptr ? totals->Find("helper_calls") : nullptr) {
    if (helpers->is_object()) {
      uint64_t helper_sum = 0;
      for (const auto& [name, count] : helpers->as_object()) {
        helper_sum += count.is_int() ? count.as_uint() : 0;
      }
      if (helper_sum != 0) {
        out += "tier-2 helper calls (out-of-line)\n";
        AppendRule(out, 46);
        for (const auto& [name, count] : helpers->as_object()) {
          if (!count.is_int() || count.as_int() == 0) {
            continue;
          }
          char line[96];
          std::snprintf(line, sizeof(line), "  %-24s %12s\n", name.c_str(),
                        FormatCount(count.as_uint()).c_str());
          out += line;
        }
      }
    }
  }
  return out;
}

std::string RenderReport(const json::Value& report_doc, int top_n) {
  std::string out;
  auto str = [&](const char* key) -> std::string {
    const json::Value* v = report_doc.Find(key);
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  const json::Value* ok = report_doc.Find("ok");
  out += StrCat("polynima run report: command=", str("command"),
                " input=", str("input"), " ok=",
                ok != nullptr && ok->is_bool() && ok->as_bool() ? "true"
                                                                : "false",
                "\n");
  const json::Value* artifacts = report_doc.Find("artifacts");
  if (artifacts != nullptr && artifacts->is_array() &&
      !artifacts->as_array().empty()) {
    out += "artifacts\n";
    for (const json::Value& a : artifacts->as_array()) {
      const json::Value* kind = a.Find("kind");
      const json::Value* path = a.Find("path");
      out += StrCat(
          "  ", kind != nullptr && kind->is_string() ? kind->as_string() : "",
          ": ", path != nullptr && path->is_string() ? path->as_string() : "",
          "\n");
    }
  }
  const json::Value* analysis = report_doc.Find("analysis");
  if (analysis != nullptr && analysis->is_object()) {
    auto num = [&](const char* key) -> int64_t {
      const json::Value* v = analysis->Find(key);
      return v != nullptr && v->is_int() ? v->as_int() : 0;
    };
    out += StrCat("analysis: ", num("accesses"), " accesses (",
                  num("stack_local"), " stack-local, ", num("heap_local"),
                  " heap-local, ", num("shared"), " shared), ",
                  num("escaped_sites"), "/", num("alloc_sites"),
                  " sites escaped, ", num("fences_elided_static"),
                  " fences elided statically\n");
    const json::Value* pairs = analysis->Find("race_pairs");
    if (pairs != nullptr && pairs->is_array() && !pairs->as_array().empty()) {
      out += StrCat("race pairs (", pairs->as_array().size(), ")\n");
      for (const json::Value& p : pairs->as_array()) {
        auto side = [&](const char* key) -> std::string {
          const json::Value* s = p.Find(key);
          if (s == nullptr || !s->is_object()) {
            return "?";
          }
          const json::Value* fn = s->Find("function");
          const json::Value* ga = s->Find("guest_address");
          const json::Value* w = s->Find("write");
          return StrCat(
              fn != nullptr && fn->is_string() ? fn->as_string() : "?", "@",
              HexString(ga != nullptr && ga->is_int() ? ga->as_uint() : 0),
              w != nullptr && w->is_bool() && w->as_bool() ? " W" : " R");
        };
        const json::Value* reason = p.Find("reason");
        out += StrCat("  ", side("a"), " <-> ", side("b"),
                      reason != nullptr && reason->is_string()
                          ? StrCat(" (", reason->as_string(), ")")
                          : "",
                      "\n");
      }
    }
  }
  const json::Value* icf = report_doc.Find("icf");
  if (icf != nullptr && icf->is_object()) {
    auto num = [&](const char* key) -> int64_t {
      const json::Value* v = icf->Find(key);
      return v != nullptr && v->is_int() ? v->as_int() : 0;
    };
    const json::Value* covered = icf->Find("covered_functions");
    size_t covered_n = covered != nullptr && covered->is_array()
                           ? covered->as_array().size()
                           : 0;
    out += StrCat("indirect coverage: ", num("landing_pads"),
                  " landing pads, ", num("sites_total"), " sites (",
                  num("sites_proven"), " proven, ", num("sites_open"),
                  " open), ", covered_n, " fully-covered function",
                  covered_n == 1 ? "" : "s", "\n");
    const json::Value* sites = icf->Find("sites");
    if (sites != nullptr && sites->is_array() && !sites->as_array().empty()) {
      for (const json::Value& s : sites->as_array()) {
        const json::Value* ta = s.Find("transfer_address");
        const json::Value* fn = s.Find("function");
        const json::Value* call = s.Find("call");
        const json::Value* proven = s.Find("proven");
        const json::Value* targets = s.Find("targets");
        const json::Value* reason = s.Find("reason");
        bool is_proven =
            proven != nullptr && proven->is_bool() && proven->as_bool();
        out += StrCat(
            "  ", HexString(ta != nullptr && ta->is_int() ? ta->as_uint() : 0),
            " ", call != nullptr && call->is_bool() && call->as_bool()
                     ? "call"
                     : "jump",
            " in ", fn != nullptr && fn->is_string() ? fn->as_string() : "?",
            ": ",
            is_proven
                ? StrCat("proven (",
                         targets != nullptr && targets->is_array()
                             ? targets->as_array().size()
                             : 0,
                         " targets)")
                : StrCat("open",
                         reason != nullptr && reason->is_string() &&
                                 !reason->as_string().empty()
                             ? StrCat(" (", reason->as_string(), ")")
                             : ""),
            "\n");
      }
    }
  }
  const json::Value* trace_summary = report_doc.Find("trace_summary");
  if (trace_summary != nullptr && trace_summary->is_object()) {
    // Re-render from the summary shape (same keys SummarizeTrace emits).
    const json::Value* spans = trace_summary->Find("spans");
    out += StrCat("trace: ",
                  spans != nullptr && spans->is_int() ? spans->as_int() : 0,
                  " spans\n");
    const json::Value* categories = trace_summary->Find("categories");
    if (categories != nullptr && categories->is_object()) {
      for (const auto& [name, count] : categories->as_object()) {
        char line[96];
        std::snprintf(line, sizeof(line), "  %-16s %8lld\n", name.c_str(),
                      static_cast<long long>(count.is_int() ? count.as_int()
                                                            : 0));
        out += line;
      }
    }
  }
  const json::Value* metrics = report_doc.Find("metrics");
  if (metrics != nullptr && metrics->is_object()) {
    out += RenderMetrics(*metrics);
  }
  const json::Value* tierprof = report_doc.Find("tierprof");
  if (tierprof != nullptr && tierprof->is_object()) {
    out += RenderTierProf(*tierprof, top_n);
  }
  const json::Value* profile_summary = report_doc.Find("profile_summary");
  if (profile_summary != nullptr && profile_summary->is_object()) {
    const json::Value* totals = profile_summary->Find("totals");
    if (totals != nullptr && totals->is_object()) {
      json::Object wrapper;
      wrapper["schema"] = kProfileSchema;
      wrapper["totals"] = *totals;
      json::Array sites;
      if (const json::Value* hottest = profile_summary->Find("hottest")) {
        if (hottest->is_object()) {
          sites.push_back(*hottest);
        }
      }
      wrapper["sites"] = std::move(sites);
      out += RenderProfile(wrapper, top_n);
    }
  }
  return out;
}

}  // namespace polynima::obs
