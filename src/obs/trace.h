// Structured span tracing (the first pillar of src/obs, DESIGN.md §4d).
//
// A TraceSink collects timestamped, thread-attributed span events and writes
// them as Chrome `trace_event` JSON — loadable in about:tracing / Perfetto —
// so one `--trace-out=pipeline.json` run visually exposes the recompile
// pipeline: per-worker-thread lanes for the lift/optimize jobs, cache-hit
// skips (absent spans), and the critical path.
//
// Span is the RAII instrumentation primitive: construction records the start
// timestamp, destruction emits one complete ("ph":"X") event. Every API is a
// no-op when the sink pointer is null, so the disabled cost at an
// instrumentation point is one branch on a null pointer — the overhead
// contract the recompile hot paths rely on.
//
// Thread lanes: each OS thread gets a stable small integer lane id (assigned
// process-wide on first use); the sink emits `thread_name` metadata records
// so the viewer labels lanes "main" / "worker-N".
#ifndef POLYNIMA_OBS_TRACE_H_
#define POLYNIMA_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/support/json.h"
#include "src/support/status.h"

namespace polynima::obs {

// Stable per-OS-thread lane id: 0 for the first thread that asks (the main
// thread in practice), then 1, 2, ... in first-use order.
int CurrentThreadLane();

struct TraceEvent {
  std::string name;
  const char* category = "";  // must point at a string literal
  uint64_t start_ns = 0;      // relative to the sink's epoch
  uint64_t duration_ns = 0;
  int lane = 0;
  // Optional per-span arguments, rendered under "args" in the viewer.
  std::vector<std::pair<std::string, int64_t>> args;
};

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Nanoseconds since the sink was created (steady clock).
  uint64_t NowNs() const;

  void Record(TraceEvent event);

  size_t event_count() const;

  // `{"traceEvents": [...], "displayTimeUnit": "ms"}` with thread_name
  // metadata records for every lane that appears. Timestamps are emitted in
  // microseconds (Chrome's unit) with nanosecond precision kept as decimals.
  json::Value ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span: records [construction, destruction) as one complete event on
// the current thread's lane. All methods tolerate a null sink.
class Span {
 public:
  // `category` must be a string literal (kept by pointer).
  Span(TraceSink* sink, const char* category, std::string name)
      : sink_(sink) {
    if (sink_ != nullptr) {
      event_.name = std::move(name);
      event_.category = category;
      event_.start_ns = sink_->NowNs();
    }
  }
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches a counter argument shown in the viewer's span details.
  void Arg(const char* key, int64_t value) {
    if (sink_ != nullptr) {
      event_.args.emplace_back(key, value);
    }
  }

  // Ends the span early (idempotent; the destructor becomes a no-op).
  void End() {
    if (sink_ == nullptr) {
      return;
    }
    event_.duration_ns = sink_->NowNs() - event_.start_ns;
    event_.lane = CurrentThreadLane();
    sink_->Record(std::move(event_));
    sink_ = nullptr;
  }

 private:
  TraceSink* sink_;
  TraceEvent event_;
};

}  // namespace polynima::obs

#endif  // POLYNIMA_OBS_TRACE_H_
