// Session plumbing, run reports, validators, and text renderers for the
// observability layer (DESIGN.md §4d).
//
// obs::Session is the single handle every pipeline stage receives: four
// optional sinks (trace, metrics, guest profile, tier telemetry), all
// nullable. The helpers here make the disabled path a branch on a null
// pointer, so stages can instrument unconditionally.
//
// Everything the layer emits exits through five machine-readable documents:
//   polynima-trace     Chrome trace_event JSON        (TraceSink::ToJson)
//   polynima-metrics/v1  merged counter/gauge/histogram dump
//   polynima-profile/v1  per-block guest execution profile
//   polynima-tierprof/v1 JIT lifecycle / tier-residency telemetry
//   polynima-report/v1   one RunReport tying a run's artifacts together
// ValidateX() functions check structural well-formedness (used by
// `polynima report --validate`, the obs tests, and scripts/ci.sh);
// RenderX() functions produce the human tables `polynima report` prints.
#ifndef POLYNIMA_OBS_REPORT_H_
#define POLYNIMA_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/tierprof.h"
#include "src/obs/trace.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace polynima::obs {

// Borrowed, nullable sinks; a default-constructed Session disables all four
// pillars. Copy freely — it is four pointers.
struct Session {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  GuestProfile* profile = nullptr;
  TierProf* tierprof = nullptr;

  bool enabled() const {
    return trace != nullptr || metrics != nullptr || profile != nullptr ||
           tierprof != nullptr;
  }

  // Null-tolerant metric helpers so call sites stay one-liners.
  void Add(Counter c, uint64_t n = 1) const {
    if (metrics != nullptr) {
      metrics->Add(c, n);
    }
  }
  void Observe(Histogram h, uint64_t value) const {
    if (metrics != nullptr) {
      metrics->Observe(h, value);
    }
  }
  void SetGauge(const std::string& name, int64_t value) const {
    if (metrics != nullptr) {
      metrics->SetGauge(name, value);
    }
  }
};

// Inputs for BuildRunReport beyond what the Session itself holds.
struct RunInfo {
  std::string command;  // CLI subcommand, e.g. "recompile"
  std::string input;    // primary input artifact (binary / CFG path)
  bool ok = true;       // whether the run succeeded
  // (kind, path) of every sidecar file the run wrote, e.g.
  // ("trace", "t.json"), ("metrics", "m.json"), ("output", "out.cfg.json").
  std::vector<std::pair<std::string, std::string>> artifacts;
  // Optional polynima-analyze/v1 section (analyze::AnalysisResult::ToJson);
  // null when the run did not perform static concurrency analysis.
  json::Value analysis;
  // Optional polynima-icf/v1 section (analyze::IcfResult::ToJson); null when
  // the run did not perform sound indirect control-flow recovery
  // (--cfg-sound). When both this and the tierprof section are present,
  // ValidateReportJson cross-checks them: a function listed in
  // covered_functions must show zero uncovered-edge deopts.
  json::Value icf;
};

// Builds the polynima-report/v1 document: run info, artifact paths, the full
// merged metrics dump (inline), a trace summary (event/category counts), a
// profile summary (totals + hottest site), and the full tierprof document
// when those sinks are present.
json::Value BuildRunReport(const RunInfo& info, const Session& session);

// Structural validators. Each returns OK iff the document has the required
// shape AND is non-trivial (a trace must contain at least one span; metrics
// must carry the full counter taxonomy). Used to fail CI on malformed or
// empty observability output.
Status ValidateTraceJson(const json::Value& doc);
Status ValidateMetricsJson(const json::Value& doc);
Status ValidateProfileJson(const json::Value& doc);
Status ValidateReportJson(const json::Value& doc);
// polynima-analyze/v1 (the report's optional "analysis" section, also
// validated as part of ValidateReportJson when present).
Status ValidateAnalysisJson(const json::Value& doc);
// polynima-tierprof/v1 (the report's optional "tierprof" section, also
// validated as part of ValidateReportJson when present, including the
// accounting invariants against the inline exec.* counters).
Status ValidateTierProfJson(const json::Value& doc);
// polynima-icf/v1 (the report's optional "icf" section, also validated as
// part of ValidateReportJson when present; there it is additionally
// cross-checked against the tierprof section — CfgCert-covered functions
// must report zero uncovered-edge deopts — and against the metrics dump —
// exec.deopt_uncovered_certified must be zero).
Status ValidateIcfJson(const json::Value& doc);

// Sniffs which of the document kinds `doc` is and validates it. Returns the
// kind ("trace", "metrics", "profile", "tierprof", "icf", "report") on
// success.
Expected<std::string> ValidateObsJson(const json::Value& doc);

// Human-readable renderers for `polynima report`.
std::string RenderMetrics(const json::Value& metrics_doc);
std::string RenderProfile(const json::Value& profile_doc, int top_n);
std::string RenderTraceSummary(const json::Value& trace_doc);
std::string RenderTierProf(const json::Value& tierprof_doc, int top_n);
std::string RenderReport(const json::Value& report_doc, int top_n);

}  // namespace polynima::obs

#endif  // POLYNIMA_OBS_REPORT_H_
