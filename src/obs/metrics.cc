#include "src/obs/metrics.h"

#include "src/support/check.h"

namespace polynima::obs {

namespace {

// Indexed by Counter. The "<subsystem>.<metric>" names are the stable wire
// format: the report schema, the CI validator and EXPERIMENTS.md baselines
// all key on them.
const char* const kCounterNames[] = {
    "lift.functions_lifted",
    "lift.functions_cached",
    "lift.bytes_decoded",
    "lift.ir_instrs",
    "fenceopt.fences_inserted",
    "fenceopt.fences_elided",
    "fenceopt.fences_retained",
    "fenceopt.witness_stack",
    "fenceopt.loops_analyzed",
    "fenceopt.loops_spinning",
    "check.accesses_checked",
    "check.obligations_discharged",
    "check.paths_explored",
    "check.witnesses_verified",
    "check.violations",
    "analyze.accesses_classified",
    "analyze.stack_local",
    "analyze.heap_local",
    "analyze.shared",
    "analyze.escaped_sites",
    "analyze.race_pairs",
    "analyze.fences_elided_static",
    "opt.functions_optimized",
    "opt.pass_iterations",
    "sched.schedules_run",
    "sched.decisions",
    "sched.preemptions",
    "sched.change_points",
    "exec.guest_instrs",
    "exec.atomics",
    "exec.fences",
    "exec.ext_calls",
    "exec.dispatches",
    "exec.faults",
    "exec.tier1_translations",
    "exec.tier1_instrs",
    "exec.tier2_translations",
    "exec.tier2_instrs",
    "exec.deopts",
    "exec.deopt_preempt",
    "exec.deopt_smc_write",
    "exec.deopt_uncovered",
    "exec.deopt_uncovered_certified",
    "vm.instrs",
    "vm.atomics",
    "vm.faults",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
                  static_cast<size_t>(Counter::kNumCounters),
              "kCounterNames out of sync with the Counter enum");

const char* const kHistogramNames[] = {
    "lift.function_ns",
    "opt.function_ns",
    "analyze.function_ns",
};
static_assert(sizeof(kHistogramNames) / sizeof(kHistogramNames[0]) ==
                  static_cast<size_t>(Histogram::kNumHistograms),
              "kHistogramNames out of sync with the Histogram enum");

int BucketOf(uint64_t value) {
  int b = 0;
  while (value > 1 && b < 63) {
    value >>= 1;
    ++b;
  }
  return b;
}

std::atomic<uint64_t> g_next_registry_id{1};

}  // namespace

const char* CounterName(Counter c) {
  POLY_CHECK_LT(static_cast<int>(c), static_cast<int>(Counter::kNumCounters));
  return kCounterNames[static_cast<int>(c)];
}

const char* HistogramName(Histogram h) {
  POLY_CHECK_LT(static_cast<int>(h),
                static_cast<int>(Histogram::kNumHistograms));
  return kHistogramNames[static_cast<int>(h)];
}

MetricsRegistry::Shard::Shard() {
  for (auto& c : counters) {
    c.store(0, std::memory_order_relaxed);
  }
  for (auto& h : hists) {
    for (auto& b : h.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  // One cached (registry id -> shard) pair per thread: re-resolved when the
  // thread first touches a different registry. Registry ids are process-
  // unique, so a stale cache entry can never alias a new registry.
  struct Cache {
    uint64_t registry_id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.registry_id != id_) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    cache.registry_id = id_;
    cache.shard = shards_.back().get();
  }
  return cache.shard;
}

void MetricsRegistry::Add(Counter c, uint64_t n) {
  LocalShard()->counters[static_cast<int>(c)].fetch_add(
      n, std::memory_order_relaxed);
}

void MetricsRegistry::Observe(Histogram h, uint64_t value) {
  Shard::Hist& hist = LocalShard()->hists[static_cast<int>(h)];
  hist.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  hist.sum.fetch_add(value, std::memory_order_relaxed);
  // Per-shard min/max are single-writer; a plain CAS-free update suffices.
  if (value < hist.min.load(std::memory_order_relaxed)) {
    hist.min.store(value, std::memory_order_relaxed);
  }
  if (value > hist.max.load(std::memory_order_relaxed)) {
    hist.max.store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::SetGauge(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

uint64_t MetricsRegistry::CounterValue(Counter c) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counters[static_cast<int>(c)].load(
        std::memory_order_relaxed);
  }
  return total;
}

json::Value MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  for (int i = 0; i < static_cast<int>(Counter::kNumCounters); ++i) {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    counters[kCounterNames[i]] = total;
  }
  json::Object gauges;
  for (const auto& [name, value] : gauges_) {
    gauges[name] = value;
  }
  json::Object histograms;
  for (int i = 0; i < static_cast<int>(Histogram::kNumHistograms); ++i) {
    uint64_t count = 0, sum = 0, min = ~0ull, max = 0;
    uint64_t buckets[kHistogramBuckets] = {0};
    for (const auto& shard : shards_) {
      const Shard::Hist& h = shard->hists[i];
      count += h.count.load(std::memory_order_relaxed);
      sum += h.sum.load(std::memory_order_relaxed);
      min = std::min(min, h.min.load(std::memory_order_relaxed));
      max = std::max(max, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistogramBuckets; ++b) {
        buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (count == 0) {
      continue;  // empty histograms are omitted, unlike counters
    }
    json::Object hist;
    hist["count"] = count;
    hist["sum"] = sum;
    hist["min"] = min;
    hist["max"] = max;
    int top = kHistogramBuckets;
    while (top > 1 && buckets[top - 1] == 0) {
      --top;
    }
    json::Array bucket_array;
    for (int b = 0; b < top; ++b) {
      bucket_array.push_back(buckets[b]);
    }
    hist["buckets"] = std::move(bucket_array);
    histograms[kHistogramNames[i]] = std::move(hist);
  }
  json::Object doc;
  doc["schema"] = "polynima-metrics/v1";
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return doc;
}

Status MetricsRegistry::WriteTo(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

}  // namespace polynima::obs
