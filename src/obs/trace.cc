#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>

#include "src/support/strings.h"

namespace polynima::obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<int> g_next_lane{0};

}  // namespace

int CurrentThreadLane() {
  thread_local int lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

TraceSink::TraceSink() : epoch_ns_(SteadyNowNs()) {}

uint64_t TraceSink::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void TraceSink::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

json::Value TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Array trace_events;
  trace_events.reserve(events_.size() + 8);
  std::map<int, bool> lanes;
  for (const TraceEvent& e : events_) {
    lanes[e.lane] = true;
    json::Object ev;
    ev["name"] = e.name;
    ev["cat"] = e.category;
    ev["ph"] = "X";
    // Chrome expects microseconds; keep ns precision in the fraction.
    ev["ts"] = static_cast<double>(e.start_ns) / 1000.0;
    ev["dur"] = static_cast<double>(e.duration_ns) / 1000.0;
    ev["pid"] = 1;
    ev["tid"] = e.lane;
    if (!e.args.empty()) {
      json::Object args;
      for (const auto& [key, value] : e.args) {
        args[key] = value;
      }
      ev["args"] = std::move(args);
    }
    trace_events.push_back(std::move(ev));
  }
  for (const auto& [lane, unused] : lanes) {
    json::Object meta;
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = lane;
    json::Object args;
    args["name"] = lane == 0 ? std::string("main") : StrCat("worker-", lane);
    meta["args"] = std::move(args);
    trace_events.push_back(std::move(meta));
  }
  json::Object doc;
  doc["traceEvents"] = std::move(trace_events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

Status TraceSink::WriteTo(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

}  // namespace polynima::obs
