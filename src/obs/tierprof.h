// Execution-tier telemetry (DESIGN.md §4h): JIT lifecycle events,
// tier-residency attribution, deopt forensics, and native-code perf hooks.
//
// TierProf is the fourth obs pillar, consumed by the tiered exec engine
// (src/exec): a bounded per-thread ring buffer of JIT lifecycle events
// (translation begin/end with unit count and wall time, heat-threshold
// tier-up, OSR entry, and every deoptimization tagged with reason, guest pc
// and resident tier) plus incremental per-function aggregates that stay
// exact even when the ring overflows — the ring is a forensic window into
// *when* things happened; the aggregates are the accounting record of *how
// often*. Overflow never silently truncates: each thread carries an explicit
// `events_dropped` counter surfaced in the artifact.
//
// Residency attribution (guest steps retired per tier per function) and
// tier-2 helper-call counts are folded in by the engine at session end from
// scratch counters it bumps inline, so the per-step hot path stays an array
// increment and the disabled path costs nothing (the engine's obs-off
// template specialization compiles the checks out entirely).
//
// Output: a `polynima-tierprof/v1` JSON artifact (ToJson/WriteTo) and a
// Linux perf-compatible map file (PerfMapText/WritePerfMap) mapping each
// installed vm::CodeBuffer range to a `tierN:<function>` symbol, so external
// profilers can attribute native samples to guest functions.
//
// Like GuestProfile, TierProf is IR-ignorant (names/addresses only, so
// src/obs stays a leaf library) and not thread-safe (the exec engine is
// single-threaded; guest threads are simulated).
#ifndef POLYNIMA_OBS_TIERPROF_H_
#define POLYNIMA_OBS_TIERPROF_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/json.h"
#include "src/support/status.h"

namespace polynima::obs {

class TierProf {
 public:
  enum class EventKind : uint8_t {
    kTranslate = 0,  // a tier finished translating a function
    kTierUp,         // heat crossed a threshold; frame promoted
    kOsrEntry,       // promotion entered mid-function (on-stack replacement)
    kDeopt,          // a guard transferred the frame back to tier 0
    kNumKinds,
  };
  static const char* EventKindName(EventKind kind);

  // Deopt reasons, mirroring exec::DeoptReason (obs cannot include exec).
  // The engine passes the raw enum value; kept in sync by a static_assert
  // at the engine wiring site.
  enum DeoptReason : uint8_t {
    kDeoptPreempt = 0,
    kDeoptSmcWrite,
    kDeoptUncoveredEdge,
    kNumDeoptReasons,
  };
  static const char* DeoptReasonName(uint8_t reason);

  // Tier-2 runtime helpers whose per-function call counts quantify the
  // native tier's out-of-line overhead (the guest-memory fast-path
  // evidence base).
  enum Helper : uint8_t {
    kHelperMemRead = 0,
    kHelperMemWrite,
    kHelperAtomicRmw,
    kHelperCmpXchg,
    kHelperFence,
    kNumHelpers,
  };
  static const char* HelperName(uint8_t helper);

  static constexpr int kNumTiers = 3;

  struct Event {
    EventKind kind = EventKind::kTranslate;
    uint8_t tier = 0;    // tier translated / promoted to / resident at deopt
    uint8_t reason = 0;  // DeoptReason (kDeopt only)
    int tid = 0;         // guest thread the event occurred on
    uint32_t func = 0;   // interned function id
    uint64_t guest_pc = 0;  // deopt anchor / OSR block / function entry
    uint64_t step = 0;      // engine step count when the event fired
    uint64_t units = 0;     // translate: TInsts (t1) or code bytes (t2);
                            // tier-up: heat at promotion
    uint64_t wall_ns = 0;   // translate: host wall time spent translating
  };

  // Per-function aggregates, updated incrementally on every Record* call
  // (never reconstructed from the lossy ring).
  struct FnStats {
    std::string name;
    uint64_t entry = 0;  // guest entry address (0 if synthetic)
    uint64_t translations[kNumTiers] = {};
    uint64_t translate_units[kNumTiers] = {};
    uint64_t translate_wall_ns[kNumTiers] = {};
    uint64_t tier_ups[kNumTiers] = {};
    uint64_t osr_entries[kNumTiers] = {};
    uint64_t deopts[kNumDeoptReasons] = {};
    // Tier-up events that re-promote a function after it deopted: a
    // tier-up -> deopt -> tier-up cycle (tier flapping).
    uint64_t flaps = 0;
    // Guest steps retired while this function was resident in each tier
    // (folded in by the engine at session end).
    uint64_t residency[kNumTiers] = {};
    // Tier-2 out-of-line helper invocations attributed to this function.
    uint64_t helper_calls[kNumHelpers] = {};
    bool deopted_since_tier_up = false;  // flap-detection state
  };

  struct InstalledRange {
    std::string symbol;  // "tierN:<function>"
    uint64_t addr = 0;
    uint64_t size = 0;
  };

  // `ring_capacity` bounds each per-thread event ring; older events are
  // overwritten on overflow and counted in that thread's events_dropped.
  explicit TierProf(size_t ring_capacity = kDefaultRingCapacity);

  static constexpr size_t kDefaultRingCapacity = 4096;

  // Registers a function once and returns its dense id.
  uint32_t InternFunction(std::string name, uint64_t entry);

  void RecordTranslation(int tid, uint32_t func, int tier, uint64_t units,
                         uint64_t wall_ns, uint64_t step);
  void RecordTierUp(int tid, uint32_t func, int tier, uint64_t heat,
                    uint64_t step);
  void RecordOsrEntry(int tid, uint32_t func, int tier, uint64_t guest_pc,
                      uint64_t step);
  void RecordDeopt(int tid, uint32_t func, int resident_tier, uint8_t reason,
                   uint64_t guest_pc, uint64_t step);

  // Session-end folds from the engine's inline scratch counters.
  void AddResidency(uint32_t func, int tier, uint64_t steps);
  void AddHelperCalls(uint32_t func, uint8_t helper, uint64_t n);

  // Registers an installed native-code range for the perf map.
  void RecordInstall(std::string symbol, const void* addr, size_t size);

  const std::vector<FnStats>& functions() const { return functions_; }
  const std::vector<InstalledRange>& installed() const { return installed_; }
  uint64_t events_recorded() const { return events_recorded_; }
  uint64_t events_dropped() const;

  // Linux perf map format: one "<hex-addr> <hex-size> <symbol>" line per
  // installed range (the /tmp/perf-<pid>.map convention).
  std::string PerfMapText() const;
  Status WritePerfMap(const std::string& path) const;

  // {"schema": "polynima-tierprof/v1", "totals": {...}, "functions": [...],
  //  "threads": [...], "code_map": [...]}; functions sorted by total
  // residency, hottest first.
  json::Value ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  struct ThreadRing {
    std::vector<Event> events;  // ring storage, capacity-bounded
    size_t next = 0;            // write cursor once full
    uint64_t dropped = 0;       // events overwritten (ring overflow)
  };

  void Push(const Event& ev);

  size_t ring_capacity_;
  std::vector<FnStats> functions_;
  std::map<int, ThreadRing> rings_;  // keyed by guest tid (ordered output)
  std::vector<InstalledRange> installed_;
  uint64_t events_recorded_ = 0;
};

}  // namespace polynima::obs

#endif  // POLYNIMA_OBS_TIERPROF_H_
