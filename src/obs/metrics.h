// Metrics registry (the second pillar of src/obs, DESIGN.md §4d).
//
// A small FIXED taxonomy of counters and histograms — one enum entry per
// metric, named "<subsystem>.<metric>" — plus free-form gauges for run
// configuration (jobs, seeds). The taxonomy is deliberately closed: a new
// metric is a code change, so dashboards and the report schema never chase
// dynamically invented names.
//
// Hot-path contract: Add()/Observe() touch only a per-thread shard (relaxed
// atomics, no locks), so concurrent lift/optimize workers never contend;
// shards are merged at scrape time (ToJson / CounterValue). Every call is a
// no-op branch when made through a null registry pointer — see the
// obs::Session helpers in report.h.
#ifndef POLYNIMA_OBS_METRICS_H_
#define POLYNIMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/support/json.h"

namespace polynima::obs {

// Counter taxonomy. Keep in sync with kCounterNames in metrics.cc.
enum class Counter : int {
  // lift: the per-function lift phase.
  kLiftFunctionsLifted = 0,  // bodies lifted this run (cache misses included)
  kLiftFunctionsCached,      // bodies cloned from the additive cache
  kLiftBytesDecoded,         // guest code bytes decoded into IR
  kLiftIrInstrs,             // IR instructions emitted by the lifter
  // fenceopt: fence insertion/elision decisions and the spinloop analysis.
  // Invariant: fences_inserted == fences_elided + fences_retained (every
  // candidate site is decided exactly one way).
  kFenceoptFencesInserted,   // candidate fence sites considered by the lifter
  kFenceoptFencesElided,     // elided with a witness (stack-local)
  kFenceoptFencesRetained,   // actually emitted into the IR
  kFenceoptWitnessStack,     // witnesses of kind stack-local (all today)
  kFenceoptLoopsAnalyzed,    // natural loops classified by the §3.4 analysis
  kFenceoptLoopsSpinning,    // loops reported potentially-spinning
  // check: the static TSO-soundness checker.
  kCheckAccessesChecked,         // guest loads/stores examined
  kCheckObligationsDischarged,   // discharged by barrier, witness, or cert
  kCheckPathsExplored,           // block-level path scans performed
  kCheckWitnessesVerified,       // stack-local witnesses that re-derived
  kCheckViolations,              // unsatisfied obligations reported
  // analyze: the static concurrency analyzer (src/analyze).
  kAnalyzeAccessesClassified,   // guest accesses classified by region
  kAnalyzeStackLocal,           // classified emulated-stack-local
  kAnalyzeHeapLocal,            // classified thread-local heap
  kAnalyzeShared,               // classified potentially-shared
  kAnalyzeEscapedSites,         // allocation sites whose pointer escapes
  kAnalyzeRacePairs,            // potentially-racing pairs reported
  kAnalyzeFencesElidedStatic,   // fences removed under a StaticCert witness
  // opt: the per-function pass pipeline.
  kOptFunctionsOptimized,
  kOptPassIterations,        // pass-loop iterations actually run
  // sched: controlled schedule exploration.
  kSchedSchedulesRun,        // complete controlled runs performed
  kSchedDecisions,           // scheduler consultations across those runs
  kSchedPreemptions,         // decisions that switched away from a runnable
                             // current thread
  kSchedChangePoints,        // PCT priority change points placed
  // exec: the recompiled binary's runtime (exec::Engine).
  kExecGuestInstrs,          // IR instructions executed
  kExecAtomics,              // atomic RMW / cmpxchg operations executed
  kExecFences,               // fence instructions executed
  kExecExtCalls,             // external library calls
  kExecDispatches,           // dispatcher entries (callback-wrapper cost)
  kExecFaults,               // runtime faults (cfmiss included)
  kExecTier1Translations,    // functions translated to tier-1 bytecode
  kExecTier1Instrs,          // guest instructions executed in tier 1
  kExecTier2Translations,    // functions re-emitted as tier-2 native code
  kExecTier2Instrs,          // guest instructions executed in tier 2
  kExecDeopts,               // translated -> tier-0 transfers (all reasons)
  kExecDeoptPreempt,         //   at scheduler preemption boundaries
  kExecDeoptSmcWrite,        //   at self-modifying-code store guards
  kExecDeoptUncovered,       //   at uncovered CFG edges
  kExecDeoptUncoveredCert,   //   subset of the above that fired inside a
                             //   CfgCert-covered function (must stay zero —
                             //   `report --validate` cross-checks it)
  // vm: the original binary's interpreter (vm::Vm).
  kVmInstrs,
  kVmAtomics,                // lock-prefixed instructions executed
  kVmFaults,
  kNumCounters,
};

// Histogram taxonomy (power-of-two bucketed). Keep in sync with
// kHistogramNames in metrics.cc.
enum class Histogram : int {
  kLiftFunctionNs = 0,    // wall time to lift one function body
  kOptFunctionNs,         // wall time to optimize one function
  kAnalyzeFunctionNs,     // wall time for one function's escape analysis
  kNumHistograms,
};

const char* CounterName(Counter c);
const char* HistogramName(Histogram h);

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Lock-free after a thread's first call (which registers its shard).
  void Add(Counter c, uint64_t n = 1);
  void Observe(Histogram h, uint64_t value);

  // Gauges are set rarely (run configuration); a mutex is fine.
  void SetGauge(const std::string& name, int64_t value);

  // Merged value across all shards (linearizes against concurrent Add only
  // per-counter; scrape after parallel phases join for exact totals).
  uint64_t CounterValue(Counter c) const;

  // {"schema": "polynima-metrics/v1", "counters": {...}, "gauges": {...},
  //  "histograms": {name: {count, min, max, sum, buckets: [...]}}}.
  // Zero-valued counters are included so consumers see the full taxonomy.
  json::Value ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  static constexpr int kHistogramBuckets = 64;  // bucket i: [2^i, 2^(i+1))

  struct Shard {
    std::atomic<uint64_t> counters[static_cast<int>(Counter::kNumCounters)];
    struct Hist {
      std::atomic<uint64_t> buckets[kHistogramBuckets];
      std::atomic<uint64_t> count{0};
      std::atomic<uint64_t> sum{0};
      std::atomic<uint64_t> min{~0ull};
      std::atomic<uint64_t> max{0};
    } hists[static_cast<int>(Histogram::kNumHistograms)];
    Shard();
  };

  Shard* LocalShard();

  const uint64_t id_;  // process-unique, validates thread-local shard caches
  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Shard>> shards_;
  std::map<std::string, int64_t> gauges_;
};

}  // namespace polynima::obs

#endif  // POLYNIMA_OBS_METRICS_H_
