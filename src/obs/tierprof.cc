#include "src/obs/tierprof.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>

namespace polynima::obs {

namespace {

json::Value TierTriple(const uint64_t (&v)[TierProf::kNumTiers]) {
  json::Object o;
  o["tier0"] = v[0];
  o["tier1"] = v[1];
  o["tier2"] = v[2];
  return o;
}

std::string HexAddr(uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

}  // namespace

const char* TierProf::EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTranslate:
      return "translate";
    case EventKind::kTierUp:
      return "tier_up";
    case EventKind::kOsrEntry:
      return "osr_entry";
    case EventKind::kDeopt:
      return "deopt";
    default:
      return "?";
  }
}

const char* TierProf::DeoptReasonName(uint8_t reason) {
  switch (reason) {
    case kDeoptPreempt:
      return "preempt";
    case kDeoptSmcWrite:
      return "smc_write";
    case kDeoptUncoveredEdge:
      return "uncovered_edge";
    default:
      return "?";
  }
}

const char* TierProf::HelperName(uint8_t helper) {
  switch (helper) {
    case kHelperMemRead:
      return "mem_read";
    case kHelperMemWrite:
      return "mem_write";
    case kHelperAtomicRmw:
      return "atomic_rmw";
    case kHelperCmpXchg:
      return "cmpxchg";
    case kHelperFence:
      return "fence";
    default:
      return "?";
  }
}

TierProf::TierProf(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

uint32_t TierProf::InternFunction(std::string name, uint64_t entry) {
  uint32_t id = static_cast<uint32_t>(functions_.size());
  FnStats fs;
  fs.name = std::move(name);
  fs.entry = entry;
  functions_.push_back(std::move(fs));
  return id;
}

void TierProf::Push(const Event& ev) {
  ++events_recorded_;
  ThreadRing& ring = rings_[ev.tid];
  if (ring.events.size() < ring_capacity_) {
    ring.events.push_back(ev);
    return;
  }
  // Full: overwrite the oldest event and account for the loss.
  ring.events[ring.next] = ev;
  ring.next = (ring.next + 1) % ring_capacity_;
  ++ring.dropped;
}

void TierProf::RecordTranslation(int tid, uint32_t func, int tier,
                                 uint64_t units, uint64_t wall_ns,
                                 uint64_t step) {
  FnStats& fs = functions_[func];
  ++fs.translations[tier];
  fs.translate_units[tier] += units;
  fs.translate_wall_ns[tier] += wall_ns;
  Event ev;
  ev.kind = EventKind::kTranslate;
  ev.tier = static_cast<uint8_t>(tier);
  ev.tid = tid;
  ev.func = func;
  ev.guest_pc = fs.entry;
  ev.step = step;
  ev.units = units;
  ev.wall_ns = wall_ns;
  Push(ev);
}

void TierProf::RecordTierUp(int tid, uint32_t func, int tier, uint64_t heat,
                            uint64_t step) {
  FnStats& fs = functions_[func];
  ++fs.tier_ups[tier];
  if (fs.deopted_since_tier_up) {
    ++fs.flaps;
    fs.deopted_since_tier_up = false;
  }
  Event ev;
  ev.kind = EventKind::kTierUp;
  ev.tier = static_cast<uint8_t>(tier);
  ev.tid = tid;
  ev.func = func;
  ev.guest_pc = fs.entry;
  ev.step = step;
  ev.units = heat;
  Push(ev);
}

void TierProf::RecordOsrEntry(int tid, uint32_t func, int tier,
                              uint64_t guest_pc, uint64_t step) {
  FnStats& fs = functions_[func];
  ++fs.osr_entries[tier];
  // Re-promotion after a deopt closes a tier-up -> deopt -> tier-up cycle.
  if (fs.deopted_since_tier_up) {
    ++fs.flaps;
    fs.deopted_since_tier_up = false;
  }
  Event ev;
  ev.kind = EventKind::kOsrEntry;
  ev.tier = static_cast<uint8_t>(tier);
  ev.tid = tid;
  ev.func = func;
  ev.guest_pc = guest_pc;
  ev.step = step;
  Push(ev);
}

void TierProf::RecordDeopt(int tid, uint32_t func, int resident_tier,
                           uint8_t reason, uint64_t guest_pc, uint64_t step) {
  FnStats& fs = functions_[func];
  if (reason < kNumDeoptReasons) {
    ++fs.deopts[reason];
  }
  fs.deopted_since_tier_up = true;
  Event ev;
  ev.kind = EventKind::kDeopt;
  ev.tier = static_cast<uint8_t>(resident_tier);
  ev.reason = reason;
  ev.tid = tid;
  ev.func = func;
  ev.guest_pc = guest_pc;
  ev.step = step;
  Push(ev);
}

void TierProf::AddResidency(uint32_t func, int tier, uint64_t steps) {
  functions_[func].residency[tier] += steps;
}

void TierProf::AddHelperCalls(uint32_t func, uint8_t helper, uint64_t n) {
  functions_[func].helper_calls[helper] += n;
}

void TierProf::RecordInstall(std::string symbol, const void* addr,
                             size_t size) {
  InstalledRange r;
  r.symbol = std::move(symbol);
  r.addr = reinterpret_cast<uint64_t>(addr);
  r.size = size;
  installed_.push_back(std::move(r));
}

uint64_t TierProf::events_dropped() const {
  uint64_t total = 0;
  for (const auto& [tid, ring] : rings_) {
    total += ring.dropped;
  }
  return total;
}

std::string TierProf::PerfMapText() const {
  std::string out;
  for (const InstalledRange& r : installed_) {
    out += HexAddr(r.addr);
    out += ' ';
    out += HexAddr(r.size);
    out += ' ';
    out += r.symbol;
    out += '\n';
  }
  return out;
}

Status TierProf::WritePerfMap(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open perf map file: " + path);
  }
  std::string text = PerfMapText();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal("short write to perf map file: " + path);
  }
  return Status::Ok();
}

json::Value TierProf::ToJson() const {
  uint64_t total_translations[kNumTiers] = {};
  uint64_t total_tier_ups = 0;
  uint64_t total_osr = 0;
  uint64_t total_deopts[kNumDeoptReasons] = {};
  uint64_t total_residency[kNumTiers] = {};
  uint64_t total_helpers[kNumHelpers] = {};
  uint64_t total_flaps = 0;
  for (const FnStats& fs : functions_) {
    for (int t = 0; t < kNumTiers; ++t) {
      total_translations[t] += fs.translations[t];
      total_tier_ups += fs.tier_ups[t];
      total_osr += fs.osr_entries[t];
      total_residency[t] += fs.residency[t];
    }
    for (int r = 0; r < kNumDeoptReasons; ++r) {
      total_deopts[r] += fs.deopts[r];
    }
    for (int h = 0; h < kNumHelpers; ++h) {
      total_helpers[h] += fs.helper_calls[h];
    }
    total_flaps += fs.flaps;
  }

  json::Object totals;
  totals["functions"] = static_cast<uint64_t>(functions_.size());
  totals["events"] = events_recorded_;
  totals["events_dropped"] = events_dropped();
  totals["tier1_translations"] = total_translations[1];
  totals["tier2_translations"] = total_translations[2];
  totals["tier_ups"] = total_tier_ups;
  totals["osr_entries"] = total_osr;
  totals["deopts"] = std::accumulate(total_deopts,
                                     total_deopts + kNumDeoptReasons,
                                     uint64_t{0});
  json::Object deopt_hist;
  for (int r = 0; r < kNumDeoptReasons; ++r) {
    deopt_hist[DeoptReasonName(static_cast<uint8_t>(r))] = total_deopts[r];
  }
  totals["deopts_by_reason"] = std::move(deopt_hist);
  totals["residency"] = TierTriple(total_residency);
  json::Object helper_totals;
  for (int h = 0; h < kNumHelpers; ++h) {
    helper_totals[HelperName(static_cast<uint8_t>(h))] = total_helpers[h];
  }
  totals["helper_calls"] = std::move(helper_totals);
  totals["flaps"] = total_flaps;

  // Hottest (by total residency) first, ties by name for determinism.
  std::vector<const FnStats*> order;
  order.reserve(functions_.size());
  for (const FnStats& fs : functions_) {
    order.push_back(&fs);
  }
  auto residency_sum = [](const FnStats* fs) {
    return fs->residency[0] + fs->residency[1] + fs->residency[2];
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](const FnStats* a, const FnStats* b) {
                     uint64_t ra = residency_sum(a), rb = residency_sum(b);
                     if (ra != rb) {
                       return ra > rb;
                     }
                     return a->name < b->name;
                   });

  json::Array functions;
  for (const FnStats* fs : order) {
    json::Object fo;
    fo["name"] = fs->name;
    fo["entry"] = fs->entry;
    json::Object translations;
    for (int t = 1; t < kNumTiers; ++t) {
      if (fs->translations[t] == 0) {
        continue;
      }
      json::Object to;
      to["count"] = fs->translations[t];
      to["units"] = fs->translate_units[t];
      to["wall_ns"] = fs->translate_wall_ns[t];
      translations[std::string("tier") + static_cast<char>('0' + t)] =
          std::move(to);
    }
    fo["translations"] = std::move(translations);
    fo["tier_ups"] = fs->tier_ups[1] + fs->tier_ups[2];
    fo["osr_entries"] = fs->osr_entries[1] + fs->osr_entries[2];
    json::Object deopts;
    uint64_t deopt_total = 0;
    for (int r = 0; r < kNumDeoptReasons; ++r) {
      deopts[DeoptReasonName(static_cast<uint8_t>(r))] = fs->deopts[r];
      deopt_total += fs->deopts[r];
    }
    deopts["total"] = deopt_total;
    fo["deopts"] = std::move(deopts);
    fo["flaps"] = fs->flaps;
    fo["residency"] = TierTriple(fs->residency);
    json::Object helpers;
    for (int h = 0; h < kNumHelpers; ++h) {
      if (fs->helper_calls[h] != 0) {
        helpers[HelperName(static_cast<uint8_t>(h))] = fs->helper_calls[h];
      }
    }
    fo["helper_calls"] = std::move(helpers);
    functions.push_back(std::move(fo));
  }

  json::Array threads;
  for (const auto& [tid, ring] : rings_) {
    json::Object to;
    to["tid"] = static_cast<int64_t>(tid);
    to["events_dropped"] = ring.dropped;
    json::Array events;
    // Oldest retained first: once the ring wrapped, `next` points at the
    // oldest slot.
    size_t n = ring.events.size();
    size_t start = ring.dropped > 0 ? ring.next : 0;
    for (size_t i = 0; i < n; ++i) {
      const Event& ev = ring.events[(start + i) % n];
      json::Object eo;
      eo["kind"] = EventKindName(ev.kind);
      eo["tier"] = static_cast<uint64_t>(ev.tier);
      eo["func"] = functions_[ev.func].name;
      eo["guest_pc"] = ev.guest_pc;
      eo["step"] = ev.step;
      if (ev.kind == EventKind::kDeopt) {
        eo["reason"] = DeoptReasonName(ev.reason);
      }
      if (ev.kind == EventKind::kTranslate) {
        eo["units"] = ev.units;
        eo["wall_ns"] = ev.wall_ns;
      }
      if (ev.kind == EventKind::kTierUp) {
        eo["heat"] = ev.units;
      }
      events.push_back(std::move(eo));
    }
    to["events"] = std::move(events);
    threads.push_back(std::move(to));
  }

  json::Array code_map;
  for (const InstalledRange& r : installed_) {
    json::Object ro;
    ro["symbol"] = r.symbol;
    ro["addr"] = r.addr;
    ro["size"] = r.size;
    code_map.push_back(std::move(ro));
  }

  json::Object doc;
  doc["schema"] = "polynima-tierprof/v1";
  doc["totals"] = std::move(totals);
  doc["functions"] = std::move(functions);
  doc["threads"] = std::move(threads);
  doc["code_map"] = std::move(code_map);
  return doc;
}

Status TierProf::WriteTo(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

}  // namespace polynima::obs
