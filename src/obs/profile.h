// Guest-execution profiling (the third pillar of src/obs, DESIGN.md §4d).
//
// Opt-in, per-site execution counts for the recompiled binary: the exec
// engine registers each site it runs (a lifted basic block) once, then
// bumps plain counters by dense index on every entry — the hot path is one
// null-check branch plus an array increment. Per-site fence and atomic
// execution counts ride on the same sites, yielding the fence-density view
// (`polynima report`): which blocks execute the most fences per entry — the
// natural seed for profile-guided fence placement.
//
// GuestProfile is intentionally ignorant of the IR: sites are registered
// with plain strings/addresses, so src/obs stays a leaf library under
// src/support.
//
// Not thread-safe: the exec engine's interpreter loop is single-threaded
// (guest threads are simulated), which is exactly the producer this is for.
#ifndef POLYNIMA_OBS_PROFILE_H_
#define POLYNIMA_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/json.h"

namespace polynima::obs {

class GuestProfile {
 public:
  struct Site {
    std::string function;
    std::string block;
    uint64_t guest_address = 0;  // block's original address (0 if synthetic)
    uint64_t entries = 0;        // times execution entered the block
    uint64_t fences = 0;         // fence instructions executed in the block
    uint64_t atomics = 0;        // atomic RMW / cmpxchg executed in the block
    uint64_t instrs = 0;         // IR instructions executed in the block
  };

  // Registers a site and returns its dense index.
  uint32_t RegisterSite(std::string function, std::string block,
                        uint64_t guest_address);

  void AddEntry(uint32_t site) { ++sites_[site].entries; }
  void AddFence(uint32_t site) { ++sites_[site].fences; }
  void AddAtomic(uint32_t site) { ++sites_[site].atomics; }
  void AddInstrs(uint32_t site, uint64_t n) { sites_[site].instrs += n; }

  const std::vector<Site>& sites() const { return sites_; }

  // {"schema": "polynima-profile/v1", "totals": {...}, "sites": [...]}
  // with sites sorted hottest-first (by entries).
  json::Value ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  std::vector<Site> sites_;
};

}  // namespace polynima::obs

#endif  // POLYNIMA_OBS_PROFILE_H_
