// polynima — the single command-line utility the paper describes (§4
// "Environment and Software"): project management, disassembly, lifting and
// (additive) recompilation of binaries.
//
//   polynima compile  <src.c> -o <img.plyb> [-O0|-O2]   build a test binary
//   polynima disasm   <img.plyb>                        disassembly + CFG
//   polynima recompile <img.plyb> -p <projectdir>
//            [--trace <inputfile>...] [--remove-fences] [--no-optimize]
//            [--jobs N]
//   polynima run      <img.plyb> -p <projectdir> [--input <file>]...
//            [--original] [--jobs N]                    additive execution
//   polynima analyze  <img.plyb> [--input <file>]...    spinloop analysis
//
// --jobs N runs the lift and per-function optimization phases on N worker
// threads (default: one per hardware thread; output is identical for any N).
//
// A project directory persists the on-disk CFG (cfg.json) across runs, so
// control-flow misses discovered on one execution benefit the next — the
// on-device lifting workflow of §3.2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/cc/compiler.h"
#include "src/cfg/cfg.h"
#include "src/fenceopt/spinloop.h"
#include "src/recomp/recompiler.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/vm/vm.h"
#include "src/x86/decoder.h"
#include "src/x86/printer.h"

namespace polynima {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: polynima <compile|disasm|recompile|run|analyze> ...\n"
               "see the header of src/tools/polynima_cli.cc\n");
  return 2;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::string> inputs;       // --input files
  std::vector<std::string> trace_files;  // --trace files
  std::string output;
  std::string project;
  int opt_level = 2;
  int jobs = 0;  // 0 = one per hardware thread
  bool remove_fences = false;
  bool optimize = true;
  bool original = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](std::string& out) {
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    if (a == "-o") {
      if (!next(args.output)) return false;
    } else if (a == "-p") {
      if (!next(args.project)) return false;
    } else if (a == "--input") {
      std::string f;
      if (!next(f)) return false;
      args.inputs.push_back(f);
    } else if (a == "--trace") {
      std::string f;
      if (!next(f)) return false;
      args.trace_files.push_back(f);
    } else if (a == "-O0") {
      args.opt_level = 0;
    } else if (a == "-O2" || a == "-O3") {
      args.opt_level = 2;
    } else if (a == "--jobs") {
      std::string v;
      if (!next(v)) return false;
      args.jobs = std::atoi(v.c_str());
    } else if (a == "--remove-fences") {
      args.remove_fences = true;
    } else if (a == "--no-optimize") {
      args.optimize = false;
    } else if (a == "--original") {
      args.original = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

std::vector<std::vector<uint8_t>> LoadInputs(const Args& args) {
  std::vector<std::vector<uint8_t>> inputs;
  for (const std::string& f : args.inputs) {
    inputs.push_back(ReadFileBytes(f));
  }
  return inputs;
}

int CmdCompile(const Args& args) {
  if (args.positional.empty() || args.output.empty()) {
    return Usage();
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.positional[0].c_str());
    return 1;
  }
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  cc::CompileOptions options;
  options.name = std::filesystem::path(args.output).stem();
  options.opt_level = args.opt_level;
  auto image = cc::Compile(source, options);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  Status st = image->WriteTo(args.output);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu code bytes, entry %s)\n", args.output.c_str(),
              image->segments[0].bytes.size(),
              HexString(image->entry_point).c_str());
  return 0;
}

int CmdDisasm(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  auto graph = cfg::RecoverStatic(*image);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  for (const auto& [entry, fn] : graph->functions) {
    std::printf("\n%s:\n", fn.name.c_str());
    for (uint64_t start : fn.block_starts) {
      auto bit = graph->blocks.find(start);
      if (bit == graph->blocks.end()) {
        continue;
      }
      const cfg::BlockInfo& block = bit->second;
      std::printf(".block_%s:  ; %s\n", HexString(start).c_str() + 2,
                  cfg::TermKindName(block.term));
      uint64_t addr = block.start;
      while (addr < block.end) {
        std::vector<uint8_t> bytes = image->ReadBytes(addr, 16);
        auto inst = x86::Decode(bytes, addr);
        if (!inst.ok()) {
          std::printf("  %s: (bad)\n", HexString(addr).c_str());
          break;
        }
        std::printf("  %s: %s\n", HexString(addr).c_str(),
                    x86::FormatInst(*inst).c_str());
        addr = inst->Next();
      }
      if (!block.indirect_targets.empty()) {
        std::printf("  ; %zu known indirect targets\n",
                    block.indirect_targets.size());
      }
    }
  }
  std::printf("\n%zu functions, %zu blocks, %zu indirect targets\n",
              graph->functions.size(), graph->blocks.size(),
              graph->TotalIndirectTargets());
  return 0;
}

recomp::RecompileOptions MakeOptions(const Args& args) {
  recomp::RecompileOptions options;
  if (!args.project.empty()) {
    options.project_dir = args.project;
  }
  options.remove_fences = args.remove_fences;
  options.optimize = args.optimize;
  options.jobs = args.jobs;
  if (!args.trace_files.empty()) {
    options.use_icft_tracer = true;
    for (const std::string& f : args.trace_files) {
      options.trace_input_sets.push_back({ReadFileBytes(f)});
    }
  }
  return options;
}

int CmdRecompile(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  recomp::Recompiler recompiler(*image, MakeOptions(args));
  auto binary = recompiler.Recompile();
  if (!binary.ok()) {
    std::fprintf(stderr, "%s\n", binary.status().ToString().c_str());
    return 1;
  }
  const recomp::RecompileStats& stats = recompiler.stats();
  std::printf("recompiled %s: %zu functions, %zu blocks\n",
              args.positional[0].c_str(),
              binary->program.functions_by_entry.size(),
              binary->graph.blocks.size());
  std::printf("  disassemble %.1f ms, trace %.1f ms (%zu ICFTs), "
              "lift %.1f ms, optimize %.1f ms\n",
              stats.disassemble_ns / 1e6, stats.trace_ns / 1e6,
              stats.icft_count, stats.lift_ns / 1e6, stats.opt_ns / 1e6);
  std::printf("  jobs %d: lift cpu %.1f ms, optimize cpu %.1f ms\n",
              ThreadPool::ResolveJobs(args.jobs),
              stats.lift_cpu_ns / 1e6, stats.opt_cpu_ns / 1e6);
  std::printf("  additive cache: %zu hits, %zu misses\n", stats.cache_hits,
              stats.cache_misses);
  if (!args.project.empty()) {
    std::printf("  project CFG: %s/cfg.json\n", args.project.c_str());
  }
  return 0;
}

int CmdRun(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> inputs = LoadInputs(args);
  if (args.original) {
    vm::ExternalLibrary library;
    vm::Vm virtual_machine(*image, &library, {});
    virtual_machine.SetInputs(inputs);
    vm::RunResult r = virtual_machine.Run();
    std::fputs(r.output.c_str(), stdout);
    if (!r.ok) {
      std::fprintf(stderr, "fault: %s\n", r.fault_message.c_str());
      return 1;
    }
    return static_cast<int>(r.exit_code) & 0xff;
  }
  recomp::Recompiler recompiler(*image, MakeOptions(args));
  auto binary = recompiler.Recompile();
  if (!binary.ok()) {
    std::fprintf(stderr, "%s\n", binary.status().ToString().c_str());
    return 1;
  }
  auto result = recompiler.RunAdditive(*binary, inputs);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fputs(result->output.c_str(), stdout);
  if (recompiler.stats().additive_rounds > 0) {
    std::fprintf(stderr,
                 "[polynima] %d recompilation loop(s) this run "
                 "(%zu bodies re-lifted, %zu reused from cache)\n",
                 recompiler.stats().additive_rounds,
                 recompiler.stats().cache_misses,
                 recompiler.stats().cache_hits);
  }
  if (!result->ok) {
    std::fprintf(stderr, "fault: %s\n", result->fault_message.c_str());
    return 1;
  }
  return static_cast<int>(result->exit_code) & 0xff;
}

int CmdAnalyze(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  auto graph = cfg::RecoverStatic(*image);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto analysis = fenceopt::DetectImplicitSynchronization(
      *image, *graph, {LoadInputs(args)});
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  for (const auto& loop : analysis->loops) {
    std::printf("%-10s loop %s/%s: %s\n",
                loop.spinning ? "SPINNING" : "non-spin",
                loop.function.c_str(), loop.header_block.c_str(),
                loop.reason.c_str());
  }
  std::printf("fence removal: %s\n",
              analysis->FenceRemovalSafe() ? "SAFE" : "withheld");
  return analysis->FenceRemovalSafe() ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "compile") {
    return CmdCompile(args);
  }
  if (cmd == "disasm") {
    return CmdDisasm(args);
  }
  if (cmd == "recompile") {
    return CmdRecompile(args);
  }
  if (cmd == "run") {
    return CmdRun(args);
  }
  if (cmd == "analyze") {
    return CmdAnalyze(args);
  }
  return Usage();
}

}  // namespace
}  // namespace polynima

int main(int argc, char** argv) { return polynima::Main(argc, argv); }
