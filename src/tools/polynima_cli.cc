// polynima — the single command-line utility the paper describes (§4
// "Environment and Software"): project management, disassembly, lifting and
// (additive) recompilation of binaries.
//
//   polynima compile  <src.c> -o <img.plyb> [-O0|-O2] [--landing-pads]
//            build a test binary; --landing-pads emits endbr64 at every
//            indirect-transfer target (function entries, jump-table cases)
//            so --cfg-sound recovery can bound indirect sites
//   polynima disasm   <img.plyb>                        disassembly + CFG
//   polynima recompile <img.plyb> -p <projectdir>
//            [--trace <inputfile>...] [--remove-fences] [--no-optimize]
//            [--jobs N] [--check-tso] [--analyze] [--cfg-sound]
//   polynima run      <img.plyb> -p <projectdir> [--input <file>]...
//            [--original] [--jobs N] [--check-tso] [--cfg-sound]
//            [--tier 0|1|2] [--tier-threshold N]        additive execution
//   polynima analyze  <img.plyb> [--input <file>]... [--jobs N] [--cfg-sound]
//            static concurrency analysis (src/analyze): classifies every
//            guest access (stack-local / thread-local heap / shared),
//            reports potentially-racing access pairs with guest addresses,
//            and counts the fences elided under kHeapLocal witnesses; with
//            --input it additionally runs the spinloop analysis
//   polynima check    <img.plyb> [--input <file>]... [--schedules N]
//            [--jobs N]                                 full TSO soundness
//   polynima explore  <img.plyb> [--input <file>]... [--remove-fences]
//            [--budget N] [--depth N] [--strategy pct|dfs|both] [--seed N]
//            [--dfs-bound N] [--replay <sched|file>] [--save-sched <file>]
//            [--analyze] [--cfg-sound] [--tier 0|1|2] [--tier-threshold N]
//            deterministic schedule exploration (src/sched): diff the
//            outcome sets of the fenced reference and the optimized build,
//            shrink any divergence to a minimal schedule, print the repro
//   polynima report   <obs.json>... [--top N] [--validate]
//            render any observability artifact (trace / metrics / profile /
//            tierprof / run report) as human tables; --validate only checks
//            structure and exits non-zero on a malformed or empty document
//
// Observability (src/obs) — every subcommand that builds or runs a binary
// accepts:
//   --trace-out <f>    Chrome trace_event JSON of the pipeline/run spans
//                      (load in Perfetto / about:tracing)
//   --metrics-out <f>  merged counter/gauge/histogram dump
//                      (polynima-metrics/v1)
//   --profile <f>      per-basic-block guest execution profile from the
//                      exec engine (polynima-profile/v1): entry counts and
//                      per-site fence/atomic frequencies
//   --report-out <f>   one polynima-report/v1 document tying the run and
//                      its artifacts together (implies a metrics registry)
//   --tier-prof <f>    execution-tier telemetry (polynima-tierprof/v1):
//                      JIT lifecycle events (translation, tier-up, OSR,
//                      per-reason deopts), per-function tier-residency
//                      timelines, tier-flap counts and tier-2 helper-call
//                      frequencies (run / explore)
//   --perf-map <f>     Linux perf-compatible map of the installed native
//                      code ranges (`addr size tierN:<function>` rows;
//                      implies the --tier-prof recorder)
// Flags may be spelled --flag value or --flag=value. All sinks are off by
// default; the disabled cost at every instrumentation point is one branch
// on a null pointer — and with no sink at all, dispatch selects instruction
// loops with every check compiled out.
//
// Tiered execution (src/exec, DESIGN.md §4f-4g) — `run` and `explore` accept:
//   --tier 0|1|2         highest execution tier (default 0). Tier 1
//                        translates hot functions to direct-threaded
//                        superinstruction bytecode; tier 2 re-emits the
//                        tier-1 stream as native x86 behind the same deopt
//                        guards (silently capped at 1 when the host cannot
//                        map executable code). Results, schedules and state
//                        digests are bit-identical across all tiers.
//   --tier-threshold N   block-entry count before a function is translated
//                        (default 0 = translate eagerly on first entry);
//                        tier-2 re-emission fires at twice this threshold
//
// `explore` builds a fully-fenced reference and an optimized build
// (--remove-fences deletes every fence — the fault-injection mode used to
// validate the harness), then explores thread schedules with seeded PCT and
// bounded-preemption DFS under the controlled scheduler. A divergence in
// either direction (new or lost outcome) exits 1 and prints a
// `polysched/v1` repro string that replays bit-identically; --replay runs
// one such schedule (inline or from a .sched corpus file) instead of
// exploring.
//
// --jobs N runs the lift and per-function optimization phases on N worker
// threads (default: one per hardware thread; output is identical for any N).
//
// --check-tso runs the static TSO-soundness checker (src/check) after every
// (re)compilation: each guest memory access must be covered by a
// fence/atomic on every path or carry a machine-checkable elision witness.
// With --remove-fences it additionally demands a sealed spinloop
// certificate, which `recompile`/`run` mint automatically (and refuse when
// the analysis finds a potentially-spinning loop).
//
// --analyze runs the static concurrency analyzer (src/analyze) after every
// (re)compilation: escape/region classification, static race detection, and
// kHeapLocal fence elision under a sealed StaticCert (which --check-tso
// re-derives access by access). The analysis section lands in the
// --report-out document (polynima-analyze/v1). `explore` feeds the reported
// race addresses to the scheduler as preemption hints.
//
// --cfg-sound runs sound indirect control-flow recovery (src/analyze/icf):
// CFG exploration seeded from endbr64 landing pads, pointer-provenance
// bounding of every indirect jump/call's feasible target set, and a sealed
// image-bound CfgCert for proven-complete sites. Builds consuming the cert
// drop the cfmiss stub (and the tier-1/2 uncovered-edge deopt guards) at
// proven sites; open sites keep dynamic recovery. Digests, step counts and
// schedule replays are bit-identical with the flag on or off. The analysis
// lands in the --report-out document as its "icf" section, which
// `report --validate` cross-checks against tierprof deopt forensics.
//
// `check` is the full soundness workflow: static check of the fenced build,
// spinloop analysis + certificate, static check of the fence-removed build,
// then the schedule-perturbing differential run (fenced vs optimized under
// --schedules N perturbed thread interleavings).
//
// A project directory persists the on-disk CFG (cfg.json) across runs, so
// control-flow misses discovered on one execution benefit the next — the
// on-device lifting workflow of §3.2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/analyze.h"
#include "src/cc/compiler.h"
#include "src/cfg/cfg.h"
#include "src/exec/engine.h"
#include "src/fenceopt/spinloop.h"
#include "src/obs/report.h"
#include "src/recomp/recompiler.h"
#include "src/sched/explore.h"
#include "src/sched/schedule.h"
#include "src/sched/scheduler.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/vm/vm.h"
#include "src/x86/decoder.h"
#include "src/x86/printer.h"

namespace polynima {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: polynima "
      "<compile|disasm|recompile|run|analyze|check|explore|report> ...\n"
      "see the header of src/tools/polynima_cli.cc\n");
  return 2;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::string> inputs;       // --input files
  std::vector<std::string> trace_files;  // --trace files
  std::string output;
  std::string project;
  int opt_level = 2;
  int jobs = 0;  // 0 = one per hardware thread
  int schedules = 4;
  bool remove_fences = false;
  bool optimize = true;
  bool original = false;
  bool check_tso = false;
  bool analyze = false;
  bool cfg_sound = false;
  bool landing_pads = false;  // compile: emit endbr64 landing pads
  // explore
  int budget = 128;
  int depth = 3;
  int dfs_bound = 2;
  uint64_t seed = 1;
  // tiered execution (run / explore)
  int tier = 0;
  uint64_t tier_threshold = 0;
  std::string strategy = "both";
  std::string replay;      // inline repro string or .sched file path
  std::string save_sched;  // write the shrunk witness here
  // observability
  std::string trace_out;    // Chrome trace_event JSON
  std::string metrics_out;  // polynima-metrics/v1
  std::string profile_out;  // polynima-profile/v1 (--profile)
  std::string report_out;   // polynima-report/v1
  std::string tierprof_out;  // polynima-tierprof/v1 (--tier-prof)
  std::string perf_map;      // Linux perf /tmp/perf-<pid>.map format
  int top = 10;             // report: rows per table
  bool validate = false;    // report: structural validation only
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // --flag=value is equivalent to --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&](std::string& out) {
      if (has_inline) {
        out = inline_value;
        return true;
      }
      if (i + 1 >= argc) {
        return false;
      }
      out = argv[++i];
      return true;
    };
    if (a == "-o") {
      if (!next(args.output)) return false;
    } else if (a == "-p") {
      if (!next(args.project)) return false;
    } else if (a == "--input") {
      std::string f;
      if (!next(f)) return false;
      args.inputs.push_back(f);
    } else if (a == "--trace") {
      std::string f;
      if (!next(f)) return false;
      args.trace_files.push_back(f);
    } else if (a == "-O0") {
      args.opt_level = 0;
    } else if (a == "-O2" || a == "-O3") {
      args.opt_level = 2;
    } else if (a == "--jobs") {
      std::string v;
      if (!next(v)) return false;
      args.jobs = std::atoi(v.c_str());
    } else if (a == "--remove-fences") {
      args.remove_fences = true;
    } else if (a == "--check-tso") {
      args.check_tso = true;
    } else if (a == "--analyze") {
      args.analyze = true;
    } else if (a == "--cfg-sound") {
      args.cfg_sound = true;
    } else if (a == "--landing-pads") {
      args.landing_pads = true;
    } else if (a == "--schedules") {
      std::string v;
      if (!next(v)) return false;
      args.schedules = std::atoi(v.c_str());
    } else if (a == "--no-optimize") {
      args.optimize = false;
    } else if (a == "--budget") {
      std::string v;
      if (!next(v)) return false;
      args.budget = std::atoi(v.c_str());
    } else if (a == "--depth") {
      std::string v;
      if (!next(v)) return false;
      args.depth = std::atoi(v.c_str());
    } else if (a == "--dfs-bound") {
      std::string v;
      if (!next(v)) return false;
      args.dfs_bound = std::atoi(v.c_str());
    } else if (a == "--seed") {
      std::string v;
      if (!next(v)) return false;
      args.seed = static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 0));
    } else if (a == "--tier") {
      std::string v;
      if (!next(v)) return false;
      args.tier = std::atoi(v.c_str());
    } else if (a == "--tier-threshold") {
      std::string v;
      if (!next(v)) return false;
      args.tier_threshold =
          static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 0));
    } else if (a == "--strategy") {
      if (!next(args.strategy)) return false;
    } else if (a == "--replay") {
      if (!next(args.replay)) return false;
    } else if (a == "--save-sched") {
      if (!next(args.save_sched)) return false;
    } else if (a == "--original") {
      args.original = true;
    } else if (a == "--trace-out") {
      if (!next(args.trace_out)) return false;
    } else if (a == "--metrics-out") {
      if (!next(args.metrics_out)) return false;
    } else if (a == "--profile") {
      if (!next(args.profile_out)) return false;
    } else if (a == "--report-out") {
      if (!next(args.report_out)) return false;
    } else if (a == "--tier-prof") {
      if (!next(args.tierprof_out)) return false;
    } else if (a == "--perf-map") {
      if (!next(args.perf_map)) return false;
    } else if (a == "--top") {
      std::string v;
      if (!next(v)) return false;
      args.top = std::atoi(v.c_str());
    } else if (a == "--validate") {
      args.validate = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

std::vector<std::vector<uint8_t>> LoadInputs(const Args& args) {
  std::vector<std::vector<uint8_t>> inputs;
  for (const std::string& f : args.inputs) {
    inputs.push_back(ReadFileBytes(f));
  }
  return inputs;
}

// CLI-owned observability sinks, one per requested output file, plus the
// Session handed down to the pipeline. Finish() writes every artifact (and
// the run report) once, after the command body.
struct ObsSinks {
  std::optional<obs::TraceSink> trace;
  std::optional<obs::MetricsRegistry> metrics;
  std::optional<obs::GuestProfile> profile;
  std::optional<obs::TierProf> tierprof;
  obs::Session session;
  // polynima-analyze/v1 section for the run report (set by commands that ran
  // the static concurrency analyzer; null otherwise).
  json::Value analysis;
  // polynima-icf/v1 section (set by commands that ran --cfg-sound).
  json::Value icf;

  explicit ObsSinks(const Args& args) {
    if (!args.trace_out.empty()) {
      session.trace = &trace.emplace();
    }
    // --report-out inlines the merged metrics dump, so it implies a
    // registry even without --metrics-out.
    if (!args.metrics_out.empty() || !args.report_out.empty()) {
      session.metrics = &metrics.emplace();
    }
    if (!args.profile_out.empty()) {
      session.profile = &profile.emplace();
    }
    // --perf-map implies the tier-telemetry recorder: the map rows come from
    // its installed-code registry.
    if (!args.tierprof_out.empty() || !args.perf_map.empty()) {
      session.tierprof = &tierprof.emplace();
    }
  }

  // Writes the requested artifacts; returns `exit_code`, or 1 if a write
  // failed. `run_ok` is stamped into the report, so a failing run still
  // produces its observability output.
  int Finish(const Args& args, const char* command, bool run_ok,
             int exit_code) {
    auto write = [&](const Status& st, const char* kind,
                     const std::string& path) {
      if (!st.ok()) {
        std::fprintf(stderr, "obs: %s\n", st.ToString().c_str());
        exit_code = 1;
        return;
      }
      info.artifacts.emplace_back(kind, path);
    };
    info.command = command;
    info.input = args.positional.empty() ? "" : args.positional[0];
    info.ok = run_ok;
    info.analysis = std::move(analysis);
    info.icf = std::move(icf);
    if (trace.has_value()) {
      write(trace->WriteTo(args.trace_out), "trace", args.trace_out);
    }
    if (metrics.has_value() && !args.metrics_out.empty()) {
      write(metrics->WriteTo(args.metrics_out), "metrics", args.metrics_out);
    }
    if (profile.has_value()) {
      write(profile->WriteTo(args.profile_out), "profile", args.profile_out);
    }
    if (tierprof.has_value() && !args.tierprof_out.empty()) {
      write(tierprof->WriteTo(args.tierprof_out), "tierprof",
            args.tierprof_out);
    }
    if (tierprof.has_value() && !args.perf_map.empty()) {
      write(tierprof->WritePerfMap(args.perf_map), "perf-map", args.perf_map);
    }
    if (!args.report_out.empty()) {
      Status st = json::WriteFile(args.report_out,
                                  obs::BuildRunReport(info, session));
      if (!st.ok()) {
        std::fprintf(stderr, "obs: %s\n", st.ToString().c_str());
        exit_code = 1;
      }
    }
    return exit_code;
  }

 private:
  obs::RunInfo info;
};

int CmdCompile(const Args& args) {
  if (args.positional.empty() || args.output.empty()) {
    return Usage();
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.positional[0].c_str());
    return 1;
  }
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  cc::CompileOptions options;
  options.name = std::filesystem::path(args.output).stem();
  options.opt_level = args.opt_level;
  options.landing_pads = args.landing_pads;
  auto image = cc::Compile(source, options);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  Status st = image->WriteTo(args.output);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu code bytes, entry %s)\n", args.output.c_str(),
              image->segments[0].bytes.size(),
              HexString(image->entry_point).c_str());
  return 0;
}

int CmdDisasm(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  auto graph = cfg::RecoverStatic(*image);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  for (const auto& [entry, fn] : graph->functions) {
    std::printf("\n%s:\n", fn.name.c_str());
    for (uint64_t start : fn.block_starts) {
      auto bit = graph->blocks.find(start);
      if (bit == graph->blocks.end()) {
        continue;
      }
      const cfg::BlockInfo& block = bit->second;
      std::printf(".block_%s:  ; %s\n", HexString(start).c_str() + 2,
                  cfg::TermKindName(block.term));
      uint64_t addr = block.start;
      while (addr < block.end) {
        std::vector<uint8_t> bytes = image->ReadBytes(addr, 16);
        auto inst = x86::Decode(bytes, addr);
        if (!inst.ok()) {
          std::printf("  %s: (bad)\n", HexString(addr).c_str());
          break;
        }
        std::printf("  %s: %s\n", HexString(addr).c_str(),
                    x86::FormatInst(*inst).c_str());
        addr = inst->Next();
      }
      if (!block.indirect_targets.empty()) {
        std::printf("  ; %zu known indirect targets\n",
                    block.indirect_targets.size());
      }
    }
  }
  std::printf("\n%zu functions, %zu blocks, %zu indirect targets\n",
              graph->functions.size(), graph->blocks.size(),
              graph->TotalIndirectTargets());
  return 0;
}

recomp::RecompileOptions MakeOptions(const Args& args,
                                     const obs::Session& session = {}) {
  recomp::RecompileOptions options;
  if (!args.project.empty()) {
    options.project_dir = args.project;
  }
  options.remove_fences = args.remove_fences;
  options.optimize = args.optimize;
  options.jobs = args.jobs;
  options.check_tso = args.check_tso;
  options.analyze = args.analyze;
  options.cfg_sound = args.cfg_sound;
  options.obs = session;
  if (!args.trace_files.empty()) {
    options.use_icft_tracer = true;
    for (const std::string& f : args.trace_files) {
      options.trace_input_sets.push_back({ReadFileBytes(f)});
    }
  }
  return options;
}

// Shared --cfg-sound epilogue: prints the indirect-coverage summary, hands
// the polynima-icf/v1 section to the run report, and returns the entries of
// CfgCert-covered functions for ExecOptions::cfg_certified_entries.
std::set<uint64_t> FinishCfgSound(recomp::Recompiler& recompiler,
                                  ObsSinks& sinks) {
  const recomp::RecompileStats& stats = recompiler.stats();
  std::set<uint64_t> certified;
  size_t covered = 0;
  if (recompiler.options().cfg_cert.has_value()) {
    for (uint64_t e : recompiler.options().cfg_cert->covered_functions) {
      certified.insert(e);
    }
    covered = certified.size();
  }
  std::printf("  cfg-sound: %d landing pads, %d/%d indirect sites proven, "
              "%zu fully-covered function(s)%s\n",
              stats.icf_landing_pads, stats.icf_sites_proven,
              stats.icf_sites_proven + stats.icf_sites_open, covered,
              stats.icf_certs_rejected > 0
                  ? " (stale/forged certificate rejected, re-derived)"
                  : "");
  sinks.icf = recompiler.icf_json();
  return certified;
}

int CmdRecompile(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  ObsSinks sinks(args);
  recomp::Recompiler recompiler(*image, MakeOptions(args, sinks.session));
  auto binary = recompiler.Recompile();
  if (!binary.ok()) {
    std::fprintf(stderr, "%s\n", binary.status().ToString().c_str());
    return sinks.Finish(args, "recompile", /*run_ok=*/false, 1);
  }
  const recomp::RecompileStats& stats = recompiler.stats();
  std::printf("recompiled %s: %zu functions, %zu blocks\n",
              args.positional[0].c_str(),
              binary->program.functions_by_entry.size(),
              binary->graph.blocks.size());
  std::printf("  disassemble %.1f ms, trace %.1f ms (%zu ICFTs), "
              "lift %.1f ms, optimize %.1f ms\n",
              stats.disassemble_ns / 1e6, stats.trace_ns / 1e6,
              stats.icft_count, stats.lift_ns / 1e6, stats.opt_ns / 1e6);
  std::printf("  jobs %d: lift cpu %.1f ms, optimize cpu %.1f ms\n",
              ThreadPool::ResolveJobs(args.jobs),
              stats.lift_cpu_ns / 1e6, stats.opt_cpu_ns / 1e6);
  std::printf("  additive cache: %zu hits, %zu misses\n", stats.cache_hits,
              stats.cache_misses);
  if (args.check_tso) {
    std::printf("  tso check: %zu accesses, %zu witnesses (%zu heap), "
                "%zu violations\n",
                stats.tso_accesses_checked, stats.tso_witnesses_consumed,
                stats.tso_heap_witnesses_consumed, stats.tso_violations);
  }
  if (args.analyze) {
    std::printf("  analyze: %.1f ms, %zu race pair(s), "
                "%zu fence(s) elided statically\n",
                stats.analyze_ns / 1e6, stats.analyze_races,
                stats.analyze_fences_elided);
    sinks.analysis = recompiler.analysis_json();
  }
  if (args.cfg_sound) {
    FinishCfgSound(recompiler, sinks);
  }
  if (!args.project.empty()) {
    std::printf("  project CFG: %s/cfg.json\n", args.project.c_str());
  }
  return sinks.Finish(args, "recompile", /*run_ok=*/true, 0);
}

int CmdRun(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> inputs = LoadInputs(args);
  ObsSinks sinks(args);
  if (args.original) {
    vm::ExternalLibrary library;
    vm::VmOptions vm_options;
    vm_options.obs = sinks.session;
    vm::Vm virtual_machine(*image, &library, vm_options);
    virtual_machine.SetInputs(inputs);
    vm::RunResult r = virtual_machine.Run();
    std::fputs(r.output.c_str(), stdout);
    if (!r.ok) {
      std::fprintf(stderr, "fault: %s\n", r.fault_message.c_str());
      return sinks.Finish(args, "run", /*run_ok=*/false, 1);
    }
    return sinks.Finish(args, "run", /*run_ok=*/true,
                        static_cast<int>(r.exit_code) & 0xff);
  }
  recomp::Recompiler recompiler(*image, MakeOptions(args, sinks.session));
  auto binary = recompiler.Recompile();
  if (!binary.ok()) {
    std::fprintf(stderr, "%s\n", binary.status().ToString().c_str());
    return sinks.Finish(args, "run", /*run_ok=*/false, 1);
  }
  exec::ExecOptions exec_options;
  exec_options.obs = sinks.session;
  exec_options.tier = args.tier;
  exec_options.tier_threshold = args.tier_threshold;
  if (args.cfg_sound) {
    exec_options.cfg_certified_entries = FinishCfgSound(recompiler, sinks);
  }
  auto result = recompiler.RunAdditive(*binary, inputs, exec_options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return sinks.Finish(args, "run", /*run_ok=*/false, 1);
  }
  std::fputs(result->output.c_str(), stdout);
  if (recompiler.stats().additive_rounds > 0) {
    std::fprintf(stderr,
                 "[polynima] %d recompilation loop(s) this run "
                 "(%zu bodies re-lifted, %zu reused from cache)\n",
                 recompiler.stats().additive_rounds,
                 recompiler.stats().cache_misses,
                 recompiler.stats().cache_hits);
  }
  if (!result->ok) {
    std::fprintf(stderr, "fault: %s\n", result->fault_message.c_str());
    return sinks.Finish(args, "run", /*run_ok=*/false, 1);
  }
  return sinks.Finish(args, "run", /*run_ok=*/true,
                      static_cast<int>(result->exit_code) & 0xff);
}

int CmdAnalyze(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  ObsSinks sinks(args);
  // Static concurrency analysis (the subsystem this subcommand fronts):
  // recompile with `analyze` so the lifted+optimized IR — the IR that will
  // actually execute — is what gets classified.
  recomp::RecompileOptions options = MakeOptions(args, sinks.session);
  options.analyze = true;
  recomp::Recompiler recompiler(*image, options);
  auto binary = recompiler.Recompile();
  if (!binary.ok()) {
    std::fprintf(stderr, "%s\n", binary.status().ToString().c_str());
    return sinks.Finish(args, "analyze", /*run_ok=*/false, 1);
  }
  sinks.analysis = recompiler.analysis_json();
  if (args.cfg_sound) {
    FinishCfgSound(recompiler, sinks);
  }
  const json::Value& a = recompiler.analysis_json();
  auto num = [&](const char* key) -> int64_t {
    const json::Value* v = a.Find(key);
    return v != nullptr && v->is_int() ? v->as_int() : 0;
  };
  std::printf("analyzed %lld function(s): %lld accesses "
              "(%lld stack-local, %lld heap-local, %lld shared)\n",
              static_cast<long long>(num("functions")),
              static_cast<long long>(num("accesses")),
              static_cast<long long>(num("stack_local")),
              static_cast<long long>(num("heap_local")),
              static_cast<long long>(num("shared")));
  std::printf("allocation sites: %lld (%lld escaped); "
              "%lld heap witness(es), %lld fence(s) elided statically\n",
              static_cast<long long>(num("alloc_sites")),
              static_cast<long long>(num("escaped_sites")),
              static_cast<long long>(num("heap_witnesses")),
              static_cast<long long>(num("fences_elided_static")));
  const json::Value* pairs = a.Find("race_pairs");
  size_t race_count =
      pairs != nullptr && pairs->is_array() ? pairs->as_array().size() : 0;
  std::printf("thread roots: %lld%s; race pairs: %zu%s\n",
              static_cast<long long>(num("thread_roots")),
              num("conservative_roots") != 0 ? " (conservative)" : "",
              race_count, num("truncated") != 0 ? " (truncated)" : "");
  if (race_count != 0) {
    for (const json::Value& p : pairs->as_array()) {
      auto side = [&](const char* key) -> std::string {
        const json::Value* s = p.Find(key);
        if (s == nullptr || !s->is_object()) {
          return "?";
        }
        const json::Value* fn = s->Find("function");
        const json::Value* ga = s->Find("guest_address");
        const json::Value* w = s->Find("write");
        return StrCat(
            fn != nullptr && fn->is_string() ? fn->as_string() : "?", "@",
            HexString(ga != nullptr && ga->is_int() ? ga->as_uint() : 0),
            w != nullptr && w->is_bool() && w->as_bool() ? " W" : " R");
      };
      const json::Value* reason = p.Find("reason");
      std::printf("RACE  %s <-> %s (%s)\n", side("a").c_str(),
                  side("b").c_str(),
                  reason != nullptr && reason->is_string()
                      ? reason->as_string().c_str()
                      : "?");
    }
  }
  // With inputs, additionally run the dynamic spinloop analysis the fence
  // optimizer uses for whole-module removal (the subcommand's original job).
  if (!args.inputs.empty()) {
    auto spin = fenceopt::DetectImplicitSynchronization(
        *image, binary->graph, {LoadInputs(args)}, sinks.session);
    if (!spin.ok()) {
      std::fprintf(stderr, "%s\n", spin.status().ToString().c_str());
      return sinks.Finish(args, "analyze", /*run_ok=*/false, 1);
    }
    for (const auto& loop : spin->loops) {
      std::printf("%-10s loop %s/%s: %s\n",
                  loop.spinning ? "SPINNING" : "non-spin",
                  loop.function.c_str(), loop.header_block.c_str(),
                  loop.reason.c_str());
    }
    std::printf("fence removal: %s\n",
                spin->FenceRemovalSafe() ? "SAFE" : "withheld");
  }
  return sinks.Finish(args, "analyze", /*run_ok=*/true, 0);
}

// Full TSO-soundness workflow over one binary: static check fenced, spinloop
// analysis + certificate, static check fence-removed, schedule-perturbing
// differential run.
int CmdCheckImpl(const Args& args, const obs::Session& session) {
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> inputs = LoadInputs(args);

  // 1. Fenced build, statically checked after every (re)compilation round.
  recomp::RecompileOptions fenced_options;
  fenced_options.check_tso = true;
  fenced_options.jobs = args.jobs;
  fenced_options.obs = session;
  recomp::Recompiler fenced(*image, fenced_options);
  auto fenced_binary = fenced.Recompile();
  if (!fenced_binary.ok()) {
    std::fprintf(stderr, "FAIL (fenced build): %s\n",
                 fenced_binary.status().ToString().c_str());
    return 1;
  }
  auto fenced_run = fenced.RunAdditive(*fenced_binary, inputs);
  if (!fenced_run.ok() || !fenced_run->ok) {
    std::fprintf(stderr, "FAIL (fenced run): %s\n",
                 fenced_run.ok() ? fenced_run->fault_message.c_str()
                                 : fenced_run.status().ToString().c_str());
    return 1;
  }
  std::printf("fenced build: %zu accesses checked, %zu witnesses verified, "
              "0 violations\n",
              fenced.stats().tso_accesses_checked,
              fenced.stats().tso_witnesses_consumed);

  // 2. Spinloop analysis on the converged CFG; mint the elision cert.
  auto analysis = fenceopt::DetectImplicitSynchronization(
      *image, fenced_binary->graph, {inputs}, session);
  if (!analysis.ok()) {
    std::fprintf(stderr, "FAIL (spinloop analysis): %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  for (const auto& loop : analysis->loops) {
    std::printf("%-10s loop %s/%s: %s\n",
                loop.spinning ? "SPINNING" : "non-spin",
                loop.function.c_str(), loop.header_block.c_str(),
                loop.reason.c_str());
  }
  if (!analysis->FenceRemovalSafe()) {
    std::printf("fence removal withheld (%d potentially-spinning loop(s)); "
                "fenced build is TSO-sound — PASS\n",
                analysis->SpinningCount());
    return 0;
  }
  check::ElisionCert cert = fenceopt::MakeElisionCert(*analysis, *image);
  std::printf("elision certificate: %d loops, 0 spinning, checksum %s\n",
              cert.loops_analyzed, HexString(cert.checksum).c_str());

  // 3. Fence-removed build under the certificate, statically checked.
  recomp::RecompileOptions opt_options;
  opt_options.check_tso = true;
  opt_options.remove_fences = true;
  opt_options.elision_cert = cert;
  opt_options.jobs = args.jobs;
  opt_options.obs = session;
  recomp::Recompiler optimized(*image, opt_options);
  auto opt_binary = optimized.Recompile();
  if (!opt_binary.ok()) {
    std::fprintf(stderr, "FAIL (fence-removed build): %s\n",
                 opt_binary.status().ToString().c_str());
    return 1;
  }
  auto opt_run = optimized.RunAdditive(*opt_binary, inputs);
  if (!opt_run.ok() || !opt_run->ok) {
    std::fprintf(stderr, "FAIL (fence-removed run): %s\n",
                 opt_run.ok() ? opt_run->fault_message.c_str()
                              : opt_run.status().ToString().c_str());
    return 1;
  }
  std::printf("fence-removed build: %zu accesses checked, "
              "certificate accepted, 0 violations\n",
              optimized.stats().tso_accesses_checked);

  // 4. Schedule-perturbing differential: fenced reference vs optimized.
  check::DifferentialOptions diff_options;
  diff_options.schedules = args.schedules;
  auto diff = optimized.RunTsoDifferential(*opt_binary, {inputs},
                                           diff_options);
  if (!diff.ok()) {
    std::fprintf(stderr, "FAIL (differential): %s\n",
                 diff.status().ToString().c_str());
    return 1;
  }
  std::printf("differential: %d runs, %d divergences\n", diff->runs,
              diff->divergences);
  for (const std::string& report : diff->reports) {
    std::fprintf(stderr, "  divergence: %s\n", report.c_str());
  }
  if (!diff->ok()) {
    std::fprintf(stderr, "FAIL: optimized module diverges from the fenced "
                         "reference\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

int CmdCheck(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  ObsSinks sinks(args);
  int rc = CmdCheckImpl(args, sinks.session);
  return sinks.Finish(args, "check", rc == 0, rc);
}

// Deterministic schedule exploration: fenced reference vs optimized build,
// outcome-set diff in both directions, shrinking, replayable repro strings.
int CmdExploreImpl(const Args& args, ObsSinks& sinks) {
  const obs::Session& session = sinks.session;
  auto image = binary::Image::ReadFrom(args.positional[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<uint8_t>> inputs = LoadInputs(args);

  // Reference: fully fenced, stack-local elision off — the gold behavior.
  recomp::RecompileOptions ref_options;
  ref_options.lift.elide_stack_local_fences = false;
  ref_options.jobs = args.jobs;
  ref_options.obs = session;
  recomp::Recompiler ref_recompiler(*image, ref_options);
  auto reference = ref_recompiler.Recompile();
  if (!reference.ok()) {
    std::fprintf(stderr, "FAIL (reference build): %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  // Converge the CFG under the default schedule so controlled runs do not
  // trip over control-flow misses mid-exploration.
  auto ref_warm = ref_recompiler.RunAdditive(*reference, inputs);
  if (!ref_warm.ok()) {
    std::fprintf(stderr, "FAIL (reference run): %s\n",
                 ref_warm.status().ToString().c_str());
    return 1;
  }

  // Optimized side: the build under test. --remove-fences deletes every
  // fence with no certificate — the fault-injection mode the harness's own
  // acceptance test uses.
  recomp::RecompileOptions opt_options;
  opt_options.remove_fences = args.remove_fences;
  opt_options.optimize = args.optimize;
  opt_options.jobs = args.jobs;
  // --analyze puts the statically-elided build under test and feeds the
  // reported race addresses to the explorer as preemption hints below.
  opt_options.analyze = args.analyze;
  // --cfg-sound puts the cfmiss-elided build under test: the optimized side
  // runs with the certified sites' uncovered-edge guards dropped, while the
  // fenced reference keeps full dynamic recovery — any digest divergence
  // would expose an unsound certificate.
  opt_options.cfg_sound = args.cfg_sound;
  opt_options.obs = session;
  recomp::Recompiler opt_recompiler(*image, opt_options);
  auto optimized = opt_recompiler.Recompile();
  if (!optimized.ok()) {
    std::fprintf(stderr, "FAIL (optimized build): %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  auto opt_warm = opt_recompiler.RunAdditive(*optimized, inputs);
  if (!opt_warm.ok()) {
    std::fprintf(stderr, "FAIL (optimized run): %s\n",
                 opt_warm.status().ToString().c_str());
    return 1;
  }
  std::set<uint64_t> certified_entries;
  if (args.cfg_sound) {
    certified_entries = FinishCfgSound(opt_recompiler, sinks);
  }

  auto make_run = [&](const lift::LiftedProgram* program) {
    return [&, program](sched::Scheduler* scheduler) {
      vm::ExternalLibrary library;
      exec::ExecOptions exec_options;
      exec_options.seed = args.seed;
      exec_options.scheduler = scheduler;
      exec_options.obs = session;
      exec_options.tier = args.tier;
      exec_options.tier_threshold = args.tier_threshold;
      if (program == &optimized->program) {
        exec_options.cfg_certified_entries = certified_entries;
      }
      exec::Engine engine(*program, *image, &library, exec_options);
      engine.SetInputs(inputs);
      exec::ExecResult r = engine.Run();
      sched::Outcome outcome;
      outcome.ok = r.ok;
      outcome.exit_code = r.exit_code;
      outcome.output = r.output;
      outcome.fault_message = r.fault_message;
      outcome.state_digest = r.state_digest;
      return outcome;
    };
  };
  sched::RunFn run_reference = make_run(&reference->program);
  sched::RunFn run_optimized = make_run(&optimized->program);

  if (!args.replay.empty()) {
    // Replay mode: run one schedule on both sides and report the outcomes.
    std::string text = args.replay;
    if (std::filesystem::exists(args.replay)) {
      std::ifstream in(args.replay);
      text.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    }
    sched::Schedule schedule;
    auto parsed = sched::Schedule::Parse(text);
    if (!parsed.ok()) {
      auto corpus = sched::CorpusEntry::Parse(text);
      if (!corpus.ok()) {
        std::fprintf(stderr, "cannot parse schedule: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      schedule = corpus->schedule;
    } else {
      schedule = *parsed;
    }
    for (bool on_reference : {true, false}) {
      sched::ReplayScheduler replay(schedule);
      sched::Outcome outcome =
          (on_reference ? run_reference : run_optimized)(&replay);
      std::printf("%s: [%s] digest=%s%s\n",
                  on_reference ? "reference" : "optimized",
                  outcome.Key().c_str(),
                  HexString(outcome.state_digest).c_str(),
                  replay.skipped_decisions() > 0 ? " (decisions skipped)" : "");
    }
    return 0;
  }

  sched::ExploreOptions explore_options;
  explore_options.seed = args.seed;
  explore_options.budget = args.budget;
  explore_options.pct.depth = args.depth;
  explore_options.dfs_preemption_bound = args.dfs_bound;
  explore_options.obs = session;
  if (args.analyze) {
    // Statically reported racing blocks become preemption hints: the PCT
    // side of the exploration forces context switches exactly where the
    // race detector believes two threads can collide.
    analyze::AnalyzeOptions analyze_options;
    analyze_options.jobs = args.jobs;
    analyze::AnalysisResult analysis =
        analyze::AnalyzeProgram(optimized->program, analyze_options);
    explore_options.preemption_hints =
        analyze::RaceHintAddresses(analysis.races);
    std::printf("analyze: %zu race pair(s) -> %zu preemption hint(s)\n",
                analysis.races.pairs.size(),
                explore_options.preemption_hints.size());
  }
  if (args.strategy == "pct") {
    explore_options.strategy = sched::ExploreOptions::Strategy::kPct;
  } else if (args.strategy == "dfs") {
    explore_options.strategy = sched::ExploreOptions::Strategy::kDfs;
  } else if (args.strategy == "both") {
    explore_options.strategy = sched::ExploreOptions::Strategy::kBoth;
  } else {
    std::fprintf(stderr, "unknown --strategy %s\n", args.strategy.c_str());
    return Usage();
  }

  sched::DiffReport report = sched::DiffExplore(run_reference, run_optimized,
                                               args.seed, explore_options);
  std::printf("%s\n", report.message.c_str());
  if (!report.diverged) {
    std::printf("PASS\n");
    return 0;
  }
  if (!args.save_sched.empty()) {
    sched::CorpusEntry entry;
    entry.program = args.positional[0];
    // The side the schedule must be replayed on to exhibit `expect`.
    entry.variant = report.missing_in_optimized
                        ? "fenced"
                        : (args.remove_fences ? "nofence" : "optimized");
    entry.expect = report.divergence_key;
    entry.schedule = report.witness;
    std::ofstream out(args.save_sched);
    out << "# saved by `polynima explore`; replay with --replay\n"
        << entry.Serialize();
    std::printf("witness schedule written to %s\n", args.save_sched.c_str());
  }
  std::fprintf(stderr, "FAIL: optimized build diverges from the fenced "
                       "reference under the explored schedules\n");
  return 1;
}

int CmdExplore(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  ObsSinks sinks(args);
  int rc = CmdExploreImpl(args, sinks);
  return sinks.Finish(args, "explore", rc == 0, rc);
}

// Renders (or, with --validate, only structurally validates) observability
// artifacts: any mix of trace / metrics / profile / tierprof / report JSON
// files.
int CmdReport(const Args& args) {
  if (args.positional.empty()) {
    return Usage();
  }
  int rc = 0;
  for (const std::string& path : args.positional) {
    auto doc = json::ReadFile(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      rc = 1;
      continue;
    }
    auto kind = obs::ValidateObsJson(*doc);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(),
                   kind.status().ToString().c_str());
      rc = 1;
      continue;
    }
    if (args.validate) {
      std::printf("%s: valid %s\n", path.c_str(), kind->c_str());
      continue;
    }
    if (args.positional.size() > 1) {
      std::printf("== %s ==\n", path.c_str());
    }
    if (*kind == "trace") {
      std::fputs(obs::RenderTraceSummary(*doc).c_str(), stdout);
    } else if (*kind == "metrics") {
      std::fputs(obs::RenderMetrics(*doc).c_str(), stdout);
    } else if (*kind == "profile") {
      std::fputs(obs::RenderProfile(*doc, args.top).c_str(), stdout);
    } else if (*kind == "tierprof") {
      std::fputs(obs::RenderTierProf(*doc, args.top).c_str(), stdout);
    } else {
      std::fputs(obs::RenderReport(*doc, args.top).c_str(), stdout);
    }
  }
  return rc;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "compile") {
    return CmdCompile(args);
  }
  if (cmd == "disasm") {
    return CmdDisasm(args);
  }
  if (cmd == "recompile") {
    return CmdRecompile(args);
  }
  if (cmd == "run") {
    return CmdRun(args);
  }
  if (cmd == "analyze") {
    return CmdAnalyze(args);
  }
  if (cmd == "check") {
    return CmdCheck(args);
  }
  if (cmd == "explore") {
    return CmdExplore(args);
  }
  if (cmd == "report") {
    return CmdReport(args);
  }
  return Usage();
}

}  // namespace
}  // namespace polynima

int main(int argc, char** argv) { return polynima::Main(argc, argv); }
