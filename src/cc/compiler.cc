#include "src/cc/compiler.h"

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/binary/builder.h"
#include "src/cc/parser.h"
#include "src/support/check.h"
#include "src/support/strings.h"
#include "src/vm/external.h"
#include "src/x86/assembler.h"

namespace polynima::cc {
namespace {

using binary::ImageBuilder;
using x86::Cond;
using x86::I0;
using x86::I1;
using x86::I2;
using x86::I3;
using x86::Inst;
using x86::Label;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::Reg;

Operand R(Reg r) { return Operand::R(r); }
Operand Imm(int64_t v) { return Operand::I(v); }

MemRef MemAbs(uint64_t addr) {
  MemRef m;
  m.disp = static_cast<int32_t>(addr);
  return m;
}

MemRef MemBase(Reg base, int32_t disp = 0) {
  MemRef m;
  m.base = base;
  m.disp = disp;
  return m;
}

MemRef MemIndex(Reg base, Reg index, uint8_t scale, int32_t disp = 0) {
  MemRef m;
  m.base = base;
  m.index = index;
  m.scale = scale;
  m.disp = disp;
  return m;
}

bool IsBuiltinName(const std::string& name) {
  return StartsWith(name, "__atomic_") || name == "__pause" ||
         StartsWith(name, "__v");
}

// Lvalue classification for the O2 "direct operand" shortcut.
struct SimpleValue {
  enum class Kind { kImm, kMem, kReg } kind;
  int64_t imm = 0;
  MemRef mem;
  Reg reg = Reg::kNone;
  const Type* type = nullptr;
};

struct LocalVar {
  const Type* type = nullptr;
  int32_t slot = 0;        // negative offset from rbp
  Reg promoted = Reg::kNone;
  bool IsPromoted() const { return promoted != Reg::kNone; }
};

struct FuncInfo {
  Label label;
  const Type* ret = nullptr;
  std::vector<const Type*> params;
  bool is_external = false;
  uint64_t ext_addr = 0;
};

class CodeGen {
 public:
  CodeGen(Program program, const CompileOptions& options)
      : program_(std::move(program)),
        options_(options),
        builder_(options.name),
        types_(program_.types) {}

  Expected<binary::Image> Run();

 private:
  // --- top-level passes ---
  Status LayoutGlobals();
  Status DeclareFunctions();
  Status GenFunction(const Func& fn);

  // --- statement generation ---
  void GenStmt(const Stmt& s);
  void GenBlock(const Stmt& s);
  void GenSwitch(const Stmt& s);

  // --- expression generation (result in rax, width = type's operand size) ---
  const Type* GenExpr(const Expr& e);
  // Leaves the lvalue's address in rax; returns the value type.
  const Type* GenAddr(const Expr& e);
  const Type* GenBinaryOp(const Expr& e);
  const Type* GenCall(const Expr& e);
  const Type* GenBuiltin(const Expr& e);
  void GenVectorBuiltin(const std::string& name, const Expr& e);
  const Type* GenAssign(const Expr& e);
  const Type* GenIncDec(const Expr& e, bool is_inc, bool is_post);
  void EmitCompoundOp(Tok op, const Type* t);
  void EmitLoadConst(const Type* t, int64_t v);
  void LoadScalarFromMem(const MemRef& mem, const Type* t);
  uint64_t InternString(const std::string& s);

  // Branch to `target` if e is true (branch_if_true) / false.
  void GenBranch(const Expr& e, Label target, bool branch_if_true);

  // --- typing ---
  const Type* TypeOf(const Expr& e);
  const Type* Arith(const Type* a, const Type* b) const;
  // Array-to-pointer decay.
  const Type* Decay(const Type* t) {
    return t->kind == TypeKind::kArray ? types_->PointerTo(t->pointee) : t;
  }

  // --- helpers ---
  void Error(int line, const std::string& message) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument(
          StrCat("compile error (", options_.name, ") line ", line, ": ",
                 message));
    }
  }
  LocalVar* FindLocal(const std::string& name);
  // Loads a scalar at [address in rax] with the value type's width; result
  // in rax (chars sign-extend to 32 bits).
  void LoadScalarFromRaxAddr(const Type* t);
  void StoreRcxAddrFromRax(const Type* t);
  // Sign-extends the value in rax from `from` to `to` width if needed.
  void Widen(const Type* from, const Type* to);
  // Emits code scaling rax by the size of `pointee` (for pointer arith).
  void ScaleRaxBy(int64_t elem_size);
  int OpSize(const Type* t) const { return t->OperandSize(); }
  // O2: classify `e` as a direct operand (imm / memory slot / promoted reg).
  std::optional<SimpleValue> TrySimple(const Expr& e);
  void Push();  // push rax
  void Pop(Reg r);

  // AST constant folding (O2).
  std::optional<int64_t> FoldConst(const Expr& e);

  void CollectLocals(const Stmt& s, int64_t& bytes,
                     std::map<std::string, int>& decl_counts);
  void CountUses(const Stmt& s, std::map<std::string, int>& uses,
                 std::set<std::string>& addr_taken);
  void CountUsesExpr(const Expr& e, std::map<std::string, int>& uses,
                     std::set<std::string>& addr_taken);

  Program program_;
  CompileOptions options_;
  ImageBuilder builder_;
  std::shared_ptr<TypeTable> types_;
  Status error_;

  // globals: name -> (address, type)
  std::map<std::string, std::pair<uint64_t, const Type*>> globals_;
  std::map<std::string, FuncInfo> funcs_;

  // per-function state
  struct ScopeEntry {
    std::string name;
  };
  std::map<std::string, std::vector<LocalVar>> locals_;
  std::vector<std::vector<std::string>> scopes_;
  std::map<std::string, Reg> promotions_;
  int32_t next_slot_ = 0;
  Label epilogue_;
  const Type* current_ret_ = nullptr;
  std::vector<Label> break_stack_;
  std::vector<Label> continue_stack_;

  std::map<std::string, uint64_t> string_cache_;

  // Global-initializer slots holding a function address, patched after all
  // code is generated (function labels bound): {assembler, slot address,
  // function name}.
  struct GlobalFnFixup {
    x86::Assembler* assembler;
    uint64_t address;
    std::string func;
  };
  std::vector<GlobalFnFixup> global_fn_fixups_;
};

Expected<binary::Image> CodeGen::Run() {
  POLY_RETURN_IF_ERROR(LayoutGlobals());
  POLY_RETURN_IF_ERROR(DeclareFunctions());
  for (const Func& fn : program_.funcs) {
    if (fn.body != nullptr) {
      POLY_RETURN_IF_ERROR(GenFunction(fn));
      if (!error_.ok()) {
        return error_;
      }
    }
  }
  if (!error_.ok()) {
    return error_;
  }
  for (const GlobalFnFixup& fixup : global_fn_fixups_) {
    auto it = funcs_.find(fixup.func);
    if (it == funcs_.end() || it->second.is_external) {
      return Status::InvalidArgument(
          StrCat("global initializer names unknown function ", fixup.func));
    }
    fixup.assembler->PatchQwordAt(fixup.address,
                                  builder_.code().AddressOf(it->second.label));
  }
  auto main_it = funcs_.find("main");
  if (main_it == funcs_.end() || main_it->second.is_external) {
    return Status::InvalidArgument("no main() defined");
  }
  builder_.SetEntry(builder_.code().AddressOf(main_it->second.label));
  return builder_.Build();
}

Status CodeGen::LayoutGlobals() {
  for (const GlobalVar& g : program_.globals) {
    // `const` globals go to the read-only segment — the basis for the
    // --cfg-sound provenance argument that function-pointer tables placed
    // there cannot change at runtime.
    auto& d = g.is_const ? builder_.rodata() : builder_.data();
    d.Align(static_cast<int>(std::max<int64_t>(g.type->Align(), 1)), 0);
    uint64_t addr = d.CurrentAddress();
    globals_[g.name] = {addr, g.type};

    int64_t total = g.type->Size();
    if (!g.has_init) {
      for (int64_t i = 0; i < total; ++i) {
        d.Db(static_cast<uint8_t>(0));
      }
      continue;
    }
    if (g.init_is_string) {
      if (g.type->kind == TypeKind::kArray) {
        // char buf[N] = "str";
        std::string s = g.init_string;
        s.resize(static_cast<size_t>(total), '\0');
        d.Db(s.data(), s.size());
      } else {
        // char* p = "str": string first would shift addr; instead place the
        // pointer slot now and the string bytes after all globals. Simpler:
        // write placeholder, patch via a second data region — avoided by
        // emitting the string immediately after the pointer slot.
        uint64_t str_addr = addr + 8;
        d.Dq(str_addr);
        d.Dstr(g.init_string);
      }
      continue;
    }
    // Scalar / array-of-scalar initializers.
    const Type* elem =
        g.type->kind == TypeKind::kArray ? g.type->pointee : g.type;
    int64_t elem_size = elem->Size();
    int64_t count = g.type->kind == TypeKind::kArray ? g.type->array_len : 1;
    for (int64_t i = 0; i < count; ++i) {
      // Function-name initializers (function-pointer tables): emit a
      // placeholder qword and patch the function's address in after the code
      // region is laid out (GenFunction binds the labels).
      if (i < static_cast<int64_t>(g.init_funcs.size()) &&
          !g.init_funcs[static_cast<size_t>(i)].empty()) {
        if (elem_size != 8) {
          return Status::InvalidArgument(
              StrCat("global ", g.name,
                     ": function-address initializer needs a pointer slot"));
        }
        global_fn_fixups_.push_back(
            {&d, d.CurrentAddress(), g.init_funcs[static_cast<size_t>(i)]});
        d.Dq(uint64_t{0});
        continue;
      }
      int64_t v = i < static_cast<int64_t>(g.init_values.size())
                      ? g.init_values[static_cast<size_t>(i)]
                      : 0;
      for (int64_t byte = 0; byte < elem_size; ++byte) {
        d.Db(static_cast<uint8_t>(static_cast<uint64_t>(v) >> (8 * byte)));
      }
    }
  }
  return Status::Ok();
}

Status CodeGen::DeclareFunctions() {
  // Definitions first so that forward declarations of locally-defined
  // functions do not become imports.
  for (const Func& fn : program_.funcs) {
    if (fn.body == nullptr) {
      continue;
    }
    FuncInfo info;
    info.ret = fn.ret;
    for (const Param& p : fn.params) {
      info.params.push_back(p.type);
    }
    info.label = builder_.code().NewLabel();
    funcs_[fn.name] = std::move(info);
  }
  for (const Func& fn : program_.funcs) {
    if (fn.body != nullptr || funcs_.count(fn.name) != 0) {
      continue;
    }
    FuncInfo info;
    info.ret = fn.ret;
    for (const Param& p : fn.params) {
      info.params.push_back(p.type);
    }
    // Imported external (must be provided by the external library).
    info.is_external = true;
    info.ext_addr = builder_.Extern(fn.name);
    funcs_[fn.name] = std::move(info);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Function body generation
// ---------------------------------------------------------------------------

void CodeGen::CollectLocals(const Stmt& s, int64_t& bytes,
                            std::map<std::string, int>& decl_counts) {
  switch (s.kind) {
    case StmtKind::kDecl:
      bytes += (s.decl_type->Size() + 7) / 8 * 8;
      decl_counts[s.decl_name]++;
      break;
    case StmtKind::kBlock:
      for (const StmtPtr& c : s.stmts) {
        CollectLocals(*c, bytes, decl_counts);
      }
      break;
    case StmtKind::kIf:
      if (s.then_stmt) CollectLocals(*s.then_stmt, bytes, decl_counts);
      if (s.else_stmt) CollectLocals(*s.else_stmt, bytes, decl_counts);
      break;
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
    case StmtKind::kSwitch:
      if (s.body) CollectLocals(*s.body, bytes, decl_counts);
      break;
    case StmtKind::kFor:
      if (s.init) CollectLocals(*s.init, bytes, decl_counts);
      if (s.body) CollectLocals(*s.body, bytes, decl_counts);
      break;
    default:
      break;
  }
}

void CodeGen::CountUsesExpr(const Expr& e, std::map<std::string, int>& uses,
                            std::set<std::string>& addr_taken) {
  if (e.kind == ExprKind::kIdent) {
    uses[e.text]++;
  }
  if (e.kind == ExprKind::kUnary && e.op == Tok::kAmp &&
      e.a->kind == ExprKind::kIdent) {
    addr_taken.insert(e.a->text);
  }
  if (e.a) CountUsesExpr(*e.a, uses, addr_taken);
  if (e.b) CountUsesExpr(*e.b, uses, addr_taken);
  if (e.c) CountUsesExpr(*e.c, uses, addr_taken);
  for (const ExprPtr& arg : e.args) {
    CountUsesExpr(*arg, uses, addr_taken);
  }
}

void CodeGen::CountUses(const Stmt& s, std::map<std::string, int>& uses,
                        std::set<std::string>& addr_taken) {
  int weight = 1;
  if (s.kind == StmtKind::kWhile || s.kind == StmtKind::kDoWhile ||
      s.kind == StmtKind::kFor) {
    weight = 8;  // loop bodies dominate execution: weight their uses higher
  }
  auto count_expr = [&](const ExprPtr& e) {
    if (e) {
      std::map<std::string, int> local;
      CountUsesExpr(*e, local, addr_taken);
      for (auto& [name, n] : local) {
        uses[name] += n * weight;
      }
    }
  };
  count_expr(s.expr);
  count_expr(s.cond);
  count_expr(s.inc);
  count_expr(s.decl_init);
  if (s.init) CountUses(*s.init, uses, addr_taken);
  if (s.then_stmt) CountUses(*s.then_stmt, uses, addr_taken);
  if (s.else_stmt) CountUses(*s.else_stmt, uses, addr_taken);
  if (s.body) {
    std::map<std::string, int> inner;
    CountUses(*s.body, inner, addr_taken);
    for (auto& [name, n] : inner) {
      uses[name] += n * weight;
    }
  }
  for (const StmtPtr& c : s.stmts) {
    CountUses(*c, uses, addr_taken);
  }
}

Status CodeGen::GenFunction(const Func& fn) {
  auto& a = builder_.code();
  FuncInfo& info = funcs_[fn.name];
  a.Align(16);
  a.Bind(info.label);
  builder_.AddSymbol(fn.name, a.CurrentAddress());
  if (options_.landing_pads) {
    a.Emit(I0(Mnemonic::kEndbr64));
  }

  locals_.clear();
  scopes_.clear();
  scopes_.emplace_back();
  promotions_.clear();
  next_slot_ = 0;
  epilogue_ = a.NewLabel();
  current_ret_ = fn.ret;
  break_stack_.clear();
  continue_stack_.clear();

  // Pass 1: frame sizing and promotion selection.
  int64_t local_bytes = 0;
  std::map<std::string, int> decl_counts;
  std::map<std::string, int> uses;
  std::set<std::string> addr_taken;
  CollectLocals(*fn.body, local_bytes, decl_counts);
  CountUses(*fn.body, uses, addr_taken);
  for (const Param& p : fn.params) {
    decl_counts[p.name]++;
    local_bytes += 8;
  }

  static const Reg kPromotable[] = {Reg::kRbx, Reg::kR12, Reg::kR13,
                                    Reg::kR14, Reg::kR15};
  std::vector<Reg> saved_regs;
  if (options_.opt_level >= 2) {
    // Rank scalar, non-address-taken, uniquely-declared locals by use count.
    std::vector<std::pair<int, std::string>> ranked;
    for (const auto& [name, count] : uses) {
      if (addr_taken.count(name) || decl_counts[name] != 1) {
        continue;
      }
      ranked.push_back({count, name});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    size_t reg_i = 0;
    for (const auto& [count, name] : ranked) {
      if (reg_i >= std::size(kPromotable) || count < 3) {
        break;
      }
      promotions_[name] = kPromotable[reg_i++];
    }
    for (size_t i = 0; i < reg_i; ++i) {
      saved_regs.push_back(kPromotable[i]);
    }
  }

  // Frame: [rbp-8 .. rbp-8*n]: saved callee-saved regs, then locals.
  int64_t save_bytes = static_cast<int64_t>(saved_regs.size()) * 8;
  int64_t frame = (save_bytes + local_bytes + 15) / 16 * 16 + 16;
  next_slot_ = static_cast<int32_t>(-save_bytes);

  // Prologue.
  a.Emit(I1(Mnemonic::kPush, 8, R(Reg::kRbp)));
  a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRbp), R(Reg::kRsp)));
  a.Emit(I2(Mnemonic::kSub, 8, R(Reg::kRsp), Imm(frame)));
  for (size_t i = 0; i < saved_regs.size(); ++i) {
    a.Emit(I2(Mnemonic::kMov, 8,
              Operand::M(MemBase(Reg::kRbp, static_cast<int32_t>(-8 * (i + 1)))),
              R(saved_regs[i])));
  }

  // Bind parameters.
  static const Reg kArgRegs[6] = {Reg::kRdi, Reg::kRsi, Reg::kRdx,
                                  Reg::kRcx, Reg::kR8,  Reg::kR9};
  if (fn.params.size() > 6) {
    Error(fn.line, "more than 6 parameters not supported");
    return error_;
  }
  for (size_t i = 0; i < fn.params.size(); ++i) {
    const Param& p = fn.params[i];
    LocalVar var;
    var.type = p.type;
    auto promo = promotions_.find(p.name);
    if (promo != promotions_.end()) {
      var.promoted = promo->second;
      a.Emit(I2(Mnemonic::kMov, 8, R(var.promoted), R(kArgRegs[i])));
    } else {
      next_slot_ -= 8;
      var.slot = next_slot_;
      a.Emit(I2(Mnemonic::kMov, 8, Operand::M(MemBase(Reg::kRbp, var.slot)),
                R(kArgRegs[i])));
    }
    locals_[p.name].push_back(var);
    scopes_.back().push_back(p.name);
  }

  GenStmt(*fn.body);

  // Implicit `return 0`.
  a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRax), R(Reg::kRax)));
  a.Bind(epilogue_);
  for (size_t i = 0; i < saved_regs.size(); ++i) {
    a.Emit(I2(Mnemonic::kMov, 8, R(saved_regs[i]),
              Operand::M(MemBase(Reg::kRbp, static_cast<int32_t>(-8 * (i + 1))))));
  }
  a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRsp), R(Reg::kRbp)));
  a.Emit(I1(Mnemonic::kPop, 8, R(Reg::kRbp)));
  a.Emit(I0(Mnemonic::kRet));
  return error_;
}

LocalVar* CodeGen::FindLocal(const std::string& name) {
  auto it = locals_.find(name);
  if (it == locals_.end() || it->second.empty()) {
    return nullptr;
  }
  return &it->second.back();
}

void CodeGen::Push() {
  builder_.code().Emit(I1(Mnemonic::kPush, 8, R(Reg::kRax)));
}

void CodeGen::Pop(Reg r) {
  builder_.code().Emit(I1(Mnemonic::kPop, 8, R(r)));
}

// ---------------------------------------------------------------------------
// Typing
// ---------------------------------------------------------------------------

const Type* CodeGen::Arith(const Type* a, const Type* b) const {
  if (a->kind == TypeKind::kPtr) {
    return a;
  }
  if (b->kind == TypeKind::kPtr) {
    return b;
  }
  if (a->kind == TypeKind::kLong || b->kind == TypeKind::kLong) {
    return types_->Long();
  }
  return types_->Int();
}

const Type* CodeGen::TypeOf(const Expr& e) {
  if (e.type != nullptr) {
    return e.type;
  }
  const Type* t = types_->Long();
  switch (e.kind) {
    case ExprKind::kNumber:
      t = (e.number >= INT32_MIN && e.number <= INT32_MAX) ? types_->Int()
                                                           : types_->Long();
      break;
    case ExprKind::kString:
      t = types_->PointerTo(types_->Char());
      break;
    case ExprKind::kIdent: {
      if (LocalVar* var = FindLocal(e.text)) {
        t = var->type;
      } else if (auto git = globals_.find(e.text); git != globals_.end()) {
        t = git->second.second;
      } else if (auto fit = funcs_.find(e.text); fit != funcs_.end()) {
        t = types_->PointerTo(
            types_->FunctionOf(fit->second.ret, fit->second.params));
      } else {
        Error(e.line, "undefined identifier '" + e.text + "'");
      }
      break;
    }
    case ExprKind::kUnary:
      switch (e.op) {
        case Tok::kStar: {
          const Type* p = TypeOf(*e.a);
          if (!p->IsPointerLike()) {
            Error(e.line, "dereference of non-pointer");
            t = types_->Long();
          } else {
            t = p->pointee;
          }
          break;
        }
        case Tok::kAmp:
          t = types_->PointerTo(TypeOf(*e.a));
          break;
        case Tok::kBang:
          t = types_->Int();
          break;
        default:
          t = TypeOf(*e.a);
          if (t->kind == TypeKind::kChar) {
            t = types_->Int();
          }
          break;
      }
      break;
    case ExprKind::kBinary:
      switch (e.op) {
        case Tok::kEqEq:
        case Tok::kBangEq:
        case Tok::kLess:
        case Tok::kLessEq:
        case Tok::kGreater:
        case Tok::kGreaterEq:
        case Tok::kAmpAmp:
        case Tok::kPipePipe:
          t = types_->Int();
          break;
        case Tok::kMinus: {
          const Type* ta = TypeOf(*e.a);
          const Type* tb = TypeOf(*e.b);
          if (ta->IsPointerLike() && tb->IsPointerLike()) {
            t = types_->Long();  // pointer difference (in elements)
          } else {
            t = Arith(Decay(ta), Decay(tb));
          }
          break;
        }
        default:
          t = Arith(Decay(TypeOf(*e.a)), Decay(TypeOf(*e.b)));
          break;
      }
      break;
    case ExprKind::kAssign:
    case ExprKind::kCompound:
      t = TypeOf(*e.a);
      break;
    case ExprKind::kCond: {
      const Type* tb = Decay(TypeOf(*e.b));
      const Type* tc = Decay(TypeOf(*e.c));
      if (tb->IsInteger() && tc->IsInteger()) {
        t = Arith(tb, tc);
      } else {
        // Pointer-typed arms: both sides share the pointer type.
        t = tb->kind == TypeKind::kPtr ? tb : tc;
      }
      break;
    }
    case ExprKind::kCall: {
      if (e.a->kind == ExprKind::kIdent) {
        const std::string& name = e.a->text;
        if (IsBuiltinName(name)) {
          if (StartsWith(name, "__atomic_")) {
            const Type* p = TypeOf(*e.args[0]);
            t = p->IsPointerLike() ? p->pointee : types_->Long();
          } else if (name == "__vdot_i32" || name == "__vsum_i32") {
            t = types_->Int();
          } else {
            t = types_->Void();
          }
          break;
        }
        if (auto fit = funcs_.find(name); fit != funcs_.end()) {
          t = fit->second.ret;
          break;
        }
      }
      const Type* callee = TypeOf(*e.a);
      if (callee->kind == TypeKind::kPtr &&
          callee->pointee->kind == TypeKind::kFunc) {
        t = callee->pointee->ret;
      } else {
        Error(e.line, "call of non-function");
      }
      break;
    }
    case ExprKind::kIndex: {
      const Type* p = TypeOf(*e.a);
      if (!p->IsPointerLike()) {
        Error(e.line, "indexing non-pointer");
      } else {
        t = p->pointee;
      }
      break;
    }
    case ExprKind::kMember:
    case ExprKind::kArrow: {
      const Type* base = TypeOf(*e.a);
      const Type* st = e.kind == ExprKind::kArrow
                           ? (base->IsPointerLike() ? base->pointee : nullptr)
                           : base;
      if (st == nullptr || st->kind != TypeKind::kStruct) {
        Error(e.line, "member access on non-struct");
      } else if (const StructField* f = st->struct_info->FindField(e.text)) {
        t = f->type;
      } else {
        Error(e.line, "no field '" + e.text + "'");
      }
      break;
    }
    case ExprKind::kCast:
      t = e.named_type;
      break;
    case ExprKind::kSizeof:
      t = types_->Long();
      break;
    case ExprKind::kPreInc:
    case ExprKind::kPreDec:
    case ExprKind::kPostInc:
    case ExprKind::kPostDec:
      t = TypeOf(*e.a);
      break;
  }
  const_cast<Expr&>(e).type = t;
  return t;
}

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

void CodeGen::LoadScalarFromRaxAddr(const Type* t) {
  auto& a = builder_.code();
  if (t->kind == TypeKind::kArray || t->kind == TypeKind::kStruct) {
    return;  // aggregate value == its address
  }
  switch (OpSize(t)) {
    case 1: {
      Inst i = I2(Mnemonic::kMovsx, 4, R(Reg::kRax),
                  Operand::M(MemBase(Reg::kRax)));
      i.src_size = 1;
      a.Emit(i);
      break;
    }
    case 4:
      a.Emit(I2(Mnemonic::kMov, 4, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRax))));
      break;
    default:
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRax))));
      break;
  }
}

void CodeGen::StoreRcxAddrFromRax(const Type* t) {
  builder_.code().Emit(I2(Mnemonic::kMov, OpSize(t),
                          Operand::M(MemBase(Reg::kRcx)), R(Reg::kRax)));
}

void CodeGen::LoadScalarFromMem(const MemRef& mem, const Type* t) {
  auto& a = builder_.code();
  if (t->kind == TypeKind::kChar) {
    Inst i = I2(Mnemonic::kMovsx, 4, R(Reg::kRax), Operand::M(mem));
    i.src_size = 1;
    a.Emit(i);
  } else {
    a.Emit(I2(Mnemonic::kMov, OpSize(t), R(Reg::kRax), Operand::M(mem)));
  }
}

// Width of the value as held in a register: chars are kept sign-extended to
// 32 bits by every load path.
static int RegWidth(const Type* t) {
  return t->kind == TypeKind::kChar ? 4 : t->OperandSize();
}

void CodeGen::Widen(const Type* from, const Type* to) {
  auto& a = builder_.code();
  int f = RegWidth(from);
  int t = to->kind == TypeKind::kChar ? 1 : to->OperandSize();
  if (f == 4 && t == 8) {
    Inst i = I2(Mnemonic::kMovsx, 8, R(Reg::kRax), R(Reg::kRax));
    i.src_size = 4;
    a.Emit(i);
  } else if (t == 1) {
    // Normalize to a sign-extended char value.
    Inst i = I2(Mnemonic::kMovsx, 4, R(Reg::kRax), R(Reg::kRax));
    i.src_size = 1;
    a.Emit(i);
  } else if (f == 8 && t == 4) {
    // Truncate: clear the upper half.
    a.Emit(I2(Mnemonic::kMov, 4, R(Reg::kRax), R(Reg::kRax)));
  }
}

void CodeGen::ScaleRaxBy(int64_t elem_size) {
  auto& a = builder_.code();
  if (elem_size == 1) {
    return;
  }
  if ((elem_size & (elem_size - 1)) == 0) {
    int shift = 0;
    while ((int64_t{1} << shift) < elem_size) {
      ++shift;
    }
    a.Emit(I2(Mnemonic::kShl, 8, R(Reg::kRax), Imm(shift)));
  } else {
    a.Emit(I3(Mnemonic::kImul, 8, R(Reg::kRax), R(Reg::kRax), Imm(elem_size)));
  }
}

std::optional<SimpleValue> CodeGen::TrySimple(const Expr& e) {
  // Direct-operand forms (`add eax, [rbp-8]`) are what gcc emits even at
  // -O0; only register promotion and folding are O2-gated.
  SimpleValue v;
  if (e.kind == ExprKind::kNumber && e.number >= INT32_MIN &&
      e.number <= INT32_MAX) {
    v.kind = SimpleValue::Kind::kImm;
    v.imm = e.number;
    v.type = const_cast<Expr&>(e).type != nullptr ? e.type : nullptr;
    return v;
  }
  if (e.kind != ExprKind::kIdent) {
    return std::nullopt;
  }
  if (LocalVar* var = FindLocal(e.text)) {
    if (!var->type->IsScalar() || var->type->kind == TypeKind::kChar) {
      return std::nullopt;
    }
    v.type = var->type;
    if (var->IsPromoted()) {
      v.kind = SimpleValue::Kind::kReg;
      v.reg = var->promoted;
    } else {
      v.kind = SimpleValue::Kind::kMem;
      v.mem = MemBase(Reg::kRbp, var->slot);
    }
    return v;
  }
  auto git = globals_.find(e.text);
  if (git != globals_.end() && git->second.second->IsScalar() &&
      git->second.second->kind != TypeKind::kChar) {
    v.kind = SimpleValue::Kind::kMem;
    v.mem = MemAbs(git->second.first);
    v.type = git->second.second;
    return v;
  }
  return std::nullopt;
}

std::optional<int64_t> CodeGen::FoldConst(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return e.number;
    case ExprKind::kSizeof:
      return e.named_type->Size();
    case ExprKind::kUnary: {
      auto a = FoldConst(*e.a);
      if (!a) {
        return std::nullopt;
      }
      switch (e.op) {
        case Tok::kMinus:
          return -*a;
        case Tok::kTilde:
          return ~*a;
        case Tok::kBang:
          return *a == 0 ? 1 : 0;
        default:
          return std::nullopt;
      }
    }
    case ExprKind::kCast: {
      auto a = FoldConst(*e.a);
      if (!a || !e.named_type->IsInteger()) {
        return std::nullopt;
      }
      return *a;
    }
    case ExprKind::kBinary: {
      auto a = FoldConst(*e.a);
      auto b = FoldConst(*e.b);
      if (!a || !b) {
        return std::nullopt;
      }
      switch (e.op) {
        case Tok::kPlus:
          return *a + *b;
        case Tok::kMinus:
          return *a - *b;
        case Tok::kStar:
          return *a * *b;
        case Tok::kSlash:
          return *b == 0 ? std::nullopt : std::optional<int64_t>(*a / *b);
        case Tok::kPercent:
          return *b == 0 ? std::nullopt : std::optional<int64_t>(*a % *b);
        case Tok::kAmp:
          return *a & *b;
        case Tok::kPipe:
          return *a | *b;
        case Tok::kCaret:
          return *a ^ *b;
        case Tok::kShl:
          return *a << (*b & 63);
        case Tok::kShr:
          return *a >> (*b & 63);
        case Tok::kLess:
          return *a < *b;
        case Tok::kLessEq:
          return *a <= *b;
        case Tok::kGreater:
          return *a > *b;
        case Tok::kGreaterEq:
          return *a >= *b;
        case Tok::kEqEq:
          return *a == *b;
        case Tok::kBangEq:
          return *a != *b;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

void CodeGen::EmitLoadConst(const Type* t, int64_t v) {
  auto& a = builder_.code();
  if (v == 0) {
    a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRax), R(Reg::kRax)));
  } else if (v >= INT32_MIN && v <= INT32_MAX) {
    a.Emit(I2(Mnemonic::kMov, OpSize(t) == 8 ? 8 : 4, R(Reg::kRax), Imm(v)));
  } else {
    a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), Imm(v)));  // movabs
  }
}

uint64_t CodeGen::InternString(const std::string& s) {
  auto it = string_cache_.find(s);
  if (it != string_cache_.end()) {
    return it->second;
  }
  auto& d = builder_.data();
  uint64_t addr = d.CurrentAddress();
  d.Dstr(s);
  string_cache_[s] = addr;
  return addr;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

const Type* CodeGen::GenExpr(const Expr& e) {
  auto& a = builder_.code();
  const Type* t = TypeOf(e);
  if (options_.opt_level >= 2 && e.kind != ExprKind::kNumber) {
    if (auto folded = FoldConst(e)) {
      EmitLoadConst(t, *folded);
      return t;
    }
  }
  switch (e.kind) {
    case ExprKind::kNumber:
      EmitLoadConst(t, e.number);
      return t;
    case ExprKind::kString:
      EmitLoadConst(t, static_cast<int64_t>(InternString(e.text)));
      return t;
    case ExprKind::kSizeof:
      EmitLoadConst(t, e.named_type->Size());
      return t;

    case ExprKind::kIdent: {
      if (LocalVar* var = FindLocal(e.text)) {
        if (var->IsPromoted()) {
          a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(var->promoted)));
          return t;
        }
        if (t->kind == TypeKind::kArray || t->kind == TypeKind::kStruct) {
          a.Emit(I2(Mnemonic::kLea, 8, R(Reg::kRax),
                    Operand::M(MemBase(Reg::kRbp, var->slot))));
          return t;
        }
        a.Emit(I2(Mnemonic::kLea, 8, R(Reg::kRax),
                  Operand::M(MemBase(Reg::kRbp, var->slot))));
        LoadScalarFromRaxAddr(t);
        return t;
      }
      if (auto git = globals_.find(e.text); git != globals_.end()) {
        if (t->kind == TypeKind::kArray || t->kind == TypeKind::kStruct) {
          EmitLoadConst(types_->Long(),
                        static_cast<int64_t>(git->second.first));
          return t;
        }
        EmitLoadConst(types_->Long(), static_cast<int64_t>(git->second.first));
        LoadScalarFromRaxAddr(t);
        return t;
      }
      if (auto fit = funcs_.find(e.text); fit != funcs_.end()) {
        if (fit->second.is_external) {
          EmitLoadConst(types_->Long(),
                        static_cast<int64_t>(fit->second.ext_addr));
        } else {
          a.MovLabelAddress(Reg::kRax, fit->second.label);
        }
        return t;
      }
      Error(e.line, "undefined identifier '" + e.text + "'");
      return t;
    }

    case ExprKind::kUnary:
      switch (e.op) {
        case Tok::kStar: {
          GenExpr(*e.a);
          LoadScalarFromRaxAddr(t);
          return t;
        }
        case Tok::kAmp:
          GenAddr(*e.a);
          return t;
        case Tok::kMinus: {
          const Type* at = GenExpr(*e.a);
          Widen(at, t);
          a.Emit(I1(Mnemonic::kNeg, OpSize(t), R(Reg::kRax)));
          return t;
        }
        case Tok::kTilde: {
          const Type* at = GenExpr(*e.a);
          Widen(at, t);
          a.Emit(I1(Mnemonic::kNot, OpSize(t), R(Reg::kRax)));
          return t;
        }
        case Tok::kBang:
        default: {
          Label ltrue = a.NewLabel(), lend = a.NewLabel();
          GenBranch(e, ltrue, true);
          a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRax), R(Reg::kRax)));
          a.Jmp(lend);
          a.Bind(ltrue);
          a.Emit(I2(Mnemonic::kMov, 4, R(Reg::kRax), Imm(1)));
          a.Bind(lend);
          return t;
        }
      }

    case ExprKind::kBinary:
      switch (e.op) {
        case Tok::kEqEq:
        case Tok::kBangEq:
        case Tok::kLess:
        case Tok::kLessEq:
        case Tok::kGreater:
        case Tok::kGreaterEq:
        case Tok::kAmpAmp:
        case Tok::kPipePipe: {
          Label ltrue = a.NewLabel(), lend = a.NewLabel();
          GenBranch(e, ltrue, true);
          a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRax), R(Reg::kRax)));
          a.Jmp(lend);
          a.Bind(ltrue);
          a.Emit(I2(Mnemonic::kMov, 4, R(Reg::kRax), Imm(1)));
          a.Bind(lend);
          return t;
        }
        default:
          return GenBinaryOp(e);
      }

    case ExprKind::kAssign:
    case ExprKind::kCompound:
      return GenAssign(e);

    case ExprKind::kCond: {
      Label lfalse = a.NewLabel(), lend = a.NewLabel();
      GenBranch(*e.a, lfalse, false);
      const Type* bt = GenExpr(*e.b);
      Widen(bt, t);
      a.Jmp(lend);
      a.Bind(lfalse);
      const Type* ct = GenExpr(*e.c);
      Widen(ct, t);
      a.Bind(lend);
      return t;
    }

    case ExprKind::kCall:
      return GenCall(e);

    case ExprKind::kIndex:
    case ExprKind::kMember:
    case ExprKind::kArrow: {
      GenAddr(e);
      LoadScalarFromRaxAddr(t);
      return t;
    }

    case ExprKind::kCast: {
      const Type* at = GenExpr(*e.a);
      Widen(at, t);
      return t;
    }

    case ExprKind::kPreInc:
      return GenIncDec(e, /*is_inc=*/true, /*is_post=*/false);
    case ExprKind::kPreDec:
      return GenIncDec(e, false, false);
    case ExprKind::kPostInc:
      return GenIncDec(e, true, true);
    case ExprKind::kPostDec:
      return GenIncDec(e, false, true);
  }
  POLY_UNREACHABLE("bad expr kind");
}

const Type* CodeGen::GenAddr(const Expr& e) {
  auto& a = builder_.code();
  const Type* t = TypeOf(e);
  switch (e.kind) {
    case ExprKind::kIdent: {
      if (LocalVar* var = FindLocal(e.text)) {
        if (var->IsPromoted()) {
          Error(e.line, "cannot take address of register variable '" + e.text +
                            "' (compiler bug: promotion of address-taken)");
          return t;
        }
        a.Emit(I2(Mnemonic::kLea, 8, R(Reg::kRax),
                  Operand::M(MemBase(Reg::kRbp, var->slot))));
        return t;
      }
      if (auto git = globals_.find(e.text); git != globals_.end()) {
        EmitLoadConst(types_->Long(), static_cast<int64_t>(git->second.first));
        return t;
      }
      Error(e.line, "cannot take address of '" + e.text + "'");
      return t;
    }
    case ExprKind::kUnary:
      if (e.op == Tok::kStar) {
        GenExpr(*e.a);
        return t;
      }
      Error(e.line, "not an lvalue");
      return t;
    case ExprKind::kIndex: {
      const Type* base_t = TypeOf(*e.a);
      int64_t elem = base_t->pointee != nullptr ? base_t->pointee->Size() : 1;
      // O2 + simple index + power-of-two scale: scaled addressing.
      auto idx_simple = TrySimple(*e.b);
      if (idx_simple && (elem == 1 || elem == 2 || elem == 4 || elem == 8)) {
        GenExpr(*e.a);  // base pointer in rax
        switch (idx_simple->kind) {
          case SimpleValue::Kind::kImm:
            a.Emit(I2(Mnemonic::kLea, 8, R(Reg::kRax),
                      Operand::M(MemBase(Reg::kRax,
                                         static_cast<int32_t>(idx_simple->imm *
                                                              elem)))));
            return t;
          case SimpleValue::Kind::kReg:
            if (RegWidth(idx_simple->type) == 4) {
              Inst sx = I2(Mnemonic::kMovsx, 8, R(Reg::kRcx),
                           R(idx_simple->reg));
              sx.src_size = 4;
              a.Emit(sx);
            } else {
              a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRcx), R(idx_simple->reg)));
            }
            break;
          case SimpleValue::Kind::kMem:
            if (RegWidth(idx_simple->type) == 4) {
              Inst sx = I2(Mnemonic::kMovsx, 8, R(Reg::kRcx),
                           Operand::M(idx_simple->mem));
              sx.src_size = 4;
              a.Emit(sx);
            } else {
              a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRcx),
                        Operand::M(idx_simple->mem)));
            }
            break;
        }
        a.Emit(I2(Mnemonic::kLea, 8, R(Reg::kRax),
                  Operand::M(MemIndex(Reg::kRax, Reg::kRcx,
                                      static_cast<uint8_t>(elem)))));
        return t;
      }
      // General: base on stack, index scaled.
      GenExpr(*e.a);
      Push();
      const Type* it = GenExpr(*e.b);
      Widen(it, types_->Long());
      ScaleRaxBy(elem);
      Pop(Reg::kRcx);
      a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRax), R(Reg::kRcx)));
      return t;
    }
    case ExprKind::kMember:
    case ExprKind::kArrow: {
      const Type* base_t = TypeOf(*e.a);
      const Type* st = e.kind == ExprKind::kArrow ? base_t->pointee : base_t;
      const StructField* f = st->struct_info->FindField(e.text);
      POLY_CHECK(f != nullptr);
      if (e.kind == ExprKind::kArrow) {
        GenExpr(*e.a);
      } else {
        GenAddr(*e.a);
      }
      if (f->offset != 0) {
        a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRax), Imm(f->offset)));
      }
      return t;
    }
    default:
      Error(e.line, "expression is not an lvalue");
      return t;
  }
}

namespace {
Cond CondForOp(Tok op, bool is_unsigned) {
  switch (op) {
    case Tok::kEqEq:
      return Cond::kE;
    case Tok::kBangEq:
      return Cond::kNe;
    case Tok::kLess:
      return is_unsigned ? Cond::kB : Cond::kL;
    case Tok::kLessEq:
      return is_unsigned ? Cond::kBe : Cond::kLe;
    case Tok::kGreater:
      return is_unsigned ? Cond::kA : Cond::kG;
    case Tok::kGreaterEq:
      return is_unsigned ? Cond::kAe : Cond::kGe;
    default:
      POLY_UNREACHABLE("not a comparison");
  }
}
Cond Negate(Cond c) {
  return static_cast<Cond>(static_cast<uint8_t>(c) ^ 1);
}
}  // namespace

void CodeGen::GenBranch(const Expr& e, Label target, bool branch_if_true) {
  auto& a = builder_.code();
  if (options_.opt_level >= 2) {
    if (auto folded = FoldConst(e)) {
      if ((*folded != 0) == branch_if_true) {
        a.Jmp(target);
      }
      return;
    }
  }
  if (e.kind == ExprKind::kUnary && e.op == Tok::kBang) {
    GenBranch(*e.a, target, !branch_if_true);
    return;
  }
  if (e.kind == ExprKind::kBinary &&
      (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe)) {
    bool is_and = e.op == Tok::kAmpAmp;
    if (is_and == branch_if_true) {
      // Both must match: short-circuit through a skip label.
      Label skip = a.NewLabel();
      GenBranch(*e.a, skip, !is_and);
      GenBranch(*e.b, target, branch_if_true);
      a.Bind(skip);
    } else {
      GenBranch(*e.a, target, branch_if_true);
      GenBranch(*e.b, target, branch_if_true);
    }
    return;
  }
  if (e.kind == ExprKind::kBinary) {
    switch (e.op) {
      case Tok::kEqEq:
      case Tok::kBangEq:
      case Tok::kLess:
      case Tok::kLessEq:
      case Tok::kGreater:
      case Tok::kGreaterEq: {
        const Type* ta = Decay(TypeOf(*e.a));
        const Type* tb = Decay(TypeOf(*e.b));
        const Type* common = Arith(ta, tb);
        bool is_unsigned = common->kind == TypeKind::kPtr;
        int size = OpSize(common);
        auto simple = TrySimple(*e.b);
        if (simple &&
            (simple->kind == SimpleValue::Kind::kImm ||
             RegWidth(simple->type) == size)) {
          const Type* at = GenExpr(*e.a);
          Widen(at, common);
          switch (simple->kind) {
            case SimpleValue::Kind::kImm:
              a.Emit(I2(Mnemonic::kCmp, size, R(Reg::kRax), Imm(simple->imm)));
              break;
            case SimpleValue::Kind::kReg:
              a.Emit(I2(Mnemonic::kCmp, size, R(Reg::kRax), R(simple->reg)));
              break;
            case SimpleValue::Kind::kMem:
              a.Emit(I2(Mnemonic::kCmp, size, R(Reg::kRax),
                        Operand::M(simple->mem)));
              break;
          }
        } else {
          const Type* bt = GenExpr(*e.b);
          Widen(bt, common);
          Push();
          const Type* at = GenExpr(*e.a);
          Widen(at, common);
          Pop(Reg::kRcx);
          a.Emit(I2(Mnemonic::kCmp, size, R(Reg::kRax), R(Reg::kRcx)));
        }
        Cond c = CondForOp(e.op, is_unsigned);
        a.Jcc(branch_if_true ? c : Negate(c), target);
        return;
      }
      default:
        break;
    }
  }
  // Generic: evaluate and test.
  const Type* t = GenExpr(e);
  int size = RegWidth(Decay(t));
  a.Emit(I2(Mnemonic::kTest, size, R(Reg::kRax), R(Reg::kRax)));
  a.Jcc(branch_if_true ? Cond::kNe : Cond::kE, target);
}

const Type* CodeGen::GenBinaryOp(const Expr& e) {
  auto& a = builder_.code();
  const Type* t = TypeOf(e);
  const Type* ta = Decay(TypeOf(*e.a));
  const Type* tb = Decay(TypeOf(*e.b));

  // Pointer arithmetic.
  if (e.op == Tok::kPlus || e.op == Tok::kMinus) {
    bool a_ptr = ta->kind == TypeKind::kPtr;
    bool b_ptr = tb->kind == TypeKind::kPtr;
    if (a_ptr && b_ptr) {
      POLY_CHECK(e.op == Tok::kMinus);
      const Type* bt = GenExpr(*e.b);
      (void)bt;
      Push();
      GenExpr(*e.a);
      Pop(Reg::kRcx);
      a.Emit(I2(Mnemonic::kSub, 8, R(Reg::kRax), R(Reg::kRcx)));
      int64_t elem = ta->pointee->Size();
      if (elem > 1) {
        if ((elem & (elem - 1)) == 0) {
          int shift = 0;
          while ((int64_t{1} << shift) < elem) {
            ++shift;
          }
          a.Emit(I2(Mnemonic::kSar, 8, R(Reg::kRax), Imm(shift)));
        } else {
          a.Emit(I0(Mnemonic::kCqo, 8));
          a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRcx), Imm(elem)));
          a.Emit(I1(Mnemonic::kIdiv, 8, R(Reg::kRcx)));
        }
      }
      return types_->Long();
    }
    if (a_ptr || b_ptr) {
      const Expr& ptr_e = a_ptr ? *e.a : *e.b;
      const Expr& int_e = a_ptr ? *e.b : *e.a;
      const Type* pt = a_ptr ? ta : tb;
      const Type* it = GenExpr(int_e);
      Widen(it, types_->Long());
      ScaleRaxBy(pt->pointee->Size());
      if (e.op == Tok::kMinus) {
        a.Emit(I1(Mnemonic::kNeg, 8, R(Reg::kRax)));
      }
      Push();
      GenExpr(ptr_e);
      Pop(Reg::kRcx);
      a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRax), R(Reg::kRcx)));
      return pt;
    }
  }

  const int size = OpSize(t);

  // Division / modulo need rdx:rax.
  if (e.op == Tok::kSlash || e.op == Tok::kPercent) {
    const Type* bt = GenExpr(*e.b);
    Widen(bt, t);
    Push();
    const Type* at = GenExpr(*e.a);
    Widen(at, t);
    Pop(Reg::kRcx);
    a.Emit(I0(Mnemonic::kCqo, size));
    a.Emit(I1(Mnemonic::kIdiv, size, R(Reg::kRcx)));
    if (e.op == Tok::kPercent) {
      a.Emit(I2(Mnemonic::kMov, size, R(Reg::kRax), R(Reg::kRdx)));
    }
    return t;
  }

  // Shifts: count in cl.
  if (e.op == Tok::kShl || e.op == Tok::kShr) {
    Mnemonic m = e.op == Tok::kShl ? Mnemonic::kShl : Mnemonic::kSar;
    if (auto folded = FoldConst(*e.b);
        folded && options_.opt_level >= 2) {
      const Type* at = GenExpr(*e.a);
      Widen(at, t);
      a.Emit(I2(m, size, R(Reg::kRax), Imm(*folded & 63)));
      return t;
    }
    const Type* bt = GenExpr(*e.b);
    (void)bt;
    Push();
    const Type* at = GenExpr(*e.a);
    Widen(at, t);
    Pop(Reg::kRcx);
    a.Emit(I2(m, size, R(Reg::kRax), R(Reg::kRcx)));
    return t;
  }

  Mnemonic m;
  switch (e.op) {
    case Tok::kPlus:
      m = Mnemonic::kAdd;
      break;
    case Tok::kMinus:
      m = Mnemonic::kSub;
      break;
    case Tok::kStar:
      m = Mnemonic::kImul;
      break;
    case Tok::kAmp:
      m = Mnemonic::kAnd;
      break;
    case Tok::kPipe:
      m = Mnemonic::kOr;
      break;
    case Tok::kCaret:
      m = Mnemonic::kXor;
      break;
    default:
      Error(e.line, "unsupported binary operator");
      return t;
  }

  // Strength reduction: multiply by power-of-two constant.
  if (options_.opt_level >= 2 && m == Mnemonic::kImul) {
    if (auto folded = FoldConst(*e.b);
        folded && *folded > 0 && (*folded & (*folded - 1)) == 0) {
      const Type* at = GenExpr(*e.a);
      Widen(at, t);
      int shift = 0;
      while ((int64_t{1} << shift) < *folded) {
        ++shift;
      }
      if (shift > 0) {
        a.Emit(I2(Mnemonic::kShl, size, R(Reg::kRax), Imm(shift)));
      }
      return t;
    }
  }

  // O2 direct-operand form.
  auto simple = TrySimple(*e.b);
  if (simple && (simple->kind == SimpleValue::Kind::kImm ||
                 RegWidth(simple->type) == size)) {
    const Type* at = GenExpr(*e.a);
    Widen(at, t);
    Operand rhs = simple->kind == SimpleValue::Kind::kImm ? Imm(simple->imm)
                  : simple->kind == SimpleValue::Kind::kReg
                      ? R(simple->reg)
                      : Operand::M(simple->mem);
    if (m == Mnemonic::kImul) {
      if (simple->kind == SimpleValue::Kind::kImm) {
        a.Emit(I3(Mnemonic::kImul, size, R(Reg::kRax), R(Reg::kRax),
                  Imm(simple->imm)));
      } else {
        a.Emit(I2(Mnemonic::kImul, size, R(Reg::kRax), rhs));
      }
    } else {
      a.Emit(I2(m, size, R(Reg::kRax), rhs));
    }
    return t;
  }

  const Type* bt = GenExpr(*e.b);
  Widen(bt, t);
  Push();
  const Type* at = GenExpr(*e.a);
  Widen(at, t);
  Pop(Reg::kRcx);
  if (m == Mnemonic::kImul) {
    a.Emit(I2(Mnemonic::kImul, size, R(Reg::kRax), R(Reg::kRcx)));
  } else {
    a.Emit(I2(m, size, R(Reg::kRax), R(Reg::kRcx)));
  }
  return t;
}

const Type* CodeGen::GenAssign(const Expr& e) {
  auto& a = builder_.code();
  const Type* lhs_t = TypeOf(*e.a);
  const bool compound = e.kind == ExprKind::kCompound;

  // Promoted register lvalue.
  if (e.a->kind == ExprKind::kIdent) {
    if (LocalVar* var = FindLocal(e.a->text); var && var->IsPromoted()) {
      if (!compound) {
        const Type* rt = GenExpr(*e.b);
        Widen(rt, lhs_t);
        a.Emit(I2(Mnemonic::kMov, 8, R(var->promoted), R(Reg::kRax)));
        return lhs_t;
      }
      // rX = rX op rhs
      const Type* rt = GenExpr(*e.b);
      Widen(rt, lhs_t);
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(var->promoted)));
      EmitCompoundOp(e.op, lhs_t);
      a.Emit(I2(Mnemonic::kMov, 8, R(var->promoted), R(Reg::kRax)));
      return lhs_t;
    }
  }

  // Direct store to a named scalar slot/global (both opt levels; matches
  // what gcc emits at -O0 too).
  if (!compound && e.a->kind == ExprKind::kIdent && lhs_t->IsScalar()) {
    std::optional<MemRef> dest;
    LocalVar* var = FindLocal(e.a->text);
    if (var != nullptr && !var->IsPromoted()) {
      dest = MemBase(Reg::kRbp, var->slot);
    } else if (var == nullptr) {
      if (auto git = globals_.find(e.a->text); git != globals_.end()) {
        dest = MemAbs(git->second.first);
      }
    }
    if (dest) {
      const Type* rt = GenExpr(*e.b);
      Widen(rt, lhs_t);
      a.Emit(I2(Mnemonic::kMov, OpSize(lhs_t), Operand::M(*dest),
                R(Reg::kRax)));
      return lhs_t;
    }
  }

  if (!compound) {
    GenAddr(*e.a);
    Push();
    const Type* rt = GenExpr(*e.b);
    Widen(rt, lhs_t);
    Pop(Reg::kRcx);
    StoreRcxAddrFromRax(lhs_t);
    return lhs_t;
  }

  // Compound with a named scalar slot/global: operate on [rbp+slot] or the
  // absolute address directly (what gcc emits at -O0).
  if (e.a->kind == ExprKind::kIdent && lhs_t->IsScalar()) {
    std::optional<MemRef> dest;
    LocalVar* var = FindLocal(e.a->text);
    if (var != nullptr && !var->IsPromoted()) {
      dest = MemBase(Reg::kRbp, var->slot);
    } else if (var == nullptr) {
      if (auto git = globals_.find(e.a->text); git != globals_.end()) {
        dest = MemAbs(git->second.first);
      }
    }
    if (dest) {
      const Type* rt = GenExpr(*e.b);
      Widen(rt, lhs_t);
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
      LoadScalarFromMem(*dest, lhs_t);
      EmitCompoundOp(e.op, lhs_t);
      a.Emit(I2(Mnemonic::kMov, OpSize(lhs_t), Operand::M(*dest),
                R(Reg::kRax)));
      return lhs_t;
    }
  }

  // Compound with a memory lvalue: address in r10, rhs in r11.
  GenAddr(*e.a);
  Push();
  const Type* rt = GenExpr(*e.b);
  Widen(rt, lhs_t);
  a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
  Pop(Reg::kR10);
  a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(Reg::kR10)));
  LoadScalarFromRaxAddr(lhs_t);
  EmitCompoundOp(e.op, lhs_t);
  a.Emit(I2(Mnemonic::kMov, OpSize(lhs_t),
            Operand::M(MemBase(Reg::kR10)), R(Reg::kRax)));
  return lhs_t;
}

// Applies `rax = rax op r11` at the width of `t`.
void CodeGen::EmitCompoundOp(Tok op, const Type* t) {
  auto& a = builder_.code();
  int size = OpSize(t);
  // Pointer compound (p += n): scale r11.
  if (t->kind == TypeKind::kPtr && (op == Tok::kPlus || op == Tok::kMinus)) {
    int64_t elem = t->pointee->Size();
    if (elem > 1) {
      a.Emit(I3(Mnemonic::kImul, 8, R(Reg::kR11), R(Reg::kR11), Imm(elem)));
    }
    size = 8;
  }
  switch (op) {
    case Tok::kPlus:
      a.Emit(I2(Mnemonic::kAdd, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kMinus:
      a.Emit(I2(Mnemonic::kSub, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kStar:
      a.Emit(I2(Mnemonic::kImul, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kSlash:
    case Tok::kPercent:
      a.Emit(I0(Mnemonic::kCqo, size));
      a.Emit(I1(Mnemonic::kIdiv, size, R(Reg::kR11)));
      if (op == Tok::kPercent) {
        a.Emit(I2(Mnemonic::kMov, size, R(Reg::kRax), R(Reg::kRdx)));
      }
      break;
    case Tok::kAmp:
      a.Emit(I2(Mnemonic::kAnd, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kPipe:
      a.Emit(I2(Mnemonic::kOr, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kCaret:
      a.Emit(I2(Mnemonic::kXor, size, R(Reg::kRax), R(Reg::kR11)));
      break;
    case Tok::kShl:
    case Tok::kShr:
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRcx), R(Reg::kR11)));
      a.Emit(I2(op == Tok::kShl ? Mnemonic::kShl : Mnemonic::kSar, size,
                R(Reg::kRax), R(Reg::kRcx)));
      break;
    default:
      POLY_UNREACHABLE("bad compound op");
  }
}

const Type* CodeGen::GenIncDec(const Expr& e, bool is_inc, bool is_post) {
  auto& a = builder_.code();
  const Type* t = TypeOf(*e.a);
  int64_t delta = t->kind == TypeKind::kPtr ? t->pointee->Size() : 1;
  int size = OpSize(t);
  Mnemonic m = is_inc ? Mnemonic::kAdd : Mnemonic::kSub;

  if (e.a->kind == ExprKind::kIdent) {
    if (LocalVar* var = FindLocal(e.a->text); var && var->IsPromoted()) {
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(var->promoted)));
      if (is_post) {
        a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
      }
      a.Emit(I2(m, size, R(Reg::kRax), Imm(delta)));
      a.Emit(I2(Mnemonic::kMov, 8, R(var->promoted), R(Reg::kRax)));
      if (is_post) {
        a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(Reg::kR11)));
      }
      return t;
    }
  }

  // Named scalar slot/global: operate on memory directly.
  if (e.a->kind == ExprKind::kIdent && t->IsScalar()) {
    std::optional<MemRef> dest;
    LocalVar* var = FindLocal(e.a->text);
    if (var != nullptr && !var->IsPromoted()) {
      dest = MemBase(Reg::kRbp, var->slot);
    } else if (var == nullptr) {
      if (auto git = globals_.find(e.a->text); git != globals_.end()) {
        dest = MemAbs(git->second.first);
      }
    }
    if (dest) {
      LoadScalarFromMem(*dest, t);
      if (is_post) {
        a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
      }
      a.Emit(I2(m, size, R(Reg::kRax), Imm(delta)));
      a.Emit(I2(Mnemonic::kMov, OpSize(t), Operand::M(*dest), R(Reg::kRax)));
      if (is_post) {
        a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(Reg::kR11)));
      }
      return t;
    }
  }

  GenAddr(*e.a);
  a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRcx), R(Reg::kRax)));
  LoadScalarFromRaxAddr(t);
  if (is_post) {
    a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kR11), R(Reg::kRax)));
  }
  a.Emit(I2(m, size, R(Reg::kRax), Imm(delta)));
  StoreRcxAddrFromRax(t);
  if (is_post) {
    a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax), R(Reg::kR11)));
  }
  return t;
}

const Type* CodeGen::GenCall(const Expr& e) {
  auto& a = builder_.code();
  const Type* t = TypeOf(e);
  if (e.a->kind == ExprKind::kIdent && IsBuiltinName(e.a->text)) {
    return GenBuiltin(e);
  }
  static const Reg kArgRegs[6] = {Reg::kRdi, Reg::kRsi, Reg::kRdx,
                                  Reg::kRcx, Reg::kR8,  Reg::kR9};
  if (e.args.size() > 6) {
    Error(e.line, "more than 6 call arguments");
    return t;
  }

  const FuncInfo* direct = nullptr;
  const Type* fn_type = nullptr;
  if (e.a->kind == ExprKind::kIdent && FindLocal(e.a->text) == nullptr &&
      globals_.find(e.a->text) == globals_.end()) {
    auto fit = funcs_.find(e.a->text);
    if (fit != funcs_.end()) {
      direct = &fit->second;
    }
  }
  if (direct == nullptr) {
    const Type* callee_t = TypeOf(*e.a);
    if (callee_t->kind == TypeKind::kPtr &&
        callee_t->pointee->kind == TypeKind::kFunc) {
      fn_type = callee_t->pointee;
    }
    GenExpr(*e.a);
    Push();  // callee under the args
  }

  for (size_t i = 0; i < e.args.size(); ++i) {
    const Type* at = GenExpr(*e.args[i]);
    const Type* pt = nullptr;
    if (direct != nullptr && i < direct->params.size()) {
      pt = direct->params[i];
    } else if (fn_type != nullptr && i < fn_type->params.size()) {
      pt = fn_type->params[i];
    }
    if (pt != nullptr && pt->IsScalar()) {
      Widen(Decay(at), pt);
    } else {
      Widen(Decay(at), types_->Long());
    }
    Push();
  }
  for (size_t i = e.args.size(); i-- > 0;) {
    Pop(kArgRegs[i]);
  }
  if (direct != nullptr) {
    if (direct->is_external) {
      a.CallAbs(direct->ext_addr);
    } else {
      a.Call(direct->label);
    }
  } else {
    Pop(Reg::kR10);
    a.Emit(I1(Mnemonic::kCall, 8, R(Reg::kR10)));
  }
  return t;
}

const Type* CodeGen::GenBuiltin(const Expr& e) {
  auto& a = builder_.code();
  const std::string& name = e.a->text;
  const Type* t = TypeOf(e);

  if (name == "__pause") {
    a.Emit(I0(Mnemonic::kPause));
    return t;
  }
  if (StartsWith(name, "__v")) {
    GenVectorBuiltin(name, e);
    return t;
  }

  // Atomics: width follows the pointee of the first argument.
  if (e.args.empty()) {
    Error(e.line, name + " needs arguments");
    return t;
  }
  const Type* pt = Decay(TypeOf(*e.args[0]));
  const Type* vt = pt->kind == TypeKind::kPtr ? pt->pointee : types_->Long();
  int size = OpSize(vt);

  if (name == "__atomic_fetch_add") {
    GenExpr(*e.args[0]);
    Push();
    const Type* at = GenExpr(*e.args[1]);
    Widen(at, vt);
    Pop(Reg::kRcx);
    Inst xadd = I2(Mnemonic::kXadd, size, Operand::M(MemBase(Reg::kRcx)),
                   R(Reg::kRax));
    xadd.lock = true;
    a.Emit(xadd);
    return vt;
  }
  if (name == "__atomic_cas") {
    GenExpr(*e.args[0]);
    Push();
    const Type* ot = GenExpr(*e.args[1]);
    Widen(ot, vt);
    Push();
    const Type* nt = GenExpr(*e.args[2]);
    Widen(nt, vt);
    a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRdx), R(Reg::kRax)));
    Pop(Reg::kRax);
    Pop(Reg::kRcx);
    Inst cas = I2(Mnemonic::kCmpxchg, size, Operand::M(MemBase(Reg::kRcx)),
                  R(Reg::kRdx));
    cas.lock = true;
    a.Emit(cas);
    return vt;  // rax holds the witnessed old value
  }
  if (name == "__atomic_exchange") {
    GenExpr(*e.args[0]);
    Push();
    const Type* at = GenExpr(*e.args[1]);
    Widen(at, vt);
    Pop(Reg::kRcx);
    a.Emit(I2(Mnemonic::kXchg, size, Operand::M(MemBase(Reg::kRcx)),
              R(Reg::kRax)));
    return vt;
  }
  if (name == "__atomic_load") {
    GenExpr(*e.args[0]);
    LoadScalarFromRaxAddr(vt);
    return vt;
  }
  if (name == "__atomic_store") {
    GenExpr(*e.args[0]);
    Push();
    const Type* at = GenExpr(*e.args[1]);
    Widen(at, vt);
    Pop(Reg::kRcx);
    StoreRcxAddrFromRax(vt);
    return types_->Void();
  }
  Error(e.line, "unknown builtin " + name);
  return t;
}

void CodeGen::GenVectorBuiltin(const std::string& name, const Expr& e) {
  auto& a = builder_.code();
  // Argument layout: reduce forms (a, [b,] n) -> r8, r9, r10;
  // map forms (dst, a, b, n) -> r11, r8, r9, r10.
  bool has_dst = name == "__vadd_i32" || name == "__vmul_i32";
  bool has_b = name == "__vdot_i32" || has_dst;
  size_t expected = 1 + (has_b ? 1 : 0) + (has_dst ? 1 : 0) + 1;
  if (e.args.size() != expected) {
    Error(e.line, name + ": wrong argument count");
    return;
  }
  for (const ExprPtr& arg : e.args) {
    const Type* at = GenExpr(*arg);
    Widen(Decay(at), types_->Long());
    Push();
  }
  // Pop in reverse: n, [b], a, [dst].
  Pop(Reg::kR10);  // n
  if (has_b) {
    Pop(Reg::kR9);  // b
  }
  Pop(Reg::kR8);  // a
  if (has_dst) {
    Pop(Reg::kR11);  // dst
  }

  bool reduce = !has_dst;
  bool multiply = name == "__vdot_i32" || name == "__vmul_i32";

  if (reduce) {
    a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRax), R(Reg::kRax)));
  }
  a.Emit(I2(Mnemonic::kXor, 4, R(Reg::kRcx), R(Reg::kRcx)));

  if (options_.opt_level >= 2) {
    // Vector main loop, 4 int lanes per iteration.
    Label vec_loop = a.NewLabel(), vec_done = a.NewLabel();
    if (reduce) {
      a.Emit(I2(Mnemonic::kPxor, 16, Operand::X(0), Operand::X(0)));
    }
    a.Bind(vec_loop);
    a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRdx), R(Reg::kRcx)));
    a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRdx), Imm(4)));
    a.Emit(I2(Mnemonic::kCmp, 8, R(Reg::kRdx), R(Reg::kR10)));
    a.Jcc(Cond::kG, vec_done);
    a.Emit(I2(Mnemonic::kMovdqu, 16, Operand::X(1),
              Operand::M(MemIndex(Reg::kR8, Reg::kRcx, 4))));
    if (has_b) {
      a.Emit(I2(Mnemonic::kMovdqu, 16, Operand::X(2),
                Operand::M(MemIndex(Reg::kR9, Reg::kRcx, 4))));
      a.Emit(I2(multiply ? Mnemonic::kPmulld : Mnemonic::kPaddd, 16,
                Operand::X(1), Operand::X(2)));
    }
    if (reduce) {
      a.Emit(I2(Mnemonic::kPaddd, 16, Operand::X(0), Operand::X(1)));
    } else {
      a.Emit(I2(Mnemonic::kMovdqu, 16,
                Operand::M(MemIndex(Reg::kR11, Reg::kRcx, 4)), Operand::X(1)));
    }
    a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRcx), Imm(4)));
    a.Jmp(vec_loop);
    a.Bind(vec_done);
    if (reduce) {
      // Horizontal add through a stack scratch.
      a.Emit(I2(Mnemonic::kSub, 8, R(Reg::kRsp), Imm(16)));
      a.Emit(I2(Mnemonic::kMovdqu, 16, Operand::M(MemBase(Reg::kRsp)),
                Operand::X(0)));
      a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRsp, 0))));
      a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRsp, 4))));
      a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRsp, 8))));
      a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRax),
                Operand::M(MemBase(Reg::kRsp, 12))));
      a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRsp), Imm(16)));
    }
  }

  // Scalar (remainder) loop.
  Label scalar_loop = a.NewLabel(), done = a.NewLabel();
  a.Bind(scalar_loop);
  a.Emit(I2(Mnemonic::kCmp, 8, R(Reg::kRcx), R(Reg::kR10)));
  a.Jcc(Cond::kGe, done);
  a.Emit(I2(Mnemonic::kMov, 4, R(Reg::kRdx),
            Operand::M(MemIndex(Reg::kR8, Reg::kRcx, 4))));
  if (has_b) {
    if (multiply) {
      a.Emit(I2(Mnemonic::kImul, 4, R(Reg::kRdx),
                Operand::M(MemIndex(Reg::kR9, Reg::kRcx, 4))));
    } else {
      a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRdx),
                Operand::M(MemIndex(Reg::kR9, Reg::kRcx, 4))));
    }
  }
  if (reduce) {
    a.Emit(I2(Mnemonic::kAdd, 4, R(Reg::kRax), R(Reg::kRdx)));
  } else {
    a.Emit(I2(Mnemonic::kMov, 4,
              Operand::M(MemIndex(Reg::kR11, Reg::kRcx, 4)), R(Reg::kRdx)));
  }
  a.Emit(I2(Mnemonic::kAdd, 8, R(Reg::kRcx), Imm(1)));
  a.Jmp(scalar_loop);
  a.Bind(done);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void CodeGen::GenBlock(const Stmt& s) {
  if (s.transparent) {
    // Multi-declarator line: declarations belong to the enclosing scope.
    for (const StmtPtr& c : s.stmts) {
      GenStmt(*c);
    }
    return;
  }
  scopes_.emplace_back();
  for (const StmtPtr& c : s.stmts) {
    GenStmt(*c);
  }
  for (const std::string& name : scopes_.back()) {
    locals_[name].pop_back();
  }
  scopes_.pop_back();
}

void CodeGen::GenStmt(const Stmt& s) {
  auto& a = builder_.code();
  switch (s.kind) {
    case StmtKind::kEmpty:
      break;
    case StmtKind::kExpr:
      GenExpr(*s.expr);
      break;
    case StmtKind::kBlock:
      GenBlock(s);
      break;

    case StmtKind::kDecl: {
      LocalVar var;
      var.type = s.decl_type;
      auto promo = promotions_.find(s.decl_name);
      if (promo != promotions_.end() && s.decl_type->IsScalar() &&
          s.decl_type->kind != TypeKind::kChar) {
        var.promoted = promo->second;
      } else {
        int64_t bytes = (s.decl_type->Size() + 7) / 8 * 8;
        next_slot_ -= static_cast<int32_t>(bytes);
        var.slot = next_slot_;
      }
      locals_[s.decl_name].push_back(var);
      scopes_.back().push_back(s.decl_name);
      if (s.decl_init != nullptr) {
        const Type* rt = GenExpr(*s.decl_init);
        Widen(Decay(rt), var.type);
        if (var.IsPromoted()) {
          a.Emit(I2(Mnemonic::kMov, 8, R(var.promoted), R(Reg::kRax)));
        } else {
          a.Emit(I2(Mnemonic::kMov, OpSize(var.type),
                    Operand::M(MemBase(Reg::kRbp, var.slot)), R(Reg::kRax)));
        }
      }
      break;
    }

    case StmtKind::kIf: {
      Label lelse = a.NewLabel(), lend = a.NewLabel();
      GenBranch(*s.cond, lelse, false);
      GenStmt(*s.then_stmt);
      if (s.else_stmt != nullptr) {
        a.Jmp(lend);
      }
      a.Bind(lelse);
      if (s.else_stmt != nullptr) {
        GenStmt(*s.else_stmt);
        a.Bind(lend);
      }
      break;
    }

    case StmtKind::kWhile: {
      Label lcond = a.NewLabel(), lend = a.NewLabel();
      a.Bind(lcond);
      GenBranch(*s.cond, lend, false);
      break_stack_.push_back(lend);
      continue_stack_.push_back(lcond);
      GenStmt(*s.body);
      break_stack_.pop_back();
      continue_stack_.pop_back();
      a.Jmp(lcond);
      a.Bind(lend);
      break;
    }

    case StmtKind::kDoWhile: {
      Label lbody = a.NewLabel(), lcond = a.NewLabel(), lend = a.NewLabel();
      a.Bind(lbody);
      break_stack_.push_back(lend);
      continue_stack_.push_back(lcond);
      GenStmt(*s.body);
      break_stack_.pop_back();
      continue_stack_.pop_back();
      a.Bind(lcond);
      GenBranch(*s.cond, lbody, true);
      a.Bind(lend);
      break;
    }

    case StmtKind::kFor: {
      Label lcond = a.NewLabel(), lcont = a.NewLabel(), lend = a.NewLabel();
      scopes_.emplace_back();  // for-init scope
      if (s.init != nullptr) {
        GenStmt(*s.init);
      }
      a.Bind(lcond);
      if (s.cond != nullptr) {
        GenBranch(*s.cond, lend, false);
      }
      break_stack_.push_back(lend);
      continue_stack_.push_back(lcont);
      GenStmt(*s.body);
      break_stack_.pop_back();
      continue_stack_.pop_back();
      a.Bind(lcont);
      if (s.inc != nullptr) {
        GenExpr(*s.inc);
      }
      a.Jmp(lcond);
      a.Bind(lend);
      for (const std::string& name : scopes_.back()) {
        locals_[name].pop_back();
      }
      scopes_.pop_back();
      break;
    }

    case StmtKind::kBreak:
      if (break_stack_.empty()) {
        Error(s.line, "break outside loop/switch");
      } else {
        a.Jmp(break_stack_.back());
      }
      break;
    case StmtKind::kContinue:
      if (continue_stack_.empty()) {
        Error(s.line, "continue outside loop");
      } else {
        a.Jmp(continue_stack_.back());
      }
      break;

    case StmtKind::kReturn:
      if (s.expr != nullptr) {
        const Type* rt = GenExpr(*s.expr);
        if (current_ret_->IsScalar()) {
          Widen(Decay(rt), current_ret_);
        }
      }
      a.Jmp(epilogue_);
      break;

    case StmtKind::kSwitch:
      GenSwitch(s);
      break;

    case StmtKind::kCase:
    case StmtKind::kDefault:
      Error(s.line, "case/default outside switch");
      break;
  }
}

void CodeGen::GenSwitch(const Stmt& s) {
  auto& a = builder_.code();
  const Type* st = GenExpr(*s.expr);
  Widen(Decay(st), types_->Long());

  // Collect case labels from the (block) body.
  struct CaseEntry {
    int64_t value;
    Label label;
    const Stmt* marker;
  };
  std::vector<CaseEntry> cases;
  Label default_label;
  const Stmt* default_marker = nullptr;
  POLY_CHECK(s.body->kind == StmtKind::kBlock);
  std::map<const Stmt*, Label> marker_labels;
  for (const StmtPtr& c : s.body->stmts) {
    if (c->kind == StmtKind::kCase) {
      Label l = a.NewLabel();
      cases.push_back({c->case_value, l, c.get()});
      marker_labels[c.get()] = l;
    } else if (c->kind == StmtKind::kDefault) {
      default_label = a.NewLabel();
      default_marker = c.get();
      marker_labels[c.get()] = default_label;
    }
  }
  Label lend = a.NewLabel();
  Label miss = default_marker != nullptr ? default_label : lend;

  // Dense value range at O2 -> jump table (indirect jump + data-in-code).
  bool used_table = false;
  if (options_.opt_level >= 2 && cases.size() >= 4) {
    int64_t min = cases[0].value, max = cases[0].value;
    for (const CaseEntry& c : cases) {
      min = std::min(min, c.value);
      max = std::max(max, c.value);
    }
    int64_t range = max - min + 1;
    if (range <= static_cast<int64_t>(cases.size()) * 3 && range <= 512) {
      used_table = true;
      Label table = a.NewLabel();
      Label do_dispatch = a.NewLabel();
      if (min != 0) {
        a.Emit(I2(Mnemonic::kSub, 8, R(Reg::kRax), Imm(min)));
      }
      a.Emit(I2(Mnemonic::kCmp, 8, R(Reg::kRax), Imm(range)));
      a.Jcc(Cond::kB, do_dispatch);
      a.Jmp(miss);
      a.Bind(do_dispatch);
      a.MovLabelAddress(Reg::kRcx, table);
      a.Emit(I2(Mnemonic::kMov, 8, R(Reg::kRax),
                Operand::M(MemIndex(Reg::kRcx, Reg::kRax, 8))));
      a.Emit(I1(Mnemonic::kJmp, 8, R(Reg::kRax)));
      a.Align(8);
      a.Bind(table);
      for (int64_t v = min; v <= max; ++v) {
        Label entry = miss;
        for (const CaseEntry& c : cases) {
          if (c.value == v) {
            entry = c.label;
            break;
          }
        }
        a.Dq(entry);
      }
    }
  }
  if (!used_table) {
    for (const CaseEntry& c : cases) {
      a.Emit(I2(Mnemonic::kCmp, 8, R(Reg::kRax), Imm(c.value)));
      a.Jcc(Cond::kE, c.label);
    }
    a.Jmp(miss);
  }

  // Emit the body, binding labels at the markers.
  break_stack_.push_back(lend);
  scopes_.emplace_back();
  for (const StmtPtr& c : s.body->stmts) {
    if (c->kind == StmtKind::kCase || c->kind == StmtKind::kDefault) {
      a.Bind(marker_labels[c.get()]);
      if (used_table && options_.landing_pads) {
        // Jump-table entries are indirect-jump targets: mark them.
        a.Emit(I0(Mnemonic::kEndbr64));
      }
      continue;
    }
    GenStmt(*c);
  }
  for (const std::string& name : scopes_.back()) {
    locals_[name].pop_back();
  }
  scopes_.pop_back();
  break_stack_.pop_back();
  a.Bind(lend);
  if (used_table && options_.landing_pads && default_marker == nullptr) {
    // Without a default, table holes point at the end label, which is then
    // itself an indirect-jump target.
    a.Emit(I0(Mnemonic::kEndbr64));
  }
}

}  // namespace

Expected<binary::Image> Compile(const std::string& source,
                                const CompileOptions& options) {
  POLY_ASSIGN_OR_RETURN(Program program, Parse(source));
  return CodeGen(std::move(program), options).Run();
}

}  // namespace polynima::cc
