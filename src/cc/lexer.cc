#include "src/cc/lexer.h"

#include <cctype>
#include <unordered_map>

#include "src/support/strings.h"

namespace polynima::cc {
namespace {

const std::unordered_map<std::string, Tok>& Keywords() {
  static const auto* map = new std::unordered_map<std::string, Tok>{
      {"int", Tok::kInt},         {"long", Tok::kLong},
      {"char", Tok::kChar},       {"void", Tok::kVoid},
      {"struct", Tok::kStruct},   {"if", Tok::kIf},
      {"else", Tok::kElse},       {"while", Tok::kWhile},
      {"for", Tok::kFor},         {"do", Tok::kDo},
      {"break", Tok::kBreak},     {"continue", Tok::kContinue},
      {"return", Tok::kReturn},   {"switch", Tok::kSwitch},
      {"case", Tok::kCase},       {"default", Tok::kDefault},
      {"extern", Tok::kExtern},   {"sizeof", Tok::kSizeof},
      {"static", Tok::kStatic},   {"const", Tok::kConst},
  };
  return *map;
}

}  // namespace

Expected<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  auto error = [&](const std::string& m) {
    return Status::InvalidArgument(StrCat("lex error line ", line, ": ", m));
  };

  auto decode_escape = [&](size_t& pos) -> int {
    char e = source[pos++];
    switch (e) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case 'r':
        return '\r';
      case '0':
        return '\0';
      case '\\':
        return '\\';
      case '\'':
        return '\'';
      case '"':
        return '"';
      default:
        return e;
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() &&
             !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= source.size()) {
        return error("unterminated block comment");
      }
      i += 2;
      continue;
    }

    Token tok;
    tok.line = line;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      tok.text = source.substr(start, i - start);
      auto it = Keywords().find(tok.text);
      tok.kind = it != Keywords().end() ? it->second : Tok::kIdent;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < source.size() &&
          (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        base = 16;
        i += 2;
        start = i;
      }
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])))) {
        ++i;
      }
      std::string digits = source.substr(start, i - start);
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(digits.c_str(), &end, base);
      if (end != digits.c_str() + digits.size()) {
        return error("bad number '" + digits + "'");
      }
      tok.kind = Tok::kNumber;
      tok.number = v;
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      ++i;
      std::string text;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\\') {
          ++i;
          if (i >= source.size()) {
            return error("unterminated string");
          }
          text.push_back(static_cast<char>(decode_escape(i)));
        } else {
          text.push_back(source[i++]);
        }
      }
      if (i >= source.size()) {
        return error("unterminated string");
      }
      ++i;
      tok.kind = Tok::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      ++i;
      if (i >= source.size()) {
        return error("unterminated char literal");
      }
      int value;
      if (source[i] == '\\') {
        ++i;
        value = decode_escape(i);
      } else {
        value = static_cast<unsigned char>(source[i++]);
      }
      if (i >= source.size() || source[i] != '\'') {
        return error("unterminated char literal");
      }
      ++i;
      tok.kind = Tok::kCharLit;
      tok.number = value;
      tokens.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < source.size() && source[i + 1] == second;
    };
    auto push1 = [&](Tok k) {
      tok.kind = k;
      ++i;
      tokens.push_back(tok);
    };
    auto push2 = [&](Tok k) {
      tok.kind = k;
      i += 2;
      tokens.push_back(tok);
    };
    auto push3 = [&](Tok k) {
      tok.kind = k;
      i += 3;
      tokens.push_back(tok);
    };

    switch (c) {
      case '(':
        push1(Tok::kLParen);
        break;
      case ')':
        push1(Tok::kRParen);
        break;
      case '{':
        push1(Tok::kLBrace);
        break;
      case '}':
        push1(Tok::kRBrace);
        break;
      case '[':
        push1(Tok::kLBracket);
        break;
      case ']':
        push1(Tok::kRBracket);
        break;
      case ';':
        push1(Tok::kSemi);
        break;
      case ',':
        push1(Tok::kComma);
        break;
      case ':':
        push1(Tok::kColon);
        break;
      case '?':
        push1(Tok::kQuestion);
        break;
      case '~':
        push1(Tok::kTilde);
        break;
      case '+':
        if (two('+')) {
          push2(Tok::kPlusPlus);
        } else if (two('=')) {
          push2(Tok::kPlusEq);
        } else {
          push1(Tok::kPlus);
        }
        break;
      case '-':
        if (two('-')) {
          push2(Tok::kMinusMinus);
        } else if (two('=')) {
          push2(Tok::kMinusEq);
        } else if (two('>')) {
          push2(Tok::kArrow);
        } else {
          push1(Tok::kMinus);
        }
        break;
      case '*':
        two('=') ? push2(Tok::kStarEq) : push1(Tok::kStar);
        break;
      case '/':
        two('=') ? push2(Tok::kSlashEq) : push1(Tok::kSlash);
        break;
      case '%':
        two('=') ? push2(Tok::kPercentEq) : push1(Tok::kPercent);
        break;
      case '&':
        if (two('&')) {
          push2(Tok::kAmpAmp);
        } else if (two('=')) {
          push2(Tok::kAmpEq);
        } else {
          push1(Tok::kAmp);
        }
        break;
      case '|':
        if (two('|')) {
          push2(Tok::kPipePipe);
        } else if (two('=')) {
          push2(Tok::kPipeEq);
        } else {
          push1(Tok::kPipe);
        }
        break;
      case '^':
        two('=') ? push2(Tok::kCaretEq) : push1(Tok::kCaret);
        break;
      case '!':
        two('=') ? push2(Tok::kBangEq) : push1(Tok::kBang);
        break;
      case '=':
        two('=') ? push2(Tok::kEqEq) : push1(Tok::kAssign);
        break;
      case '.':
        push1(Tok::kDot);
        break;
      case '<':
        if (two('<')) {
          if (i + 2 < source.size() && source[i + 2] == '=') {
            push3(Tok::kShlEq);
          } else {
            push2(Tok::kShl);
          }
        } else if (two('=')) {
          push2(Tok::kLessEq);
        } else {
          push1(Tok::kLess);
        }
        break;
      case '>':
        if (two('>')) {
          if (i + 2 < source.size() && source[i + 2] == '=') {
            push3(Tok::kShrEq);
          } else {
            push2(Tok::kShr);
          }
        } else if (two('=')) {
          push2(Tok::kGreaterEq);
        } else {
          push1(Tok::kGreater);
        }
        break;
      default:
        return error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }

  Token eof;
  eof.kind = Tok::kEof;
  eof.line = line;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace polynima::cc
