// Lexer for the mcc mini-C dialect (the stand-in for gcc-8 that produces the
// evaluation's input binaries; see DESIGN.md §1).
#ifndef POLYNIMA_CC_LEXER_H_
#define POLYNIMA_CC_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace polynima::cc {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kNumber,
  kString,
  kCharLit,
  // keywords
  kInt,
  kLong,
  kChar,
  kVoid,
  kStruct,
  kIf,
  kElse,
  kWhile,
  kFor,
  kDo,
  kBreak,
  kContinue,
  kReturn,
  kSwitch,
  kCase,
  kDefault,
  kExtern,
  kSizeof,
  kStatic,
  kConst,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kColon,
  kQuestion,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kEqEq,
  kBangEq,
  kAmpAmp,
  kPipePipe,
  kShl,
  kShr,
  kPlusEq,
  kMinusEq,
  kStarEq,
  kSlashEq,
  kPercentEq,
  kAmpEq,
  kPipeEq,
  kCaretEq,
  kShlEq,
  kShrEq,
  kPlusPlus,
  kMinusMinus,
  kArrow,
  kDot,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier / string contents
  int64_t number = 0;   // kNumber / kCharLit value
  int line = 0;
};

// Tokenizes the whole source. Comments (// and /* */) are skipped.
Expected<std::vector<Token>> Lex(const std::string& source);

}  // namespace polynima::cc

#endif  // POLYNIMA_CC_LEXER_H_
