// Parser for the mcc dialect.
#ifndef POLYNIMA_CC_PARSER_H_
#define POLYNIMA_CC_PARSER_H_

#include <string>

#include "src/cc/ast.h"
#include "src/support/status.h"

namespace polynima::cc {

// Parses a translation unit. Grammar summary (C-like):
//   program    := (struct-def | extern-decl | global-var | function)*
//   type       := (int|long|char|void|struct NAME) '*'*
//   function   := type NAME '(' params ')' (block | ';')
//   statements := if/else, while, do-while, for, switch/case/default,
//                 break, continue, return, blocks, declarations, expressions
//   expressions: full C operator set except comma operator; function
//                pointers via `type (*name)(params)` declarators.
Expected<Program> Parse(const std::string& source);

}  // namespace polynima::cc

#endif  // POLYNIMA_CC_PARSER_H_
