#include "src/cc/types.h"

#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::cc {

const StructField* StructInfo::FindField(const std::string& field_name) const {
  for (const StructField& f : fields) {
    if (f.name == field_name) {
      return &f;
    }
  }
  return nullptr;
}

int64_t Type::Size() const {
  switch (kind) {
    case TypeKind::kVoid:
      return 0;
    case TypeKind::kChar:
      return 1;
    case TypeKind::kInt:
      return 4;
    case TypeKind::kLong:
    case TypeKind::kPtr:
      return 8;
    case TypeKind::kArray:
      return pointee->Size() * array_len;
    case TypeKind::kStruct:
      return struct_info->size;
    case TypeKind::kFunc:
      return 0;
  }
  return 0;
}

int64_t Type::Align() const {
  switch (kind) {
    case TypeKind::kArray:
      return pointee->Align();
    case TypeKind::kStruct:
      return struct_info->align;
    default:
      return Size() == 0 ? 1 : Size();
  }
}

int Type::OperandSize() const {
  switch (kind) {
    case TypeKind::kChar:
      return 1;
    case TypeKind::kInt:
      return 4;
    default:
      return 8;
  }
}

std::string Type::ToString() const {
  switch (kind) {
    case TypeKind::kVoid:
      return "void";
    case TypeKind::kChar:
      return "char";
    case TypeKind::kInt:
      return "int";
    case TypeKind::kLong:
      return "long";
    case TypeKind::kPtr:
      return pointee->ToString() + "*";
    case TypeKind::kArray:
      return StrCat(pointee->ToString(), "[", array_len, "]");
    case TypeKind::kStruct:
      return "struct " + struct_info->name;
    case TypeKind::kFunc: {
      std::string s = ret->ToString() + "(";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0) {
          s += ", ";
        }
        s += params[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

TypeTable::TypeTable() {
  auto make = [this](TypeKind k) {
    Type* t = NewType();
    t->kind = k;
    return t;
  };
  void_ = make(TypeKind::kVoid);
  char_ = make(TypeKind::kChar);
  int_ = make(TypeKind::kInt);
  long_ = make(TypeKind::kLong);
}

Type* TypeTable::NewType() {
  storage_.emplace_back();
  return &storage_.back();
}

const Type* TypeTable::PointerTo(const Type* pointee) {
  auto it = pointer_cache_.find(pointee);
  if (it != pointer_cache_.end()) {
    return it->second;
  }
  Type* t = NewType();
  t->kind = TypeKind::kPtr;
  t->pointee = pointee;
  pointer_cache_[pointee] = t;
  return t;
}

const Type* TypeTable::ArrayOf(const Type* element, int64_t len) {
  auto key = std::make_pair(element, len);
  auto it = array_cache_.find(key);
  if (it != array_cache_.end()) {
    return it->second;
  }
  Type* t = NewType();
  t->kind = TypeKind::kArray;
  t->pointee = element;
  t->array_len = len;
  array_cache_[key] = t;
  return t;
}

const Type* TypeTable::FunctionOf(const Type* ret,
                                  std::vector<const Type*> params) {
  // Function types are not interned (comparison is never by identity).
  Type* t = NewType();
  t->kind = TypeKind::kFunc;
  t->ret = ret;
  t->params = std::move(params);
  return t;
}

const Type* TypeTable::StructByName(const std::string& name) {
  auto it = struct_cache_.find(name);
  if (it != struct_cache_.end()) {
    return it->second;
  }
  struct_storage_.emplace_back();
  struct_storage_.back().name = name;
  Type* t = NewType();
  t->kind = TypeKind::kStruct;
  t->struct_info = &struct_storage_.back();
  struct_cache_[name] = t;
  return t;
}

StructInfo* TypeTable::MutableStructInfo(const std::string& name) {
  const Type* t = StructByName(name);
  return const_cast<StructInfo*>(t->struct_info);
}

}  // namespace polynima::cc
