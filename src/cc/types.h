// Type system for the mcc dialect: void, char (8-bit signed), int (32-bit),
// long (64-bit), pointers, fixed arrays, structs (by pointer only) and
// function types (through pointers). Types are interned in a TypeTable and
// referenced by const pointer.
#ifndef POLYNIMA_CC_TYPES_H_
#define POLYNIMA_CC_TYPES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace polynima::cc {

enum class TypeKind : uint8_t {
  kVoid,
  kChar,
  kInt,
  kLong,
  kPtr,
  kArray,
  kStruct,
  kFunc,
};

struct Type;

struct StructField {
  std::string name;
  const Type* type = nullptr;
  int64_t offset = 0;
};

struct StructInfo {
  std::string name;
  std::vector<StructField> fields;
  int64_t size = 0;
  int64_t align = 1;

  const StructField* FindField(const std::string& field_name) const;
};

struct Type {
  TypeKind kind = TypeKind::kVoid;
  const Type* pointee = nullptr;   // kPtr / kArray element
  int64_t array_len = 0;           // kArray
  const StructInfo* struct_info = nullptr;  // kStruct
  const Type* ret = nullptr;                // kFunc
  std::vector<const Type*> params;          // kFunc

  bool IsInteger() const {
    return kind == TypeKind::kChar || kind == TypeKind::kInt ||
           kind == TypeKind::kLong;
  }
  bool IsPointerLike() const {
    return kind == TypeKind::kPtr || kind == TypeKind::kArray;
  }
  bool IsScalar() const { return IsInteger() || kind == TypeKind::kPtr; }

  // Storage size in bytes; arrays and structs have their full size.
  int64_t Size() const;
  int64_t Align() const;
  // Operand size for loads/stores of this scalar (1, 4 or 8).
  int OperandSize() const;

  std::string ToString() const;
};

class TypeTable {
 public:
  TypeTable();

  const Type* Void() const { return void_; }
  const Type* Char() const { return char_; }
  const Type* Int() const { return int_; }
  const Type* Long() const { return long_; }

  const Type* PointerTo(const Type* pointee);
  const Type* ArrayOf(const Type* element, int64_t len);
  const Type* FunctionOf(const Type* ret, std::vector<const Type*> params);

  // Declares (or returns the existing) struct by name; fields may be filled
  // in later via DefineStruct.
  const Type* StructByName(const std::string& name);
  StructInfo* MutableStructInfo(const std::string& name);

 private:
  Type* NewType();
  std::deque<Type> storage_;
  std::deque<StructInfo> struct_storage_;
  const Type* void_;
  const Type* char_;
  const Type* int_;
  const Type* long_;
  std::map<const Type*, const Type*> pointer_cache_;
  std::map<std::pair<const Type*, int64_t>, const Type*> array_cache_;
  std::map<std::string, const Type*> struct_cache_;
};

}  // namespace polynima::cc

#endif  // POLYNIMA_CC_TYPES_H_
