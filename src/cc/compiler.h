// mcc: the mini-C compiler used to produce every evaluation workload binary.
//
// Two optimization levels reproduce the paper's gcc -O0 / -O3 input shapes:
//   -O0: every local lives in a stack slot and is reloaded on each use;
//        expression temporaries round-trip through the machine stack;
//        switch lowers to compare chains; vector builtins expand to scalar
//        loops.
//   -O2: constant folding, hot scalar locals promoted to callee-saved
//        registers, direct memory operands instead of push/pop temporaries,
//        scaled addressing for indexing, jump tables for dense switches, and
//        SSE expansion of the __v*_i32 vector builtins (the stand-in for
//        gcc's auto-vectorizer, see DESIGN.md).
//
// Builtins (lowered inline):
//   __atomic_fetch_add(p, v)   -> lock xadd        (returns old value)
//   __atomic_cas(p, old, new)  -> lock cmpxchg     (returns witnessed value)
//   __atomic_exchange(p, v)    -> xchg             (returns old value)
//   __atomic_load(p)           -> mov (x86 TSO: acquire for free)
//   __atomic_store(p, v)       -> mov (x86 TSO: release for free)
//   __pause()                  -> pause
//   __vdot_i32(a, b, n)        -> sum a[i]*b[i]    (int lanes)
//   __vsum_i32(a, n)           -> sum a[i]
//   __vadd_i32(dst, a, b, n)   -> dst[i] = a[i] + b[i]
//   __vmul_i32(dst, a, b, n)   -> dst[i] = a[i] * b[i]
//
// Undefined functions that appear in the external library's name table
// become imports; `main` is the entry point.
#ifndef POLYNIMA_CC_COMPILER_H_
#define POLYNIMA_CC_COMPILER_H_

#include <string>

#include "src/binary/image.h"
#include "src/support/status.h"

namespace polynima::cc {

struct CompileOptions {
  std::string name = "a.out";
  int opt_level = 0;  // 0 or 2
  // Emit endbr64 landing pads at every indirect-transfer target (function
  // entries and jump-table case labels), the CET-style annotation the
  // --cfg-sound static recovery consumes. Off by default: the pads shift
  // code addresses, so only landing-pad-aware workloads opt in.
  bool landing_pads = false;
};

// Compiles mcc source to an executable Image. Function symbols (ground
// truth) are recorded in the image for tests; the recompiler ignores them.
Expected<binary::Image> Compile(const std::string& source,
                                const CompileOptions& options);

}  // namespace polynima::cc

#endif  // POLYNIMA_CC_COMPILER_H_
