// AST for the mcc dialect. Nodes are tagged structs (no visitor hierarchy);
// `type` fields are filled during code generation's typing pass.
#ifndef POLYNIMA_CC_AST_H_
#define POLYNIMA_CC_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cc/lexer.h"
#include "src/cc/types.h"

namespace polynima::cc {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t {
  kNumber,
  kString,
  kIdent,
  kUnary,     // op in {kMinus, kBang, kTilde, kStar(deref), kAmp(addr-of)}
  kBinary,    // arithmetic / comparison / logical (op field)
  kAssign,    // a = b
  kCompound,  // a op= b (op field holds base operator, e.g. kPlus)
  kCond,      // a ? b : c
  kCall,      // a(args...); a is kIdent for direct calls or any fn-ptr expr
  kIndex,     // a[b]
  kMember,    // a.field
  kArrow,     // a->field
  kCast,      // (type)a
  kSizeof,    // sizeof(type)
  kPreInc,
  kPreDec,
  kPostInc,
  kPostDec,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  int64_t number = 0;    // kNumber
  std::string text;      // kIdent name / kString contents / member field name
  Tok op = Tok::kEof;    // kUnary / kBinary / kCompound operator
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;       // kCall
  const Type* named_type = nullptr;  // kCast / kSizeof

  // Filled during typing.
  const Type* type = nullptr;
};

enum class StmtKind : uint8_t {
  kExpr,
  kDecl,
  kBlock,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kBreak,
  kContinue,
  kReturn,
  kSwitch,
  kCase,     // label inside a switch block
  kDefault,  // label inside a switch block
  kEmpty,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;  // kExpr / kReturn value / kSwitch selector
  ExprPtr cond;  // kIf / kWhile / kDoWhile / kFor condition
  ExprPtr inc;   // kFor increment
  StmtPtr init;  // kFor init (kDecl or kExpr)
  StmtPtr then_stmt, else_stmt;  // kIf
  StmtPtr body;                  // loop / switch body
  std::vector<StmtPtr> stmts;    // kBlock
  // kBlock only: a synthetic group (multi-declarator line) that must not
  // open a new scope.
  bool transparent = false;

  // kDecl
  const Type* decl_type = nullptr;
  std::string decl_name;
  ExprPtr decl_init;

  int64_t case_value = 0;  // kCase
};

struct Param {
  const Type* type = nullptr;
  std::string name;
};

struct Func {
  std::string name;
  const Type* ret = nullptr;
  std::vector<Param> params;
  StmtPtr body;  // null for extern declarations
  bool is_extern = false;
  int line = 0;
};

struct GlobalVar {
  std::string name;
  const Type* type = nullptr;
  // Initializer: flat scalar list (arrays use element order) or a string.
  std::vector<int64_t> init_values;
  // Parallel to init_values: non-empty entries name a function whose address
  // initializes that element (function-pointer tables). The numeric value in
  // init_values is ignored for those elements.
  std::vector<std::string> init_funcs;
  std::string init_string;
  bool init_is_string = false;
  bool has_init = false;
  // `const`: placed in the read-only .rodata segment.
  bool is_const = false;
};

struct Program {
  std::shared_ptr<TypeTable> types;
  std::vector<Func> funcs;
  std::vector<GlobalVar> globals;
};

}  // namespace polynima::cc

#endif  // POLYNIMA_CC_AST_H_
