#include "src/cc/parser.h"

#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::cc {
namespace {

ExprPtr NewExpr(ExprKind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

StmtPtr NewStmt(StmtKind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)), types_(std::make_shared<TypeTable>()) {}

  Expected<Program> Run() {
    Program program;
    program.types = types_;
    while (!At(Tok::kEof)) {
      if (!error_.ok()) {
        return error_;
      }
      ParseTopLevel(program);
    }
    if (!error_.ok()) {
      return error_;
    }
    return program;
  }

 private:
  // --- token helpers ---
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(Tok k) const { return Peek().kind == k; }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(Tok k) {
    if (At(k)) {
      Advance();
      return true;
    }
    return false;
  }
  Token Expect(Tok k, const char* what) {
    if (!At(k)) {
      Error(StrCat("expected ", what));
      return Peek();
    }
    return Advance();
  }
  void Error(const std::string& message) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument(
          StrCat("parse error line ", Peek().line, ": ", message));
    }
    // Skip to EOF so parsing terminates.
    pos_ = tokens_.size() - 1;
  }

  bool AtTypeStart() const {
    switch (Peek().kind) {
      case Tok::kInt:
      case Tok::kLong:
      case Tok::kChar:
      case Tok::kVoid:
      case Tok::kStruct:
        return true;
      default:
        return false;
    }
  }

  // Parses a type specifier (no declarator): int/long/char/void/struct NAME
  // plus leading '*'s are handled by ParseDeclarator.
  const Type* ParseTypeSpec() {
    switch (Peek().kind) {
      case Tok::kInt:
        Advance();
        return types_->Int();
      case Tok::kLong:
        Advance();
        return types_->Long();
      case Tok::kChar:
        Advance();
        return types_->Char();
      case Tok::kVoid:
        Advance();
        return types_->Void();
      case Tok::kStruct: {
        Advance();
        Token name = Expect(Tok::kIdent, "struct name");
        return types_->StructByName(name.text);
      }
      default:
        Error("expected type");
        return types_->Void();
    }
  }

  // Parses '*'* and either NAME ('[' N ']')* or the function-pointer form
  // '(' '*' NAME ')' '(' params ')'.
  const Type* ParseDeclarator(const Type* base, std::string& name_out) {
    while (Accept(Tok::kStar)) {
      base = types_->PointerTo(base);
    }
    if (Accept(Tok::kLParen)) {
      Expect(Tok::kStar, "'*' in function pointer declarator");
      name_out = Expect(Tok::kIdent, "name").text;
      // Optional array dimension: `T (*name[N])(params)`.
      int64_t array_len = -1;
      if (Accept(Tok::kLBracket)) {
        array_len = Expect(Tok::kNumber, "array length").number;
        Expect(Tok::kRBracket, "']'");
      }
      Expect(Tok::kRParen, "')'");
      Expect(Tok::kLParen, "'('");
      std::vector<const Type*> params;
      if (!At(Tok::kRParen)) {
        do {
          const Type* pt = ParseTypeSpec();
          std::string ignored;
          pt = ParseAbstractPointer(pt, &ignored);
          params.push_back(pt);
        } while (Accept(Tok::kComma));
      }
      Expect(Tok::kRParen, "')'");
      const Type* fp =
          types_->PointerTo(types_->FunctionOf(base, std::move(params)));
      return array_len >= 0 ? types_->ArrayOf(fp, array_len) : fp;
    }
    name_out = Expect(Tok::kIdent, "name").text;
    // Array dimensions (outer to inner).
    std::vector<int64_t> dims;
    while (Accept(Tok::kLBracket)) {
      Token n = Expect(Tok::kNumber, "array length");
      dims.push_back(n.number);
      Expect(Tok::kRBracket, "']'");
    }
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      base = types_->ArrayOf(base, *it);
    }
    return base;
  }

  // Pointer declarator with optional name (parameter lists, casts, sizeof).
  // Supports the abstract function-pointer form `T (*)(params)`.
  const Type* ParseAbstractPointer(const Type* base, std::string* name_out) {
    while (Accept(Tok::kStar)) {
      base = types_->PointerTo(base);
    }
    if (At(Tok::kLParen) && Peek(1).kind == Tok::kStar) {
      Advance();
      Expect(Tok::kStar, "'*'");
      Expect(Tok::kRParen, "')'");
      Expect(Tok::kLParen, "'('");
      std::vector<const Type*> params;
      if (!At(Tok::kRParen)) {
        do {
          const Type* pt = ParseTypeSpec();
          std::string ignored;
          pt = ParseAbstractPointer(pt, &ignored);
          params.push_back(pt);
        } while (Accept(Tok::kComma));
      }
      Expect(Tok::kRParen, "')'");
      return types_->PointerTo(types_->FunctionOf(base, std::move(params)));
    }
    if (At(Tok::kIdent)) {
      *name_out = Advance().text;
    }
    return base;
  }

  void ParseTopLevel(Program& program) {
    bool is_extern = Accept(Tok::kExtern);
    Accept(Tok::kStatic);  // accepted and ignored (single TU)
    bool is_const = Accept(Tok::kConst);

    if (At(Tok::kStruct) && Peek(1).kind == Tok::kIdent &&
        Peek(2).kind == Tok::kLBrace) {
      ParseStructDef();
      return;
    }

    const Type* base = ParseTypeSpec();
    std::string name;
    const Type* type = ParseDeclarator(base, name);

    if (At(Tok::kLParen)) {
      ParseFunction(program, type, name, is_extern);
      return;
    }
    // Global variable(s).
    ParseGlobalRest(program, type, name, is_const);
    while (Accept(Tok::kComma)) {
      std::string next_name;
      const Type* next_type = ParseDeclarator(base, next_name);
      ParseGlobalRest(program, next_type, next_name, is_const);
    }
    Expect(Tok::kSemi, "';'");
  }

  void ParseStructDef() {
    Expect(Tok::kStruct, "'struct'");
    Token name = Expect(Tok::kIdent, "struct name");
    Expect(Tok::kLBrace, "'{'");
    StructInfo* info = types_->MutableStructInfo(name.text);
    int64_t offset = 0;
    int64_t max_align = 1;
    while (!At(Tok::kRBrace) && !At(Tok::kEof)) {
      const Type* base = ParseTypeSpec();
      do {
        std::string field_name;
        const Type* ft = ParseDeclarator(base, field_name);
        int64_t align = ft->Align();
        offset = (offset + align - 1) / align * align;
        info->fields.push_back({field_name, ft, offset});
        offset += ft->Size();
        max_align = std::max(max_align, align);
      } while (Accept(Tok::kComma));
      Expect(Tok::kSemi, "';'");
    }
    Expect(Tok::kRBrace, "'}'");
    Expect(Tok::kSemi, "';'");
    info->align = max_align;
    info->size = (offset + max_align - 1) / max_align * max_align;
  }

  void ParseGlobalRest(Program& program, const Type* type,
                       const std::string& name, bool is_const) {
    GlobalVar g;
    g.name = name;
    g.type = type;
    g.is_const = is_const;
    if (Accept(Tok::kAssign)) {
      g.has_init = true;
      if (At(Tok::kString)) {
        g.init_is_string = true;
        g.init_string = Advance().text;
      } else if (Accept(Tok::kLBrace)) {
        while (!At(Tok::kRBrace) && !At(Tok::kEof)) {
          ParseInitElement(g);
          if (!Accept(Tok::kComma)) {
            break;
          }
        }
        Expect(Tok::kRBrace, "'}'");
      } else {
        ParseInitElement(g);
      }
    }
    program.globals.push_back(std::move(g));
  }

  // One global-initializer element: an integer constant, or (for
  // function-pointer tables) `name` / `&name` naming a defined function.
  void ParseInitElement(GlobalVar& g) {
    Accept(Tok::kAmp);  // optional address-of on a function name
    if (At(Tok::kIdent)) {
      g.init_funcs.resize(g.init_values.size());
      g.init_funcs.push_back(Advance().text);
      g.init_values.push_back(0);
      return;
    }
    g.init_values.push_back(ParseConstant());
  }

  int64_t ParseConstant() {
    bool neg = Accept(Tok::kMinus);
    if (At(Tok::kNumber) || At(Tok::kCharLit)) {
      int64_t v = Advance().number;
      return neg ? -v : v;
    }
    Error("expected constant");
    return 0;
  }

  void ParseFunction(Program& program, const Type* ret, const std::string& name,
                     bool is_extern) {
    Func fn;
    fn.name = name;
    fn.ret = ret;
    fn.is_extern = is_extern;
    fn.line = Peek().line;
    Expect(Tok::kLParen, "'('");
    if (!At(Tok::kRParen)) {
      if (At(Tok::kVoid) && Peek(1).kind == Tok::kRParen) {
        Advance();
      } else {
        do {
          const Type* base = ParseTypeSpec();
          std::string pname;
          const Type* pt = ParseParamDeclarator(base, pname);
          fn.params.push_back({pt, pname});
        } while (Accept(Tok::kComma));
      }
    }
    Expect(Tok::kRParen, "')'");
    if (Accept(Tok::kSemi)) {
      fn.is_extern = true;  // declaration only
      program.funcs.push_back(std::move(fn));
      return;
    }
    fn.body = ParseBlock();
    program.funcs.push_back(std::move(fn));
  }

  // Parameter declarator: pointers, optional name, optional fn-ptr form,
  // arrays decay to pointers.
  const Type* ParseParamDeclarator(const Type* base, std::string& name_out) {
    while (Accept(Tok::kStar)) {
      base = types_->PointerTo(base);
    }
    if (Accept(Tok::kLParen)) {
      Expect(Tok::kStar, "'*'");
      if (At(Tok::kIdent)) {
        name_out = Advance().text;
      }
      Expect(Tok::kRParen, "')'");
      Expect(Tok::kLParen, "'('");
      std::vector<const Type*> params;
      if (!At(Tok::kRParen)) {
        do {
          const Type* pt = ParseTypeSpec();
          std::string ignored;
          pt = ParseAbstractPointer(pt, &ignored);
          params.push_back(pt);
        } while (Accept(Tok::kComma));
      }
      Expect(Tok::kRParen, "')'");
      return types_->PointerTo(types_->FunctionOf(base, std::move(params)));
    }
    if (At(Tok::kIdent)) {
      name_out = Advance().text;
    }
    if (Accept(Tok::kLBracket)) {  // T name[] decays to T*
      Accept(Tok::kNumber);
      Expect(Tok::kRBracket, "']'");
      base = types_->PointerTo(base);
    }
    return base;
  }

  // --- statements ---

  StmtPtr ParseBlock() {
    int line = Peek().line;
    Expect(Tok::kLBrace, "'{'");
    auto block = NewStmt(StmtKind::kBlock, line);
    while (!At(Tok::kRBrace) && !At(Tok::kEof)) {
      block->stmts.push_back(ParseStatement());
    }
    Expect(Tok::kRBrace, "'}'");
    return block;
  }

  StmtPtr ParseStatement() {
    int line = Peek().line;
    switch (Peek().kind) {
      case Tok::kLBrace:
        return ParseBlock();
      case Tok::kSemi:
        Advance();
        return NewStmt(StmtKind::kEmpty, line);
      case Tok::kIf: {
        Advance();
        auto s = NewStmt(StmtKind::kIf, line);
        Expect(Tok::kLParen, "'('");
        s->cond = ParseExpr();
        Expect(Tok::kRParen, "')'");
        s->then_stmt = ParseStatement();
        if (Accept(Tok::kElse)) {
          s->else_stmt = ParseStatement();
        }
        return s;
      }
      case Tok::kWhile: {
        Advance();
        auto s = NewStmt(StmtKind::kWhile, line);
        Expect(Tok::kLParen, "'('");
        s->cond = ParseExpr();
        Expect(Tok::kRParen, "')'");
        s->body = ParseStatement();
        return s;
      }
      case Tok::kDo: {
        Advance();
        auto s = NewStmt(StmtKind::kDoWhile, line);
        s->body = ParseStatement();
        Expect(Tok::kWhile, "'while'");
        Expect(Tok::kLParen, "'('");
        s->cond = ParseExpr();
        Expect(Tok::kRParen, "')'");
        Expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kFor: {
        Advance();
        auto s = NewStmt(StmtKind::kFor, line);
        Expect(Tok::kLParen, "'('");
        if (!At(Tok::kSemi)) {
          if (AtTypeStart()) {
            s->init = ParseDeclStatement();
          } else {
            auto e = NewStmt(StmtKind::kExpr, line);
            e->expr = ParseExpr();
            s->init = std::move(e);
            Expect(Tok::kSemi, "';'");
          }
        } else {
          Advance();
        }
        if (!At(Tok::kSemi)) {
          s->cond = ParseExpr();
        }
        Expect(Tok::kSemi, "';'");
        if (!At(Tok::kRParen)) {
          s->inc = ParseExpr();
        }
        Expect(Tok::kRParen, "')'");
        s->body = ParseStatement();
        return s;
      }
      case Tok::kBreak:
        Advance();
        Expect(Tok::kSemi, "';'");
        return NewStmt(StmtKind::kBreak, line);
      case Tok::kContinue:
        Advance();
        Expect(Tok::kSemi, "';'");
        return NewStmt(StmtKind::kContinue, line);
      case Tok::kReturn: {
        Advance();
        auto s = NewStmt(StmtKind::kReturn, line);
        if (!At(Tok::kSemi)) {
          s->expr = ParseExpr();
        }
        Expect(Tok::kSemi, "';'");
        return s;
      }
      case Tok::kSwitch: {
        Advance();
        auto s = NewStmt(StmtKind::kSwitch, line);
        Expect(Tok::kLParen, "'('");
        s->expr = ParseExpr();
        Expect(Tok::kRParen, "')'");
        s->body = ParseBlock();
        return s;
      }
      case Tok::kCase: {
        Advance();
        auto s = NewStmt(StmtKind::kCase, line);
        s->case_value = ParseConstant();
        Expect(Tok::kColon, "':'");
        return s;
      }
      case Tok::kDefault: {
        Advance();
        Expect(Tok::kColon, "':'");
        return NewStmt(StmtKind::kDefault, line);
      }
      default:
        if (AtTypeStart()) {
          return ParseDeclStatement();
        }
        {
          auto s = NewStmt(StmtKind::kExpr, line);
          s->expr = ParseExpr();
          Expect(Tok::kSemi, "';'");
          return s;
        }
    }
  }

  // Local declaration: `type declarator (= init)? (, declarator (= init)?)* ;`
  // Multi-declarator lines become a block of kDecl statements.
  StmtPtr ParseDeclStatement() {
    int line = Peek().line;
    const Type* base = ParseTypeSpec();
    std::vector<StmtPtr> decls;
    do {
      auto s = NewStmt(StmtKind::kDecl, line);
      std::string name;
      s->decl_type = ParseDeclarator(base, name);
      s->decl_name = name;
      if (Accept(Tok::kAssign)) {
        s->decl_init = ParseAssignment();
      }
      decls.push_back(std::move(s));
    } while (Accept(Tok::kComma));
    Expect(Tok::kSemi, "';'");
    if (decls.size() == 1) {
      return std::move(decls[0]);
    }
    auto block = NewStmt(StmtKind::kBlock, line);
    block->stmts = std::move(decls);
    block->transparent = true;  // the declarations join the enclosing scope
    return block;
  }

  // --- expressions (precedence climbing) ---

  ExprPtr ParseExpr() { return ParseAssignment(); }

  ExprPtr ParseAssignment() {
    ExprPtr lhs = ParseConditional();
    int line = Peek().line;
    Tok k = Peek().kind;
    switch (k) {
      case Tok::kAssign: {
        Advance();
        auto e = NewExpr(ExprKind::kAssign, line);
        e->a = std::move(lhs);
        e->b = ParseAssignment();
        return e;
      }
      case Tok::kPlusEq:
      case Tok::kMinusEq:
      case Tok::kStarEq:
      case Tok::kSlashEq:
      case Tok::kPercentEq:
      case Tok::kAmpEq:
      case Tok::kPipeEq:
      case Tok::kCaretEq:
      case Tok::kShlEq:
      case Tok::kShrEq: {
        Advance();
        auto e = NewExpr(ExprKind::kCompound, line);
        switch (k) {
          case Tok::kPlusEq:
            e->op = Tok::kPlus;
            break;
          case Tok::kMinusEq:
            e->op = Tok::kMinus;
            break;
          case Tok::kStarEq:
            e->op = Tok::kStar;
            break;
          case Tok::kSlashEq:
            e->op = Tok::kSlash;
            break;
          case Tok::kPercentEq:
            e->op = Tok::kPercent;
            break;
          case Tok::kAmpEq:
            e->op = Tok::kAmp;
            break;
          case Tok::kPipeEq:
            e->op = Tok::kPipe;
            break;
          case Tok::kCaretEq:
            e->op = Tok::kCaret;
            break;
          case Tok::kShlEq:
            e->op = Tok::kShl;
            break;
          default:
            e->op = Tok::kShr;
            break;
        }
        e->a = std::move(lhs);
        e->b = ParseAssignment();
        return e;
      }
      default:
        return lhs;
    }
  }

  ExprPtr ParseConditional() {
    ExprPtr cond = ParseBinary(0);
    if (At(Tok::kQuestion)) {
      int line = Advance().line;
      auto e = NewExpr(ExprKind::kCond, line);
      e->a = std::move(cond);
      e->b = ParseExpr();
      Expect(Tok::kColon, "':'");
      e->c = ParseConditional();
      return e;
    }
    return cond;
  }

  static int Precedence(Tok k) {
    switch (k) {
      case Tok::kPipePipe:
        return 1;
      case Tok::kAmpAmp:
        return 2;
      case Tok::kPipe:
        return 3;
      case Tok::kCaret:
        return 4;
      case Tok::kAmp:
        return 5;
      case Tok::kEqEq:
      case Tok::kBangEq:
        return 6;
      case Tok::kLess:
      case Tok::kLessEq:
      case Tok::kGreater:
      case Tok::kGreaterEq:
        return 7;
      case Tok::kShl:
      case Tok::kShr:
        return 8;
      case Tok::kPlus:
      case Tok::kMinus:
        return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent:
        return 10;
      default:
        return -1;
    }
  }

  ExprPtr ParseBinary(int min_prec) {
    ExprPtr lhs = ParseUnary();
    while (true) {
      Tok k = Peek().kind;
      int prec = Precedence(k);
      if (prec < min_prec || prec < 0) {
        return lhs;
      }
      int line = Advance().line;
      ExprPtr rhs = ParseBinary(prec + 1);
      auto e = NewExpr(ExprKind::kBinary, line);
      e->op = k;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr ParseUnary() {
    int line = Peek().line;
    switch (Peek().kind) {
      case Tok::kMinus:
      case Tok::kBang:
      case Tok::kTilde:
      case Tok::kStar:
      case Tok::kAmp: {
        Tok op = Advance().kind;
        auto e = NewExpr(ExprKind::kUnary, line);
        e->op = op;
        e->a = ParseUnary();
        return e;
      }
      case Tok::kPlusPlus: {
        Advance();
        auto e = NewExpr(ExprKind::kPreInc, line);
        e->a = ParseUnary();
        return e;
      }
      case Tok::kMinusMinus: {
        Advance();
        auto e = NewExpr(ExprKind::kPreDec, line);
        e->a = ParseUnary();
        return e;
      }
      case Tok::kSizeof: {
        Advance();
        Expect(Tok::kLParen, "'('");
        auto e = NewExpr(ExprKind::kSizeof, line);
        const Type* base = ParseTypeSpec();
        std::string ignored;
        e->named_type = ParseAbstractPointer(base, &ignored);
        Expect(Tok::kRParen, "')'");
        return e;
      }
      case Tok::kLParen:
        // Cast: '(' type ')' unary
        if (IsTypeStartKind(Peek(1).kind)) {
          Advance();
          auto e = NewExpr(ExprKind::kCast, line);
          const Type* base = ParseTypeSpec();
          std::string ignored;
          e->named_type = ParseAbstractPointer(base, &ignored);
          Expect(Tok::kRParen, "')'");
          e->a = ParseUnary();
          return e;
        }
        return ParsePostfix();
      default:
        return ParsePostfix();
    }
  }

  static bool IsTypeStartKind(Tok k) {
    return k == Tok::kInt || k == Tok::kLong || k == Tok::kChar ||
           k == Tok::kVoid || k == Tok::kStruct;
  }

  ExprPtr ParsePostfix() {
    ExprPtr e = ParsePrimary();
    while (true) {
      int line = Peek().line;
      switch (Peek().kind) {
        case Tok::kLParen: {
          Advance();
          auto call = NewExpr(ExprKind::kCall, line);
          call->a = std::move(e);
          if (!At(Tok::kRParen)) {
            do {
              call->args.push_back(ParseAssignment());
            } while (Accept(Tok::kComma));
          }
          Expect(Tok::kRParen, "')'");
          e = std::move(call);
          break;
        }
        case Tok::kLBracket: {
          Advance();
          auto idx = NewExpr(ExprKind::kIndex, line);
          idx->a = std::move(e);
          idx->b = ParseExpr();
          Expect(Tok::kRBracket, "']'");
          e = std::move(idx);
          break;
        }
        case Tok::kDot: {
          Advance();
          auto m = NewExpr(ExprKind::kMember, line);
          m->a = std::move(e);
          m->text = Expect(Tok::kIdent, "field name").text;
          e = std::move(m);
          break;
        }
        case Tok::kArrow: {
          Advance();
          auto m = NewExpr(ExprKind::kArrow, line);
          m->a = std::move(e);
          m->text = Expect(Tok::kIdent, "field name").text;
          e = std::move(m);
          break;
        }
        case Tok::kPlusPlus: {
          Advance();
          auto p = NewExpr(ExprKind::kPostInc, line);
          p->a = std::move(e);
          e = std::move(p);
          break;
        }
        case Tok::kMinusMinus: {
          Advance();
          auto p = NewExpr(ExprKind::kPostDec, line);
          p->a = std::move(e);
          e = std::move(p);
          break;
        }
        default:
          return e;
      }
    }
  }

  ExprPtr ParsePrimary() {
    int line = Peek().line;
    switch (Peek().kind) {
      case Tok::kNumber:
      case Tok::kCharLit: {
        auto e = NewExpr(ExprKind::kNumber, line);
        e->number = Advance().number;
        return e;
      }
      case Tok::kString: {
        auto e = NewExpr(ExprKind::kString, line);
        e->text = Advance().text;
        return e;
      }
      case Tok::kIdent: {
        auto e = NewExpr(ExprKind::kIdent, line);
        e->text = Advance().text;
        return e;
      }
      case Tok::kLParen: {
        Advance();
        ExprPtr e = ParseExpr();
        Expect(Tok::kRParen, "')'");
        return e;
      }
      default:
        Error("expected expression");
        return NewExpr(ExprKind::kNumber, line);
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::shared_ptr<TypeTable> types_;
  Status error_;
};

}  // namespace

Expected<Program> Parse(const std::string& source) {
  POLY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace polynima::cc
