#include "src/check/tso.h"

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/check/derive.h"
#include "src/support/strings.h"

namespace polynima::check {

namespace {

using ir::BasicBlock;
using ir::FenceOrder;
using ir::FenceWitness;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;
using ir::Value;

bool IsCall(const Instruction& inst) { return inst.op() == Op::kCall; }

bool IsAtomic(const Instruction& inst) {
  return inst.op() == Op::kAtomicRmw || inst.op() == Op::kCmpXchg;
}

// Barriers that discharge a load's acquire obligation / a store's release
// obligation. Calls count: this repo's optimizer never moves guest memory
// operations across calls, and the callee re-establishes ordering for its
// own accesses.
bool IsAcquireBarrier(const Instruction& inst) {
  if (inst.op() == Op::kFence) {
    return inst.fence_order == FenceOrder::kAcquire ||
           inst.fence_order == FenceOrder::kSeqCst;
  }
  return IsAtomic(inst) || IsCall(inst);
}

bool IsReleaseBarrier(const Instruction& inst) {
  if (inst.op() == Op::kFence) {
    return inst.fence_order == FenceOrder::kRelease ||
           inst.fence_order == FenceOrder::kSeqCst;
  }
  return IsAtomic(inst) || IsCall(inst);
}

// ---------------------------------------------------------------------------
// Stack-locality re-derivation
// ---------------------------------------------------------------------------
//
// Re-proves a lifter kStackLocal claim from the IR alone: the address must
// be computed from the emulated stack pointer. Mirrors the lifter's taint
// rules (src/lift: IsStackLocal/UpdateStackTracking) at the IR level:
//   - GlobalLoad @vr_rsp is always a stack root; @vr_rbp is a root in
//     functions the lifter marked frame_pointer;
//   - GlobalLoad of another virtual register is derived iff an earlier
//     GlobalStore IN THE SAME BLOCK (with no intervening call) stored a
//     derived value — the lifter's taint is per-block, so a sound witness
//     never needs a longer chase;
//   - add/sub propagate from either operand (pointer +/- offset);
//   - phi/select require every data operand to be derived (optimistic on
//     phi cycles: a loop-carried pointer increment stays derived);
//   - a load from a derived address is derived (push/pop and spill slots
//     live on the emulated stack, which is thread-private).
// Constants alone are NOT derived: a forged witness on a global-address
// access fails re-derivation.
class StackDeriver {
 public:
  explicit StackDeriver(const Function& f) : f_(f) {}

  bool Derived(const Value* v) {
    if (v == nullptr || !v->is_inst()) {
      return false;
    }
    const auto* inst = static_cast<const Instruction*>(v);
    auto it = state_.find(inst);
    if (it != state_.end()) {
      return it->second != State::kNot;
    }
    state_[inst] = State::kInProgress;
    bool derived = Compute(*inst);
    state_[inst] = derived ? State::kDerived : State::kNot;
    return derived;
  }

 private:
  enum class State { kInProgress, kDerived, kNot };

  bool Compute(const Instruction& inst) {
    switch (inst.op()) {
      case Op::kGlobalLoad: {
        const Global* g = inst.global;
        if (g == nullptr) {
          return false;
        }
        if (g->name() == "vr_rsp") {
          return true;
        }
        if (g->name() == "vr_rbp" && f_.frame_pointer) {
          return true;
        }
        return ChaseReachingStore(inst);
      }
      case Op::kAdd:
      case Op::kSub:
        return Derived(inst.operand(0)) || Derived(inst.operand(1));
      case Op::kSelect:
        return Derived(inst.operand(1)) && Derived(inst.operand(2));
      case Op::kPhi: {
        if (inst.num_operands() == 0) {
          return false;
        }
        for (int i = 0; i < inst.num_operands(); ++i) {
          if (!Derived(inst.operand(i))) {
            return false;
          }
        }
        return true;
      }
      case Op::kLoad:
        return Derived(inst.operand(0));
      default:
        return false;
    }
  }

  // GlobalLoad of a non-root virtual register: find the last GlobalStore to
  // the same global earlier in the block (calls clobber the chase — the
  // lifter's taint never crosses one) and classify the stored value.
  bool ChaseReachingStore(const Instruction& gload) {
    const BasicBlock* b = gload.parent();
    if (b == nullptr) {
      return false;
    }
    const Value* stored = nullptr;
    for (const auto& inst : b->insts()) {
      if (inst.get() == &gload) {
        break;
      }
      if (inst->op() == Op::kCall) {
        stored = nullptr;
      } else if (inst->op() == Op::kGlobalStore &&
                 inst->global == gload.global) {
        stored = inst->operand(0);
      }
    }
    return stored != nullptr && Derived(stored);
  }

  const Function& f_;
  std::map<const Instruction*, State> state_;
};

// ---------------------------------------------------------------------------
// Path obligations
// ---------------------------------------------------------------------------

// What a whole-block scan encounters first, per direction.
enum class Hit : uint8_t {
  kBarrier,      // discharged inside the block
  kAccess,       // reaches a guest access with no barrier -> offender
  kExit,         // forward: ret/unreachable terminator ends the path
  kFallthrough,  // obligation flows to successors (fwd) / predecessors (bwd)
};

struct BlockFacts {
  Hit fwd = Hit::kFallthrough;
  const Instruction* fwd_offender = nullptr;
  Hit bwd = Hit::kFallthrough;
  const Instruction* bwd_offender = nullptr;
};

// Per-function path analysis: for every block, whether an obligation that
// reaches its boundary is discharged on all paths. Solved as a greatest
// fixpoint (all-true start), so a barrier-free, access-free cycle counts as
// discharged — an infinite loop that never touches guest memory cannot
// misorder anything.
class PathAnalysis {
 public:
  PathAnalysis(const Function& f,
               const std::set<const Instruction*>& transparent)
      : f_(f), transparent_(transparent) {
    for (const auto& b : f.blocks()) {
      for (ir::BasicBlock* succ : b->Successors()) {
        preds_[succ].push_back(b.get());
      }
    }
    for (const auto& b : f.blocks()) {
      BlockFacts facts;
      // Forward: first event scanning from the top.
      for (const auto& inst : b->insts()) {
        if (IsGuestAccess(*inst)) {
          facts.fwd = Hit::kAccess;
          facts.fwd_offender = inst.get();
          break;
        }
        if (IsAcquireBarrier(*inst)) {
          facts.fwd = Hit::kBarrier;
          break;
        }
        if (inst->op() == Op::kRet || inst->op() == Op::kUnreachable) {
          facts.fwd = Hit::kExit;
          break;
        }
      }
      // Backward: first event scanning from the bottom.
      for (auto it = b->insts().rbegin(); it != b->insts().rend(); ++it) {
        const Instruction& inst = **it;
        if (IsGuestAccess(inst)) {
          facts.bwd = Hit::kAccess;
          facts.bwd_offender = &inst;
          break;
        }
        if (IsReleaseBarrier(inst)) {
          facts.bwd = Hit::kBarrier;
          break;
        }
      }
      facts_[b.get()] = facts;
      fwd_ok_[b.get()] = true;
      bwd_ok_[b.get()] = true;
    }
    Solve();
  }

  bool IsGuestAccess(const Instruction& inst) const {
    return (inst.op() == Op::kLoad || inst.op() == Op::kStore) &&
           transparent_.count(&inst) == 0;
  }

  // All forward paths from the TOP of `b` discharge an acquire obligation.
  bool ForwardOk(const BasicBlock* b) const { return fwd_ok_.at(b); }
  // All backward paths from the BOTTOM of `b` discharge a release
  // obligation.
  bool BackwardOk(const BasicBlock* b) const { return bwd_ok_.at(b); }

  // Shortest offending forward path starting at `from` (a block whose
  // ForwardOk is false): block names joined with " -> ", ending at the
  // first conflicting access. Mirrored for backward.
  std::string ForwardPath(const BasicBlock* from, std::string* offender) const;
  std::string BackwardPath(const BasicBlock* from,
                           std::string* offender) const;

 private:
  void Solve() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& b : f_.blocks()) {
        const BlockFacts& facts = facts_.at(b.get());
        bool fwd = true;
        switch (facts.fwd) {
          case Hit::kBarrier:
          case Hit::kExit:
            fwd = true;
            break;
          case Hit::kAccess:
            fwd = false;
            break;
          case Hit::kFallthrough: {
            std::vector<BasicBlock*> succs = b->Successors();
            // A block that falls off the end without a terminator cannot
            // verify anyway; treat no-successor fallthrough as discharged.
            for (BasicBlock* s : succs) {
              fwd = fwd && fwd_ok_.at(s);
            }
            break;
          }
        }
        bool bwd = true;
        switch (facts.bwd) {
          case Hit::kBarrier:
          case Hit::kExit:
            bwd = true;
            break;
          case Hit::kAccess:
            bwd = false;
            break;
          case Hit::kFallthrough: {
            if (b.get() != f_.entry()) {
              auto it = preds_.find(b.get());
              if (it != preds_.end()) {
                for (const BasicBlock* p : it->second) {
                  bwd = bwd && bwd_ok_.at(p);
                }
              }
            }
            // Entry head discharges: the call that entered the function is
            // itself a barrier.
            break;
          }
        }
        if (fwd != fwd_ok_.at(b.get())) {
          fwd_ok_[b.get()] = fwd;
          changed = true;
        }
        if (bwd != bwd_ok_.at(b.get())) {
          bwd_ok_[b.get()] = bwd;
          changed = true;
        }
      }
    }
  }

  const Function& f_;
  const std::set<const Instruction*>& transparent_;
  std::map<const BasicBlock*, std::vector<const BasicBlock*>> preds_;
  std::map<const BasicBlock*, BlockFacts> facts_;
  std::map<const BasicBlock*, bool> fwd_ok_;
  std::map<const BasicBlock*, bool> bwd_ok_;
};

std::string DescribeAccess(const Instruction& inst) {
  return StrCat(inst.op() == Op::kLoad ? "load" : "store", " i",
                inst.size * 8);
}

std::string PathAnalysis::ForwardPath(const BasicBlock* from,
                                      std::string* offender) const {
  // BFS over failing blocks to the nearest block whose own scan hits an
  // access: that prefix is a concrete offending path.
  std::map<const BasicBlock*, const BasicBlock*> parent;
  std::deque<const BasicBlock*> queue = {from};
  parent[from] = nullptr;
  while (!queue.empty()) {
    const BasicBlock* b = queue.front();
    queue.pop_front();
    const BlockFacts& facts = facts_.at(b);
    if (facts.fwd == Hit::kAccess) {
      std::string path = b->name();
      for (const BasicBlock* p = parent[b]; p != nullptr; p = parent[p]) {
        path = StrCat(p->name(), " -> ", path);
      }
      *offender = StrCat(DescribeAccess(*facts.fwd_offender), " in ",
                         b->name());
      return path;
    }
    for (const BasicBlock* s : b->Successors()) {
      if (!fwd_ok_.at(s) && parent.count(s) == 0) {
        parent[s] = b;
        queue.push_back(s);
      }
    }
  }
  *offender = "guest access";
  return from->name();
}

std::string PathAnalysis::BackwardPath(const BasicBlock* from,
                                       std::string* offender) const {
  std::map<const BasicBlock*, const BasicBlock*> parent;
  std::deque<const BasicBlock*> queue = {from};
  parent[from] = nullptr;
  while (!queue.empty()) {
    const BasicBlock* b = queue.front();
    queue.pop_front();
    const BlockFacts& facts = facts_.at(b);
    if (facts.bwd == Hit::kAccess) {
      std::string path = b->name();
      for (const BasicBlock* p = parent[b]; p != nullptr; p = parent[p]) {
        path = StrCat(p->name(), " <- ", path);
      }
      *offender = StrCat(DescribeAccess(*facts.bwd_offender), " in ",
                         b->name());
      return path;
    }
    auto it = preds_.find(b);
    if (it != preds_.end()) {
      for (const BasicBlock* p : it->second) {
        if (!bwd_ok_.at(p) && parent.count(p) == 0) {
          parent[p] = b;
          queue.push_back(p);
        }
      }
    }
  }
  *offender = "guest access";
  return from->name();
}

// Checks one function; appends to the report.
void CheckFunction(const ir::Module& m, const Function& f, bool cert_ok,
                   bool static_ok, const std::vector<std::string>* externals,
                   TsoCheckReport* report) {
  // Pass 1: verify every elision witness; verified accesses become
  // transparent to the path scans below (thread-private traffic cannot
  // participate in a TSO violation).
  StackDeriver deriver(f);
  // The heap-witness machinery (whole-function provenance dataflow + escape
  // sink walk — the same code the analyzer ran) is built lazily: most
  // functions carry no kHeapLocal stamps.
  std::unique_ptr<RegionDeriver> regions;
  std::unique_ptr<EscapeFacts> escapes;
  auto heap_private = [&](const ir::Value* addr) {
    if (regions == nullptr) {
      static const std::vector<std::string> kNoExternals;
      regions = std::make_unique<RegionDeriver>(
          f, externals != nullptr ? *externals : kNoExternals);
      escapes = std::make_unique<EscapeFacts>(
          ComputeEscapeFacts(f, m, *regions));
    }
    const Provenance& p = regions->ValueOf(addr);
    if (!p.PureHeap()) {
      return false;
    }
    for (const Instruction* site : p.allocs) {
      if (escapes->SiteEscaped(site)) {
        return false;
      }
    }
    return true;
  };
  std::set<const Instruction*> transparent;
  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      if (inst->op() != Op::kLoad && inst->op() != Op::kStore) {
        continue;
      }
      if (inst->fence_witness == FenceWitness::kStackLocal) {
        if (deriver.Derived(inst->operand(0))) {
          transparent.insert(inst.get());
          ++report->witnesses_consumed;
        } else {
          report->violations.push_back(
              {f.name(), b->name(), b->guest_address, "forged-witness",
               StrCat(DescribeAccess(*inst), " in @", f.name(), "/",
                      b->name(),
                      " claims a stack-local elision witness, but its "
                      "address does not derive from the stack pointer")});
        }
      } else if (inst->fence_witness == FenceWitness::kHeapLocal) {
        if (!static_ok) {
          report->violations.push_back(
              {f.name(), b->name(), b->guest_address, "forged-witness",
               StrCat(DescribeAccess(*inst), " in @", f.name(), "/",
                      b->name(),
                      " claims a heap-local elision witness, but no valid "
                      "static certificate accompanies the module")});
        } else if (heap_private(inst->operand(0))) {
          transparent.insert(inst.get());
          ++report->heap_witnesses_consumed;
        } else {
          report->violations.push_back(
              {f.name(), b->name(), b->guest_address, "forged-witness",
               StrCat(DescribeAccess(*inst), " in @", f.name(), "/",
                      b->name(),
                      " claims a heap-local elision witness, but its "
                      "address does not re-derive as a non-escaping "
                      "same-thread allocation")});
        }
      }
    }
  }

  PathAnalysis paths(f, transparent);

  // Pass 2: discharge each remaining access's obligation on every path.
  for (const auto& b : f.blocks()) {
    auto& insts = b->insts();
    for (auto it = insts.begin(); it != insts.end(); ++it) {
      const Instruction& inst = **it;
      if (inst.op() != Op::kLoad && inst.op() != Op::kStore) {
        continue;
      }
      ++report->accesses_checked;
      if (transparent.count(&inst) != 0) {
        continue;  // verified thread-private: no ordering obligation
      }
      bool discharged = false;
      std::string path;
      std::string offender;
      if (inst.op() == Op::kLoad) {
        // Acquire must separate this load from the next guest access on
        // every forward path.
        discharged = true;
        bool settled = false;
        for (auto jt = std::next(it); jt != insts.end(); ++jt) {
          const Instruction& next = **jt;
          if (paths.IsGuestAccess(next)) {
            discharged = false;
            settled = true;
            path = b->name();
            offender = StrCat(DescribeAccess(next), " in ", b->name());
            break;
          }
          if (IsAcquireBarrier(next) || next.op() == Op::kRet ||
              next.op() == Op::kUnreachable) {
            settled = true;
            break;
          }
        }
        if (!settled) {
          // Fell through the block end: consult the successors.
          for (ir::BasicBlock* s : b->Successors()) {
            ++report->path_scans;
            if (!paths.ForwardOk(s)) {
              discharged = false;
              path = StrCat(b->name(), " -> ", paths.ForwardPath(s, &offender));
              break;
            }
          }
        }
        if (!discharged) {
          report->violations.push_back(
              {f.name(), b->name(), b->guest_address, "load-acquire",
               StrCat(DescribeAccess(inst), " in @", f.name(), "/", b->name(),
                      b->guest_address != 0
                          ? StrCat(" (guest ", HexString(b->guest_address),
                                   ")")
                          : "",
                      " requires an acquire fence before the next guest "
                      "access, but the path ",
                      path, " reaches ", offender,
                      " with no intervening barrier")});
        }
      } else {
        // Release must separate the previous guest access from this store
        // on every backward path.
        discharged = true;
        bool settled = false;
        for (auto jt = std::make_reverse_iterator(it); jt != insts.rend();
             ++jt) {
          const Instruction& prev = **jt;
          if (paths.IsGuestAccess(prev)) {
            discharged = false;
            settled = true;
            path = b->name();
            offender = StrCat(DescribeAccess(prev), " in ", b->name());
            break;
          }
          if (IsReleaseBarrier(prev)) {
            settled = true;
            break;
          }
        }
        if (!settled) {
          if (b.get() != f.entry()) {
            for (const auto& pb : f.blocks()) {
              bool is_pred = false;
              for (ir::BasicBlock* s : pb->Successors()) {
                is_pred = is_pred || s == b.get();
              }
              if (is_pred) {
                ++report->path_scans;
              }
              if (is_pred && !paths.BackwardOk(pb.get())) {
                discharged = false;
                path = StrCat(b->name(), " <- ",
                              paths.BackwardPath(pb.get(), &offender));
                break;
              }
            }
          }
          // Entry head discharges (caller's call is the barrier).
        }
        if (!discharged) {
          report->violations.push_back(
              {f.name(), b->name(), b->guest_address, "store-release",
               StrCat(DescribeAccess(inst), " in @", f.name(), "/", b->name(),
                      b->guest_address != 0
                          ? StrCat(" (guest ", HexString(b->guest_address),
                                   ")")
                          : "",
                      " requires a release fence after the previous guest "
                      "access, but the path ",
                      path, " reaches back to ", offender,
                      " with no intervening barrier")});
        }
      }
      if (discharged) {
        ++report->fenced_accesses;
      }
    }
  }
  // Under a valid module-wide cert the undischarged accesses are covered:
  // reclassify the load/store violations recorded for this function.
  if (cert_ok) {
    std::vector<TsoViolation> kept;
    for (TsoViolation& v : report->violations) {
      if (v.function == f.name() &&
          (v.kind == "load-acquire" || v.kind == "store-release")) {
        ++report->cert_covered;
      } else {
        kept.push_back(std::move(v));
      }
    }
    report->violations = std::move(kept);
  }
}

}  // namespace

std::string TsoCheckReport::Summary() const {
  return StrCat("tso-check: ", accesses_checked, " accesses, ",
                fenced_accesses, " fenced, ", witnesses_consumed,
                " witnessed, ", heap_witnesses_consumed, " heap-witnessed, ",
                cert_covered, " cert-covered, ", violations.size(),
                " violations");
}

TsoCheckReport CheckModule(const ir::Module& m,
                           const TsoCheckOptions& options) {
  obs::Span span(options.obs.trace, "check", "tso-check");
  TsoCheckReport report;
  bool cert_ok = false;
  if (options.cert != nullptr) {
    const ElisionCert& cert = *options.cert;
    if (!cert.Sealed()) {
      report.violations.push_back(
          {"", "", 0, "bad-cert",
           "elision certificate checksum mismatch: the certificate was "
           "tampered with or hand-forged"});
    } else if (cert.spinning_loops != 0) {
      report.violations.push_back(
          {"", "", 0, "bad-cert",
           StrCat("elision certificate records ", cert.spinning_loops,
                  " potentially-spinning loop(s): full fence removal is not "
                  "justified")});
    } else if (options.binary_key != 0 && cert.binary_key != 0 &&
               cert.binary_key != options.binary_key) {
      report.violations.push_back(
          {"", "", 0, "bad-cert",
           "elision certificate is bound to a different binary image"});
    } else {
      cert_ok = true;
    }
  }
  bool static_ok = false;
  if (options.static_cert != nullptr) {
    const StaticCert& cert = *options.static_cert;
    if (!cert.Sealed()) {
      report.violations.push_back(
          {"", "", 0, "bad-cert",
           "static elision certificate checksum mismatch: the certificate "
           "was tampered with or hand-forged"});
    } else if (options.binary_key != 0 && cert.binary_key != 0 &&
               cert.binary_key != options.binary_key) {
      report.violations.push_back(
          {"", "", 0, "bad-cert",
           "static elision certificate is bound to a different binary "
           "image"});
    } else {
      static_ok = true;
    }
  }
  for (const auto& f : m.functions()) {
    if (f->blocks().empty()) {
      continue;  // declaration
    }
    CheckFunction(m, *f, cert_ok, static_ok, options.externals, &report);
  }
  if (static_ok &&
      report.heap_witnesses_consumed >
          static_cast<size_t>(options.static_cert->heap_witnesses)) {
    report.violations.push_back(
        {"", "", 0, "bad-cert",
         StrCat("module carries ", report.heap_witnesses_consumed,
                " heap-local witnesses but the static certificate records "
                "only ",
                options.static_cert->heap_witnesses,
                ": stamped after certification")});
  }
  if (options.obs.metrics != nullptr) {
    const obs::Session& obs = options.obs;
    obs.Add(obs::Counter::kCheckAccessesChecked, report.accesses_checked);
    obs.Add(obs::Counter::kCheckObligationsDischarged,
            report.fenced_accesses + report.witnesses_consumed +
                report.heap_witnesses_consumed + report.cert_covered);
    obs.Add(obs::Counter::kCheckPathsExplored, report.path_scans);
    obs.Add(obs::Counter::kCheckWitnessesVerified,
            report.witnesses_consumed + report.heap_witnesses_consumed);
    obs.Add(obs::Counter::kCheckViolations, report.violations.size());
  }
  span.Arg("accesses", static_cast<int64_t>(report.accesses_checked));
  span.Arg("violations", static_cast<int64_t>(report.violations.size()));
  return report;
}

Status CheckModuleStatus(const ir::Module& m, const TsoCheckOptions& options) {
  TsoCheckReport report = CheckModule(m, options);
  if (report.ok()) {
    return Status::Ok();
  }
  return Status::Internal(StrCat("TSO soundness check failed (",
                                 report.violations.size(), " violation",
                                 report.violations.size() == 1 ? "" : "s",
                                 "): ", report.violations.front().message));
}

}  // namespace polynima::check
