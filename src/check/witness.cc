#include "src/check/witness.h"

#include "src/binary/image.h"

namespace polynima::check {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

}  // namespace

uint64_t ElisionCert::ComputeChecksum() const {
  uint64_t h = kFnvOffset;
  HashU64(h, binary_key);
  HashU64(h, static_cast<uint64_t>(loops_analyzed));
  HashU64(h, static_cast<uint64_t>(spinning_loops));
  HashU64(h, static_cast<uint64_t>(uncovered_loops));
  for (const std::string& s : loop_summaries) {
    HashU64(h, s.size());
    HashBytes(h, s.data(), s.size());
  }
  return h;
}

uint64_t StaticCert::ComputeChecksum() const {
  uint64_t h = kFnvOffset;
  HashU64(h, binary_key);
  HashU64(h, static_cast<uint64_t>(functions_analyzed));
  HashU64(h, static_cast<uint64_t>(alloc_sites));
  HashU64(h, static_cast<uint64_t>(escaped_sites));
  HashU64(h, static_cast<uint64_t>(heap_witnesses));
  HashU64(h, static_cast<uint64_t>(shared_accesses));
  HashU64(h, static_cast<uint64_t>(race_pairs));
  for (const std::string& s : site_summaries) {
    HashU64(h, s.size());
    HashBytes(h, s.data(), s.size());
  }
  return h;
}

uint64_t CfgCert::ComputeChecksum() const {
  uint64_t h = kFnvOffset;
  HashU64(h, binary_key);
  HashU64(h, static_cast<uint64_t>(landing_pads));
  HashU64(h, static_cast<uint64_t>(sites_proven));
  HashU64(h, static_cast<uint64_t>(sites_open));
  for (const Site& site : sites) {
    HashU64(h, site.transfer_address);
    HashU64(h, site.is_call ? 1 : 0);
    HashU64(h, site.targets.size());
    for (uint64_t t : site.targets) {
      HashU64(h, t);
    }
  }
  for (uint64_t e : covered_functions) {
    HashU64(h, e);
  }
  for (const std::string& s : site_summaries) {
    HashU64(h, s.size());
    HashBytes(h, s.data(), s.size());
  }
  return h;
}

const CfgCert::Site* CfgCert::FindSite(uint64_t transfer_address) const {
  for (const Site& site : sites) {
    if (site.transfer_address == transfer_address) {
      return &site;
    }
  }
  return nullptr;
}

bool VerifyCfgCert(const CfgCert& cert, const binary::Image& image) {
  return cert.Sealed() && cert.binary_key == BinaryKey(image);
}

uint64_t BinaryKey(const binary::Image& image) {
  uint64_t h = kFnvOffset;
  HashU64(h, image.entry_point);
  for (const binary::Segment& seg : image.segments) {
    HashU64(h, seg.address);
    HashU64(h, seg.bytes.size());
    HashBytes(h, seg.bytes.data(), seg.bytes.size());
  }
  return h;
}

}  // namespace polynima::check
