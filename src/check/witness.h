// Elision witnesses: machine-checkable justifications for removed fences.
//
// Two witness granularities exist (ISSUE: every elided fence must carry a
// reason the checker can re-verify):
//   - per-access: ir::Instruction::fence_witness, stamped by the lifter's
//     stack-local escape analysis (src/lift) — re-derived structurally by
//     the TSO checker (src/check/tso.h);
//   - whole-module: the ElisionCert below, minted from fenceopt's spinloop
//     analysis, justifying RemoveFences over the entire program.
#ifndef POLYNIMA_CHECK_WITNESS_H_
#define POLYNIMA_CHECK_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace polynima::binary {
class Image;
}

namespace polynima::check {

// Module-wide certificate justifying full fence removal (paper §3.4): the
// spinloop detector proved every natural loop in the program non-spinning,
// so no thread busy-waits on a shared location and dropping the inserted
// TSO fences cannot starve a custom synchronization primitive. The cert is
// sealed with a checksum over its own fields and bound to the binary it was
// derived from; the TSO checker refuses a cert that fails either test, so a
// hand-forged or stale certificate cannot silence the checker.
struct ElisionCert {
  uint64_t binary_key = 0;   // BinaryKey() of the image that was analyzed
  int loops_analyzed = 0;
  int spinning_loops = 0;    // must be 0: a spinning loop forbids removal
  int uncovered_loops = 0;   // informational (uncovered => spinning already)
  // One line per analyzed loop: "function/header@addr: reason".
  std::vector<std::string> loop_summaries;
  uint64_t checksum = 0;     // seal over every field above

  uint64_t ComputeChecksum() const;
  void Seal() { checksum = ComputeChecksum(); }
  bool Sealed() const { return checksum == ComputeChecksum(); }
};

// Module-wide certificate justifying per-access heap-local fence elision
// (fence_witness == kHeapLocal), minted by the static concurrency analyzer
// (src/analyze). Where the ElisionCert justifies *whole-program* fence
// removal dynamically (no spinloops observed structurally), the StaticCert
// justifies *per-access* elision statically: each stamped access was proven
// to address a same-thread, non-escaping allocation, so no other thread can
// observe its ordering. The TSO checker re-derives every stamped access with
// the same check::RegionDeriver the analyzer used; a kHeapLocal witness that
// fails re-derivation, or a cert that is unsealed or bound to a different
// binary, is a reported violation.
struct StaticCert {
  uint64_t binary_key = 0;     // BinaryKey() of the analyzed image
  int functions_analyzed = 0;
  int alloc_sites = 0;         // allocation calls seen across the program
  int escaped_sites = 0;       // allocation sites whose pointer escapes
  int heap_witnesses = 0;      // accesses stamped kHeapLocal under this cert
  int shared_accesses = 0;     // accesses classified potentially-shared
  int race_pairs = 0;          // potentially-racing pairs reported
  // One line per interesting site: "function@addr: classification".
  std::vector<std::string> site_summaries;
  uint64_t checksum = 0;       // seal over every field above

  uint64_t ComputeChecksum() const;
  void Seal() { checksum = ComputeChecksum(); }
  bool Sealed() const { return checksum == ComputeChecksum(); }
};

// Certificate of sound indirect control-flow recovery (--cfg-sound), minted
// by the icf pass (src/analyze/icf.h). Each listed site is an indirect jump
// or call whose feasible target set was bounded by pointer provenance
// (targets come only from code-address constants and read-only memory) and
// shown to consist entirely of endbr64 landing pads. The lifter consuming a
// valid cert drops the cfmiss stub at those sites — and with it the tier-1/2
// uncovered-edge deopt guards. An unsealed cert, or one whose binary_key
// does not match the image being recompiled (stale/forged), is rejected and
// the site falls back to dynamic recovery.
struct CfgCert {
  // One proven-complete indirect transfer site.
  struct Site {
    uint64_t transfer_address = 0;   // address of the jmp/call instruction
    bool is_call = false;
    std::vector<uint64_t> targets;   // sorted feasible targets (landing pads)
  };

  uint64_t binary_key = 0;        // BinaryKey() of the analyzed image
  int landing_pads = 0;           // endbr64 pads discovered in the image
  int sites_proven = 0;           // == sites.size()
  int sites_open = 0;             // indirect sites left on dynamic recovery
  std::vector<Site> sites;
  // Entries of functions all of whose indirect sites are proven (tierprof
  // cross-check: these functions must show zero uncovered-edge deopts).
  std::vector<uint64_t> covered_functions;
  // One line per site: "function@addr: proven|open reason".
  std::vector<std::string> site_summaries;
  uint64_t checksum = 0;          // seal over every field above

  uint64_t ComputeChecksum() const;
  void Seal() { checksum = ComputeChecksum(); }
  bool Sealed() const { return checksum == ComputeChecksum(); }

  const Site* FindSite(uint64_t transfer_address) const;
};

// Full validity check used by every cert consumer: sealed and bound to
// `image`. Returns false for forged, tampered, or stale certificates.
bool VerifyCfgCert(const CfgCert& cert, const binary::Image& image);

// Stable fingerprint of an image (entry point + segment bytes): binds a
// certificate to the exact binary it was derived from.
uint64_t BinaryKey(const binary::Image& image);

}  // namespace polynima::check

#endif  // POLYNIMA_CHECK_WITNESS_H_
