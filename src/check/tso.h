// Static TSO-soundness checker for recompiled IR.
//
// Obligation model (x86-TSO -> C++11 mapping, paper §3.3.4): the lifter
// pins guest memory order by emitting an acquire fence AFTER every guest
// load and a release fence BEFORE every guest store; atomics (kAtomicRmw /
// kCmpXchg) are seq_cst and order themselves. TSO permits only the
// store->later-load reordering, so the residual obligations are:
//
//   load  L : an acquire barrier must appear between L and the NEXT guest
//             access on EVERY forward path (a path ending at ret /
//             unreachable discharges trivially);
//   store S : a release barrier must appear between the PREVIOUS guest
//             access and S on EVERY backward path (reaching function entry
//             discharges: the call that got us here is itself a barrier).
//
// Barriers = fences of the right order (or seq_cst), atomics, and calls
// (this repo's optimizer never reorders memory across calls, and callees
// re-establish their own ordering).
//
// An access may instead carry an elision witness (ir::FenceWitness) claiming
// it is thread-private. The checker does not TRUST the witness: it
// re-derives the claim from the IR. For kStackLocal the address must be
// computed from the emulated stack pointer (vr_rsp, or vr_rbp in functions
// the lifter marked frame_pointer) through address arithmetic / phis /
// selects / spill reloads. For kHeapLocal (stamped by the static analyzer,
// src/analyze) the address must re-derive as a pure same-function
// allocation whose sites never escape — checked with the very same
// check/derive.h code the analyzer ran — and a sealed StaticCert bound to
// the image must accompany the module. A witnessed access whose claim
// cannot be re-derived is reported as a forged witness. Verified
// thread-private accesses are invisible to other accesses' path scans
// (thread-private traffic cannot violate TSO).
//
// Whole-module fence removal (RemoveFences after a spin-free verdict) is
// accepted only under a sealed ElisionCert bound to the image being checked.
#ifndef POLYNIMA_CHECK_TSO_H_
#define POLYNIMA_CHECK_TSO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/check/witness.h"
#include "src/ir/ir.h"
#include "src/obs/report.h"
#include "src/support/status.h"

namespace polynima::check {

struct TsoCheckOptions {
  // Accept module-wide fence elision when this cert seals and binds.
  const ElisionCert* cert = nullptr;
  // Accept per-access kHeapLocal witnesses when this cert seals and binds.
  // Every stamped access is still re-derived (provenance must be purely
  // same-function allocations, none of whose sites escape — the same
  // derive.h code the analyzer ran); the cert only authorizes the attempt.
  const StaticCert* static_cert = nullptr;
  // External slot -> name table of the lifted program; required to
  // recognize allocation calls when re-deriving kHeapLocal witnesses
  // (without it every heap witness is reported forged).
  const std::vector<std::string>* externals = nullptr;
  // Expected BinaryKey of the image the module was lifted from (0 = don't
  // verify the binding; tests that build IR by hand use 0).
  uint64_t binary_key = 0;
  // Observability sinks (all nullable; see src/obs): one "check"-category
  // span per CheckModule call and the check.* counters.
  obs::Session obs;
};

struct TsoViolation {
  std::string function;
  std::string block;       // block holding the unsatisfied access
  uint64_t guest_address = 0;  // block's guest address (0 if synthetic)
  std::string kind;        // "load-acquire" | "store-release" |
                           // "forged-witness" | "bad-cert"
  std::string message;     // path-specific diagnostic
};

struct TsoCheckReport {
  size_t accesses_checked = 0;    // guest loads/stores examined
  size_t fenced_accesses = 0;     // discharged by a barrier on every path
  size_t witnesses_consumed = 0;  // stack-local witnesses that re-verified
  size_t heap_witnesses_consumed = 0;  // kHeapLocal witnesses that re-derived
  size_t cert_covered = 0;        // discharged by the module-wide cert
  size_t path_scans = 0;          // cross-block path scans performed
  std::vector<TsoViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Checks every function in the module. Never mutates the IR.
TsoCheckReport CheckModule(const ir::Module& m,
                           const TsoCheckOptions& options = {});

// Convenience wrapper: Ok() iff the report is clean, otherwise an Internal
// status carrying the first violation's diagnostic.
Status CheckModuleStatus(const ir::Module& m,
                         const TsoCheckOptions& options = {});

}  // namespace polynima::check

#endif  // POLYNIMA_CHECK_TSO_H_
