#include "src/check/derive.h"

#include "src/support/strings.h"

namespace polynima::check {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;
using ir::Value;

// Registers the SysV ABI requires a callee to preserve. The lifter's guest
// calls and the engine's external dispatch both honor this: anything else is
// clobbered at a call boundary.
bool IsCalleeSavedGpr(const std::string& name) {
  return name == "vr_rbx" || name == "vr_rbp" || name == "vr_rsp" ||
         name == "vr_r12" || name == "vr_r13" || name == "vr_r14" ||
         name == "vr_r15";
}

bool IsGpr(const std::string& name) {
  return name.size() > 3 && name.compare(0, 3, "vr_") == 0;
}

}  // namespace

bool Provenance::Join(const Provenance& o) {
  bool changed = false;
  if (o.stack && !stack) {
    stack = true;
    delta_known = o.delta_known;
    delta = o.delta;
    changed = true;
  } else if (o.stack && stack && delta_known &&
             (!o.delta_known || o.delta != delta)) {
    delta_known = false;  // two distinct slots: "some stack address"
    changed = true;
  }
  if (o.other && !other) {
    other = true;
    changed = true;
  }
  for (const Instruction* a : o.allocs) {
    changed = allocs.insert(a).second || changed;
  }
  return changed;
}

bool IsAllocatorExternal(const std::string& name) {
  return name == "malloc" || name == "calloc" || name == "realloc";
}

RegionDeriver::RegionDeriver(const Function& f,
                             const std::vector<std::string>& externals)
    : f_(f), externals_(externals) {
  bottom_ = Provenance{};
  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      if (inst->op() == Op::kCall &&
          IsAllocatorExternal(ExternalName(*inst))) {
        alloc_sites_.push_back(inst.get());
      }
    }
  }
  Solve();
}

std::string RegionDeriver::ExternalName(const Instruction& call) const {
  if (call.op() != Op::kCall || call.callee != nullptr ||
      call.intrinsic != "ext_call" || call.num_operands() < 1 ||
      !call.operand(0)->is_const()) {
    return "";
  }
  int64_t slot = static_cast<const ir::Constant*>(call.operand(0))->value();
  if (slot < 0 || static_cast<size_t>(slot) >= externals_.size()) {
    return "";
  }
  return externals_[static_cast<size_t>(slot)];
}

const Provenance& RegionDeriver::ValueOf(const Value* v) const {
  if (v == nullptr || !v->is_inst()) {
    // Constants are offsets, not pointers; arguments do not occur in lifted
    // functions (hand-built IR arguments stay bottom -> classified shared).
    return bottom_;
  }
  auto it = values_.find(static_cast<const Instruction*>(v));
  return it == values_.end() ? bottom_ : it->second;
}

Provenance RegionDeriver::Eval(const Value* v) const { return ValueOf(v); }

// Provenance a GPR holds when nothing in this function has written it yet:
// the stack pointer (and the frame pointer once established) roots the
// emulated stack; every other register arrives with caller state of unknown
// provenance.
static Provenance DefaultGlobal(const Function& f, const Global* g) {
  Provenance p;
  if (g->name() == "vr_rsp") {
    p.stack = true;
    // An unwritten vr_rsp is still the function-entry stack pointer: the
    // origin all slot deltas are measured from.
    p.delta_known = true;
    p.delta = 0;
  } else if (g->name() == "vr_rbp" && f.frame_pointer) {
    p.stack = true;  // established by the prologue; entry offset unknown
  } else {
    p.other = true;
  }
  return p;
}

void RegionDeriver::ApplyCallClobbers(const Instruction& call,
                                      GlobalState& state) const {
  if (call.callee == nullptr && call.intrinsic != "ext_call" &&
      call.intrinsic != "cfmiss" && call.intrinsic != "trap") {
    // Engine intrinsics (parity, pause, SIMD helpers, global_lock/unlock)
    // never write the virtual GPRs.
    return;
  }
  Provenance other;
  other.other = true;
  for (auto& [g, p] : state) {
    if (IsGpr(g->name()) && !IsCalleeSavedGpr(g->name())) {
      p = other;
    }
  }
  // A guest call returns through the callee's lifted `ret`, which pops the
  // return address the caller pushed: vr_rsp comes back exactly 8 bytes above
  // the value the caller stored before the call. Without this shift every
  // loop that calls through its body joins two rsp deltas 8 apart at the
  // header phi and loses slot resolution for the whole loop. External calls
  // and the never-returning intrinsics do not touch the emulated stack
  // pointer (the lifter emits no push for them).
  if (call.callee != nullptr) {
    for (auto& [g, p] : state) {
      if (g->name() == "vr_rsp" && p.stack && p.delta_known) {
        p.delta += 8;
      }
    }
  }
  // Missing entries already default to `other` for caller-saved registers.
  std::string name = ExternalName(call);
  if (IsAllocatorExternal(name)) {
    const Global* rax = nullptr;
    for (const auto& [g, p] : state) {
      if (g->name() == "vr_rax") {
        rax = g;
        break;
      }
    }
    Provenance fresh;
    fresh.allocs.insert(&call);
    if (rax != nullptr) {
      state[rax] = fresh;
    } else {
      // vr_rax not yet in the state map: find it through the call's users —
      // the lifter reads the result with GlobalLoad @vr_rax. Seeding via the
      // first such load keeps the map keyed on the module's Global object.
      for (const auto& b : f_.blocks()) {
        for (const auto& inst : b->insts()) {
          if ((inst->op() == Op::kGlobalLoad ||
               inst->op() == Op::kGlobalStore) &&
              inst->global != nullptr && inst->global->name() == "vr_rax") {
            state[inst->global] = fresh;
            return;
          }
        }
      }
    }
  }
}

bool RegionDeriver::Transfer(const BasicBlock& b, GlobalState state) {
  bool changed = false;
  auto lookup = [&](const Global* g) -> Provenance {
    auto it = state.find(g);
    return it != state.end() ? it->second : DefaultGlobal(f_, g);
  };
  auto set_value = [&](const Instruction* inst, const Provenance& p) {
    changed = values_[inst].Join(p) || changed;
  };
  for (const auto& inst : b.insts()) {
    switch (inst->op()) {
      case Op::kGlobalLoad:
        if (inst->global != nullptr) {
          set_value(inst.get(), lookup(inst->global));
        }
        break;
      case Op::kGlobalStore:
        if (inst->global != nullptr) {
          state[inst->global] = Eval(inst->operand(0));
        }
        break;
      case Op::kAdd:
      case Op::kSub: {
        // Base-plus-offset: arithmetic on a uniquely-rooted pointer keeps
        // its region. An operand with no stack bit and no allocation sites
        // (Bottom or pure {other}) is an offset, not a second base — without
        // this rule every a[i] whose index reloads from a spill slot would
        // degrade to "unknown". The documented assumption (DESIGN.md §4e):
        // compilers do not materialize a pointer as (other-region base +
        // cross-region difference), so treating the value operand as an
        // integer offset cannot launder a foreign pointer into the base's
        // region. The TSO checker re-derives kHeapLocal witnesses with this
        // same code, so analyzer and checker agree by construction.
        Provenance lhs = Eval(inst->operand(0));
        Provenance rhs = Eval(inst->operand(1));
        auto is_offset = [](const Provenance& p) {
          return !p.stack && p.allocs.empty();
        };
        // Keeps a resolved slot delta current across base±offset: a literal
        // constant shifts it, any symbolic offset makes the slot unknown.
        auto shift_delta = [&](Provenance& p, const Value* off, bool add) {
          if (!p.stack || !p.delta_known) {
            return;
          }
          if (off->is_const()) {
            int64_t c = static_cast<const ir::Constant*>(off)->value();
            p.delta += add ? c : -c;
          } else {
            p.delta_known = false;
          }
        };
        Provenance p;
        if ((lhs.PureStack() || lhs.PureHeap()) && is_offset(rhs)) {
          p = lhs;
          shift_delta(p, inst->operand(1), inst->op() == Op::kAdd);
        } else if (inst->op() == Op::kAdd &&
                   (rhs.PureStack() || rhs.PureHeap()) && is_offset(lhs)) {
          p = rhs;  // index + base, commuted
          shift_delta(p, inst->operand(0), /*add=*/true);
        } else {
          p = lhs;
          p.Join(rhs);
          p.delta_known = false;  // mixed bases never name one slot
        }
        set_value(inst.get(), p);
        break;
      }
      case Op::kSelect: {
        Provenance p = Eval(inst->operand(1));
        p.Join(Eval(inst->operand(2)));
        set_value(inst.get(), p);
        break;
      }
      case Op::kPhi: {
        Provenance p;
        for (int i = 0; i < inst->num_operands(); ++i) {
          p.Join(Eval(inst->operand(i)));
        }
        set_value(inst.get(), p);
        break;
      }
      case Op::kStore: {
        // Values saved to provably-private memory are NOT escaped at the
        // store (spill slots and private heap objects are the two escape
        // exemptions in ComputeEscapeFacts), so reloads must be able to
        // re-materialize their provenance — otherwise a pointer laundered
        // through a spill slot would reach an escape sink as a bare `other`
        // and slip past every escape rule. Accumulate them into the memory
        // residue that kLoad folds back in, per slot when resolved.
        Provenance dst = Eval(inst->operand(0));
        Provenance val = Eval(inst->operand(1));
        if (!val.Bottom()) {
          if (dst.PureStack()) {
            Provenance& r = dst.delta_known ? slot_residue_[dst.delta]
                                            : stack_unknown_residue_;
            changed = r.Join(val) || changed;
          } else if (dst.PureHeap()) {
            changed = heap_residue_.Join(val) || changed;
          }
          // Any other destination: the sink walk escapes `val` at this
          // store, so the plain `other` a reload gets already covers it.
        }
        break;
      }
      case Op::kLoad:
      case Op::kAtomicRmw:
      case Op::kCmpXchg: {
        // A reload materializes caller state (`other`, which also covers
        // everything escaped at its own store) plus anything this function
        // parked in private memory the address may alias: the matching
        // stack slot (every slot when the offset is unresolved) and, for
        // site-derived addresses, the private-heap residue. A pure
        // `other`/constant address cannot name a still-private location —
        // publishing a frame or heap pointer to reachable-from-elsewhere
        // memory already escaped it (and the guest memory layout keeps
        // constant data apart from stack and heap, the same assumption
        // analyze::MayAlias makes).
        Provenance p;
        p.other = true;
        Provenance addr = Eval(inst->operand(0));
        if (addr.stack) {
          if (addr.PureStack() && addr.delta_known) {
            auto it = slot_residue_.find(addr.delta);
            if (it != slot_residue_.end()) {
              p.Join(it->second);
            }
          } else {
            for (const auto& [delta, r] : slot_residue_) {
              (void)delta;
              p.Join(r);
            }
          }
          p.Join(stack_unknown_residue_);
        }
        if (!addr.allocs.empty()) {
          p.Join(heap_residue_);
        }
        p.delta_known = false;
        set_value(inst.get(), p);
        break;
      }
      case Op::kCall:
        ApplyCallClobbers(*inst, state);
        break;
      default: {
        // Any other op may smuggle a pointer through arithmetic: propagate
        // the operand provenance (so escapes through disguised values are
        // still seen) but never leave it Pure.
        if (!inst->HasResult()) {
          break;
        }
        Provenance p;
        for (int i = 0; i < inst->num_operands(); ++i) {
          p.Join(Eval(inst->operand(i)));
        }
        if (!p.Bottom()) {
          p.other = true;
        }
        set_value(inst.get(), p);
        break;
      }
    }
  }
  // Merge the out-state into every successor's in-state. A key missing on
  // either side stands for DefaultGlobal, so only explicit disagreements
  // need materializing.
  for (BasicBlock* succ : b.Successors()) {
    auto it = block_in_.find(succ);
    if (it == block_in_.end()) {
      block_in_[succ] = state;
      changed = true;
      continue;
    }
    GlobalState& in = it->second;
    for (const auto& [g, p] : state) {
      auto jt = in.find(g);
      if (jt == in.end()) {
        Provenance joined = DefaultGlobal(f_, g);
        if (joined.Join(p)) {
          in[g] = joined;
          changed = true;
        }
      } else {
        changed = jt->second.Join(p) || changed;
      }
    }
    for (auto& [g, p] : in) {
      if (state.find(g) == state.end()) {
        changed = p.Join(DefaultGlobal(f_, g)) || changed;
      }
    }
  }
  return changed;
}

void RegionDeriver::Solve() {
  if (f_.blocks().empty()) {
    return;
  }
  block_in_[f_.entry()] = {};
  bool changed = true;
  // Widening is monotone over a finite lattice (two bits + a site set
  // bounded by the function's allocation count), so this terminates.
  while (changed) {
    changed = false;
    for (const auto& b : f_.blocks()) {
      auto it = block_in_.find(b.get());
      if (it == block_in_.end()) {
        continue;  // not reached (yet)
      }
      changed = Transfer(*b, it->second) || changed;
    }
  }
}

Provenance RegionDeriver::GlobalBefore(const Instruction& inst,
                                       const Global* g) const {
  const BasicBlock* b = inst.parent();
  if (b == nullptr) {
    Provenance p;
    p.other = true;
    return p;
  }
  auto it = block_in_.find(b);
  GlobalState state = it != block_in_.end() ? it->second : GlobalState{};
  for (const auto& cur : b->insts()) {
    if (cur.get() == &inst) {
      break;
    }
    if (cur->op() == Op::kGlobalStore && cur->global != nullptr) {
      state[cur->global] = Eval(cur->operand(0));
    } else if (cur->op() == Op::kCall) {
      ApplyCallClobbers(*cur, state);
    }
  }
  auto jt = state.find(g);
  return jt != state.end() ? jt->second : DefaultGlobal(f_, g);
}

namespace {

// SysV integer argument registers, in call order.
const char* const kEscapeArgRegs[] = {"vr_rdi", "vr_rsi", "vr_rdx",
                                      "vr_rcx", "vr_r8",  "vr_r9"};

void MarkStack(EscapeFacts& facts, const std::string& reason) {
  if (!facts.stack_escaped) {
    facts.stack_escaped = true;
    facts.stack_reason = reason;
  }
}

void MarkSite(EscapeFacts& facts, const Instruction* site,
              const std::string& reason) {
  if (facts.escaped.insert(site).second) {
    facts.reasons[site] = reason;
  }
}

void EscapeAll(EscapeFacts& facts, const Provenance& p,
               const std::string& reason) {
  if (p.stack) {
    MarkStack(facts, reason);
  }
  for (const Instruction* site : p.allocs) {
    MarkSite(facts, site, reason);
  }
}

uint64_t GuestAddrOf(const Instruction& inst) {
  return inst.parent() != nullptr ? inst.parent()->guest_address : 0;
}

}  // namespace

EscapeFacts ComputeEscapeFacts(const Function& f, const ir::Module& m,
                               const RegionDeriver& deriver) {
  EscapeFacts facts;
  // h -> {s...}: if allocation h escapes, every s stored into it escapes.
  std::map<const Instruction*, std::set<const Instruction*>> held_by;
  // Sites whose pointer was saved to a (pure) stack slot: escape iff the
  // frame itself escapes.
  std::set<const Instruction*> spilled_to_stack;

  std::vector<const Global*> arg_regs;
  for (const char* name : kEscapeArgRegs) {
    arg_regs.push_back(m.GetGlobal(name));
  }
  const Global* rax = m.GetGlobal("vr_rax");

  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      switch (inst->op()) {
        case Op::kStore: {
          const Provenance& dst = deriver.ValueOf(inst->operand(0));
          const Provenance& val = deriver.ValueOf(inst->operand(1));
          if (val.Bottom()) {
            break;
          }
          std::string where = StrCat("store@", HexString(GuestAddrOf(*inst)));
          if (dst.PureStack()) {
            // A spill: not an escape by itself, but remember which heap
            // objects live in the frame in case the frame later escapes.
            for (const Instruction* site : val.allocs) {
              spilled_to_stack.insert(site);
            }
          } else if (dst.PureHeap()) {
            if (val.stack) {
              MarkStack(facts, where + " into heap object");
            }
            for (const Instruction* holder : dst.allocs) {
              for (const Instruction* site : val.allocs) {
                held_by[holder].insert(site);
              }
            }
          } else {
            EscapeAll(facts, val, where + " to shared memory");
          }
          break;
        }
        case Op::kAtomicRmw:
        case Op::kCmpXchg: {
          // Atomic access declares the location shared; the value operands
          // may also publish a pointer.
          std::string where =
              StrCat("atomic@", HexString(GuestAddrOf(*inst)));
          for (int i = 0; i < inst->num_operands(); ++i) {
            EscapeAll(facts, deriver.ValueOf(inst->operand(i)), where);
          }
          break;
        }
        case Op::kCall: {
          if (inst->callee == nullptr && inst->intrinsic != "ext_call" &&
              inst->intrinsic != "cfmiss") {
            break;  // engine intrinsics take explicit operands, not GPRs
          }
          // Call-boundary conservatism: anything in an argument register
          // may be retained by the callee (guest or external) or handed to
          // a new thread.
          std::string name = deriver.ExternalName(*inst);
          std::string where =
              StrCat("call ", name.empty() ? "(guest)" : name, "@",
                     HexString(GuestAddrOf(*inst)));
          for (const Global* g : arg_regs) {
            if (g != nullptr) {
              EscapeAll(facts, deriver.GlobalBefore(*inst, g), where);
            }
          }
          break;
        }
        case Op::kRet: {
          // Return-value escape: the caller receives whatever vr_rax holds.
          if (rax != nullptr) {
            EscapeAll(facts, deriver.GlobalBefore(*inst, rax),
                      "returned to caller");
          }
          if (inst->num_operands() == 1) {
            EscapeAll(facts, deriver.ValueOf(inst->operand(0)),
                      "returned to caller");
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // A frame escape exposes every spill slot.
  if (facts.stack_escaped) {
    for (const Instruction* site : spilled_to_stack) {
      MarkSite(facts, site,
               StrCat("spilled to escaped frame (", facts.stack_reason, ")"));
    }
  }
  // An escaped holder exposes everything stored into it.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [holder, held] : held_by) {
      if (facts.escaped.count(holder) == 0) {
        continue;
      }
      for (const Instruction* site : held) {
        if (facts.escaped.insert(site).second) {
          facts.reasons[site] = StrCat("stored into escaped object (",
                                       facts.reasons[holder], ")");
          changed = true;
        }
      }
    }
  }
  return facts;
}

}  // namespace polynima::check
