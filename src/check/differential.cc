#include "src/check/differential.h"

#include "src/exec/engine.h"
#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::check {

namespace {

struct Observation {
  bool ok = false;
  int64_t exit_code = 0;
  std::string fault_message;
  std::string output;

  bool operator==(const Observation& other) const {
    return ok == other.ok && exit_code == other.exit_code &&
           output == other.output;
  }
};

Observation RunOnce(const lift::LiftedProgram& program,
                    const binary::Image& image,
                    const std::vector<std::vector<uint8_t>>& inputs,
                    uint64_t seed, uint64_t skew, uint64_t max_steps) {
  vm::ExternalLibrary library;
  exec::ExecOptions options;
  options.seed = seed;
  options.schedule_skew = skew;
  options.max_steps = max_steps;
  exec::Engine engine(program, image, &library, options);
  engine.SetInputs(inputs);
  exec::ExecResult r = engine.Run();
  return {r.ok, r.exit_code, r.fault_message, r.output};
}

}  // namespace

Expected<DifferentialResult> RunScheduleDifferential(
    const lift::LiftedProgram& reference, const lift::LiftedProgram& optimized,
    const binary::Image& image,
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
    const DifferentialOptions& options) {
  if (options.schedules <= 0) {
    return Status::InvalidArgument("differential: schedules must be >= 1");
  }
  DifferentialResult result;
  std::vector<std::vector<std::vector<uint8_t>>> sets = input_sets;
  if (sets.empty()) {
    sets.push_back({});
  }
  for (size_t set_index = 0; set_index < sets.size(); ++set_index) {
    for (int s = 0; s < options.schedules; ++s) {
      uint64_t seed = options.base_seed + static_cast<uint64_t>(s) * 0x9e3779b9ull;
      // Schedule 0 is the engine's deterministic min-clock order; later
      // schedules open the perturbation window.
      uint64_t skew = s == 0 ? 0 : options.schedule_skew;
      Observation ref = RunOnce(reference, image, sets[set_index], seed, skew,
                                options.max_steps);
      Observation opt = RunOnce(optimized, image, sets[set_index], seed, skew,
                                options.max_steps);
      ++result.runs;
      if (!(ref == opt)) {
        ++result.divergences;
        result.reports.push_back(StrCat(
            "input set ", set_index, ", schedule ", s, " (seed ", seed,
            ", skew ", skew, "): reference {ok=", ref.ok ? 1 : 0,
            " exit=", ref.exit_code, " out=\"", ref.output,
            "\"} vs optimized {ok=", opt.ok ? 1 : 0, " exit=", opt.exit_code,
            " out=\"", opt.output, "\"}",
            !ref.ok || !opt.ok
                ? StrCat("; faults: ref=\"", ref.fault_message, "\" opt=\"",
                         opt.fault_message, "\"")
                : ""));
      }
    }
  }
  return result;
}

}  // namespace polynima::check
