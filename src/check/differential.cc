#include "src/check/differential.h"

#include <algorithm>
#include <map>

#include "src/exec/engine.h"
#include "src/sched/explore.h"
#include "src/sched/scheduler.h"
#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::check {

namespace {

struct Observation {
  bool ok = false;
  int64_t exit_code = 0;
  std::string fault_message;
  std::string output;

  bool operator==(const Observation& other) const {
    return ok == other.ok && exit_code == other.exit_code &&
           output == other.output;
  }
};

Observation RunOnce(const lift::LiftedProgram& program,
                    const binary::Image& image,
                    const std::vector<std::vector<uint8_t>>& inputs,
                    uint64_t seed, uint64_t skew, uint64_t max_steps) {
  vm::ExternalLibrary library;
  exec::ExecOptions options;
  options.seed = seed;
  options.schedule_skew = skew;
  options.max_steps = max_steps;
  exec::Engine engine(program, image, &library, options);
  engine.SetInputs(inputs);
  exec::ExecResult r = engine.Run();
  return {r.ok, r.exit_code, r.fault_message, r.output};
}

sched::Outcome RunControlledOnce(const lift::LiftedProgram& program,
                                 const binary::Image& image,
                                 const std::vector<std::vector<uint8_t>>& inputs,
                                 uint64_t seed, uint64_t max_steps,
                                 sched::Scheduler* scheduler) {
  vm::ExternalLibrary library;
  exec::ExecOptions options;
  options.seed = seed;
  options.max_steps = max_steps;
  options.scheduler = scheduler;
  exec::Engine engine(program, image, &library, options);
  engine.SetInputs(inputs);
  exec::ExecResult r = engine.Run();
  sched::Outcome outcome;
  outcome.ok = r.ok;
  outcome.exit_code = r.exit_code;
  outcome.output = r.output;
  outcome.fault_message = r.fault_message;
  outcome.state_digest = r.state_digest;
  return outcome;
}

// Runs `schedules` controlled schedules of one side: schedule 0 is the
// all-default deterministic order, schedule s > 0 a seeded PCT search. Every
// distinct outcome keeps the recorded Schedule that produced it.
sched::OutcomeSet EnumerateSide(const lift::LiftedProgram& program,
                                const binary::Image& image,
                                const std::vector<std::vector<uint8_t>>& inputs,
                                const DifferentialOptions& options) {
  sched::OutcomeSet set;
  sched::PctOptions pct_options;
  pct_options.depth = options.pct_depth;
  pct_options.expected_length = options.pct_length;
  for (int s = 0; s < options.schedules; ++s) {
    sched::PctScheduler pct(options.base_seed + static_cast<uint64_t>(s),
                            pct_options);
    sched::Scheduler* strategy = s == 0 ? nullptr : &pct;
    sched::RecordingScheduler recorder(strategy, options.base_seed);
    sched::Outcome outcome =
        RunControlledOnce(program, image, inputs, options.base_seed,
                          options.max_steps, &recorder);
    ++set.runs;
    std::string key = outcome.Key();
    if (set.outcomes.emplace(key, outcome).second) {
      set.witnesses.emplace(std::move(key), recorder.schedule());
    }
    if (s == 0) {
      // Calibrate the PCT change-point range to the default run's length
      // (options.pct_length only caps it): change points sampled far past
      // the run's end never fire, leaving every schedule near-default.
      pct_options.expected_length =
          std::min(pct_options.expected_length,
                   std::max<uint64_t>(2, recorder.points_seen()));
    }
  }
  return set;
}

}  // namespace

Expected<DifferentialResult> RunScheduleDifferential(
    const lift::LiftedProgram& reference, const lift::LiftedProgram& optimized,
    const binary::Image& image,
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
    const DifferentialOptions& options) {
  if (options.schedules <= 0) {
    return Status::InvalidArgument("differential: schedules must be >= 1");
  }
  DifferentialResult result;
  std::vector<std::vector<std::vector<uint8_t>>> sets = input_sets;
  if (sets.empty()) {
    sets.push_back({});
  }
  if (options.use_controlled) {
    for (size_t set_index = 0; set_index < sets.size(); ++set_index) {
      const auto& inputs = sets[set_index];
      sched::OutcomeSet ref_set =
          EnumerateSide(reference, image, inputs, options);
      sched::OutcomeSet opt_set =
          EnumerateSide(optimized, image, inputs, options);
      result.runs += options.schedules;

      // Both directions: an optimized-only outcome is new behavior, a
      // reference-only outcome is behavior the optimized build lost.
      auto report_divergence = [&](const std::string& key, bool lost) {
        const lift::LiftedProgram& side = lost ? reference : optimized;
        const sched::OutcomeSet& side_set = lost ? ref_set : opt_set;
        sched::Schedule witness = side_set.witnesses.at(key);
        sched::Schedule shrunk = sched::Shrink(
            witness, [&](const sched::Schedule& candidate) {
              sched::ReplayScheduler replay(candidate);
              return RunControlledOnce(side, image, inputs, candidate.seed,
                                       options.max_steps, &replay)
                         .Key() == key;
            });
        ++result.divergences;
        result.reports.push_back(StrCat(
            "input set ", set_index, ": optimized build ",
            lost ? "LOST" : "introduced NEW", " outcome [", key,
            "] (reference ", ref_set.outcomes.size(), " outcome(s), optimized ",
            opt_set.outcomes.size(), " outcome(s) across ", options.schedules,
            " schedules/side); repro on ", lost ? "reference" : "optimized",
            " side: ", shrunk.Serialize()));
      };
      for (const auto& [key, outcome] : opt_set.outcomes) {
        if (ref_set.outcomes.count(key) == 0) {
          report_divergence(key, /*lost=*/false);
        }
      }
      for (const auto& [key, outcome] : ref_set.outcomes) {
        if (opt_set.outcomes.count(key) == 0) {
          report_divergence(key, /*lost=*/true);
        }
      }
    }
    return result;
  }
  for (size_t set_index = 0; set_index < sets.size(); ++set_index) {
    for (int s = 0; s < options.schedules; ++s) {
      uint64_t seed = options.base_seed + static_cast<uint64_t>(s) * 0x9e3779b9ull;
      // Schedule 0 is the engine's deterministic min-clock order; later
      // schedules open the perturbation window.
      uint64_t skew = s == 0 ? 0 : options.schedule_skew;
      Observation ref = RunOnce(reference, image, sets[set_index], seed, skew,
                                options.max_steps);
      Observation opt = RunOnce(optimized, image, sets[set_index], seed, skew,
                                options.max_steps);
      ++result.runs;
      if (!(ref == opt)) {
        ++result.divergences;
        result.reports.push_back(StrCat(
            "input set ", set_index, ", schedule ", s, " (seed ", seed,
            ", skew ", skew, "): reference {ok=", ref.ok ? 1 : 0,
            " exit=", ref.exit_code, " out=\"", ref.output,
            "\"} vs optimized {ok=", opt.ok ? 1 : 0, " exit=", opt.exit_code,
            " out=\"", opt.output, "\"}",
            !ref.ok || !opt.ok
                ? StrCat("; faults: ref=\"", ref.fault_message, "\" opt=\"",
                         opt.fault_message, "\"")
                : ""));
      }
    }
  }
  return result;
}

}  // namespace polynima::check
