// Pointer-provenance derivation over lifted IR: the shared core of the
// static concurrency analysis (src/analyze) and the TSO checker's
// re-verification of heap-local elision witnesses (src/check/tso.h).
//
// For every SSA value a RegionDeriver computes an abstract *provenance* —
// which memory regions the value, interpreted as a pointer, may point into:
//
//   stack   derived from the emulated stack pointer (vr_rsp, or vr_rbp in
//           functions the lifter marked frame_pointer);
//   allocs  derived from the result of one of the listed allocation calls
//           (ext_call to malloc/calloc/realloc: the GlobalLoad of vr_rax
//           reached by the call);
//   other   derived from anything else — constant data addresses, incoming
//           register state, values reloaded from memory, call results.
//
// Propagation mirrors the TSO checker's StackDeriver rules (add/sub flow
// from either operand, phi/select join every data operand) but replaces the
// per-block reaching-store chase with a whole-function forward dataflow over
// the virtual GPR globals, so provenance survives loop headers and
// register-promoted locals (`reg_promote`d values). Calls clobber the
// caller-saved GPRs; callee-saved registers (rbx, rbp, r12-r15) and rsp keep
// their provenance across calls per the SysV ABI the lifter targets — mcc
// callees restore them, and a callee that did not would already break the
// guest program itself.
//
// Deliberately lossy (documented over-approximations, DESIGN.md §4e):
//   - kLoad results are at least `other`: a reload may materialize caller
//     state of any provenance. On top of that every load carries the *memory
//     residue* — the join of all provenances stored to provably-private
//     memory (pure-stack spill slots, private heap objects) anywhere in the
//     function. Values stored to any other destination were already escaped
//     at the store, so `other` covers them; the residue keeps a pointer
//     laundered through a spill slot attached to its allocation sites, so
//     the escape sinks still see it when the reload is published. Stack
//     residue is per-slot (keyed by the resolved entry-rsp delta) so that
//     the return-PC load and pops do not inherit every spill; a load whose
//     address has unresolved stack provenance joins every slot.
//   - only add/sub/phi/select/global-load propagate; masked or multiplied
//     pointers degrade to `other`.
// Both directions only ever widen provenance toward `other`, which consumers
// treat as potentially-shared — so the loss is sound for elision decisions.
#ifndef POLYNIMA_CHECK_DERIVE_H_
#define POLYNIMA_CHECK_DERIVE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace polynima::check {

// Abstract provenance of one i64 value. Join-semilattice: bottom is "derived
// from nothing pointer-like" (constants, small integers).
struct Provenance {
  bool stack = false;
  bool other = false;
  // When `stack` is set and `delta_known`, the value is exactly
  // entry-rsp + delta — a resolved frame slot. Joining two different deltas
  // (or any unknown-offset contribution) widens to "some stack address"
  // (delta_known = false). The deriver keys its spill residue on this, so a
  // reload only inherits what was stored at its own slot.
  bool delta_known = false;
  int64_t delta = 0;
  std::set<const ir::Instruction*> allocs;  // allocation ext_call instructions

  bool Bottom() const { return !stack && !other && allocs.empty(); }
  // Purely the emulated stack: eligible for stack-local classification.
  bool PureStack() const { return stack && !other && allocs.empty(); }
  // Purely same-function allocation results: eligible for heap-local
  // classification when every site is proven non-escaping.
  bool PureHeap() const { return !stack && !other && !allocs.empty(); }

  // Joins `o` in; returns true when anything widened.
  bool Join(const Provenance& o);
};

// True for externals whose return value (vr_rax) is a fresh thread-private
// heap object: malloc, calloc, realloc.
bool IsAllocatorExternal(const std::string& name);

class RegionDeriver {
 public:
  // `externals` is the image's slot -> name table (lift::LiftedProgram::
  // externals). With an empty table no ext_call is recognized as an
  // allocator, so no value ever derives a PureHeap provenance — the
  // conservative default for hand-built IR.
  RegionDeriver(const ir::Function& f,
                const std::vector<std::string>& externals);

  // Provenance of `v` at its definition (bottom for constants/arguments).
  const Provenance& ValueOf(const ir::Value* v) const;

  // Provenance held by GPR global `g` immediately BEFORE `inst` executes.
  // Used by escape analysis to inspect argument registers at call sites.
  Provenance GlobalBefore(const ir::Instruction& inst,
                          const ir::Global* g) const;

  // Allocation sites found in the function, in block/program order.
  const std::vector<const ir::Instruction*>& alloc_sites() const {
    return alloc_sites_;
  }

  // Resolves an ext_call instruction to its external's name ("" when the
  // slot is not constant or out of table range).
  std::string ExternalName(const ir::Instruction& call) const;

 private:
  using GlobalState = std::map<const ir::Global*, Provenance>;

  void Solve();
  // Walks one block from `state`, assigning instruction provenances.
  // Returns true when any provenance widened.
  bool Transfer(const ir::BasicBlock& b, GlobalState state);
  Provenance Eval(const ir::Value* v) const;
  void ApplyCallClobbers(const ir::Instruction& call, GlobalState& state) const;

  const ir::Function& f_;
  const std::vector<std::string>& externals_;
  std::map<const ir::BasicBlock*, GlobalState> block_in_;
  std::map<const ir::Instruction*, Provenance> values_;
  std::vector<const ir::Instruction*> alloc_sites_;
  // Memory residue: join of every provenance stored to a pure-stack spill
  // slot / a private heap object. Folded into load results so a pointer
  // round-tripped through private memory keeps its sites (see file header).
  // Stack-side residue is keyed by the slot's entry-rsp delta when resolved;
  // stores to unresolved stack offsets land in the catch-all, which every
  // stack reload must include.
  std::map<int64_t, Provenance> slot_residue_;
  Provenance stack_unknown_residue_;
  Provenance heap_residue_;
  Provenance bottom_;
};

// Which allocation sites (and whether the emulated-stack frame) escape the
// executing thread. Computed by the one canonical sink walk shared by the
// analyzer (to decide what to stamp) and the TSO checker (to re-verify what
// was stamped) — the two must never diverge, or a valid witness would be
// reported forged.
//
// Sinks: storing a tracked pointer anywhere but the pure stack, holding one
// in an argument register at any call, holding one in vr_rax at a return,
// or using one as an atomic operand. Two refinements keep the walk precise
// without losing soundness: a pointer stored into another *private* heap
// object escapes only if that object escapes (transitive closure), and a
// pointer spilled to the stack escapes only if the frame itself escapes.
struct EscapeFacts {
  std::set<const ir::Instruction*> escaped;  // escaped allocation sites
  std::map<const ir::Instruction*, std::string> reasons;
  bool stack_escaped = false;
  std::string stack_reason;

  bool SiteEscaped(const ir::Instruction* site) const {
    return escaped.count(site) != 0;
  }
};

// Runs the sink walk over `f` using provenance from `deriver` (which must
// have been built over the same function). `m` resolves the virtual
// argument-register globals.
EscapeFacts ComputeEscapeFacts(const ir::Function& f, const ir::Module& m,
                               const RegionDeriver& deriver);

}  // namespace polynima::check

#endif  // POLYNIMA_CHECK_DERIVE_H_
