// Schedule-perturbing differential runner: the dynamic half of the TSO
// check. Executes the fully-fenced reference module and the optimized module
// over the same inputs under a family of perturbed thread schedules
// (ExecOptions::schedule_skew widens the engine's min-clock scheduler into
// a seeded random pick among near-minimal threads) and diffs the observable
// results (exit status, exit code, program output). Fence elision is
// behaviour-preserving only if no schedule can tell the two modules apart;
// a divergence is a concrete witness of an unsound elision.
#ifndef POLYNIMA_CHECK_DIFFERENTIAL_H_
#define POLYNIMA_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/lift/lifter.h"
#include "src/support/status.h"

namespace polynima::check {

struct DifferentialOptions {
  // Number of perturbed schedules per input set (seed varies per schedule).
  int schedules = 4;
  uint64_t base_seed = 1;
  // Scheduler perturbation window in simulated cycles (0 = the engine's
  // deterministic min-clock order; larger values admit more interleavings).
  uint64_t schedule_skew = 16;
  uint64_t max_steps = 4'000'000'000ull;
};

struct DifferentialResult {
  int runs = 0;         // schedule x input-set pairs executed on BOTH sides
  int divergences = 0;
  std::vector<std::string> reports;  // one human-readable line per divergence

  bool ok() const { return divergences == 0; }
};

// Runs `reference` (fully fenced) and `optimized` (elided/removed fences)
// side by side. Both must be lifted from the same image. Input sets follow
// the fenceopt convention: each element is one run's input files.
Expected<DifferentialResult> RunScheduleDifferential(
    const lift::LiftedProgram& reference, const lift::LiftedProgram& optimized,
    const binary::Image& image,
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
    const DifferentialOptions& options = {});

}  // namespace polynima::check

#endif  // POLYNIMA_CHECK_DIFFERENTIAL_H_
