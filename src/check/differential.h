// Schedule-perturbing differential runner: the dynamic half of the TSO
// check. Executes the fully-fenced reference module and the optimized module
// over the same inputs under a family of thread schedules and diffs the
// observable results (exit status, exit code, program output). Fence elision
// is behaviour-preserving only if no schedule can tell the two modules
// apart; a divergence is a concrete witness of an unsound elision.
//
// By default the schedules come from the controlled scheduler (src/sched):
// schedule 0 is the deterministic all-default order and later schedules are
// seeded PCT searches, each recorded so every divergence report carries a
// shrunk `polysched/v1` repro string that replays bit-identically. The
// comparison is between the *sets* of outcomes each side can exhibit (in
// both directions), so benign races that merely reorder legal outcomes
// across the two builds do not raise false alarms. Setting
// `use_controlled = false` falls back to the legacy ExecOptions::
// schedule_skew perturbation with pairwise same-seed comparison.
#ifndef POLYNIMA_CHECK_DIFFERENTIAL_H_
#define POLYNIMA_CHECK_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/lift/lifter.h"
#include "src/support/status.h"

namespace polynima::check {

struct DifferentialOptions {
  // Number of perturbed schedules per input set (seed varies per schedule).
  int schedules = 4;
  uint64_t base_seed = 1;
  // Deterministic controlled scheduling (PCT + record/replay/shrink). When
  // false, uses the legacy min-clock skew perturbation below.
  bool use_controlled = true;
  // PCT shape for the controlled schedules (see sched::PctOptions).
  // pct_length caps the change-point range; the actual range is calibrated
  // to the consultation count of each side's default-schedule run.
  int pct_depth = 3;
  uint64_t pct_length = 4096;
  // Legacy only: scheduler perturbation window in simulated cycles (0 = the
  // engine's deterministic min-clock order; larger values admit more
  // interleavings).
  uint64_t schedule_skew = 16;
  uint64_t max_steps = 4'000'000'000ull;
};

struct DifferentialResult {
  int runs = 0;         // schedule x input-set pairs executed on BOTH sides
  int divergences = 0;
  std::vector<std::string> reports;  // one human-readable line per divergence

  bool ok() const { return divergences == 0; }
};

// Runs `reference` (fully fenced) and `optimized` (elided/removed fences)
// side by side. Both must be lifted from the same image. Input sets follow
// the fenceopt convention: each element is one run's input files.
Expected<DifferentialResult> RunScheduleDifferential(
    const lift::LiftedProgram& reference, const lift::LiftedProgram& optimized,
    const binary::Image& image,
    const std::vector<std::vector<std::vector<uint8_t>>>& input_sets,
    const DifferentialOptions& options = {});

}  // namespace polynima::check

#endif  // POLYNIMA_CHECK_DIFFERENTIAL_H_
