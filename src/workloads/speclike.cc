// SPECint-2006-profile programs for the lift-time comparison (Table 4) and
// the additive-vs-incremental experiment (Figure 4). Each program's
// indirect-control-flow profile matches its namesake: mcf_like and
// libquantum_like have no indirect transfers at all (an entirely static
// approach is complete for them); gcc_like and gobmk_like dispatch through
// function-pointer tables and dense switches (ICFT-heavy).
#include "src/workloads/workloads.h"

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace polynima::workloads {
namespace {

std::vector<uint8_t> RandomBytes(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// bzip2-like: RLE + move-to-front + order-0 frequency coding, mode switch
// dispatched through a jump table.
const char* kBzip2 = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* data;
long n;
char mtf_table[256];
long freq[256];

long rle_pass(char* src, long len, char* dst) {
  long w = 0;
  long i = 0;
  while (i < len) {
    char c = src[i];
    long run = 1;
    while (i + run < len && src[i + run] == c && run < 251) run += 1;
    if (run >= 4) {
      dst[w] = c; dst[w+1] = c; dst[w+2] = c; dst[w+3] = c;
      dst[w+4] = (char)(run - 4);
      w += 5;
    } else {
      for (long k = 0; k < run; k++) dst[w + k] = c;
      w += run;
    }
    i += run;
  }
  return w;
}

long mtf_pass(char* src, long len, char* dst) {
  for (int i = 0; i < 256; i++) mtf_table[i] = (char)i;
  for (long i = 0; i < len; i++) {
    char c = src[i];
    int j = 0;
    while ((mtf_table[j] & 255) != (c & 255)) j += 1;
    dst[i] = (char)j;
    while (j > 0) {
      mtf_table[j] = mtf_table[j - 1];
      j -= 1;
    }
    mtf_table[0] = c;
  }
  return len;
}

long entropy_bits(char* src, long len) {
  for (int i = 0; i < 256; i++) freq[i] = 0;
  for (long i = 0; i < len; i++) freq[src[i] & 255] += 1;
  long bits = 0;
  for (int i = 0; i < 256; i++) {
    long f = freq[i];
    long cost = 9;
    if (f > len / 4) cost = 2;
    else if (f > len / 16) cost = 4;
    else if (f > len / 64) cost = 6;
    else if (f > len / 256) cost = 8;
    bits += f * cost;
  }
  return bits;
}

long apply_stage(long stage, char* src, long len, char* dst) {
  switch (stage) {
    case 0: return rle_pass(src, len, dst);
    case 1: return mtf_pass(src, len, dst);
    case 2: return rle_pass(src, len, dst);
    case 3: return mtf_pass(src, len, dst);
    case 4: {
      for (long i = 0; i < len; i++) dst[i] = src[i];
      return len;
    }
    default: return len;
  }
}

int main() {
  n = input_len(0);
  data = (char*)malloc(n + 16);
  input_read(0, 0, data, n);
  char* a = (char*)malloc(n * 2 + 64);
  char* b = (char*)malloc(n * 2 + 64);
  char* cur = data;
  long len = n;
  for (long stage = 0; stage < 4; stage++) {
    char* dst = (stage & 1) ? b : a;
    len = apply_stage(stage, cur, len, dst);
    cur = dst;
  }
  print_i64(len);
  print_i64(entropy_bits(cur, len) / 8);
  return 0;
}
)";

// gcc-like: expression "compiler": tokenizer + recursive-descent evaluation
// with operator handlers dispatched through a function-pointer table and a
// dense token switch (ICFT-heavy).
const char* kGcc = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* src;
long n;
long pos;

long op_add(long a, long b) { return a + b; }
long op_sub(long a, long b) { return a - b; }
long op_mul(long a, long b) { return a * b; }
long op_and(long a, long b) { return a & b; }
long op_or(long a, long b) { return a | b; }
long op_xor(long a, long b) { return a ^ b; }
long op_shl(long a, long b) { return a << (b & 15); }
long op_min(long a, long b) { return a < b ? a : b; }

long (*optable[8])(long, long);

long classify(long c) {
  switch (c & 15) {
    case 0: return 0;
    case 1: return 1;
    case 2: return 2;
    case 3: return 3;
    case 4: return 4;
    case 5: return 5;
    case 6: return 6;
    case 7: return 7;
    case 8: return 0;
    case 9: return 2;
    case 10: return 4;
    case 11: return 6;
    default: return 1;
  }
}

long eval_expr(long depth);

long eval_atom(long depth) {
  long c = src[pos % n] & 255;
  pos += 1;
  if (depth < 6 && (c & 3) == 0) {
    return eval_expr(depth + 1);
  }
  return c;
}

long eval_expr(long depth) {
  long acc = eval_atom(depth);
  long terms = 1 + (src[pos % n] & 3);
  pos += 1;
  for (long t = 0; t < terms; t++) {
    long opc = classify(src[pos % n]);
    pos += 1;
    long rhs = eval_atom(depth);
    acc = optable[opc](acc, rhs);   // indirect call through the op table
  }
  return acc;
}

int main() {
  optable[0] = op_add; optable[1] = op_sub; optable[2] = op_mul;
  optable[3] = op_and; optable[4] = op_or;  optable[5] = op_xor;
  optable[6] = op_shl; optable[7] = op_min;
  n = input_len(0);
  src = (char*)malloc(n + 16);
  input_read(0, 0, src, n);
  long checksum = 0;
  pos = 0;
  long exprs = n / 8;
  for (long i = 0; i < exprs; i++) {
    checksum += eval_expr(0) & 0xffff;
  }
  print_i64(checksum);
  return 0;
}
)";

// mcf-like: min-cost-flow-flavoured relaxation over a synthetic arc network.
// No indirect transfers at all.
const char* kMcf = R"(
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();
extern long malloc(long n);

long nnodes = 400;
long narcs;
long* tail_n;
long* head_n;
long* cost;
long* potential;

int main() {
  poly_srand(5);
  narcs = nnodes * 6;
  tail_n = (long*)malloc(narcs * 8);
  head_n = (long*)malloc(narcs * 8);
  cost = (long*)malloc(narcs * 8);
  potential = (long*)malloc(nnodes * 8);
  for (long a = 0; a < narcs; a++) {
    tail_n[a] = poly_rand() % nnodes;
    head_n[a] = poly_rand() % nnodes;
    cost[a] = 1 + poly_rand() % 100;
  }
  for (long v = 0; v < nnodes; v++) potential[v] = 1000000;
  potential[0] = 0;
  long changed = 1;
  long rounds = 0;
  while (changed) {
    changed = 0;
    for (long a = 0; a < narcs; a++) {
      long u = tail_n[a];
      long v = head_n[a];
      long c = potential[u] + cost[a];
      if (c < potential[v]) {
        potential[v] = c;
        changed = 1;
      }
    }
    rounds += 1;
  }
  long sum = 0;
  for (long v = 0; v < nnodes; v++) sum += potential[v];
  print_i64(sum);
  print_i64(rounds);
  return 0;
}
)";

// gobmk-like: game playouts with per-phase move generators dispatched
// through a function-pointer table (very ICFT-heavy, like gobmk's pattern
// matchers).
const char* kGobmk = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long board[81];
char* moves;
long nmoves;

long gen_corner(long s) { return (s * 7 + 3) % 81; }
long gen_edge(long s) { return (s * 11 + 9) % 81; }
long gen_center(long s) { return (s * 13 + 40) % 81; }
long gen_attack(long s) { return (s * 17 + 1) % 81; }
long gen_defend(long s) { return (s * 19 + 5) % 81; }
long gen_eye(long s) { return (s * 23 + 60) % 81; }
long gen_capture(long s) { return (s * 29 + 2) % 81; }
long gen_pass(long s) { return s % 81; }

long (*generators[8])(long);

long play_game(long seed) {
  for (int i = 0; i < 81; i++) board[i] = 0;
  long score = 0;
  long s = seed;
  for (long turn = 0; turn < 60; turn++) {
    long phase = (s >> 3) & 7;
    long key = (s >> 13) & 0x7fffffff;    // non-negative generator input
    long mv = generators[phase](key);     // indirect call
    s = s * 6364136223846793005 + 1442695040888963407;
    long color = 1 + (turn & 1);
    if (board[mv] == 0) {
      board[mv] = color;
      score += color == 1 ? 1 : -1;
    }
  }
  return score;
}

int main() {
  generators[0] = gen_corner; generators[1] = gen_edge;
  generators[2] = gen_center; generators[3] = gen_attack;
  generators[4] = gen_defend; generators[5] = gen_eye;
  generators[6] = gen_capture; generators[7] = gen_pass;
  nmoves = input_len(0);
  moves = (char*)malloc(nmoves + 16);
  input_read(0, 0, moves, nmoves);
  long total = 0;
  for (long g = 0; g < nmoves / 4; g++) {
    total += play_game(moves[g * 4] * 131 + g);
  }
  print_i64(total);
  return 0;
}
)";

// hmmer-like: integer Viterbi-style dynamic programming over a profile.
const char* kHmmer = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long states = 32;
long* match;
long* insert;
char* seq;
long n;

long score_char(long kind, long c) {
  switch (kind) {
    case 0: return (c & 7) - 3;
    case 1: return (c & 15) - 7;
    case 2: return (c % 5) - 2;
    case 3: return (c % 9) - 4;
    default: return 0;
  }
}

int main() {
  n = input_len(0);
  seq = (char*)malloc(n + 16);
  input_read(0, 0, seq, n);
  match = (long*)malloc((states + 1) * 8);
  insert = (long*)malloc((states + 1) * 8);
  for (long s = 0; s <= states; s++) { match[s] = -1000000; insert[s] = -1000000; }
  match[0] = 0;
  long best = -1000000;
  for (long i = 0; i < n; i++) {
    long c = seq[i] & 255;
    for (long s = states; s >= 1; s--) {
      long em = score_char(s & 3, c);
      long from_match = match[s - 1] + em;
      long from_insert = insert[s - 1] + em - 2;
      long m = from_match > from_insert ? from_match : from_insert;
      if (m < -1000000) m = -1000000;
      match[s] = m;
      long ins = match[s] - 3 > insert[s] - 1 ? match[s] - 3 : insert[s] - 1;
      insert[s] = ins;
      if (match[s] > best) best = match[s];
    }
    match[0] = 0;
  }
  print_i64(best);
  return 0;
}
)";

// sjeng-like: fixed-depth alpha-beta over a synthetic game tree with a dense
// piece-type switch.
const char* kSjeng = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* tape;
long n;
long cursor;

long piece_value(long piece) {
  switch (piece & 7) {
    case 0: return 100;
    case 1: return 320;
    case 2: return 330;
    case 3: return 500;
    case 4: return 900;
    case 5: return 20000;
    case 6: return 50;
    default: return 0;
  }
}

long eval_leaf() {
  long c = tape[cursor % n] & 255;
  cursor += 1;
  return piece_value(c) - piece_value(c >> 3) + (c & 31);
}

long search(long depth, long alpha, long beta, long maximizing) {
  if (depth == 0) return eval_leaf();
  long branches = 2 + (tape[cursor % n] & 1);
  cursor += 1;
  if (maximizing) {
    long best = -1000000;
    for (long b = 0; b < branches; b++) {
      long v = search(depth - 1, alpha, beta, 0);
      if (v > best) best = v;
      if (best > alpha) alpha = best;
      if (beta <= alpha) break;
    }
    return best;
  }
  long best = 1000000;
  for (long b = 0; b < branches; b++) {
    long v = search(depth - 1, alpha, beta, 1);
    if (v < best) best = v;
    if (best < beta) beta = best;
    if (beta <= alpha) break;
  }
  return best;
}

int main() {
  n = input_len(0);
  tape = (char*)malloc(n + 16);
  input_read(0, 0, tape, n);
  cursor = 0;
  long total = 0;
  for (long game = 0; game < 24; game++) {
    total += search(8, -1000000, 1000000, 1);
  }
  print_i64(total);
  return 0;
}
)";

// libquantum-like: quantum register simulation over bit vectors — straight
// loops, zero indirect transfers.
const char* kLibquantum = R"(
extern void print_i64(long v);
extern long malloc(long n);
extern void poly_srand(long seed);
extern long poly_rand();

long nstates = 2048;
long* amp;

void gate_not(long bit) {
  long mask = 1 << bit;
  for (long s = 0; s < nstates; s++) {
    long t = s ^ mask;
    if (t > s) {
      long tmp = amp[s];
      amp[s] = amp[t];
      amp[t] = tmp;
    }
  }
}

void gate_cnot(long control, long target) {
  long cm = 1 << control;
  long tm = 1 << target;
  for (long s = 0; s < nstates; s++) {
    if ((s & cm) != 0) {
      long t = s ^ tm;
      if (t > s) {
        long tmp = amp[s];
        amp[s] = amp[t];
        amp[t] = tmp;
      }
    }
  }
}

void gate_phase(long bit, long k) {
  long mask = 1 << bit;
  for (long s = 0; s < nstates; s++) {
    if ((s & mask) != 0) {
      amp[s] = amp[s] * k % 1000003;
    }
  }
}

int main() {
  poly_srand(31);
  amp = (long*)malloc(nstates * 8);
  for (long s = 0; s < nstates; s++) amp[s] = 1 + s % 97;
  for (long round = 0; round < 40; round++) {
    long b1 = poly_rand() % 11;
    long b2 = poly_rand() % 11;
    gate_not(b1);
    if (b1 != b2) gate_cnot(b1, b2);
    gate_phase(b2, 3 + (round % 5));
  }
  long checksum = 0;
  for (long s = 0; s < nstates; s++) checksum = (checksum + amp[s]) % 1000000007;
  print_i64(checksum);
  return 0;
}
)";

// h264ref-like: block transforms with a prediction-mode function table.
const char* kH264 = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* frame;
long n;
long blk[16];

long pred_dc(long base) { return (frame[base % n] & 255); }
long pred_h(long base) { return (frame[(base + 1) % n] & 255) / 2; }
long pred_v(long base) { return (frame[(base + 16) % n] & 255) / 2; }
long pred_plane(long base) {
  return ((frame[base % n] & 255) + (frame[(base + 17) % n] & 255)) / 2;
}

long (*predictors[4])(long);

long transform_block(long base, long mode) {
  long p = predictors[mode](base);         // indirect call
  for (long i = 0; i < 16; i++) {
    blk[i] = (frame[(base + i) % n] & 255) - p;
  }
  // 4x4 integer butterfly (rows then columns).
  for (long r = 0; r < 4; r++) {
    long a = blk[r*4+0] + blk[r*4+3];
    long b = blk[r*4+1] + blk[r*4+2];
    long c = blk[r*4+1] - blk[r*4+2];
    long d = blk[r*4+0] - blk[r*4+3];
    blk[r*4+0] = a + b;
    blk[r*4+1] = c + d * 2;
    blk[r*4+2] = a - b;
    blk[r*4+3] = d - c * 2;
  }
  long sum = 0;
  for (long i = 0; i < 16; i++) sum += blk[i] < 0 ? -blk[i] : blk[i];
  return sum;
}

int main() {
  predictors[0] = pred_dc;
  predictors[1] = pred_h;
  predictors[2] = pred_v;
  predictors[3] = pred_plane;
  n = input_len(0);
  frame = (char*)malloc(n + 32);
  input_read(0, 0, frame, n);
  long cost = 0;
  for (long mb = 0; mb < n / 16; mb++) {
    long best = 1 << 30;
    for (long mode = 0; mode < 4; mode++) {
      long c = transform_block(mb * 16, mode);
      if (c < best) best = c;
    }
    cost += best;
  }
  print_i64(cost);
  return 0;
}
)";

// astar-like: bucket-queue grid pathfinding; a single two-entry heuristic
// table supplies the two ICFTs of the real binary.
const char* kAstar = R"(
extern void print_i64(long v);
extern long malloc(long n);
extern void poly_srand(long seed);
extern long poly_rand();

long dim = 64;
long* grid;
long* dist;
long* bucket;     // bucket queue: dist -> singly linked list heads
long* next_node;
long maxd = 4096;

long h_manhattan(long node) {
  long x = node % dim;
  long y = node / dim;
  return (dim - 1 - x) + (dim - 1 - y);
}
long h_zero(long node) { return 0; }

long (*heuristics[2])(long);

int main() {
  heuristics[0] = h_manhattan;
  heuristics[1] = h_zero;
  poly_srand(17);
  long cells = dim * dim;
  grid = (long*)malloc(cells * 8);
  dist = (long*)malloc(cells * 8);
  bucket = (long*)malloc(maxd * 8);
  next_node = (long*)malloc(cells * 8);
  for (long i = 0; i < cells; i++) {
    grid[i] = 1 + poly_rand() % 9;
    dist[i] = 1 << 30;
    next_node[i] = -1;
  }
  for (long d = 0; d < maxd; d++) bucket[d] = -1;
  long hsel = 0;
  long total = 0;
  for (long query = 0; query < 2; query++) {
    for (long i = 0; i < cells; i++) { dist[i] = 1 << 30; next_node[i] = -1; }
    for (long d = 0; d < maxd; d++) bucket[d] = -1;
    dist[0] = 0;
    long key0 = heuristics[hsel](0);   // indirect call (one per query)
    bucket[key0] = 0;
    for (long d = 0; d < maxd; d++) {
      long node = bucket[d];
      while (node >= 0) {
        long nx = next_node[node];
        long base = dist[node];
        long x = node % dim;
        long y = node / dim;
        long dirs[4];
        dirs[0] = x + 1 < dim ? node + 1 : -1;
        dirs[1] = x > 0 ? node - 1 : -1;
        dirs[2] = y + 1 < dim ? node + dim : -1;
        dirs[3] = y > 0 ? node - dim : -1;
        for (long k = 0; k < 4; k++) {
          long nb = dirs[k];
          if (nb < 0) continue;
          long nd = base + grid[nb];
          if (nd < dist[nb]) {
            dist[nb] = nd;
            if (nd < maxd) {
              next_node[nb] = bucket[nd];
              bucket[nd] = nb;
            }
          }
        }
        node = nx;
      }
      bucket[d] = -1;
    }
    total += dist[cells - 1];
    hsel = 1 - hsel;
  }
  print_i64(total);
  return 0;
}
)";

size_t RefScale(int scale, size_t small, size_t medium, size_t large) {
  return scale <= 0 ? small : scale == 1 ? medium : large;
}

}  // namespace

const std::vector<Workload>& SpecLike() {
  static const std::vector<Workload>* workloads = [] {
    auto* list = new std::vector<Workload>;
    auto no_input = [](int) { return std::vector<std::vector<uint8_t>>{}; };
    auto bytes_input = [](uint64_t seed, size_t s, size_t m, size_t l) {
      return [=](int scale) {
        return std::vector<std::vector<uint8_t>>{
            RandomBytes(seed, RefScale(scale, s, m, l))};
      };
    };
    auto add = [&](const char* name, const char* source, auto inputs) {
      Workload w;
      w.name = name;
      w.suite = "speclike";
      w.source = source;
      w.make_inputs = inputs;
      w.default_opt = 2;
      list->push_back(std::move(w));
    };
    add("bzip2_like", kBzip2, bytes_input(401, 2000, 8000, 24000));
    add("gcc_like", kGcc, bytes_input(403, 2000, 8000, 24000));
    add("mcf_like", kMcf, no_input);
    add("gobmk_like", kGobmk, bytes_input(445, 1200, 4800, 16000));
    add("hmmer_like", kHmmer, bytes_input(456, 2000, 8000, 24000));
    add("sjeng_like", kSjeng, bytes_input(458, 1600, 6400, 20000));
    add("libquantum_like", kLibquantum, no_input);
    add("h264_like", kH264, bytes_input(464, 1600, 6400, 20000));
    add("astar_like", kAstar, no_input);
    return list;
  }();
  return *workloads;
}

const Workload* FindWorkload(const std::string& name) {
  for (const auto* suite :
       {&Phoenix(), &Gapbs(true), &CkitSpinlocks(), &Apps(), &SpecLike(),
        &RaceBench(), &Indirect()}) {
    for (const Workload& w : *suite) {
      if (w.name == name) {
        return &w;
      }
    }
  }
  return nullptr;
}

}  // namespace polynima::workloads
