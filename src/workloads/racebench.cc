// Race-detection benchmark suite for the static concurrency analyzer
// (src/analyze) and its cross-validation against schedule exploration
// (src/sched). Two families, distinguished by name prefix:
//
//   racy_*  Seeded data races: unsynchronized plain accesses to shared
//           globals from concurrently-running threads. The static detector
//           must report at least one pair, and schedule exploration must
//           observe more than one distinct outcome.
//   safe_*  Race-free twins: the same sharing shapes made sound with a
//           mutex, atomics, or join-before-access. The static detector must
//           report zero pairs, and every explored schedule must produce the
//           same outcome.
//
// The programs are deliberately small so bounded-preemption DFS can cover
// them exhaustively, and they avoid the analyzer's documented
// over-approximations (symbolic disjoint indexing, stack pointers handed to
// children) so "zero pairs on safe_*" is an honest precision bar rather
// than an accident of conservatism.
#include "src/workloads/workloads.h"

namespace polynima::workloads {
namespace {

// Two workers bump a shared global with a plain read-modify-write. Lost
// updates change the printed count; the writes race with each other and
// with the re-reads.
const char* kRacyCounter = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);

long counter = 0;

long worker(long tid) {
  for (long i = 0; i < 40; i++) {
    counter = counter + 1;   // racy: no lock, not atomic
  }
  return 0;
}

int main() {
  long tids[2];
  for (int i = 0; i < 2; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 2; i++) pthread_join(tids[i], 0);
  print_i64(counter);
  return 0;
}
)";

// Each worker stamps its id into a shared global; the printed value is
// whichever write lands last. Write/write race, two observable outcomes.
const char* kRacyLastWrite = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);

long last = -1;

long worker(long tid) {
  last = tid;              // racy: concurrent unsynchronized writes
  return 0;
}

int main() {
  long tids[2];
  for (int i = 0; i < 2; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 2; i++) pthread_join(tids[i], 0);
  print_i64(last);
  return 0;
}
)";

// racy_counter made sound: the same plain RMW under a global pthread mutex.
// Both accesses hold {&mtx}, so their locksets intersect and the static
// detector drops the pair.
const char* kSafeMutex = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern int pthread_mutex_init(long* m, long attr);
extern int pthread_mutex_lock(long* m);
extern int pthread_mutex_unlock(long* m);
extern void print_i64(long v);

long counter = 0;
long mtx;

long worker(long tid) {
  for (long i = 0; i < 40; i++) {
    pthread_mutex_lock(&mtx);
    counter = counter + 1;   // safe: serialized by mtx
    pthread_mutex_unlock(&mtx);
  }
  return 0;
}

int main() {
  pthread_mutex_init(&mtx, 0);
  long tids[2];
  for (int i = 0; i < 2; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 2; i++) pthread_join(tids[i], 0);
  print_i64(counter);
  return 0;
}
)";

// racy_counter made sound the other way: hardware atomic accumulation.
// Atomic pairs are never reported (both sides order themselves).
const char* kSafeAtomic = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);

long counter = 0;

long worker(long tid) {
  for (long i = 0; i < 40; i++) {
    __atomic_fetch_add(&counter, 1);
  }
  return 0;
}

int main() {
  long tids[2];
  for (int i = 0; i < 2; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 2; i++) pthread_join(tids[i], 0);
  print_i64(counter);
  return 0;
}
)";

// One child fills a shared global; main touches it strictly after the join.
// The spawn-window (join-quiescence) analysis sees the outstanding-thread
// count drop to zero before main's accesses, so no pair is reported even
// though both threads touch the same address unsynchronized.
const char* kSafeJoin = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);

long result = 0;

long worker(long arg) {
  long acc = 0;
  for (long i = 1; i <= 10; i++) acc = acc + i * arg;
  result = acc;            // sole writer while main is blocked in join
  return 0;
}

int main() {
  long tid;
  pthread_create(&tid, 0, worker, 3);
  pthread_join(tid, 0);
  print_i64(result);       // strictly after the join: not concurrent
  return 0;
}
)";

// Heap-privacy showcase: each worker computes in a malloc'd scratch buffer
// that never escapes its frame (not stored anywhere, not passed to any
// call — deliberately leaked), then publishes one total atomically. The
// escape pass proves the buffer thread-local, ApplyStaticElision strips the
// fences around its accesses under a kHeapLocal witness, and the race
// detector stays silent.
const char* kSafeHeap = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long malloc(long n);
extern void print_i64(long v);

long total = 0;

long worker(long tid) {
  long* scratch = (long*)malloc(16 * 8);
  for (long i = 0; i < 16; i++) scratch[i] = (tid + 2) * i;
  long sum = 0;
  for (long i = 0; i < 16; i++) sum = sum + scratch[i];
  __atomic_fetch_add(&total, sum);
  return 0;
}

int main() {
  long tids[2];
  for (int i = 0; i < 2; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 2; i++) pthread_join(tids[i], 0);
  print_i64(total);
  return 0;
}
)";

// The spawn is hidden in a helper: main never calls pthread_create
// directly, so a main-body-only spawn-window walk would see outstanding==0
// at the read of `flag` and wrongly mark it quiescent. The interprocedural
// may-spawn rule pins main's counter at the call to spawn_one(), keeping the
// main-vs-worker pair reported (outcome is 0 or 7 depending on schedule).
const char* kRacyHelperSpawn = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);

long flag = 0;
long tid_slot = 0;

long worker(long arg) {
  flag = arg;              // racy with main's pre-join read
  return 0;
}

void spawn_one() {
  pthread_create(&tid_slot, 0, worker, 7);
}

int main() {
  spawn_one();
  print_i64(flag);         // child may or may not have written yet
  pthread_join(tid_slot, 0);
  return 0;
}
)";

}  // namespace

const std::vector<Workload>& RaceBench() {
  static const std::vector<Workload>* workloads = [] {
    auto no_input = [](int) { return std::vector<std::vector<uint8_t>>{}; };
    auto* list = new std::vector<Workload>();
    auto add = [&](const char* name, const char* source) {
      Workload w;
      w.name = name;
      w.suite = "racebench";
      w.source = source;
      w.make_inputs = no_input;
      w.default_opt = 2;
      list->push_back(std::move(w));
    };
    add("racy_counter", kRacyCounter);
    add("racy_lastwrite", kRacyLastWrite);
    add("racy_helper_spawn", kRacyHelperSpawn);
    add("safe_mutex", kSafeMutex);
    add("safe_atomic", kSafeAtomic);
    add("safe_join", kSafeJoin);
    add("safe_heap", kSafeHeap);
    return list;
  }();
  return *workloads;
}

}  // namespace polynima::workloads
