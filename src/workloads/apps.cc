// Real-world utility miniatures (§4.2), each preserving the construct
// profile of its namesake: memcached (pthreads + compiler-builtin atomics),
// mongoose (thread-per-batch request dispatch over a jump table), pigz
// (pthread-parallel chunk compression at several levels), and LightFTP —
// including the CVE-2023-24042 race: a session context shared across
// handler threads whose FileName field is reused by the USER command with
// no synchronization (§4.1).
#include "src/workloads/workloads.h"

#include "src/support/rng.h"

namespace polynima::workloads {
namespace {

const char* kMemcached = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern int pthread_mutex_init(long* m, long attr);
extern int pthread_mutex_lock(long* m);
extern int pthread_mutex_unlock(long* m);
extern long malloc(long n);
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();

long nops = 2000;
long nslots = 512;
long* keys;
long* vals;
long shard_mutex[8];
long* ops;        // encoded: key*4 + (is_set ? 1 : 0) + flags
long get_hits = 0;
long get_misses = 0;
long value_sum = 0;
long sets = 0;
long nthreads = 4;

// Slots are partitioned into 8 shard regions of 64 slots; probing wraps
// within the shard so the shard mutex really covers its slots.
long slot_of(long key) {
  long shard = key & 7;
  long within = (key * 2654435761) & 63;
  return shard * 64 + within;
}
long probe_next(long s) {
  long shard = s / 64;
  return shard * 64 + ((s + 1) & 63);
}

long worker(long tid) {
  long chunk = nops / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nops : lo + chunk;
  for (long i = lo; i < hi; i++) {
    long op = ops[i];
    long key = op >> 2;
    long shard = key & 7;
    if (op & 1) {
      // set
      pthread_mutex_lock(&shard_mutex[shard]);
      long s = slot_of(key);
      long probe = 0;
      while (keys[s] != 0 && keys[s] != key && probe < 64) {
        s = probe_next(s);
        probe += 1;
      }
      keys[s] = key;
      vals[s] = key * 31 + 7;
      pthread_mutex_unlock(&shard_mutex[shard]);
      __atomic_fetch_add(&sets, 1);
    } else {
      // get
      pthread_mutex_lock(&shard_mutex[shard]);
      long s = slot_of(key);
      long probe = 0;
      long hit = 0;
      while (keys[s] != 0 && probe < 64) {
        if (keys[s] == key) { hit = 1; break; }
        s = probe_next(s);
        probe += 1;
      }
      long v = hit ? vals[s] : 0;
      pthread_mutex_unlock(&shard_mutex[shard]);
      if (hit) {
        __atomic_fetch_add(&get_hits, 1);
        __atomic_fetch_add(&value_sum, v);
      } else {
        __atomic_fetch_add(&get_misses, 1);
      }
    }
  }
  return 0;
}

int main() {
  poly_srand(99);
  keys = (long*)malloc(nslots * 8);
  vals = (long*)malloc(nslots * 8);
  ops = (long*)malloc(nops * 8);
  for (int i = 0; i < 8; i++) pthread_mutex_init(&shard_mutex[i], 0);
  // 10% sets, 90% gets (the memaslap default proportion), keys 1..255.
  // Pre-populate the whole key space: sets then only overwrite values, so
  // the observable results are independent of get/set interleaving.
  for (long k = 1; k < 256; k++) {
    long s = slot_of(k);
    while (keys[s] != 0) s = probe_next(s);
    keys[s] = k;
    vals[s] = k * 31 + 7;
  }
  for (long i = 0; i < nops; i++) {
    long key = 1 + poly_rand() % 255;
    long is_set = (poly_rand() % 10) == 0;
    ops[i] = key * 4 + is_set;
  }
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  print_i64(sets);
  print_i64(get_hits);
  print_i64(get_misses);
  print_i64(value_sum);
  return 0;
}
)";

const char* kMongoose = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* reqs;        // requests, one per byte pair: method, route
long nreqs;
long responses[4];
long nthreads = 4;

// Method dispatch: dense switch -> jump table in the O2 binary (the command
// dispatch structure real servers have).
long handle(long method, long route) {
  switch (method) {
    case 0: return 200 + route % 7;        // GET
    case 1: return 201 + route % 5;        // POST
    case 2: return 204;                    // HEAD
    case 3: return 200 + route % 3;        // PUT
    case 4: return 202;                    // DELETE
    case 5: return 200;                    // OPTIONS
    case 6: return 405 + route % 2;        // PATCH
    default: return 400;
  }
}

long worker(long tid) {
  long chunk = nreqs / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nreqs : lo + chunk;
  long acc = 0;
  for (long i = lo; i < hi; i++) {
    long method = reqs[i * 2] & 7;
    long route = reqs[i * 2 + 1] & 127;
    acc += handle(method, route) * (1 + route % 3);
  }
  responses[tid] = acc;
  return 0;
}

int main() {
  long bytes = input_len(0);
  nreqs = bytes / 2;
  reqs = (char*)malloc(bytes + 2);
  input_read(0, 0, reqs, bytes);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long total = 0;
  for (int i = 0; i < 4; i++) total += responses[i];
  print_i64(nreqs);
  print_i64(total);
  return 0;
}
)";

const char* kPigz = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* data;
long nbytes;
char* out;
long out_len[4];
long out_sum[4];
long level;        // 1 = fast, 2 = default, 3 = slow (extra delta pass)
long nthreads = 4;

// Run-length encode [lo, hi) into dst; returns encoded length.
long rle(char* src, long lo, long hi, char* dst) {
  long w = 0;
  long i = lo;
  while (i < hi) {
    char c = src[i];
    long run = 1;
    while (i + run < hi && src[i + run] == c && run < 255) run += 1;
    dst[w] = (char)run;
    dst[w + 1] = c;
    w += 2;
    i += run;
  }
  return w;
}

long worker(long tid) {
  long chunk = nbytes / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nbytes : lo + chunk;
  char* dst = out + tid * (nbytes + 16);
  char* tmp = dst + (nbytes / 2) + 8;
  // Level 3 ("slow"): delta-filter pass before RLE; level 2: one RLE pass;
  // level 1 ("fast"): RLE on coarser runs (skip odd offsets).
  long n;
  if (level >= 3) {
    char prev = 0;
    for (long i = lo; i < hi; i++) {
      char cur = data[i];
      tmp[i - lo] = (char)(cur - prev);
      prev = cur;
    }
    n = rle(tmp, 0, hi - lo, dst);
  } else {
    n = rle(data, lo, hi, dst);
  }
  long sum = 0;
  for (long i = 0; i < n; i++) sum += dst[i] & 255;
  out_len[tid] = n;
  out_sum[tid] = sum;
  return 0;
}

int main() {
  nbytes = input_len(0);
  level = 2;
  if (input_len(1) > 0) {
    char lv;
    input_read(1, 0, &lv, 1);
    level = lv - '0';
  }
  data = (char*)malloc(nbytes + 16);
  input_read(0, 0, data, nbytes);
  out = (char*)malloc((nbytes + 16) * 4 + 64);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long total = 0, checksum = 0;
  for (int i = 0; i < 4; i++) { total += out_len[i]; checksum += out_sum[i]; }
  print_i64(total);
  print_i64(checksum);
  return 0;
}
)";

const char* kLightFtp = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_str(char* s);
extern void print_i64(long v);
extern long strcmp(char* a, char* b);
extern long strcpy(char* d, char* s);
extern long stat_path(char* path);
extern long opendir_path(char* path);

// Session context shared by every handler thread: the FileName field is
// reused across commands with no synchronization (CVE-2023-24042).
struct Context {
  char FileName[64];
  char UserName[64];
};
struct Context ctx;

long data_connected = 0;   // "data socket" state
long handler_tid = 0;
long handler_active = 0;

char cmdbuf[4096];
long cmdlen;

// LIST handler thread: blocks until the data socket connects, then opens
// the directory named by the (shared, overwritable) context field.
long list_thread(long unused) {
  while (__atomic_load(&data_connected) == 0) { __pause(); }
  if (opendir_path(ctx.FileName)) {
    print_str("150 LIST ");
    print_str(ctx.FileName);
    print_str("\n");
  } else {
    print_str("550 LIST failed\n");
  }
  return 0;
}

long parse_line(long pos, char* verb, char* arg) {
  long v = 0;
  while (pos < cmdlen && cmdbuf[pos] != ' ' && cmdbuf[pos] != '\n') {
    verb[v] = cmdbuf[pos];
    v += 1;
    pos += 1;
  }
  verb[v] = 0;
  long a = 0;
  if (pos < cmdlen && cmdbuf[pos] == ' ') {
    pos += 1;
    while (pos < cmdlen && cmdbuf[pos] != '\n') {
      arg[a] = cmdbuf[pos];
      a += 1;
      pos += 1;
    }
  }
  arg[a] = 0;
  return pos + 1;
}

int main() {
  cmdlen = input_len(0);
  input_read(0, 0, cmdbuf, cmdlen);
  long pos = 0;
  char verb[64];
  char arg[128];
  while (pos < cmdlen) {
    pos = parse_line(pos, verb, arg);
    if (strcmp(verb, "USER") == 0) {
      strcpy(ctx.UserName, arg);
      // The vulnerable reuse: the user string is also written into the
      // FileName field of the shared context, with no checks.
      strcpy(ctx.FileName, arg);
      print_str("331 user ok\n");
    } else if (strcmp(verb, "LIST") == 0) {
      if (stat_path(arg) == 0) {
        strcpy(ctx.FileName, arg);
        pthread_create(&handler_tid, 0, list_thread, 0);
        handler_active = 1;
        print_str("150 opening data connection\n");
      } else {
        print_str("550 no such directory\n");
      }
    } else if (strcmp(verb, "CONNECT") == 0) {
      __atomic_store(&data_connected, 1);
      if (handler_active) {
        pthread_join(handler_tid, 0);
        handler_active = 0;
      }
      __atomic_store(&data_connected, 0);
      print_str("226 transfer complete\n");
    } else if (strcmp(verb, "QUIT") == 0) {
      print_str("221 bye\n");
      break;
    } else {
      print_str("500 unknown command\n");
    }
  }
  return 0;
}
)";

std::vector<uint8_t> TextInput(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> RandomReqs(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

std::vector<uint8_t> RunnyBytes(uint64_t seed, size_t n) {
  // Compressible data: runs of repeated bytes.
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    uint8_t value = static_cast<uint8_t>(rng.NextBelow(16));
    size_t run = 1 + rng.NextBelow(12);
    for (size_t i = 0; i < run && out.size() < n; ++i) {
      out.push_back(value);
    }
  }
  return out;
}

}  // namespace

const std::vector<Workload>& Apps() {
  static const std::vector<Workload>* workloads = [] {
    auto* list = new std::vector<Workload>;

    Workload memcached;
    memcached.name = "memcached";
    memcached.suite = "apps";
    memcached.source = kMemcached;
    memcached.make_inputs = [](int) {
      return std::vector<std::vector<uint8_t>>{};
    };
    list->push_back(std::move(memcached));

    Workload mongoose;
    mongoose.name = "mongoose";
    mongoose.suite = "apps";
    mongoose.source = kMongoose;
    mongoose.make_inputs = [](int scale) {
      size_t n = scale <= 0 ? 2000 : scale == 1 ? 8000 : 32000;
      return std::vector<std::vector<uint8_t>>{RandomReqs(7, n)};
    };
    list->push_back(std::move(mongoose));

    Workload pigz;
    pigz.name = "pigz";
    pigz.suite = "apps";
    pigz.source = kPigz;
    pigz.make_inputs = [](int scale) {
      size_t n = scale <= 0 ? 8000 : scale == 1 ? 32000 : 128000;
      return std::vector<std::vector<uint8_t>>{RunnyBytes(13, n),
                                               TextInput("2")};
    };
    list->push_back(std::move(pigz));

    Workload lightftp;
    lightftp.name = "lightftp";
    lightftp.suite = "apps";
    lightftp.source = kLightFtp;
    lightftp.make_inputs = [](int) {
      // Benign session: LIST pub, connect, quit. Input 1 = "filesystem".
      return std::vector<std::vector<uint8_t>>{
          TextInput("USER alice\nLIST pub\nCONNECT\nQUIT\n"),
          TextInput(std::string("pub\0data\0/etc/passwd\0", 21))};
    };
    list->push_back(std::move(lightftp));
    return list;
  }();
  return *workloads;
}

}  // namespace polynima::workloads
