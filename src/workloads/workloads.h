// Workload registry: mcc sources + input generators for every benchmark the
// evaluation uses (Table 1-5, Figure 4). Each workload mirrors the construct
// profile of its real-world counterpart — which synchronization primitives
// it uses, whether it has jump tables, callbacks, SIMD kernels, atomics —
// because those constructs are what drive each table's results.
//
// Suites:
//  - phoenix: map-reduce style pthread programs (Table 2). All
//    synchronization comes from external pthread primitives; kmeans uses
//    atomic accumulation (lock xadd) and pca uses qsort, the two constructs
//    outside the Lasagne-like subset (5/7 in Table 1). pca also contains an
//    atomic work-queue loop (the §4.3 false-negative) and histogram an
//    input-gated byte-swap loop (the §4.3 uncovered loop).
//  - gapbs: OpenMP-style graph kernels (Table 3) — gomp_parallel thread
//    entries per iteration plus std::atomic-style CAS/fetch-add.
//    Parameterized on the node-id width (the 32-bit/64-bit columns).
//  - ckit: ConcurrencyKit-style spinlock implementations (Table 5 +
//    spinloop true-negatives). Validation and latency drivers built in.
//  - apps: memcached/mongoose/pigz/LightFTP miniatures (§4.2 + §4.1 CVE).
//  - speclike: SPECint-2006-profile programs for the lift-time comparison
//    (Table 4) with matching indirect-control-flow profiles (mcf/libquantum
//    have none; gobmk/gcc-like are indirect-heavy).
//  - racebench: seeded racy / race-free program pairs for the static
//    concurrency analyzer (src/analyze) and the schedule-exploration
//    cross-validation (racy_* must be caught, safe_* must stay clean).
//  - indirect: landing-pad-annotated indirect-control-flow kernels for the
//    sound recovery pass (--cfg-sound): const function-pointer dispatch
//    tables with masked indices (proven-complete sites) plus one mutable
//    .data hook (the deliberately open site).
#ifndef POLYNIMA_WORKLOADS_WORKLOADS_H_
#define POLYNIMA_WORKLOADS_WORKLOADS_H_

#include <functional>
#include <string>
#include <vector>

namespace polynima::workloads {

struct Workload {
  std::string name;
  std::string suite;
  std::string source;
  // Inputs at a given scale (0 = small, 1 = medium, 2 = large).
  std::function<std::vector<std::vector<uint8_t>>(int scale)> make_inputs;
  // Optimization level the suite is normally built at (O3 in the paper -> 2).
  int default_opt = 2;
  // Compile with endbr64 landing pads at every indirect-transfer target
  // (cc::CompileOptions::landing_pads) — required by the --cfg-sound
  // workloads, harmless elsewhere.
  bool landing_pads = false;
};

const std::vector<Workload>& Phoenix();
// `wide` selects 64-bit node ids (the paper's 64-bit column).
const std::vector<Workload>& Gapbs(bool wide);
const std::vector<Workload>& CkitSpinlocks();
const std::vector<Workload>& Apps();
const std::vector<Workload>& SpecLike();
// Seeded racy (racy_*) / race-free (safe_*) programs for the static race
// detector and its cross-validation against schedule exploration.
const std::vector<Workload>& RaceBench();
// Landing-pad-annotated indirect-control-flow kernels for the --cfg-sound
// evaluation: a const function-pointer dispatch table and a virtual-call
// switchboard, with one deliberately open (mutable-hook) site.
const std::vector<Workload>& Indirect();

// Finds a workload by name across all suites (gapbs resolved as wide).
const Workload* FindWorkload(const std::string& name);

}  // namespace polynima::workloads

#endif  // POLYNIMA_WORKLOADS_WORKLOADS_H_
