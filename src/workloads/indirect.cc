// Indirect-control-flow workloads for the sound-recovery evaluation
// (--cfg-sound, src/analyze/icf). Both programs are compiled with endbr64
// landing pads and dispatch through `const` function-pointer tables indexed
// with `& mask` idioms — the pattern the pointer-provenance analysis can
// bound, so their sites are proven-complete and the cfmiss stubs elide.
// switchboard additionally dispatches through a mutable .data hook slot,
// which must stay open (a store anywhere could retarget it): the suite
// exercises both verdicts and pins the proven/open split in CI.
#include "src/workloads/workloads.h"

#include "src/support/rng.h"

namespace polynima::workloads {
namespace {

std::vector<uint8_t> RandomBytes(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

// Function-pointer dispatch table: an interpreter folding a byte program
// through a const 8-entry op table. Every indirect site masks its index
// (`& 7`), so the feasible target set is exactly the table — all three
// sites prove complete and every function is CfgCert-covered.
const char* kFnptrDispatch = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long op_add(long a, long b) { return a + b; }
long op_sub(long a, long b) { return a - b; }
long op_mul(long a, long b) { return a * b; }
long op_and(long a, long b) { return a & b; }
long op_or(long a, long b) { return a | b; }
long op_xor(long a, long b) { return a ^ b; }
long op_shl(long a, long b) { return a << (b & 15); }
long op_min(long a, long b) { return a < b ? a : b; }

const long (*ops[8])(long, long) = {
  op_add, op_sub, op_mul, op_and, op_or, op_xor, op_shl, op_min
};

char* prog;
long n;

long fold_run(long seed) {
  long acc = seed;
  for (long i = 0; i < n; i++) {
    long b = prog[i] & 255;
    acc = ops[b & 7](acc, b);        // masked index: proven-complete
  }
  return acc;
}

long fold_pairs() {
  long acc = 0;
  for (long i = 0; i + 1 < n; i += 2) {
    long a = prog[i] & 255;
    long b = prog[i + 1] & 255;
    acc += ops[b & 7](a, b);         // masked index: proven-complete
  }
  return acc;
}

int main() {
  n = input_len(0);
  prog = (char*)malloc(n + 16);
  input_read(0, 0, prog, n);
  print_i64(fold_run(1) & 0xffffff);
  print_i64(fold_pairs() & 0xffffff);
  print_i64(ops[n & 7](n, 3) & 0xffff);  // masked index: proven-complete
  return 0;
}
)";

// Virtual-call-like switchboard: a flat kind-major vtable (2 kinds x 4
// methods) in .rodata, plus a mutable audit hook in .data. The vtable sites
// prove complete (two-term masked index arithmetic); the hook site stays
// open — its slot is writable, so no static bound on its target exists.
const char* kSwitchboard = R"(
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long area_rect(long s) { return (s & 63) * ((s >> 6) & 63); }
long peri_rect(long s) { return 2 * ((s & 63) + ((s >> 6) & 63)); }
long diag_rect(long s) { return (s & 63) + ((s >> 6) & 63); }
long kind_rect(long s) { return 1; }
long area_disc(long s) { return 3 * (s & 63) * (s & 63); }
long peri_disc(long s) { return 6 * (s & 63); }
long diag_disc(long s) { return 2 * (s & 63); }
long kind_disc(long s) { return 2; }

const long (*vtbl[8])(long) = {
  area_rect, peri_rect, diag_rect, kind_rect,
  area_disc, peri_disc, diag_disc, kind_disc
};

long audit_none(long s) { return 0; }
long audit_sum(long s) { return s & 1023; }

long (*audit_hook)(long);   // mutable slot: this site must stay open

char* objs;
long n;

long dispatch(long kind, long method, long state) {
  return vtbl[(kind & 1) * 4 + (method & 3)](state);  // proven-complete
}

long sweep() {
  long total = 0;
  for (long i = 0; i < n; i++) {
    long b = objs[i] & 255;
    total += vtbl[b & 7](b * 37 + i);   // masked index: proven-complete
    total += audit_hook(total);         // open: loaded from writable .data
  }
  return total;
}

int main() {
  n = input_len(0);
  objs = (char*)malloc(n + 16);
  input_read(0, 0, objs, n);
  if (n & 1) {
    audit_hook = audit_sum;
  } else {
    audit_hook = audit_none;
  }
  long total = sweep();
  for (long i = 0; i < n; i++) {
    long b = objs[i] & 255;
    total += dispatch(b >> 4, b, b * 11 + i);
  }
  print_i64(total & 0xffffff);
  return 0;
}
)";

}  // namespace

const std::vector<Workload>& Indirect() {
  static const std::vector<Workload>* workloads = [] {
    auto* list = new std::vector<Workload>;
    auto bytes_input = [](uint64_t seed, size_t s, size_t m, size_t l) {
      return [=](int scale) {
        size_t n = scale <= 0 ? s : scale == 1 ? m : l;
        return std::vector<std::vector<uint8_t>>{RandomBytes(seed, n)};
      };
    };
    auto add = [&](const char* name, const char* source, auto inputs) {
      Workload w;
      w.name = name;
      w.suite = "indirect";
      w.source = source;
      w.make_inputs = inputs;
      w.default_opt = 2;
      w.landing_pads = true;
      list->push_back(std::move(w));
    };
    add("fnptr_dispatch", kFnptrDispatch, bytes_input(601, 800, 4000, 16000));
    add("switchboard", kSwitchboard, bytes_input(607, 800, 4000, 16000));
    return list;
  }();
  return *workloads;
}

}  // namespace polynima::workloads
