// Phoenix-style map-reduce workloads (Table 2). All synchronize exclusively
// through external pthread primitives; loop shapes follow the originals.
#include "src/workloads/workloads.h"

#include "src/support/rng.h"

namespace polynima::workloads {
namespace {

std::vector<uint8_t> RandomBytes(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(rng.Next());
  }
  return out;
}

std::vector<uint8_t> RandomText(uint64_t seed, size_t n) {
  Rng rng(seed);
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz      ";
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(kAlpha[rng.NextBelow(32)]);
  }
  return out;
}

size_t ScaleBytes(int scale, size_t small, size_t medium, size_t large) {
  return scale <= 0 ? small : scale == 1 ? medium : large;
}

const char* kHistogram = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern int pthread_mutex_init(long* m, long attr);
extern int pthread_mutex_lock(long* m);
extern int pthread_mutex_unlock(long* m);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long mutex;
long hist[256];
char* data;
long nbytes;
long nthreads = 4;

long worker(long tid) {
  long chunk = nbytes / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nbytes : lo + chunk;
  long local[256];
  for (int i = 0; i < 256; i++) local[i] = 0;
  for (long i = lo; i < hi; i++) {
    int b = data[i] & 255;
    local[b] += 1;
  }
  pthread_mutex_lock(&mutex);
  for (int i = 0; i < 256; i++) hist[i] += local[i];
  pthread_mutex_unlock(&mutex);
  return 0;
}

int main() {
  pthread_mutex_init(&mutex, 0);
  nbytes = input_len(0);
  data = (char*)malloc(nbytes + 16);
  input_read(0, 0, data, nbytes);
  // Byte-order fixup for big-endian sources: never taken on x86 inputs
  // (the uncovered-loop false negative of the paper, section 4.3).
  if (nbytes > 100000000) {
    for (long i = 0; i + 1 < nbytes; i += 2) {
      char t = data[i];
      data[i] = data[i + 1];
      data[i + 1] = t;
    }
  }
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long checksum = 0;
  for (int i = 0; i < 256; i++) checksum += (long)i * hist[i];
  print_i64(checksum);
  return 0;
}
)";

const char* kKmeans = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long malloc(long n);
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();

long npoints = 600;
long nclusters = 8;
long niters = 5;
int* px;
int* py;
long cx[8];
long cy[8];
long sum_x[8];
long sum_y[8];
long count[8];
long nthreads = 4;

long assign_worker(long tid) {
  long total = npoints;
  long nc = nclusters;
  long chunk = total / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? total : lo + chunk;
  for (long i = lo; i < hi; i++) {
    long best = 0;
    long best_d = 0x7fffffffffffffff;
    for (long k = 0; k < nc; k++) {
      long dx = px[i] - cx[k];
      long dy = py[i] - cy[k];
      long d = dx * dx + dy * dy;
      if (d < best_d) { best_d = d; best = k; }
    }
    // Atomic accumulation (compiler builtin -> lock xadd): this is the
    // construct that puts kmeans outside the Lasagne-like subset.
    __atomic_fetch_add(&sum_x[best], (long)px[i]);
    __atomic_fetch_add(&sum_y[best], (long)py[i]);
    __atomic_fetch_add(&count[best], 1);
  }
  return 0;
}

int main() {
  poly_srand(42);
  long total = npoints;
  long nc = nclusters;
  long iters = niters;
  px = (int*)malloc(total * 4);
  py = (int*)malloc(total * 4);
  for (long i = 0; i < total; i++) {
    px[i] = (int)(poly_rand() % 1000);
    py[i] = (int)(poly_rand() % 1000);
  }
  for (long k = 0; k < nc; k++) {
    cx[k] = px[k * 31 % total];
    cy[k] = py[k * 31 % total];
  }
  for (long it = 0; it < iters; it++) {
    for (long k = 0; k < nc; k++) {
      sum_x[k] = 0; sum_y[k] = 0; count[k] = 0;
    }
    long tids[4];
    for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, assign_worker, i);
    for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
    for (long k = 0; k < nc; k++) {
      if (count[k] > 0) {
        cx[k] = sum_x[k] / count[k];
        cy[k] = sum_y[k] / count[k];
      }
    }
  }
  long checksum = 0;
  for (long k = 0; k < nc; k++) {
    checksum += cx[k] * 13 + cy[k] * 7 + count[k];
  }
  print_i64(checksum);
  return 0;
}
)";

const char* kLinearRegression = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long n;
int* xs;
int* ys;
long part_sx[4];
long part_sy[4];
long part_sxx[4];
long part_sxy[4];
long nthreads = 4;

char* raw;
long worker(long tid) {
  long total = n;
  long chunk = total / nthreads;
  long lo = tid * chunk;
  long cnt = tid == nthreads - 1 ? total - lo : chunk;
  // Each worker parses its own chunk of the point file, then runs the
  // packed-SIMD kernel (the paper's linear_regression is a packed sequence
  // of SSE instructions over the mmapped input).
  for (long i = lo; i < lo + cnt; i++) {
    xs[i] = raw[i * 2] & 127;
    ys[i] = (raw[i * 2 + 1] & 127) + 3 * xs[i];
  }
  long sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (long round = 0; round < 8; round++) {
    sx += __vsum_i32(xs + lo, cnt);
    sy += __vsum_i32(ys + lo, cnt);
    sxx += __vdot_i32(xs + lo, xs + lo, cnt);
    sxy += __vdot_i32(xs + lo, ys + lo, cnt);
  }
  part_sx[tid] = sx / 8;
  part_sy[tid] = sy / 8;
  part_sxx[tid] = sxx / 8;
  part_sxy[tid] = sxy / 8;
  return 0;
}

int main() {
  long bytes = input_len(0);
  raw = (char*)malloc(bytes + 16);
  input_read(0, 0, raw, bytes);
  n = bytes / 2;
  long total = n;
  xs = (int*)malloc(total * 4);
  ys = (int*)malloc(total * 4);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < 4; i++) {
    sx += part_sx[i]; sy += part_sy[i];
    sxx += part_sxx[i]; sxy += part_sxy[i];
  }
  // Fixed-point slope/intercept (scaled by 1000).
  long denom = total * sxx - sx * sx;
  long slope1000 = denom == 0 ? 0 : (total * sxy - sx * sy) * 1000 / denom;
  long icept1000 = (sy * 1000 - slope1000 * sx) / total;
  print_i64(slope1000);
  print_i64(icept1000);
  return 0;
}
)";

const char* kMatrixMultiply = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long malloc(long n);
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();

long dim = 40;
int* a;
int* bt;   // b transposed
int* c;
long nthreads = 4;

long worker(long tid) {
  long d = dim;
  long chunk = d / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? d : lo + chunk;
  // Naive scalar inner product (the original Phoenix kernel is not
  // profitably vectorizable due to its access pattern).
  for (long i = lo; i < hi; i++) {
    for (long j = 0; j < d; j++) {
      long acc = 0;
      for (long k = 0; k < d; k++) {
        acc += (long)a[i * d + k] * bt[j * d + k];
      }
      c[i * d + j] = (int)acc;
    }
  }
  return 0;
}

int main() {
  poly_srand(3);
  long d = dim;
  long cells = d * d;
  a = (int*)malloc(cells * 4);
  bt = (int*)malloc(cells * 4);
  c = (int*)malloc(cells * 4);
  for (long i = 0; i < cells; i++) {
    a[i] = (int)(poly_rand() % 10);
    bt[i] = (int)(poly_rand() % 10);
  }
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long checksum = 0;
  for (long i = 0; i < cells; i++) checksum += c[i] * (i % 17);
  print_i64(checksum);
  return 0;
}
)";

const char* kPca = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long malloc(long n);
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();
extern void qsort(long* base, long n, long size, int (*cmp)(long*, long*));

long rows = 96;
long cols = 12;
int* data;
long mean[12];
long cov_diag[12];
long next_row = 0;

int cmp_long(long* a, long* b) {
  if (*a < *b) return -1;
  if (*a > *b) return 1;
  return 0;
}

long mean_worker(long tid) {
  long nc = cols;
  long nr = rows;
  long chunk = nc / 4;
  long lo = tid * chunk;
  long hi = tid == 3 ? nc : lo + chunk;
  for (long j = lo; j < hi; j++) {
    long s = 0;
    for (long i = 0; i < nr; i++) s += data[i * nc + j];
    mean[j] = s / nr;
  }
  return 0;
}

long cov_worker(long unused) {
  // Dynamic work queue: the exit condition depends on an atomic counter
  // over shared memory — synchronized in reality, but the analysis cannot
  // prove it without happens-before reasoning: the paper's pca false
  // negative (section 4.3).
  while (1) {
    long j = __atomic_fetch_add(&next_row, 1);
    if (j >= cols) break;
    long nc = cols;
    long nr = rows;
    long s = 0;
    for (long i = 0; i < nr; i++) {
      long d = data[i * nc + j] - mean[j];
      s += d * d;
    }
    cov_diag[j] = s / nr;
  }
  return 0;
}

int main() {
  poly_srand(11);
  long cells = rows * cols;
  long nc = cols;
  data = (int*)malloc(cells * 4);
  for (long i = 0; i < cells; i++) data[i] = (int)(poly_rand() % 200);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, mean_worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, cov_worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  // Rank the variances (qsort: callback into guest code from libc).
  qsort(cov_diag, nc, 8, cmp_long);
  long checksum = 0;
  for (long j = 0; j < nc; j++) checksum += cov_diag[j] * (j + 1);
  print_i64(checksum);
  return 0;
}
)";

const char* kStringMatch = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

char* text;
long nbytes;
long found[4];
long nthreads = 4;
char key0[6] = "which";
char key1[5] = "that";
char key2[5] = "with";
char key3[5] = "from";

long match_at(char* key, long klen, long pos) {
  for (long k = 0; k < klen; k++) {
    if (text[pos + k] != key[k]) return 0;
  }
  return 1;
}

long worker(long tid) {
  long chunk = nbytes / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nbytes : lo + chunk;
  long local = 0;
  for (long i = lo; i + 5 < hi; i++) {
    local += match_at(key0, 5, i);
    local += match_at(key1, 4, i);
    local += match_at(key2, 4, i);
    local += match_at(key3, 4, i);
  }
  found[tid] = local;
  return 0;
}

int main() {
  nbytes = input_len(0);
  text = (char*)malloc(nbytes + 16);
  input_read(0, 0, text, nbytes);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  long total = 0;
  for (int i = 0; i < 4; i++) total += found[i];
  print_i64(total);
  return 0;
}
)";

const char* kWordCount = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern int pthread_mutex_init(long* m, long attr);
extern int pthread_mutex_lock(long* m);
extern int pthread_mutex_unlock(long* m);
extern long input_len(long idx);
extern long input_read(long idx, long off, char* dst, long n);
extern long malloc(long n);
extern void print_i64(long v);

long mutex;
char* text;
long nbytes;
long buckets[128];
long nthreads = 4;

long worker(long tid) {
  long chunk = nbytes / nthreads;
  long lo = tid * chunk;
  long hi = tid == nthreads - 1 ? nbytes : lo + chunk;
  long local[128];
  for (int i = 0; i < 128; i++) local[i] = 0;
  long h = 0;
  long in_word = 0;
  for (long i = lo; i < hi; i++) {
    char c = text[i];
    if (c != ' ' && c != '\n') {
      h = (h * 31 + c) & 127;
      in_word = 1;
    } else {
      if (in_word) local[h] += 1;
      h = 0;
      in_word = 0;
    }
  }
  if (in_word) local[h] += 1;
  pthread_mutex_lock(&mutex);
  for (int i = 0; i < 128; i++) buckets[i] += local[i];
  pthread_mutex_unlock(&mutex);
  return 0;
}

int main() {
  pthread_mutex_init(&mutex, 0);
  nbytes = input_len(0);
  text = (char*)malloc(nbytes + 16);
  input_read(0, 0, text, nbytes);
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  // Top bucket by simple scan (the reduce step).
  long best = 0;
  long total = 0;
  for (int i = 0; i < 128; i++) {
    total += buckets[i];
    if (buckets[i] > buckets[best]) best = i;
  }
  print_i64(total);
  print_i64(best);
  return 0;
}
)";

}  // namespace

const std::vector<Workload>& Phoenix() {
  static const std::vector<Workload>* workloads = [] {
    auto* list = new std::vector<Workload>;
    auto bytes_input = [](uint64_t seed, size_t s, size_t m, size_t l) {
      return [=](int scale) {
        return std::vector<std::vector<uint8_t>>{
            RandomBytes(seed, ScaleBytes(scale, s, m, l))};
      };
    };
    auto text_input = [](uint64_t seed, size_t s, size_t m, size_t l) {
      return [=](int scale) {
        return std::vector<std::vector<uint8_t>>{
            RandomText(seed, ScaleBytes(scale, s, m, l))};
      };
    };
    auto no_input = [](int) { return std::vector<std::vector<uint8_t>>{}; };

    list->push_back({"histogram", "phoenix", kHistogram,
                     bytes_input(101, 6000, 24000, 96000), 2});
    list->push_back({"kmeans", "phoenix", kKmeans, no_input, 2});
    list->push_back({"linear_regression", "phoenix", kLinearRegression,
                     bytes_input(505, 8000, 32000, 128000), 2});
    list->push_back(
        {"matrix_multiply", "phoenix", kMatrixMultiply, no_input, 2});
    list->push_back({"pca", "phoenix", kPca, no_input, 2});
    list->push_back({"string_match", "phoenix", kStringMatch,
                     text_input(202, 6000, 24000, 96000), 2});
    list->push_back({"word_count", "phoenix", kWordCount,
                     text_input(303, 6000, 24000, 96000), 2});
    return list;
  }();
  return *workloads;
}

}  // namespace polynima::workloads
