// gapbs-style graph kernels (Table 3). Parallelism follows the OpenMP
// lowering: every parallel region is an outlined function entered by freshly
// spawned threads via gomp_parallel (the callback-heavy profile the paper
// identifies as a slowdown source), and synchronization uses
// std::atomic-style builtins (fetch_add / CAS) that compile to lock-prefixed
// instructions.
//
// `NID` is substituted with `int` (the 32-bit column) or `long` (64-bit).
#include "src/workloads/workloads.h"

namespace polynima::workloads {
namespace {

// Shared preamble: uniform-random directed graph in CSR form (plus the
// transpose for pull-style kernels), adjacency lists sorted ascending.
const char* kGraphPreamble = R"(
extern void gomp_parallel(long (*fn)(long, long), long data, long n);
extern long malloc(long n);
extern void print_i64(long v);
extern void poly_srand(long seed);
extern long poly_rand();

long nnodes = 256;
long nthreads = 4;
long nedges;
NID* row;     // CSR offsets (nnodes + 1)
NID* col;     // CSR edges
NID* trow;    // transpose offsets
NID* tcol;    // transpose edges
long* deg;

long node_lo(long tid) { return tid * (nnodes / nthreads); }
long node_hi(long tid) {
  return tid == nthreads - 1 ? nnodes : (tid + 1) * (nnodes / nthreads);
}

void build_graph() {
  poly_srand(12345);
  deg = (long*)malloc((nnodes + 1) * 8);
  row = (NID*)malloc((nnodes + 1) * sizeof(NID));
  trow = (NID*)malloc((nnodes + 1) * sizeof(NID));
  long* tdeg = (long*)malloc((nnodes + 1) * 8);
  for (long u = 0; u < nnodes; u++) {
    deg[u] = 4 + poly_rand() % 8;
  }
  nedges = 0;
  for (long u = 0; u < nnodes; u++) {
    row[u] = (NID)nedges;
    nedges += deg[u];
  }
  row[nnodes] = (NID)nedges;
  col = (NID*)malloc(nedges * sizeof(NID));
  for (long u = 0; u < nnodes; u++) {
    long base = row[u];
    for (long k = 0; k < deg[u]; k++) {
      col[base + k] = (NID)(poly_rand() % nnodes);
    }
    // Sort the adjacency list ascending (tc relies on it).
    for (long i = 1; i < deg[u]; i++) {
      NID v = col[base + i];
      long j = i - 1;
      while (j >= 0 && col[base + j] > v) {
        col[base + j + 1] = col[base + j];
        j = j - 1;
      }
      col[base + j + 1] = v;
    }
  }
  // Transpose.
  for (long u = 0; u <= nnodes; u++) tdeg[u] = 0;
  for (long e = 0; e < nedges; e++) tdeg[col[e]] += 1;
  long acc = 0;
  for (long v = 0; v < nnodes; v++) {
    trow[v] = (NID)acc;
    acc += tdeg[v];
  }
  trow[nnodes] = (NID)acc;
  tcol = (NID*)malloc(nedges * sizeof(NID));
  long* cursor = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) cursor[v] = trow[v];
  for (long u = 0; u < nnodes; u++) {
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      tcol[cursor[v]] = (NID)u;
      cursor[v] += 1;
    }
  }
}
)";

const char* kBfs = R"(
long* depth;
long cur_round;
long changed;

long bfs_step(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    if (depth[u] != cur_round) continue;
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      if (__atomic_cas(&depth[v], -1, cur_round + 1) == -1) {
        __atomic_store(&changed, 1);
      }
    }
  }
  return 0;
}

int main() {
  build_graph();
  depth = (long*)malloc(nnodes * 8);
  for (long i = 0; i < nnodes; i++) depth[i] = -1;
  depth[0] = 0;
  cur_round = 0;
  changed = 1;
  while (changed) {
    changed = 0;
    gomp_parallel(bfs_step, 0, nthreads);
    cur_round += 1;
  }
  long reached = 0, sum = 0;
  for (long i = 0; i < nnodes; i++) {
    if (depth[i] >= 0) { reached += 1; sum += depth[i]; }
  }
  print_i64(reached);
  print_i64(sum);
  return 0;
}
)";

const char* kPr = R"(
long* rank;
long* next;
long scale = 1048576;

long pr_zero(long data, long tid) {
  for (long v = node_lo(tid); v < node_hi(tid); v++) next[v] = 0;
  return 0;
}
long pr_push(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    long d = row[u + 1] - row[u];
    if (d == 0) continue;
    long share = rank[u] / d;
    for (long e = row[u]; e < row[u + 1]; e++) {
      __atomic_fetch_add(&next[col[e]], share);
    }
  }
  return 0;
}
long pr_apply(long data, long tid) {
  long base = scale * 15 / 100 / nnodes;
  for (long v = node_lo(tid); v < node_hi(tid); v++) {
    rank[v] = base + next[v] * 85 / 100;
  }
  return 0;
}

int main() {
  build_graph();
  rank = (long*)malloc(nnodes * 8);
  next = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) rank[v] = scale / nnodes;
  for (long it = 0; it < 10; it++) {
    gomp_parallel(pr_zero, 0, nthreads);
    gomp_parallel(pr_push, 0, nthreads);
    gomp_parallel(pr_apply, 0, nthreads);
  }
  long total = 0, top = 0;
  for (long v = 0; v < nnodes; v++) {
    total += rank[v];
    if (rank[v] > rank[top]) top = v;
  }
  print_i64(total);
  print_i64(top);
  return 0;
}
)";

const char* kPrSpmv = R"(
long* rank;
long* next;
long scale = 1048576;

long spmv_pull(long data, long tid) {
  long base = scale * 15 / 100 / nnodes;
  for (long v = node_lo(tid); v < node_hi(tid); v++) {
    long sum = 0;
    for (long e = trow[v]; e < trow[v + 1]; e++) {
      long u = tcol[e];
      long d = row[u + 1] - row[u];
      if (d > 0) sum += rank[u] / d;
    }
    next[v] = base + sum * 85 / 100;
  }
  return 0;
}
long spmv_swap(long data, long tid) {
  for (long v = node_lo(tid); v < node_hi(tid); v++) rank[v] = next[v];
  return 0;
}

int main() {
  build_graph();
  rank = (long*)malloc(nnodes * 8);
  next = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) rank[v] = scale / nnodes;
  for (long it = 0; it < 10; it++) {
    gomp_parallel(spmv_pull, 0, nthreads);
    gomp_parallel(spmv_swap, 0, nthreads);
  }
  long total = 0, top = 0;
  for (long v = 0; v < nnodes; v++) {
    total += rank[v];
    if (rank[v] > rank[top]) top = v;
  }
  print_i64(total);
  print_i64(top);
  return 0;
}
)";

const char* kCc = R"(
long* comp;
long changed;

long cc_step(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      long cv = __atomic_load(&comp[v]);
      // Atomic min via CAS retry.
      while (1) {
        long cu = __atomic_load(&comp[u]);
        if (cv >= cu) break;
        if (__atomic_cas(&comp[u], cu, cv) == cu) {
          __atomic_store(&changed, 1);
          break;
        }
      }
    }
  }
  return 0;
}

int main() {
  build_graph();
  comp = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) comp[v] = v;
  changed = 1;
  long rounds = 0;
  while (changed) {
    changed = 0;
    gomp_parallel(cc_step, 0, nthreads);
    rounds += 1;
  }
  long ncomp = 0, checksum = 0;
  for (long v = 0; v < nnodes; v++) {
    if (comp[v] == v) ncomp += 1;
    checksum += comp[v];
  }
  print_i64(ncomp);
  print_i64(checksum);
  return 0;
}
)";

const char* kCcSv = R"(
long* comp;
long changed;

// Atomic min via CAS retry; every update monotonically decreases a label,
// so chaotic iteration converges to a unique fixpoint (deterministic output
// under any thread interleaving).
long label_min(long* cell, long value) {
  while (1) {
    long cur = __atomic_load(cell);
    if (value >= cur) return 0;
    if (__atomic_cas(cell, cur, value) == cur) return 1;
  }
}

long sv_hook(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      long cu = __atomic_load(&comp[u]);
      long cv = __atomic_load(&comp[v]);
      if (label_min(&comp[v], cu)) __atomic_store(&changed, 1);
      if (label_min(&comp[u], cv)) __atomic_store(&changed, 1);
    }
  }
  return 0;
}
long sv_compress(long data, long tid) {
  for (long v = node_lo(tid); v < node_hi(tid); v++) {
    long root = __atomic_load(&comp[__atomic_load(&comp[v])]);
    if (label_min(&comp[v], root)) __atomic_store(&changed, 1);
  }
  return 0;
}

int main() {
  build_graph();
  comp = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) comp[v] = v;
  changed = 1;
  long rounds = 0;
  while (changed) {
    changed = 0;
    gomp_parallel(sv_hook, 0, nthreads);
    gomp_parallel(sv_compress, 0, nthreads);
    rounds += 1;
  }
  long ncomp = 0, checksum = 0;
  for (long v = 0; v < nnodes; v++) {
    if (comp[v] == v) ncomp += 1;
    checksum += comp[v] * 3;
  }
  print_i64(ncomp);
  print_i64(checksum);
  return 0;
}
)";

const char* kSssp = R"(
long* dist;
long changed;

long weight_of(long u, long v) { return 1 + (u * 7 + v * 13) % 15; }

long relax(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    long du = __atomic_load(&dist[u]);
    if (du >= 999999999) continue;
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      long nd = du + weight_of(u, v);
      while (1) {
        long dv = __atomic_load(&dist[v]);
        if (nd >= dv) break;
        if (__atomic_cas(&dist[v], dv, nd) == dv) {
          __atomic_store(&changed, 1);
          break;
        }
      }
    }
  }
  return 0;
}

int main() {
  build_graph();
  dist = (long*)malloc(nnodes * 8);
  for (long v = 0; v < nnodes; v++) dist[v] = 999999999;
  dist[0] = 0;
  changed = 1;
  long rounds = 0;
  while (changed) {
    changed = 0;
    gomp_parallel(relax, 0, nthreads);
    rounds += 1;
  }
  long reach = 0, sum = 0;
  for (long v = 0; v < nnodes; v++) {
    if (dist[v] < 999999999) { reach += 1; sum += dist[v]; }
  }
  print_i64(reach);
  print_i64(sum);
  return 0;
}
)";

const char* kBc = R"(
long* depth;
long* sigma;
long* delta;
long cur_round;
long changed;
long scale = 4096;

long bc_forward(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    if (depth[u] != cur_round) continue;
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      if (__atomic_cas(&depth[v], -1, cur_round + 1) == -1) {
        __atomic_store(&changed, 1);
      }
      if (__atomic_load(&depth[v]) == cur_round + 1) {
        __atomic_fetch_add(&sigma[v], sigma[u]);
      }
    }
  }
  return 0;
}
long bc_backward(long data, long tid) {
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    if (depth[u] != cur_round) continue;
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      if (depth[v] == cur_round + 1 && sigma[v] > 0) {
        long contrib = sigma[u] * (scale + delta[v]) / sigma[v];
        __atomic_fetch_add(&delta[u], contrib);
      }
    }
  }
  return 0;
}

int main() {
  build_graph();
  depth = (long*)malloc(nnodes * 8);
  sigma = (long*)malloc(nnodes * 8);
  delta = (long*)malloc(nnodes * 8);
  long total = 0;
  for (long src = 0; src < 2; src++) {
    for (long v = 0; v < nnodes; v++) {
      depth[v] = -1; sigma[v] = 0; delta[v] = 0;
    }
    depth[src] = 0;
    sigma[src] = 1;
    cur_round = 0;
    changed = 1;
    while (changed) {
      changed = 0;
      gomp_parallel(bc_forward, 0, nthreads);
      cur_round += 1;
    }
    long max_round = cur_round;
    for (cur_round = max_round - 1; cur_round >= 0; cur_round--) {
      gomp_parallel(bc_backward, 0, nthreads);
    }
    for (long v = 0; v < nnodes; v++) total += delta[v];
  }
  print_i64(total);
  return 0;
}
)";

const char* kTc = R"(
long total;

long tc_count(long data, long tid) {
  long local = 0;
  for (long u = node_lo(tid); u < node_hi(tid); u++) {
    for (long e = row[u]; e < row[u + 1]; e++) {
      long v = col[e];
      if (v <= u) continue;
      // Intersect adj(u) and adj(v), counting w > v (sorted lists).
      long i = row[u];
      long j = row[v];
      while (i < row[u + 1] && j < row[v + 1]) {
        long a = col[i];
        long b = col[j];
        if (a < b) { i += 1; }
        else if (b < a) { j += 1; }
        else {
          if (a > v) local += 1;
          i += 1;
          j += 1;
        }
      }
    }
  }
  __atomic_fetch_add(&total, local);
  return 0;
}

int main() {
  build_graph();
  total = 0;
  gomp_parallel(tc_count, 0, nthreads);
  print_i64(total);
  return 0;
}
)";

std::string Substitute(const std::string& text, const std::string& nid) {
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = text.find("NID", pos);
    if (hit == std::string::npos) {
      out += text.substr(pos);
      return out;
    }
    out += text.substr(pos, hit - pos);
    out += nid;
    pos = hit + 3;
  }
}

std::vector<Workload> MakeSuite(bool wide) {
  const std::string nid = wide ? "long" : "int";
  auto no_input = [](int) { return std::vector<std::vector<uint8_t>>{}; };
  auto make = [&](const char* name, const char* body) {
    Workload w;
    w.name = name;
    w.suite = wide ? "gapbs64" : "gapbs32";
    w.source = Substitute(std::string(kGraphPreamble) + body, nid);
    w.make_inputs = no_input;
    w.default_opt = 2;
    return w;
  };
  return {
      make("bc", kBc),         make("bfs", kBfs),     make("cc", kCc),
      make("cc_sv", kCcSv),    make("pr", kPr),       make("pr_spmv", kPrSpmv),
      make("sssp", kSssp),     make("tc", kTc),
  };
}

}  // namespace

const std::vector<Workload>& Gapbs(bool wide) {
  static const std::vector<Workload>* wide_suite =
      new std::vector<Workload>(MakeSuite(true));
  static const std::vector<Workload>* narrow_suite =
      new std::vector<Workload>(MakeSuite(false));
  return wide ? *wide_suite : *narrow_suite;
}

}  // namespace polynima::workloads
