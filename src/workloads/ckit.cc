// ConcurrencyKit-style spinlock implementations (Table 5 + §4.3
// true-negatives). Each workload provides lock_acquire/lock_release built
// from compiler builtins that lower to hardware atomic instructions, plus a
// shared driver: a 4-thread validation phase incrementing an unprotected
// counter under the lock, then a single-thread latency phase timing
// lock/unlock pairs with clock_cycles().
//
// ck_hclh is a documented simplification: a CLH lock taken twice (cluster
// hop + global hop), approximating the hierarchical queue's doubled
// acquire cost.
#include "src/workloads/workloads.h"

namespace polynima::workloads {
namespace {

// Driver: with no input, run the 4-thread validation (deterministic output,
// compared against the original binary); with any input, run the
// single-thread latency test from the regression suite (cycles per
// lock/unlock pair — engine-specific by design, Table 5).
const char* kDriver = R"(
extern int pthread_create(long* tid, long attr, long (*fn)(long), long arg);
extern int pthread_join(long tid, long* ret);
extern void print_i64(long v);
extern long clock_cycles();
extern long input_len(long idx);

long counter = 0;
long val_iters = 120;

long worker(long tid) {
  for (long i = 0; i < val_iters; i++) {
    lock_acquire(tid);
    counter += 1;   // plain RMW: only safe because the lock serializes
    lock_release(tid);
  }
  return 0;
}

int main() {
  lock_init();
  if (input_len(0) > 0) {
    // Latency mode.
    long t0 = clock_cycles();
    for (long i = 0; i < 200; i++) {
      lock_acquire(0);
      lock_release(0);
    }
    long dt = clock_cycles() - t0;
    print_i64(dt / 200);
    return 0;
  }
  // Validation mode.
  long tids[4];
  for (int i = 0; i < 4; i++) pthread_create(&tids[i], 0, worker, i);
  for (int i = 0; i < 4; i++) pthread_join(tids[i], 0);
  print_i64(counter);
  return 0;
}
)";

const char* kCas = R"(
long lock_word;
void lock_init() { lock_word = 0; }
void lock_acquire(long tid) {
  while (__atomic_cas(&lock_word, 0, 1) != 0) { __pause(); }
}
void lock_release(long tid) { __atomic_store(&lock_word, 0); }
)";

const char* kFas = R"(
long lock_word;
void lock_init() { lock_word = 0; }
void lock_acquire(long tid) {
  while (__atomic_exchange(&lock_word, 1) != 0) { __pause(); }
}
void lock_release(long tid) { __atomic_store(&lock_word, 0); }
)";

const char* kDec = R"(
long lock_word;
void lock_init() { lock_word = 1; }
void lock_acquire(long tid) {
  while (1) {
    if (__atomic_fetch_add(&lock_word, -1) == 1) return;
    while (__atomic_load(&lock_word) != 1) { __pause(); }
  }
}
void lock_release(long tid) { __atomic_store(&lock_word, 1); }
)";

const char* kSpinlockDefault = R"(
long lock_word;
void lock_init() { lock_word = 0; }
void lock_acquire(long tid) {
  while (1) {
    if (__atomic_load(&lock_word) == 0) {
      if (__atomic_cas(&lock_word, 0, 1) == 0) return;
    }
    __pause();
  }
}
void lock_release(long tid) { __atomic_store(&lock_word, 0); }
)";

const char* kTicket = R"(
long next_ticket;
long now_serving;
void lock_init() { next_ticket = 0; now_serving = 0; }
void lock_acquire(long tid) {
  long t = __atomic_fetch_add(&next_ticket, 1);
  while (__atomic_load(&now_serving) != t) { __pause(); }
}
void lock_release(long tid) {
  __atomic_store(&now_serving, __atomic_load(&now_serving) + 1);
}
)";

const char* kTicketPb = R"(
long next_ticket;
long now_serving;
void lock_init() { next_ticket = 0; now_serving = 0; }
void lock_acquire(long tid) {
  long t = __atomic_fetch_add(&next_ticket, 1);
  while (1) {
    long d = t - __atomic_load(&now_serving);
    if (d == 0) return;
    // Proportional backoff.
    for (long k = 0; k < d * 4; k++) { __pause(); }
  }
}
void lock_release(long tid) {
  __atomic_store(&now_serving, __atomic_load(&now_serving) + 1);
}
)";

const char* kLinux = R"(
long lock_word;  // (next << 16) | owner
void lock_init() { lock_word = 0; }
void lock_acquire(long tid) {
  long old = __atomic_fetch_add(&lock_word, 65536);
  long ticket = (old >> 16) & 65535;
  while ((__atomic_load(&lock_word) & 65535) != ticket) { __pause(); }
}
void lock_release(long tid) { __atomic_fetch_add(&lock_word, 1); }
)";

const char* kAnderson = R"(
long slots[8];
long next_slot;
long owner_slot[8];
void lock_init() {
  for (int i = 0; i < 8; i++) slots[i] = 0;
  slots[0] = 1;
  next_slot = 0;
}
void lock_acquire(long tid) {
  long my = __atomic_fetch_add(&next_slot, 1) & 7;
  while (__atomic_load(&slots[my]) == 0) { __pause(); }
  __atomic_store(&slots[my], 0);
  owner_slot[tid] = my;
}
void lock_release(long tid) {
  long my = owner_slot[tid];
  __atomic_store(&slots[(my + 1) & 7], 1);
}
)";

const char* kMcs = R"(
struct mcs_node { long next; long locked; long pad[6]; };
struct mcs_node nodes[8];
long tail;
void lock_init() { tail = 0; }
void lock_acquire(long tid) {
  struct mcs_node* me = &nodes[tid];
  me->next = 0;
  me->locked = 1;
  long pred = __atomic_exchange(&tail, (long)me);
  if (pred != 0) {
    struct mcs_node* p = (struct mcs_node*)pred;
    __atomic_store(&p->next, (long)me);
    while (__atomic_load(&me->locked) != 0) { __pause(); }
  }
}
void lock_release(long tid) {
  struct mcs_node* me = &nodes[tid];
  if (__atomic_load(&me->next) == 0) {
    if (__atomic_cas(&tail, (long)me, 0) == (long)me) return;
    while (__atomic_load(&me->next) == 0) { __pause(); }
  }
  struct mcs_node* succ = (struct mcs_node*)me->next;
  __atomic_store(&succ->locked, 0);
}
)";

// CLH needs to remember the node it locked; write it explicitly.
const char* kClhFixed = R"(
struct clh_node { long locked; long pad[7]; };
struct clh_node pool[16];
long my_node[8];
long locked_node[8];
long tail;
void lock_init() {
  pool[15].locked = 0;           // dummy: initially unlocked
  tail = (long)&pool[15];
  for (int i = 0; i < 8; i++) my_node[i] = (long)&pool[i];
}
void lock_acquire(long tid) {
  struct clh_node* me = (struct clh_node*)my_node[tid];
  me->locked = 1;
  long pred = __atomic_exchange(&tail, (long)me);
  struct clh_node* p = (struct clh_node*)pred;
  while (__atomic_load(&p->locked) != 0) { __pause(); }
  locked_node[tid] = (long)me;
  my_node[tid] = pred;           // recycle predecessor's node
}
void lock_release(long tid) {
  struct clh_node* mine = (struct clh_node*)locked_node[tid];
  __atomic_store(&mine->locked, 0);
}
)";

const char* kHclh = R"(
// Simplified hierarchical CLH: a cluster-level CLH queue followed by a
// global CLH queue (two enqueue hops per acquire).
struct clh_node { long locked; long pad[7]; };
struct clh_node cpool[16];
struct clh_node gpool[16];
long c_my[8];
long c_locked[8];
long g_my[8];
long g_locked[8];
long ctail[2];
long gtail;
void lock_init() {
  cpool[14].locked = 0;
  cpool[15].locked = 0;
  ctail[0] = (long)&cpool[14];
  ctail[1] = (long)&cpool[15];
  gpool[15].locked = 0;
  gtail = (long)&gpool[15];
  for (int i = 0; i < 8; i++) {
    c_my[i] = (long)&cpool[i];
    g_my[i] = (long)&gpool[i];
  }
}
void lock_acquire(long tid) {
  long cluster = tid & 1;
  struct clh_node* cme = (struct clh_node*)c_my[tid];
  cme->locked = 1;
  long cpred = __atomic_exchange(&ctail[cluster], (long)cme);
  struct clh_node* cp = (struct clh_node*)cpred;
  while (__atomic_load(&cp->locked) != 0) { __pause(); }
  c_locked[tid] = (long)cme;
  c_my[tid] = cpred;
  struct clh_node* gme = (struct clh_node*)g_my[tid];
  gme->locked = 1;
  long gpred = __atomic_exchange(&gtail, (long)gme);
  struct clh_node* gp = (struct clh_node*)gpred;
  while (__atomic_load(&gp->locked) != 0) { __pause(); }
  g_locked[tid] = (long)gme;
  g_my[tid] = gpred;
}
void lock_release(long tid) {
  struct clh_node* gmine = (struct clh_node*)g_locked[tid];
  __atomic_store(&gmine->locked, 0);
  struct clh_node* cmine = (struct clh_node*)c_locked[tid];
  __atomic_store(&cmine->locked, 0);
}
)";

}  // namespace

const std::vector<Workload>& CkitSpinlocks() {
  static const std::vector<Workload>* workloads = [] {
    auto* list = new std::vector<Workload>;
    auto no_input = [](int) { return std::vector<std::vector<uint8_t>>{}; };
    auto add = [&](const char* name, const char* impl) {
      Workload w;
      w.name = name;
      w.suite = "ckit";
      w.source = std::string(impl) + kDriver;
      w.make_inputs = no_input;
      w.default_opt = 2;  // ConcurrencyKit builds at O2
      list->push_back(std::move(w));
    };
    add("ck_anderson", kAnderson);
    add("ck_cas", kCas);
    add("ck_clh", kClhFixed);
    add("ck_dec", kDec);
    add("ck_fas", kFas);
    add("ck_hclh", kHclh);
    add("ck_mcs", kMcs);
    add("ck_spinlock", kSpinlockDefault);
    add("ck_ticket", kTicket);
    add("ck_ticket_pb", kTicketPb);
    add("linux_spinlock", kLinux);
    return list;
  }();
  return *workloads;
}

}  // namespace polynima::workloads
