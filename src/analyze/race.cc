#include "src/analyze/race.h"

#include <algorithm>
#include <optional>

#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::analyze {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;

constexpr int kMaxPairs = 200;
constexpr int kSpawnCap = 8;  // outstanding-spawn saturation

const char* const kArgRegs[] = {"vr_rdi", "vr_rsi", "vr_rdx",
                                "vr_rcx", "vr_r8",  "vr_r9"};

struct Root {
  const Function* entry = nullptr;
  bool is_main = false;
  bool multi_instance = false;
  std::set<const Function*> reachable;
};

// Resolves an ext_call's name through the slot table.
std::string ExtName(const Instruction& call,
                    const std::vector<std::string>& externals) {
  if (call.op() != Op::kCall || call.callee != nullptr ||
      call.intrinsic != "ext_call" || call.num_operands() < 1 ||
      !call.operand(0)->is_const()) {
    return "";
  }
  int64_t slot = static_cast<const ir::Constant*>(call.operand(0))->value();
  if (slot < 0 || static_cast<size_t>(slot) >= externals.size()) {
    return "";
  }
  return externals[static_cast<size_t>(slot)];
}

// True when `inst` is a call that writes the virtual GPR globals — a guest
// call or an engine dispatch (ext_call/cfmiss/trap). Mirrors
// check::RegionDeriver::ApplyCallClobbers; engine intrinsics like parity or
// pause never touch the GPRs.
bool CallClobbersGprs(const Instruction& inst) {
  return inst.op() == Op::kCall &&
         (inst.callee != nullptr || inst.intrinsic == "ext_call" ||
          inst.intrinsic == "cfmiss" || inst.intrinsic == "trap");
}

// Last value stored to virtual register `g` before `call` within its block.
// Returns false when no store is found, the reaching store is non-constant,
// or a call clobbers the (caller-saved) register after the store — callers
// must then degrade conservatively.
bool ResolveRegBefore(const Instruction& call, const Global* g,
                      uint64_t& value) {
  if (g == nullptr || call.parent() == nullptr) {
    return false;
  }
  bool found = false;
  for (const auto& inst : call.parent()->insts()) {
    if (inst.get() == &call) {
      break;
    }
    if (inst->op() == Op::kGlobalStore && inst->global == g) {
      if (inst->operand(0)->is_const()) {
        value = static_cast<uint64_t>(
            static_cast<const ir::Constant*>(inst->operand(0))->value());
        found = true;
      } else {
        found = false;
      }
    } else if (CallClobbersGprs(*inst)) {
      // The argument registers this resolver is used for are all
      // caller-saved: a constant stored before an intervening call is stale
      // by the time `call` executes.
      found = false;
    }
  }
  return found;
}

// Forward CFG reachability: can execution starting at `from` reach `to`?
bool CanReach(const BasicBlock* from, const BasicBlock* to) {
  std::set<const BasicBlock*> seen;
  std::vector<const BasicBlock*> work{from};
  while (!work.empty()) {
    const BasicBlock* cur = work.back();
    work.pop_back();
    if (cur == to) {
      return true;
    }
    if (!seen.insert(cur).second) {
      continue;
    }
    for (const BasicBlock* s : cur->Successors()) {
      work.push_back(s);
    }
  }
  return false;
}

bool BlockOnCycle(const BasicBlock* b) {
  for (const BasicBlock* s : b->Successors()) {
    if (CanReach(s, b)) {
      return true;
    }
  }
  return false;
}

// Direct-call reachability from `entry`; sets `widened` when an indirect
// call (cfmiss) makes the callee set unknowable.
std::set<const Function*> Reachable(const Function* entry, bool& widened) {
  std::set<const Function*> out;
  std::vector<const Function*> work{entry};
  while (!work.empty()) {
    const Function* f = work.back();
    work.pop_back();
    if (!out.insert(f).second) {
      continue;
    }
    for (const auto& b : f->blocks()) {
      for (const auto& inst : b->insts()) {
        if (inst->op() != Op::kCall) {
          continue;
        }
        if (inst->callee != nullptr) {
          work.push_back(inst->callee);
        } else if (inst->intrinsic == "cfmiss") {
          widened = true;
        }
      }
    }
  }
  return out;
}

struct LockFacts {
  // Lockset (constant mutex addresses provably held) before each access.
  std::map<const Instruction*, std::set<uint64_t>> at_access;
};

using Lockset = std::optional<std::set<uint64_t>>;  // nullopt = unvisited (⊤)

void IntersectInto(Lockset& into, const std::set<uint64_t>& s) {
  if (!into.has_value()) {
    into = s;
    return;
  }
  std::set<uint64_t> merged;
  std::set_intersection(into->begin(), into->end(), s.begin(), s.end(),
                        std::inserter(merged, merged.begin()));
  *into = std::move(merged);
}

// Interprocedural lockset fixpoint: a callee's entry lockset is the
// intersection over its (direct) call sites; intra-procedurally block merges
// intersect and only constant-address lock/unlock pairs are tracked.
LockFacts ComputeLocksets(const std::vector<Root>& roots,
                          const std::vector<std::string>& externals,
                          const Global* rdi) {
  LockFacts facts;
  std::map<const Function*, Lockset> entry;
  for (const Root& r : roots) {
    IntersectInto(entry[r.entry], {});
  }
  // Iterate to convergence: the entry-lockset lattice is finite (one set of
  // observed constant mutex addresses per function) and IntersectInto only
  // ever shrinks it, so this terminates. A fixed round cap would be unsound
  // — stopping early leaves entry locksets larger than the true fixpoint,
  // fabricating protection that suppresses real races.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [fn, in] : entry) {
      if (!in.has_value()) {
        continue;
      }
      std::map<const BasicBlock*, Lockset> block_in;
      block_in[fn->entry()] = *in;
      bool local_changed = true;
      while (local_changed) {
        local_changed = false;
        for (const auto& b : fn->blocks()) {
          auto it = block_in.find(b.get());
          if (it == block_in.end() || !it->second.has_value()) {
            continue;
          }
          std::set<uint64_t> cur = *it->second;
          for (const auto& inst : b->insts()) {
            switch (inst->op()) {
              case Op::kLoad:
              case Op::kStore:
              case Op::kAtomicRmw:
              case Op::kCmpXchg: {
                auto [at, inserted] =
                    facts.at_access.emplace(inst.get(), cur);
                if (!inserted && at->second != cur) {
                  std::set<uint64_t> merged;
                  std::set_intersection(
                      at->second.begin(), at->second.end(), cur.begin(),
                      cur.end(), std::inserter(merged, merged.begin()));
                  if (merged != at->second) {
                    at->second = std::move(merged);
                    local_changed = true;
                  }
                }
                break;
              }
              case Op::kCall: {
                std::string name = ExtName(*inst, externals);
                uint64_t mutex = 0;
                if (name == "pthread_mutex_lock") {
                  if (ResolveRegBefore(*inst, rdi, mutex)) {
                    cur.insert(mutex);
                  }
                  // unresolved lock: held set unchanged (under-approximates
                  // protection, over-reports races — the sound direction)
                } else if (name == "pthread_mutex_unlock") {
                  if (ResolveRegBefore(*inst, rdi, mutex)) {
                    cur.erase(mutex);
                  } else {
                    cur.clear();  // could release any lock
                  }
                } else if (inst->callee != nullptr) {
                  // Direct guest call: propagate to the callee's entry and
                  // assume it is lock-balanced on return (documented).
                  Lockset& ce = entry[inst->callee];
                  Lockset before = ce;
                  IntersectInto(ce, cur);
                  if (ce != before) {
                    changed = true;
                  }
                }
                break;
              }
              default:
                break;
            }
          }
          for (const BasicBlock* succ : b->Successors()) {
            Lockset& sin = block_in[succ];
            Lockset before = sin;
            IntersectInto(sin, cur);
            if (sin != before) {
              local_changed = true;
            }
          }
        }
      }
    }
  }
  return facts;
}

struct SpawnFacts {
  // Outstanding spawn count before each instruction of the main function.
  std::map<const Instruction*, int> outstanding;
  // Functions reachable from a main call site with outstanding > 0.
  std::set<const Function*> windowed;
};

// Functions whose execution may leave new threads running when they return:
// they call pthread_create themselves, make an indirect call (cfmiss) that
// could reach one, or directly call such a function. gomp_parallel is
// excluded — it joins its children before returning, so no spawn outlives
// the call. Main's outstanding-spawn dataflow pins the counter at the cap
// across calls into this set: the helper may have started any number of
// threads that main never sees a pthread_create for.
std::set<const Function*> MaySpawnFunctions(
    const lift::LiftedProgram& program,
    const std::vector<std::string>& externals) {
  std::set<const Function*> out;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [addr, fn] : program.functions_by_entry) {
      (void)addr;
      if (out.count(fn) != 0) {
        continue;
      }
      bool spawns = false;
      for (const auto& b : fn->blocks()) {
        for (const auto& inst : b->insts()) {
          if (spawns || inst->op() != Op::kCall) {
            continue;
          }
          if (inst->callee != nullptr) {
            spawns = out.count(inst->callee) != 0;
          } else if (inst->intrinsic == "cfmiss") {
            spawns = true;  // unknown callee: may reach a spawn
          } else {
            spawns = ExtName(*inst, externals) == "pthread_create";
          }
        }
      }
      if (spawns) {
        out.insert(fn);
        changed = true;
      }
    }
  }
  return out;
}

SpawnFacts ComputeSpawnWindow(const Function* main,
                              const std::vector<std::string>& externals,
                              const std::set<const Function*>& may_spawn) {
  SpawnFacts facts;
  std::map<const BasicBlock*, int> block_in;
  block_in[main->entry()] = 0;
  std::set<const Function*> window_seeds;
  // Blocks that call pthread_join, for the structured-join drain below.
  std::vector<const BasicBlock*> join_blocks;
  for (const auto& b : main->blocks()) {
    for (const auto& inst : b->insts()) {
      if (inst->op() == Op::kCall &&
          ExtName(*inst, externals) == "pthread_join") {
        join_blocks.push_back(b.get());
        break;
      }
    }
  }
  // A block sits on a join loop when some join block shares a cycle with it.
  auto on_join_loop = [&](const BasicBlock* b) {
    for (const BasicBlock* j : join_blocks) {
      if ((j == b || (CanReach(b, j) && CanReach(j, b)))) {
        return BlockOnCycle(b);
      }
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& b : main->blocks()) {
      auto it = block_in.find(b.get());
      if (it == block_in.end()) {
        continue;
      }
      int cur = it->second;
      for (const auto& inst : b->insts()) {
        auto [at, inserted] = facts.outstanding.emplace(inst.get(), cur);
        if (!inserted && at->second < cur) {
          at->second = cur;
          changed = true;
        }
        if (inst->op() == Op::kCall) {
          std::string name = ExtName(*inst, externals);
          if (name == "pthread_create") {
            cur = std::min(cur + 1, kSpawnCap);
          } else if (name == "pthread_join") {
            cur = std::max(cur - 1, 0);
          } else if (inst->callee != nullptr) {
            // A helper that can reach a spawn returns with an unknown number
            // of children outstanding: saturate the counter so nothing after
            // the call is treated as quiescent, and window the helper itself
            // (its post-spawn code runs concurrently with the children).
            if (may_spawn.count(inst->callee) != 0) {
              cur = kSpawnCap;
            }
            if (cur > 0) {
              window_seeds.insert(inst->callee);
            }
          } else if (inst->intrinsic == "cfmiss") {
            cur = kSpawnCap;  // unknown callee: may spawn
          }
          // gomp_parallel joins its children internally: no change.
        }
      }
      // Structured-join drain: a pthread_join inside a loop (the canonical
      // "for (i) join(tids[i])" idiom) joins one child per iteration, so on
      // the loop's EXIT edges every outstanding spawn is accounted for —
      // the saturating counter would otherwise stay pinned at its cap and
      // mark everything after the join loop as concurrent forever. Inside
      // the loop (back edges) the count is kept: children genuinely may
      // still run while earlier ones are being joined. This is the one
      // deliberate under-approximation in the detector (DESIGN.md §4e): a
      // join loop that dynamically joins fewer threads than were created
      // defeats it.
      bool join_loop = on_join_loop(b.get());
      for (const BasicBlock* succ : b->Successors()) {
        int out = join_loop && !CanReach(succ, b.get()) ? 0 : cur;
        auto jt = block_in.find(succ);
        if (jt == block_in.end()) {
          block_in[succ] = out;
          changed = true;
        } else if (jt->second < out) {
          jt->second = out;
          changed = true;
        }
      }
    }
  }
  bool widened = false;
  for (const Function* f : window_seeds) {
    for (const Function* r : Reachable(f, widened)) {
      facts.windowed.insert(r);
    }
  }
  return facts;
}

bool RangesOverlap(const AccessInfo& a, const AccessInfo& b) {
  // Inexact addresses (constant base + unresolved non-negative index) extend
  // upward without bound.
  uint64_t a_end = a.const_exact ? a.const_base + a.size : UINT64_MAX;
  uint64_t b_end = b.const_exact ? b.const_base + b.size : UINT64_MAX;
  return a.const_base < b_end && b.const_base < a_end;
}

bool MayAlias(const AccessInfo& a, const AccessInfo& b) {
  AddrKind ka = a.addr_kind;
  AddrKind kb = b.addr_kind;
  if (ka == AddrKind::kSym || kb == AddrKind::kSym) {
    return true;
  }
  if (ka != kb) {
    // Distinct resolved segments (const data vs stack vs heap) are disjoint
    // by the guest memory layout; per-thread stacks and per-instance heap
    // objects keep the symmetric symbolic cases apart.
    return false;
  }
  switch (ka) {
    case AddrKind::kConstData:
      return RangesOverlap(a, b);
    case AddrKind::kStackSym:
      // Each concurrent context owns a private emulated stack.
      return false;
    case AddrKind::kHeapSym: {
      // Same (escaped) allocation site reached from both sides: the object
      // may have been published. Distinct sites are distinct objects.
      for (const Instruction* s : a.sites) {
        if (b.sites.count(s) != 0) {
          return true;
        }
      }
      return false;
    }
    case AddrKind::kSym:
      return true;
  }
  return true;
}

struct Cand {
  const AccessInfo* access = nullptr;
  const Function* fn = nullptr;
  std::set<uint64_t> locks;
  std::vector<int> roots;
  bool quiescent_main = false;  // main-context copy proven child-free
};

bool LocksDisjoint(const Cand& a, const Cand& b) {
  for (uint64_t l : a.locks) {
    if (b.locks.count(l) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

RaceReport DetectRaces(
    const lift::LiftedProgram& program,
    const std::map<const ir::Function*, EscapeResult>& escapes) {
  RaceReport report;
  if (program.module == nullptr) {
    return report;
  }
  auto main_it = program.functions_by_entry.find(program.entry);
  if (main_it == program.functions_by_entry.end()) {
    return report;
  }
  const Function* main_fn = main_it->second;
  const std::vector<std::string>& externals = program.externals;

  // --- thread roots ---
  std::vector<Root> roots;
  roots.push_back({main_fn, true, false, {}});
  std::map<const Function*, int> spawn_count;  // resolved entry -> #sites
  std::map<const Function*, bool> forced_multi;
  bool unresolved_spawn = false;
  for (const auto& [addr, fn] : program.functions_by_entry) {
    (void)addr;
    for (const auto& b : fn->blocks()) {
      for (const auto& inst : b->insts()) {
        std::string name = ExtName(*inst, externals);
        if (name.empty() || !vm::IsThreadSpawnExternal(name)) {
          continue;
        }
        int arg = vm::ThreadEntryArgIndex(name);
        const Global* g = program.module->GetGlobal(kArgRegs[arg]);
        uint64_t entry_addr = 0;
        const Function* entry_fn = nullptr;
        if (ResolveRegBefore(*inst, g, entry_addr)) {
          auto fit = program.functions_by_entry.find(entry_addr);
          if (fit != program.functions_by_entry.end()) {
            entry_fn = fit->second;
          }
        }
        if (entry_fn == nullptr) {
          unresolved_spawn = true;
          continue;
        }
        ++spawn_count[entry_fn];
        if (name == "gomp_parallel" || BlockOnCycle(b.get())) {
          forced_multi[entry_fn] = true;
        }
      }
    }
  }
  for (const auto& [fn, n] : spawn_count) {
    roots.push_back({fn, false, n >= 2 || forced_multi[fn], {}});
  }
  if (unresolved_spawn) {
    // A spawn whose entry we cannot resolve may start any externally
    // callable function, any number of times.
    report.conservative_roots = true;
    for (const auto& [addr, fn] : program.functions_by_entry) {
      (void)addr;
      if (!fn->is_external_entry || fn == main_fn) {
        continue;
      }
      bool present = false;
      for (Root& r : roots) {
        if (r.entry == fn) {
          r.multi_instance = true;
          present = true;
        }
      }
      if (!present) {
        roots.push_back({fn, false, true, {}});
      }
    }
  }
  report.thread_roots = static_cast<int>(roots.size());

  // --- reachability per root ---
  bool widened = false;
  for (Root& r : roots) {
    r.reachable = Reachable(r.entry, widened);
  }
  if (widened) {
    report.conservative_roots = true;
    for (Root& r : roots) {
      for (const auto& [addr, fn] : program.functions_by_entry) {
        (void)addr;
        r.reachable.insert(fn);
      }
    }
  }

  // --- sync facts ---
  const Global* rdi = program.module->GetGlobal("vr_rdi");
  LockFacts locks = ComputeLocksets(roots, externals, rdi);
  SpawnFacts spawn = ComputeSpawnWindow(
      main_fn, externals, MaySpawnFunctions(program, externals));

  // --- candidates ---
  std::vector<Cand> cands;
  std::map<const Instruction*, size_t> cand_index;
  for (size_t ri = 0; ri < roots.size(); ++ri) {
    for (const Function* fn : roots[ri].reachable) {
      auto eit = escapes.find(fn);
      if (eit == escapes.end()) {
        continue;
      }
      for (const AccessInfo& a : eit->second.accesses) {
        if (a.region != Region::kShared) {
          continue;
        }
        auto [cit, inserted] = cand_index.emplace(a.inst, cands.size());
        if (inserted) {
          Cand c;
          c.access = &a;
          c.fn = fn;
          auto lit = locks.at_access.find(a.inst);
          if (lit != locks.at_access.end()) {
            c.locks = lit->second;
          }
          cands.push_back(std::move(c));
        }
        cands[cit->second].roots.push_back(static_cast<int>(ri));
      }
    }
  }
  report.candidate_accesses = static_cast<int>(cands.size());
  for (Cand& c : cands) {
    bool in_main = false;
    for (int ri : c.roots) {
      in_main = in_main || roots[static_cast<size_t>(ri)].is_main;
    }
    if (!in_main) {
      continue;
    }
    if (c.fn == main_fn) {
      auto oit = spawn.outstanding.find(c.access->inst);
      c.quiescent_main = oit == spawn.outstanding.end() || oit->second == 0;
    } else {
      c.quiescent_main = spawn.windowed.count(c.fn) == 0;
    }
  }

  // --- pair enumeration ---
  auto concurrent = [&](const Cand& a, const Cand& b) {
    for (int ra : a.roots) {
      for (int rb : b.roots) {
        const Root& A = roots[static_cast<size_t>(ra)];
        const Root& B = roots[static_cast<size_t>(rb)];
        if (ra == rb) {
          if (A.multi_instance) {
            return true;
          }
          continue;
        }
        if (A.is_main && a.quiescent_main) {
          continue;
        }
        if (B.is_main && b.quiescent_main) {
          continue;
        }
        return true;
      }
    }
    return false;
  };
  std::set<std::tuple<std::string, uint64_t, std::string, uint64_t>> seen;
  for (size_t i = 0; i < cands.size(); ++i) {
    for (size_t j = i; j < cands.size(); ++j) {
      const Cand& a = cands[i];
      const Cand& b = cands[j];
      if (i == j && !a.access->is_write) {
        continue;  // a read racing with itself is not a race
      }
      if (!a.access->is_write && !b.access->is_write) {
        continue;
      }
      if (a.access->is_atomic && b.access->is_atomic) {
        continue;
      }
      if (!MayAlias(*a.access, *b.access) || !LocksDisjoint(a, b) ||
          !concurrent(a, b)) {
        continue;
      }
      std::tuple<std::string, uint64_t, std::string, uint64_t> key{
          a.fn->name(), a.access->guest_address, b.fn->name(),
          b.access->guest_address};
      std::tuple<std::string, uint64_t, std::string, uint64_t> rkey{
          b.fn->name(), b.access->guest_address, a.fn->name(),
          a.access->guest_address};
      if (seen.count(key) != 0 || seen.count(rkey) != 0) {
        continue;
      }
      seen.insert(key);
      if (static_cast<int>(report.pairs.size()) >= kMaxPairs) {
        report.truncated = true;
        break;
      }
      RacePair pair;
      pair.a = {a.fn->name(), a.access->guest_address, a.access->is_write,
                a.access->is_atomic};
      pair.b = {b.fn->name(), b.access->guest_address, b.access->is_write,
                b.access->is_atomic};
      const char* kind =
          a.access->addr_kind == AddrKind::kConstData &&
                  b.access->addr_kind == AddrKind::kConstData
              ? "const-data overlap"
              : "symbolic may-alias";
      pair.reason = StrCat(
          kind, i == j ? ", multi-instance self-race" : "",
          (a.access->is_atomic || b.access->is_atomic) ? ", atomic-vs-plain"
                                                       : "");
      report.pairs.push_back(std::move(pair));
    }
    if (report.truncated) {
      break;
    }
  }
  return report;
}

std::set<uint64_t> RaceHintAddresses(const RaceReport& report) {
  std::set<uint64_t> out;
  for (const RacePair& p : report.pairs) {
    if (p.a.guest_address != 0) {
      out.insert(p.a.guest_address);
    }
    if (p.b.guest_address != 0) {
      out.insert(p.b.guest_address);
    }
  }
  return out;
}

}  // namespace polynima::analyze
