// Pass 1 of the static concurrency analyzer: per-function thread-escape /
// memory-region classification.
//
// Built on the shared provenance dataflow (check::RegionDeriver), this pass
// decides, for every guest memory access in a lifted function, which region
// its address lies in:
//
//   kStackLocal  the emulated stack of the executing thread, and no pointer
//                into that stack ever escaped the thread — provably private;
//   kHeapLocal   an allocation made by this function whose pointer never
//                escapes (not stored outside the pure stack, not passed to a
//                call, not returned, not used atomically) — provably private
//                and eligible for a kHeapLocal fence-elision witness under a
//                sealed check::StaticCert;
//   kShared      everything else: constant-data addresses, escaped objects,
//                unknown provenance. Only these feed the race detector.
//
// Escape rules (conservative in every direction, DESIGN.md §4e):
//   - storing a stack-derived value anywhere but the pure stack, passing it
//     in an argument register at any call site, or holding it in vr_rax at a
//     return marks the whole frame escaped (stack_escaped) — stack accesses
//     then classify kShared;
//   - the same sinks escape an allocation site; additionally a pointer
//     stored *into* another heap object escapes transitively iff that object
//     escapes, and a frame escape spills every site that was ever saved to
//     the stack (a foreign thread could read the spill slot);
//   - atomic operands always escape: atomicity is a sharing intent.
#ifndef POLYNIMA_ANALYZE_ESCAPE_H_
#define POLYNIMA_ANALYZE_ESCAPE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/check/derive.h"
#include "src/ir/ir.h"

namespace polynima::analyze {

enum class Region : uint8_t { kStackLocal, kHeapLocal, kShared };

const char* RegionName(Region r);

// Alias type of an access address, used by the race detector (race.h):
//   kConstData  resolves to a constant data address (+ bounded or unbounded
//               extent) — two const-data accesses alias iff ranges overlap;
//   kStackSym   derived from the emulated stack pointer — each thread's
//               stack is private address space, so two stack-symbolic
//               accesses in different threads never alias;
//   kHeapSym    derived purely from same-function allocation sites — cross
//               thread instances are distinct objects unless a common site
//               escaped;
//   kSym        unknown — may alias anything except provably-disjoint
//               segments is not claimable, so it aliases everything.
enum class AddrKind : uint8_t { kConstData, kStackSym, kHeapSym, kSym };

// One allocation site (ext_call to malloc/calloc/realloc).
struct SiteInfo {
  const ir::Instruction* call = nullptr;
  uint64_t guest_address = 0;  // owning block's guest address
  bool escaped = false;
  std::string reason;  // first escape reason, "" when private
};

// One classified guest memory access (kLoad/kStore/kAtomicRmw/kCmpXchg).
struct AccessInfo {
  const ir::Instruction* inst = nullptr;
  uint64_t guest_address = 0;  // owning block's guest address
  Region region = Region::kShared;
  bool is_write = false;
  bool is_atomic = false;
  uint32_t size = 0;  // access width in bytes
  // The allocation sites a PureHeap address derives from (kHeapLocal and
  // shared-because-escaped heap accesses).
  std::set<const ir::Instruction*> sites;
  // Alias typing for the race detector.
  AddrKind addr_kind = AddrKind::kSym;
  uint64_t const_base = 0;   // kConstData: resolved base address
  bool const_exact = false;  // kConstData: extent is exactly [base, base+size)
};

struct EscapeResult {
  const ir::Function* function = nullptr;
  std::vector<SiteInfo> sites;
  std::vector<AccessInfo> accesses;
  // A pointer into this frame's emulated stack left the thread.
  bool stack_escaped = false;
  std::string stack_escape_reason;
  int stack_local = 0;
  int heap_local = 0;
  int shared = 0;

  int EscapedSiteCount() const {
    int n = 0;
    for (const SiteInfo& s : sites) {
      n += s.escaped ? 1 : 0;
    }
    return n;
  }
};

// Classifies every guest memory access in `f`. `module` resolves the virtual
// argument-register globals; `externals` is the image's slot -> name table.
// `deriver` must have been built over the same function.
EscapeResult AnalyzeEscapes(const ir::Function& f, const ir::Module& module,
                            const check::RegionDeriver& deriver,
                            const std::vector<std::string>& externals);

}  // namespace polynima::analyze

#endif  // POLYNIMA_ANALYZE_ESCAPE_H_
