#include "src/analyze/icf.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "src/check/derive.h"
#include "src/obs/trace.h"
#include "src/support/strings.h"

namespace polynima::analyze {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::Op;
using ir::Value;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Mirrors check/derive.cc: registers the SysV ABI requires a callee to
// preserve. The two lists must agree — the deriver keeps provenance across
// calls for exactly these, and the target solver keeps value facts for the
// same set.
bool IsCalleeSavedGpr(const std::string& name) {
  return name == "vr_rbx" || name == "vr_rbp" || name == "vr_rsp" ||
         name == "vr_r12" || name == "vr_r13" || name == "vr_r14" ||
         name == "vr_r15";
}

// Concrete feasible-value set of one i64 value. Join-semilattice ordered by
// inclusion with an explicit top ("unbounded"); bottom is the empty set
// (unreached code). Everything the solver cannot model goes to top, so a
// bounded fact is a sound over-approximation of the runtime value.
struct Fact {
  bool top = false;
  std::set<uint64_t> values;

  static Fact Top() {
    Fact f;
    f.top = true;
    return f;
  }
  bool bounded() const { return !top; }

  // Joins `o` in, widening to top past `cap` members. Returns true when
  // anything changed.
  bool Join(const Fact& o, size_t cap) {
    if (top) {
      return false;
    }
    if (o.top) {
      top = true;
      values.clear();
      return true;
    }
    bool changed = false;
    for (uint64_t v : o.values) {
      changed = values.insert(v).second || changed;
    }
    if (values.size() > cap) {
      top = true;
      values.clear();
      changed = true;
    }
    return changed;
  }
};

// Reads `size` little-endian bytes at `addr` if the address range lies
// entirely inside a read-only, non-executable segment (.rodata). Only such
// memory is immutable under the execution model — writable segments can
// change at runtime and executable segments are covered by the separate SMC
// guard, not this certificate — so only these reads may feed a proof.
bool ReadRoValue(const binary::Image& image, uint64_t addr, int size,
                 uint64_t* out) {
  const binary::Segment* seg = image.SegmentContaining(addr);
  if (seg == nullptr || !seg->read_only || seg->executable) {
    return false;
  }
  uint64_t off = addr - seg->address;
  if (off + static_cast<uint64_t>(size) > seg->bytes.size()) {
    return false;
  }
  uint64_t v = 0;
  for (int i = size - 1; i >= 0; --i) {
    v = (v << 8) | seg->bytes[off + static_cast<uint64_t>(i)];
  }
  *out = v;
  return true;
}

uint64_t ApplyBinop(Op op, uint64_t a, uint64_t b) {
  switch (op) {
    case Op::kAdd:
      return a + b;
    case Op::kSub:
      return a - b;
    case Op::kMul:
      return a * b;
    case Op::kAnd:
      return a & b;
    case Op::kOr:
      return a | b;
    case Op::kXor:
      return a ^ b;
    case Op::kShl:
      return a << (b & 63);
    case Op::kLShr:
      return a >> (b & 63);
    case Op::kAShr:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
    case Op::kURem:
      return b == 0 ? 0 : a % b;
    default:
      return 0;
  }
}

// Forward dataflow computing a Fact for every instruction of one function.
// State flows through the virtual GPR globals (like check::RegionDeriver)
// and — when the frame is proven non-escaping — through resolved stack spill
// slots, so the mcc `push callee; pop r10; call r10` idiom keeps its fact.
class TargetSolver {
 public:
  TargetSolver(const Function& f, const ir::Module& m,
               const binary::Image& image,
               const check::RegionDeriver& deriver, bool track_slots,
               size_t cap)
      : f_(f),
        image_(image),
        deriver_(deriver),
        track_slots_(track_slots),
        cap_(cap),
        rsp_(m.GetGlobal("vr_rsp")) {
    Solve();
  }

  // Fact of `v` at fixpoint. Bottom (empty set) for unreached instructions.
  Fact FactOf(const Value* v) const {
    if (v == nullptr) {
      return Fact::Top();
    }
    if (v->is_const()) {
      Fact f;
      f.values.insert(
          static_cast<uint64_t>(static_cast<const ir::Constant*>(v)->value()));
      return f;
    }
    if (!v->is_inst()) {
      return Fact::Top();
    }
    auto it = values_.find(static_cast<const Instruction*>(v));
    return it == values_.end() ? Fact{} : it->second;
  }

 private:
  // Bounded facts only: a missing key means "unknown" (top), which makes the
  // function-entry state (empty maps) the correct caller-unknown default.
  struct State {
    std::map<const Global*, Fact> globals;
    std::map<int64_t, Fact> slots;  // 8-byte slots keyed by entry-rsp delta
  };

  template <typename K>
  bool JoinMap(std::map<K, Fact>& into, const std::map<K, Fact>& from) const {
    bool changed = false;
    for (auto it = into.begin(); it != into.end();) {
      auto jt = from.find(it->first);
      if (jt == from.end()) {
        it = into.erase(it);  // other side top
        changed = true;
        continue;
      }
      if (it->second.Join(jt->second, cap_)) {
        changed = true;
        if (it->second.top) {
          it = into.erase(it);
          continue;
        }
      }
      ++it;
    }
    return changed;
  }

  Fact BinopFact(Op op, const Fact& a, const Fact& b) const {
    if (a.bounded() && b.bounded()) {
      if (a.values.empty() || b.values.empty()) {
        return Fact{};  // bottom: an unreached operand
      }
      Fact r;
      for (uint64_t x : a.values) {
        for (uint64_t y : b.values) {
          if (op == Op::kURem && y == 0) {
            return Fact::Top();
          }
          r.values.insert(ApplyBinop(op, x, y));
          if (r.values.size() > cap_) {
            return Fact::Top();
          }
        }
      }
      return r;
    }
    // One side unbounded: masking and modulus still bound the result — the
    // rule that keeps `table[i & 7]` provable when `i` is a loop index the
    // solver cannot enumerate.
    if (op == Op::kAnd) {
      const Fact& m = a.bounded() ? a : b;
      if (m.bounded() && !m.values.empty()) {
        Fact r;
        for (uint64_t mask : m.values) {
          if (mask >= cap_) {
            return Fact::Top();
          }
          for (uint64_t w = 0; w <= mask; ++w) {
            if ((w & mask) == w) {
              r.values.insert(w);
            }
          }
        }
        if (r.values.size() > cap_) {
          return Fact::Top();
        }
        return r;
      }
    }
    if (op == Op::kURem && b.bounded() && !b.values.empty()) {
      if (b.values.count(0) != 0) {
        return Fact::Top();
      }
      uint64_t max_mod = *b.values.rbegin();
      if (max_mod > cap_) {
        return Fact::Top();
      }
      Fact r;
      for (uint64_t w = 0; w < max_mod; ++w) {
        r.values.insert(w);
      }
      return r;
    }
    return Fact::Top();
  }

  Fact LoadFact(const State& state, const Instruction& inst) const {
    const Value* addr = inst.operand(0);
    Fact af = FactOf(addr);
    if (af.bounded() && !af.values.empty()) {
      Fact r;
      bool all_ro = true;
      for (uint64_t a : af.values) {
        uint64_t v = 0;
        if (!ReadRoValue(image_, a, inst.size, &v)) {
          all_ro = false;
          break;
        }
        r.values.insert(v);
      }
      if (all_ro && r.values.size() <= cap_) {
        return r;
      }
    }
    // A reload from a resolved private spill slot re-materializes what was
    // stored there. Only sound when the frame never escapes: no foreign
    // pointer to the frame can exist, so untracked writes cannot alias it
    // (the same aliasing model check::RegionDeriver documents).
    if (track_slots_ && inst.size == 8) {
      const check::Provenance& p = deriver_.ValueOf(addr);
      if (p.PureStack() && p.delta_known) {
        auto it = state.slots.find(p.delta);
        return it != state.slots.end() ? it->second : Fact::Top();
      }
    }
    return Fact::Top();
  }

  // Store-side slot effects: a resolved pure-stack store records (or, when
  // partial, clobbers) its slot; an unresolved or mixed stack address may
  // alias any slot and drops them all; a non-stack address cannot alias the
  // (non-escaped) frame.
  void StoreEffect(State& state, const Value* addr, int size,
                   const Fact* stored) const {
    const check::Provenance& p = deriver_.ValueOf(addr);
    if (!p.stack) {
      return;
    }
    if (!p.PureStack() || !p.delta_known) {
      state.slots.clear();
      return;
    }
    for (auto it = state.slots.begin(); it != state.slots.end();) {
      int64_t s = it->first;
      if (s < p.delta + size && s + 8 > p.delta) {
        it = state.slots.erase(it);
      } else {
        ++it;
      }
    }
    if (track_slots_ && stored != nullptr && size == 8 && stored->bounded() &&
        !stored->values.empty()) {
      state.slots[p.delta] = *stored;
    }
  }

  void CallEffect(State& state, const Instruction& call) const {
    if (call.callee == nullptr && call.intrinsic != "ext_call" &&
        call.intrinsic != "cfmiss" && call.intrinsic != "trap") {
      return;  // engine intrinsics never write the virtual GPRs
    }
    // Everything but the callee-saved GPRs is clobbered at a call boundary
    // (flags and vector state included). vr_rsp is preserved as a *pointer*
    // but not as a value — a guest callee's ret pops the return address, so
    // the register comes back 8 above the stored value (the deriver models
    // the shift; a concrete value fact cannot, so it is dropped).
    for (auto it = state.globals.begin(); it != state.globals.end();) {
      if (!IsCalleeSavedGpr(it->first->name()) ||
          (call.callee != nullptr && it->first->name() == "vr_rsp")) {
        it = state.globals.erase(it);
      } else {
        ++it;
      }
    }
    // The callee runs below the stack pointer of the call: slots at or above
    // the return-address slot survive (the frame is private, so the callee
    // holds no pointer into it). An unresolved stack pointer drops them all.
    if (rsp_ != nullptr) {
      check::Provenance p = deriver_.GlobalBefore(call, rsp_);
      if (p.PureStack() && p.delta_known) {
        for (auto it = state.slots.begin(); it != state.slots.end();) {
          if (it->first < p.delta) {
            it = state.slots.erase(it);
          } else {
            ++it;
          }
        }
        return;
      }
    }
    state.slots.clear();
  }

  bool Transfer(const BasicBlock& b, State state) {
    bool changed = false;
    auto set_value = [&](const Instruction* inst, const Fact& f) {
      changed = values_[inst].Join(f, cap_) || changed;
    };
    for (const auto& inst : b.insts()) {
      switch (inst->op()) {
        case Op::kGlobalLoad: {
          auto it = state.globals.find(inst->global);
          set_value(inst.get(),
                    it != state.globals.end() ? it->second : Fact::Top());
          break;
        }
        case Op::kGlobalStore: {
          Fact f = FactOf(inst->operand(0));
          if (f.bounded()) {
            state.globals[inst->global] = std::move(f);
          } else {
            state.globals.erase(inst->global);
          }
          break;
        }
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kAnd:
        case Op::kOr:
        case Op::kXor:
        case Op::kShl:
        case Op::kLShr:
        case Op::kAShr:
        case Op::kURem:
          set_value(inst.get(),
                    BinopFact(inst->op(), FactOf(inst->operand(0)),
                              FactOf(inst->operand(1))));
          break;
        case Op::kSExt: {
          Fact a = FactOf(inst->operand(0));
          if (!a.bounded()) {
            set_value(inst.get(), Fact::Top());
            break;
          }
          Fact r;
          int w = inst->width;
          for (uint64_t v : a.values) {
            uint64_t e = w >= 64 || w <= 0
                             ? v
                             : static_cast<uint64_t>(
                                   static_cast<int64_t>(v << (64 - w)) >>
                                   (64 - w));
            r.values.insert(e);
          }
          set_value(inst.get(), r);
          break;
        }
        case Op::kICmp: {
          Fact r;
          r.values.insert(0);
          r.values.insert(1);
          set_value(inst.get(), r);
          break;
        }
        case Op::kSelect: {
          Fact r = FactOf(inst->operand(1));
          r.Join(FactOf(inst->operand(2)), cap_);
          set_value(inst.get(), r);
          break;
        }
        case Op::kPhi: {
          Fact r;
          for (int i = 0; i < inst->num_operands(); ++i) {
            r.Join(FactOf(inst->operand(i)), cap_);
          }
          set_value(inst.get(), r);
          break;
        }
        case Op::kLoad:
          set_value(inst.get(), LoadFact(state, *inst));
          break;
        case Op::kStore: {
          Fact stored = FactOf(inst->operand(1));
          StoreEffect(state, inst->operand(0), inst->size, &stored);
          break;
        }
        case Op::kAtomicRmw:
        case Op::kCmpXchg:
          StoreEffect(state, inst->operand(0), inst->size, nullptr);
          set_value(inst.get(), Fact::Top());
          break;
        case Op::kCall:
          CallEffect(state, *inst);
          if (inst->HasResult()) {
            set_value(inst.get(), Fact::Top());
          }
          break;
        case Op::kFence:
        case Op::kBr:
        case Op::kSwitch:
        case Op::kRet:
        case Op::kUnreachable:
          break;
        default:
          if (inst->HasResult()) {
            set_value(inst.get(), Fact::Top());
          }
          break;
      }
    }
    for (BasicBlock* succ : b.Successors()) {
      auto it = block_in_.find(succ);
      if (it == block_in_.end()) {
        block_in_[succ] = state;
        changed = true;
        continue;
      }
      changed = JoinMap(it->second.globals, state.globals) || changed;
      changed = JoinMap(it->second.slots, state.slots) || changed;
    }
    return changed;
  }

  void Solve() {
    if (f_.blocks().empty()) {
      return;
    }
    block_in_[f_.entry()] = {};
    bool changed = true;
    // Monotone over a finite lattice (value sets capped at cap_, state maps
    // only shrink toward top), so this terminates.
    while (changed) {
      changed = false;
      for (const auto& b : f_.blocks()) {
        auto it = block_in_.find(b.get());
        if (it == block_in_.end()) {
          continue;  // not reached (yet)
        }
        changed = Transfer(*b, it->second) || changed;
      }
    }
  }

  const Function& f_;
  const binary::Image& image_;
  const check::RegionDeriver& deriver_;
  const bool track_slots_;
  const size_t cap_;
  const Global* rsp_;
  std::map<const BasicBlock*, State> block_in_;
  std::map<const Instruction*, Fact> values_;
};

}  // namespace

IcfResult AnalyzeIndirectControlFlow(const lift::LiftedProgram& program,
                                     const binary::Image& image,
                                     const cfg::ControlFlowGraph& graph,
                                     const IcfOptions& options) {
  IcfResult result;
  if (program.module == nullptr) {
    return result;
  }
  obs::Span span(options.obs.trace, "analyze", "icf");
  int64_t start_ns = NowNs();
  size_t cap = options.max_targets > 0
                   ? static_cast<size_t>(options.max_targets)
                   : 512;

  std::vector<uint64_t> pads = cfg::CollectLandingPads(image);
  result.landing_pads = static_cast<int>(pads.size());

  // Site inventory: every indirect transfer the recovery found, keyed by the
  // address of the transfer instruction (which is also what the lifter
  // passes to the cfmiss intrinsic).
  struct Inv {
    bool is_call = false;
    uint64_t fn_entry = 0;
    std::string fn_name;
  };
  std::map<uint64_t, Inv> inventory;
  for (const auto& [block_start, b] : graph.blocks) {
    if (b.term != cfg::TermKind::kIndirectJump &&
        b.term != cfg::TermKind::kIndirectCall) {
      continue;
    }
    const cfg::FunctionInfo* fi = graph.FunctionOwning(block_start);
    Inv inv;
    inv.is_call = b.term == cfg::TermKind::kIndirectCall;
    if (fi != nullptr) {
      inv.fn_entry = fi->entry;
      inv.fn_name = fi->name;
    }
    inventory[b.term_address] = std::move(inv);
  }
  result.sites_total = static_cast<int>(inventory.size());

  // A site shared by several lifted functions (block multi-membership) must
  // be proven in every context; targets accumulate across contexts.
  struct Accum {
    bool proven = true;
    std::set<uint64_t> targets;
    std::string reason;
  };
  std::map<uint64_t, Accum> accum;
  auto add_reason = [](Accum& acc, const std::string& r) {
    if (acc.reason.empty()) {
      acc.reason = r;
    }
  };

  // Per lifted function: which sites must be proven for the function to
  // count as fully covered, and whether any *other* uncovered block (trap,
  // bare unreachable, cfmiss outside the inventory) forbids coverage.
  struct FnCover {
    uint64_t entry = 0;
    std::string name;
    bool provable = true;
    std::set<uint64_t> needs;
  };
  std::vector<FnCover> covers;

  for (const auto& [entry, fn] : program.functions_by_entry) {
    // Locate this function's cfmiss sites and any other uncovered block
    // (mirrors the tier-1 IsUncovered test: kUnreachable or a cfmiss/trap
    // intrinsic call makes a block uncovered).
    std::vector<const Instruction*> miss_sites;
    FnCover cover;
    cover.entry = entry;
    cover.name = fn->name();
    for (const auto& b : fn->blocks()) {
      bool uncovered = false;
      uint64_t site_ta = 0;
      const Instruction* site_inst = nullptr;
      for (const auto& inst : b->insts()) {
        if (inst->op() == Op::kUnreachable) {
          uncovered = true;
        } else if (inst->op() == Op::kCall && inst->callee == nullptr &&
                   (inst->intrinsic == "cfmiss" ||
                    inst->intrinsic == "trap")) {
          uncovered = true;
          if (inst->intrinsic == "cfmiss" && inst->num_operands() >= 2 &&
              inst->operand(1)->is_const()) {
            uint64_t ta = static_cast<uint64_t>(
                static_cast<const ir::Constant*>(inst->operand(1))->value());
            if (inventory.count(ta) != 0) {
              site_ta = ta;
              site_inst = inst.get();
            }
          }
        }
      }
      if (!uncovered) {
        continue;
      }
      if (site_inst == nullptr) {
        cover.provable = false;  // uncovered block elision cannot remove
      } else {
        cover.needs.insert(site_ta);
        miss_sites.push_back(site_inst);
      }
    }
    if (miss_sites.empty()) {
      continue;  // no indirect sites: nothing to classify here
    }

    check::RegionDeriver deriver(*fn, program.externals);
    check::EscapeFacts escapes =
        check::ComputeEscapeFacts(*fn, *program.module, deriver);
    TargetSolver solver(*fn, *program.module, image, deriver,
                        /*track_slots=*/!escapes.stack_escaped, cap);

    for (const Instruction* site : miss_sites) {
      uint64_t ta = static_cast<uint64_t>(
          static_cast<const ir::Constant*>(site->operand(1))->value());
      Accum& acc = accum[ta];
      Fact f = solver.FactOf(site->operand(0));
      if (!f.bounded()) {
        acc.proven = false;
        add_reason(acc, escapes.stack_escaped
                            ? "target value unbounded (frame escapes: " +
                                  escapes.stack_reason + ")"
                            : "target value unbounded");
        continue;
      }
      if (f.values.empty()) {
        acc.proven = false;
        add_reason(acc, "site unreachable in lifted IR");
        continue;
      }
      bool all_pads = true;
      uint64_t bad = 0;
      for (uint64_t t : f.values) {
        if (!std::binary_search(pads.begin(), pads.end(), t)) {
          all_pads = false;
          bad = t;
          break;
        }
      }
      if (!all_pads) {
        acc.proven = false;
        add_reason(acc, StrCat("feasible target ", HexString(bad),
                               " is not a landing pad"));
        continue;
      }
      acc.targets.insert(f.values.begin(), f.values.end());
    }
    covers.push_back(std::move(cover));
  }

  for (const auto& [ta, inv] : inventory) {
    IcfSite s;
    s.transfer_address = ta;
    s.is_call = inv.is_call;
    s.function_entry = inv.fn_entry;
    s.function_name = inv.fn_name;
    auto it = accum.find(ta);
    if (it == accum.end()) {
      s.proven = false;
      s.reason = "no lifted context reaches the site";
    } else if (!it->second.proven) {
      s.proven = false;
      s.reason = it->second.reason;
    } else {
      s.proven = true;
      s.targets.assign(it->second.targets.begin(), it->second.targets.end());
      s.reason = StrCat("bounded to ", s.targets.size(),
                        " landing-pad target", s.targets.size() == 1 ? "" : "s");
    }
    (s.proven ? result.sites_proven : result.sites_open) += 1;
    result.site_summaries.push_back(
        StrCat(s.function_name.empty() ? "?" : s.function_name, "@",
               HexString(ta), ": ", s.proven ? "proven" : "open", " (",
               s.reason, ")"));
    result.sites.push_back(std::move(s));
  }

  std::set<uint64_t> proven_tas;
  for (const auto& [ta, acc] : accum) {
    if (acc.proven) {
      proven_tas.insert(ta);
    }
  }
  for (const FnCover& c : covers) {
    if (!c.provable || c.needs.empty()) {
      continue;
    }
    bool ok = true;
    for (uint64_t ta : c.needs) {
      if (proven_tas.count(ta) == 0) {
        ok = false;
        break;
      }
    }
    if (ok) {
      IcfCoveredFunction f;
      f.entry = c.entry;
      f.name = c.name;
      result.covered_functions.push_back(std::move(f));
    }
  }

  result.analyze_ns = NowNs() - start_ns;
  span.Arg("landing_pads", static_cast<int64_t>(result.landing_pads));
  span.Arg("sites_proven", static_cast<int64_t>(result.sites_proven));
  span.Arg("sites_open", static_cast<int64_t>(result.sites_open));
  return result;
}

std::string IcfResult::Summary() const {
  return StrCat("icf: ", landing_pads, " landing pads, ", sites_total,
                " indirect sites (", sites_proven, " proven, ", sites_open,
                " open), ", covered_functions.size(),
                " fully-covered function",
                covered_functions.size() == 1 ? "" : "s");
}

json::Value IcfResult::ToJson() const {
  json::Object doc;
  doc["schema"] = "polynima-icf/v1";
  doc["landing_pads"] = landing_pads;
  doc["sites_total"] = sites_total;
  doc["sites_proven"] = sites_proven;
  doc["sites_open"] = sites_open;
  doc["analyze_ns"] = analyze_ns;
  json::Array covered;
  for (const IcfCoveredFunction& f : covered_functions) {
    json::Object o;
    o["entry"] = f.entry;
    o["name"] = f.name;
    covered.push_back(std::move(o));
  }
  doc["covered_functions"] = std::move(covered);
  json::Array sites_json;
  for (const IcfSite& s : sites) {
    json::Object o;
    o["transfer_address"] = s.transfer_address;
    o["function"] = s.function_name;
    o["function_entry"] = s.function_entry;
    o["call"] = s.is_call;
    o["proven"] = s.proven;
    json::Array targets;
    for (uint64_t t : s.targets) {
      targets.push_back(t);
    }
    o["targets"] = std::move(targets);
    o["reason"] = s.reason;
    sites_json.push_back(std::move(o));
  }
  doc["sites"] = std::move(sites_json);
  return doc;
}

check::CfgCert MakeCfgCert(const IcfResult& result,
                           const binary::Image& image) {
  check::CfgCert cert;
  cert.binary_key = check::BinaryKey(image);
  cert.landing_pads = result.landing_pads;
  cert.sites_proven = result.sites_proven;
  cert.sites_open = result.sites_open;
  for (const IcfSite& s : result.sites) {
    if (!s.proven) {
      continue;
    }
    check::CfgCert::Site cs;
    cs.transfer_address = s.transfer_address;
    cs.is_call = s.is_call;
    cs.targets = s.targets;
    cert.sites.push_back(std::move(cs));
  }
  for (const IcfCoveredFunction& f : result.covered_functions) {
    cert.covered_functions.push_back(f.entry);
  }
  cert.site_summaries = result.site_summaries;
  cert.Seal();
  return cert;
}

}  // namespace polynima::analyze
