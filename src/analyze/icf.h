// Sound indirect control-flow recovery (--cfg-sound): classifies every
// indirect jump / indirect call site of the lifted program as
//
//   proven-complete  the feasible target set was bounded by a concrete-set
//                    value analysis over the lifted IR (constants, masked
//                    indices, loads from read-only tables, spill slots of a
//                    non-escaping frame) and every member is an endbr64
//                    landing pad — the site cannot transfer anywhere else;
//   open             the target derives from a writable location, an
//                    unbounded computation, or an escaped frame — dynamic
//                    recovery (cfmiss) must stay in place.
//
// A proven site's target set is sealed into a check::CfgCert bound to the
// image fingerprint; the lifter consuming a valid cert replaces the cfmiss
// stub at that site with a covered dispatcher-fallback block, which in turn
// lets tiers 1 and 2 drop their uncovered-edge deopt guards. Soundness
// argument: DESIGN.md §4i.
#ifndef POLYNIMA_ANALYZE_ICF_H_
#define POLYNIMA_ANALYZE_ICF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/cfg/cfg.h"
#include "src/check/witness.h"
#include "src/lift/lifter.h"
#include "src/obs/report.h"
#include "src/support/json.h"

namespace polynima::analyze {

struct IcfOptions {
  // Concrete-set widening cap: a value whose feasible set would exceed this
  // many members degrades to "unbounded" (matches the jump-table read cap).
  int max_targets = 512;
  // Observability sinks (all nullable).
  obs::Session obs;
};

// Classification of one indirect transfer site.
struct IcfSite {
  uint64_t transfer_address = 0;  // address of the jmp r/m | call r/m
  uint64_t function_entry = 0;    // guest entry of the owning function
  std::string function_name;      // "fn_<hex>"
  bool is_call = false;           // kIndirectCall (else kIndirectJump)
  bool proven = false;
  std::vector<uint64_t> targets;  // proven: sorted complete feasible set
  std::string reason;             // why proven / why open
};

// A function all of whose indirect sites are proven: its tier-1/2 code keeps
// zero uncovered-edge guards, so tierprof must report zero uncovered-edge
// deopts for it (the `report --validate` cross-check).
struct IcfCoveredFunction {
  uint64_t entry = 0;
  std::string name;
};

struct IcfResult {
  int landing_pads = 0;   // endbr64 pads found in the image
  int sites_total = 0;
  int sites_proven = 0;
  int sites_open = 0;
  int64_t analyze_ns = 0;
  std::vector<IcfSite> sites;
  std::vector<IcfCoveredFunction> covered_functions;
  // One line per site: "function@addr: proven|open (reason)".
  std::vector<std::string> site_summaries;

  std::string Summary() const;
  // "icf" section of the analysis report (polynima-icf/v1).
  json::Value ToJson() const;
};

// Runs the target-set analysis over every lifted function containing an
// indirect transfer. `graph` supplies the site inventory (blocks whose
// terminator is kIndirectJump / kIndirectCall); the lifted IR supplies the
// dataflow; the image supplies landing pads and read-only table bytes.
IcfResult AnalyzeIndirectControlFlow(const lift::LiftedProgram& program,
                                     const binary::Image& image,
                                     const cfg::ControlFlowGraph& graph,
                                     const IcfOptions& options = {});

// Mints the sealed certificate binding this analysis to `image`.
check::CfgCert MakeCfgCert(const IcfResult& result,
                           const binary::Image& image);

}  // namespace polynima::analyze

#endif  // POLYNIMA_ANALYZE_ICF_H_
