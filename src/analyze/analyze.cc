#include "src/analyze/analyze.h"

#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace polynima::analyze {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AnalysisResult AnalyzeProgram(const lift::LiftedProgram& program,
                              const AnalyzeOptions& options) {
  AnalysisResult result;
  if (program.module == nullptr) {
    return result;
  }
  obs::Span span(options.obs.trace, "analyze", "static-concurrency");
  int64_t start = NowNs();

  std::vector<const ir::Function*> functions;
  for (const auto& [addr, fn] : program.functions_by_entry) {
    (void)addr;
    functions.push_back(fn);
  }
  result.functions = static_cast<int>(functions.size());

  // Per-function escape pass on the shared thread pool. Results land in a
  // pre-sized vector, so workers never touch shared state.
  std::vector<EscapeResult> per_function(functions.size());
  ThreadPool pool(ThreadPool::ResolveJobs(options.jobs));
  const obs::Session& obs = options.obs;
  pool.ParallelFor(functions.size(), [&](size_t i) {
    int64_t t0 = NowNs();
    check::RegionDeriver deriver(*functions[i], program.externals);
    per_function[i] = AnalyzeEscapes(*functions[i], *program.module, deriver,
                                     program.externals);
    obs.Observe(obs::Histogram::kAnalyzeFunctionNs,
                static_cast<uint64_t>(NowNs() - t0));
    return Status::Ok();
  });

  for (size_t i = 0; i < functions.size(); ++i) {
    EscapeResult& er = per_function[i];
    result.accesses += static_cast<int>(er.accesses.size());
    result.stack_local += er.stack_local;
    result.heap_local += er.heap_local;
    result.shared += er.shared;
    result.alloc_sites += static_cast<int>(er.sites.size());
    result.escaped_sites += er.EscapedSiteCount();
    for (const SiteInfo& s : er.sites) {
      if (s.escaped) {
        result.site_summaries.push_back(
            StrCat(functions[i]->name(), "@", HexString(s.guest_address),
                   ": alloc escapes (", s.reason, ")"));
      }
    }
    if (er.stack_escaped) {
      result.site_summaries.push_back(StrCat(functions[i]->name(),
                                             ": frame escapes (",
                                             er.stack_escape_reason, ")"));
    }
    result.escapes.emplace(functions[i], std::move(er));
  }

  result.races = DetectRaces(program, result.escapes);
  for (const RacePair& p : result.races.pairs) {
    result.site_summaries.push_back(
        StrCat("race: ", p.a.function, "@", HexString(p.a.guest_address),
               (p.a.is_write ? " W" : " R"), " <-> ", p.b.function, "@",
               HexString(p.b.guest_address), (p.b.is_write ? " W" : " R"),
               " (", p.reason, ")"));
  }

  result.analyze_ns = NowNs() - start;

  obs.Add(obs::Counter::kAnalyzeAccessesClassified,
          static_cast<uint64_t>(result.accesses));
  obs.Add(obs::Counter::kAnalyzeStackLocal,
          static_cast<uint64_t>(result.stack_local));
  obs.Add(obs::Counter::kAnalyzeHeapLocal,
          static_cast<uint64_t>(result.heap_local));
  obs.Add(obs::Counter::kAnalyzeShared,
          static_cast<uint64_t>(result.shared));
  obs.Add(obs::Counter::kAnalyzeEscapedSites,
          static_cast<uint64_t>(result.escaped_sites));
  obs.Add(obs::Counter::kAnalyzeRacePairs,
          static_cast<uint64_t>(result.races.pairs.size()));
  span.Arg("functions", static_cast<int64_t>(result.functions));
  span.Arg("race_pairs", static_cast<int64_t>(result.races.pairs.size()));
  return result;
}

std::string AnalysisResult::Summary() const {
  std::string out = StrCat(
      "analyze: ", functions, " functions, ", accesses, " accesses (",
      stack_local, " stack-local, ", heap_local, " heap-local, ", shared,
      " shared), ", alloc_sites, " alloc sites (", escaped_sites,
      " escaped), ", races.pairs.size(), " race pair",
      races.pairs.size() == 1 ? "" : "s");
  if (races.conservative_roots) {
    out += " [conservative roots]";
  }
  if (races.truncated) {
    out += " [truncated]";
  }
  if (heap_witnesses > 0 || fences_elided > 0) {
    out += StrCat("; ", heap_witnesses, " heap witnesses, ", fences_elided,
                  " fences elided statically");
  }
  return out;
}

json::Value AnalysisResult::ToJson() const {
  json::Object doc;
  doc["schema"] = "polynima-analyze/v1";
  doc["functions"] = functions;
  doc["accesses"] = accesses;
  doc["stack_local"] = stack_local;
  doc["heap_local"] = heap_local;
  doc["shared"] = shared;
  doc["alloc_sites"] = alloc_sites;
  doc["escaped_sites"] = escaped_sites;
  doc["heap_witnesses"] = heap_witnesses;
  doc["fences_elided_static"] = fences_elided;
  doc["analyze_ns"] = analyze_ns;
  doc["thread_roots"] = races.thread_roots;
  doc["candidate_accesses"] = races.candidate_accesses;
  doc["conservative_roots"] = races.conservative_roots;
  doc["truncated"] = races.truncated;
  json::Array pairs;
  for (const RacePair& p : races.pairs) {
    json::Object pair;
    auto side = [](const RaceAccess& a) {
      json::Object o;
      o["function"] = a.function;
      o["guest_address"] = a.guest_address;
      o["write"] = a.is_write;
      o["atomic"] = a.is_atomic;
      return o;
    };
    pair["a"] = side(p.a);
    pair["b"] = side(p.b);
    pair["reason"] = p.reason;
    pairs.push_back(std::move(pair));
  }
  doc["race_pairs"] = std::move(pairs);
  return doc;
}

check::StaticCert MakeStaticCert(const AnalysisResult& result,
                                 const binary::Image& image) {
  check::StaticCert cert;
  cert.binary_key = check::BinaryKey(image);
  cert.functions_analyzed = result.functions;
  cert.alloc_sites = result.alloc_sites;
  cert.escaped_sites = result.escaped_sites;
  cert.heap_witnesses = result.heap_witnesses;
  cert.shared_accesses = result.shared;
  cert.race_pairs = static_cast<int>(result.races.pairs.size());
  cert.site_summaries = result.site_summaries;
  cert.Seal();
  return cert;
}

}  // namespace polynima::analyze
