#include "src/analyze/escape.h"

#include "src/support/strings.h"
#include "src/vm/external.h"

namespace polynima::analyze {

namespace {

using check::Provenance;
using check::RegionDeriver;
using ir::Instruction;
using ir::Op;

uint64_t BlockGuestAddress(const Instruction& inst) {
  return inst.parent() != nullptr ? inst.parent()->guest_address : 0;
}

// Resolves an address expression built purely from constants and integer
// arithmetic to a constant base. `exact` is true when the whole expression
// folded (extent is the access width); false when an unresolved non-negative
// index term remains (extent unbounded upward). Only meaningful when the
// value's provenance is Bottom — a pointer-derived term would make the
// resolved constant an offset, not a base.
bool ResolveConstBase(const ir::Value* v, int depth, uint64_t& base,
                      bool& exact) {
  if (v == nullptr) {
    return false;
  }
  if (v->is_const()) {
    base = static_cast<uint64_t>(static_cast<const ir::Constant*>(v)->value());
    exact = true;
    return true;
  }
  if (!v->is_inst() || depth <= 0) {
    return false;
  }
  const auto* inst = static_cast<const Instruction*>(v);
  uint64_t lb = 0, rb = 0;
  bool le = false, re = false;
  switch (inst->op()) {
    case Op::kAdd: {
      bool lok = ResolveConstBase(inst->operand(0), depth - 1, lb, le);
      bool rok = ResolveConstBase(inst->operand(1), depth - 1, rb, re);
      if (lok && rok) {
        base = lb + rb;
        exact = le && re;
        return true;
      }
      if (lok || rok) {
        base = lok ? lb : rb;
        exact = false;  // base + unknown (assumed non-negative) index
        return true;
      }
      return false;
    }
    case Op::kSub: {
      if (!ResolveConstBase(inst->operand(0), depth - 1, lb, le) ||
          !ResolveConstBase(inst->operand(1), depth - 1, rb, re)) {
        return false;  // subtracting an unknown would lower the base
      }
      base = lb - rb;
      exact = le && re;
      return true;
    }
    default:
      return false;
  }
}

void ClassifyAddress(AccessInfo& a, const Provenance& p) {
  if (p.PureStack()) {
    a.addr_kind = AddrKind::kStackSym;
  } else if (p.PureHeap()) {
    a.addr_kind = AddrKind::kHeapSym;
    a.sites = p.allocs;
  } else if (p.Bottom() &&
             ResolveConstBase(a.inst->operand(0), 8, a.const_base,
                              a.const_exact)) {
    a.addr_kind = AddrKind::kConstData;
  } else {
    a.addr_kind = AddrKind::kSym;
  }
}

}  // namespace

const char* RegionName(Region r) {
  switch (r) {
    case Region::kStackLocal:
      return "stack-local";
    case Region::kHeapLocal:
      return "heap-local";
    case Region::kShared:
      return "shared";
  }
  return "?";
}

EscapeResult AnalyzeEscapes(const ir::Function& f, const ir::Module& module,
                            const RegionDeriver& deriver,
                            const std::vector<std::string>& externals) {
  (void)externals;  // the deriver already carries the name table
  EscapeResult out;
  out.function = &f;

  // The sink walk is the canonical one in src/check/derive — the TSO
  // checker re-runs the exact same code to verify what we stamp.
  check::EscapeFacts facts = check::ComputeEscapeFacts(f, module, deriver);
  out.stack_escaped = facts.stack_escaped;
  out.stack_escape_reason = facts.stack_reason;
  for (const Instruction* call : deriver.alloc_sites()) {
    SiteInfo s;
    s.call = call;
    s.guest_address = BlockGuestAddress(*call);
    s.escaped = facts.SiteEscaped(call);
    if (s.escaped) {
      s.reason = facts.reasons.at(call);
    }
    out.sites.push_back(std::move(s));
  }

  for (const auto& b : f.blocks()) {
    for (const auto& inst : b->insts()) {
      bool atomic =
          inst->op() == Op::kAtomicRmw || inst->op() == Op::kCmpXchg;
      if (inst->op() != Op::kLoad && inst->op() != Op::kStore && !atomic) {
        continue;
      }
      AccessInfo a;
      a.inst = inst.get();
      a.guest_address = BlockGuestAddress(*inst);
      a.is_write = inst->op() != Op::kLoad;
      a.is_atomic = atomic;
      a.size = static_cast<uint32_t>(inst->size);
      const Provenance& p = deriver.ValueOf(inst->operand(0));
      ClassifyAddress(a, p);
      if (atomic) {
        a.region = Region::kShared;  // sharing intent by construction
      } else if (p.PureStack() && !out.stack_escaped) {
        a.region = Region::kStackLocal;
      } else if (p.PureHeap()) {
        bool all_private = true;
        for (const Instruction* site : p.allocs) {
          all_private = all_private && !facts.SiteEscaped(site);
        }
        a.region = all_private ? Region::kHeapLocal : Region::kShared;
      } else {
        a.region = Region::kShared;
      }
      switch (a.region) {
        case Region::kStackLocal:
          ++out.stack_local;
          break;
        case Region::kHeapLocal:
          ++out.heap_local;
          break;
        case Region::kShared:
          ++out.shared;
          break;
      }
      out.accesses.push_back(std::move(a));
    }
  }
  return out;
}

}  // namespace polynima::analyze
