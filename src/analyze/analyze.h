// Driver for the static concurrency analyzer (ISSUE 5 tentpole): runs the
// thread-escape / memory-region pass (escape.h) per function on the shared
// thread pool, then the whole-program static race detector (race.h), and
// summarizes everything into
//   - an AnalysisResult (counts + per-function escape results + race report),
//   - a sealed check::StaticCert justifying kHeapLocal fence elision,
//   - a polynima-analyze/v1 JSON section for the run report.
//
// The analysis is purely static — no guest execution — and deliberately
// conservative: every claim it certifies (an access is thread-private) is
// re-derivable by the TSO checker with the same check::RegionDeriver, and
// every fact it cannot prove degrades toward "shared" / "racing", never the
// other way.
#ifndef POLYNIMA_ANALYZE_ANALYZE_H_
#define POLYNIMA_ANALYZE_ANALYZE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analyze/escape.h"
#include "src/analyze/race.h"
#include "src/binary/image.h"
#include "src/check/witness.h"
#include "src/lift/lifter.h"
#include "src/obs/report.h"
#include "src/support/json.h"

namespace polynima::analyze {

struct AnalyzeOptions {
  // Worker threads for the per-function escape pass (0 = hardware default,
  // same convention as LiftOptions::jobs).
  int jobs = 0;
  // Observability sinks (all nullable).
  obs::Session obs;
};

struct AnalysisResult {
  int functions = 0;
  int accesses = 0;
  int stack_local = 0;
  int heap_local = 0;
  int shared = 0;
  int alloc_sites = 0;
  int escaped_sites = 0;
  // Accesses stamped FenceWitness::kHeapLocal and fences removed for them —
  // zero until fenceopt::ApplyStaticElision runs over the same module.
  int heap_witnesses = 0;
  int fences_elided = 0;
  int64_t analyze_ns = 0;
  RaceReport races;
  // Keyed by the analyzed functions; referenced by ApplyStaticElision.
  std::map<const ir::Function*, EscapeResult> escapes;
  // Human-readable "function@addr: classification" lines (escaped sites and
  // race pairs), also sealed into the StaticCert.
  std::vector<std::string> site_summaries;

  std::string Summary() const;
  // polynima-analyze/v1 section for the run report (obs::RunInfo::analysis).
  json::Value ToJson() const;
};

// Analyzes every lifted function of `program`. Thread-private claims are
// only meaningful when the program was lifted with thread_local_state (each
// guest thread gets its own virtual CPU) — callers gate on that.
AnalysisResult AnalyzeProgram(const lift::LiftedProgram& program,
                              const AnalyzeOptions& options = {});

// Mints the sealed certificate binding this analysis to `image`. Must be
// called after ApplyStaticElision so heap_witnesses is final — the TSO
// checker cross-checks every stamped access against the cert.
check::StaticCert MakeStaticCert(const AnalysisResult& result,
                                 const binary::Image& image);

}  // namespace polynima::analyze

#endif  // POLYNIMA_ANALYZE_ANALYZE_H_
