// Pass 2 of the static concurrency analyzer: lockset + sync-aware static
// race detection over the whole lifted program.
//
// Thread structure is recovered from the vm external-call interface: the
// program's main entry plus every entry function handed to a thread-spawning
// external (pthread_create arg 2, gomp_parallel arg 0) forms a *thread
// root*; functions reachable from a root over direct calls execute in that
// root's context. A root is multi-instance (concurrent with itself) when it
// is a gomp_parallel body, is spawned from two or more sites, or its spawn
// site sits on a CFG cycle.
//
// Two contexts are concurrent unless one of them is the main context at a
// point where the outstanding-spawn dataflow (pthread_create increments,
// pthread_join decrements, merges take the maximum, saturating at 8) proves
// no child is alive — the join-quiescence rule that lets a spawn/join/verify
// program stay race-free. The dataflow is interprocedurally conservative: a
// direct call into any function that can reach a pthread_create (or makes
// an indirect call, which could) pins the counter at the cap, since the
// helper may return with children still running. gomp_parallel joins its
// children internally and leaves the counter untouched.
//
// A candidate pair races when: both accesses are classified potentially
// shared by escape analysis, their contexts are concurrent, at least one is
// a write, they are not both atomic (atomic-vs-plain IS a race), their
// address classes may alias (escape.h AddrKind rules), and their statically
// computed locksets (pthread_mutex_lock/unlock with constant mutex
// addresses; block merges intersect; a callee's entry lockset is the
// intersection over its call sites) have an empty intersection.
//
// Unresolvable facts degrade conservatively toward reporting: an unknown
// spawn entry makes every external-entry function a multi-instance root, an
// indirect call (cfmiss) widens reachability to the whole program, an
// unknown mutex release clears the lockset, and a register constant is
// stale (unresolved) once any intervening call clobbers it.
#ifndef POLYNIMA_ANALYZE_RACE_H_
#define POLYNIMA_ANALYZE_RACE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analyze/escape.h"
#include "src/lift/lifter.h"

namespace polynima::analyze {

struct RaceAccess {
  std::string function;
  uint64_t guest_address = 0;
  bool is_write = false;
  bool is_atomic = false;
};

struct RacePair {
  RaceAccess a;
  RaceAccess b;
  std::string reason;
};

struct RaceReport {
  std::vector<RacePair> pairs;
  int thread_roots = 0;
  int candidate_accesses = 0;  // shared-classified accesses in live contexts
  // An unresolved spawn entry or indirect call widened roots/reachability.
  bool conservative_roots = false;
  bool truncated = false;  // pair output hit the cap

  bool Racy() const { return !pairs.empty(); }
};

// Runs the detector over every function that has an escape result. The map
// must cover (at least) every function reachable from a thread root.
RaceReport DetectRaces(
    const lift::LiftedProgram& program,
    const std::map<const ir::Function*, EscapeResult>& escapes);

// Guest addresses involved in reported pairs — fed to the schedule explorer
// (sched::ExploreOptions::preemption_hints) as preemption points.
std::set<uint64_t> RaceHintAddresses(const RaceReport& report);

}  // namespace polynima::analyze

#endif  // POLYNIMA_ANALYZE_RACE_H_
