// Control-flow-graph representation shared by the static disassembler, the
// ICFT tracer, and the additive-lifting loop. This is the moral equivalent of
// the paper's radare2-wrapper JSON output (§4 "Environment and Software"):
// functions, their basic blocks, and explicit direct/indirect labels on
// control transfers.
#ifndef POLYNIMA_CFG_CFG_H_
#define POLYNIMA_CFG_CFG_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/binary/image.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace polynima::cfg {

enum class TermKind : uint8_t {
  kFallthrough,   // block ends because the next address is a leader
  kJump,          // direct unconditional jump
  kCondJump,      // direct conditional jump (target + fallthrough)
  kIndirectJump,  // jmp r/m — targets listed in indirect_targets
  kCall,          // direct call (continues at fallthrough)
  kIndirectCall,  // call r/m
  kExternalCall,  // direct call into the external-library range
  kRet,
  kTrap,  // ud2 / int3
};

const char* TermKindName(TermKind k);
Expected<TermKind> TermKindFromName(const std::string& name);

struct BlockInfo {
  uint64_t start = 0;
  uint64_t end = 0;  // exclusive
  TermKind term = TermKind::kFallthrough;
  // Address of the terminator instruction (== last instruction).
  uint64_t term_address = 0;
  uint64_t direct_target = 0;  // kJump / kCondJump / kCall
  uint64_t fallthrough = 0;    // kCondJump / kCall / kFallthrough / kExternalCall
  uint64_t external_slot = 0;  // kExternalCall
  // Known targets of an indirect transfer (heuristics + tracing + additive).
  std::set<uint64_t> indirect_targets;
};

struct FunctionInfo {
  uint64_t entry = 0;
  std::string name;  // "fn_<hex>"
  std::set<uint64_t> block_starts;
};

class ControlFlowGraph {
 public:
  std::map<uint64_t, BlockInfo> blocks;
  std::map<uint64_t, FunctionInfo> functions;

  // Adds `target` to the indirect-target set of the transfer at
  // `transfer_address`. Returns true if it was new.
  bool AddIndirectTarget(uint64_t transfer_address, uint64_t target);
  // Block containing `addr`, or nullptr.
  const BlockInfo* BlockContaining(uint64_t addr) const;
  BlockInfo* MutableBlockContaining(uint64_t addr);
  // Function owning the block starting at `block_start` (first match).
  const FunctionInfo* FunctionOwning(uint64_t block_start) const;

  size_t TotalIndirectTargets() const;

  json::Value ToJson() const;
  static Expected<ControlFlowGraph> FromJson(const json::Value& v);
  Status WriteTo(const std::string& path) const;
  static Expected<ControlFlowGraph> ReadFrom(const std::string& path);
};

struct RecoverOptions {
  // Run the jump-table heuristic for indirect jumps (on by default; off
  // models a weaker disassembler).
  bool jump_table_heuristic = true;
  // Treat code-address constants materialized by movabs as candidate
  // function entries (how disassemblers discover callback targets).
  bool address_constant_heuristic = true;
  // Scan read-only data segments for 8-aligned qwords holding decodable
  // code addresses (function-pointer tables in .rodata). Discovered targets
  // become address-taken function entries. On by default: images without a
  // read-only segment are unaffected.
  bool rodata_pointer_scan = true;
  // Sound mode (--cfg-sound): additionally treat every endbr64 landing pad
  // in the image as a function entry, so indirect-transfer targets are
  // recovered exhaustively rather than heuristically.
  bool landing_pad_entries = false;
};

// All addresses of endbr64 landing pads in the image's executable segments
// (byte scan for F3 0F 1E FA), sorted ascending. The sound recovery mode and
// the icf pass both consume this set.
std::vector<uint64_t> CollectLandingPads(const binary::Image& image);

// Static recursive-descent recovery starting from the image entry point plus
// `extra_entries` (used by additive lifting to integrate newly discovered
// targets). Never consults image symbols.
Expected<ControlFlowGraph> RecoverStatic(const binary::Image& image,
                                         const RecoverOptions& options = {},
                                         const std::set<uint64_t>& extra_entries = {});

// Re-explores from `new_target` and merges the discovered blocks/functions
// into `graph` (the additive-lifting integration step). `is_call_target`
// marks the target as a function entry rather than an intra-function block.
Status IntegrateDiscoveredTarget(const binary::Image& image,
                                 ControlFlowGraph& graph,
                                 uint64_t transfer_address, uint64_t new_target,
                                 const RecoverOptions& options = {});

}  // namespace polynima::cfg

#endif  // POLYNIMA_CFG_CFG_H_
