#include "src/cfg/cfg.h"

#include <deque>

#include "src/support/check.h"
#include "src/support/strings.h"
#include "src/x86/decoder.h"

namespace polynima::cfg {

using x86::Inst;
using x86::Mnemonic;

const char* TermKindName(TermKind k) {
  switch (k) {
    case TermKind::kFallthrough:
      return "fallthrough";
    case TermKind::kJump:
      return "jump";
    case TermKind::kCondJump:
      return "condjump";
    case TermKind::kIndirectJump:
      return "indirectjump";
    case TermKind::kCall:
      return "call";
    case TermKind::kIndirectCall:
      return "indirectcall";
    case TermKind::kExternalCall:
      return "externalcall";
    case TermKind::kRet:
      return "ret";
    case TermKind::kTrap:
      return "trap";
  }
  return "?";
}

Expected<TermKind> TermKindFromName(const std::string& name) {
  static const std::map<std::string, TermKind>* map =
      new std::map<std::string, TermKind>{
          {"fallthrough", TermKind::kFallthrough},
          {"jump", TermKind::kJump},
          {"condjump", TermKind::kCondJump},
          {"indirectjump", TermKind::kIndirectJump},
          {"call", TermKind::kCall},
          {"indirectcall", TermKind::kIndirectCall},
          {"externalcall", TermKind::kExternalCall},
          {"ret", TermKind::kRet},
          {"trap", TermKind::kTrap},
      };
  auto it = map->find(name);
  if (it == map->end()) {
    return Status::InvalidArgument("bad term kind: " + name);
  }
  return it->second;
}

bool ControlFlowGraph::AddIndirectTarget(uint64_t transfer_address,
                                         uint64_t target) {
  BlockInfo* block = MutableBlockContaining(transfer_address);
  if (block == nullptr) {
    return false;
  }
  return block->indirect_targets.insert(target).second;
}

const BlockInfo* ControlFlowGraph::BlockContaining(uint64_t addr) const {
  auto it = blocks.upper_bound(addr);
  if (it == blocks.begin()) {
    return nullptr;
  }
  --it;
  if (addr >= it->second.start && addr < it->second.end) {
    return &it->second;
  }
  return nullptr;
}

BlockInfo* ControlFlowGraph::MutableBlockContaining(uint64_t addr) {
  return const_cast<BlockInfo*>(
      static_cast<const ControlFlowGraph*>(this)->BlockContaining(addr));
}

const FunctionInfo* ControlFlowGraph::FunctionOwning(
    uint64_t block_start) const {
  for (const auto& [entry, fn] : functions) {
    if (fn.block_starts.count(block_start) != 0) {
      return &fn;
    }
  }
  return nullptr;
}

size_t ControlFlowGraph::TotalIndirectTargets() const {
  size_t n = 0;
  for (const auto& [start, block] : blocks) {
    n += block.indirect_targets.size();
  }
  return n;
}

json::Value ControlFlowGraph::ToJson() const {
  json::Array block_arr;
  for (const auto& [start, b] : blocks) {
    json::Object obj;
    obj["start"] = json::Value(b.start);
    obj["end"] = json::Value(b.end);
    obj["term"] = json::Value(TermKindName(b.term));
    obj["term_address"] = json::Value(b.term_address);
    obj["direct_target"] = json::Value(b.direct_target);
    obj["fallthrough"] = json::Value(b.fallthrough);
    obj["external_slot"] = json::Value(b.external_slot);
    json::Array targets;
    for (uint64_t t : b.indirect_targets) {
      targets.push_back(json::Value(t));
    }
    obj["indirect_targets"] = json::Value(std::move(targets));
    block_arr.push_back(json::Value(std::move(obj)));
  }
  json::Array fn_arr;
  for (const auto& [entry, fn] : functions) {
    json::Object obj;
    obj["entry"] = json::Value(fn.entry);
    obj["name"] = json::Value(fn.name);
    json::Array starts;
    for (uint64_t s : fn.block_starts) {
      starts.push_back(json::Value(s));
    }
    obj["blocks"] = json::Value(std::move(starts));
    fn_arr.push_back(json::Value(std::move(obj)));
  }
  json::Object root;
  root["blocks"] = json::Value(std::move(block_arr));
  root["functions"] = json::Value(std::move(fn_arr));
  return json::Value(std::move(root));
}

Expected<ControlFlowGraph> ControlFlowGraph::FromJson(const json::Value& v) {
  ControlFlowGraph graph;
  const json::Value* blocks_v = v.Find("blocks");
  const json::Value* fns_v = v.Find("functions");
  if (blocks_v == nullptr || fns_v == nullptr) {
    return Status::InvalidArgument("cfg json: missing blocks/functions");
  }
  for (const json::Value& bv : blocks_v->as_array()) {
    BlockInfo b;
    b.start = bv.Find("start")->as_uint();
    b.end = bv.Find("end")->as_uint();
    POLY_ASSIGN_OR_RETURN(b.term,
                          TermKindFromName(bv.Find("term")->as_string()));
    b.term_address = bv.Find("term_address")->as_uint();
    b.direct_target = bv.Find("direct_target")->as_uint();
    b.fallthrough = bv.Find("fallthrough")->as_uint();
    b.external_slot = bv.Find("external_slot")->as_uint();
    for (const json::Value& t : bv.Find("indirect_targets")->as_array()) {
      b.indirect_targets.insert(t.as_uint());
    }
    graph.blocks[b.start] = std::move(b);
  }
  for (const json::Value& fv : fns_v->as_array()) {
    FunctionInfo fn;
    fn.entry = fv.Find("entry")->as_uint();
    fn.name = fv.Find("name")->as_string();
    for (const json::Value& s : fv.Find("blocks")->as_array()) {
      fn.block_starts.insert(s.as_uint());
    }
    graph.functions[fn.entry] = std::move(fn);
  }
  return graph;
}

Status ControlFlowGraph::WriteTo(const std::string& path) const {
  return json::WriteFile(path, ToJson());
}

Expected<ControlFlowGraph> ControlFlowGraph::ReadFrom(
    const std::string& path) {
  POLY_ASSIGN_OR_RETURN(json::Value v, json::ReadFile(path));
  return FromJson(v);
}

std::vector<uint64_t> CollectLandingPads(const binary::Image& image) {
  std::vector<uint64_t> pads;
  for (const binary::Segment& seg : image.segments) {
    if (!seg.executable || seg.bytes.size() < 4) {
      continue;
    }
    for (size_t i = 0; i + 4 <= seg.bytes.size(); ++i) {
      if (seg.bytes[i] == 0xF3 && seg.bytes[i + 1] == 0x0F &&
          seg.bytes[i + 2] == 0x1E && seg.bytes[i + 3] == 0xFA) {
        pads.push_back(seg.address + i);
      }
    }
  }
  return pads;
}

// ---------------------------------------------------------------------------
// Static recursive-descent recovery
// ---------------------------------------------------------------------------

namespace {

class Recoverer {
 public:
  Recoverer(const binary::Image& image, const RecoverOptions& options)
      : image_(image), options_(options) {}

  Expected<ControlFlowGraph> Run(const std::set<uint64_t>& entries) {
    for (uint64_t e : entries) {
      AddFunctionEntry(e);
    }
    ScanRodataPointers();
    // Iterate to a fixpoint: exploration may surface address constants and
    // jump tables, which surface more code. In sound mode, landing pads the
    // heuristics missed become entries and the fixpoint resumes, so every
    // possible indirect-transfer target is recovered.
    while (true) {
      while (!pending_.empty()) {
        std::deque<uint64_t> batch;
        batch.swap(pending_);
        for (uint64_t addr : batch) {
          Explore(addr);
        }
        ApplyHeuristics();
      }
      if (!options_.landing_pad_entries) {
        break;
      }
      bool added = false;
      for (uint64_t pad : CollectLandingPads(image_)) {
        if (explored_.count(pad) == 0 && func_entries_.count(pad) == 0) {
          AddFunctionEntry(pad);
          added = true;
        }
      }
      if (!added) {
        break;
      }
    }
    return BuildGraph(entries);
  }

 private:
  const Inst* DecodeAt(uint64_t addr) {
    auto it = insts_.find(addr);
    if (it != insts_.end()) {
      return it->second.mnemonic == Mnemonic::kInvalid ? nullptr : &it->second;
    }
    std::vector<uint8_t> bytes = image_.ReadBytes(addr, 16);
    if (bytes.empty() || !image_.IsCodeAddress(addr)) {
      insts_[addr] = Inst{};  // negative cache
      return nullptr;
    }
    auto inst = x86::Decode(bytes, addr);
    if (!inst.ok()) {
      insts_[addr] = Inst{};
      return nullptr;
    }
    return &(insts_[addr] = *inst);
  }

  void AddFunctionEntry(uint64_t addr) {
    if (!image_.IsCodeAddress(addr)) {
      return;
    }
    if (func_entries_.insert(addr).second) {
      leaders_.insert(addr);
      pending_.push_back(addr);
    }
  }

  void AddLeader(uint64_t addr) {
    if (!image_.IsCodeAddress(addr)) {
      return;
    }
    if (leaders_.insert(addr).second) {
      pending_.push_back(addr);
    }
  }

  // Function-pointer tables in read-only data: every 8-aligned qword in a
  // read-only segment that holds a decodable code address is a candidate
  // address-taken function (the rodata analogue of the movabs heuristic).
  void ScanRodataPointers() {
    if (!options_.rodata_pointer_scan) {
      return;
    }
    for (const binary::Segment& seg : image_.segments) {
      if (seg.executable || !seg.read_only) {
        continue;
      }
      for (size_t i = 0; i + 8 <= seg.bytes.size(); i += 8) {
        uint64_t v = 0;
        for (int b = 7; b >= 0; --b) {
          v = (v << 8) | seg.bytes[i + static_cast<size_t>(b)];
        }
        if (!image_.IsCodeAddress(v)) {
          continue;
        }
        std::vector<uint8_t> code = image_.ReadBytes(v, 16);
        if (x86::Decode(code, v).ok()) {
          AddFunctionEntry(v);
          address_taken_.insert(v);
        }
      }
    }
  }

  // Linear walk from `addr` until a terminator, recording instructions and
  // queueing control-flow targets.
  void Explore(uint64_t addr) {
    while (true) {
      if (explored_.count(addr) != 0) {
        return;
      }
      explored_.insert(addr);
      const Inst* inst = DecodeAt(addr);
      if (inst == nullptr) {
        return;  // undecodable: block formation emits a trap block
      }
      // Heuristic inputs: record address constants pointing into code.
      if (options_.address_constant_heuristic &&
          inst->mnemonic == Mnemonic::kMov && inst->ops[1].is_imm() &&
          inst->size == 8 && inst->ops[0].is_reg() &&
          image_.IsCodeAddress(static_cast<uint64_t>(inst->ops[1].imm))) {
        code_constants_.insert(
            {addr, static_cast<uint64_t>(inst->ops[1].imm)});
      }

      if (inst->IsBranch()) {
        if (inst->IsDirectTransfer()) {
          AddLeader(inst->DirectTarget());
          if (inst->mnemonic == Mnemonic::kJcc) {
            AddLeader(inst->Next());
          }
        } else {
          indirect_jumps_.insert(addr);
        }
        return;
      }
      if (inst->IsCall()) {
        if (inst->IsDirectTransfer()) {
          uint64_t target = inst->DirectTarget();
          if (binary::IsExternalAddress(target)) {
            // externalcall: continues at fallthrough
          } else {
            AddFunctionEntry(target);
          }
        }
        AddLeader(inst->Next());
        return;
      }
      if (inst->IsRet() || inst->mnemonic == Mnemonic::kUd2 ||
          inst->mnemonic == Mnemonic::kInt3) {
        return;
      }
      addr = inst->Next();
    }
  }

  // Reads jump-table entries at `base`: consecutive 8-byte values that are
  // plausible, decodable code addresses.
  std::vector<uint64_t> ReadTable(uint64_t base) {
    std::vector<uint64_t> entries;
    for (int i = 0; i < 512; ++i) {
      std::vector<uint8_t> bytes = image_.ReadBytes(base + 8u * i, 8);
      if (bytes.size() != 8) {
        break;
      }
      uint64_t entry = 0;
      for (int b = 7; b >= 0; --b) {
        entry = (entry << 8) | bytes[static_cast<size_t>(b)];
      }
      if (!image_.IsCodeAddress(entry)) {
        break;
      }
      std::vector<uint8_t> code = image_.ReadBytes(entry, 16);
      if (!x86::Decode(code, entry).ok()) {
        break;
      }
      entries.push_back(entry);
    }
    return entries;
  }

  void ApplyHeuristics() {
    // (a) Jump tables: for each indirect jump, look back over the preceding
    // instructions (same straight-line run) for a code-address constant that
    // is used as a table base, i.e. appears before the jump.
    if (options_.jump_table_heuristic) {
      for (uint64_t jump_addr : indirect_jumps_) {
        if (jump_tables_resolved_.count(jump_addr) != 0) {
          continue;
        }
        // Find the closest preceding recorded code constant within 64 bytes.
        uint64_t best_addr = 0, base = 0;
        for (const auto& [caddr, cval] : code_constants_) {
          if (caddr < jump_addr && jump_addr - caddr <= 64 &&
              caddr >= best_addr) {
            best_addr = caddr;
            base = cval;
          }
        }
        if (base == 0) {
          continue;
        }
        std::vector<uint64_t> entries = ReadTable(base);
        if (entries.size() < 2) {
          continue;
        }
        jump_tables_resolved_.insert(jump_addr);
        table_bases_.insert(base);
        for (uint64_t e : entries) {
          jump_targets_[jump_addr].insert(e);
          AddLeader(e);
        }
      }
    }
    // (b) Address constants that are not table bases: candidate function
    // entries (callback targets materialized for pthread_create etc.). These
    // "address-taken" functions also become the candidate target set for
    // indirect calls — the classic static over-approximation; targets
    // materialized at run time still surface as control-flow misses.
    if (options_.address_constant_heuristic) {
      for (const auto& [caddr, cval] : code_constants_) {
        if (table_bases_.count(cval) != 0) {
          continue;
        }
        if (func_entries_.count(cval) != 0) {
          address_taken_.insert(cval);
          continue;
        }
        // Sanity: the target must decode as a plausible instruction run.
        std::vector<uint8_t> code = image_.ReadBytes(cval, 16);
        if (x86::Decode(code, cval).ok()) {
          AddFunctionEntry(cval);
          address_taken_.insert(cval);
        }
      }
    }
  }

  Expected<ControlFlowGraph> BuildGraph(const std::set<uint64_t>& entries) {
    ControlFlowGraph graph;
    // Block formation: walk from each leader to the next terminator or
    // leader.
    for (uint64_t leader : leaders_) {
      BlockInfo block;
      block.start = leader;
      uint64_t addr = leader;
      while (true) {
        auto it = insts_.find(addr);
        const Inst* inst =
            (it != insts_.end() && it->second.mnemonic != Mnemonic::kInvalid)
                ? &it->second
                : nullptr;
        if (inst == nullptr) {
          // Undecodable bytes: executing here would fault.
          block.end = addr + 1;
          block.term = TermKind::kTrap;
          block.term_address = addr;
          break;
        }
        uint64_t next = inst->Next();
        if (inst->IsTerminator() || inst->IsCall()) {
          block.end = next;
          block.term_address = addr;
          if (inst->mnemonic == Mnemonic::kJmp) {
            if (inst->IsDirectTransfer()) {
              block.term = TermKind::kJump;
              block.direct_target = inst->DirectTarget();
            } else {
              block.term = TermKind::kIndirectJump;
              auto jt = jump_targets_.find(addr);
              if (jt != jump_targets_.end()) {
                block.indirect_targets = jt->second;
              }
            }
          } else if (inst->mnemonic == Mnemonic::kJcc) {
            block.term = TermKind::kCondJump;
            block.direct_target = inst->DirectTarget();
            block.fallthrough = next;
          } else if (inst->IsCall()) {
            block.fallthrough = next;
            if (inst->IsDirectTransfer()) {
              uint64_t target = inst->DirectTarget();
              if (binary::IsExternalAddress(target)) {
                block.term = TermKind::kExternalCall;
                block.external_slot = (target - binary::kExternalBase) / 16;
              } else {
                block.term = TermKind::kCall;
                block.direct_target = target;
              }
            } else {
              block.term = TermKind::kIndirectCall;
              // Candidate targets: every address-taken function.
              block.indirect_targets = address_taken_;
            }
          } else if (inst->IsRet()) {
            block.term = TermKind::kRet;
          } else {
            block.term = TermKind::kTrap;
            block.term_address = addr;
          }
          break;
        }
        if (leaders_.count(next) != 0) {
          block.end = next;
          block.term = TermKind::kFallthrough;
          block.term_address = addr;
          block.fallthrough = next;
          break;
        }
        addr = next;
      }
      graph.blocks[leader] = std::move(block);
    }

    // Function membership: BFS over intra-function edges.
    for (uint64_t entry : func_entries_) {
      FunctionInfo fn;
      fn.entry = entry;
      fn.name = StrCat("fn_", std::string(HexString(entry)).substr(2));
      std::deque<uint64_t> work{entry};
      while (!work.empty()) {
        uint64_t start = work.front();
        work.pop_front();
        if (fn.block_starts.count(start) != 0 ||
            graph.blocks.count(start) == 0) {
          continue;
        }
        fn.block_starts.insert(start);
        const BlockInfo& b = graph.blocks[start];
        switch (b.term) {
          case TermKind::kJump:
            work.push_back(b.direct_target);
            break;
          case TermKind::kCondJump:
            work.push_back(b.direct_target);
            work.push_back(b.fallthrough);
            break;
          case TermKind::kFallthrough:
          case TermKind::kCall:
          case TermKind::kIndirectCall:
          case TermKind::kExternalCall:
            work.push_back(b.fallthrough);
            break;
          case TermKind::kIndirectJump:
            for (uint64_t t : b.indirect_targets) {
              work.push_back(t);
            }
            break;
          case TermKind::kRet:
          case TermKind::kTrap:
            break;
        }
      }
      graph.functions[entry] = std::move(fn);
    }
    (void)entries;
    return graph;
  }

  const binary::Image& image_;
  const RecoverOptions& options_;

  std::map<uint64_t, Inst> insts_;
  std::set<uint64_t> explored_;
  std::set<uint64_t> leaders_;
  std::set<uint64_t> func_entries_;
  std::deque<uint64_t> pending_;
  std::set<std::pair<uint64_t, uint64_t>> code_constants_;  // (at, value)
  std::set<uint64_t> indirect_jumps_;
  std::set<uint64_t> jump_tables_resolved_;
  std::set<uint64_t> table_bases_;
  std::set<uint64_t> address_taken_;
  std::map<uint64_t, std::set<uint64_t>> jump_targets_;
};

}  // namespace

Expected<ControlFlowGraph> RecoverStatic(const binary::Image& image,
                                         const RecoverOptions& options,
                                         const std::set<uint64_t>& extra_entries) {
  std::set<uint64_t> entries = extra_entries;
  entries.insert(image.entry_point);
  return Recoverer(image, options).Run(entries);
}

Status IntegrateDiscoveredTarget(const binary::Image& image,
                                 ControlFlowGraph& graph,
                                 uint64_t transfer_address, uint64_t new_target,
                                 const RecoverOptions& options) {
  // Determine whether the miss came from a call-like or jump-like transfer.
  BlockInfo* from = graph.MutableBlockContaining(transfer_address);
  bool is_call = from != nullptr && from->term == TermKind::kIndirectCall;

  // Re-run recovery with the new target as an extra entry, keeping every
  // previously known function entry and indirect target.
  std::set<uint64_t> entries;
  for (const auto& [e, fn] : graph.functions) {
    entries.insert(e);
  }
  if (is_call || from == nullptr) {
    entries.insert(new_target);
  }
  // Save indirect targets discovered so far (tracing / previous additive
  // rounds) so the rebuild preserves them.
  std::map<uint64_t, std::set<uint64_t>> saved;
  for (const auto& [start, b] : graph.blocks) {
    if (!b.indirect_targets.empty()) {
      saved[b.term_address] = b.indirect_targets;
    }
  }
  saved[transfer_address].insert(new_target);

  // Jump targets must become leaders during re-exploration: pass them as
  // extra entries too (they will be reachable as blocks; a jump target used
  // as an "entry" simply creates an extra function we can ignore — instead we
  // add them after recovery by integrating below).
  POLY_ASSIGN_OR_RETURN(ControlFlowGraph rebuilt,
                        RecoverStatic(image, options, entries));
  // Restore + apply indirect targets; blocks for jump targets may be missing
  // if unreachable statically — add them by exploring from each target.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 8) {
    changed = false;
    for (const auto& [term_addr, targets] : saved) {
      for (uint64_t t : targets) {
        if (rebuilt.blocks.count(t) == 0) {
          std::set<uint64_t> with_target = entries;
          with_target.insert(t);
          POLY_ASSIGN_OR_RETURN(rebuilt,
                                RecoverStatic(image, options, with_target));
          entries = with_target;
          changed = true;
        }
      }
    }
  }
  for (const auto& [term_addr, targets] : saved) {
    for (uint64_t t : targets) {
      rebuilt.AddIndirectTarget(term_addr, t);
    }
  }
  // Indirect-jump targets belong to the owning function: recompute function
  // membership by re-walking (cheap approximation: add target blocks to the
  // function owning the transfer).
  for (const auto& [term_addr, targets] : saved) {
    const BlockInfo* tb = rebuilt.BlockContaining(term_addr);
    if (tb == nullptr || tb->term != TermKind::kIndirectJump) {
      continue;
    }
    for (auto& [entry, fn] : rebuilt.functions) {
      if (fn.block_starts.count(tb->start) == 0) {
        continue;
      }
      // BFS from each target within this function.
      std::deque<uint64_t> work(targets.begin(), targets.end());
      while (!work.empty()) {
        uint64_t start = work.front();
        work.pop_front();
        if (rebuilt.blocks.count(start) == 0 ||
            !fn.block_starts.insert(start).second) {
          continue;
        }
        const BlockInfo& b = rebuilt.blocks[start];
        if (b.term == TermKind::kJump) {
          work.push_back(b.direct_target);
        } else if (b.term == TermKind::kCondJump) {
          work.push_back(b.direct_target);
          work.push_back(b.fallthrough);
        } else if (b.term == TermKind::kFallthrough ||
                   b.term == TermKind::kCall ||
                   b.term == TermKind::kIndirectCall ||
                   b.term == TermKind::kExternalCall) {
          work.push_back(b.fallthrough);
        } else if (b.term == TermKind::kIndirectJump) {
          for (uint64_t t2 : b.indirect_targets) {
            work.push_back(t2);
          }
        }
      }
    }
  }
  graph = std::move(rebuilt);
  return Status::Ok();
}

}  // namespace polynima::cfg
