#include "src/x86/decoder.h"

#include "src/support/check.h"
#include "src/support/strings.h"

namespace polynima::x86 {
namespace {

class Cursor {
 public:
  Cursor(std::span<const uint8_t> bytes, uint64_t address)
      : bytes_(bytes), address_(address) {}

  Expected<uint8_t> U8() {
    if (pos_ >= bytes_.size()) {
      return Truncated();
    }
    return bytes_[pos_++];
  }

  Expected<int8_t> S8() {
    POLY_ASSIGN_OR_RETURN(uint8_t b, U8());
    return static_cast<int8_t>(b);
  }

  Expected<int32_t> S32() {
    if (pos_ + 4 > bytes_.size()) {
      return Truncated();
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return static_cast<int32_t>(v);
  }

  Expected<int64_t> S64() {
    if (pos_ + 8 > bytes_.size()) {
      return Truncated();
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return static_cast<int64_t>(v);
  }

  size_t pos() const { return pos_; }
  uint64_t address() const { return address_; }

  Status Truncated() const {
    return Status::OutOfRange(StrCat("truncated instruction at ",
                                     HexString(address_)));
  }
  Status Bad(const char* why) const {
    return Status::InvalidArgument(StrCat("bad encoding at ",
                                          HexString(address_), ": ", why));
  }

 private:
  std::span<const uint8_t> bytes_;
  uint64_t address_;
  size_t pos_ = 0;
};

struct Prefixes {
  bool lock = false;
  bool p66 = false;
  bool pf3 = false;
  bool pf2 = false;
  bool has_rex = false;
  bool w = false, r = false, x = false, b = false;
};

// Decodes a ModRM byte plus any SIB/displacement. `reg_out` receives the
// REX.R-extended reg field; `rm_out` receives the r/m operand. When
// `rm_is_xmm` the register-direct form yields an XMM operand.
Status DecodeModRM(Cursor& cur, const Prefixes& pfx, bool rm_is_xmm,
                   uint8_t& reg_out, Operand& rm_out) {
  auto modrm_or = cur.U8();
  if (!modrm_or.ok()) {
    return modrm_or.status();
  }
  uint8_t modrm = *modrm_or;
  uint8_t mod = modrm >> 6;
  uint8_t reg = (modrm >> 3) & 7;
  uint8_t rm = modrm & 7;
  reg_out = reg | (pfx.r ? 8 : 0);

  if (mod == 3) {
    uint8_t code = rm | (pfx.b ? 8 : 0);
    if (rm_is_xmm) {
      rm_out = Operand::X(code);
    } else {
      rm_out = Operand::R(static_cast<Reg>(code));
    }
    return Status::Ok();
  }

  MemRef mem;
  if (rm == 4) {
    auto sib_or = cur.U8();
    if (!sib_or.ok()) {
      return sib_or.status();
    }
    uint8_t sib = *sib_or;
    uint8_t scale_log2 = sib >> 6;
    uint8_t index = ((sib >> 3) & 7) | (pfx.x ? 8 : 0);
    uint8_t base = (sib & 7) | (pfx.b ? 8 : 0);
    mem.scale = static_cast<uint8_t>(1u << scale_log2);
    if (index != 4) {  // index field 4 without REX.X means "no index"
      mem.index = static_cast<Reg>(index);
    }
    if ((sib & 7) == 5 && mod == 0) {
      mem.base = Reg::kNone;  // disp32-only (absolute) or index+disp32
      auto d = cur.S32();
      if (!d.ok()) {
        return d.status();
      }
      mem.disp = *d;
      rm_out = Operand::M(mem);
      return Status::Ok();
    }
    mem.base = static_cast<Reg>(base);
  } else if (mod == 0 && rm == 5) {
    mem.rip_relative = true;
    auto d = cur.S32();
    if (!d.ok()) {
      return d.status();
    }
    mem.disp = *d;
    rm_out = Operand::M(mem);
    return Status::Ok();
  } else {
    mem.base = static_cast<Reg>(rm | (pfx.b ? 8 : 0));
  }

  if (mod == 1) {
    auto d = cur.S8();
    if (!d.ok()) {
      return d.status();
    }
    mem.disp = *d;
  } else if (mod == 2) {
    auto d = cur.S32();
    if (!d.ok()) {
      return d.status();
    }
    mem.disp = *d;
  }
  rm_out = Operand::M(mem);
  return Status::Ok();
}

// Validates the 8-bit-register quirk: without a REX prefix, register codes
// 4-7 select ah/ch/dh/bh, which this subset does not support.
Status CheckByteReg(Cursor& cur, const Prefixes& pfx, const Operand& op) {
  if (op.is_reg() && !pfx.has_rex) {
    uint8_t code = static_cast<uint8_t>(op.reg);
    if (code >= 4 && code <= 7) {
      return cur.Bad("legacy high-byte register");
    }
  }
  return Status::Ok();
}

struct AluEntry {
  Mnemonic m;
};

bool AluFromBase(uint8_t base, Mnemonic& m) {
  switch (base) {
    case 0x00:
      m = Mnemonic::kAdd;
      return true;
    case 0x08:
      m = Mnemonic::kOr;
      return true;
    case 0x20:
      m = Mnemonic::kAnd;
      return true;
    case 0x28:
      m = Mnemonic::kSub;
      return true;
    case 0x30:
      m = Mnemonic::kXor;
      return true;
    case 0x38:
      m = Mnemonic::kCmp;
      return true;
    default:
      return false;
  }
}

bool AluFromExt(uint8_t ext, Mnemonic& m) {
  switch (ext) {
    case 0:
      m = Mnemonic::kAdd;
      return true;
    case 1:
      m = Mnemonic::kOr;
      return true;
    case 4:
      m = Mnemonic::kAnd;
      return true;
    case 5:
      m = Mnemonic::kSub;
      return true;
    case 6:
      m = Mnemonic::kXor;
      return true;
    case 7:
      m = Mnemonic::kCmp;
      return true;
    default:
      return false;
  }
}

Expected<Inst> DecodeTwoByte(Cursor& cur, const Prefixes& pfx, Inst inst);
Expected<Inst> DecodeThreeByte38(Cursor& cur, const Prefixes& pfx, Inst inst);

Expected<Inst> DecodeImpl(Cursor& cur) {
  Prefixes pfx;
  uint8_t opcode = 0;
  // Prefix scan: legacy prefixes in any order, then an optional REX, then
  // the opcode. A REX not immediately before the opcode is ignored by
  // hardware; we reject such encodings as outside the subset.
  while (true) {
    POLY_ASSIGN_OR_RETURN(uint8_t b, cur.U8());
    if (b == 0xF0) {
      pfx.lock = true;
    } else if (b == 0x66) {
      pfx.p66 = true;
    } else if (b == 0xF3) {
      pfx.pf3 = true;
    } else if (b == 0xF2) {
      pfx.pf2 = true;
    } else if ((b & 0xF0) == 0x40) {
      pfx.has_rex = true;
      pfx.w = (b & 8) != 0;
      pfx.r = (b & 4) != 0;
      pfx.x = (b & 2) != 0;
      pfx.b = (b & 1) != 0;
      POLY_ASSIGN_OR_RETURN(opcode, cur.U8());
      break;
    } else {
      opcode = b;
      break;
    }
  }

  Inst inst;
  inst.lock = pfx.lock;
  const int wsize = pfx.w ? 8 : 4;  // operand size for integer w-forms
  if (pfx.p66 && opcode != 0x0F) {
    return cur.Bad("16-bit operand size not supported");
  }

  if (opcode == 0x0F) {
    return DecodeTwoByte(cur, pfx, inst);
  }

  // ALU block 0x00-0x3F.
  if (opcode < 0x40) {
    uint8_t base = opcode & 0x38;
    uint8_t form = opcode & 0x07;
    Mnemonic m;
    if (AluFromBase(base, m) && form < 4) {
      inst.mnemonic = m;
      inst.size = (form == 0 || form == 2) ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      Operand rop = Operand::R(static_cast<Reg>(reg));
      if (form == 0 || form == 1) {  // rm, r
        inst.ops[0] = rm;
        inst.ops[1] = rop;
      } else {  // r, rm
        inst.ops[0] = rop;
        inst.ops[1] = rm;
      }
      inst.num_ops = 2;
      if (inst.size == 1) {
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[0]));
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[1]));
      }
      return inst;
    }
    return cur.Bad("unsupported opcode");
  }

  switch (opcode) {
    case 0x0F:
      return DecodeTwoByte(cur, pfx, inst);

    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57:
      inst.mnemonic = Mnemonic::kPush;
      inst.size = 8;
      inst.ops[0] =
          Operand::R(static_cast<Reg>((opcode - 0x50) | (pfx.b ? 8 : 0)));
      inst.num_ops = 1;
      return inst;

    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F:
      inst.mnemonic = Mnemonic::kPop;
      inst.size = 8;
      inst.ops[0] =
          Operand::R(static_cast<Reg>((opcode - 0x58) | (pfx.b ? 8 : 0)));
      inst.num_ops = 1;
      return inst;

    case 0x63: {  // movsxd r64, r/m32
      inst.mnemonic = Mnemonic::kMovsx;
      inst.size = 8;
      inst.src_size = 4;
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = Operand::R(static_cast<Reg>(reg));
      inst.ops[1] = rm;
      inst.num_ops = 2;
      return inst;
    }

    case 0x68: {
      inst.mnemonic = Mnemonic::kPush;
      inst.size = 8;
      POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
      inst.ops[0] = Operand::I(imm);
      inst.num_ops = 1;
      return inst;
    }

    case 0x69:
    case 0x6B: {
      inst.mnemonic = Mnemonic::kImul;
      inst.size = static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = Operand::R(static_cast<Reg>(reg));
      inst.ops[1] = rm;
      if (opcode == 0x6B) {
        POLY_ASSIGN_OR_RETURN(int8_t imm, cur.S8());
        inst.ops[2] = Operand::I(imm);
      } else {
        POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
        inst.ops[2] = Operand::I(imm);
      }
      inst.num_ops = 3;
      return inst;
    }

    case 0x70: case 0x71: case 0x72: case 0x73:
    case 0x74: case 0x75: case 0x76: case 0x77:
    case 0x78: case 0x79: case 0x7A: case 0x7B:
    case 0x7C: case 0x7D: case 0x7E: case 0x7F: {
      inst.mnemonic = Mnemonic::kJcc;
      inst.cond = static_cast<Cond>(opcode - 0x70);
      POLY_ASSIGN_OR_RETURN(int8_t rel, cur.S8());
      inst.ops[0] = Operand::I(rel);
      inst.num_ops = 1;
      return inst;
    }

    case 0x80:
    case 0x81:
    case 0x83: {
      uint8_t ext;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, ext, rm));
      Mnemonic m;
      if (!AluFromExt(ext & 7, m)) {
        return cur.Bad("unsupported ALU extension");
      }
      inst.mnemonic = m;
      inst.size = opcode == 0x80 ? 1 : static_cast<uint8_t>(wsize);
      inst.ops[0] = rm;
      if (opcode == 0x81) {
        POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
        inst.ops[1] = Operand::I(imm);
      } else {
        POLY_ASSIGN_OR_RETURN(int8_t imm, cur.S8());
        inst.ops[1] = Operand::I(imm);
      }
      inst.num_ops = 2;
      if (inst.size == 1) {
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[0]));
      }
      return inst;
    }

    case 0x84:
    case 0x85: {
      inst.mnemonic = Mnemonic::kTest;
      inst.size = opcode == 0x84 ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = rm;
      inst.ops[1] = Operand::R(static_cast<Reg>(reg));
      inst.num_ops = 2;
      return inst;
    }

    case 0x86:
    case 0x87: {
      inst.mnemonic = Mnemonic::kXchg;
      inst.size = opcode == 0x86 ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = rm;
      inst.ops[1] = Operand::R(static_cast<Reg>(reg));
      inst.num_ops = 2;
      return inst;
    }

    case 0x88:
    case 0x89:
    case 0x8A:
    case 0x8B: {
      inst.mnemonic = Mnemonic::kMov;
      bool byte_form = opcode == 0x88 || opcode == 0x8A;
      inst.size = byte_form ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      Operand rop = Operand::R(static_cast<Reg>(reg));
      if (opcode == 0x88 || opcode == 0x89) {
        inst.ops[0] = rm;
        inst.ops[1] = rop;
      } else {
        inst.ops[0] = rop;
        inst.ops[1] = rm;
      }
      inst.num_ops = 2;
      if (inst.size == 1) {
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[0]));
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[1]));
      }
      return inst;
    }

    case 0x8D: {
      inst.mnemonic = Mnemonic::kLea;
      inst.size = static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      if (!rm.is_mem()) {
        return cur.Bad("lea needs memory operand");
      }
      inst.ops[0] = Operand::R(static_cast<Reg>(reg));
      inst.ops[1] = rm;
      inst.num_ops = 2;
      return inst;
    }

    case 0x90:
      inst.mnemonic = pfx.pf3 ? Mnemonic::kPause : Mnemonic::kNop;
      return inst;

    case 0x99:
      inst.mnemonic = Mnemonic::kCqo;
      inst.size = static_cast<uint8_t>(wsize);
      return inst;

    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF: {
      inst.mnemonic = Mnemonic::kMov;
      Reg r = static_cast<Reg>((opcode - 0xB8) | (pfx.b ? 8 : 0));
      inst.ops[0] = Operand::R(r);
      if (pfx.w) {
        inst.size = 8;
        POLY_ASSIGN_OR_RETURN(int64_t imm, cur.S64());
        inst.ops[1] = Operand::I(imm);
      } else {
        inst.size = 4;
        POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
        inst.ops[1] = Operand::I(static_cast<int64_t>(static_cast<uint32_t>(imm)));
      }
      inst.num_ops = 2;
      return inst;
    }

    case 0xC0:
    case 0xC1:
    case 0xD2:
    case 0xD3: {
      uint8_t ext;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, ext, rm));
      switch (ext & 7) {
        case 4:
          inst.mnemonic = Mnemonic::kShl;
          break;
        case 5:
          inst.mnemonic = Mnemonic::kShr;
          break;
        case 7:
          inst.mnemonic = Mnemonic::kSar;
          break;
        default:
          return cur.Bad("unsupported shift extension");
      }
      inst.size = (opcode == 0xC0 || opcode == 0xD2)
                      ? 1
                      : static_cast<uint8_t>(wsize);
      inst.ops[0] = rm;
      if (opcode == 0xC0 || opcode == 0xC1) {
        POLY_ASSIGN_OR_RETURN(int8_t imm, cur.S8());
        inst.ops[1] = Operand::I(imm & 0x3f);
      } else {
        inst.ops[1] = Operand::R(Reg::kRcx);
      }
      inst.num_ops = 2;
      return inst;
    }

    case 0xC3:
      inst.mnemonic = Mnemonic::kRet;
      return inst;

    case 0xC6:
    case 0xC7: {
      uint8_t ext;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, ext, rm));
      if ((ext & 7) != 0) {
        return cur.Bad("unsupported C6/C7 extension");
      }
      inst.mnemonic = Mnemonic::kMov;
      inst.size = opcode == 0xC6 ? 1 : static_cast<uint8_t>(wsize);
      inst.ops[0] = rm;
      if (opcode == 0xC6) {
        POLY_ASSIGN_OR_RETURN(int8_t imm, cur.S8());
        inst.ops[1] = Operand::I(imm);
      } else {
        POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
        inst.ops[1] = Operand::I(imm);
      }
      inst.num_ops = 2;
      return inst;
    }

    case 0xCC:
      inst.mnemonic = Mnemonic::kInt3;
      return inst;

    case 0xE8:
    case 0xE9: {
      inst.mnemonic = opcode == 0xE8 ? Mnemonic::kCall : Mnemonic::kJmp;
      POLY_ASSIGN_OR_RETURN(int32_t rel, cur.S32());
      inst.ops[0] = Operand::I(rel);
      inst.num_ops = 1;
      return inst;
    }

    case 0xEB: {
      inst.mnemonic = Mnemonic::kJmp;
      POLY_ASSIGN_OR_RETURN(int8_t rel, cur.S8());
      inst.ops[0] = Operand::I(rel);
      inst.num_ops = 1;
      return inst;
    }

    case 0xF6:
    case 0xF7: {
      uint8_t ext;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, ext, rm));
      inst.size = opcode == 0xF6 ? 1 : static_cast<uint8_t>(wsize);
      inst.ops[0] = rm;
      switch (ext & 7) {
        case 0:
          inst.mnemonic = Mnemonic::kTest;
          if (opcode == 0xF6) {
            POLY_ASSIGN_OR_RETURN(int8_t imm, cur.S8());
            inst.ops[1] = Operand::I(imm);
          } else {
            POLY_ASSIGN_OR_RETURN(int32_t imm, cur.S32());
            inst.ops[1] = Operand::I(imm);
          }
          inst.num_ops = 2;
          return inst;
        case 2:
          inst.mnemonic = Mnemonic::kNot;
          inst.num_ops = 1;
          return inst;
        case 3:
          inst.mnemonic = Mnemonic::kNeg;
          inst.num_ops = 1;
          return inst;
        case 6:
          inst.mnemonic = Mnemonic::kDiv;
          inst.num_ops = 1;
          return inst;
        case 7:
          inst.mnemonic = Mnemonic::kIdiv;
          inst.num_ops = 1;
          return inst;
        default:
          return cur.Bad("unsupported F6/F7 extension");
      }
    }

    case 0xFE:
    case 0xFF: {
      uint8_t ext;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, ext, rm));
      inst.ops[0] = rm;
      inst.num_ops = 1;
      if (opcode == 0xFE) {
        inst.size = 1;
        if ((ext & 7) == 0) {
          inst.mnemonic = Mnemonic::kInc;
        } else if ((ext & 7) == 1) {
          inst.mnemonic = Mnemonic::kDec;
        } else {
          return cur.Bad("unsupported FE extension");
        }
        return inst;
      }
      switch (ext & 7) {
        case 0:
          inst.mnemonic = Mnemonic::kInc;
          inst.size = static_cast<uint8_t>(wsize);
          return inst;
        case 1:
          inst.mnemonic = Mnemonic::kDec;
          inst.size = static_cast<uint8_t>(wsize);
          return inst;
        case 2:
          inst.mnemonic = Mnemonic::kCall;
          inst.size = 8;
          return inst;
        case 4:
          inst.mnemonic = Mnemonic::kJmp;
          inst.size = 8;
          return inst;
        default:
          return cur.Bad("unsupported FF extension");
      }
    }

    default:
      return cur.Bad("unsupported opcode");
  }
}

Expected<Inst> DecodeTwoByte(Cursor& cur, const Prefixes& pfx, Inst inst) {
  POLY_ASSIGN_OR_RETURN(uint8_t opcode, cur.U8());
  const int wsize = pfx.w ? 8 : 4;

  // cmovcc
  if (opcode >= 0x40 && opcode <= 0x4F) {
    inst.mnemonic = Mnemonic::kCmovcc;
    inst.cond = static_cast<Cond>(opcode - 0x40);
    inst.size = static_cast<uint8_t>(wsize);
    uint8_t reg;
    Operand rm;
    POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
    inst.ops[0] = Operand::R(static_cast<Reg>(reg));
    inst.ops[1] = rm;
    inst.num_ops = 2;
    return inst;
  }
  // jcc rel32
  if (opcode >= 0x80 && opcode <= 0x8F) {
    inst.mnemonic = Mnemonic::kJcc;
    inst.cond = static_cast<Cond>(opcode - 0x80);
    POLY_ASSIGN_OR_RETURN(int32_t rel, cur.S32());
    inst.ops[0] = Operand::I(rel);
    inst.num_ops = 1;
    return inst;
  }
  // setcc
  if (opcode >= 0x90 && opcode <= 0x9F) {
    inst.mnemonic = Mnemonic::kSetcc;
    inst.cond = static_cast<Cond>(opcode - 0x90);
    inst.size = 1;
    uint8_t reg;
    Operand rm;
    POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
    inst.ops[0] = rm;
    inst.num_ops = 1;
    POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, inst.ops[0]));
    return inst;
  }

  switch (opcode) {
    case 0x0B:
      inst.mnemonic = Mnemonic::kUd2;
      return inst;

    case 0x1E: {  // endbr64 (F3 0F 1E FA)
      if (!pfx.pf3) {
        return cur.Bad("0F 1E needs F3 prefix");
      }
      POLY_ASSIGN_OR_RETURN(uint8_t modrm, cur.U8());
      if (modrm != 0xFA) {
        return cur.Bad("unsupported 0F 1E form");
      }
      inst.mnemonic = Mnemonic::kEndbr64;
      return inst;
    }

    case 0x38:
      return DecodeThreeByte38(cur, pfx, inst);

    case 0x6E:
    case 0x7E: {  // movd/movq
      if (!pfx.p66) {
        return cur.Bad("movd needs 66 prefix");
      }
      inst.mnemonic = Mnemonic::kMovd;
      inst.size = pfx.w ? 8 : 4;
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      if (opcode == 0x6E) {
        inst.ops[0] = Operand::X(reg);
        inst.ops[1] = rm;
      } else {
        inst.ops[0] = rm;
        inst.ops[1] = Operand::X(reg);
      }
      inst.num_ops = 2;
      return inst;
    }

    case 0x6F:
    case 0x7F: {  // movdqu
      if (!pfx.pf3) {
        return cur.Bad("movdqu needs F3 prefix");
      }
      inst.mnemonic = Mnemonic::kMovdqu;
      inst.size = 16;
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, true, reg, rm));
      if (opcode == 0x6F) {
        inst.ops[0] = Operand::X(reg);
        inst.ops[1] = rm;
      } else {
        inst.ops[0] = rm;
        inst.ops[1] = Operand::X(reg);
      }
      inst.num_ops = 2;
      return inst;
    }

    case 0xAF: {
      inst.mnemonic = Mnemonic::kImul;
      inst.size = static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = Operand::R(static_cast<Reg>(reg));
      inst.ops[1] = rm;
      inst.num_ops = 2;
      return inst;
    }

    case 0xB0:
    case 0xB1: {
      inst.mnemonic = Mnemonic::kCmpxchg;
      inst.size = opcode == 0xB0 ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = rm;
      inst.ops[1] = Operand::R(static_cast<Reg>(reg));
      inst.num_ops = 2;
      return inst;
    }

    case 0xB6:
    case 0xB7:
    case 0xBE:
    case 0xBF: {
      inst.mnemonic =
          (opcode == 0xB6 || opcode == 0xB7) ? Mnemonic::kMovzx : Mnemonic::kMovsx;
      inst.size = static_cast<uint8_t>(wsize);
      inst.src_size = (opcode == 0xB6 || opcode == 0xBE) ? 1 : 2;
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = Operand::R(static_cast<Reg>(reg));
      inst.ops[1] = rm;
      inst.num_ops = 2;
      if (inst.src_size == 1) {
        POLY_RETURN_IF_ERROR(CheckByteReg(cur, pfx, rm));
      }
      return inst;
    }

    case 0xC0:
    case 0xC1: {
      inst.mnemonic = Mnemonic::kXadd;
      inst.size = opcode == 0xC0 ? 1 : static_cast<uint8_t>(wsize);
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, false, reg, rm));
      inst.ops[0] = rm;
      inst.ops[1] = Operand::R(static_cast<Reg>(reg));
      inst.num_ops = 2;
      return inst;
    }

    case 0xD4:
    case 0xEF:
    case 0xFA:
    case 0xFE: {
      if (!pfx.p66) {
        return cur.Bad("packed op needs 66 prefix");
      }
      inst.mnemonic = opcode == 0xD4   ? Mnemonic::kPaddq
                      : opcode == 0xEF ? Mnemonic::kPxor
                      : opcode == 0xFA ? Mnemonic::kPsubd
                                       : Mnemonic::kPaddd;
      inst.size = 16;
      uint8_t reg;
      Operand rm;
      POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, true, reg, rm));
      inst.ops[0] = Operand::X(reg);
      inst.ops[1] = rm;
      inst.num_ops = 2;
      return inst;
    }

    default:
      return cur.Bad("unsupported 0F opcode");
  }
}

Expected<Inst> DecodeThreeByte38(Cursor& cur, const Prefixes& pfx, Inst inst) {
  POLY_ASSIGN_OR_RETURN(uint8_t opcode, cur.U8());
  if (opcode == 0x40) {
    if (!pfx.p66) {
      return cur.Bad("pmulld needs 66 prefix");
    }
    inst.mnemonic = Mnemonic::kPmulld;
    inst.size = 16;
    uint8_t reg;
    Operand rm;
    POLY_RETURN_IF_ERROR(DecodeModRM(cur, pfx, true, reg, rm));
    inst.ops[0] = Operand::X(reg);
    inst.ops[1] = rm;
    inst.num_ops = 2;
    return inst;
  }
  return cur.Bad("unsupported 0F 38 opcode");
}

}  // namespace

Expected<Inst> Decode(std::span<const uint8_t> bytes, uint64_t address) {
  Cursor cur(bytes, address);
  POLY_ASSIGN_OR_RETURN(Inst inst, DecodeImpl(cur));
  inst.address = address;
  inst.length = static_cast<uint8_t>(cur.pos());
  return inst;
}

}  // namespace polynima::x86
