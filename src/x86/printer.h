// Intel-syntax text formatting of decoded instructions (for diagnostics,
// disassembly listings and tests).
#ifndef POLYNIMA_X86_PRINTER_H_
#define POLYNIMA_X86_PRINTER_H_

#include <string>

#include "src/x86/inst.h"

namespace polynima::x86 {

// Formats one operand, e.g. "rax", "dword ptr [rbx+rcx*4+0x10]", "0x2a".
std::string FormatOperand(const Operand& op, int size_bytes);

// Formats a full instruction, e.g. "lock add qword ptr [rdi], rax".
std::string FormatInst(const Inst& inst);

}  // namespace polynima::x86

#endif  // POLYNIMA_X86_PRINTER_H_
