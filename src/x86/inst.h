// Decoded-instruction model for the Polynima x86-64 subset.
//
// The subset covers the integer, control-flow, atomic (lock-prefixed) and a
// small packed-SIMD slice of x86-64 — enough to express every construct the
// paper's evaluation depends on: variable-length encodings, indirect jumps
// and calls, jump tables, hardware atomics (lock add/xadd/cmpxchg/xchg) and
// SSE-style packed integer arithmetic. See src/x86/encoder.cc for the exact
// encodings implemented.
#ifndef POLYNIMA_X86_INST_H_
#define POLYNIMA_X86_INST_H_

#include <cstdint>
#include <string>

#include "src/x86/registers.h"

namespace polynima::x86 {

enum class Mnemonic : uint8_t {
  kInvalid = 0,
  // Data movement.
  kMov,
  kMovzx,
  kMovsx,
  kLea,
  // Integer ALU.
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kCmp,
  kTest,
  kInc,
  kDec,
  kNeg,
  kNot,
  kImul,
  kIdiv,
  kDiv,
  kCqo,
  kShl,
  kShr,
  kSar,
  // Stack.
  kPush,
  kPop,
  // Atomics / interlocked.
  kXchg,
  kXadd,
  kCmpxchg,
  // Control flow.
  kJmp,
  kJcc,
  kCall,
  kRet,
  kSetcc,
  kCmovcc,
  // Misc.
  kNop,
  kUd2,
  kPause,
  kInt3,
  // Packed SIMD (XMM).
  kMovd,    // movd/movq xmm<->r (size selects 4 or 8 bytes)
  kMovdqu,  // movdqu xmm<->m128
  kPaddd,
  kPsubd,
  kPmulld,
  kPxor,
  kPaddq,
  // CET-style landing pad: legal target marker for indirect jumps/calls
  // (executes as a nop; F3 0F 1E FA).
  kEndbr64,
};

const char* MnemonicName(Mnemonic m);

// Condition codes in hardware `tttn` encoding order.
enum class Cond : uint8_t {
  kO = 0,
  kNo = 1,
  kB = 2,
  kAe = 3,
  kE = 4,
  kNe = 5,
  kBe = 6,
  kA = 7,
  kS = 8,
  kNs = 9,
  kP = 10,
  kNp = 11,
  kL = 12,
  kGe = 13,
  kLe = 14,
  kG = 15,
  kNone = 255,
};

const char* CondName(Cond c);

// Memory reference: [base + index*scale + disp], or [rip + disp], or
// absolute [disp32] when base and index are both kNone.
struct MemRef {
  Reg base = Reg::kNone;
  Reg index = Reg::kNone;
  uint8_t scale = 1;  // 1, 2, 4 or 8
  int32_t disp = 0;
  bool rip_relative = false;

  bool IsAbsolute() const {
    return !rip_relative && base == Reg::kNone && index == Reg::kNone;
  }
  friend bool operator==(const MemRef&, const MemRef&) = default;
};

struct Operand {
  enum class Kind : uint8_t { kNone, kReg, kXmm, kMem, kImm };

  Kind kind = Kind::kNone;
  Reg reg = Reg::kNone;  // kReg
  uint8_t xmm = 0;       // kXmm
  MemRef mem;            // kMem
  int64_t imm = 0;       // kImm

  static Operand R(Reg r) {
    Operand o;
    o.kind = Kind::kReg;
    o.reg = r;
    return o;
  }
  static Operand X(uint8_t x) {
    Operand o;
    o.kind = Kind::kXmm;
    o.xmm = x;
    return o;
  }
  static Operand M(MemRef m) {
    Operand o;
    o.kind = Kind::kMem;
    o.mem = m;
    return o;
  }
  static Operand I(int64_t v) {
    Operand o;
    o.kind = Kind::kImm;
    o.imm = v;
    return o;
  }

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_xmm() const { return kind == Kind::kXmm; }
  bool is_mem() const { return kind == Kind::kMem; }
  bool is_imm() const { return kind == Kind::kImm; }
  bool is_none() const { return kind == Kind::kNone; }
};

// One decoded instruction. `address` and `length` are filled by the decoder;
// the encoder ignores them.
struct Inst {
  uint64_t address = 0;
  uint8_t length = 0;

  Mnemonic mnemonic = Mnemonic::kInvalid;
  Cond cond = Cond::kNone;  // kJcc / kSetcc / kCmovcc
  // Main operand size in bytes (1, 2, 4, 8; 16 for m128 SIMD moves).
  uint8_t size = 4;
  // Source size for kMovzx / kMovsx (1, 2 or 4).
  uint8_t src_size = 0;
  bool lock = false;

  Operand ops[3];
  uint8_t num_ops = 0;

  // --- classification helpers used by control-flow recovery ---

  bool IsBranch() const {
    return mnemonic == Mnemonic::kJmp || mnemonic == Mnemonic::kJcc;
  }
  bool IsCall() const { return mnemonic == Mnemonic::kCall; }
  bool IsRet() const { return mnemonic == Mnemonic::kRet; }
  // True for jmp/call whose target is encoded in the instruction (rel32/rel8).
  bool IsDirectTransfer() const {
    return (IsBranch() || IsCall()) && num_ops == 1 && ops[0].is_imm();
  }
  bool IsIndirectTransfer() const {
    return (IsBranch() || IsCall()) && num_ops == 1 && !ops[0].is_imm();
  }
  // True if this instruction ends a basic block.
  bool IsTerminator() const {
    return IsBranch() || IsRet() || mnemonic == Mnemonic::kUd2 ||
           mnemonic == Mnemonic::kInt3;
  }
  // For direct jmp/jcc/call: absolute target address.
  uint64_t DirectTarget() const {
    return address + length + static_cast<uint64_t>(ops[0].imm);
  }
  // Fall-through address (next instruction).
  uint64_t Next() const { return address + length; }

  bool IsAtomic() const {
    return lock || mnemonic == Mnemonic::kXchg;  // xchg r/m,r locks implicitly
  }
  bool HasMemOperand() const {
    for (int i = 0; i < num_ops; ++i) {
      if (ops[i].is_mem()) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace polynima::x86

#endif  // POLYNIMA_X86_INST_H_
